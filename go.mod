module slapcc

go 1.22
