// Benchmarks: one per reproduction experiment (the E1–E13 index lives
// in internal/harness; docs/METRICS.md defines what the step counts
// mean). Each benchmark runs a representative configuration of its
// experiment and reports the simulated SLAP step counts as custom
// metrics ("simsteps"), so `go test -bench=.` regenerates the headline
// numbers; the full sweeps come from cmd/slapbench, and the end-to-end
// serving numbers from cmd/slapsweet (docs/BENCHMARKING.md).
package slapcc

import (
	"context"
	"testing"

	"slapcc/internal/baseline"
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/lowerbound"
	"slapcc/internal/obs"
	"slapcc/internal/slap"
	"slapcc/internal/stats"
	"slapcc/internal/unionfind"
)

const benchN = 256

func benchLabel(b *testing.B, img *bitmap.Bitmap, opt core.Options) *core.Result {
	b.Helper()
	b.ReportAllocs()
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := core.Label(img, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	return last
}

// BenchmarkE1UnitCostLinear — Lemma 2: O(n) under unit-cost union–find.
func BenchmarkE1UnitCostLinear(b *testing.B) {
	img := bitmap.Random(benchN, 0.5, 1)
	res := benchLabel(b, img, core.Options{UnitCostUF: true})
	b.ReportMetric(float64(res.Metrics.Time), "simsteps")
	b.ReportMetric(float64(res.Metrics.Time)/benchN, "simsteps/n")
}

// BenchmarkE2TarjanScaling — §3: O(n lg n) worst case with Tarjan UF.
func BenchmarkE2TarjanScaling(b *testing.B) {
	img := bitmap.BinaryMerge(benchN)
	res := benchLabel(b, img, core.Options{})
	b.ReportMetric(float64(res.Metrics.Time), "simsteps")
	b.ReportMetric(float64(res.Metrics.Time)/(benchN*stats.Log2(benchN)), "simsteps/nlgn")
}

// BenchmarkE3BlumScaling — Theorem 3: O(n lg n / lg lg n) with k-UF trees.
func BenchmarkE3BlumScaling(b *testing.B) {
	img := bitmap.BinaryMerge(benchN)
	res := benchLabel(b, img, core.Options{UF: unionfind.KindBlum})
	b.ReportMetric(float64(res.Metrics.Time), "simsteps")
	b.ReportMetric(float64(res.UF.MaxOpCost), "maxopcost")
}

// BenchmarkE4PerFamily — §3: near-O(n) on typical images (random50).
func BenchmarkE4PerFamily(b *testing.B) {
	for _, name := range []string{"random50", "checker", "spiral", "fig3a"} {
		fam, _ := bitmap.FamilyByName(name)
		img := fam.Generate(benchN)
		b.Run(name, func(b *testing.B) {
			res := benchLabel(b, img, core.Options{})
			b.ReportMetric(float64(res.Metrics.Time)/benchN, "simsteps/n")
		})
	}
}

// BenchmarkE5IdleCompression — §3 heuristic ablation.
func BenchmarkE5IdleCompression(b *testing.B) {
	img := bitmap.VSerpentine(benchN)
	for _, idle := range []bool{false, true} {
		name := "off"
		if idle {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			res := benchLabel(b, img, core.Options{IdleCompression: idle})
			b.ReportMetric(float64(res.Metrics.Time), "simsteps")
		})
	}
}

// BenchmarkE6Aggregate — Corollary 4 extension overhead.
func BenchmarkE6Aggregate(b *testing.B) {
	img := bitmap.Random(benchN, 0.5, 1)
	b.ReportAllocs()
	var last *core.AggregateResult
	for i := 0; i < b.N; i++ {
		res, err := core.Aggregate(img, core.Ones(img), core.Sum(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Metrics.Time), "simsteps")
}

// BenchmarkE7BitSerial — Theorem 5: Ω(n lg n) on 1-bit links.
func BenchmarkE7BitSerial(b *testing.B) {
	b.ReportAllocs()
	var last lowerbound.Datapoint
	for i := 0; i < b.N; i++ {
		d, err := lowerbound.Measure(benchN, 1, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = d
	}
	b.ReportMetric(float64(last.BitSteps), "bitsteps")
	b.ReportMetric(float64(last.BoundSteps), "boundsteps")
	b.ReportMetric(last.RatioToBound(), "ratio")
}

// BenchmarkE8Baselines — prior SLAP approaches vs Algorithm CC.
func BenchmarkE8Baselines(b *testing.B) {
	img := bitmap.Random(benchN, 0.5, 1)
	b.Run("cc", func(b *testing.B) {
		res := benchLabel(b, img, core.Options{})
		b.ReportMetric(float64(res.Metrics.Time), "simsteps")
	})
	b.Run("blockmerge", func(b *testing.B) {
		b.ReportAllocs()
		var last *baseline.Result
		for i := 0; i < b.N; i++ {
			res, err := baseline.BlockMerge(img)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.Metrics.Time), "simsteps")
	})
	small := bitmap.HSerpentine(64)
	b.Run("naive64serp", func(b *testing.B) {
		b.ReportAllocs()
		var last *baseline.Result
		for i := 0; i < b.N; i++ {
			res, err := baseline.NaivePropagation(small, 0)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.Metrics.Time), "simsteps")
	})
}

// BenchmarkE9HardImages — the paper's Figure 3 textures.
func BenchmarkE9HardImages(b *testing.B) {
	for _, fig := range []struct {
		name string
		gen  func(int) *bitmap.Bitmap
	}{{"fig3a", bitmap.Fig3a}, {"fig3b", bitmap.Fig3b}} {
		img := fig.gen(benchN)
		b.Run(fig.name, func(b *testing.B) {
			res := benchLabel(b, img, core.Options{})
			b.ReportMetric(float64(res.Metrics.Time)/benchN, "simsteps/n")
		})
	}
}

// BenchmarkE10UFVariants — union–find variant ablation.
func BenchmarkE10UFVariants(b *testing.B) {
	img := bitmap.BinaryMerge(benchN)
	for _, kind := range unionfind.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			res := benchLabel(b, img, core.Options{UF: kind})
			b.ReportMetric(float64(res.Metrics.Time), "simsteps")
			b.ReportMetric(float64(res.UF.MaxOpCost), "maxopcost")
		})
	}
}

// BenchmarkE11Speculation — §3 speculative forwarding ablation.
func BenchmarkE11Speculation(b *testing.B) {
	img := bitmap.HSerpentine(benchN)
	for _, spec := range []bool{false, true} {
		name := "off"
		if spec {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			res := benchLabel(b, img, core.Options{Speculate: spec})
			b.ReportMetric(float64(res.Metrics.Time), "simsteps")
			b.ReportMetric(float64(res.Speculation.Wasted), "wasted")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw host-side simulation speed
// (pixels simulated per wall second), the practical cost of using this
// repository, for both execution engines: "seq" runs PEs sequentially
// with timestamped queues; "par" runs one goroutine per PE with channel
// links (identical simulated metrics, different wall time).
func BenchmarkSimulatorThroughput(b *testing.B) {
	const n = 1024
	img := bitmap.Random(n, 0.5, 1)
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"seq", false}, {"par", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(n * n))
			benchLabel(b, img, core.Options{Parallel: mode.parallel})
		})
	}
}

// BenchmarkEngineThroughput contrasts the two execution engines on the
// same frame: "sim" and "sim-bitserial" run the metered simulator
// (what every experiment number comes from), "host" answers the same
// labeling question with the word-parallel host engine — identical
// labels and folds, no simulation. The MB/s gap is the price of
// metering, and what makes the host engine the free verification
// oracle for soaks (cost=host on the wire).
func BenchmarkEngineThroughput(b *testing.B) {
	const n = 1024
	img := bitmap.Random(n, 0.5, 1)
	for _, mode := range []struct {
		name string
		opt  core.Options
	}{
		{"sim", core.Options{}},
		{"sim-bitserial", core.Options{Cost: slap.BitSerial(slap.WordBitsForDims(n, n))}},
		{"host", core.Options{Engine: core.EngineHost}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(n * n))
			benchLabel(b, img, mode.opt)
		})
	}
}

// BenchmarkLabelStream measures aggregate frame throughput of the
// multicore frame-streaming subsystem against the single reused
// Labeler: "single" is one worker (the synchronous delegate),
// "gomaxprocs" shards the same stream across one worker labeler per
// core. On a 1-core host the two coincide (the stream delegates); on
// multicore hosts the sharded stream's MB/s should approach
// single × cores, which the per-PE parallel engine cannot deliver.
func BenchmarkLabelStream(b *testing.B) {
	const n, frames = 256, 16
	stream := make([]*bitmap.Bitmap, frames)
	for i := range stream {
		stream[i] = bitmap.Random(n, 0.5, uint64(i+1))
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"single", 1}, {"gomaxprocs", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(frames * n * n))
			s := core.NewLabelStream(core.Options{}, mode.workers, func(r core.StreamResult) {
				if r.Err != nil {
					b.Error(r.Err)
				}
			})
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, img := range stream {
					s.Submit(img)
				}
			}
			// The deferred Close drains in-flight frames inside the timed
			// window; per-iteration draining would serialize the pipeline
			// at every loop boundary instead.
		})
	}
}

// BenchmarkUnionFindKinds measures host-side op throughput per structure,
// reusing one structure via Reset the way the simulator does.
func BenchmarkUnionFindKinds(b *testing.B) {
	const n = 1 << 14
	for _, kind := range unionfind.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			u, _ := unionfind.Make(kind, n)
			for i := 0; i < b.N; i++ {
				u.Reset(n)
				for span := 1; span < n; span *= 2 {
					for base := 0; base+span < n; base += 2 * span {
						u.Union(base, base+span)
					}
				}
				for j := 0; j < n; j++ {
					u.Find(j)
				}
			}
		})
	}
}

// BenchmarkLabelerReuse contrasts the one-shot Label with an explicit
// reused Labeler on a stream of distinct frames — the videopipeline
// scenario. The reused labeler's only steady-state allocations are the
// returned results; the one-shot path pays pool traffic per call and is
// the fair baseline for it.
func BenchmarkLabelerReuse(b *testing.B) {
	const n, frames = 256, 8
	stream := make([]*bitmap.Bitmap, frames)
	for i := range stream {
		stream[i] = bitmap.Random(n, 0.5, uint64(i+1))
	}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(frames * n * n))
		for i := 0; i < b.N; i++ {
			for _, img := range stream {
				if _, err := core.Label(img, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(frames * n * n))
		lab := core.NewLabeler(core.Options{})
		for i := 0; i < b.N; i++ {
			for _, img := range stream {
				if _, err := lab.Label(img); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkLabelLarge measures the strip-mined path end to end: a
// 1024×1024 frame labeled on a 128-wide array (8 strips + seam merge),
// sequentially on one warm arena set and fanned across worker labelers.
// "whole" is the same frame on a whole-image array for reference: the
// tiler's host-side overhead over it is the price of the fixed PE count.
func BenchmarkLabelLarge(b *testing.B) {
	const n, aw = 1024, 128
	img := bitmap.Random(n, 0.5, 1)
	for _, mode := range []struct {
		name string
		opt  core.Options
	}{
		{"whole", core.Options{}},
		{"strips-seq", core.Options{ArrayWidth: aw}},
		{"strips-pool", core.Options{ArrayWidth: aw, StripWorkers: 8}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(n * n))
			lab := core.NewLabeler(mode.opt)
			for i := 0; i < b.N; i++ {
				if _, err := lab.LabelLarge(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceOverhead prices the request-tracing tax on the 1024²
// host-engine path (the ISSUE 9 acceptance bound: ≤ 2% of the untraced
// frames/s). "untraced" runs the pool with a bare context — every span
// hook is a nil check; "traced" builds a per-request trace and records
// the same pool/engine/strip spans slapd does, finishing and rendering
// the Server-Timing header each iteration.
func BenchmarkTraceOverhead(b *testing.B) {
	const n = 1024
	img := bitmap.Random(n, 0.5, 1)
	opt := core.Options{Engine: core.EngineHost, ArrayWidth: 256, SkipLabels: true}
	pool := core.NewLabelerPool(opt, 1)
	run := func(b *testing.B, ctxFor func() (context.Context, *obs.Trace)) {
		b.ReportAllocs()
		b.SetBytes(int64(n * n))
		for i := 0; i < b.N; i++ {
			ctx, tr := ctxFor()
			if _, err := pool.LabelWithCtx(ctx, img, opt); err != nil {
				b.Fatal(err)
			}
			if tr != nil {
				tr.Finish()
				if tr.ServerTiming() == "" {
					b.Fatal("empty Server-Timing")
				}
			}
		}
	}
	b.Run("untraced", func(b *testing.B) {
		run(b, func() (context.Context, *obs.Trace) { return context.Background(), nil })
	})
	b.Run("traced", func(b *testing.B) {
		run(b, func() (context.Context, *obs.Trace) {
			tr := obs.New("bench", "label", nil)
			return obs.ContextWith(context.Background(), tr.Root()), tr
		})
	})
}
