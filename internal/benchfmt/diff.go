package benchfmt

import (
	"fmt"
	"io"
	"math"
	"sort"

	"slapcc/internal/stats"
)

// DiffOptions tunes the comparison.
type DiffOptions struct {
	// Alpha is the significance level for the Mann–Whitney test when
	// both sides carry ≥ 3 samples (default 0.05).
	Alpha float64
	// Threshold is the relative worsening a gated metric must exceed
	// before a *sampled* comparison counts as a regression — the
	// practical-significance floor on top of statistical significance,
	// so a real-but-tiny slowdown doesn't fail a build (default 0.10).
	Threshold float64
	// PointThreshold is the worsening bound for point-value
	// comparisons (legacy trajectory files carry no samples, so there
	// is no distribution to test against). It is deliberately loose
	// (default 0.40): trajectory points were measured on different
	// runners with drifting protocols, and the gate exists to catch
	// collapses — a host engine that stops clearing its 10× win — not
	// 15% runner-to-runner drift.
	PointThreshold float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.10
	}
	if o.PointThreshold <= 0 {
		o.PointThreshold = 0.40
	}
	return o
}

// Delta is one metric's comparison.
type Delta struct {
	Name     string
	Unit     string
	Better   Direction
	OldValue float64
	NewValue float64
	// Ratio is NewValue/OldValue (NaN when OldValue is 0).
	Ratio float64
	// PValue is the Mann–Whitney p-value when both sides carried
	// samples, else NaN.
	PValue float64
	// Sampled says the significance test ran (vs the point heuristic).
	Sampled bool
	// Regression is true when the metric got significantly worse:
	// beyond Alpha and Threshold for sampled metrics, beyond
	// PointThreshold for point comparisons. Informational metrics are
	// never regressions.
	Regression bool
	// Improvement mirrors Regression in the good direction.
	Improvement bool
}

// Diff is the comparison of two BENCH files over their shared metrics.
type Diff struct {
	OldPR, NewPR int
	Deltas       []Delta
	// OnlyOld/OnlyNew list metric names present on one side only —
	// coverage drift the log should show even though it cannot gate.
	OnlyOld, OnlyNew []string
}

// Regressions returns the gated metrics that got significantly worse.
func (d *Diff) Regressions() []Delta {
	var out []Delta
	for _, del := range d.Deltas {
		if del.Regression {
			out = append(out, del)
		}
	}
	return out
}

// Compare joins two BENCH files by metric name and classifies each
// shared metric. The direction recorded on the *new* file wins when
// the two disagree (the current run defines the contract; legacy
// adapters follow it).
func Compare(old, new *File, opt DiffOptions) *Diff {
	opt = opt.withDefaults()
	d := &Diff{OldPR: old.PR, NewPR: new.PR}
	oldNames := make(map[string]*Result, len(old.Results))
	for i := range old.Results {
		oldNames[old.Results[i].Name] = &old.Results[i]
	}
	newNames := make(map[string]bool, len(new.Results))
	for i := range new.Results {
		nr := &new.Results[i]
		newNames[nr.Name] = true
		or, ok := oldNames[nr.Name]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, nr.Name)
			continue
		}
		d.Deltas = append(d.Deltas, compareOne(or, nr, opt))
	}
	for name := range oldNames {
		if !newNames[name] {
			d.OnlyOld = append(d.OnlyOld, name)
		}
	}
	sort.Slice(d.Deltas, func(i, j int) bool { return d.Deltas[i].Name < d.Deltas[j].Name })
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d
}

func compareOne(or, nr *Result, opt DiffOptions) Delta {
	del := Delta{
		Name: nr.Name, Unit: nr.Unit, Better: nr.Better,
		OldValue: or.Mean(), NewValue: nr.Mean(),
		PValue: math.NaN(),
	}
	if del.OldValue != 0 {
		del.Ratio = del.NewValue / del.OldValue
	} else {
		del.Ratio = math.NaN()
	}
	if del.Better == Informational {
		return del
	}
	// worse > 0 means the metric moved against its direction by that
	// relative amount.
	worse := (del.OldValue - del.NewValue) / math.Abs(del.OldValue)
	if del.Better == LowerIsBetter {
		worse = -worse
	}
	if len(or.Samples) >= 3 && len(nr.Samples) >= 3 {
		del.Sampled = true
		del.PValue = stats.MannWhitneyU(or.Samples, nr.Samples)
		if del.PValue < opt.Alpha {
			if worse > opt.Threshold {
				del.Regression = true
			} else if worse < -opt.Threshold {
				del.Improvement = true
			}
		}
		// Mann–Whitney cannot reach α=0.05 on tiny sample counts (3v3
		// bottoms out near p=0.1), so a sampled collapse past the loose
		// point threshold gates regardless of p — the gate must fire on
		// a 2× slowdown even at the default -count.
		if worse > opt.PointThreshold {
			del.Regression = true
		} else if worse < -opt.PointThreshold && del.PValue < opt.Alpha {
			del.Improvement = true
		}
		return del
	}
	// Point comparison: no distribution, so only the loose threshold.
	if worse > opt.PointThreshold {
		del.Regression = true
	} else if worse < -opt.PointThreshold {
		del.Improvement = true
	}
	return del
}

// Render writes the diff as an aligned benchstat-style table.
func (d *Diff) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "diff: PR %d -> PR %d (%d shared metrics)\n", d.OldPR, d.NewPR, len(d.Deltas)); err != nil {
		return err
	}
	wName := len("metric")
	for _, del := range d.Deltas {
		if len(del.Name) > wName {
			wName = len(del.Name)
		}
	}
	fmt.Fprintf(w, "  %-*s  %12s  %12s  %8s  %8s  %s\n", wName, "metric", "old", "new", "delta", "p", "verdict")
	for _, del := range d.Deltas {
		verdict := "~"
		switch {
		case del.Regression:
			verdict = "REGRESSION"
		case del.Improvement:
			verdict = "improved"
		case del.Better == Informational:
			verdict = "(info)"
		}
		p := "-"
		if del.Sampled {
			p = fmt.Sprintf("%.3f", del.PValue)
		}
		delta := "-"
		if !math.IsNaN(del.Ratio) {
			delta = fmt.Sprintf("%+.1f%%", (del.Ratio-1)*100)
		}
		fmt.Fprintf(w, "  %-*s  %12.4g  %12.4g  %8s  %8s  %s\n",
			wName, del.Name, del.OldValue, del.NewValue, delta, p, verdict)
	}
	for _, name := range d.OnlyOld {
		fmt.Fprintf(w, "  only in old: %s\n", name)
	}
	for _, name := range d.OnlyNew {
		fmt.Fprintf(w, "  only in new: %s\n", name)
	}
	return nil
}
