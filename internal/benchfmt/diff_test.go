package benchfmt

import (
	"math/rand"
	"strings"
	"testing"
)

// noisy returns n samples around mean with ±2% deterministic jitter —
// the synthetic benchmark distributions for the significance table.
func noisy(mean float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = mean * (1 + 0.02*(2*rng.Float64()-1))
	}
	return out
}

func fileWith(pr int, results ...Result) *File {
	return &File{Schema: SchemaV1, PR: pr, Runner: Runner{Cores: 1, GOMAXPROCS: 1}, Results: results}
}

func sampled(name string, better Direction, samples []float64) Result {
	r := Result{Name: name, Unit: "MB/s", Better: better, Samples: samples}
	r.Value = r.Mean()
	return r
}

// TestCompareSignificance is the significance table: clear regression,
// clear win, and pure noise, over sampled distributions.
func TestCompareSignificance(t *testing.T) {
	cases := []struct {
		name            string
		better          Direction
		old, new        []float64
		wantRegression  bool
		wantImprovement bool
	}{
		{"clear regression", HigherIsBetter, noisy(100, 8, 1), noisy(60, 8, 2), true, false},
		{"clear win", HigherIsBetter, noisy(100, 8, 3), noisy(150, 8, 4), false, true},
		{"pure noise", HigherIsBetter, noisy(100, 8, 5), noisy(100, 8, 6), false, false},
		{"lower-better regression", LowerIsBetter, noisy(10, 8, 7), noisy(16, 8, 8), true, false},
		{"small but significant drift stays under threshold", HigherIsBetter,
			noisy(100, 8, 9), noisy(96, 8, 10), false, false},
		// 3v3 Mann–Whitney bottoms out near p=0.1, above alpha — but a
		// collapse past the point threshold must still gate.
		{"sampled collapse gates even at minimum sample count", HigherIsBetter,
			noisy(100, 3, 11), noisy(40, 3, 12), true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := fileWith(8, sampled("m/x", tc.better, tc.old))
			cur := fileWith(10, sampled("m/x", tc.better, tc.new))
			d := Compare(old, cur, DiffOptions{})
			if len(d.Deltas) != 1 {
				t.Fatalf("want 1 delta, got %+v", d.Deltas)
			}
			del := d.Deltas[0]
			if !del.Sampled {
				t.Fatalf("want a sampled comparison, got %+v", del)
			}
			if del.Regression != tc.wantRegression || del.Improvement != tc.wantImprovement {
				t.Errorf("verdict (reg=%v imp=%v p=%.4f), want (reg=%v imp=%v)",
					del.Regression, del.Improvement, del.PValue, tc.wantRegression, tc.wantImprovement)
			}
		})
	}
}

// TestCompareInjectedSlowdownFails is the gate's reason to exist: take
// the real committed PR 8 trajectory point, synthesize a run whose host
// engine lost its win, and the diff must report a regression.
func TestCompareInjectedSlowdownFails(t *testing.T) {
	files, err := LoadTrajectory(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	var pr8 *File
	for _, f := range files {
		if f.PR == 8 {
			pr8 = f
		}
	}
	if pr8 == nil {
		t.Fatal("no PR 8 trajectory point")
	}
	// A "current run" identical to PR 8 except the host engine
	// collapsed to 2x instead of 16.5x.
	slowed := fileWith(10,
		Result{Name: "cost-host/frames_per_s", Unit: "frames/s", Better: HigherIsBetter, Value: 12.5},
		Result{Name: "engine/host_over_bitserial", Unit: "x", Better: HigherIsBetter, Value: 2.0},
		Result{Name: "cost-bitserial/frames_per_s", Unit: "frames/s", Better: HigherIsBetter, Value: 6.3},
	)
	d := Compare(pr8, slowed, DiffOptions{})
	regs := d.Regressions()
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (host fps, ratio), got %+v", regs)
	}
	names := map[string]bool{}
	for _, r := range regs {
		names[r.Name] = true
	}
	if !names["cost-host/frames_per_s"] || !names["engine/host_over_bitserial"] {
		t.Errorf("wrong regressions flagged: %v", names)
	}
	// The healthy bitserial row must not be flagged.
	for _, del := range d.Deltas {
		if del.Name == "cost-bitserial/frames_per_s" && del.Regression {
			t.Errorf("healthy metric flagged as regression: %+v", del)
		}
	}
}

// TestComparePointThresholdIsLoose: point comparisons (legacy files
// have no samples) tolerate runner-to-runner drift up to
// PointThreshold.
func TestComparePointThresholdIsLoose(t *testing.T) {
	old := fileWith(8, Result{Name: "m/x", Unit: "MB/s", Better: HigherIsBetter, Value: 100})
	drifted := fileWith(10, Result{Name: "m/x", Unit: "MB/s", Better: HigherIsBetter, Value: 75})
	if d := Compare(old, drifted, DiffOptions{}); d.Deltas[0].Regression {
		t.Errorf("25%% point drift must not gate (threshold is 40%%): %+v", d.Deltas[0])
	}
	collapsed := fileWith(10, Result{Name: "m/x", Unit: "MB/s", Better: HigherIsBetter, Value: 40})
	if d := Compare(old, collapsed, DiffOptions{}); !d.Deltas[0].Regression {
		t.Errorf("60%% point collapse must gate: %+v", d.Deltas[0])
	}
}

// TestCompareInformationalNeverGates: latency and GC metrics are
// recorded but can never fail a build.
func TestCompareInformationalNeverGates(t *testing.T) {
	old := fileWith(8, Result{Name: "steady/latency_p99_ms", Unit: "ms", Better: Informational, Value: 10})
	cur := fileWith(10, Result{Name: "steady/latency_p99_ms", Unit: "ms", Better: Informational, Value: 1000})
	d := Compare(old, cur, DiffOptions{})
	if len(d.Regressions()) != 0 {
		t.Errorf("informational metric gated the diff: %+v", d.Deltas)
	}
}

func TestCompareCoverageDrift(t *testing.T) {
	old := fileWith(8,
		Result{Name: "a/x", Unit: "MB/s", Better: HigherIsBetter, Value: 1},
		Result{Name: "gone/x", Unit: "MB/s", Better: HigherIsBetter, Value: 1})
	cur := fileWith(10,
		Result{Name: "a/x", Unit: "MB/s", Better: HigherIsBetter, Value: 1},
		Result{Name: "fresh/x", Unit: "MB/s", Better: HigherIsBetter, Value: 1})
	d := Compare(old, cur, DiffOptions{})
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "gone/x" {
		t.Errorf("OnlyOld = %v", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "fresh/x" {
		t.Errorf("OnlyNew = %v", d.OnlyNew)
	}
	var sb strings.Builder
	if err := d.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"only in old: gone/x", "only in new: fresh/x", "a/x"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered diff missing %q:\n%s", want, sb.String())
		}
	}
}
