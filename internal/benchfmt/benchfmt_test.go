package benchfmt

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func validFile() *File {
	return &File{
		Schema: SchemaV1, PR: 10,
		Runner: Runner{Cores: 1, GOMAXPROCS: 4},
		Results: []Result{
			{Name: "steady/frames_per_s", Unit: "frames/s", Better: HigherIsBetter, Value: 90},
			{Name: "steady/latency_p99_ms", Unit: "ms", Better: Informational, Value: 170},
			{Name: "core/engine-par/gmp4/mb_per_s", Unit: "MB/s", Better: HigherIsBetter,
				Value: 8, Samples: []float64{7.9, 8.0, 8.1}},
		},
	}
}

func TestValidateAcceptsCanonicalFile(t *testing.T) {
	if err := validFile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*File)
		want string
	}{
		{"unknown schema", func(f *File) { f.Schema = "v0" }, "unknown schema"},
		{"no results", func(f *File) { f.Results = nil }, "no results"},
		{"bad name", func(f *File) { f.Results[0].Name = "Steady FPS" }, "bad name"},
		{"duplicate name", func(f *File) { f.Results[1].Name = f.Results[0].Name }, "duplicate"},
		{"empty unit", func(f *File) { f.Results[0].Unit = "" }, "bad unit"},
		{"spaced unit", func(f *File) { f.Results[0].Unit = "frames / s" }, "bad unit"},
		{"bad direction", func(f *File) { f.Results[0].Better = "sideways" }, "bad direction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFile()
			tc.mut(f)
			err := f.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// goBenchLine is the shape the Go benchmark parser (and benchstat)
// accepts: name starting with Benchmark, an iteration count, then
// value-unit pairs.
var goBenchLine = regexp.MustCompile(`^BenchmarkSweet/[^ \t]+ \t +1 \t +[0-9.e+-]+ [^ \t]+$`)

func TestWriteGoBenchFormat(t *testing.T) {
	var sb strings.Builder
	if err := WriteGoBench(&sb, validFile()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	// 2 point results + 3 samples of the sampled result.
	if len(lines) != 5 {
		t.Fatalf("want 5 benchmark lines, got %d:\n%s", len(lines), sb.String())
	}
	for _, line := range lines {
		if !goBenchLine.MatchString(line) {
			t.Errorf("line not in Go benchmark format: %q", line)
		}
	}
	if !strings.Contains(sb.String(), "BenchmarkSweet/steady/frames_per_s") {
		t.Errorf("missing canonical benchmark name:\n%s", sb.String())
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	f := validFile()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.PR != f.PR || len(got.Results) != len(f.Results) {
		t.Fatalf("round trip changed the file: %+v", got)
	}
	r := got.Find("core/engine-par/gmp4/mb_per_s")
	if r == nil || len(r.Samples) != 3 || r.Better != HigherIsBetter {
		t.Fatalf("round trip lost the sampled result: %+v", r)
	}
}
