// Package benchfmt defines the typed schema for the repository's
// BENCH_*.json trajectory files, parses the committed legacy files
// (BENCH_pr2/pr4/pr8.json predate the schema and each rolled its own
// shape), emits results in Go benchmark format so standard tooling
// (benchstat) can consume them, and implements the benchstat-style
// comparison behind `slapsweet -diff`: per-metric deltas with a
// noise-aware significance test, so a run can fail on regression
// against the committed trajectory instead of eyeballing JSON.
//
// The schema is deliberately flat: a File is a runner description plus
// a list of named Results, each a metric with a unit, an improvement
// direction, and either raw samples or a single summary value. Scenario
// structure lives in the slash-separated names ("steady/frames_per_s",
// "core/engine-par/gmp4/mb_per_s"), which keeps the comparison logic a
// name join rather than a schema walk. See docs/BENCHMARKING.md for the
// scenario inventory and how the trajectory files are produced.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// SchemaV1 identifies the first typed BENCH schema. Files without a
// schema field are legacy and go through the per-PR adapters.
const SchemaV1 = "slap-bench/v1"

// Direction says which way a metric improves. Informational metrics
// (empty direction) are recorded and diffed for the log but can never
// gate a build: latencies on shared CI runners and GC counters are too
// noisy to block merges, while throughput collapses are exactly what
// the gate exists to catch.
type Direction string

const (
	HigherIsBetter Direction = "higher"
	LowerIsBetter  Direction = "lower"
	Informational  Direction = ""
)

// File is one BENCH_*.json artifact under the typed schema.
type File struct {
	Schema   string   `json:"schema"`
	PR       int      `json:"pr"`
	Title    string   `json:"title,omitempty"`
	Date     string   `json:"date,omitempty"` // YYYY-MM-DD
	Runner   Runner   `json:"runner"`
	Protocol string   `json:"protocol,omitempty"`
	Results  []Result `json:"results"`
}

// Runner records where the numbers came from. Cores is the physical
// CPU count (runtime.NumCPU); GOMAXPROCS>Cores measurements are real
// measurements of the Go scheduler's interleaving but cannot show
// parallel speedup, and readers need both numbers to tell which regime
// a row was measured in.
type Runner struct {
	CPU        string `json:"cpu,omitempty"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go,omitempty"`
}

// Result is one named measurement.
type Result struct {
	// Name is the canonical slash-separated metric path, e.g.
	// "steady/frames_per_s". Names are what the diff joins on, so the
	// scenario runner and the legacy adapters must agree on them.
	Name string `json:"name"`
	// Unit is the human unit ("frames/s", "ms", "MB/s"). For the Go
	// benchmark emission it must not contain spaces.
	Unit string `json:"unit"`
	// Better is the improvement direction; Informational metrics never
	// gate a diff.
	Better Direction `json:"better,omitempty"`
	// Value is the summary statistic (the mean of Samples when they
	// are present, otherwise the single measurement).
	Value float64 `json:"value"`
	// Samples holds the raw per-run measurements when the scenario ran
	// more than once; the diff's significance test needs ≥ 3 on both
	// sides to say anything beyond the threshold heuristic.
	Samples []float64 `json:"samples,omitempty"`
	// Attrs carries dimensions that are not part of the name
	// (gomaxprocs, workers, frame size, cost model).
	Attrs map[string]string `json:"attrs,omitempty"`
	Note  string            `json:"note,omitempty"`
}

// Mean returns the summary value, preferring the recorded samples.
func (r *Result) Mean() float64 {
	if len(r.Samples) == 0 {
		return r.Value
	}
	sum := 0.0
	for _, s := range r.Samples {
		sum += s
	}
	return sum / float64(len(r.Samples))
}

var nameRe = regexp.MustCompile(`^[a-z0-9_.-]+(/[a-z0-9_.-]+)*$`)

// Validate checks the file against the schema contract: a known schema
// tag, well-formed unique metric names, units without spaces, known
// directions, and a Value consistent with Samples when both are given.
func (f *File) Validate() error {
	if f.Schema != SchemaV1 {
		return fmt.Errorf("benchfmt: unknown schema %q (want %q)", f.Schema, SchemaV1)
	}
	if len(f.Results) == 0 {
		return fmt.Errorf("benchfmt: no results")
	}
	seen := make(map[string]bool, len(f.Results))
	for i := range f.Results {
		r := &f.Results[i]
		if !nameRe.MatchString(r.Name) {
			return fmt.Errorf("benchfmt: result %d: bad name %q (want lowercase slash-separated path)", i, r.Name)
		}
		if seen[r.Name] {
			return fmt.Errorf("benchfmt: duplicate result name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Unit == "" || strings.ContainsAny(r.Unit, " \t") {
			return fmt.Errorf("benchfmt: result %q: bad unit %q", r.Name, r.Unit)
		}
		switch r.Better {
		case HigherIsBetter, LowerIsBetter, Informational:
		default:
			return fmt.Errorf("benchfmt: result %q: bad direction %q", r.Name, r.Better)
		}
		for _, s := range r.Samples {
			if s != s { // NaN
				return fmt.Errorf("benchfmt: result %q: NaN sample", r.Name)
			}
		}
	}
	return nil
}

// Find returns the result with the given name, or nil.
func (f *File) Find(name string) *Result {
	for i := range f.Results {
		if f.Results[i].Name == name {
			return &f.Results[i]
		}
	}
	return nil
}

// Sort orders results by name, for stable emission.
func (f *File) Sort() {
	sort.Slice(f.Results, func(i, j int) bool { return f.Results[i].Name < f.Results[j].Name })
}

// Write marshals the file (validated, sorted) to path with a trailing
// newline, matching the repository's committed BENCH style.
func (f *File) Write(path string) error {
	if err := f.Validate(); err != nil {
		return err
	}
	f.Sort()
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Load reads a BENCH file from path: files carrying the schema tag are
// decoded directly and validated, legacy files are routed through the
// per-PR adapters (see legacy.go).
func Load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// Parse decodes a BENCH file from raw bytes; see Load.
func Parse(raw []byte) (*File, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("benchfmt: not a JSON object: %w", err)
	}
	if probe.Schema == "" {
		return parseLegacy(raw)
	}
	f := &File{}
	if err := json.Unmarshal(raw, f); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
