package benchfmt

import (
	"math"
	"path/filepath"
	"testing"
)

// repoRoot locates the committed BENCH trajectory from the package dir.
const repoRoot = "../.."

// TestLoadTrajectoryGolden golden-parses the three committed legacy
// BENCH files: the adapters must keep producing exactly these canonical
// metrics with these values, because `slapsweet -diff` joins on the
// names and the scenario runner emits the same ones.
func TestLoadTrajectoryGolden(t *testing.T) {
	files, err := LoadTrajectory(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	byPR := map[int]*File{}
	for _, f := range files {
		byPR[f.PR] = f
	}
	for _, pr := range []int{2, 4, 8} {
		if byPR[pr] == nil {
			t.Fatalf("trajectory missing PR %d (got %d files)", pr, len(files))
		}
		if err := byPR[pr].Validate(); err != nil {
			t.Errorf("PR %d: adapted file invalid: %v", pr, err)
		}
	}

	want := []struct {
		pr     int
		name   string
		value  float64
		better Direction
	}{
		{2, "core/engine-seq/mb_per_s", 8.54, HigherIsBetter},
		{2, "core/engine-par/gmp1/mb_per_s", 8.2, HigherIsBetter},
		{2, "core/reuse/mb_per_s", 8.88, HigherIsBetter},
		{2, "core/reuse/allocs_per_frame", 16, Informational},
		{2, "core/stream/w1/mb_per_s", 7.9, HigherIsBetter},
		{4, "steady/frames_per_s", 86.75710211316827, HigherIsBetter},
		{4, "steady/pixel_mb_per_s", 2.4619139212903622, HigherIsBetter},
		{4, "steady/latency_p99_ms", 170.101261, Informational},
		{4, "overload/rejected_429", 46, Informational},
		{8, "cost-host/frames_per_s", 103.6, HigherIsBetter},
		{8, "cost-host/pixel_mb_per_s", 108.68, HigherIsBetter},
		{8, "cost-bitserial/frames_per_s", 6.27, HigherIsBetter},
		{8, "engine/host_over_bitserial", 16.5, HigherIsBetter},
		{8, "core/engine-seq/mb_per_s", 5.85, HigherIsBetter},
		{8, "core/engine-host/mb_per_s", 52.7, HigherIsBetter},
	}
	for _, w := range want {
		r := byPR[w.pr].Find(w.name)
		if r == nil {
			t.Errorf("PR %d: adapter lost metric %q", w.pr, w.name)
			continue
		}
		if math.Abs(r.Value-w.value) > 1e-9 {
			t.Errorf("PR %d %s: value %v, want %v", w.pr, w.name, r.Value, w.value)
		}
		if r.Better != w.better {
			t.Errorf("PR %d %s: direction %q, want %q", w.pr, w.name, r.Better, w.better)
		}
	}

	// The runner provenance must survive adaptation: every measurement
	// so far came from a 1-core box, which is what makes PR 10's
	// GOMAXPROCS>1 rows "first".
	for _, pr := range []int{2, 4, 8} {
		if got := byPR[pr].Runner.Cores; got != 1 {
			t.Errorf("PR %d: runner cores %d, want 1", pr, got)
		}
	}
}

// TestLoadTrajectorySkipsDerivedArtifacts: CI-derived names like
// BENCH_pr4_service.json must not be mistaken for trajectory points.
func TestLoadTrajectorySkipsDerivedArtifacts(t *testing.T) {
	files, err := LoadTrajectory(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range files {
		if i > 0 && files[i-1].PR >= f.PR {
			t.Errorf("trajectory not strictly ordered by PR: %d then %d", files[i-1].PR, f.PR)
		}
	}
}

func TestParseLegacyUnknownShape(t *testing.T) {
	if _, err := Parse([]byte(`{"surprise": 1}`)); err == nil {
		t.Fatal("want error for unrecognized legacy shape")
	}
	if _, err := Load(filepath.Join(repoRoot, "go.mod")); err == nil {
		t.Fatal("want error for non-JSON file")
	}
}
