package benchfmt

import (
	"fmt"
	"io"
	"strings"
)

// WriteGoBench renders the file's results as Go benchmark output, one
// line per metric, so benchstat and the rest of the x/perf toolbox can
// consume a slapsweet run directly:
//
//	BenchmarkSweet/steady/frames_per_s 	       1 	     86.80 frames/s
//
// The iteration count is the sample count (1 for point measurements).
// Units with a '/' are legal in benchmark output ("frames/s", "MB/s");
// metric names have their unit suffix left in place because benchstat
// groups by (name, unit) anyway. Results with samples emit one line per
// sample — benchstat needs the raw distribution, not a pre-averaged
// value, to run its own significance tests.
func WriteGoBench(w io.Writer, f *File) error {
	for i := range f.Results {
		r := &f.Results[i]
		name := "BenchmarkSweet/" + strings.ReplaceAll(r.Name, " ", "_")
		if len(r.Samples) > 1 {
			for _, s := range r.Samples {
				if _, err := fmt.Fprintf(w, "%s \t       1 \t %12.4g %s\n", name, s, r.Unit); err != nil {
					return err
				}
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s \t       1 \t %12.4g %s\n", name, r.Value, r.Unit); err != nil {
			return err
		}
	}
	return nil
}
