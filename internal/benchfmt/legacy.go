package benchfmt

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// The committed trajectory files predate the typed schema: each PR
// hand-rolled its own JSON shape. These adapters map the three legacy
// shapes onto canonical Result names so `slapsweet -diff` can compare a
// fresh run against any point of the trajectory. The canonical names
// must match what internal/sweet's scenarios emit — that contract is
// pinned by the golden-parse tests in legacy_test.go.
//
// Legacy files carry point values, not sample sets, so diffs against
// them fall back to the threshold heuristic rather than the
// significance test (see diff.go).

// parseLegacy routes a schema-less BENCH file to the adapter matching
// its shape.
func parseLegacy(raw []byte) (*File, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, err
	}
	switch {
	case probe["benchmarks"] != nil:
		return parsePR2(raw)
	case probe["service"] != nil && probe["overcapacity"] != nil:
		return parsePR4(raw)
	case probe["slapd"] != nil:
		return parsePR8(raw)
	}
	return nil, fmt.Errorf("benchfmt: unrecognized legacy BENCH shape (keys %v)", keysOf(probe))
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// parsePR2 adapts BENCH_pr2.json: core microbenchmarks keyed by Go
// benchmark name, point values in MB/s.
func parsePR2(raw []byte) (*File, error) {
	var doc struct {
		PR     int    `json:"pr"`
		Title  string `json:"title"`
		Date   string `json:"date"`
		Runner struct {
			CPU        string `json:"cpu"`
			Cores      int    `json:"cores"`
			GOMAXPROCS int    `json:"gomaxprocs"`
			Go         string `json:"go"`
		} `json:"runner"`
		Protocol   string `json:"protocol"`
		Benchmarks map[string]struct {
			PR2MBs    float64 `json:"pr2_mb_s"`
			Allocs    float64 `json:"pr2_allocs_per_call"`
			SteadyAll float64 `json:"steady_state_allocs_per_frame"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	f := &File{
		Schema: SchemaV1, PR: doc.PR, Title: doc.Title, Date: doc.Date,
		Protocol: doc.Protocol,
		Runner: Runner{
			CPU: doc.Runner.CPU, Cores: doc.Runner.Cores,
			GOMAXPROCS: doc.Runner.GOMAXPROCS, GoVersion: doc.Runner.Go,
		},
	}
	add := func(name, unit string, better Direction, v float64) {
		if v != 0 {
			f.Results = append(f.Results, Result{Name: name, Unit: unit, Better: better, Value: v})
		}
	}
	for bench, row := range doc.Benchmarks {
		switch bench {
		case "BenchmarkSimulatorThroughput/seq":
			add("core/engine-seq/mb_per_s", "MB/s", HigherIsBetter, row.PR2MBs)
			add("core/engine-seq/allocs_per_call", "allocs", Informational, row.Allocs)
		case "BenchmarkSimulatorThroughput/par":
			// The 1-core runner's parallel mode delegated to the
			// sequential executor: that row is the GOMAXPROCS=1 point of
			// the parallel-engine curve.
			add("core/engine-par/gmp1/mb_per_s", "MB/s", HigherIsBetter, row.PR2MBs)
		case "BenchmarkLabelerReuse/reused":
			add("core/reuse/mb_per_s", "MB/s", HigherIsBetter, row.PR2MBs)
			add("core/reuse/allocs_per_frame", "allocs", Informational, row.SteadyAll)
		case "BenchmarkLabelStream/single":
			add("core/stream/w1/mb_per_s", "MB/s", HigherIsBetter, row.PR2MBs)
			// BenchmarkLabelStream/gomaxprocs is skipped: at GOMAXPROCS=1
			// it coincided with /single by design, so it carries no
			// information the w1 row doesn't.
		}
	}
	f.Sort()
	return f, f.Validate()
}

// legacyService is the slapload report shape shared by the pr4 rows.
type legacyService struct {
	FramesPerS  float64 `json:"frames_per_s"`
	MBPerS      float64 `json:"mb_per_s"`
	PixelMBPerS float64 `json:"pixel_mb_per_s"`
	LatencyMS   struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
	} `json:"latency_ms"`
	Overload struct {
		Requests    float64 `json:"requests"`
		Rejected429 float64 `json:"rejected_429"`
	} `json:"overload"`
}

// parsePR4 adapts BENCH_pr4.json: slapd service throughput measured
// with slapload, verification enabled (response checks ran inside the
// timed loop, so its frames/s is conservative against a verify-off
// run — fine for a higher-is-better gate).
func parsePR4(raw []byte) (*File, error) {
	var doc struct {
		PR           int           `json:"pr"`
		Host         string        `json:"host"`
		What         string        `json:"what"`
		Service      legacyService `json:"service"`
		Overcapacity legacyService `json:"overcapacity"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	f := &File{
		Schema: SchemaV1, PR: doc.PR, Title: doc.What, Protocol: doc.What,
		Runner: Runner{CPU: doc.Host, Cores: 1, GOMAXPROCS: 1},
	}
	f.Results = append(f.Results, serviceResults("steady", &doc.Service)...)
	if doc.Overcapacity.Overload.Requests > 0 {
		f.Results = append(f.Results, Result{
			Name: "overload/rejected_429", Unit: "requests", Better: Informational,
			Value: doc.Overcapacity.Overload.Rejected429,
		})
	}
	f.Sort()
	return f, f.Validate()
}

// serviceResults maps a slapload-style report into canonical results
// under the given scenario prefix. Latencies are informational: on
// shared runners they are too noisy to gate, and in a closed loop the
// gated throughput already reflects them.
func serviceResults(prefix string, s *legacyService) []Result {
	out := []Result{
		{Name: prefix + "/frames_per_s", Unit: "frames/s", Better: HigherIsBetter, Value: s.FramesPerS},
	}
	add := func(name, unit string, better Direction, v float64) {
		if v != 0 {
			out = append(out, Result{Name: prefix + "/" + name, Unit: unit, Better: better, Value: v})
		}
	}
	add("wire_mb_per_s", "MB/s", HigherIsBetter, s.MBPerS)
	add("pixel_mb_per_s", "Mpix/s", HigherIsBetter, s.PixelMBPerS)
	add("latency_p50_ms", "ms", Informational, s.LatencyMS.P50)
	add("latency_p95_ms", "ms", Informational, s.LatencyMS.P95)
	add("latency_p99_ms", "ms", Informational, s.LatencyMS.P99)
	return out
}

// parsePR8 adapts BENCH_pr8.json: the host-vs-bitserial engine
// comparison through slapd plus the per-engine core microbenchmark.
func parsePR8(raw []byte) (*File, error) {
	var doc struct {
		Benchmark   string `json:"benchmark"`
		Date        string `json:"date"`
		Environment struct {
			CPU string `json:"cpu"`
			Go  string `json:"go"`
		} `json:"environment"`
		Method string `json:"method"`
		Slapd  struct {
			Host      legacyService `json:"host"`
			Bitserial legacyService `json:"bitserial"`
			Ratio     float64       `json:"pixel_throughput_ratio"`
		} `json:"slapd"`
		Core struct {
			SimUnit      float64 `json:"sim_unit_mb_per_s"`
			SimBitserial float64 `json:"sim_bitserial_mb_per_s"`
			Host         float64 `json:"host_mb_per_s"`
		} `json:"core_microbench"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	f := &File{
		// The pr8 file predates the "pr" field; the shape is unique to
		// that PR, so the adapter pins it.
		Schema: SchemaV1, PR: 8, Title: doc.Benchmark, Date: doc.Date, Protocol: doc.Method,
		Runner: Runner{CPU: doc.Environment.CPU, Cores: 1, GOMAXPROCS: 1, GoVersion: doc.Environment.Go},
	}
	f.Results = append(f.Results, serviceResults("cost-host", &doc.Slapd.Host)...)
	f.Results = append(f.Results, serviceResults("cost-bitserial", &doc.Slapd.Bitserial)...)
	add := func(name, unit string, better Direction, v float64) {
		if v != 0 {
			f.Results = append(f.Results, Result{Name: name, Unit: unit, Better: better, Value: v})
		}
	}
	add("engine/host_over_bitserial", "x", HigherIsBetter, doc.Slapd.Ratio)
	add("core/engine-seq/mb_per_s", "MB/s", HigherIsBetter, doc.Core.SimUnit)
	add("core/engine-bitserial/mb_per_s", "MB/s", HigherIsBetter, doc.Core.SimBitserial)
	add("core/engine-host/mb_per_s", "MB/s", HigherIsBetter, doc.Core.Host)
	f.Sort()
	return f, f.Validate()
}

// LoadTrajectory loads every BENCH_pr*.json in dir (legacy or typed)
// ordered by PR number — the committed measurement trajectory.
func LoadTrajectory(dir string) ([]*File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_pr*.json"))
	if err != nil {
		return nil, err
	}
	var files []*File
	for _, p := range paths {
		// Derived artifacts like BENCH_pr4_service.json ride CI, not the
		// trajectory; trajectory files are exactly BENCH_pr<digits>.json.
		base := strings.TrimSuffix(filepath.Base(p), ".json")
		num := strings.TrimPrefix(base, "BENCH_pr")
		if num == "" || strings.IndexFunc(num, func(r rune) bool { return r < '0' || r > '9' }) >= 0 {
			continue
		}
		f, err := Load(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("benchfmt: no BENCH_pr*.json files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].PR < files[j].PR })
	return files, nil
}
