package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := QuickConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q has no rows", e.ID, tb.Title)
				}
				var buf bytes.Buffer
				if err := tb.Render(&buf); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(buf.String(), tb.ID) {
					t.Fatal("render must include the table ID")
				}
				var csv bytes.Buffer
				if err := tb.WriteCSV(&csv); err != nil {
					t.Fatal(err)
				}
				if lines := strings.Count(csv.String(), "\n"); lines != len(tb.Rows)+2 {
					t.Fatalf("CSV should have header+columns+rows lines, got %d for %d rows", lines, len(tb.Rows))
				}
			}
		})
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("want 13 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("e3"); !ok {
		t.Fatal("ByID should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID should reject unknown ids")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).validate(); err == nil {
		t.Fatal("empty config must be invalid")
	}
	if err := (Config{Sizes: []int{0}}).validate(); err == nil {
		t.Fatal("size 0 must be invalid")
	}
	if DefaultConfig().maxSize() != 512 {
		t.Fatal("unexpected default max size")
	}
}

func TestTableAddRowArity(t *testing.T) {
	tb := Table{ID: "T", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong arity")
		}
	}()
	tb.AddRow("only-one")
}

func TestCSVEscaping(t *testing.T) {
	tb := Table{ID: "T", Title: `with "quotes", commas`, Columns: []string{"a"}}
	tb.AddRow("x,y")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"x,y"`) || !strings.Contains(s, `""quotes""`) {
		t.Fatalf("CSV escaping broken: %s", s)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in non-short mode only")
	}
	var buf bytes.Buffer
	if err := RunAll(QuickConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("RunAll output missing %s", id)
		}
	}
}
