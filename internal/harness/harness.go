// Package harness defines the reproduction experiments E1–E13: one per
// figure or quantitative claim of the paper (each Experiment's Claim
// field carries the paper reference), plus the strip-mining composition
// sweeps E12–E13. Each experiment sweeps image families over a range of
// sizes on the simulated SLAP and renders tables whose *shape* — growth
// exponents, ratios, who wins — is what the reproduction checks; the
// cost conventions behind every number are defined in docs/METRICS.md.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Config controls an experiment sweep.
type Config struct {
	// Sizes are the image side lengths to sweep.
	Sizes []int
	// Seed feeds every randomized workload.
	Seed uint64
}

// DefaultConfig sweeps the sizes the experiment tables are quoted at.
func DefaultConfig() Config {
	return Config{Sizes: []int{32, 64, 128, 256, 512}, Seed: 1}
}

// QuickConfig is a fast sweep for tests.
func QuickConfig() Config {
	return Config{Sizes: []int{16, 32, 64}, Seed: 1}
}

func (c Config) validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("harness: no sizes configured")
	}
	for _, n := range c.Sizes {
		if n < 1 {
			return fmt.Errorf("harness: invalid size %d", n)
		}
	}
	return nil
}

// maxSize returns the largest configured size.
func (c Config) maxSize() int {
	m := c.Sizes[0]
	for _, n := range c.Sizes {
		if n > m {
			m = n
		}
	}
	return m
}

// Table is one rendered result table.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement the table checks
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; it panics when the arity is wrong, which is
// always a programming error in an experiment.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: table %s: row has %d cells, want %d", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "  claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("  ")
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table in CSV form (ID/title as a comment line).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s,%s\n", t.ID, csvEscape(t.Title))
	b.WriteString(strings.Join(escapeAll(t.Columns), ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(escapeAll(row), ","))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeAll(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = csvEscape(c)
	}
	return out
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Experiment is one entry of the reproduction suite.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg Config) ([]Table, error)
}

// All returns the experiment suite in presentation order.
func All() []Experiment {
	return []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(), e10(), e11(), e12(), e13(),
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and renders the tables to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatting helpers shared by the experiments.

func fi(v int64) string { return fmt.Sprintf("%d", v) }

func ff(v float64) string { return fmt.Sprintf("%.2f", v) }

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
