package harness

import (
	"fmt"
	"math"

	"slapcc/internal/baseline"
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/lowerbound"
	"slapcc/internal/seqcc"
	"slapcc/internal/stats"
	"slapcc/internal/unionfind"
)

// suiteFamilies is the family subset most experiments sweep: best case,
// random, maximal-component, the paper's hard figures, and the
// dependence-chain and union-tree adversaries.
var suiteFamilies = []string{
	"random50", "checker", "hserpentine", "vserpentine",
	"binarymerge", "fig3a", "fig3b", "spiral",
}

// labelChecked runs Algorithm CC and verifies the labeling against the
// sequential ground truth; every experiment goes through it so that a
// timing table can never be produced from a wrong labeling.
func labelChecked(img *bitmap.Bitmap, opt core.Options) (*core.Result, error) {
	res, err := core.Label(img, opt)
	if err != nil {
		return nil, err
	}
	if err := seqcc.Check(img, res.Labels); err != nil {
		return nil, fmt.Errorf("correctness check failed: %w", err)
	}
	return res, nil
}

func familyOrDie(name string) bitmap.Family {
	f, ok := bitmap.FamilyByName(name)
	if !ok {
		panic(fmt.Sprintf("harness: unknown family %q", name))
	}
	return f
}

// fitExponent fits T = c·n^p and returns p (NaN when the fit fails).
func fitExponent(sizes []int, times []int64) float64 {
	xs := make([]float64, len(sizes))
	ys := make([]float64, len(times))
	for i := range sizes {
		xs[i] = float64(sizes[i])
		ys[i] = float64(times[i])
		if ys[i] <= 0 {
			ys[i] = 1
		}
	}
	p, _, _, err := stats.FitPower(xs, ys)
	if err != nil {
		return math.NaN()
	}
	return p
}

// e1: Lemma 1/2 — with unit-cost union–find, Algorithm CC is O(n).
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "unit-cost union-find makes Algorithm CC linear",
		Claim: "Lemma 2: Algorithm CC computes the labeling in O(n) time under constant-time unions and finds",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			t := Table{ID: "E1", Title: "steps per PE (T/n) under unit-cost accounting",
				Claim:   "flat rows and fitted exponent ≈ 1",
				Columns: append([]string{"family"}, append(sizeCols(cfg.Sizes), "exponent")...)}
			for _, name := range suiteFamilies {
				fam := familyOrDie(name)
				row := []string{name}
				var times []int64
				for _, n := range cfg.Sizes {
					res, err := labelChecked(fam.Generate(n), core.Options{UnitCostUF: true})
					if err != nil {
						return nil, fmt.Errorf("%s n=%d: %w", name, n, err)
					}
					times = append(times, res.Metrics.Time)
					row = append(row, ff(float64(res.Metrics.Time)/float64(n)))
				}
				row = append(row, ff(fitExponent(cfg.Sizes, times)))
				t.AddRow(row...)
			}
			return []Table{t}, nil
		},
	}
}

// e2: §3 — Tarjan union–find gives O(n lg n) worst case.
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "weighted union + path compression: O(n lg n) worst case",
		Claim: "§3: with weighted union no tree exceeds depth lg n, so Algorithm CC runs in O(n lg n)",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			t := Table{ID: "E2", Title: "total steps under real Tarjan accounting",
				Claim:   "T/(n lg n) bounded; T/n may grow on adversaries",
				Columns: []string{"family", "n", "T", "T/n", "T/(n lg n)"}}
			for _, name := range []string{"binarymerge", "vserpentine", "random50"} {
				fam := familyOrDie(name)
				var times []int64
				for _, n := range cfg.Sizes {
					res, err := labelChecked(fam.Generate(n), core.Options{UF: unionfind.KindTarjan})
					if err != nil {
						return nil, fmt.Errorf("%s n=%d: %w", name, n, err)
					}
					T := res.Metrics.Time
					times = append(times, T)
					t.AddRow(name, fi(int64(n)), fi(T),
						ff(float64(T)/float64(n)),
						ff(float64(T)/(float64(n)*stats.Log2(n))))
				}
				t.Notes = append(t.Notes,
					fmt.Sprintf("%s: fitted exponent %.2f", name, fitExponent(cfg.Sizes, times)))
			}
			return []Table{t}, nil
		},
	}
}

// e3: Theorem 3 — Blum-style union–find caps the worst single operation
// at O(lg n / lg lg n).
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "worst single union-find operation: Tarjan vs Blum-style",
		Claim: "Theorem 3: Algorithm CC runs in O(n lg n / lg lg n) with an O(lg n/lg lg n) worst-case-per-op structure",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			fam := familyOrDie("binarymerge")
			t := Table{ID: "E3", Title: "max single-op cost and totals on the union-tree adversary",
				Claim:   "maxOp(blum) tracks lg n/lg lg n, below maxOp bound lg n of the forest",
				Columns: []string{"n", "lg n", "maxOp tarjan", "k", "lgn/lglgn", "maxOp blum", "T tarjan", "T blum"}}
			for _, n := range cfg.Sizes {
				img := fam.Generate(n)
				tar, err := labelChecked(img, core.Options{UF: unionfind.KindTarjan})
				if err != nil {
					return nil, err
				}
				blum, err := labelChecked(img, core.Options{UF: unionfind.KindBlum})
				if err != nil {
					return nil, err
				}
				lg := stats.Log2(n)
				lglg := stats.Log2(int(lg))
				t.AddRow(fi(int64(n)), ff(lg),
					fi(tar.UF.MaxOpCost),
					fi(int64(unionfind.DefaultArity(n))),
					ff(lg/lglg),
					fi(blum.UF.MaxOpCost),
					fi(tar.Metrics.Time), fi(blum.Metrics.Time))
			}
			return []Table{t}, nil
		},
	}
}

// e4: §3 — "likely to approach O(n) time for all or most images".
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "near-linear behavior across image families (Tarjan)",
		Claim: "§3: the Tarjan implementation is likely to achieve near-O(n) performance on all or most images",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			t := Table{ID: "E4", Title: "T/n per family under real accounting",
				Claim:   "rows stay nearly flat (exponent close to 1) on all families",
				Columns: append([]string{"family"}, append(sizeCols(cfg.Sizes), "exponent")...)}
			for _, fam := range bitmap.Families() {
				row := []string{fam.Name}
				var times []int64
				for _, n := range cfg.Sizes {
					res, err := labelChecked(fam.Generate(n), core.Options{})
					if err != nil {
						return nil, fmt.Errorf("%s n=%d: %w", fam.Name, n, err)
					}
					times = append(times, res.Metrics.Time)
					row = append(row, ff(float64(res.Metrics.Time)/float64(n)))
				}
				row = append(row, ff(fitExponent(cfg.Sizes, times)))
				t.AddRow(row...)
			}
			return []Table{t}, nil
		},
	}
}

// e5: §3 — idle-time path compression heuristic.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "idle-time path compression ablation",
		Claim: "§3: compressing while waiting for the left neighbor can only help",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			n := cfg.maxSize()
			t := Table{ID: "E5", Title: fmt.Sprintf("makespan with and without idle compression (n=%d)", n),
				Claim:   "T(on) ≤ T(off) on every family",
				Columns: []string{"family", "T off", "T on", "saving %"}}
			for _, name := range []string{"vserpentine", "hserpentine", "binarymerge", "fig3b", "random50"} {
				img := familyOrDie(name).Generate(n)
				off, err := labelChecked(img, core.Options{})
				if err != nil {
					return nil, err
				}
				on, err := labelChecked(img, core.Options{IdleCompression: true})
				if err != nil {
					return nil, err
				}
				if on.Metrics.Time > off.Metrics.Time {
					return nil, fmt.Errorf("%s: idle compression slowed the machine (%d > %d)",
						name, on.Metrics.Time, off.Metrics.Time)
				}
				save := 100 * (1 - float64(on.Metrics.Time)/float64(off.Metrics.Time))
				t.AddRow(name, fi(off.Metrics.Time), fi(on.Metrics.Time), ff(save))
			}
			return []Table{t}, nil
		},
	}
}

// e6: Corollary 4 — component-wise folds in the same asymptotic time.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Corollary 4: component-wise aggregation",
		Claim: "Corollary 4: labeling components with the fold of initial labels costs the same asymptotic time",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			t := Table{ID: "E6", Title: "aggregation overhead over plain labeling (random50)",
				Claim:   "overhead ratio stays a constant < 2",
				Columns: []string{"n", "T label", "T +min", "T +sum", "min/label", "sum/label"}}
			fam := familyOrDie("random50")
			for _, n := range cfg.Sizes {
				img := fam.Generate(n)
				plain, err := labelChecked(img, core.Options{})
				if err != nil {
					return nil, err
				}
				initial := make([]int32, n*n)
				for i := range initial {
					initial[i] = int32(i % 97)
				}
				amin, err := core.Aggregate(img, initial, core.Min(), core.Options{})
				if err != nil {
					return nil, err
				}
				if err := checkAggregate(img, initial, core.Min(), amin); err != nil {
					return nil, err
				}
				asum, err := core.Aggregate(img, core.Ones(img), core.Sum(), core.Options{})
				if err != nil {
					return nil, err
				}
				if err := checkAggregate(img, core.Ones(img), core.Sum(), asum); err != nil {
					return nil, err
				}
				t.AddRow(fi(int64(n)), fi(plain.Metrics.Time), fi(amin.Metrics.Time), fi(asum.Metrics.Time),
					ff(float64(amin.Metrics.Time)/float64(plain.Metrics.Time)),
					ff(float64(asum.Metrics.Time)/float64(plain.Metrics.Time)))
			}
			return []Table{t}, nil
		},
	}
}

func checkAggregate(img *bitmap.Bitmap, initial []int32, op core.Monoid, got *core.AggregateResult) error {
	want := seqcc.AggregateRef(img, initial, op.Combine, op.Identity)
	for i := range want {
		if got.PerPixel[i] != want[i] {
			return fmt.Errorf("aggregate %s: position %d: got %d, want %d", op.Name, i, got.PerPixel[i], want[i])
		}
	}
	return nil
}

// e7: Theorem 5 — Ω(n lg n) on the 1-bit SLAP.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "1-bit-link lower bound",
		Claim: "Theorem 5: a SLAP exchanging one bit per step needs Ω(n lg n) time for component labeling",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			t := Table{ID: "E7", Title: "even-row-runs family: entropy bound vs measured time",
				Claim:   "bound grows as (n/2)lg n - n; measured bit-SLAP time stays above it and scales as n lg n",
				Columns: []string{"n", "entropy bits", "bound steps", "T bit-SLAP", "T word-SLAP", "T_bit/(n lg n)"}}
			for _, n := range cfg.Sizes {
				d, err := lowerbound.Measure(n, cfg.Seed, core.Options{})
				if err != nil {
					return nil, err
				}
				if d.BitSteps < d.BoundSteps {
					return nil, fmt.Errorf("n=%d: measured time %d below the information bound %d", n, d.BitSteps, d.BoundSteps)
				}
				t.AddRow(fi(int64(n)), ff(d.EntropyBits), fi(d.BoundSteps), fi(d.BitSteps), fi(d.WordSteps),
					ff(float64(d.BitSteps)/(float64(n)*stats.Log2(n))))
			}
			return []Table{t}, nil
		},
	}
}

// e8: §1 — prior SLAP algorithms need Θ(n lg n) (or worse).
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Algorithm CC vs prior SLAP approaches",
		Claim: "§1: previous SLAP algorithms required Ω(n lg n) time; naive propagation is far worse on adversarial images",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			const naiveCap = 64 // naive needs Θ(n²) rounds on serpentine: keep sizes simulable
			t := Table{ID: "E8", Title: "makespan of Algorithm CC vs block-merge vs naive propagation",
				Claim: "CC wins by a growing (~lg n) factor over block-merge; naive degenerates on serpentine",
				Notes: []string{
					"CC is message-accurate (every pointer step charged); the baselines are charged per round,",
					"so absolute constants are not comparable across columns — the bm/CC growth (∝ lg n) is the claim.",
				},
				Columns: []string{"family", "n", "T CC", "T blockmerge", "bm/CC", "T naive", "naive/CC"}}
			// Extend the sweep past the configured maximum so the
			// lg n growth of bm/CC (and its crossover) is visible.
			sizes := append([]int{}, cfg.Sizes...)
			for m := cfg.maxSize() * 2; m <= cfg.maxSize()*8; m *= 2 {
				sizes = append(sizes, m)
			}
			for _, name := range []string{"random50", "hserpentine"} {
				fam := familyOrDie(name)
				for _, n := range sizes {
					img := fam.Generate(n)
					cc, err := labelChecked(img, core.Options{})
					if err != nil {
						return nil, err
					}
					bm, err := baseline.BlockMerge(img)
					if err != nil {
						return nil, err
					}
					if err := seqcc.Check(img, bm.Labels); err != nil {
						return nil, fmt.Errorf("blockmerge %s n=%d: %w", name, n, err)
					}
					naiveT, naiveRatio := "—", "—"
					if n <= naiveCap {
						nv, err := baseline.NaivePropagation(img, 0)
						if err != nil {
							return nil, err
						}
						if err := seqcc.Check(img, nv.Labels); err != nil {
							return nil, fmt.Errorf("naive %s n=%d: %w", name, n, err)
						}
						naiveT = fi(nv.Metrics.Time)
						naiveRatio = ff(float64(nv.Metrics.Time) / float64(cc.Metrics.Time))
					}
					t.AddRow(name, fi(int64(n)), fi(cc.Metrics.Time), fi(bm.Metrics.Time),
						ff(float64(bm.Metrics.Time)/float64(cc.Metrics.Time)), naiveT, naiveRatio)
				}
			}
			return []Table{t}, nil
		},
	}
}

// e9: Figure 3 — the paper's hard images, measured exactly.
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "the paper's Figure 3 images",
		Claim: "Figure 3: the images illustrating why left-component labeling is hard are handled in near-linear time",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			t := Table{ID: "E9", Title: "exact step counts on Fig. 3(a)/(b) textures",
				Claim:   "T/n flat in n for both",
				Columns: []string{"figure", "n", "T", "T/n", "records sent", "peak queue", "components"}}
			for _, fig := range []struct {
				name string
				gen  func(int) *bitmap.Bitmap
			}{{"3a", bitmap.Fig3a}, {"3b", bitmap.Fig3b}} {
				for _, n := range cfg.Sizes {
					img := fig.gen(n)
					res, err := labelChecked(img, core.Options{})
					if err != nil {
						return nil, fmt.Errorf("fig%s n=%d: %w", fig.name, n, err)
					}
					t.AddRow(fig.name, fi(int64(n)), fi(res.Metrics.Time),
						ff(float64(res.Metrics.Time)/float64(n)),
						fi(res.Metrics.Sends), fi(int64(res.Metrics.MaxQueue)),
						fi(int64(res.Labels.ComponentCount())))
				}
			}
			return []Table{t}, nil
		},
	}
}

// e10: §3 — union–find variant ablation (Tarjan & van Leeuwen variants).
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "union-find variant ablation",
		Claim: "§3: union by rank and one-pass compression (halving/splitting) are sound alternatives; naive linking is not",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			n := cfg.maxSize()
			t := Table{ID: "E10", Title: fmt.Sprintf("total steps by union-find variant (n=%d, Σ over 3 families)", n),
				Claim:   "compressing variants cluster together; nocompress and naivelink pay on adversaries",
				Columns: []string{"variant", "T total", "max op", "mean op"}}
			imgs := []*bitmap.Bitmap{
				familyOrDie("random50").Generate(n),
				familyOrDie("binarymerge").Generate(n),
				familyOrDie("vserpentine").Generate(n),
			}
			for _, kind := range unionfind.Kinds() {
				var total, maxOp int64
				var meanSum float64
				for _, img := range imgs {
					res, err := labelChecked(img, core.Options{UF: kind})
					if err != nil {
						return nil, fmt.Errorf("%s: %w", kind, err)
					}
					total += res.Metrics.Time
					if res.UF.MaxOpCost > maxOp {
						maxOp = res.UF.MaxOpCost
					}
					meanSum += res.UF.MeanOpCost
				}
				t.AddRow(string(kind), fi(total), fi(maxOp), f3(meanSum/float64(len(imgs))))
			}
			return []Table{t}, nil
		},
	}
}

// e11: §3 — speculative forwarding of dequeued unions.
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "speculative union forwarding ablation",
		Claim: "§3: enqueue a pair of finds for the next processor as soon as two pixels are found adjacent to 1-pixels in the next column",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			n := cfg.maxSize()
			t := Table{ID: "E11", Title: fmt.Sprintf("makespan with and without speculation (n=%d)", n),
				Claim:   "speculation shortens the critical path on chain-heavy images; wasted sends stay a small fraction",
				Columns: []string{"family", "T off", "T on", "saving %", "spec sends", "wasted"}}
			for _, name := range []string{"hserpentine", "vserpentine", "binarymerge", "fig3b", "random50", "full"} {
				img := familyOrDie(name).Generate(n)
				off, err := labelChecked(img, core.Options{})
				if err != nil {
					return nil, err
				}
				on, err := labelChecked(img, core.Options{Speculate: true})
				if err != nil {
					return nil, err
				}
				save := 100 * (1 - float64(on.Metrics.Time)/float64(off.Metrics.Time))
				t.AddRow(name, fi(off.Metrics.Time), fi(on.Metrics.Time), ff(save),
					fi(on.Speculation.Sends), fi(on.Speculation.Wasted))
			}
			return []Table{t}, nil
		},
	}
}

// e13: strip-mined composition models — how the composed time of a
// fixed-width run moves with the seam-relabel model (host-sequential vs
// distributed broadcast+rewrite) and the strip schedule (sequential vs
// pipelined input overlap). Labeling is bit-identical under every
// combination (labelChecked holds it to the ground truth); only the
// charged schedule differs.
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "seam-relabel and strip-schedule composition models",
		Claim: "the distributed relabel turns the host-sequential rewrite into array phases (a win once rewrites dominate), and the pipelined schedule hides all but the first strip's input phase",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			n := cfg.maxSize()
			t := Table{ID: "E13", Title: fmt.Sprintf("composed time by seam/schedule model (n=%d)", n),
				Claim:   "T(host+seq) ≥ T(dist+seq) on rewrite-heavy images; T(·+pipe) shaves Σ later strips' input makespans; seam share counts all seam phases",
				Columns: []string{"family", "array", "T host+seq", "T dist+seq", "T dist+pipe", "pipe saves %", "seam %"}}
			for _, name := range []string{"random50", "checker", "hserpentine"} {
				img := familyOrDie(name).Generate(n)
				for _, div := range []int{4, 16} {
					aw := n / div
					if aw < 1 {
						break
					}
					hostSeq, err := labelChecked(img, core.Options{ArrayWidth: aw, Seam: core.SeamHost})
					if err != nil {
						return nil, fmt.Errorf("%s aw=%d host+seq: %w", name, aw, err)
					}
					distSeq, err := labelChecked(img, core.Options{ArrayWidth: aw})
					if err != nil {
						return nil, fmt.Errorf("%s aw=%d dist+seq: %w", name, aw, err)
					}
					distPipe, err := labelChecked(img, core.Options{ArrayWidth: aw, Schedule: core.SchedulePipelined})
					if err != nil {
						return nil, fmt.Errorf("%s aw=%d dist+pipe: %w", name, aw, err)
					}
					saving := 100 * (1 - float64(distPipe.Metrics.Time)/float64(distSeq.Metrics.Time))
					t.AddRow(name, fi(int64(aw)),
						fi(hostSeq.Metrics.Time), fi(distSeq.Metrics.Time), fi(distPipe.Metrics.Time),
						ff(saving),
						ff(100*float64(core.SeamTime(distSeq.Metrics))/float64(distSeq.Metrics.Time)))
				}
			}
			t.Notes = append(t.Notes,
				"labels are bit-identical across every model combination (each run is ground-truth checked)",
				"host+seq is the original PR 3 model, pinned unchanged by TestGoldenLargeStepCounts")
			return []Table{t}, nil
		},
	}
}

func sizeCols(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, n := range sizes {
		out[i] = fmt.Sprintf("n=%d", n)
	}
	return out
}

// e12: strip-mined labeling — an image wider than the physical array is
// labeled in vertical strips plus a host-side seam merge (the tiler's
// sequential schedule model; not a paper claim but the fixed-PE-count
// deployment of Algorithm CC).
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "strip-mined labeling on a fixed-width array",
		Claim: "labeling composes across strips: total time stays near the whole-array run and the seam-merge phase is a lower-order term until strips get very narrow",
		Run: func(cfg Config) ([]Table, error) {
			if err := cfg.validate(); err != nil {
				return nil, err
			}
			n := cfg.maxSize()
			t := Table{ID: "E12", Title: fmt.Sprintf("composed time by array width (n=%d)", n),
				Claim:   "T composed / T whole stays near 1; seam share grows as strips narrow",
				Columns: []string{"family", "array", "strips", "T composed", "vs whole", "seam %"}}
			for _, name := range []string{"random50", "checker", "hserpentine"} {
				img := familyOrDie(name).Generate(n)
				whole, err := labelChecked(img, core.Options{})
				if err != nil {
					return nil, err
				}
				t.AddRow(name, fi(int64(n)), "1", fi(whole.Metrics.Time), ff(1), ff(0))
				for div := 2; div <= 16; div *= 2 {
					aw := n / div
					if aw < 1 {
						break
					}
					res, err := labelChecked(img, core.Options{ArrayWidth: aw})
					if err != nil {
						return nil, fmt.Errorf("%s aw=%d: %w", name, aw, err)
					}
					strips := (n + aw - 1) / aw
					t.AddRow(name, fi(int64(aw)), fi(int64(strips)), fi(res.Metrics.Time),
						ff(float64(res.Metrics.Time)/float64(whole.Metrics.Time)),
						ff(100*float64(core.SeamTime(res.Metrics))/float64(res.Metrics.Time)))
				}
			}
			return []Table{t}, nil
		},
	}
}
