package unionfind

import "math/bits"

// Meter wraps a UnionFind and records per-operation cost statistics:
// the quantity Theorem 3 is about is the *worst single operation*, which
// cumulative counters cannot show. Costs are measured as Steps() deltas.
type Meter struct {
	inner UnionFind
	// forest caches the concrete type of a forest-backed inner structure:
	// Find/Union on the simulator's hot path then skip the interface
	// dispatch (the accounting is unchanged).
	forest *Forest

	finds, unions int64
	findSteps     int64
	unionSteps    int64
	maxFind       int64
	maxUnion      int64
	// histOff disables the cost histogram (DisableHistogram): callers
	// that only consume Stats/MaxOpCost — the simulator's hot path —
	// skip the per-operation bucketing.
	histOff bool
	// hist[b] counts operations whose cost c satisfies 2^b ≤ c < 2^(b+1),
	// with bucket 0 holding c ≤ 1.
	hist [32]int64
}

var _ UnionFind = (*Meter)(nil)

// NewMeter wraps inner.
func NewMeter(inner UnionFind) *Meter {
	m := &Meter{inner: inner}
	m.forest, _ = inner.(*Forest)
	return m
}

// Unwrap returns the wrapped structure.
func (m *Meter) Unwrap() UnionFind { return m.inner }

// Reset re-initializes the wrapped structure to n singletons and clears
// every recorded statistic.
func (m *Meter) Reset(n int) {
	m.inner.Reset(n)
	m.ResetStats()
}

// ResetStats clears the recorded statistics without touching the wrapped
// structure — for callers that re-initialize the inner structure
// themselves (possibly several times) while accumulating one report.
func (m *Meter) ResetStats() {
	m.finds, m.unions = 0, 0
	m.findSteps, m.unionSteps = 0, 0
	m.maxFind, m.maxUnion = 0, 0
	m.hist = [32]int64{}
}

// DisableHistogram turns off per-operation cost bucketing; Histogram
// then reports empty. Stats and MaxOpCost are unaffected.
func (m *Meter) DisableHistogram() { m.histOff = true }

func (m *Meter) bucket(cost int64) {
	if m.histOff {
		return
	}
	b := 0
	if cost > 1 {
		b = bits.Len64(uint64(cost)) - 1
	}
	if b >= len(m.hist) {
		b = len(m.hist) - 1
	}
	m.hist[b]++
}

// Find forwards to the wrapped structure, recording the operation cost.
func (m *Meter) Find(x int) int {
	r, _ := m.FindCost(x)
	return r
}

// FindCost is Find returning the operation's charged cost as well, so
// the simulator converts it into machine time without re-reading the
// step counter around the call. The full-compression forest — the
// default structure, behind nearly every find the simulator executes —
// is inlined here to cut a call level off the hottest path; the loop is
// the same as Forest.Find's CompressFull case and charges identically.
func (m *Meter) FindCost(x int) (r int, cost int64) {
	if f := m.forest; f != nil && f.comp == CompressFull {
		root, steps := f.findFull(int32(x))
		f.steps += steps
		r, cost = int(root), steps
	} else if f != nil {
		before := f.steps
		r = f.Find(x)
		cost = f.steps - before
	} else {
		before := m.inner.Steps()
		r = m.inner.Find(x)
		cost = m.inner.Steps() - before
	}
	m.finds++
	m.findSteps += cost
	if cost > m.maxFind {
		m.maxFind = cost
	}
	m.bucket(cost)
	return r, cost
}

// Union forwards to the wrapped structure, recording the operation cost.
func (m *Meter) Union(x, y int) (root, a, b int, united bool) {
	root, a, b, united, _ = m.UnionCost(x, y)
	return root, a, b, united
}

// UnionCost is Union returning the operation's charged cost as well.
// The weighted, fully-compressing forest — the default structure — is
// handled inline like FindCost's fast path, with identical charges.
func (m *Meter) UnionCost(x, y int) (root, a, b int, united bool, cost int64) {
	if f := m.forest; f != nil && f.comp == CompressFull && f.link == LinkBySize {
		ra, sa := f.findFull(int32(x))
		rb, sb := f.findFull(int32(y))
		cost = sa + sb
		a, b = int(ra), int(rb)
		if ra == rb {
			root, united = a, false
		} else {
			winner, loser := ra, rb
			if f.weight[winner] < f.weight[loser] {
				winner, loser = loser, winner
			}
			f.weight[winner] += f.weight[loser]
			f.parent[loser] = winner
			cost++
			f.sets--
			root, united = int(winner), true
		}
		f.steps += cost
	} else if f := m.forest; f != nil {
		before := f.steps
		root, a, b, united = f.Union(x, y)
		cost = f.steps - before
	} else {
		before := m.inner.Steps()
		root, a, b, united = m.inner.Union(x, y)
		cost = m.inner.Steps() - before
	}
	m.unions++
	m.unionSteps += cost
	if cost > m.maxUnion {
		m.maxUnion = cost
	}
	m.bucket(cost)
	return root, a, b, united, cost
}

// Len forwards to the wrapped structure.
func (m *Meter) Len() int { return m.inner.Len() }

// CapBound forwards to the wrapped structure.
func (m *Meter) CapBound() int { return m.inner.CapBound() }

// Sets forwards to the wrapped structure.
func (m *Meter) Sets() int { return m.inner.Sets() }

// Steps forwards to the wrapped structure.
func (m *Meter) Steps() int64 {
	if f := m.forest; f != nil {
		return f.steps
	}
	return m.inner.Steps()
}

// Stats summarizes what the meter observed.
type Stats struct {
	Finds, Unions         int64
	FindSteps, UnionSteps int64
	MaxFind, MaxUnion     int64
}

// Stats returns the recorded statistics.
func (m *Meter) Stats() Stats {
	return Stats{
		Finds: m.finds, Unions: m.unions,
		FindSteps: m.findSteps, UnionSteps: m.unionSteps,
		MaxFind: m.maxFind, MaxUnion: m.maxUnion,
	}
}

// MaxOpCost returns the largest cost of any single recorded operation.
func (m *Meter) MaxOpCost() int64 {
	if m.maxFind > m.maxUnion {
		return m.maxFind
	}
	return m.maxUnion
}

// MeanOpCost returns the average cost over all recorded operations, or 0.
func (m *Meter) MeanOpCost() float64 {
	ops := m.finds + m.unions
	if ops == 0 {
		return 0
	}
	return float64(m.findSteps+m.unionSteps) / float64(ops)
}

// Histogram returns the cost histogram: bucket b counts operations with
// cost in [2^b, 2^(b+1)) (bucket 0: cost ≤ 1), trimmed of trailing zeros.
func (m *Meter) Histogram() []int64 {
	last := -1
	for i, v := range m.hist {
		if v != 0 {
			last = i
		}
	}
	out := make([]int64, last+1)
	copy(out, m.hist[:last+1])
	return out
}
