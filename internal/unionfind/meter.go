package unionfind

import (
	mbits "math/bits"
)

// Meter wraps a UnionFind and records per-operation cost statistics:
// the quantity Theorem 3 is about is the *worst single operation*, which
// cumulative counters cannot show. Costs are measured as Steps() deltas.
type Meter struct {
	inner UnionFind
	// forest caches the concrete type of a forest-backed inner structure:
	// Find/Union on the simulator's hot path then skip the interface
	// dispatch (the accounting is unchanged).
	forest *Forest

	finds, unions int64
	findSteps     int64
	unionSteps    int64
	maxFind       int64
	maxUnion      int64
	// histOff disables the cost histogram (DisableHistogram): callers
	// that only consume Stats/MaxOpCost — the simulator's hot path —
	// skip the per-operation bucketing.
	histOff bool
	// hist[b] counts operations whose cost c satisfies 2^b ≤ c < 2^(b+1),
	// with bucket 0 holding c ≤ 1.
	hist [32]int64
}

var _ UnionFind = (*Meter)(nil)

// NewMeter wraps inner.
func NewMeter(inner UnionFind) *Meter {
	m := &Meter{inner: inner}
	m.forest, _ = inner.(*Forest)
	return m
}

// Unwrap returns the wrapped structure.
func (m *Meter) Unwrap() UnionFind { return m.inner }

// Reset re-initializes the wrapped structure to n singletons and clears
// every recorded statistic.
func (m *Meter) Reset(n int) {
	m.inner.Reset(n)
	m.ResetStats()
}

// ResetStats clears the recorded statistics without touching the wrapped
// structure — for callers that re-initialize the inner structure
// themselves (possibly several times) while accumulating one report.
func (m *Meter) ResetStats() {
	m.finds, m.unions = 0, 0
	m.findSteps, m.unionSteps = 0, 0
	m.maxFind, m.maxUnion = 0, 0
	m.hist = [32]int64{}
}

// DisableHistogram turns off per-operation cost bucketing; Histogram
// then reports empty. Stats and MaxOpCost are unaffected.
func (m *Meter) DisableHistogram() { m.histOff = true }

func (m *Meter) bucket(cost int64) {
	if m.histOff {
		return
	}
	b := 0
	if cost > 1 {
		b = mbits.Len64(uint64(cost)) - 1
	}
	if b >= len(m.hist) {
		b = len(m.hist) - 1
	}
	m.hist[b]++
}

// Find forwards to the wrapped structure, recording the operation cost.
func (m *Meter) Find(x int) int {
	r, _ := m.FindCost(x)
	return r
}

// FindCost is Find returning the operation's charged cost as well, so
// the simulator converts it into machine time without re-reading the
// step counter around the call. A forest-backed structure — the default,
// behind nearly every find the simulator executes — is dispatched to its
// cost-returning entry directly (which also selects the compact int16
// arrays for small element counts), cutting a call level and a counter
// re-read off the hottest path; the charges are identical.
func (m *Meter) FindCost(x int) (r int, cost int64) {
	if f := m.forest; f != nil && f.comp == CompressFull {
		// The default configuration, open-coded per width so the find
		// loop inlines here (the generic dispatch costs two call levels
		// per operation on the simulator's single hottest path).
		if f.small {
			root, steps := findFullG(f.parent16, int16(x))
			f.steps += steps
			r, cost = int(root), steps
		} else {
			root, steps := findFullG(f.parent, int32(x))
			f.steps += steps
			r, cost = int(root), steps
		}
	} else if f := m.forest; f != nil {
		r, cost = f.findCost(x)
	} else {
		before := m.inner.Steps()
		r = m.inner.Find(x)
		cost = m.inner.Steps() - before
	}
	m.finds++
	m.findSteps += cost
	if cost > m.maxFind {
		m.maxFind = cost
	}
	m.bucket(cost)
	return r, cost
}

// The batch find entries below run one Find per requested element, in
// order, exactly as a loop of FindCost calls would — same traversals,
// same compression writes, same per-operation stats (counts, step sums,
// max) — but fold the meter bookkeeping once per batch and keep the
// find loop inlined next to local accumulators. They are what lets the
// simulator's local phases (find-all, assign, merge) charge millions of
// metered operations without a wrapper call per operation. The batch
// fast path requires a forest-backed structure with full compression
// and the histogram off (the simulator's configuration); anything else
// falls back to per-operation FindCost, bit-identically.

// FindCostBitset runs Find on element j for every set bit j of bits
// (bit j%64 of word j/64), ascending, and returns the operation count
// and total charged steps. When roots is non-nil, roots[j] receives
// element j's root.
func (m *Meter) FindCostBitset(bits []uint64, roots []int32) (ops, steps int64) {
	if f := m.forest; f != nil && f.comp == CompressFull && m.histOff {
		var max int64
		if f.small {
			ops, steps, max = findBitsetG(f.parent16, bits, roots)
		} else {
			ops, steps, max = findBitsetG(f.parent, bits, roots)
		}
		m.foldFinds(f, ops, steps, max)
		return ops, steps
	}
	for wi, word := range bits {
		for word != 0 {
			j := wi<<6 + mbits.TrailingZeros64(word)
			word &= word - 1
			r, c := m.FindCost(j)
			if roots != nil {
				roots[j] = int32(r)
			}
			ops++
			steps += c
		}
	}
	return ops, steps
}

// FindCostBitsetInto is FindCostBitset recording each operation's
// charged cost in costs[j] as well, for callers that replay the charges
// op by op against a virtual clock (the label pass interleaves sends
// with the charges; the finds themselves neither read nor affect
// anything the sends touch, so running them as one batch is invisible).
func (m *Meter) FindCostBitsetInto(bits []uint64, roots, costs []int32) {
	if f := m.forest; f != nil && f.comp == CompressFull && m.histOff {
		var ops, steps, max int64
		if f.small {
			ops, steps, max = findBitsetIntoG(f.parent16, bits, roots, costs)
		} else {
			ops, steps, max = findBitsetIntoG(f.parent, bits, roots, costs)
		}
		m.foldFinds(f, ops, steps, max)
		return
	}
	for wi, word := range bits {
		for word != 0 {
			j := wi<<6 + mbits.TrailingZeros64(word)
			word &= word - 1
			r, c := m.FindCost(j)
			roots[j] = int32(r)
			costs[j] = int32(c)
		}
	}
}

// FindCostSeq runs Find on each ids[k] in order; roots[k] receives the
// result when roots is non-nil (it must then be at least as long).
func (m *Meter) FindCostSeq(ids, roots []int32) (ops, steps int64) {
	if f := m.forest; f != nil && f.comp == CompressFull && m.histOff {
		var max int64
		if f.small {
			ops, steps, max = findSeqG(f.parent16, ids, roots)
		} else {
			ops, steps, max = findSeqG(f.parent, ids, roots)
		}
		m.foldFinds(f, ops, steps, max)
		return ops, steps
	}
	for k, id := range ids {
		r, c := m.FindCost(int(id))
		if roots != nil {
			roots[k] = int32(r)
		}
		ops++
		steps += c
	}
	return ops, steps
}

// FindCostRange runs Find on elements 0..n-1 in order; roots[k]
// receives element k's root when roots is non-nil.
func (m *Meter) FindCostRange(n int, roots []int32) (ops, steps int64) {
	if f := m.forest; f != nil && f.comp == CompressFull && m.histOff {
		var max int64
		if f.small {
			ops, steps, max = findRangeG(f.parent16, n, roots)
		} else {
			ops, steps, max = findRangeG(f.parent, n, roots)
		}
		m.foldFinds(f, ops, steps, max)
		return ops, steps
	}
	for k := 0; k < n; k++ {
		r, c := m.FindCost(k)
		if roots != nil {
			roots[k] = int32(r)
		}
		ops++
		steps += c
	}
	return ops, steps
}

// Pair is one union request for UnionCostPairs.
type Pair struct{ X, Y int32 }

// UnionCostPairs executes Union(p.X, p.Y) for every pair in order —
// identical traversals, links, and per-operation stats as a loop of
// UnionCost calls — and returns the operation count and total charged
// steps. Callers that need per-union outcomes (roots, united flags)
// must use UnionCost; this entry serves charge-only loops like the
// merge step's edge replay.
func (m *Meter) UnionCostPairs(pairs []Pair) (ops, steps int64) {
	if f := m.forest; f != nil && f.comp == CompressFull && f.link == LinkBySize && m.histOff {
		var max, united int64
		if f.small {
			steps, max, united = unionPairsG(f.parent16, f.weight16, pairs)
		} else {
			steps, max, united = unionPairsG(f.parent, f.weight, pairs)
		}
		ops = int64(len(pairs))
		f.steps += steps
		f.sets -= int(united)
		m.unions += ops
		m.unionSteps += steps
		if max > m.maxUnion {
			m.maxUnion = max
		}
		return ops, steps
	}
	for _, p := range pairs {
		_, _, _, _, c := m.UnionCost(int(p.X), int(p.Y))
		ops++
		steps += c
	}
	return ops, steps
}

// foldFinds folds one batch's accumulated find stats into the meter and
// the forest's step counter, with the same end state as per-op entry.
func (m *Meter) foldFinds(f *Forest, ops, steps, max int64) {
	f.steps += steps
	m.finds += ops
	m.findSteps += steps
	if max > m.maxFind {
		m.maxFind = max
	}
}

// Union forwards to the wrapped structure, recording the operation cost.
func (m *Meter) Union(x, y int) (root, a, b int, united bool) {
	root, a, b, united, _ = m.UnionCost(x, y)
	return root, a, b, united
}

// UnionCost is Union returning the operation's charged cost as well.
// Forest-backed structures are handled like FindCost's fast path, with
// identical charges.
func (m *Meter) UnionCost(x, y int) (root, a, b int, united bool, cost int64) {
	if f := m.forest; f != nil && f.comp == CompressFull && f.link == LinkBySize {
		// The default configuration again: one specialized call per
		// width replaces the generic rule dispatch.
		if f.small {
			root, a, b, united, cost = unionFullSizeG(f.parent16, f.weight16, int16(x), int16(y))
		} else {
			root, a, b, united, cost = unionFullSizeG(f.parent, f.weight, int32(x), int32(y))
		}
		f.steps += cost
		if united {
			f.sets--
		}
	} else if f := m.forest; f != nil {
		root, a, b, united, cost = f.unionCost(x, y)
	} else {
		before := m.inner.Steps()
		root, a, b, united = m.inner.Union(x, y)
		cost = m.inner.Steps() - before
	}
	m.unions++
	m.unionSteps += cost
	if cost > m.maxUnion {
		m.maxUnion = cost
	}
	m.bucket(cost)
	return root, a, b, united, cost
}

// Len forwards to the wrapped structure.
func (m *Meter) Len() int { return m.inner.Len() }

// CapBound forwards to the wrapped structure.
func (m *Meter) CapBound() int { return m.inner.CapBound() }

// Sets forwards to the wrapped structure.
func (m *Meter) Sets() int { return m.inner.Sets() }

// Steps forwards to the wrapped structure.
func (m *Meter) Steps() int64 {
	if f := m.forest; f != nil {
		return f.steps
	}
	return m.inner.Steps()
}

// Stats summarizes what the meter observed.
type Stats struct {
	Finds, Unions         int64
	FindSteps, UnionSteps int64
	MaxFind, MaxUnion     int64
}

// Stats returns the recorded statistics.
func (m *Meter) Stats() Stats {
	return Stats{
		Finds: m.finds, Unions: m.unions,
		FindSteps: m.findSteps, UnionSteps: m.unionSteps,
		MaxFind: m.maxFind, MaxUnion: m.maxUnion,
	}
}

// MaxOpCost returns the largest cost of any single recorded operation.
func (m *Meter) MaxOpCost() int64 {
	if m.maxFind > m.maxUnion {
		return m.maxFind
	}
	return m.maxUnion
}

// MeanOpCost returns the average cost over all recorded operations, or 0.
func (m *Meter) MeanOpCost() float64 {
	ops := m.finds + m.unions
	if ops == 0 {
		return 0
	}
	return float64(m.findSteps+m.unionSteps) / float64(ops)
}

// Histogram returns the cost histogram: bucket b counts operations with
// cost in [2^b, 2^(b+1)) (bucket 0: cost ≤ 1), trimmed of trailing zeros.
func (m *Meter) Histogram() []int64 {
	last := -1
	for i, v := range m.hist {
		if v != 0 {
			last = i
		}
	}
	out := make([]int64, last+1)
	copy(out, m.hist[:last+1])
	return out
}
