package unionfind

// Meter wraps a UnionFind and records per-operation cost statistics:
// the quantity Theorem 3 is about is the *worst single operation*, which
// cumulative counters cannot show. Costs are measured as Steps() deltas.
type Meter struct {
	inner UnionFind

	finds, unions int64
	findSteps     int64
	unionSteps    int64
	maxFind       int64
	maxUnion      int64
	// hist[b] counts operations whose cost c satisfies 2^b ≤ c < 2^(b+1),
	// with bucket 0 holding c ≤ 1.
	hist [32]int64
}

var _ UnionFind = (*Meter)(nil)

// NewMeter wraps inner.
func NewMeter(inner UnionFind) *Meter { return &Meter{inner: inner} }

// Unwrap returns the wrapped structure.
func (m *Meter) Unwrap() UnionFind { return m.inner }

func (m *Meter) bucket(cost int64) {
	b := 0
	for c := cost; c > 1; c >>= 1 {
		b++
	}
	if b >= len(m.hist) {
		b = len(m.hist) - 1
	}
	m.hist[b]++
}

// Find forwards to the wrapped structure, recording the operation cost.
func (m *Meter) Find(x int) int {
	before := m.inner.Steps()
	r := m.inner.Find(x)
	cost := m.inner.Steps() - before
	m.finds++
	m.findSteps += cost
	if cost > m.maxFind {
		m.maxFind = cost
	}
	m.bucket(cost)
	return r
}

// Union forwards to the wrapped structure, recording the operation cost.
func (m *Meter) Union(x, y int) (root, a, b int, united bool) {
	before := m.inner.Steps()
	root, a, b, united = m.inner.Union(x, y)
	cost := m.inner.Steps() - before
	m.unions++
	m.unionSteps += cost
	if cost > m.maxUnion {
		m.maxUnion = cost
	}
	m.bucket(cost)
	return root, a, b, united
}

// Len forwards to the wrapped structure.
func (m *Meter) Len() int { return m.inner.Len() }

// CapBound forwards to the wrapped structure.
func (m *Meter) CapBound() int { return m.inner.CapBound() }

// Sets forwards to the wrapped structure.
func (m *Meter) Sets() int { return m.inner.Sets() }

// Steps forwards to the wrapped structure.
func (m *Meter) Steps() int64 { return m.inner.Steps() }

// Stats summarizes what the meter observed.
type Stats struct {
	Finds, Unions         int64
	FindSteps, UnionSteps int64
	MaxFind, MaxUnion     int64
}

// Stats returns the recorded statistics.
func (m *Meter) Stats() Stats {
	return Stats{
		Finds: m.finds, Unions: m.unions,
		FindSteps: m.findSteps, UnionSteps: m.unionSteps,
		MaxFind: m.maxFind, MaxUnion: m.maxUnion,
	}
}

// MaxOpCost returns the largest cost of any single recorded operation.
func (m *Meter) MaxOpCost() int64 {
	if m.maxFind > m.maxUnion {
		return m.maxFind
	}
	return m.maxUnion
}

// MeanOpCost returns the average cost over all recorded operations, or 0.
func (m *Meter) MeanOpCost() float64 {
	ops := m.finds + m.unions
	if ops == 0 {
		return 0
	}
	return float64(m.findSteps+m.unionSteps) / float64(ops)
}

// Histogram returns the cost histogram: bucket b counts operations with
// cost in [2^b, 2^(b+1)) (bucket 0: cost ≤ 1), trimmed of trailing zeros.
func (m *Meter) Histogram() []int64 {
	last := -1
	for i, v := range m.hist {
		if v != 0 {
			last = i
		}
	}
	out := make([]int64, last+1)
	copy(out, m.hist[:last+1])
	return out
}
