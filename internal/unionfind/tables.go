package unionfind

import "sync/atomic"

// Shared read-only initialization templates: identityTable(n)[i] == i,
// onesTable(n)[i] == 1, NegTable(n)[i] == -1. Reset paths (here and in
// the simulator core) block-copy from them instead of looping. Each
// table grows monotonically and is swapped in atomically, so concurrent
// readers always see a fully initialized snapshot.

var (
	identityTab atomic.Pointer[[]int32]
	onesTab     atomic.Pointer[[]int32]
	negTab      atomic.Pointer[[]int32]
)

// table returns a length-n prefix of the template held in tab, growing
// it via fill when needed. The swap is a CompareAndSwap so concurrent
// growers can only ever replace a table with a larger one.
func table(tab *atomic.Pointer[[]int32], n int, fill func([]int32)) []int32 {
	for {
		p := tab.Load()
		if p != nil && len(*p) >= n {
			return (*p)[:n]
		}
		size := 1024
		for size < n {
			size *= 2
		}
		t := make([]int32, size)
		fill(t)
		if tab.CompareAndSwap(p, &t) {
			return t[:n]
		}
	}
}

func identityTable(n int) []int32 {
	return table(&identityTab, n, func(t []int32) {
		for i := range t {
			t[i] = int32(i)
		}
	})
}

func onesTable(n int) []int32 {
	return table(&onesTab, n, func(t []int32) {
		for i := range t {
			t[i] = 1
		}
	})
}

// GrowInt32 returns a length-n slice backed by s's array when
// cap(s) ≥ n, allocating otherwise — the reset-path idiom shared by the
// structures here and the simulator core's arenas.
func GrowInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// NegTable returns a read-only length-n slice of -1s (the paper's nil),
// for block-filling satellite arrays. Callers must not write to it.
func NegTable(n int) []int32 {
	return table(&negTab, n, func(t []int32) {
		for i := range t {
			t[i] = -1
		}
	})
}
