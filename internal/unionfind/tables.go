package unionfind

import "sync/atomic"

// Shared read-only initialization templates: identityTable(n)[i] == i,
// onesTable(n)[i] == 1, NegTable(n)[i] == -1. Reset paths (here and in
// the simulator core) block-copy from them instead of looping. Each
// table grows monotonically and is swapped in atomically, so concurrent
// readers always see a fully initialized snapshot. Templates exist at
// both element widths the forests use (int32, and int16 for the compact
// arrays selected when n ≤ MaxInt16 elements).

// cell is the element width of a forest's parent/weight arrays.
type cell interface {
	~int16 | ~int32
}

type tableCache[T cell] struct {
	p atomic.Pointer[[]T]
}

var (
	identityTab   tableCache[int32]
	onesTab       tableCache[int32]
	negTab        tableCache[int32]
	identityTab16 tableCache[int16]
	onesTab16     tableCache[int16]
)

// get returns a length-n prefix of the cached template, growing it via
// fill when needed. The swap is a CompareAndSwap so concurrent growers
// can only ever replace a table with a larger one.
func (tab *tableCache[T]) get(n int, fill func([]T)) []T {
	for {
		p := tab.p.Load()
		if p != nil && len(*p) >= n {
			return (*p)[:n]
		}
		size := 1024
		for size < n {
			size *= 2
		}
		t := make([]T, size)
		fill(t)
		if tab.p.CompareAndSwap(p, &t) {
			return t[:n]
		}
	}
}

func fillIdentity[T cell](t []T) {
	for i := range t {
		t[i] = T(i)
	}
}

func fillOnes[T cell](t []T) {
	for i := range t {
		t[i] = 1
	}
}

func identityTable(n int) []int32   { return identityTab.get(n, fillIdentity[int32]) }
func onesTable(n int) []int32       { return onesTab.get(n, fillOnes[int32]) }
func identityTable16(n int) []int16 { return identityTab16.get(n, fillIdentity[int16]) }
func onesTable16(n int) []int16     { return onesTab16.get(n, fillOnes[int16]) }

// Grow returns a length-n slice backed by s's array when cap(s) ≥ n,
// allocating otherwise — the reset-path idiom shared by the structures
// here and the simulator core's arenas.
func Grow[T cell](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// GrowInt32 is Grow at the satellite arrays' width, kept as a named
// helper for the simulator core's arenas.
func GrowInt32(s []int32, n int) []int32 { return Grow(s, n) }

// NegTable returns a read-only length-n slice of -1s (the paper's nil),
// for block-filling satellite arrays. Callers must not write to it.
func NegTable(n int) []int32 {
	return negTab.get(n, func(t []int32) {
		for i := range t {
			t[i] = -1
		}
	})
}
