package unionfind

import (
	"fmt"
	mbits "math/bits"
)

// LinkRule selects how Forest.Union chooses the surviving root.
type LinkRule uint8

// Link rules (§3 of the paper; Tarjan & van Leeuwen's taxonomy).
const (
	// LinkBySize points the root of the smaller set at the root of the
	// larger: Tarjan's "weighted union". Tree depth never exceeds ⌊lg n⌋.
	LinkBySize LinkRule = iota
	// LinkByRank points the lower-rank root at the higher-rank root,
	// increasing the winner's rank on ties. Same ⌊lg n⌋ depth bound; the
	// variation Tarjan & van Leeuwen also recommend.
	LinkByRank
	// LinkNaive always points the second root at the first. Depth can
	// reach n-1: the structure previous SLAP work effectively fights.
	LinkNaive
)

// CompressRule selects what Forest.Find does to the traversed path.
type CompressRule uint8

// Compression rules.
const (
	// CompressFull re-points every traversed node directly at the root
	// (two passes).
	CompressFull CompressRule = iota
	// CompressHalve points every other traversed node at its grandparent
	// (one pass): Tarjan & van Leeuwen's "halving", attractive on the
	// SLAP because progress survives aborted finds.
	CompressHalve
	// CompressSplit points every traversed node at its grandparent (one
	// pass): "splitting".
	CompressSplit
	// CompressNone leaves the path untouched.
	CompressNone
)

func (l LinkRule) String() string {
	switch l {
	case LinkBySize:
		return "size"
	case LinkByRank:
		return "rank"
	case LinkNaive:
		return "naive"
	}
	return fmt.Sprintf("LinkRule(%d)", uint8(l))
}

func (c CompressRule) String() string {
	switch c {
	case CompressFull:
		return "full"
	case CompressHalve:
		return "halving"
	case CompressSplit:
		return "splitting"
	case CompressNone:
		return "none"
	}
	return fmt.Sprintf("CompressRule(%d)", uint8(c))
}

// narrowLimit is the largest element count served by the compact int16
// arrays (identifiers and sizes both fit int16 up to it).
const narrowLimit = 32767

// Forest is the classic disjoint-set forest with parent pointers,
// parameterized by link and compression rules. With LinkBySize or
// LinkByRank no find ever costs more than O(lg n) steps, which is what
// bounds Algorithm CC at O(n lg n) overall; with compression the
// amortized cost is O(α(n)).
//
// The parent and weight arrays exist at two widths: compact int16
// arrays serve n ≤ 32767 (halving the cache traffic of find chains —
// the simulator's dominant memory load, where every PE's structure
// spans one image column), and int32 arrays serve larger n. The width
// is selected at Reset; behavior, identifiers, and step charges are
// identical at both widths.
type Forest struct {
	parent   []int32
	weight   []int32 // size (LinkBySize) or rank (LinkByRank); unused for LinkNaive
	parent16 []int16
	weight16 []int16
	small    bool // compact arrays active
	// forceWide pins the int32 arrays regardless of n, so tests can
	// compare the two widths op for op.
	forceWide bool
	link      LinkRule
	comp      CompressRule
	n         int
	sets      int
	steps     int64
}

var _ UnionFind = (*Forest)(nil)

// NewForest returns a forest of n singletons with the given rules.
func NewForest(n int, link LinkRule, comp CompressRule) *Forest {
	f := &Forest{link: link, comp: comp}
	f.Reset(n)
	return f
}

// Reset re-initializes the forest to n singletons in place, keeping the
// link and compression rules and reusing the parent/weight arrays when
// they are large enough. The array width (int16 vs int32) is selected
// here from n. The initial values are block-copied from shared
// templates: simulations reset thousands of forests per run, and a
// memmove beats an element-by-element loop.
func (f *Forest) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("unionfind: negative size %d", n))
	}
	f.n = n
	f.small = n <= narrowLimit && !f.forceWide
	if f.small {
		f.parent16 = Grow(f.parent16, n)
		copy(f.parent16, identityTable16(n))
		if f.link != LinkNaive {
			f.weight16 = Grow(f.weight16, n)
			if f.link == LinkBySize {
				copy(f.weight16, onesTable16(n))
			} else {
				for i := range f.weight16 {
					f.weight16[i] = 0 // ranks start at 0
				}
			}
		}
	} else {
		f.parent = Grow(f.parent, n)
		copy(f.parent, identityTable(n))
		if f.link != LinkNaive {
			f.weight = Grow(f.weight, n)
			if f.link == LinkBySize {
				copy(f.weight, onesTable(n))
			} else {
				for i := range f.weight {
					f.weight[i] = 0 // ranks start at 0
				}
			}
		}
	}
	f.sets = n
	f.steps = 0
}

// findG returns the root of x's tree under the given compression rule
// and the steps to charge (one per traversal and re-pointing, plus the
// initial pointer inspection) without touching any cumulative counter,
// so callers on the simulator's hot path fold the cost exactly once.
func findG[T cell](parent []T, comp CompressRule, x T) (T, int64) {
	switch comp {
	case CompressFull:
		return findFullG(parent, x)
	case CompressHalve:
		cur := x
		steps := int64(1)
		for parent[cur] != cur {
			p := parent[cur]
			g := parent[p]
			parent[cur] = g
			cur = g
			steps++
		}
		return cur, steps
	case CompressSplit:
		cur := x
		steps := int64(1)
		for parent[cur] != cur {
			p := parent[cur]
			g := parent[p]
			parent[cur] = g
			cur = p
			steps++
		}
		return cur, steps
	default: // CompressNone
		cur := x
		steps := int64(1)
		for parent[cur] != cur {
			cur = parent[cur]
			steps++
		}
		return cur, steps
	}
}

// findFullG is the CompressFull find at either array width: root chase,
// then re-point every traversed node at the root. (Kept lean enough to
// inline into the Meter entries and batch loops — a depth-specialized
// fast path was tried and lost more to the blown inlining budget than
// it saved in loads.)
func findFullG[T cell](parent []T, x T) (T, int64) {
	root := x
	steps := int64(1) // inspecting x's pointer
	for parent[root] != root {
		root = parent[root]
		steps++
	}
	for cur := x; parent[cur] != root; {
		next := parent[cur]
		parent[cur] = root
		steps++
		cur = next
	}
	return root, steps
}

// findBitsetG / findSeqG / findRangeG are the batch-find loops behind
// Meter's batch entries: full-compression finds over a set of elements
// with locally accumulated stats. Traversals and compression writes are
// exactly those of per-element findFullG calls in the same order.
func findBitsetG[T cell](parent []T, bits []uint64, roots []int32) (ops, steps, max int64) {
	for wi, word := range bits {
		for word != 0 {
			j := wi<<6 + mbits.TrailingZeros64(word)
			word &= word - 1
			root, s := findFullG(parent, T(j))
			if roots != nil {
				roots[j] = int32(root)
			}
			ops++
			steps += s
			if s > max {
				max = s
			}
		}
	}
	return ops, steps, max
}

func findBitsetIntoG[T cell](parent []T, bits []uint64, roots, costs []int32) (ops, steps, max int64) {
	for wi, word := range bits {
		for word != 0 {
			j := wi<<6 + mbits.TrailingZeros64(word)
			word &= word - 1
			root, s := findFullG(parent, T(j))
			roots[j] = int32(root)
			costs[j] = int32(s)
			ops++
			steps += s
			if s > max {
				max = s
			}
		}
	}
	return ops, steps, max
}

func findSeqG[T cell](parent []T, ids, roots []int32) (ops, steps, max int64) {
	for k, id := range ids {
		root, s := findFullG(parent, T(id))
		if roots != nil {
			roots[k] = int32(root)
		}
		steps += s
		if s > max {
			max = s
		}
	}
	return int64(len(ids)), steps, max
}

func findRangeG[T cell](parent []T, n int, roots []int32) (ops, steps, max int64) {
	for k := 0; k < n; k++ {
		root, s := findFullG(parent, T(k))
		if roots != nil {
			roots[k] = int32(root)
		}
		steps += s
		if s > max {
			max = s
		}
	}
	return int64(n), steps, max
}

// unionPairsG is the batch-union loop behind Meter.UnionCostPairs:
// default-rule unions over a pair list with locally accumulated stats.
func unionPairsG[T cell](parent, weight []T, pairs []Pair) (steps, max, united int64) {
	for _, p := range pairs {
		_, _, _, u, s := unionFullSizeG(parent, weight, T(p.X), T(p.Y))
		steps += s
		if s > max {
			max = s
		}
		if u {
			united++
		}
	}
	return steps, max, united
}

// unionFullSizeG is unionG specialized to the package default rules
// (weighted union, full compression): the Meter's hottest entry calls
// it directly, skipping the per-operation rule dispatch. Charges are
// identical to the general path's.
func unionFullSizeG[T cell](parent, weight []T, x, y T) (root, a, b int, united bool, cost int64) {
	ra, sa := findFullG(parent, x)
	rb, sb := findFullG(parent, y)
	cost = sa + sb
	a, b = int(ra), int(rb)
	if ra == rb {
		return a, a, b, false, cost
	}
	winner, loser := ra, rb
	if weight[winner] < weight[loser] {
		winner, loser = loser, winner
	}
	weight[winner] += weight[loser]
	parent[loser] = winner
	cost++
	return int(winner), a, b, true, cost
}

// unionG links the roots of x's and y's trees per the link rule,
// returning the pre-union identifiers and the total steps to charge
// (two finds plus one link update when the sets were distinct).
func unionG[T cell](parent, weight []T, link LinkRule, comp CompressRule, x, y T) (root, a, b int, united bool, steps int64) {
	ra, sa := findG(parent, comp, x)
	rb, sb := findG(parent, comp, y)
	steps = sa + sb
	a, b = int(ra), int(rb)
	if ra == rb {
		return a, a, b, false, steps
	}
	winner, loser := ra, rb
	switch link {
	case LinkBySize:
		if weight[winner] < weight[loser] {
			winner, loser = loser, winner
		}
		weight[winner] += weight[loser]
	case LinkByRank:
		if weight[winner] < weight[loser] {
			winner, loser = loser, winner
		} else if weight[winner] == weight[loser] {
			weight[winner]++
		}
	case LinkNaive:
		// winner stays ra.
	}
	parent[loser] = winner
	steps++
	return int(winner), a, b, true, steps
}

// findCost returns the root of x's set and the charged cost, folding
// the cost into the cumulative counter once. This is the hot entry the
// Meter wrapper uses.
func (f *Forest) findCost(x int) (int, int64) {
	var root int
	var steps int64
	if f.small {
		var r int16
		r, steps = findG(f.parent16, f.comp, int16(x))
		root = int(r)
	} else {
		var r int32
		r, steps = findG(f.parent, f.comp, int32(x))
		root = int(r)
	}
	f.steps += steps
	return root, steps
}

// unionCost is Union returning the charged cost as well; the Meter
// wrapper's hot entry.
func (f *Forest) unionCost(x, y int) (root, a, b int, united bool, cost int64) {
	if f.small {
		root, a, b, united, cost = unionG(f.parent16, f.weight16, f.link, f.comp, int16(x), int16(y))
	} else {
		root, a, b, united, cost = unionG(f.parent, f.weight, f.link, f.comp, int32(x), int32(y))
	}
	f.steps += cost
	if united {
		f.sets--
	}
	return root, a, b, united, cost
}

// Find returns the root of x's tree, applying the configured compression.
// Every parent-pointer traversal and every re-pointing charges one step
// (steps are counted locally and folded into the cumulative counter once,
// which keeps the hot loops in registers; the charged totals are
// identical to counting per traversal).
func (f *Forest) Find(x int) int {
	root, _ := f.findCost(x)
	return root
}

// Union links the roots of x's and y's trees per the link rule.
func (f *Forest) Union(x, y int) (root, a, b int, united bool) {
	root, a, b, united, _ = f.unionCost(x, y)
	return root, a, b, united
}

// Len returns the number of elements.
func (f *Forest) Len() int { return f.n }

// CapBound returns Len: roots are always elements.
func (f *Forest) CapBound() int { return f.n }

// Sets returns the number of remaining disjoint sets.
func (f *Forest) Sets() int { return f.sets }

// Steps returns the cumulative charged operations.
func (f *Forest) Steps() int64 { return f.steps }

// Depth returns the current depth of element x (0 for roots) without
// charging steps or compressing: a white-box helper for invariant tests
// and for the idle-compression heuristic's victim selection.
func (f *Forest) Depth(x int) int {
	if f.small {
		return depthG(f.parent16, int16(x))
	}
	return depthG(f.parent, int32(x))
}

func depthG[T cell](parent []T, x T) int {
	d := 0
	for cur := x; parent[cur] != cur; cur = parent[cur] {
		d++
	}
	return d
}

// CompressOne performs one unit of background compression rooted at x:
// it re-points x at its grandparent and reports whether anything changed.
// The SLAP idle-compression heuristic (§3) calls this once per idle cycle.
func (f *Forest) CompressOne(x int) bool {
	var changed bool
	if f.small {
		changed = compressOneG(f.parent16, int16(x))
	} else {
		changed = compressOneG(f.parent, int32(x))
	}
	if changed {
		f.steps++
	}
	return changed
}

func compressOneG[T cell](parent []T, x T) bool {
	p := parent[x]
	g := parent[p]
	if g == p {
		return false
	}
	parent[x] = g
	return true
}
