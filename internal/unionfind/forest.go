package unionfind

import "fmt"

// LinkRule selects how Forest.Union chooses the surviving root.
type LinkRule uint8

// Link rules (§3 of the paper; Tarjan & van Leeuwen's taxonomy).
const (
	// LinkBySize points the root of the smaller set at the root of the
	// larger: Tarjan's "weighted union". Tree depth never exceeds ⌊lg n⌋.
	LinkBySize LinkRule = iota
	// LinkByRank points the lower-rank root at the higher-rank root,
	// increasing the winner's rank on ties. Same ⌊lg n⌋ depth bound; the
	// variation Tarjan & van Leeuwen also recommend.
	LinkByRank
	// LinkNaive always points the second root at the first. Depth can
	// reach n-1: the structure previous SLAP work effectively fights.
	LinkNaive
)

// CompressRule selects what Forest.Find does to the traversed path.
type CompressRule uint8

// Compression rules.
const (
	// CompressFull re-points every traversed node directly at the root
	// (two passes).
	CompressFull CompressRule = iota
	// CompressHalve points every other traversed node at its grandparent
	// (one pass): Tarjan & van Leeuwen's "halving", attractive on the
	// SLAP because progress survives aborted finds.
	CompressHalve
	// CompressSplit points every traversed node at its grandparent (one
	// pass): "splitting".
	CompressSplit
	// CompressNone leaves the path untouched.
	CompressNone
)

func (l LinkRule) String() string {
	switch l {
	case LinkBySize:
		return "size"
	case LinkByRank:
		return "rank"
	case LinkNaive:
		return "naive"
	}
	return fmt.Sprintf("LinkRule(%d)", uint8(l))
}

func (c CompressRule) String() string {
	switch c {
	case CompressFull:
		return "full"
	case CompressHalve:
		return "halving"
	case CompressSplit:
		return "splitting"
	case CompressNone:
		return "none"
	}
	return fmt.Sprintf("CompressRule(%d)", uint8(c))
}

// Forest is the classic disjoint-set forest with parent pointers,
// parameterized by link and compression rules. With LinkBySize or
// LinkByRank no find ever costs more than O(lg n) steps, which is what
// bounds Algorithm CC at O(n lg n) overall; with compression the
// amortized cost is O(α(n)).
type Forest struct {
	parent []int32
	weight []int32 // size (LinkBySize) or rank (LinkByRank); unused for LinkNaive
	link   LinkRule
	comp   CompressRule
	sets   int
	steps  int64
}

var _ UnionFind = (*Forest)(nil)

// NewForest returns a forest of n singletons with the given rules.
func NewForest(n int, link LinkRule, comp CompressRule) *Forest {
	f := &Forest{link: link, comp: comp}
	f.Reset(n)
	return f
}

// Reset re-initializes the forest to n singletons in place, keeping the
// link and compression rules and reusing the parent/weight arrays when
// they are large enough. The initial values are block-copied from shared
// templates: simulations reset thousands of forests per run, and a
// memmove beats an element-by-element loop.
func (f *Forest) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("unionfind: negative size %d", n))
	}
	f.parent = GrowInt32(f.parent, n)
	copy(f.parent, identityTable(n))
	if f.link != LinkNaive {
		f.weight = GrowInt32(f.weight, n)
		if f.link == LinkBySize {
			copy(f.weight, onesTable(n))
		} else {
			for i := range f.weight {
				f.weight[i] = 0 // ranks start at 0
			}
		}
	}
	f.sets = n
	f.steps = 0
}

// Find returns the root of x's tree, applying the configured compression.
// Every parent-pointer traversal and every re-pointing charges one step
// (steps are counted locally and folded into the cumulative counter once,
// which keeps the hot loops in registers; the charged totals are
// identical to counting per traversal).
func (f *Forest) Find(x int) int {
	parent := f.parent
	switch f.comp {
	case CompressFull:
		root, steps := f.findFull(int32(x))
		f.steps += steps
		return int(root)
	case CompressHalve:
		cur := int32(x)
		steps := int64(1)
		for parent[cur] != cur {
			p := parent[cur]
			g := parent[p]
			parent[cur] = g
			cur = g
			steps++
		}
		f.steps += steps
		return int(cur)
	case CompressSplit:
		cur := int32(x)
		steps := int64(1)
		for parent[cur] != cur {
			p := parent[cur]
			g := parent[p]
			parent[cur] = g
			cur = p
			steps++
		}
		f.steps += steps
		return int(cur)
	default: // CompressNone
		cur := int32(x)
		steps := int64(1)
		for parent[cur] != cur {
			cur = parent[cur]
			steps++
		}
		f.steps += steps
		return int(cur)
	}
}

// findFull is the CompressFull find: it returns the root and the steps
// to charge (one per traversal and re-pointing, plus the initial pointer
// inspection) without touching the cumulative counter, so callers on the
// simulator's hot path fold the cost exactly once.
func (f *Forest) findFull(x int32) (int32, int64) {
	parent := f.parent
	root := x
	steps := int64(1) // inspecting x's pointer
	for parent[root] != root {
		root = parent[root]
		steps++
	}
	for cur := x; parent[cur] != root; {
		next := parent[cur]
		parent[cur] = root
		steps++
		cur = next
	}
	return root, steps
}

// Union links the roots of x's and y's trees per the link rule.
func (f *Forest) Union(x, y int) (root, a, b int, united bool) {
	ra := int32(f.Find(x))
	rb := int32(f.Find(y))
	a, b = int(ra), int(rb)
	if ra == rb {
		return a, a, b, false
	}
	winner, loser := ra, rb
	switch f.link {
	case LinkBySize:
		if f.weight[winner] < f.weight[loser] {
			winner, loser = loser, winner
		}
		f.weight[winner] += f.weight[loser]
	case LinkByRank:
		if f.weight[winner] < f.weight[loser] {
			winner, loser = loser, winner
		} else if f.weight[winner] == f.weight[loser] {
			f.weight[winner]++
		}
	case LinkNaive:
		// winner stays ra.
	}
	f.parent[loser] = winner
	f.steps++
	f.sets--
	return int(winner), a, b, true
}

// Len returns the number of elements.
func (f *Forest) Len() int { return len(f.parent) }

// CapBound returns Len: roots are always elements.
func (f *Forest) CapBound() int { return len(f.parent) }

// Sets returns the number of remaining disjoint sets.
func (f *Forest) Sets() int { return f.sets }

// Steps returns the cumulative charged operations.
func (f *Forest) Steps() int64 { return f.steps }

// Depth returns the current depth of element x (0 for roots) without
// charging steps or compressing: a white-box helper for invariant tests
// and for the idle-compression heuristic's victim selection.
func (f *Forest) Depth(x int) int {
	d := 0
	for cur := int32(x); f.parent[cur] != cur; cur = f.parent[cur] {
		d++
	}
	return d
}

// CompressOne performs one unit of background compression rooted at x:
// it re-points x at its grandparent and reports whether anything changed.
// The SLAP idle-compression heuristic (§3) calls this once per idle cycle.
func (f *Forest) CompressOne(x int) bool {
	p := f.parent[x]
	g := f.parent[p]
	if g == p {
		return false
	}
	f.parent[x] = g
	f.steps++
	return true
}
