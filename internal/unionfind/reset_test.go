package unionfind

import (
	"math/rand"
	"testing"
)

// driveOps applies a deterministic mixed workload and returns a trace of
// every observable output, so a reset structure can be compared
// op-for-op against a fresh one.
func driveOps(u UnionFind, n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	var trace []int64
	for i := 0; i < 4*n; i++ {
		if rng.Intn(3) == 0 {
			r := u.Find(rng.Intn(n))
			trace = append(trace, int64(r))
		} else {
			root, a, b, united := u.Union(rng.Intn(n), rng.Intn(n))
			v := int64(root)<<32 | int64(a)<<16 | int64(b)
			if united {
				v = -v - 1
			}
			trace = append(trace, v)
		}
		trace = append(trace, u.Steps(), int64(u.Sets()))
	}
	return trace
}

func equalTrace(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestResetMatchesFresh: after any workload, Reset(n') must leave every
// structure observationally identical to a freshly made one — including
// step charges, which the SLAP simulation converts into machine time.
func TestResetMatchesFresh(t *testing.T) {
	sizes := []int{1, 7, 64, 200}
	for _, kind := range Kinds() {
		for _, n0 := range sizes {
			for _, n1 := range sizes {
				reused, _ := Make(kind, n0)
				driveOps(reused, n0, 1) // dirty it
				reused.Reset(n1)
				fresh, _ := Make(kind, n1)
				if reused.Len() != fresh.Len() || reused.Sets() != fresh.Sets() ||
					reused.CapBound() != fresh.CapBound() || reused.Steps() != 0 {
					t.Fatalf("%s: Reset(%d) after run at %d: Len/Sets/CapBound/Steps mismatch", kind, n1, n0)
				}
				got := driveOps(reused, n1, 2)
				want := driveOps(fresh, n1, 2)
				if !equalTrace(got, want) {
					t.Errorf("%s: Reset(%d) after run at %d diverges from fresh structure", kind, n1, n0)
				}
			}
		}
	}
}

// TestResetKUFInvariants: a reused KUF must still satisfy (I1)–(I3).
func TestResetKUFInvariants(t *testing.T) {
	u := NewKUF(50)
	driveOps(u, 50, 3)
	u.Reset(80)
	driveOps(u, 80, 4)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// Explicit arity survives Reset; automatic arity re-derives.
	ua := NewKUFArity(256, 3)
	ua.Reset(1024)
	if ua.Arity() != 3 {
		t.Fatalf("explicit arity changed on Reset: %d", ua.Arity())
	}
	ud := NewKUF(16)
	ud.Reset(1 << 16)
	if ud.Arity() != DefaultArity(1<<16) {
		t.Fatalf("automatic arity not re-derived: got %d want %d", ud.Arity(), DefaultArity(1<<16))
	}
}

// TestMeterReset: Reset clears statistics, ResetStats keeps the inner
// structure's state.
func TestMeterReset(t *testing.T) {
	m := NewMeter(New(32))
	driveOps(m, 32, 5)
	if m.Stats().Finds == 0 {
		t.Fatal("workload should record finds")
	}
	m.Reset(32)
	st := m.Stats()
	if st != (Stats{}) || m.MaxOpCost() != 0 || len(m.Histogram()) != 0 {
		t.Fatalf("Reset left stats behind: %+v", st)
	}
	m.Union(0, 1)
	m.ResetStats()
	if m.Sets() != 31 {
		t.Fatal("ResetStats must not touch the inner structure")
	}
	if m.Stats().Unions != 0 {
		t.Fatal("ResetStats must clear statistics")
	}
}

// TestQuickFindNoAllocUnions: the member lists are intrusive, so a full
// union workload on a reset structure performs zero allocations.
func TestQuickFindNoAllocUnions(t *testing.T) {
	const n = 1 << 10
	q := NewQuickFind(n)
	allocs := testing.AllocsPerRun(10, func() {
		q.Reset(n)
		for span := 1; span < n; span *= 2 {
			for base := 0; base+span < n; base += 2 * span {
				q.Union(base, base+span)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("QuickFind union workload allocates %.1f times per run, want 0", allocs)
	}
}
