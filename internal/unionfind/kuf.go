package unionfind

import (
	"fmt"
	"math/bits"
)

// KUF is a k-ary UF-tree disjoint-set structure in the style of Blum
// (SIAM J. Comput. 15(4), 1986), cited by the paper as the ingredient of
// Theorem 3: every single operation — not merely the amortized cost —
// completes in O(lg n / lg lg n) steps.
//
// Elements are the leaves of a forest of trees satisfying, for arity
// k ≥ 2, the invariants
//
//	(I1) within one tree every leaf is at the same depth, equal to the
//	     height stored at the root;
//	(I2) every internal node other than the root has ≥ k children;
//	(I3) every root of height ≥ 1 has between 2 and 2k children
//	     (singleton sets are bare leaves of height 0).
//
// (I1)+(I2)+(I3) give size(tree of height h) ≥ 2·k^(h-1), hence
// h ≤ 1 + log_k(n/2). Find walks leaf→root: O(h). Union either splices
// child lists (moving ≤ 2k children, each one pointer update) or creates
// a new root after rebalancing the two old roots' child counts, so it
// costs O(k + h). With k = ⌈lg n / lg lg n⌉ both operations are
// O(lg n / lg lg n) worst case.
//
// The exact case analysis (heights hA ≤ hB):
//
//	hA < hB, hA = 0:  attach the leaf to a height-1 node of B. If that
//	                  node is B's root and already has 2k children, split
//	                  the root: k of its children and the new leaf move
//	                  under a fresh height-1 node, and a fresh height-2
//	                  root adopts both (each side ≥ k ✓).
//	hA < hB, hA ≥ 1:  move all of A's root children (≤ 2k) under the node
//	                  at height hA on B's leftmost path; that node is not
//	                  a root since hA < hB, so only (I2), a lower bound,
//	                  applies to it.
//	hA = hB = 0:      fresh height-1 root adopting both leaves.
//	hA = hB ≥ 1:      let cA ≤ cB be the root child counts. If
//	                  cA+cB ≤ 2k, move A's children (cA ≤ k of them)
//	                  under B's root. Otherwise rebalance so both roots
//	                  have ≥ k children (move k−cA ≤ k children from B
//	                  to A if needed) and adopt both under a fresh root
//	                  of height h+1 with exactly 2 children.
type KUF struct {
	k     int
	n     int
	sets  int
	steps int64
	// autoK records that k was chosen by DefaultArity(n), so Reset to a
	// different n re-derives it exactly as a fresh NewKUF would.
	autoK bool

	parent     []int32 // parentNone for roots, parentDead for freed nodes
	height     []int16 // immutable per node
	firstChild []int32
	nextSib    []int32
	prevSib    []int32
	childCount []int32
}

const (
	parentNone int32 = -1
	parentDead int32 = -2
)

var _ UnionFind = (*KUF)(nil)

// NewKUF returns a KUF over n singleton sets with the Theorem 3 arity
// k = max(2, ⌈lg n / lg lg n⌉).
func NewKUF(n int) *KUF {
	u := NewKUFArity(n, DefaultArity(n))
	u.autoK = true
	return u
}

// DefaultArity returns max(2, ⌈lg n / lg lg n⌉).
func DefaultArity(n int) int {
	if n < 4 {
		return 2
	}
	lg := bits.Len(uint(n - 1))    // ⌈lg n⌉
	lglg := bits.Len(uint(lg - 1)) // ⌈lg lg n⌉
	if lglg < 1 {
		lglg = 1
	}
	k := (lg + lglg - 1) / lglg
	if k < 2 {
		k = 2
	}
	return k
}

// NewKUFArity returns a KUF with an explicit arity k ≥ 2.
func NewKUFArity(n, k int) *KUF {
	if k < 2 {
		panic(fmt.Sprintf("unionfind: KUF arity %d < 2", k))
	}
	u := &KUF{k: k}
	u.Reset(n)
	return u
}

// Reset re-initializes the structure to n singleton leaves in place,
// truncating any internal nodes and reusing the node arrays. A KUF built
// with NewKUF re-derives the Theorem 3 arity for the new n; an explicit
// NewKUFArity arity is kept.
func (u *KUF) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("unionfind: negative size %d", n))
	}
	if u.autoK {
		u.k = DefaultArity(n)
	}
	u.n = n
	u.sets = n
	u.steps = 0
	// The node arrays grow independently in newNode, and Go's size-class
	// rounding can leave them with different capacities (int16 vs int32
	// element sizes round differently) — so every capacity is checked,
	// not just parent's.
	if cap(u.parent) < n || cap(u.height) < n || cap(u.firstChild) < n ||
		cap(u.nextSib) < n || cap(u.prevSib) < n || cap(u.childCount) < n {
		cap0 := n + n/2 + 4
		u.parent = make([]int32, n, cap0)
		u.height = make([]int16, n, cap0)
		u.firstChild = make([]int32, n, cap0)
		u.nextSib = make([]int32, n, cap0)
		u.prevSib = make([]int32, n, cap0)
		u.childCount = make([]int32, n, cap0)
	} else {
		u.parent = u.parent[:n]
		u.height = u.height[:n]
		u.firstChild = u.firstChild[:n]
		u.nextSib = u.nextSib[:n]
		u.prevSib = u.prevSib[:n]
		u.childCount = u.childCount[:n]
	}
	for i := 0; i < n; i++ {
		u.parent[i] = parentNone
		u.height[i] = 0
		u.firstChild[i] = -1
		u.nextSib[i] = -1
		u.prevSib[i] = -1
		u.childCount[i] = 0
	}
}

// Arity returns the configured k.
func (u *KUF) Arity() int { return u.k }

// Len returns the number of elements.
func (u *KUF) Len() int { return u.n }

// CapBound returns 3n+1: n leaves plus at most two fresh internal nodes
// per effective union, of which there are at most n−1.
func (u *KUF) CapBound() int { return 3*u.n + 1 }

// Sets returns the current number of disjoint sets.
func (u *KUF) Sets() int { return u.sets }

// Steps returns the cumulative charged operations.
func (u *KUF) Steps() int64 { return u.steps }

// Find walks from leaf x to its root, one step per edge.
func (u *KUF) Find(x int) int {
	cur := int32(x)
	u.steps++
	for u.parent[cur] != parentNone {
		cur = u.parent[cur]
		u.steps++
	}
	return int(cur)
}

// newNode allocates an internal node of the given height.
func (u *KUF) newNode(height int16) int32 {
	id := int32(len(u.parent))
	u.parent = append(u.parent, parentNone)
	u.height = append(u.height, height)
	u.firstChild = append(u.firstChild, -1)
	u.nextSib = append(u.nextSib, -1)
	u.prevSib = append(u.prevSib, -1)
	u.childCount = append(u.childCount, 0)
	u.steps++
	return id
}

// addChild links c as a child of p (one pointer splice: one step).
func (u *KUF) addChild(p, c int32) {
	u.parent[c] = p
	u.prevSib[c] = -1
	u.nextSib[c] = u.firstChild[p]
	if u.firstChild[p] != -1 {
		u.prevSib[u.firstChild[p]] = c
	}
	u.firstChild[p] = c
	u.childCount[p]++
	u.steps++
}

// removeChild unlinks c from its parent p.
func (u *KUF) removeChild(p, c int32) {
	if u.prevSib[c] != -1 {
		u.nextSib[u.prevSib[c]] = u.nextSib[c]
	} else {
		u.firstChild[p] = u.nextSib[c]
	}
	if u.nextSib[c] != -1 {
		u.prevSib[u.nextSib[c]] = u.prevSib[c]
	}
	u.nextSib[c] = -1
	u.prevSib[c] = -1
	u.childCount[p]--
	u.steps++
}

// moveAllChildren reparents every child of from under to and marks from
// dead. Cost: one step per moved child.
func (u *KUF) moveAllChildren(from, to int32) {
	for c := u.firstChild[from]; c != -1; {
		next := u.nextSib[c]
		u.removeChild(from, c)
		u.addChild(to, c)
		c = next
	}
	u.parent[from] = parentDead
	u.childCount[from] = 0
	u.firstChild[from] = -1
}

// moveChildren moves m children from from to to.
func (u *KUF) moveChildren(from, to int32, m int) {
	for i := 0; i < m; i++ {
		c := u.firstChild[from]
		if c == -1 {
			panic("unionfind: KUF moveChildren underflow")
		}
		u.removeChild(from, c)
		u.addChild(to, c)
	}
}

// walkDown follows first-child pointers from node v for depth steps.
func (u *KUF) walkDown(v int32, depth int) int32 {
	for i := 0; i < depth; i++ {
		v = u.firstChild[v]
		u.steps++
	}
	return v
}

// Union merges the sets containing x and y per the case analysis above.
func (u *KUF) Union(x, y int) (root, a, b int, united bool) {
	ra := int32(u.Find(x))
	rb := int32(u.Find(y))
	a, b = int(ra), int(rb)
	if ra == rb {
		return a, a, b, false
	}
	if u.height[ra] > u.height[rb] {
		ra, rb = rb, ra
	}
	hA, hB := int(u.height[ra]), int(u.height[rb])
	var newRoot int32
	switch {
	case hA < hB && hA == 0:
		if hB == 1 {
			if int(u.childCount[rb]) < 2*u.k {
				u.addChild(rb, ra)
				newRoot = rb
			} else {
				// Root split: k of rb's children plus the new leaf move
				// under a fresh height-1 node; a fresh height-2 root
				// adopts both halves.
				w := u.newNode(1)
				u.moveChildren(rb, w, u.k)
				u.addChild(w, ra)
				r := u.newNode(2)
				u.addChild(r, rb)
				u.addChild(r, w)
				newRoot = r
			}
		} else {
			v := u.walkDown(rb, hB-1) // height-1 node, not the root
			u.addChild(v, ra)
			newRoot = rb
		}
	case hA < hB:
		v := u.walkDown(rb, hB-hA) // height-hA node, not the root
		u.moveAllChildren(ra, v)
		newRoot = rb
	case hA == 0: // hA == hB == 0
		r := u.newNode(1)
		u.addChild(r, ra)
		u.addChild(r, rb)
		newRoot = r
	default: // hA == hB ≥ 1
		if u.childCount[ra] > u.childCount[rb] {
			ra, rb = rb, ra
		}
		cA, cB := int(u.childCount[ra]), int(u.childCount[rb])
		if cA+cB <= 2*u.k {
			u.moveAllChildren(ra, rb)
			newRoot = rb
		} else {
			if cA < u.k {
				u.moveChildren(rb, ra, u.k-cA)
			}
			r := u.newNode(int16(hA + 1))
			u.addChild(r, ra)
			u.addChild(r, rb)
			newRoot = r
		}
	}
	u.sets--
	return int(newRoot), a, b, true
}

// Height returns the height of the tree rooted at root (a diagnostic for
// the Theorem 3 experiments; charges no steps).
func (u *KUF) Height(root int) int { return int(u.height[root]) }

// Validate checks invariants (I1)–(I3) plus structural consistency of the
// sibling lists, returning a descriptive error on the first violation.
// It is O(nodes) and meant for tests.
func (u *KUF) Validate() error {
	liveRoots := 0
	for id := range u.parent {
		p := u.parent[id]
		if p == parentDead {
			continue
		}
		// Structural consistency of the child list.
		count := int32(0)
		for c := u.firstChild[id]; c != -1; c = u.nextSib[c] {
			if u.parent[c] != int32(id) {
				return fmt.Errorf("kuf: node %d lists child %d whose parent is %d", id, c, u.parent[c])
			}
			if u.height[c] != u.height[id]-1 {
				return fmt.Errorf("kuf: node %d (h=%d) has child %d of height %d", id, u.height[id], c, u.height[c])
			}
			if u.nextSib[c] != -1 && u.prevSib[u.nextSib[c]] != c {
				return fmt.Errorf("kuf: broken sibling links at %d", c)
			}
			count++
		}
		if count != u.childCount[id] {
			return fmt.Errorf("kuf: node %d childCount=%d but list has %d", id, u.childCount[id], count)
		}
		if id < u.n && u.height[id] != 0 {
			return fmt.Errorf("kuf: element %d has height %d", id, u.height[id])
		}
		if p == parentNone {
			liveRoots++
			if u.height[id] >= 1 && (count < 2 || count > int32(2*u.k)) {
				return fmt.Errorf("kuf: root %d (h=%d) has %d children, want [2, %d]", id, u.height[id], count, 2*u.k)
			}
		} else {
			if int(id) >= u.n && count < int32(u.k) {
				return fmt.Errorf("kuf: internal non-root %d has %d children, want ≥ %d", id, count, u.k)
			}
		}
	}
	if liveRoots != u.sets {
		return fmt.Errorf("kuf: %d live roots but Sets()=%d", liveRoots, u.sets)
	}
	// (I1): every leaf's depth equals its root's height.
	for x := 0; x < u.n; x++ {
		depth := 0
		cur := int32(x)
		for u.parent[cur] != parentNone {
			if u.parent[cur] == parentDead {
				return fmt.Errorf("kuf: leaf %d reaches dead node", x)
			}
			cur = u.parent[cur]
			depth++
		}
		if depth != int(u.height[cur]) {
			return fmt.Errorf("kuf: leaf %d at depth %d under root %d of height %d", x, depth, cur, u.height[cur])
		}
	}
	return nil
}
