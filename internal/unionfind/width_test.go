package unionfind

import (
	"math/rand"
	"testing"
)

// TestForestWidthEquivalence drives the compact int16 arrays and the
// wide int32 arrays through an identical operation stream and demands
// identical identifiers, united flags, set counts, and per-operation
// step charges: the array width is a pure layout choice, invisible to
// the simulator's accounting.
func TestForestWidthEquivalence(t *testing.T) {
	for _, link := range []LinkRule{LinkBySize, LinkByRank, LinkNaive} {
		for _, comp := range []CompressRule{CompressFull, CompressHalve, CompressSplit, CompressNone} {
			const n = 1000
			narrow := NewForest(n, link, comp)
			wide := &Forest{link: link, comp: comp, forceWide: true}
			wide.Reset(n)
			if !narrow.small || wide.small {
				t.Fatalf("%v/%v: width selection broken (narrow.small=%v wide.small=%v)",
					link, comp, narrow.small, wide.small)
			}
			rng := rand.New(rand.NewSource(int64(uint8(link))<<8 | int64(uint8(comp))))
			for op := 0; op < 5000; op++ {
				if rng.Intn(3) == 0 {
					x := rng.Intn(n)
					rn, cn := narrow.findCost(x)
					rw, cw := wide.findCost(x)
					if rn != rw || cn != cw {
						t.Fatalf("%v/%v op %d: Find(%d) diverged: narrow (%d, %d) wide (%d, %d)",
							link, comp, op, x, rn, cn, rw, cw)
					}
				} else {
					x, y := rng.Intn(n), rng.Intn(n)
					rn, an, bn, un, cn := narrow.unionCost(x, y)
					rw, aw, bw, uw, cw := wide.unionCost(x, y)
					if rn != rw || an != aw || bn != bw || un != uw || cn != cw {
						t.Fatalf("%v/%v op %d: Union(%d,%d) diverged: narrow (%d,%d,%d,%v,%d) wide (%d,%d,%d,%v,%d)",
							link, comp, op, x, y, rn, an, bn, un, cn, rw, aw, bw, uw, cw)
					}
				}
			}
			if narrow.Steps() != wide.Steps() || narrow.Sets() != wide.Sets() {
				t.Fatalf("%v/%v: cumulative state diverged: steps %d/%d sets %d/%d",
					link, comp, narrow.Steps(), wide.Steps(), narrow.Sets(), wide.Sets())
			}
		}
	}
}

// TestForestWidthSwitchOnReset crosses the narrowLimit boundary in both
// directions on one structure: Reset must always leave a correct
// forest of the newly selected width.
func TestForestWidthSwitchOnReset(t *testing.T) {
	f := NewForest(100, LinkBySize, CompressFull)
	if !f.small {
		t.Fatal("n=100 should select the compact arrays")
	}
	check := func(n int) {
		t.Helper()
		for i := 0; i+1 < n; i += 2 {
			if _, _, _, united := f.Union(i, i+1); !united {
				t.Fatalf("n=%d: Union(%d,%d) not united after reset", n, i, i+1)
			}
		}
		if want := n - n/2; f.Sets() != want {
			t.Fatalf("n=%d: %d sets, want %d", n, f.Sets(), want)
		}
		if f.Find(0) != f.Find(1) {
			t.Fatalf("n=%d: 0 and 1 not joined", n)
		}
	}
	for _, n := range []int{100, narrowLimit, narrowLimit + 1, 70000, 8, narrowLimit + 1, 100} {
		f.Reset(n)
		wantSmall := n <= narrowLimit
		if f.small != wantSmall {
			t.Fatalf("Reset(%d): small=%v, want %v", n, f.small, wantSmall)
		}
		check(n)
	}
}

// TestMeterForestWidths runs the Meter fast paths over both widths.
func TestMeterForestWidths(t *testing.T) {
	for _, n := range []int{500, narrowLimit + 100} {
		m := NewMeter(NewForest(n, LinkBySize, CompressFull))
		for i := 0; i+1 < n; i += 2 {
			m.Union(i, i+1)
		}
		for i := 0; i < n; i++ {
			m.Find(i)
		}
		st := m.Stats()
		if st.Finds != int64(n) || st.Unions != int64(n/2) {
			t.Fatalf("n=%d: stats %+v", n, st)
		}
		if m.Steps() == 0 || m.MaxOpCost() == 0 {
			t.Fatalf("n=%d: no costs recorded", n)
		}
	}
}
