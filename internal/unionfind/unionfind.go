// Package unionfind provides the disjoint-set (union–find) structures at
// the center of Greenberg's SLAP connected-components algorithm, with the
// exact cost accounting the paper's analysis charges: every pointer
// traversal and link update counts one step.
//
// The package offers:
//
//   - QuickFind: sets as relabeled member lists; O(1) finds, O(min set)
//     unions. The conformance oracle for the other structures.
//   - Forest: the classic linked forest with every combination the paper
//     discusses (§3): naive linking, union by size (Tarjan's weighted
//     union), union by rank; path compression, path halving, path
//     splitting, or no compression (Tarjan; Tarjan & van Leeuwen).
//   - KUF: a k-ary UF-tree structure in the style of Blum's data
//     structure, giving O(lg n / lg lg n) worst-case time per single
//     operation, the ingredient of the paper's Theorem 3.
//   - Meter: a wrapper recording per-operation cost extremes and a
//     histogram, used to demonstrate worst-case single-operation behavior.
//
// All implementations expose a cumulative Steps counter; callers charge
// simulated SLAP time by differencing it around operations.
package unionfind

// UnionFind is a disjoint-set structure over the elements 0..Len()-1.
//
// Set identifiers are "node ids": small non-negative integers below
// CapBound(). For forest-backed structures the id of a set is one of its
// elements; KUF may return ids of internal nodes (≥ Len()). Identifiers
// are stable between unions touching the set.
type UnionFind interface {
	// Reset re-initializes the structure to n singleton sets in place,
	// reusing previously allocated memory where the capacity allows. After
	// Reset the structure is indistinguishable from a freshly constructed
	// one of the same kind and size: identical identifiers, identical
	// per-operation step charges, Steps() back at zero. This is what makes
	// the structures reusable across simulation runs without a fresh
	// allocation storm per call.
	Reset(n int)

	// Find returns the identifier of the set containing x.
	Find(x int) int

	// Union merges the sets containing x and y.
	// When the two sets were distinct, united is true, root identifies the
	// merged set, and a, b are the identifiers the two sets had before the
	// union (callers fold satellite data with s[root] = merge(s[a], s[b]);
	// root may equal a or b, or be a fresh identifier).
	// When x and y were already together, united is false and root = a = b.
	Union(x, y int) (root, a, b int, united bool)

	// Len returns the number of elements.
	Len() int

	// CapBound returns an exclusive upper bound on every identifier this
	// structure can ever return, so callers can size satellite arrays once.
	CapBound() int

	// Sets returns the current number of disjoint sets.
	Sets() int

	// Steps returns the cumulative number of charged unit operations:
	// pointer traversals, relabelings and link updates. This is the
	// quantity the SLAP simulation converts into machine time.
	Steps() int64
}

// New returns the package's default structure for n elements: the
// weighted-union, path-compressing Forest that the paper's §3 analyzes
// first (O(lg n) per operation worst case, ~constant amortized).
func New(n int) UnionFind { return NewForest(n, LinkBySize, CompressFull) }

// Kind names a union-find implementation for CLI flags and experiment
// tables.
type Kind string

// The implementation kinds accepted by Make.
const (
	KindQuickFind  Kind = "quickfind"
	KindTarjan     Kind = "tarjan"     // size + full compression
	KindRank       Kind = "rank"       // rank + full compression
	KindHalving    Kind = "halving"    // size + path halving
	KindSplitting  Kind = "splitting"  // size + path splitting
	KindNoCompress Kind = "nocompress" // size, no compression
	KindNaiveLink  Kind = "naivelink"  // naive link + full compression
	KindBlum       Kind = "blum"       // k-UF trees (Theorem 3)
)

// Kinds lists every Kind accepted by Make, in presentation order.
func Kinds() []Kind {
	return []Kind{
		KindQuickFind, KindTarjan, KindRank, KindHalving,
		KindSplitting, KindNoCompress, KindNaiveLink, KindBlum,
	}
}

// Valid reports whether kind names an implementation Make accepts.
// (Derived from Make itself, so the two can never drift apart.)
func Valid(kind Kind) bool {
	_, ok := Make(kind, 0)
	return ok
}

// Make constructs the named implementation for n elements. It returns
// false for unknown kinds.
func Make(kind Kind, n int) (UnionFind, bool) {
	switch kind {
	case KindQuickFind:
		return NewQuickFind(n), true
	case KindTarjan:
		return NewForest(n, LinkBySize, CompressFull), true
	case KindRank:
		return NewForest(n, LinkByRank, CompressFull), true
	case KindHalving:
		return NewForest(n, LinkBySize, CompressHalve), true
	case KindSplitting:
		return NewForest(n, LinkBySize, CompressSplit), true
	case KindNoCompress:
		return NewForest(n, LinkBySize, CompressNone), true
	case KindNaiveLink:
		return NewForest(n, LinkNaive, CompressFull), true
	case KindBlum:
		return NewKUF(n), true
	}
	return nil, false
}
