package unionfind

import "fmt"

// QuickFind keeps an explicit set label per element plus member lists, so
// Find is a single array read and Union relabels the smaller set. Total
// time for n-1 unions is O(n lg n); individual finds are O(1). It serves
// as the conformance oracle in tests and as the simplest structure whose
// behaviour is obviously correct.
//
// Member lists are intrusive singly-linked lists over three flat arrays
// (head/tail per set id, next per element), so a Union splices the
// absorbed list onto the survivor in O(1) pointer updates and never
// allocates: the structure's whole footprint is fixed at Reset time.
type QuickFind struct {
	label []int32 // element -> set id (the id is some member element)
	head  []int32 // set id -> first member, -1 for dead ids
	tail  []int32 // set id -> last member
	next  []int32 // element -> next member of its set, -1 at the end
	size  []int32 // set id -> member count
	sets  int
	steps int64
}

var _ UnionFind = (*QuickFind)(nil)

// NewQuickFind returns a QuickFind over n singleton sets.
func NewQuickFind(n int) *QuickFind {
	q := &QuickFind{}
	q.Reset(n)
	return q
}

// Reset re-initializes the structure to n singleton sets in place,
// reusing the backing arrays when they are large enough.
func (q *QuickFind) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("unionfind: negative size %d", n))
	}
	q.label = GrowInt32(q.label, n)
	q.head = GrowInt32(q.head, n)
	q.tail = GrowInt32(q.tail, n)
	q.next = GrowInt32(q.next, n)
	q.size = GrowInt32(q.size, n)
	for i := 0; i < n; i++ {
		q.label[i] = int32(i)
		q.head[i] = int32(i)
		q.tail[i] = int32(i)
		q.next[i] = -1
		q.size[i] = 1
	}
	q.sets = n
	q.steps = 0
}

// Find returns the set label of x in one step.
func (q *QuickFind) Find(x int) int {
	q.steps++
	return int(q.label[x])
}

// Union relabels the smaller of the two sets and splices its member list
// onto the survivor's.
func (q *QuickFind) Union(x, y int) (root, a, b int, united bool) {
	a, b = int(q.label[x]), int(q.label[y])
	q.steps += 2
	if a == b {
		return a, a, b, false
	}
	keep, absorb := int32(a), int32(b)
	if q.size[keep] < q.size[absorb] {
		keep, absorb = absorb, keep
	}
	for m := q.head[absorb]; m != -1; m = q.next[m] {
		q.label[m] = keep
		q.steps++
	}
	q.next[q.tail[keep]] = q.head[absorb]
	q.tail[keep] = q.tail[absorb]
	q.size[keep] += q.size[absorb]
	q.head[absorb] = -1
	q.sets--
	return int(keep), a, b, true
}

// Len returns the number of elements.
func (q *QuickFind) Len() int { return len(q.label) }

// CapBound returns Len: identifiers are always elements.
func (q *QuickFind) CapBound() int { return len(q.label) }

// Sets returns the number of remaining disjoint sets.
func (q *QuickFind) Sets() int { return q.sets }

// Steps returns the cumulative charged operations.
func (q *QuickFind) Steps() int64 { return q.steps }
