package unionfind

import "fmt"

// QuickFind keeps an explicit set label per element plus member lists, so
// Find is a single array read and Union relabels the smaller set. Total
// time for n-1 unions is O(n lg n); individual finds are O(1). It serves
// as the conformance oracle in tests and as the simplest structure whose
// behaviour is obviously correct.
type QuickFind struct {
	label   []int32   // element -> set id (the id is some member element)
	members [][]int32 // set id -> member elements; nil for dead ids
	sets    int
	steps   int64
}

var _ UnionFind = (*QuickFind)(nil)

// NewQuickFind returns a QuickFind over n singleton sets.
func NewQuickFind(n int) *QuickFind {
	if n < 0 {
		panic(fmt.Sprintf("unionfind: negative size %d", n))
	}
	q := &QuickFind{
		label:   make([]int32, n),
		members: make([][]int32, n),
		sets:    n,
	}
	for i := range q.label {
		q.label[i] = int32(i)
		q.members[i] = []int32{int32(i)}
	}
	return q
}

// Find returns the set label of x in one step.
func (q *QuickFind) Find(x int) int {
	q.steps++
	return int(q.label[x])
}

// Union relabels the smaller of the two sets.
func (q *QuickFind) Union(x, y int) (root, a, b int, united bool) {
	a, b = int(q.label[x]), int(q.label[y])
	q.steps += 2
	if a == b {
		return a, a, b, false
	}
	keep, absorb := a, b
	if len(q.members[keep]) < len(q.members[absorb]) {
		keep, absorb = absorb, keep
	}
	for _, m := range q.members[absorb] {
		q.label[m] = int32(keep)
		q.steps++
	}
	q.members[keep] = append(q.members[keep], q.members[absorb]...)
	q.members[absorb] = nil
	q.sets--
	return keep, a, b, true
}

// Len returns the number of elements.
func (q *QuickFind) Len() int { return len(q.label) }

// CapBound returns Len: identifiers are always elements.
func (q *QuickFind) CapBound() int { return len(q.label) }

// Sets returns the number of remaining disjoint sets.
func (q *QuickFind) Sets() int { return q.sets }

// Steps returns the cumulative charged operations.
func (q *QuickFind) Steps() int64 { return q.steps }
