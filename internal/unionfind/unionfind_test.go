package unionfind

import (
	"fmt"
	"testing"
	"testing/quick"
)

// allKinds builds one instance of every implementation for n elements.
func allKinds(t *testing.T, n int) map[Kind]UnionFind {
	t.Helper()
	out := map[Kind]UnionFind{}
	for _, k := range Kinds() {
		u, ok := Make(k, n)
		if !ok {
			t.Fatalf("Make(%q) failed", k)
		}
		out[k] = u
	}
	return out
}

func TestMakeUnknownKind(t *testing.T) {
	if _, ok := Make("bogus", 4); ok {
		t.Fatal("Make should reject unknown kinds")
	}
}

func TestSingletonsInitially(t *testing.T) {
	for kind, u := range allKinds(t, 5) {
		if u.Len() != 5 || u.Sets() != 5 {
			t.Fatalf("%s: want 5 singletons, got Len=%d Sets=%d", kind, u.Len(), u.Sets())
		}
		seen := map[int]bool{}
		for i := 0; i < 5; i++ {
			r := u.Find(i)
			if r < 0 || r >= u.CapBound() {
				t.Fatalf("%s: Find(%d)=%d outside CapBound %d", kind, i, r, u.CapBound())
			}
			if seen[r] {
				t.Fatalf("%s: two singletons share id %d", kind, r)
			}
			seen[r] = true
		}
	}
}

func TestBasicUnionSemantics(t *testing.T) {
	for kind, u := range allKinds(t, 6) {
		root, a, b, united := u.Union(0, 1)
		if !united {
			t.Fatalf("%s: first union should unite", kind)
		}
		if a == b {
			t.Fatalf("%s: pre-union ids should differ", kind)
		}
		if root >= u.CapBound() {
			t.Fatalf("%s: root %d outside CapBound", kind, root)
		}
		if u.Find(0) != u.Find(1) {
			t.Fatalf("%s: 0 and 1 should share a set", kind)
		}
		if u.Find(0) != root {
			t.Fatalf("%s: Find should return the union's root", kind)
		}
		if u.Sets() != 5 {
			t.Fatalf("%s: want 5 sets after one union, got %d", kind, u.Sets())
		}
		_, a2, b2, united2 := u.Union(1, 0)
		if united2 {
			t.Fatalf("%s: re-union should be a no-op", kind)
		}
		if a2 != b2 {
			t.Fatalf("%s: no-op union should report equal ids", kind)
		}
		if u.Find(2) == u.Find(0) {
			t.Fatalf("%s: 2 should remain separate", kind)
		}
	}
}

func TestStepsMonotone(t *testing.T) {
	for kind, u := range allKinds(t, 32) {
		prev := u.Steps()
		for i := 0; i < 31; i++ {
			u.Union(i, i+1)
			if u.Steps() <= prev {
				t.Fatalf("%s: Steps must strictly increase across a union", kind)
			}
			prev = u.Steps()
		}
		u.Find(0)
		if u.Steps() <= prev {
			t.Fatalf("%s: Steps must increase across a find", kind)
		}
	}
}

// opSeq drives an implementation and the QuickFind oracle through the same
// operations, checking partition equivalence after every step.
func checkAgainstOracle(t *testing.T, kind Kind, n int, ops []uint32) {
	t.Helper()
	u, _ := Make(kind, n)
	oracle := NewQuickFind(n)
	for i, op := range ops {
		x := int(op>>8) % n
		y := int(op>>20) % n
		if op&1 == 0 {
			_, _, _, got := u.Union(x, y)
			_, _, _, want := oracle.Union(x, y)
			if got != want {
				t.Fatalf("%s: op %d Union(%d,%d) united=%v want %v", kind, i, x, y, got, want)
			}
		} else {
			same := u.Find(x) == u.Find(y)
			wantSame := oracle.Find(x) == oracle.Find(y)
			if same != wantSame {
				t.Fatalf("%s: op %d Find(%d)/Find(%d) same=%v want %v", kind, i, x, y, same, wantSame)
			}
		}
		if u.Sets() != oracle.Sets() {
			t.Fatalf("%s: op %d Sets=%d want %d", kind, i, u.Sets(), oracle.Sets())
		}
	}
	// Final partition must match exactly: same-set relation on all pairs.
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if (u.Find(x) == u.Find(y)) != (oracle.Find(x) == oracle.Find(y)) {
				t.Fatalf("%s: final partition differs at (%d,%d)", kind, x, y)
			}
		}
	}
}

func TestConformanceQuick(t *testing.T) {
	for _, kind := range Kinds() {
		if kind == KindQuickFind {
			continue
		}
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			f := func(ops []uint32, szSeed uint8) bool {
				n := int(szSeed%60) + 2
				checkAgainstOracle(t, kind, n, ops)
				return !t.Failed()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestForestDepthBoundWeighted(t *testing.T) {
	// With union by size and no compression, depth ≤ ⌊lg n⌋ — the fact
	// behind the paper's O(n lg n) bound. Drive a balanced merge pattern,
	// the worst case.
	for _, n := range []int{16, 64, 256, 1024} {
		f := NewForest(n, LinkBySize, CompressNone)
		for span := 1; span < n; span *= 2 {
			for base := 0; base+span < n; base += 2 * span {
				f.Union(base, base+span)
			}
		}
		maxDepth := 0
		for i := 0; i < n; i++ {
			if d := f.Depth(i); d > maxDepth {
				maxDepth = d
			}
		}
		lg := 0
		for v := n; v > 1; v >>= 1 {
			lg++
		}
		if maxDepth > lg {
			t.Errorf("n=%d: weighted-union depth %d exceeds lg n = %d", n, maxDepth, lg)
		}
		if maxDepth < lg {
			t.Logf("n=%d: depth %d (bound %d)", n, maxDepth, lg)
		}
	}
}

func TestForestNaiveLinkDegenerates(t *testing.T) {
	// Naive linking must produce a deep path for the chain pattern —
	// this is the pathology weighted union exists to avoid.
	n := 128
	f := NewForest(n, LinkNaive, CompressNone)
	for i := n - 1; i > 0; i-- {
		// Union(chain head, next element): naive keeps the first root,
		// repeatedly hanging the old tree under a fresh element.
		f.Union(i-1, i)
	}
	deep := 0
	for i := 0; i < n; i++ {
		if d := f.Depth(i); d > deep {
			deep = d
		}
	}
	if deep < n/2 {
		t.Fatalf("naive linking should degenerate (depth ≥ %d), got %d", n/2, deep)
	}
}

func TestForestCompressionFlattens(t *testing.T) {
	for _, comp := range []CompressRule{CompressFull, CompressHalve, CompressSplit} {
		f := NewForest(256, LinkNaive, comp)
		for i := 0; i < 255; i++ {
			f.Union(i, i+1)
		}
		// Repeated finds must drive every element's depth to a small
		// constant (full: 1; halving/splitting: halves each pass).
		for pass := 0; pass < 10; pass++ {
			for i := 0; i < 256; i++ {
				f.Find(i)
			}
		}
		for i := 0; i < 256; i++ {
			if d := f.Depth(i); d > 2 {
				t.Fatalf("%v: element %d still at depth %d after repeated finds", comp, i, d)
			}
		}
	}
}

func TestForestCompressOne(t *testing.T) {
	f := NewForest(8, LinkNaive, CompressNone)
	for i := 0; i < 7; i++ {
		f.Union(i, i+1)
	}
	deepest := 0
	for i := 0; i < 8; i++ {
		if f.Depth(i) > f.Depth(deepest) {
			deepest = i
		}
	}
	d0 := f.Depth(deepest)
	if d0 < 2 {
		t.Skip("pattern did not produce depth ≥ 2")
	}
	if !f.CompressOne(deepest) {
		t.Fatal("CompressOne should make progress on a deep node")
	}
	if f.Depth(deepest) != d0-1 {
		t.Fatalf("CompressOne should reduce depth by 1: %d -> %d", d0, f.Depth(deepest))
	}
	root := f.Find(deepest)
	if f.CompressOne(root) {
		t.Fatal("CompressOne on a root should report no progress")
	}
}

func TestKUFInvariantsUnderRandomOpsQuick(t *testing.T) {
	f := func(ops []uint32, szSeed, kSeed uint8) bool {
		n := int(szSeed%50) + 2
		k := int(kSeed%5) + 2
		u := NewKUFArity(n, k)
		for _, op := range ops {
			x := int(op>>4) % n
			y := int(op>>18) % n
			u.Union(x, y)
			if err := u.Validate(); err != nil {
				t.Logf("after Union(%d,%d) on n=%d k=%d: %v", x, y, n, k, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKUFHeightBound(t *testing.T) {
	// Height must satisfy h ≤ 1 + log_k(n/2) whatever the union order.
	for _, n := range []int{10, 100, 1000, 4096} {
		for _, k := range []int{2, 3, 5, DefaultArity(n)} {
			u := NewKUFArity(n, k)
			// Balanced merges maximize height.
			for span := 1; span < n; span *= 2 {
				for base := 0; base+span < n; base += 2 * span {
					u.Union(base, base+span)
				}
			}
			root := u.Find(0)
			h := u.Height(root)
			bound := 1
			for size := 2; size < n; size *= k {
				bound++
			}
			if h > bound {
				t.Errorf("n=%d k=%d: height %d exceeds bound %d", n, k, h, bound)
			}
			if err := u.Validate(); err != nil {
				t.Errorf("n=%d k=%d: %v", n, k, err)
			}
		}
	}
}

func TestKUFWorstOpBeatsLgN(t *testing.T) {
	// The point of Theorem 3: with k = ⌈lg n/lg lg n⌉ the worst single
	// operation costs O(lg n / lg lg n), asymptotically less than the
	// ⌊lg n⌋ the weighted forest can hit. Verify the *measured* worst op
	// respects c·(lg n / lg lg n + k).
	n := 1 << 14
	u := NewKUF(n)
	m := NewMeter(u)
	for span := 1; span < n; span *= 2 {
		for base := 0; base+span < n; base += 2 * span {
			m.Union(base, base+span)
		}
	}
	for i := 0; i < n; i += 7 {
		m.Find(i)
	}
	k := u.Arity()
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	lglg := 0
	for v := lg; v > 1; v >>= 1 {
		lglg++
	}
	budget := int64(6 * (lg/lglg + k + 2))
	if got := m.MaxOpCost(); got > budget {
		t.Fatalf("worst single op cost %d exceeds O(lg n/lg lg n) budget %d (k=%d)", got, budget, k)
	}
}

func TestKUFDefaultArityGrows(t *testing.T) {
	if DefaultArity(4) < 2 || DefaultArity(16) < 2 {
		t.Fatal("arity must be at least 2")
	}
	if DefaultArity(1<<20) <= DefaultArity(1<<6) {
		t.Fatal("arity should grow with n")
	}
}

func TestMeterRecords(t *testing.T) {
	m := NewMeter(New(64))
	for i := 0; i < 63; i++ {
		m.Union(i, i+1)
	}
	for i := 0; i < 64; i++ {
		m.Find(i)
	}
	st := m.Stats()
	if st.Unions != 63 || st.Finds != 64 {
		t.Fatalf("op counts wrong: %+v", st)
	}
	if st.MaxFind <= 0 || st.MaxUnion <= 0 {
		t.Fatalf("max costs should be positive: %+v", st)
	}
	if m.MaxOpCost() < st.MaxFind || m.MaxOpCost() < st.MaxUnion {
		t.Fatal("MaxOpCost must dominate both maxima")
	}
	if m.MeanOpCost() <= 0 {
		t.Fatal("mean cost should be positive")
	}
	var total int64
	for _, h := range m.Histogram() {
		total += h
	}
	if total != st.Finds+st.Unions {
		t.Fatalf("histogram mass %d, want %d", total, st.Finds+st.Unions)
	}
	if m.Unwrap() == nil || m.Len() != 64 || m.CapBound() < 64 || m.Sets() != 1 {
		t.Fatal("forwarding accessors broken")
	}
	if m.Steps() != m.Unwrap().Steps() {
		t.Fatal("Steps must forward")
	}
}

func TestMeterMeanEmptyIsZero(t *testing.T) {
	if NewMeter(New(4)).MeanOpCost() != 0 {
		t.Fatal("empty meter mean should be 0")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"quickfind": func() { NewQuickFind(-1) },
		"forest":    func() { NewForest(-1, LinkBySize, CompressFull) },
		"kuf":       func() { NewKUFArity(-1, 2) },
		"kuf-arity": func() { NewKUFArity(4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRuleStrings(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{LinkBySize.String(), "size"},
		{LinkByRank.String(), "rank"},
		{LinkNaive.String(), "naive"},
		{CompressFull.String(), "full"},
		{CompressHalve.String(), "halving"},
		{CompressSplit.String(), "splitting"},
		{CompressNone.String(), "none"},
		{LinkRule(9).String(), "LinkRule(9)"},
		{CompressRule(9).String(), "CompressRule(9)"},
	} {
		if tc.got != tc.want {
			t.Errorf("want %q, got %q", tc.want, tc.got)
		}
	}
}

func ExampleNew() {
	u := New(4)
	u.Union(0, 1)
	u.Union(2, 3)
	fmt.Println(u.Sets(), u.Find(0) == u.Find(1), u.Find(0) == u.Find(2))
	// Output: 2 true false
}
