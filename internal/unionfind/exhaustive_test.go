package unionfind

import "testing"

// TestExhaustiveSmallModel drives every implementation through an
// exhaustive enumeration of union sequences on a small universe and
// checks the resulting partition against the QuickFind oracle after
// every operation. With n=4 elements there are 6 possible pairs; all
// 6^4 sequences of four unions cover every reachable partition lattice
// path, including repeated and redundant unions.
func TestExhaustiveSmallModel(t *testing.T) {
	const n = 4
	pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	const depth = 4
	total := 1
	for i := 0; i < depth; i++ {
		total *= len(pairs)
	}
	for _, kind := range Kinds() {
		if kind == KindQuickFind {
			continue
		}
		for seq := 0; seq < total; seq++ {
			u, _ := Make(kind, n)
			oracle := NewQuickFind(n)
			s := seq
			for step := 0; step < depth; step++ {
				p := pairs[s%len(pairs)]
				s /= len(pairs)
				_, _, _, got := u.Union(p[0], p[1])
				_, _, _, want := oracle.Union(p[0], p[1])
				if got != want {
					t.Fatalf("%s seq %d step %d: united=%v want %v", kind, seq, step, got, want)
				}
				for x := 0; x < n; x++ {
					for y := x + 1; y < n; y++ {
						if (u.Find(x) == u.Find(y)) != (oracle.Find(x) == oracle.Find(y)) {
							t.Fatalf("%s seq %d step %d: partition differs at (%d,%d)", kind, seq, step, x, y)
						}
					}
				}
				if u.Sets() != oracle.Sets() {
					t.Fatalf("%s seq %d: set counts differ", kind, seq)
				}
			}
			// Structural validation for the k-UF trees.
			if k, ok := u.(*KUF); ok {
				if err := k.Validate(); err != nil {
					t.Fatalf("kuf seq %d: %v", seq, err)
				}
			}
		}
	}
}

// TestExhaustiveKUFArities re-runs the small-model enumeration for every
// small arity of the Blum-style structure, where the union case analysis
// (leaf attach, root split, child rebalance) is most intricate.
func TestExhaustiveKUFArities(t *testing.T) {
	const n = 6
	pairs := [][2]int{{0, 1}, {2, 3}, {4, 5}, {0, 2}, {2, 4}, {1, 5}, {3, 4}}
	for k := 2; k <= 4; k++ {
		// Random-ish but deterministic subsets of the pair sequence.
		for mask := 0; mask < 1<<len(pairs); mask++ {
			u := NewKUFArity(n, k)
			oracle := NewQuickFind(n)
			for i, p := range pairs {
				if mask&(1<<i) == 0 {
					continue
				}
				u.Union(p[0], p[1])
				oracle.Union(p[0], p[1])
				if err := u.Validate(); err != nil {
					t.Fatalf("k=%d mask %b after pair %v: %v", k, mask, p, err)
				}
			}
			for x := 0; x < n; x++ {
				for y := x + 1; y < n; y++ {
					if (u.Find(x) == u.Find(y)) != (oracle.Find(x) == oracle.Find(y)) {
						t.Fatalf("k=%d mask %b: partition differs", k, mask)
					}
				}
			}
		}
	}
}
