package core

import (
	"testing"
	"testing/quick"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// forceConcurrent makes parallel-mode runs in these tests exercise the
// batched concurrent engine even on single-core hosts, where they would
// otherwise cover only the sequential delegate.
func forceConcurrent(t *testing.T) {
	t.Helper()
	slap.ForceConcurrentEngines(true)
	t.Cleanup(func() { slap.ForceConcurrentEngines(false) })
}

// metricsIdentical compares everything the experiments report.
func metricsIdentical(t *testing.T, a, b *Result) bool {
	t.Helper()
	if a.Metrics.Time != b.Metrics.Time ||
		a.Metrics.Sends != b.Metrics.Sends ||
		a.Metrics.Words != b.Metrics.Words ||
		a.Metrics.MaxQueue != b.Metrics.MaxQueue ||
		a.Metrics.PEMemory != b.Metrics.PEMemory {
		return false
	}
	if len(a.Metrics.Phases) != len(b.Metrics.Phases) {
		return false
	}
	for i := range a.Metrics.Phases {
		pa, pb := a.Metrics.Phases[i], b.Metrics.Phases[i]
		if pa.Name != pb.Name || pa.Makespan != pb.Makespan || pa.Busy != pb.Busy ||
			pa.Idle != pb.Idle || pa.Sends != pb.Sends || pa.Words != pb.Words ||
			pa.NilRecvs != pb.NilRecvs || pa.MaxQueue != pb.MaxQueue {
			return false
		}
	}
	return a.UF == b.UF && a.Speculation == b.Speculation
}

func TestParallelLabelIdenticalToSequential(t *testing.T) {
	forceConcurrent(t)
	for _, fam := range bitmap.Families() {
		img := fam.Generate(29)
		seq := mustLabel(t, img, Options{})
		par := mustLabel(t, img, Options{Parallel: true})
		if !par.Labels.Equal(seq.Labels) {
			t.Errorf("%s: parallel engine changed the labeling", fam.Name)
		}
		if !metricsIdentical(t, seq, par) {
			t.Errorf("%s: parallel engine changed the metrics:\nseq %+v\npar %+v",
				fam.Name, seq.Metrics, par.Metrics)
		}
	}
}

func TestParallelWithAllOptions(t *testing.T) {
	forceConcurrent(t)
	img := bitmap.Random(33, 0.5, 77)
	for _, kind := range unionfind.Kinds() {
		for _, spec := range []bool{false, true} {
			opt := Options{UF: kind, Speculate: spec, IdleCompression: true}
			seq := mustLabel(t, img, opt)
			opt.Parallel = true
			par := mustLabel(t, img, opt)
			if !par.Labels.Equal(seq.Labels) || !metricsIdentical(t, seq, par) {
				t.Errorf("uf=%s spec=%v: engines disagree", kind, spec)
			}
		}
	}
}

func TestParallelAggregate(t *testing.T) {
	forceConcurrent(t)
	img := bitmap.Random(25, 0.5, 5)
	seq, err := Aggregate(img, Ones(img), Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Aggregate(img, Ones(img), Sum(), Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.PerPixel {
		if seq.PerPixel[i] != par.PerPixel[i] {
			t.Fatalf("position %d: %d vs %d", i, seq.PerPixel[i], par.PerPixel[i])
		}
	}
	if seq.Metrics.Time != par.Metrics.Time {
		t.Fatalf("aggregate time differs: %d vs %d", seq.Metrics.Time, par.Metrics.Time)
	}
}

// Property: on random images with random options, both engines agree on
// labels, total time, traffic, and the UF report.
func TestParallelQuick(t *testing.T) {
	forceConcurrent(t)
	f := func(seed uint32, np, dp uint8, spec, idle bool) bool {
		n := int(np%24) + 1
		img := bitmap.Random(n, float64(dp%11)/10, uint64(seed))
		opt := Options{Speculate: spec, IdleCompression: idle}
		seq, err := Label(img, opt)
		if err != nil {
			return false
		}
		opt.Parallel = true
		par, err := Label(img, opt)
		if err != nil {
			return false
		}
		return par.Labels.Equal(seq.Labels) &&
			par.Metrics.Time == seq.Metrics.Time &&
			par.Metrics.Sends == seq.Metrics.Sends &&
			par.UF == seq.UF &&
			par.Speculation == seq.Speculation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
