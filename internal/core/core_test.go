package core

import (
	"testing"
	"testing/quick"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

func mustLabel(t *testing.T, img *bitmap.Bitmap, opt Options) *Result {
	t.Helper()
	res, err := Label(img, opt)
	if err != nil {
		t.Fatalf("Label: %v", err)
	}
	return res
}

func TestLabelMatchesGroundTruthSmall(t *testing.T) {
	img := bitmap.MustParse(`
#.##
#..#
.##.
`)
	res := mustLabel(t, img, Options{})
	if err := seqcc.Check(img, res.Labels); err != nil {
		t.Fatalf("labeling wrong: %v\ngot:\n%s", err, res.Labels)
	}
}

func TestLabelTwoProngMerge(t *testing.T) {
	// The configuration that breaks Figure 6's literal overwrite
	// semantics: two separate prefix components merge only through a
	// later column, so one set hears two labels.
	img := bitmap.MustParse(`
#.#
#.#
###
`)
	res := mustLabel(t, img, Options{})
	if err := seqcc.Check(img, res.Labels); err != nil {
		t.Fatalf("two-prong labeling wrong: %v\ngot:\n%s", err, res.Labels)
	}
}

func TestLabelDegenerateImages(t *testing.T) {
	cases := map[string]*bitmap.Bitmap{
		"empty0":      bitmap.New(0, 0),
		"empty":       bitmap.Empty(4),
		"full1":       bitmap.Full(1),
		"single":      bitmap.SinglePixel(5, 2, 3),
		"full":        bitmap.Full(7),
		"onecol":      bitmap.New(1, 6),
		"onerow":      bitmap.New(6, 1),
		"rect":        bitmap.Random(9, 0.5, 3).SubImage(0, 0, 9, 4),
		"lastcolumn":  bitmap.MustParse("..#\n..#"),
		"firstcolumn": bitmap.MustParse("#..\n#.."),
	}
	cases["onecol"].Set(0, 2, true)
	cases["onecol"].Set(0, 3, true)
	cases["onerow"].Set(2, 0, true)
	cases["onerow"].Set(3, 0, true)
	for name, img := range cases {
		res := mustLabel(t, img, Options{})
		if err := seqcc.Check(img, res.Labels); err != nil {
			t.Errorf("%s: %v\nimage:\n%sgot:\n%s", name, err, img, res.Labels)
		}
	}
}

func TestLabelAllFamiliesAllKinds(t *testing.T) {
	for _, fam := range bitmap.Families() {
		img := fam.Generate(17)
		want := seqcc.BFS(img)
		for _, kind := range unionfind.Kinds() {
			res := mustLabel(t, img, Options{UF: kind})
			if !res.Labels.Equal(want) {
				t.Errorf("family %s / uf %s: wrong labeling", fam.Name, kind)
			}
		}
	}
}

func TestLabelUnknownUFKind(t *testing.T) {
	if _, err := Label(bitmap.Empty(4), Options{UF: "bogus"}); err == nil {
		t.Fatal("want error for unknown UF kind")
	}
}

func TestLabelMetricsShape(t *testing.T) {
	img := bitmap.Random(32, 0.5, 5)
	res := mustLabel(t, img, Options{})
	m := res.Metrics
	if m.Time <= 0 {
		t.Fatal("total time must be positive")
	}
	wantPhases := []string{
		"input",
		"left:unionfind", "left:findall", "left:labelpass", "left:assign",
		"right:unionfind", "right:findall", "right:labelpass", "right:assign",
		"merge",
	}
	if len(m.Phases) != len(wantPhases) {
		t.Fatalf("want %d phases, got %d: %+v", len(wantPhases), len(m.Phases), m.Phases)
	}
	var sum int64
	for i, p := range m.Phases {
		if p.Name != wantPhases[i] {
			t.Errorf("phase %d: want %q, got %q", i, wantPhases[i], p.Name)
		}
		if p.Makespan < 0 {
			t.Errorf("phase %q has negative makespan", p.Name)
		}
		sum += p.Makespan
	}
	if sum != m.Time {
		t.Fatalf("phase makespans sum to %d, total says %d", sum, m.Time)
	}
	if in, ok := m.Phase("input"); !ok || in.Makespan != 32 {
		t.Fatalf("input phase should cost h=32 steps, got %+v", in)
	}
	if m.PEMemory <= 0 || m.PEMemory > 64*32 {
		t.Fatalf("per-PE memory should be Θ(h), got %d", m.PEMemory)
	}
	if res.UF.Finds == 0 || res.UF.MaxOpCost == 0 {
		t.Fatalf("UF report empty: %+v", res.UF)
	}
}

func TestSkipInput(t *testing.T) {
	img := bitmap.Random(16, 0.5, 9)
	with := mustLabel(t, img, Options{})
	without := mustLabel(t, img, Options{SkipInput: true})
	if _, ok := without.Metrics.Phase("input"); ok {
		t.Fatal("SkipInput should drop the input phase")
	}
	if with.Metrics.Time-without.Metrics.Time != 16 {
		t.Fatalf("input phase should account for exactly h steps, diff=%d",
			with.Metrics.Time-without.Metrics.Time)
	}
	if !with.Labels.Equal(without.Labels) {
		t.Fatal("input accounting must not change the labeling")
	}
}

func TestUnitCostAccountingCheaper(t *testing.T) {
	img := bitmap.BinaryMerge(64)
	real := mustLabel(t, img, Options{})
	unit := mustLabel(t, img, Options{UnitCostUF: true})
	if !real.Labels.Equal(unit.Labels) {
		t.Fatal("accounting mode must not change the labeling")
	}
	if unit.Metrics.Time > real.Metrics.Time {
		t.Fatalf("unit-cost accounting should never be slower: unit=%d real=%d",
			unit.Metrics.Time, real.Metrics.Time)
	}
}

func TestIdleCompressionPreservesLabels(t *testing.T) {
	for _, fam := range []string{"vserpentine", "binarymerge", "random50"} {
		f, _ := bitmap.FamilyByName(fam)
		img := f.Generate(33)
		plain := mustLabel(t, img, Options{})
		idle := mustLabel(t, img, Options{IdleCompression: true})
		if !plain.Labels.Equal(idle.Labels) {
			t.Errorf("%s: idle compression changed the labeling", fam)
		}
		if idle.Metrics.Time > plain.Metrics.Time {
			t.Errorf("%s: idle compression must never slow the machine: %d > %d",
				fam, idle.Metrics.Time, plain.Metrics.Time)
		}
	}
}

func TestBitSerialCostsMore(t *testing.T) {
	img := bitmap.RandomEvenRowRuns(32, 1)
	word := mustLabel(t, img, Options{})
	bits := mustLabel(t, img, Options{Cost: slap.BitSerial(slap.WordBitsFor(32))})
	if !word.Labels.Equal(bits.Labels) {
		t.Fatal("cost model must not change the labeling")
	}
	if bits.Metrics.Time <= word.Metrics.Time {
		t.Fatalf("bit-serial links must cost more: bits=%d word=%d",
			bits.Metrics.Time, word.Metrics.Time)
	}
}

func TestImageTooLargeForLabels(t *testing.T) {
	// 2*w*h must fit in int32; fake it with a wide 1-row image.
	img := bitmap.New(1<<16, 1<<15)
	if _, err := Label(img, Options{}); err == nil {
		t.Fatal("want error for images exceeding the int32 label space")
	}
}

// The central property: Algorithm CC equals the sequential ground truth
// on random images of random sizes for every union–find kind.
func TestLabelQuick(t *testing.T) {
	kinds := unionfind.Kinds()
	f := func(seed uint32, np, dp, kp uint8, idle bool) bool {
		n := int(np%28) + 1
		density := float64(dp%11) / 10
		img := bitmap.Random(n, density, uint64(seed))
		kind := kinds[int(kp)%len(kinds)]
		res, err := Label(img, Options{UF: kind, IdleCompression: idle})
		if err != nil {
			return false
		}
		return seqcc.Check(img, res.Labels) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: rectangular images (w ≠ h) label correctly too.
func TestLabelRectangularQuick(t *testing.T) {
	f := func(seed uint32, wp, hp uint8) bool {
		w := int(wp%20) + 1
		h := int(hp%20) + 1
		img := bitmap.New(w, h)
		rng := bitmap.NewRNG(uint64(seed))
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				if rng.Float64() < 0.45 {
					img.Set(x, y, true)
				}
			}
		}
		res, err := Label(img, Options{})
		if err != nil {
			return false
		}
		return seqcc.Check(img, res.Labels) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperFigures(t *testing.T) {
	// The two images the paper presents as the hard cases (Figure 3).
	for _, n := range []int{12, 16, 24} {
		for _, img := range []*bitmap.Bitmap{bitmap.Fig3a(n), bitmap.Fig3b(n)} {
			res := mustLabel(t, img, Options{})
			if err := seqcc.Check(img, res.Labels); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}
