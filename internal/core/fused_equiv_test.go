package core

import (
	"math/rand"
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/unionfind"
)

// mustLabelNoFuse runs Label through the per-phase reference executor.
func mustLabelNoFuse(t *testing.T, img *bitmap.Bitmap, opt Options) *Result {
	t.Helper()
	opt.noFuse = true
	res, err := Label(img, opt)
	if err != nil {
		t.Fatalf("Label (unfused): %v", err)
	}
	return res
}

// TestFusedWalkEquivalenceTable is the walker-conformance table the
// fused hot path rests on: across every bitmap family, both
// connectivities, and the option axes that change the passes' control
// flow (§3 heuristics, unit-cost accounting, union–find kinds), the
// fused column walk must produce LabelMaps, slap.Metrics (per-phase,
// bit for bit), UF op costs, and speculation counters identical to the
// per-phase reference executor. This is what lets the fused walk be
// chosen purely on performance grounds.
func TestFusedWalkEquivalenceTable(t *testing.T) {
	opts := []Options{
		{},
		{IdleCompression: true},
		{Speculate: true},
		{Speculate: true, IdleCompression: true},
		{UnitCostUF: true},
		{UF: unionfind.KindBlum},
		{UF: unionfind.KindQuickFind},
		{UF: unionfind.KindHalving, IdleCompression: true},
		{UF: unionfind.KindNoCompress, Speculate: true},
	}
	const n = 21
	for _, conn := range []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8} {
		for oi, base := range opts {
			for _, fam := range bitmap.Families() {
				img := fam.Generate(n)
				opt := base
				opt.Connectivity = conn
				fused := mustLabel(t, img, opt)
				ref := mustLabelNoFuse(t, img, opt)
				if !fused.Labels.Equal(ref.Labels) {
					t.Errorf("%s/conn%d/opt%d: fused walk changed the labeling", fam.Name, conn, oi)
				}
				if !metricsIdentical(t, ref, fused) {
					t.Errorf("%s/conn%d/opt%d: fused walk changed the metrics:\nref   %+v\nfused %+v",
						fam.Name, conn, oi, ref.Metrics, fused.Metrics)
				}
			}
		}
	}
}

// TestFusedWalkEquivalenceFuzz drives random rectangles, densities, and
// option draws through both executors. Any divergence in labels,
// per-phase metrics, UF reports, or speculation counters fails.
func TestFusedWalkEquivalenceFuzz(t *testing.T) {
	kinds := unionfind.Kinds()
	rng := rand.New(rand.NewSource(7))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for i := 0; i < iters; i++ {
		w := 1 + rng.Intn(40)
		h := 1 + rng.Intn(40)
		side := w
		if h > side {
			side = h
		}
		img := bitmap.Random(side, 0.2+0.6*rng.Float64(), rng.Uint64()).SubImage(0, 0, w, h)
		opt := Options{
			UF:              kinds[rng.Intn(len(kinds))],
			IdleCompression: rng.Intn(2) == 0,
			Speculate:       rng.Intn(2) == 0,
			UnitCostUF:      rng.Intn(4) == 0,
		}
		if rng.Intn(2) == 0 {
			opt.Connectivity = bitmap.Conn8
		}
		fused := mustLabel(t, img, opt)
		ref := mustLabelNoFuse(t, img, opt)
		if !fused.Labels.Equal(ref.Labels) || !metricsIdentical(t, ref, fused) {
			t.Fatalf("iter %d (%dx%d, %+v): fused walk diverged from reference", i, w, h, opt)
		}
	}
}

// TestFusedAggregateEquivalence: the Corollary 4 extension (which runs
// its local fold over the fused walk's arenas) agrees between executors
// too.
func TestFusedAggregateEquivalence(t *testing.T) {
	img := bitmap.Random(27, 0.5, 4)
	fused, err := Aggregate(img, Ones(img), Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Aggregate(img, Ones(img), Sum(), Options{noFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fused.PerPixel {
		if fused.PerPixel[i] != ref.PerPixel[i] {
			t.Fatalf("position %d: %d vs %d", i, fused.PerPixel[i], ref.PerPixel[i])
		}
	}
	if fused.Metrics.Time != ref.Metrics.Time || fused.Metrics.Sends != ref.Metrics.Sends ||
		fused.UF != ref.UF {
		t.Fatalf("aggregate metrics diverged:\nref   %+v\nfused %+v", ref.Metrics, fused.Metrics)
	}
}
