package core

import (
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
)

// TestEngineEquivalence is the cross-engine conformance table: for every
// bitmap family and both connectivities, the sequential engine, the
// parallel engine, and a Labeler reused across all preceding runs must
// produce identical LabelMaps and bit-identical slap.Metrics (time,
// sends, words, queue peaks, per-phase breakdowns), plus identical UF
// reports. This is what lets the engines and the arena reuse be chosen
// freely on performance grounds.
func TestEngineEquivalence(t *testing.T) {
	// Force the batched concurrent engine so the "parallel" rows
	// exercise it through the full algorithm even on a single-core host
	// (where parallel mode would otherwise delegate to the sequential
	// executor). The delegate itself is trivially equivalent and is
	// covered by TestEngineEquivalenceDelegated.
	slap.ForceConcurrentEngines(true)
	defer slap.ForceConcurrentEngines(false)
	const n = 23
	for _, conn := range []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8} {
		reused := NewLabeler(Options{Connectivity: conn})
		reusedPar := NewLabeler(Options{Connectivity: conn, Parallel: true})
		for _, fam := range bitmap.Families() {
			img := fam.Generate(n)

			seq := mustLabel(t, img, Options{Connectivity: conn})
			par := mustLabel(t, img, Options{Connectivity: conn, Parallel: true})

			again, err := reused.Label(img)
			if err != nil {
				t.Fatalf("%s/conn%d: reused labeler: %v", fam.Name, conn, err)
			}
			againPar, err := reusedPar.Label(img)
			if err != nil {
				t.Fatalf("%s/conn%d: reused parallel labeler: %v", fam.Name, conn, err)
			}

			for _, tc := range []struct {
				engine string
				res    *Result
			}{
				{"parallel", par},
				{"reused", again},
				{"reused-parallel", againPar},
			} {
				if !tc.res.Labels.Equal(seq.Labels) {
					t.Errorf("%s/conn%d: %s engine changed the labeling", fam.Name, conn, tc.engine)
				}
				if !metricsIdentical(t, seq, tc.res) {
					t.Errorf("%s/conn%d: %s engine changed the metrics:\nseq %+v\ngot %+v",
						fam.Name, conn, tc.engine, seq.Metrics, tc.res.Metrics)
				}
			}
		}
	}
}

// TestEngineEquivalenceDelegated re-runs a slice of the table without
// forcing the concurrent engine, covering whichever executor the host's
// GOMAXPROCS actually selects (the single-core sequential delegate on
// one-core runners).
func TestEngineEquivalenceDelegated(t *testing.T) {
	for _, fam := range bitmap.Families() {
		img := fam.Generate(19)
		seq := mustLabel(t, img, Options{})
		par := mustLabel(t, img, Options{Parallel: true})
		if !par.Labels.Equal(seq.Labels) || !metricsIdentical(t, seq, par) {
			t.Errorf("%s: delegated parallel engine diverged", fam.Name)
		}
	}
}

// TestLabelerReuseAcrossShapes: one Labeler must serve images of
// changing sizes, densities, and union–find kinds, always matching a
// fresh run bit for bit.
func TestLabelerReuseAcrossShapes(t *testing.T) {
	lab := NewLabeler(Options{})
	for _, n := range []int{1, 17, 64, 9, 33} {
		img := bitmap.Random(n, 0.5, uint64(n))
		fresh := mustLabel(t, img, Options{})
		got, err := lab.Label(img)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Labels.Equal(fresh.Labels) || !metricsIdentical(t, fresh, got) {
			t.Fatalf("n=%d: reused labeler diverged from fresh run", n)
		}
	}
	// Switching options requires a new Labeler; the pooled one-shot path
	// must behave identically for every UF kind after arbitrary reuse.
	img := bitmap.Random(21, 0.6, 7)
	for _, opt := range []Options{
		{UF: "blum"}, {UF: "quickfind"}, {UnitCostUF: true}, {Speculate: true, IdleCompression: true},
	} {
		lab := NewLabeler(opt)
		first, err := lab.Label(img)
		if err != nil {
			t.Fatal(err)
		}
		second, err := lab.Label(img)
		if err != nil {
			t.Fatal(err)
		}
		if !second.Labels.Equal(first.Labels) || !metricsIdentical(t, first, second) {
			t.Fatalf("opt %+v: second run on one labeler diverged", opt)
		}
	}
}

// TestLabelerAggregateReuse: the Corollary 4 extension also runs on a
// reused Labeler with identical output and metrics.
func TestLabelerAggregateReuse(t *testing.T) {
	lab := NewLabeler(Options{})
	img := bitmap.Random(19, 0.5, 3)
	fresh, err := Aggregate(img, Ones(img), Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab.Label(bitmap.Random(31, 0.4, 9)) // dirty the arenas with another shape
	got, err := lab.Aggregate(img, Ones(img), Sum())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.PerPixel {
		if fresh.PerPixel[i] != got.PerPixel[i] {
			t.Fatalf("position %d: %d vs %d", i, fresh.PerPixel[i], got.PerPixel[i])
		}
	}
	if fresh.Metrics.Time != got.Metrics.Time || fresh.Metrics.Sends != got.Metrics.Sends {
		t.Fatalf("aggregate metrics diverged: %d/%d vs %d/%d",
			fresh.Metrics.Time, fresh.Metrics.Sends, got.Metrics.Time, got.Metrics.Sends)
	}
}

// TestLabelerSteadyStateAllocs pins the tentpole: a warm Labeler's Label
// call allocates only the returned Result (labels, metrics copy) — the
// simulation itself is allocation-free.
func TestLabelerSteadyStateAllocs(t *testing.T) {
	img := bitmap.Random(64, 0.5, 2)
	lab := NewLabeler(Options{})
	if _, err := lab.Label(img); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := lab.Label(img); err != nil {
			t.Fatal(err)
		}
	})
	// Result + LabelMap + metrics deep copy + phase slice ≈ a handful.
	if allocs > 25 {
		t.Fatalf("warm Label allocates %.0f times per call, want ≤ 25", allocs)
	}
}
