package core

import (
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
)

// TestLinkTuningEquivalence: BatchSize/LinkDepth are wall-time knobs
// only — the concurrent engine must produce bit-identical metrics at
// extreme settings, including batch=1 (a channel operation per record).
func TestLinkTuningEquivalence(t *testing.T) {
	slap.ForceConcurrentEngines(true)
	defer slap.ForceConcurrentEngines(false)
	img := bitmap.Random(23, 0.5, 5)
	base := mustLabel(t, img, Options{Parallel: true})
	for _, tc := range [][2]int{{1, 1}, {3, 2}, {64, 1}, {4096, 64}} {
		got := mustLabel(t, img, Options{Parallel: true, BatchSize: tc[0], LinkDepth: tc[1]})
		if !got.Labels.Equal(base.Labels) || !metricsIdentical(t, base, got) {
			t.Errorf("tuning %v changed results", tc)
		}
	}
}

// TestLinkTuningValidation: negative knobs are configuration errors.
func TestLinkTuningValidation(t *testing.T) {
	img := bitmap.Random(4, 0.5, 1)
	if _, err := Label(img, Options{BatchSize: -1}); err == nil {
		t.Error("negative BatchSize accepted")
	}
	if _, err := Label(img, Options{LinkDepth: -2}); err == nil {
		t.Error("negative LinkDepth accepted")
	}
}
