package core

import (
	"fmt"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// colState is one PE's persistent memory for one pass: the column's
// pixels, its union–find structure over rows, and the per-set satellite
// data adjnext/adjprev (a witness row where the set touches the next /
// previous column of the sweep; -1 is the paper's nil) and label.
type colState struct {
	col     []bool
	uf      *unionfind.Meter
	forest  *unionfind.Forest // non-nil when forest-backed (idle compression)
	adjnext []int32
	adjprev []int32
	label   []int32
	ones    []int32 // rows of 1-pixels (idle-compression victims)
	out     []int32 // final per-row pass labels (-1 on 0-pixels)

	// Per-PE speculation counters (kept here, not on the labeler, so
	// parallel sweeps stay race-free; summed in finishSpec).
	specSends  int64
	specWasted int64
}

// passName labels the machine phases of one pass.
func passName(dir slap.Direction, step string) string {
	if dir == slap.LeftToRight {
		return "left:" + step
	}
	return "right:" + step
}

// runPass computes one directional connected labeling (steps 1–4 of
// Algorithm Left-Components, Figure 4) and returns per-column label
// slices. Left pass labels are column-major positions; right pass labels
// are offset by w·h and use the mirrored column order, so the two label
// spaces are disjoint and left labels always win the final minimum.
func (lb *labeler) runPass(dir slap.Direction) []*colState {
	w, h := lb.w, lb.h
	dx := 1
	base := int32(0)
	lastCol := w - 1
	if dir == slap.RightToLeft {
		dx = -1
		base = int32(w * h)
		lastCol = 0
	}
	posOf := func(x, j int) int32 {
		if dir == slap.LeftToRight {
			return int32(x*h + j)
		}
		return base + int32((w-1-x)*h+j)
	}

	// Column states are created up front (they are the PEs' persistent
	// local memories across phases); the sweeps themselves may then run
	// PEs concurrently without sharing any mutable labeler state.
	cols := make([]*colState, w)
	for x := range cols {
		cols[x] = lb.newColState(x)
	}

	// Step 1 (Figure 5): the union–find pass.
	lb.m.RunSweep(passName(dir, "unionfind"), dir, func(pe *slap.PE) {
		x := pe.Index
		st := cols[x]

		// Make-Set(j) for every row, and initialize the adjacency
		// witnesses of the singleton sets (constant work per row).
		// Witness values are rows of the *next* column (for Conn4 the
		// row indices coincide). Under Conn8 a pixel may touch up to
		// three next-column pixels that are not connected to each other
		// except through this pixel, so consecutive neighbors are
		// chained with bridge records the next column replays as unions.
		for j := 0; j < h; j++ {
			pe.Tick(1)
			if !st.col[j] {
				continue
			}
			st.adjnext[j] = lb.witness(x, j, dx)
			st.adjprev[j] = lb.witness(x, j, -dx)
			if lb.opt.Connectivity == bitmap.Conn8 && x != lastCol {
				prevNbr := int32(-1)
				for _, r := range []int{j - 1, j, j + 1} {
					if r < 0 || r >= h || !lb.img.Get(x+dx, r) {
						continue
					}
					if prevNbr != -1 {
						pe.Send(slap.Msg{Kind: msgUnion, A: prevNbr, B: int32(r), Words: 2})
					}
					prevNbr = int32(r)
				}
			}
		}
		// Phase one: union vertical runs within the column.
		for j := 1; j < h; j++ {
			pe.Tick(1)
			if st.col[j-1] && st.col[j] {
				_ = lb.apply(pe, st, int32(j-1), int32(j), x != lastCol, false)
			}
		}
		// Phase two: replay relevant unions arriving from the previous
		// column until eos.
		// Speculation throttle (stands in for the paper's quash
		// messages): once this PE has wasted more forwards than it has
		// confirmed, and at least specWasteBudget in total, it stops
		// speculating for the rest of the pass.
		const specWasteBudget = 8
		var specFired, specWasted int64
		if pe.HasIn() {
			if lb.opt.IdleCompression && st.forest != nil && len(st.ones) > 0 {
				cursor := 0
				f, ones := st.forest, st.ones
				pe.OnIdle(func() {
					f.CompressOne(int(ones[cursor]))
					cursor++
					if cursor == len(ones) {
						cursor = 0
					}
				})
			}
			for {
				msg, ok := pe.RecvWait()
				if !ok {
					panic(fmt.Sprintf("core: PE %d: union stream ended without eos", x))
				}
				if msg.Kind == msgEOS {
					break
				}
				if msg.Kind != msgUnion {
					panic(fmt.Sprintf("core: PE %d: unexpected message kind %d in union pass", x, msg.Kind))
				}
				// §3 speculation: forward the union before executing it
				// when the witness rows visibly continue into the next
				// column, taking the find/union latency off the
				// inter-PE critical path. Safe without quash messages:
				// the forwarded rows are connected here, so their
				// next-column neighbors share a component and the
				// downstream union is at worst a no-op.
				speculated := false
				throttled := specWasted >= specWasteBudget && specWasted > specFired-specWasted
				if lb.opt.Speculate && x != lastCol && !throttled {
					pe.Tick(1)
					wa, wb := lb.witness(x, int(msg.A), dx), lb.witness(x, int(msg.B), dx)
					if wa != -1 && wb != -1 {
						pe.Send(slap.Msg{Kind: msgUnion, A: wa, B: wb, Words: 2})
						st.specSends++
						specFired++
						speculated = true
					}
				}
				if !lb.apply(pe, st, msg.A, msg.B, x != lastCol, speculated) && speculated {
					specWasted++
					st.specWasted++
				}
			}
		}
		if x != lastCol {
			pe.Send(slap.Msg{Kind: msgEOS})
		}
		// The PE's memory: column bits, union–find arrays, satellites.
		pe.DeclareMemory(int64(h) + 2*int64(h) + 3*int64(len(st.adjnext)))
	})

	// Step 2: a find on every pixel (also primes path compression so
	// every later find is cheap, as §3 notes).
	lb.m.RunLocal(passName(dir, "findall"), func(pe *slap.PE) {
		st := cols[pe.Index]
		for j := 0; j < h; j++ {
			pe.Tick(1)
			if st.col[j] {
				lb.chargeUF(pe, st.uf, 1, func() { st.uf.Find(j) })
			}
		}
	})

	// Step 3 (Figure 6): the label pass, with the min rule (see below).
	lb.m.RunSweep(passName(dir, "labelpass"), dir, func(pe *slap.PE) {
		x := pe.Index
		st := cols[x]
		// Sets with no previous-column adjacency label themselves with
		// their first pixel's position and send the label onward once.
		for j := 0; j < h; j++ {
			pe.Tick(1)
			if !st.col[j] {
				continue
			}
			var s int
			lb.chargeUF(pe, st.uf, 1, func() { s = st.uf.Find(j) })
			if st.adjprev[s] == -1 && st.label[s] == -1 {
				st.label[s] = posOf(x, j)
				if st.adjnext[s] != -1 {
					pe.Send(slap.Msg{Kind: msgLabel, A: st.label[s], B: st.adjnext[s], Words: 2})
				}
			}
		}
		// Incoming labels. Figure 6 overwrites label[S] per arrival; when
		// two sets of the previous column merge only through this column,
		// overwriting is order-dependent, so we apply the paper's §2
		// consistency rule ("each component gets labeled with the least
		// label seen"): adopt the minimum and forward on first receipt or
		// improvement. Every set still sends at least once and the least
		// label of each prefix component reaches every column it touches.
		if pe.HasIn() {
			for {
				msg, ok := pe.RecvWait()
				if !ok {
					panic(fmt.Sprintf("core: PE %d: label stream ended without eos", x))
				}
				if msg.Kind == msgEOS {
					break
				}
				if msg.Kind != msgLabel {
					panic(fmt.Sprintf("core: PE %d: unexpected message kind %d in label pass", x, msg.Kind))
				}
				var s int
				lb.chargeUF(pe, st.uf, 1, func() { s = st.uf.Find(int(msg.B)) })
				pe.Tick(1)
				if st.label[s] == -1 || msg.A < st.label[s] {
					st.label[s] = msg.A
					if st.adjnext[s] != -1 {
						pe.Send(slap.Msg{Kind: msgLabel, A: st.label[s], B: st.adjnext[s], Words: 2})
					}
				}
			}
		}
		if x != lastCol {
			pe.Send(slap.Msg{Kind: msgEOS})
		}
	})

	// Step 4: assign each pixel its set's label.
	lb.m.RunLocal(passName(dir, "assign"), func(pe *slap.PE) {
		st := cols[pe.Index]
		for j := 0; j < h; j++ {
			pe.Tick(1)
			if !st.col[j] {
				continue
			}
			var s int
			lb.chargeUF(pe, st.uf, 1, func() { s = st.uf.Find(j) })
			if st.label[s] == -1 {
				panic(fmt.Sprintf("core: PE %d row %d: set %d never received a label", pe.Index, j, s))
			}
			st.out[j] = st.label[s]
		}
	})

	// Fold the per-PE speculation counters (kept PE-local so concurrent
	// sweeps never touch shared labeler state).
	for _, st := range cols {
		lb.spec.Sends += st.specSends
		lb.spec.Wasted += st.specWasted
	}
	return cols
}

// newColState builds the per-column pass state for column x.
func (lb *labeler) newColState(x int) *colState {
	h := lb.h
	uf, _ := unionfind.Make(lb.opt.UF, h)
	st := &colState{
		col: lb.img.Column(x, nil),
		uf:  unionfind.NewMeter(uf),
	}
	if f, ok := uf.(*unionfind.Forest); ok {
		st.forest = f
	}
	cb := uf.CapBound()
	st.adjnext = fillNeg(make([]int32, cb))
	st.adjprev = fillNeg(make([]int32, cb))
	st.label = fillNeg(make([]int32, cb))
	st.out = fillNeg(make([]int32, h))
	for j := 0; j < h; j++ {
		if st.col[j] {
			st.ones = append(st.ones, int32(j))
		}
	}
	lb.meters = append(lb.meters, st.uf)
	return st
}

// apply is the paper's Apply (Figure 5): union the sets holding the two
// rows; if both sets touch the next column, first forward the pair of
// witness rows so the next column replays the union. When the union was
// already forwarded speculatively, the normal forward is suppressed
// (both messages would union the same two downstream sets). It reports
// whether the two rows were in distinct sets.
func (lb *labeler) apply(pe *slap.PE, st *colState, top, bot int32, hasOut, speculated bool) bool {
	if !st.col[top] || !st.col[bot] {
		panic(fmt.Sprintf("core: PE %d: union witness rows (%d,%d) include a 0-pixel", pe.Index, top, bot))
	}
	var root, a, b int
	var united bool
	lb.chargeUF(pe, st.uf, 1, func() {
		root, a, b, united = st.uf.Union(int(top), int(bot))
	})
	if !united {
		return false
	}
	// Forward the relevant union before folding satellites: the witness
	// rows must be the pre-union ones (Figure 5 enqueues before Union).
	if !speculated && st.adjnext[a] != -1 && st.adjnext[b] != -1 && hasOut {
		pe.Send(slap.Msg{Kind: msgUnion, A: st.adjnext[a], B: st.adjnext[b], Words: 2})
	}
	pe.Tick(1)
	st.adjnext[root] = firstWitness(st.adjnext[a], st.adjnext[b])
	st.adjprev[root] = firstWitness(st.adjprev[a], st.adjprev[b])
	return true
}

// firstWitness keeps any non-nil witness row.
func firstWitness(a, b int32) int32 {
	if a != -1 {
		return a
	}
	return b
}

// witness returns a row of column x+dir holding a 1-pixel adjacent to
// pixel (x, j) under the configured connectivity, or -1 (the paper's
// nil). Constant work; the returned row identifies where the neighboring
// column should replay information concerning (x, j)'s set.
func (lb *labeler) witness(x, j, dir int) int32 {
	if lb.img.Get(x+dir, j) {
		return int32(j)
	}
	if lb.opt.Connectivity == bitmap.Conn8 {
		if lb.img.Get(x+dir, j-1) {
			return int32(j - 1)
		}
		if lb.img.Get(x+dir, j+1) {
			return int32(j + 1)
		}
	}
	return -1
}

func fillNeg(s []int32) []int32 {
	for i := range s {
		s[i] = -1
	}
	return s
}
