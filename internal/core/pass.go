package core

import (
	"fmt"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// colState is one PE's persistent memory for one pass: the column's
// pixels, its union–find structure over rows, and the per-set satellite
// data adjnext/adjprev (a witness row where the set touches the next /
// previous column of the sweep; -1 is the paper's nil) and label.
//
// colStates live in the Labeler's per-pass arenas and are re-initialized
// in place for every run, so a warm Labeler performs no per-column
// allocation at all.
type colState struct {
	col    []bool
	uf     *unionfind.Meter
	kind   unionfind.Kind    // the kind uf wraps (arena revalidation)
	forest *unionfind.Forest // non-nil when forest-backed (idle compression)
	// adj interleaves the two witness satellites — adj[2s] is the
	// paper's adjnext[s], adj[2s+1] its adjprev[s] — so the hot paths
	// touch one cache line per set instead of two.
	adj   []int32
	label []int32
	ones  []int32 // rows of 1-pixels (idle-compression victims)
	out   []int32 // final per-row pass labels (-1 on 0-pixels)

	// Per-PE speculation counters (kept here, not on the labeler, so
	// parallel sweeps stay race-free; summed after the pass).
	specSends  int64
	specWasted int64
}

// passName labels the machine phases of one pass.
func passName(dir slap.Direction, step string) string {
	if dir == slap.LeftToRight {
		return "left:" + step
	}
	return "right:" + step
}

// passIndex maps a sweep direction to its arena slot.
func passIndex(dir slap.Direction) int {
	if dir == slap.LeftToRight {
		return 0
	}
	return 1
}

// runPass computes one directional connected labeling (steps 1–4 of
// Algorithm Left-Components, Figure 4) and returns the per-column state
// arena. Left pass labels are column-major positions; right pass labels
// are offset by w·h and use the mirrored column order, so the two label
// spaces are disjoint and left labels always win the final minimum.
func (lb *Labeler) runPass(dir slap.Direction) []colState {
	w, h := lb.w, lb.h
	dx := 1
	base := int32(0)
	lastCol := w - 1
	if dir == slap.RightToLeft {
		dx = -1
		base = int32(w * h)
		lastCol = 0
	}
	posOf := func(x, j int) int32 {
		if dir == slap.LeftToRight {
			return int32(x*h + j)
		}
		return base + int32((w-1-x)*h+j)
	}

	// Column states are re-initialized up front (they are the PEs'
	// persistent local memories across phases); the sweeps themselves may
	// then run PEs concurrently without sharing any mutable labeler state.
	// The right pass reads the column bits and 1-row lists of the left
	// pass's states instead of re-extracting them: both are immutable for
	// the rest of the run, and the passes always execute left-first.
	p := passIndex(dir)
	cols := lb.ensurePass(p)
	for x := range cols {
		var share *colState
		if p == 1 {
			share = &lb.passCols[0][x]
		}
		lb.resetColState(&cols[x], x, share)
	}

	// Step 1 (Figure 5): the union–find pass.
	lb.m.RunSweep(passName(dir, "unionfind"), dir, func(pe *slap.PE) {
		x := pe.Index
		st := &cols[x]
		// The sweep-order neighbor columns, unpacked once: the witness
		// tests on the hot path are then plain bool loads.
		var nextCol, prevCol []bool
		if nx := x + dx; nx >= 0 && nx < w {
			nextCol = cols[nx].col
		}
		if px := x - dx; px >= 0 && px < w {
			prevCol = cols[px].col
		}

		// Make-Set(j) for every row, and initialize the adjacency
		// witnesses of the singleton sets (constant work per row).
		// Witness values are rows of the *next* column (for Conn4 the
		// row indices coincide). Under Conn8 a pixel may touch up to
		// three next-column pixels that are not connected to each other
		// except through this pixel, so consecutive neighbors are
		// chained with bridge records the next column replays as unions.
		if lb.opt.Connectivity == bitmap.Conn8 {
			for j := 0; j < h; j++ {
				pe.Tick(1)
				if !st.col[j] {
					continue
				}
				st.adj[2*j] = lb.witnessIn(nextCol, j)
				st.adj[2*j+1] = lb.witnessIn(prevCol, j)
				if x != lastCol {
					prevNbr := int32(-1)
					for _, r := range []int{j - 1, j, j + 1} {
						if r < 0 || r >= h || !nextCol[r] {
							continue
						}
						if prevNbr != -1 {
							pe.Send(slap.Msg{Kind: msgUnion, A: prevNbr, B: int32(r), Words: 2})
						}
						prevNbr = int32(r)
					}
				}
			}
		} else {
			// Conn4 sends nothing here, so the per-row tick is charged in
			// one batch and only 1-rows are visited: clocks are identical
			// to the row-by-row loop above.
			pe.Tick(int64(h))
			for _, j32 := range st.ones {
				j := int(j32)
				if nextCol != nil && nextCol[j] {
					st.adj[2*j] = j32
				} else {
					st.adj[2*j] = -1
				}
				if prevCol != nil && prevCol[j] {
					st.adj[2*j+1] = j32
				} else {
					st.adj[2*j+1] = -1
				}
			}
		}
		// Phase one: union vertical runs within the column. Unions happen
		// exactly at consecutive pairs of 1-rows, so only the ones list
		// is walked; the per-row tick of the row scan is charged in
		// arrears right before each union, keeping the clock at every
		// union (and so at every send) identical to ticking row by row.
		lastRow := int32(0)
		for i := 1; i < len(st.ones); i++ {
			j := st.ones[i]
			if st.ones[i-1]+1 == j {
				pe.Tick(int64(j - lastRow))
				lastRow = j
				_ = lb.apply(pe, st, j-1, j, x != lastCol, false)
			}
		}
		pe.Tick(int64(h-1) - int64(lastRow))
		// Phase two: replay relevant unions arriving from the previous
		// column until eos.
		// Speculation throttle (stands in for the paper's quash
		// messages): once this PE has wasted more forwards than it has
		// confirmed, and at least specWasteBudget in total, it stops
		// speculating for the rest of the pass.
		const specWasteBudget = 8
		var specFired, specWasted int64
		speculating := lb.opt.Speculate && x != lastCol
		if pe.HasIn() {
			if lb.opt.IdleCompression && st.forest != nil && len(st.ones) > 0 {
				cursor := 0
				f, ones := st.forest, st.ones
				pe.OnIdle(func() {
					f.CompressOne(int(ones[cursor]))
					cursor++
					if cursor == len(ones) {
						cursor = 0
					}
				})
			}
			for {
				msg, ok := pe.RecvWait()
				if !ok {
					panic(fmt.Sprintf("core: PE %d: union stream ended without eos", x))
				}
				if msg.Kind == msgEOS {
					break
				}
				if msg.Kind != msgUnion {
					panic(fmt.Sprintf("core: PE %d: unexpected message kind %d in union pass", x, msg.Kind))
				}
				// §3 speculation: forward the union before executing it
				// when the witness rows visibly continue into the next
				// column, taking the find/union latency off the
				// inter-PE critical path. Safe without quash messages:
				// the forwarded rows are connected here, so their
				// next-column neighbors share a component and the
				// downstream union is at worst a no-op.
				speculated := false
				if speculating {
					throttled := specWasted >= specWasteBudget && specWasted > specFired-specWasted
					if !throttled {
						pe.Tick(1)
						wa, wb := lb.witnessIn(nextCol, int(msg.A)), lb.witnessIn(nextCol, int(msg.B))
						if wa != -1 && wb != -1 {
							pe.Send(slap.Msg{Kind: msgUnion, A: wa, B: wb, Words: 2})
							st.specSends++
							specFired++
							speculated = true
						}
					}
				}
				if !lb.apply(pe, st, msg.A, msg.B, x != lastCol, speculated) && speculated {
					specWasted++
					st.specWasted++
				}
			}
		}
		if x != lastCol {
			pe.Send(slap.Msg{Kind: msgEOS})
		}
		// The PE's memory: column bits, union–find arrays, satellites.
		pe.DeclareMemory(int64(h) + 2*int64(h) + 3*int64(len(st.adj)/2))
	})

	// Step 2: a find on every pixel (also primes path compression so
	// every later find is cheap, as §3 notes). The phase is purely local,
	// so every charge — the per-row bookkeeping tick and the union–find
	// step costs — is accumulated and charged in one batch: the PE
	// clocks are identical to ticking operation by operation.
	unit := lb.opt.UnitCostUF
	lb.m.RunLocal(passName(dir, "findall"), func(pe *slap.PE) {
		st := &cols[pe.Index]
		ticks := int64(h)
		for _, j := range st.ones {
			_, cost := st.uf.FindCost(int(j))
			if unit {
				ticks++
			} else {
				ticks += cost
			}
		}
		pe.Tick(ticks)
	})

	// Step 3 (Figure 6): the label pass, with the min rule (see below).
	lb.m.RunSweep(passName(dir, "labelpass"), dir, func(pe *slap.PE) {
		x := pe.Index
		st := &cols[x]
		// Sets with no previous-column adjacency label themselves with
		// their first pixel's position and send the label onward once.
		// Only 1-rows do work, so the ones list is walked and the row
		// scan's per-row tick is charged in arrears before each find,
		// exactly like the union–find pass's phase one.
		lastRow := int32(-1)
		for _, j := range st.ones {
			pe.Tick(int64(j - lastRow))
			lastRow = j
			s, cost := st.uf.FindCost(int(j))
			if unit {
				pe.Tick(1)
			} else {
				pe.Tick(cost)
			}
			if st.adj[2*s+1] == -1 && st.label[s] == -1 {
				st.label[s] = posOf(x, int(j))
				if st.adj[2*s] != -1 {
					pe.Send(slap.Msg{Kind: msgLabel, A: st.label[s], B: st.adj[2*s], Words: 2})
				}
			}
		}
		pe.Tick(int64(h-1) - int64(lastRow))
		// Incoming labels. Figure 6 overwrites label[S] per arrival; when
		// two sets of the previous column merge only through this column,
		// overwriting is order-dependent, so we apply the paper's §2
		// consistency rule ("each component gets labeled with the least
		// label seen"): adopt the minimum and forward on first receipt or
		// improvement. Every set still sends at least once and the least
		// label of each prefix component reaches every column it touches.
		if pe.HasIn() {
			for {
				msg, ok := pe.RecvWait()
				if !ok {
					panic(fmt.Sprintf("core: PE %d: label stream ended without eos", x))
				}
				if msg.Kind == msgEOS {
					break
				}
				if msg.Kind != msgLabel {
					panic(fmt.Sprintf("core: PE %d: unexpected message kind %d in label pass", x, msg.Kind))
				}
				// One find charge plus the record's bookkeeping step,
				// fused (no send happens between them).
				s, cost := st.uf.FindCost(int(msg.B))
				if unit {
					pe.Tick(2)
				} else {
					pe.Tick(cost + 1)
				}
				if st.label[s] == -1 || msg.A < st.label[s] {
					st.label[s] = msg.A
					if st.adj[2*s] != -1 {
						pe.Send(slap.Msg{Kind: msgLabel, A: st.label[s], B: st.adj[2*s], Words: 2})
					}
				}
			}
		}
		if x != lastCol {
			pe.Send(slap.Msg{Kind: msgEOS})
		}
	})

	// Step 4: assign each pixel its set's label (purely local: charges
	// are batched like findall's).
	lb.m.RunLocal(passName(dir, "assign"), func(pe *slap.PE) {
		st := &cols[pe.Index]
		ticks := int64(h)
		for _, j := range st.ones {
			s, cost := st.uf.FindCost(int(j))
			if unit {
				ticks++
			} else {
				ticks += cost
			}
			if st.label[s] == -1 {
				panic(fmt.Sprintf("core: PE %d row %d: set %d never received a label", pe.Index, j, s))
			}
			st.out[j] = st.label[s]
		}
		pe.Tick(ticks)
	})

	// Fold the per-PE speculation counters (kept PE-local so concurrent
	// sweeps never touch shared labeler state).
	for x := range cols {
		lb.spec.Sends += cols[x].specSends
		lb.spec.Wasted += cols[x].specWasted
	}
	return cols
}

// ensurePass returns the pass arena sized to the current run's width,
// growing it (and carrying over existing column states) when needed.
func (lb *Labeler) ensurePass(p int) []colState {
	if cap(lb.passCols[p]) < lb.w {
		grown := make([]colState, lb.w)
		copy(grown, lb.passCols[p])
		lb.passCols[p] = grown
	}
	lb.passCols[p] = lb.passCols[p][:lb.w]
	return lb.passCols[p]
}

// resetColState re-initializes the per-column pass state for column x of
// the current image, reusing every backing array of a previous run. A
// reset state is indistinguishable from a freshly built one. When share
// is non-nil its column bits and 1-row list are adopted by reference
// (they depend only on the image, not the sweep direction, and stay
// immutable for the rest of the run).
func (lb *Labeler) resetColState(st *colState, x int, share *colState) {
	h := lb.h
	if share != nil {
		st.col = share.col
	} else {
		st.col = lb.img.Column(x, growBools(st.col, h))[:h]
	}
	if st.uf == nil || st.kind != lb.opt.UF {
		inner, _ := unionfind.Make(lb.opt.UF, h)
		st.uf = unionfind.NewMeter(inner)
		// Only Stats/MaxOpCost feed the UF report; skip the histogram.
		st.uf.DisableHistogram()
		st.kind = lb.opt.UF
	} else {
		st.uf.Reset(h)
	}
	st.forest = nil
	if f, ok := st.uf.Unwrap().(*unionfind.Forest); ok {
		st.forest = f
	}
	cb := st.uf.CapBound()
	// adj needs no -1 pre-fill: every slot the passes read is written
	// first (witnesses for 1-rows in the make-set loop, merged roots in
	// apply's satellite fold — and 0-rows are never unioned, so stale
	// slots are unreachable). label is different: "label[s] == -1" is
	// the not-yet-labeled sentinel the label pass tests before any
	// write. out is re-filled too, purely to keep the merge's "missing
	// pass label" sanity panic meaningful (a block copy; the cost is
	// noise).
	st.adj = unionfind.GrowInt32(st.adj, 2*cb)
	st.label = fillNeg(unionfind.GrowInt32(st.label, cb))
	st.out = fillNeg(unionfind.GrowInt32(st.out, h))
	if share != nil {
		st.ones = share.ones
	} else {
		st.ones = st.ones[:0]
		for j := 0; j < h; j++ {
			if st.col[j] {
				st.ones = append(st.ones, int32(j))
			}
		}
	}
	st.specSends, st.specWasted = 0, 0
	lb.meters = append(lb.meters, st.uf)
}

// apply is the paper's Apply (Figure 5): union the sets holding the two
// rows; if both sets touch the next column, first forward the pair of
// witness rows so the next column replays the union. When the union was
// already forwarded speculatively, the normal forward is suppressed
// (both messages would union the same two downstream sets). It reports
// whether the two rows were in distinct sets.
func (lb *Labeler) apply(pe *slap.PE, st *colState, top, bot int32, hasOut, speculated bool) bool {
	if !st.col[top] || !st.col[bot] {
		panic(fmt.Sprintf("core: PE %d: union witness rows (%d,%d) include a 0-pixel", pe.Index, top, bot))
	}
	root, a, b, united, cost := st.uf.UnionCost(int(top), int(bot))
	if lb.opt.UnitCostUF {
		pe.Tick(1)
	} else {
		pe.Tick(cost)
	}
	if !united {
		return false
	}
	// Forward the relevant union before folding satellites: the witness
	// rows must be the pre-union ones (Figure 5 enqueues before Union).
	adj := st.adj
	if !speculated && adj[2*a] != -1 && adj[2*b] != -1 && hasOut {
		pe.Send(slap.Msg{Kind: msgUnion, A: adj[2*a], B: adj[2*b], Words: 2})
	}
	pe.Tick(1)
	adj[2*root] = firstWitness(adj[2*a], adj[2*b])
	adj[2*root+1] = firstWitness(adj[2*a+1], adj[2*b+1])
	return true
}

// firstWitness keeps any non-nil witness row.
func firstWitness(a, b int32) int32 {
	if a != -1 {
		return a
	}
	return b
}

// witness returns a row of column x+dir holding a 1-pixel adjacent to
// pixel (x, j) under the configured connectivity, or -1 (the paper's
// nil). Constant work; the returned row identifies where the neighboring
// column should replay information concerning (x, j)'s set. It reads the
// neighbor's column bits from the pass arena (every column is unpacked
// before the sweeps start), which is cheaper than re-extracting bits
// from the image on the simulator's hottest path.
func (lb *Labeler) witness(cols []colState, x, j, dir int) int32 {
	nx := x + dir
	if nx < 0 || nx >= lb.w {
		return -1
	}
	return lb.witnessIn(cols[nx].col, j)
}

// witnessIn is witness against an already-resolved neighbor column
// (nil when the neighbor is off the edge of the image).
func (lb *Labeler) witnessIn(ncol []bool, j int) int32 {
	if ncol == nil {
		return -1
	}
	if ncol[j] {
		return int32(j)
	}
	if lb.opt.Connectivity == bitmap.Conn8 {
		if j > 0 && ncol[j-1] {
			return int32(j - 1)
		}
		if j+1 < len(ncol) && ncol[j+1] {
			return int32(j + 1)
		}
	}
	return -1
}

// fillNeg fills s with -1 (the paper's nil) by block-copying from a
// shared template: reset paths fill thousands of satellite arrays per
// run, and a memmove beats an element-by-element loop.
func fillNeg(s []int32) []int32 {
	copy(s, unionfind.NegTable(len(s)))
	return s
}

// growBools returns a length-n slice backed by s's array when possible.
func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
