package core

import (
	"fmt"
	"math/bits"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// colState is one PE's persistent memory for one pass: the column's
// pixels, its union–find structure over rows, and the per-set satellite
// data adjnext/adjprev (a witness row where the set touches the next /
// previous column of the sweep; -1 is the paper's nil) and label.
//
// The column pixels are kept bit-packed (bit j%64 of word j/64 is row
// j), extracted word-wise from the image by bitmap.ColumnWords: every
// walk over the column skips zero words and pulls 1-rows out of the
// packed words with bits.TrailingZeros64, and the witness tests against
// neighbor columns are single-bit probes. The two passes share the bit
// arrays (pixels don't depend on sweep direction).
//
// colStates live in the Labeler's per-pass arenas and are re-initialized
// in place for every run, so a warm Labeler performs no per-column
// allocation at all.
type colState struct {
	bits      []uint64 // packed column pixels; immutable for the run
	onesCount int32    // popcount of bits
	uf        *unionfind.Meter
	kind      unionfind.Kind    // the kind uf wraps (arena revalidation)
	forest    *unionfind.Forest // non-nil when forest-backed (idle compression)
	// adj interleaves the two witness satellites — adj[2s] is the
	// paper's adjnext[s], adj[2s+1] its adjprev[s] — so the hot paths
	// touch one cache line per set instead of two.
	adj   []int32
	label []int32
	out   []int32 // final per-row pass labels (-1 on 0-pixels)
	costs []int32 // label-pass batch-find cost scratch

	// Per-PE speculation counters (kept here, not on the labeler, so
	// parallel sweeps stay race-free; summed after the pass).
	specSends  int64
	specWasted int64
}

// bitAt probes one pixel of a packed column.
func bitAt(b []uint64, j int) bool { return b[j>>6]>>(uint(j)&63)&1 != 0 }

// passName labels the machine phases of one pass. The names are static
// so the hot path never builds a string (a concatenation here is an
// allocation per phase per run).
func passName(dir slap.Direction, step string) string {
	if dir == slap.LeftToRight {
		switch step {
		case "unionfind":
			return "left:unionfind"
		case "findall":
			return "left:findall"
		case "labelpass":
			return "left:labelpass"
		case "assign":
			return "left:assign"
		case "agg":
			return "left:agg"
		}
		return "left:" + step
	}
	switch step {
	case "unionfind":
		return "right:unionfind"
	case "findall":
		return "right:findall"
	case "labelpass":
		return "right:labelpass"
	case "assign":
		return "right:assign"
	case "agg":
		return "right:agg"
	}
	return "right:" + step
}

// passIndex maps a sweep direction to its arena slot.
func passIndex(dir slap.Direction) int {
	if dir == slap.LeftToRight {
		return 0
	}
	return 1
}

// runPass computes one directional connected labeling (steps 1–4 of
// Algorithm Left-Components, Figure 4). Left pass labels are
// column-major positions; right pass labels are offset by w·h and use
// the mirrored column order, so the two label spaces are disjoint and
// left labels always win the final minimum.
//
// The four phases execute as one fused walk per column (slap.RunFused):
// the sequential engine visits each column once, running make-set/union,
// find-all, label, and assign back to back while the column's packed
// bits, union–find arrays, and satellites are cache-hot, instead of
// walking the whole array four times. Each phase keeps its own virtual
// clocks, links, and metrics, so the simulated accounting is
// bit-identical to the per-phase execution (which the parallel engine
// and the equivalence tests still use). extra, when non-nil, is a
// trailing subphase that rides the same walk — runCC attaches the merge
// step to the right pass this way.
func (lb *Labeler) runPass(dir slap.Direction, extra *slap.SubPhase) []colState {
	w, h := lb.w, lb.h
	dx := 1
	base := int32(0)
	lastCol := w - 1
	if dir == slap.RightToLeft {
		dx = -1
		base = int32(w * h)
		lastCol = 0
	}
	// posOf(x, j), the pass label of pixel (x, j), is affine in j: the
	// label pass hoists the per-column base and adds row indices.
	colBase := func(x int) int32 {
		if dir == slap.LeftToRight {
			return int32(x * h)
		}
		return base + int32((w-1-x)*h)
	}

	// The packed column bits are extracted (or adopted from the left
	// pass: both are immutable for the rest of the run, and the passes
	// always execute left-first) before the walk starts — the sweep
	// bodies probe *neighbor* columns' bits ahead of the walk reaching
	// them. The rest of the column state is re-initialized per column by
	// the walk's prep hook, right before the column's phase bodies run
	// over it.
	p := passIndex(dir)
	cols := lb.ensurePass(p)
	if p == 1 {
		for x := range cols {
			cols[x].bits = lb.passCols[0][x].bits
			cols[x].onesCount = lb.passCols[0][x].onesCount
		}
	} else {
		for x := range cols {
			st := &cols[x]
			st.bits = lb.img.ColumnWords(x, st.bits)
			n := 0
			for _, wd := range st.bits {
				n += bits.OnesCount64(wd)
			}
			st.onesCount = int32(n)
		}
	}

	// Step 1 (Figure 5): the union–find pass.
	ufBody := func(pe *slap.PE) {
		x := pe.Index
		st := &cols[x]
		// The sweep-order neighbor columns' packed bits: the witness
		// tests on the hot path are then single-bit probes.
		var nextBits, prevBits []uint64
		if nx := x + dx; nx >= 0 && nx < w {
			nextBits = cols[nx].bits
		}
		if px := x - dx; px >= 0 && px < w {
			prevBits = cols[px].bits
		}

		// Make-Set(j) for every row, and initialize the adjacency
		// witnesses of the singleton sets (constant work per row).
		// Witness values are rows of the *next* column (for Conn4 the
		// row indices coincide). Under Conn8 a pixel may touch up to
		// three next-column pixels that are not connected to each other
		// except through this pixel, so consecutive neighbors are
		// chained with bridge records the next column replays as unions.
		if lb.opt.Connectivity == bitmap.Conn8 {
			// Only 1-rows do work; the per-row tick of the row scan is
			// charged in arrears before each, so the clock at every send
			// is identical to ticking row by row.
			lastRow := int32(-1)
			for wi, word := range st.bits {
				for word != 0 {
					j := int32(wi<<6 + bits.TrailingZeros64(word))
					word &= word - 1
					pe.Tick(int64(j - lastRow))
					lastRow = j
					st.adj[2*j] = lb.witnessIn(nextBits, int(j))
					st.adj[2*j+1] = lb.witnessIn(prevBits, int(j))
					if x != lastCol {
						prevNbr := int32(-1)
						for r := int(j) - 1; r <= int(j)+1; r++ {
							if r < 0 || r >= h || !bitAt(nextBits, r) {
								continue
							}
							if prevNbr != -1 {
								pe.Send(slap.Msg{Kind: msgUnion, A: prevNbr, B: int32(r), Words: 2})
							}
							prevNbr = int32(r)
						}
					}
				}
			}
			pe.Tick(int64(h-1) - int64(lastRow))
		} else {
			// Conn4 sends nothing here, so the per-row tick is charged in
			// one batch and only 1-rows are visited: clocks are identical
			// to the row-by-row loop. The witness words are hoisted per
			// 64-row block and the adj writes are branchless — at 50%
			// density a taken/not-taken witness branch is a coin flip,
			// the worst case for prediction.
			pe.Tick(int64(h))
			adj := st.adj
			for wi, word := range st.bits {
				var nextWord, prevWord uint64
				if nextBits != nil {
					nextWord = nextBits[wi]
				}
				if prevBits != nil {
					prevWord = prevBits[wi]
				}
				for word != 0 {
					t := bits.TrailingZeros64(word)
					j := wi<<6 + t
					word &= word - 1
					// v = j when the witness bit is set, -1 otherwise.
					nb := int32(nextWord >> uint(t) & 1)
					pb := int32(prevWord >> uint(t) & 1)
					adj[2*j] = int32(j)&(-nb) | (nb - 1)
					adj[2*j+1] = int32(j)&(-pb) | (pb - 1)
				}
			}
		}
		// Phase one: union vertical runs within the column. Unions happen
		// exactly at consecutive pairs of 1-rows — bit j of
		// word & (word<<1), with the previous word's top bit carried in,
		// is set exactly when rows j-1 and j are both 1 — and the
		// per-row tick of the row scan is charged in arrears right
		// before each union, keeping the clock at every union (and so at
		// every send) identical to ticking row by row.
		// Ticks accumulate locally and flush right before each send (the
		// only points where the clock is observable), charging totals
		// identical to ticking per row and per operation.
		lastRow := int32(0)
		var acc int64
		var carry uint64
		for wi, word := range st.bits {
			pairs := word & (word<<1 | carry)
			carry = word >> 63
			for pairs != 0 {
				j := int32(wi<<6 + bits.TrailingZeros64(pairs))
				pairs &= pairs - 1
				acc += int64(j - lastRow)
				lastRow = j
				_ = lb.apply(pe, st, j-1, j, x != lastCol, false, &acc)
			}
		}
		pe.Tick(acc + int64(h-1) - int64(lastRow))
		// Phase two: replay relevant unions arriving from the previous
		// column until eos.
		// Speculation throttle (stands in for the paper's quash
		// messages): once this PE has wasted more forwards than it has
		// confirmed, and at least specWasteBudget in total, it stops
		// speculating for the rest of the pass.
		const specWasteBudget = 8
		var specFired, specWasted int64
		speculating := lb.opt.Speculate && x != lastCol
		if pe.HasIn() {
			if lb.opt.IdleCompression && st.forest != nil && st.onesCount > 0 {
				// Cycle compression victims through the column's 1-rows
				// in ascending order, straight off the packed words.
				f, cbits := st.forest, st.bits
				wi, rem := 0, st.bits[0]
				pe.OnIdle(func() {
					for rem == 0 {
						wi++
						if wi == len(cbits) {
							wi = 0
						}
						rem = cbits[wi]
					}
					f.CompressOne(wi<<6 + bits.TrailingZeros64(rem))
					rem &= rem - 1
				})
			}
			var acc int64
			for {
				// The clock is observable inside RecvWait (its poll
				// arithmetic), so pending charges flush first.
				if acc != 0 {
					pe.Tick(acc)
					acc = 0
				}
				msg, ok := pe.RecvWait()
				if !ok {
					panic(fmt.Sprintf("core: PE %d: union stream ended without eos", x))
				}
				if msg.Kind == msgEOS {
					break
				}
				if msg.Kind != msgUnion {
					panic(fmt.Sprintf("core: PE %d: unexpected message kind %d in union pass", x, msg.Kind))
				}
				// §3 speculation: forward the union before executing it
				// when the witness rows visibly continue into the next
				// column, taking the find/union latency off the
				// inter-PE critical path. Safe without quash messages:
				// the forwarded rows are connected here, so their
				// next-column neighbors share a component and the
				// downstream union is at worst a no-op.
				speculated := false
				if speculating {
					throttled := specWasted >= specWasteBudget && specWasted > specFired-specWasted
					if !throttled {
						pe.Tick(1)
						wa, wb := lb.witnessIn(nextBits, int(msg.A)), lb.witnessIn(nextBits, int(msg.B))
						if wa != -1 && wb != -1 {
							pe.Send(slap.Msg{Kind: msgUnion, A: wa, B: wb, Words: 2})
							st.specSends++
							specFired++
							speculated = true
						}
					}
				}
				if !lb.apply(pe, st, msg.A, msg.B, x != lastCol, speculated, &acc) && speculated {
					specWasted++
					st.specWasted++
				}
			}
			// acc is always zero here: the eos record's arrival flushed
			// the last union's pending charges.
		}
		if x != lastCol {
			pe.Send(slap.Msg{Kind: msgEOS})
		}
		// The PE's memory: column bits, union–find arrays, satellites.
		pe.DeclareMemory(int64(h) + 2*int64(h) + 3*int64(len(st.adj)/2))
	}

	// Step 2: a find on every pixel (also primes path compression so
	// every later find is cheap, as §3 notes). The phase is purely local,
	// so every charge — the per-row bookkeeping tick and the union–find
	// step costs — is accumulated and charged in one batch: the PE
	// clocks are identical to ticking operation by operation.
	unit := lb.opt.UnitCostUF
	findallBody := func(pe *slap.PE) {
		st := &cols[pe.Index]
		ops, steps := st.uf.FindCostBitset(st.bits, nil)
		if unit {
			pe.Tick(int64(h) + ops)
		} else {
			pe.Tick(int64(h) + steps)
		}
	}

	// Step 3 (Figure 6): the label pass, with the min rule (see below).
	labelBody := func(pe *slap.PE) {
		x := pe.Index
		st := &cols[x]
		// Sets with no previous-column adjacency label themselves with
		// their first pixel's position and send the label onward once.
		// Only 1-rows do work, and the row scan's per-row tick is
		// charged in arrears before each find, exactly like the
		// union–find pass's phase one. The finds themselves run as one
		// metered batch up front (they neither read nor affect anything
		// the interleaved sends touch), recording per-row roots and
		// costs; the loop then replays each row's charges against the
		// clock, borrowing out as the root scratch (its 1-row slots are
		// overwritten by assign, its 0-row slots never read before).
		roots := st.out[:h]
		st.uf.FindCostBitsetInto(st.bits, roots, st.costs)
		pos := colBase(x)
		lastRow := int32(-1)
		var acc int64
		for wi, word := range st.bits {
			for word != 0 {
				j := int32(wi<<6 + bits.TrailingZeros64(word))
				word &= word - 1
				// The row-scan arrears and the find charge accumulate and
				// flush right before each send, charging totals identical
				// to ticking per row and per operation.
				if unit {
					acc += int64(j-lastRow) + 1
				} else {
					acc += int64(j-lastRow) + int64(st.costs[j])
				}
				lastRow = j
				s := roots[j]
				if st.adj[2*s+1] == -1 && st.label[s] == -1 {
					st.label[s] = pos + j
					if st.adj[2*s] != -1 {
						pe.Tick(acc)
						acc = 0
						pe.Send(slap.Msg{Kind: msgLabel, A: st.label[s], B: st.adj[2*s], Words: 2})
					}
				}
			}
		}
		pe.Tick(acc + int64(h-1) - int64(lastRow))
		// Incoming labels. Figure 6 overwrites label[S] per arrival; when
		// two sets of the previous column merge only through this column,
		// overwriting is order-dependent, so we apply the paper's §2
		// consistency rule ("each component gets labeled with the least
		// label seen"): adopt the minimum and forward on first receipt or
		// improvement. Every set still sends at least once and the least
		// label of each prefix component reaches every column it touches.
		if pe.HasIn() {
			for {
				msg, ok := pe.RecvWait()
				if !ok {
					panic(fmt.Sprintf("core: PE %d: label stream ended without eos", x))
				}
				if msg.Kind == msgEOS {
					break
				}
				if msg.Kind != msgLabel {
					panic(fmt.Sprintf("core: PE %d: unexpected message kind %d in label pass", x, msg.Kind))
				}
				// One find charge plus the record's bookkeeping step,
				// fused (no send happens between them).
				s, cost := st.uf.FindCost(int(msg.B))
				if unit {
					pe.Tick(2)
				} else {
					pe.Tick(cost + 1)
				}
				if st.label[s] == -1 || msg.A < st.label[s] {
					st.label[s] = msg.A
					if st.adj[2*s] != -1 {
						pe.Send(slap.Msg{Kind: msgLabel, A: st.label[s], B: st.adj[2*s], Words: 2})
					}
				}
			}
		}
		if x != lastCol {
			pe.Send(slap.Msg{Kind: msgEOS})
		}
	}

	// Step 4: assign each pixel its set's label (purely local: charges
	// are batched like findall's). The batch find borrows the adj array
	// as its per-row root scratch — the witness satellites are dead once
	// the label pass is over, and adj is always at least h long.
	assignBody := func(pe *slap.PE) {
		st := &cols[pe.Index]
		roots := st.adj[:h]
		ops, steps := st.uf.FindCostBitset(st.bits, roots)
		if unit {
			pe.Tick(int64(h) + ops)
		} else {
			pe.Tick(int64(h) + steps)
		}
		for wi, word := range st.bits {
			for word != 0 {
				j := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				s := roots[j]
				if st.label[s] == -1 {
					panic(fmt.Sprintf("core: PE %d row %d: set %d never received a label", pe.Index, j, s))
				}
				st.out[j] = st.label[s]
			}
		}
	}

	subs := append(lb.subs[:0],
		slap.SubPhase{Name: passName(dir, "unionfind"), Body: ufBody},
		slap.SubPhase{Name: passName(dir, "findall"), Local: true, Body: findallBody},
		slap.SubPhase{Name: passName(dir, "labelpass"), Body: labelBody},
		slap.SubPhase{Name: passName(dir, "assign"), Local: true, Body: assignBody},
	)
	if extra != nil {
		subs = append(subs, *extra)
	}
	lb.m.RunFused(dir, func(x int) { lb.resetColState(&cols[x]) }, subs)
	// Park the (possibly grown) arena for the next run, clearing the
	// closure slots: the merge subphase captures the run's result
	// LabelMap, which a retained closure would pin long after the
	// caller released it.
	for i := range subs {
		subs[i] = slap.SubPhase{}
	}
	lb.subs = subs[:0]

	// Fold the per-PE speculation counters (kept PE-local so concurrent
	// sweeps never touch shared labeler state).
	for x := range cols {
		lb.spec.Sends += cols[x].specSends
		lb.spec.Wasted += cols[x].specWasted
	}
	return cols
}

// ensurePass returns the pass arena sized to the current run's width,
// growing it (and carrying over existing column states) when needed.
func (lb *Labeler) ensurePass(p int) []colState {
	if cap(lb.passCols[p]) < lb.w {
		grown := make([]colState, lb.w)
		copy(grown, lb.passCols[p])
		lb.passCols[p] = grown
	}
	lb.passCols[p] = lb.passCols[p][:lb.w]
	return lb.passCols[p]
}

// resetColState re-initializes the per-column pass state (union–find
// structure and satellite arrays; the packed bits were set up by
// runPass) for the current image, reusing every backing array of a
// previous run. A reset state is indistinguishable from a freshly built
// one. In the fused walk it runs as the per-column prep hook, so the
// arrays it fills are still cache-hot when the phase bodies read them.
func (lb *Labeler) resetColState(st *colState) {
	h := lb.h
	if st.uf == nil || st.kind != lb.opt.UF {
		inner, _ := unionfind.Make(lb.opt.UF, h)
		st.uf = unionfind.NewMeter(inner)
		// Only Stats/MaxOpCost feed the UF report; skip the histogram.
		st.uf.DisableHistogram()
		st.kind = lb.opt.UF
	} else {
		st.uf.Reset(h)
	}
	st.forest = nil
	if f, ok := st.uf.Unwrap().(*unionfind.Forest); ok {
		st.forest = f
	}
	cb := st.uf.CapBound()
	// adj and out need no -1 pre-fill: every slot the passes read is
	// written first (witnesses for 1-rows in the make-set loop, merged
	// roots in apply's satellite fold — 0-rows are never unioned, so
	// stale slots are unreachable; out's 1-row slots are all written by
	// assign, and only 1-row slots are ever read). label is different:
	// "label[s] == -1" is the not-yet-labeled sentinel the label pass
	// tests before any write.
	st.adj = unionfind.GrowInt32(st.adj, 2*cb)
	st.label = fillNeg(unionfind.GrowInt32(st.label, cb))
	st.out = unionfind.GrowInt32(st.out, h)
	st.costs = unionfind.GrowInt32(st.costs, h)
	st.specSends, st.specWasted = 0, 0
	lb.meters = append(lb.meters, st.uf)
}

// apply is the paper's Apply (Figure 5): union the sets holding the two
// rows; if both sets touch the next column, first forward the pair of
// witness rows so the next column replays the union. When the union was
// already forwarded speculatively, the normal forward is suppressed
// (both messages would union the same two downstream sets). It reports
// whether the two rows were in distinct sets.
//
// acc is the caller's pending-tick accumulator: the union's charge
// joins it, and the whole balance flushes to the clock right before a
// send (the only point inside apply where the clock is observable) —
// charging totals identical to ticking per operation.
func (lb *Labeler) apply(pe *slap.PE, st *colState, top, bot int32, hasOut, speculated bool, acc *int64) bool {
	if !bitAt(st.bits, int(top)) || !bitAt(st.bits, int(bot)) {
		panic(fmt.Sprintf("core: PE %d: union witness rows (%d,%d) include a 0-pixel", pe.Index, top, bot))
	}
	root, a, b, united, cost := st.uf.UnionCost(int(top), int(bot))
	if lb.opt.UnitCostUF {
		cost = 1
	}
	t := *acc + cost
	if !united {
		*acc = t
		return false
	}
	// Forward the relevant union before folding satellites: the witness
	// rows must be the pre-union ones (Figure 5 enqueues before Union).
	adj := st.adj
	if !speculated && adj[2*a] != -1 && adj[2*b] != -1 && hasOut {
		pe.Tick(t)
		t = 0
		pe.Send(slap.Msg{Kind: msgUnion, A: adj[2*a], B: adj[2*b], Words: 2})
	}
	*acc = t + 1 // the satellite-fold step
	adj[2*root] = firstWitness(adj[2*a], adj[2*b])
	adj[2*root+1] = firstWitness(adj[2*a+1], adj[2*b+1])
	return true
}

// firstWitness keeps any non-nil witness row.
func firstWitness(a, b int32) int32 {
	if a != -1 {
		return a
	}
	return b
}

// witness returns a row of column x+dir holding a 1-pixel adjacent to
// pixel (x, j) under the configured connectivity, or -1 (the paper's
// nil). Constant work; the returned row identifies where the neighboring
// column should replay information concerning (x, j)'s set. It probes
// the neighbor's packed bits from the pass arena.
func (lb *Labeler) witness(cols []colState, x, j, dir int) int32 {
	nx := x + dir
	if nx < 0 || nx >= lb.w {
		return -1
	}
	return lb.witnessIn(cols[nx].bits, j)
}

// witnessIn is witness against an already-resolved neighbor column's
// packed bits (nil when the neighbor is off the edge of the image).
func (lb *Labeler) witnessIn(nbits []uint64, j int) int32 {
	if nbits == nil {
		return -1
	}
	if bitAt(nbits, j) {
		return int32(j)
	}
	if lb.opt.Connectivity == bitmap.Conn8 {
		if j > 0 && bitAt(nbits, j-1) {
			return int32(j - 1)
		}
		if j+1 < lb.h && bitAt(nbits, j+1) {
			return int32(j + 1)
		}
	}
	return -1
}

// fillNeg fills s with -1 (the paper's nil) by block-copying from a
// shared template: reset paths fill thousands of satellite arrays per
// run, and a memmove beats an element-by-element loop.
func fillNeg(s []int32) []int32 {
	copy(s, unionfind.NegTable(len(s)))
	return s
}
