package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"slapcc/internal/bitmap"
	"slapcc/internal/obs"
)

// The frame-streaming subsystem: the per-PE parallel engine can only
// shorten one frame's wall time, and on link-bound phases its speedup
// saturates quickly. A video pipeline has a better axis: *frames* are
// independent, so a pool of worker labelers — one per core, each with
// its own warm arenas — runs whole simulations concurrently with no
// shared mutable state at all, giving near-linear multicore scaling of
// aggregate throughput. LabelerPool is the sharding primitive;
// LabelStream adds in-order delivery on top.

// LabelerPool shards Label calls across a fixed set of reusable
// Labelers, one checked out per call. Unlike a single Labeler it is
// safe for concurrent use: up to Workers() calls run truly in parallel,
// each on its own arenas, and further callers block for a free worker.
// Results and simulated metrics are bit-identical to a single Labeler's
// (every worker runs the same deterministic simulation).
type LabelerPool struct {
	opt     Options
	workers int
	free    chan *Labeler
}

// NewLabelerPool returns a pool of workers reusable labelers running
// under opt; workers ≤ 0 selects GOMAXPROCS.
func NewLabelerPool(opt Options, workers int) *LabelerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &LabelerPool{opt: opt, workers: workers, free: make(chan *Labeler, workers)}
	for i := 0; i < workers; i++ {
		p.free <- NewLabeler(opt)
	}
	return p
}

// Workers returns the pool size.
func (p *LabelerPool) Workers() int { return p.workers }

// Idle returns how many workers are free right now. The value is a
// racy snapshot — by the time the caller acts another goroutine may
// have taken or returned a worker — so it is a load-shedding signal
// (export it as a gauge, compare against Workers()), not a reservation.
func (p *LabelerPool) Idle() int { return len(p.free) }

// withWorker checks out a worker (blocking), runs fn on it, and returns
// it; see runOn for the panic-safety contract.
func (p *LabelerPool) withWorker(fn func(*Labeler) (*Result, error)) (*Result, error) {
	return runOn(p, <-p.free, fn)
}

// runOn runs fn on a checked-out worker and returns the worker via
// defer so a panicking labeler cannot shrink the pool: the panic
// propagates, but the slot is refilled with a fresh labeler (the
// panicked one's arenas may be mid-run corrupt). Generic so the Label-
// and Aggregate-shaped calls share this one lifecycle contract.
func runOn[T any](p *LabelerPool, lb *Labeler, fn func(*Labeler) (T, error)) (T, error) {
	done := false
	defer func() {
		if !done {
			lb = NewLabeler(p.opt)
		}
		p.free <- lb
	}()
	res, err := fn(lb)
	done = true
	return res, err
}

// under wraps fn to run with the worker retargeted to opt, restoring
// the worker's own options afterwards whether fn succeeds or fails.
// This is how one pool of warm workers serves heterogeneous requests
// (connectivity, cost model, ArrayWidth all vary per request): the
// arenas adapt in place, so warm reuse still applies across option
// mixes.
func under[T any](opt Options, fn func(*Labeler) (T, error)) func(*Labeler) (T, error) {
	return func(lb *Labeler) (T, error) {
		defer func(prev Options) { lb.userOpt = prev }(lb.userOpt)
		lb.userOpt = opt
		return fn(lb)
	}
}

// Label runs Algorithm CC on img on any free worker, blocking while all
// workers are busy. Safe for concurrent use.
func (p *LabelerPool) Label(img *bitmap.Bitmap) (*Result, error) {
	return p.withWorker(func(lb *Labeler) (*Result, error) { return lb.Label(img) })
}

// LabelWith is Label under per-call options — the shape a service
// needs; see under for the worker-restoration contract.
func (p *LabelerPool) LabelWith(img *bitmap.Bitmap, opt Options) (*Result, error) {
	return p.withWorker(under(opt, func(lb *Labeler) (*Result, error) { return lb.Label(img) }))
}

// TryLabelWith is LabelWith without the blocking wait: when no worker
// is free it reports ok=false immediately and does nothing, so an
// accept loop can shed load instead of queueing behind the pool.
func (p *LabelerPool) TryLabelWith(img *bitmap.Bitmap, opt Options) (res *Result, ok bool, err error) {
	select {
	case lb := <-p.free:
		res, err = runOn(p, lb, under(opt, func(lb *Labeler) (*Result, error) { return lb.Label(img) }))
		return res, true, err
	default:
		return nil, false, nil
	}
}

// LabelWithCtx is LabelWith under a request context: the wait for a
// free worker aborts if ctx is cancelled first, and a strip-mined run
// polls ctx between strips (see Labeler.LabelCtx). When ctx carries a
// trace span, the worker wait is recorded as a "pool" child — the
// queue-behind-the-pool stage every request pays under load.
func (p *LabelerPool) LabelWithCtx(ctx context.Context, img *bitmap.Bitmap, opt Options) (*Result, error) {
	psp := obs.FromContext(ctx).Child("pool")
	lb, err := p.acquire(ctx)
	psp.EndErr(err)
	if err != nil {
		return nil, err
	}
	return runOn(p, lb, under(opt, func(lb *Labeler) (*Result, error) { return lb.LabelCtx(ctx, img) }))
}

// AggregateWithCtx is AggregateWith under a request context, with
// LabelWithCtx's contract (including the "pool" wait span).
func (p *LabelerPool) AggregateWithCtx(ctx context.Context, img *bitmap.Bitmap, initial []int32, op Monoid, opt Options) (*AggregateResult, error) {
	psp := obs.FromContext(ctx).Child("pool")
	lb, err := p.acquire(ctx)
	psp.EndErr(err)
	if err != nil {
		return nil, err
	}
	return runOn(p, lb, under(opt, func(lb *Labeler) (*AggregateResult, error) {
		return lb.AggregateCtx(ctx, img, initial, op)
	}))
}

// acquire checks out a worker, abandoning the wait if ctx is cancelled
// first.
func (p *LabelerPool) acquire(ctx context.Context) (*Labeler, error) {
	select {
	case lb := <-p.free:
		return lb, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("core: cancelled waiting for a worker: %w", ctx.Err())
	}
}

// AggregateWith runs the Corollary 4 aggregation on any free worker
// under per-call options, blocking while all workers are busy. Safe for
// concurrent use; the same lifecycle and restoration contract as
// LabelWith.
func (p *LabelerPool) AggregateWith(img *bitmap.Bitmap, initial []int32, op Monoid, opt Options) (*AggregateResult, error) {
	return runOn(p, <-p.free, under(opt, func(lb *Labeler) (*AggregateResult, error) {
		return lb.Aggregate(img, initial, op)
	}))
}

// labelImage is Label over the Image interface on a whole-image array —
// the tiler's fan-out path labels strip views through it.
func (p *LabelerPool) labelImage(img bitmap.Image) (*Result, error) {
	return p.withWorker(func(lb *Labeler) (*Result, error) { return lb.labelImage(img) })
}

// aggregateImage is Aggregate over the Image interface on a whole-image
// array — the tiler's fan-out path aggregates strip views through it.
func (p *LabelerPool) aggregateImage(img bitmap.Image, initial []int32, op Monoid) (*AggregateResult, error) {
	return runOn(p, <-p.free, func(lb *Labeler) (*AggregateResult, error) {
		return lb.aggregateImage(img, initial, op)
	})
}

// StreamResult is one frame's outcome, delivered to the stream's sink
// in submission order.
type StreamResult struct {
	// Frame is the submission index (0 for the first Submit).
	Frame int
	// Result is the labeling outcome; nil when Err is non-nil.
	Result *Result
	// Err reports a per-frame configuration error.
	Err error
}

// LabelStream labels a stream of independent frames on a LabelerPool,
// delivering results to a sink callback in submission order regardless
// of which worker finishes first. Use it for the video-pipeline shape:
//
//	s := core.NewLabelStream(core.Options{}, 0, func(r core.StreamResult) { … })
//	for _, frame := range frames { s.Submit(frame) }
//	s.Close() // waits; every sink call has returned
//
// With one worker (or on a single-core host, the GOMAXPROCS default)
// the stream degenerates to the single-labeler path: Submit labels the
// frame synchronously on one reused Labeler and invokes the sink
// inline — no goroutines, no channels, never slower than calling that
// Labeler directly. With more workers, frames fan out to the pool
// through a shared channel (idle workers steal the next frame as they
// finish) and a collector goroutine reorders completions for the sink.
//
// Submit and Close must come from one goroutine; the sink is invoked
// serially (inline in sync mode, from the collector otherwise) and must
// not call back into the stream.
type LabelStream struct {
	pool *LabelerPool
	sink func(StreamResult)
	next int // next submission index

	// Synchronous (single-worker) path.
	lone *Labeler

	// Fan-out path.
	frames    chan streamFrame
	done      chan StreamResult
	workersWG sync.WaitGroup
	collector sync.WaitGroup
	closed    bool
}

type streamFrame struct {
	seq int
	img *bitmap.Bitmap
}

// NewLabelStream returns a stream labeling frames under opt on workers
// worker labelers (≤ 0 selects GOMAXPROCS) and delivering results to
// sink in submission order.
func NewLabelStream(opt Options, workers int, sink func(StreamResult)) *LabelStream {
	if sink == nil {
		panic("core: NewLabelStream requires a sink")
	}
	pool := NewLabelerPool(opt, workers)
	s := &LabelStream{pool: pool, sink: sink}
	if pool.Workers() == 1 {
		s.lone = <-pool.free
		return s
	}
	// Frames buffer twice the worker count: enough that the submitter
	// stays ahead of the pool without unbounded queueing.
	s.frames = make(chan streamFrame, 2*pool.Workers())
	s.done = make(chan StreamResult, 2*pool.Workers())
	for i := 0; i < pool.Workers(); i++ {
		lb := <-pool.free
		s.workersWG.Add(1)
		go func(lb *Labeler) {
			defer s.workersWG.Done()
			for f := range s.frames {
				res, err := lb.Label(f.img)
				s.done <- StreamResult{Frame: f.seq, Result: res, Err: err}
			}
		}(lb)
	}
	s.collector.Add(1)
	go func() {
		defer s.collector.Done()
		// Reorder completions: hold each result until every earlier
		// frame has been delivered.
		pending := make(map[int]StreamResult)
		emit := 0
		for r := range s.done {
			pending[r.Frame] = r
			for {
				nxt, ok := pending[emit]
				if !ok {
					break
				}
				delete(pending, emit)
				emit++
				s.sink(nxt)
			}
		}
		if len(pending) != 0 {
			panic(fmt.Sprintf("core: LabelStream lost %d results", len(pending)))
		}
	}()
	return s
}

// Workers returns how many labelers serve the stream.
func (s *LabelStream) Workers() int { return s.pool.Workers() }

// Submit labels img as the next frame. It may block for backpressure
// (all workers busy and the frame buffer full); in single-worker mode
// it labels synchronously and invokes the sink before returning.
func (s *LabelStream) Submit(img *bitmap.Bitmap) {
	if s.closed {
		panic("core: Submit on a closed LabelStream")
	}
	seq := s.next
	s.next++
	if s.lone != nil {
		res, err := s.lone.Label(img)
		s.sink(StreamResult{Frame: seq, Result: res, Err: err})
		return
	}
	s.frames <- streamFrame{seq: seq, img: img}
}

// TrySubmit is Submit without the backpressure wait: it accepts img
// only when the stream can take it without blocking, reporting whether
// it did. A rejected frame consumes no submission index — in-order
// delivery of the accepted frames is unaffected — so an ingest loop can
// shed load (drop, or answer "try again later") instead of stalling.
// In single-worker mode Submit never queues, so TrySubmit always
// accepts and labels synchronously like Submit.
func (s *LabelStream) TrySubmit(img *bitmap.Bitmap) bool {
	if s.closed {
		panic("core: TrySubmit on a closed LabelStream")
	}
	if s.lone != nil {
		s.Submit(img)
		return true
	}
	select {
	case s.frames <- streamFrame{seq: s.next, img: img}:
		s.next++
		return true
	default:
		return false
	}
}

// QueueDepth returns how many accepted frames are waiting for a worker
// right now (0 in single-worker mode, where Submit is synchronous). A
// racy snapshot, like LabelerPool.Idle: a gauge, not a reservation.
func (s *LabelStream) QueueDepth() int { return len(s.frames) }

// QueueCap returns the frame buffer's capacity: TrySubmit starts
// rejecting when QueueDepth reaches it and every worker is busy.
func (s *LabelStream) QueueCap() int { return cap(s.frames) }

// Close drains the stream: it waits until every submitted frame's
// result has been delivered to the sink, then releases the workers.
// The stream cannot be used afterwards. Close is idempotent.
func (s *LabelStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.lone != nil {
		s.pool.free <- s.lone
		s.lone = nil
		return
	}
	close(s.frames)
	s.workersWG.Wait()
	close(s.done)
	s.collector.Wait()
}
