package core

import "math"

// interner is a small epoch-marked open-addressed table mapping int32
// labels to dense ids: the allocation-free replacement for the
// per-column label maps in the merge and aggregation steps. Compared to
// a direct-index table over the whole label space, it stays a few
// kilobytes — resident in L1/L2 while a column is processed — so the
// probe per pixel is a cache hit instead of a miss into a
// tens-of-megabytes array.
//
// Slot i holds label uint32(meta[i]) with dense id val[i], valid iff
// meta[i]>>32 equals the current epoch; bumping the epoch invalidates
// the table in O(1). The table is sized for load factor ≤ ½ against the
// caller-declared entry bound, so linear probing stays O(1) expected
// and no rehash is ever needed. Lookups are read-only and therefore
// safe from concurrently executing PE bodies; prepare and inserts must
// come from one goroutine (the simulator's local phases).
type interner struct {
	meta  []uint64
	val   []int32
	mask  uint32
	epoch uint32
}

// prepare readies the table for at most maxEntries distinct labels,
// invalidating previous contents.
func (it *interner) prepare(maxEntries int) {
	size := 4
	for size < 2*maxEntries {
		size *= 2
	}
	if len(it.meta) < size {
		it.meta = make([]uint64, size)
		it.val = make([]int32, size)
		it.epoch = 0
	}
	// The mask always covers the allocated table (which may exceed this
	// run's size), so stale larger-table entries stay addressable-but-
	// invalid and the probe sequence always terminates.
	it.mask = uint32(len(it.meta) - 1)
	if it.epoch == math.MaxUint32 {
		for i := range it.meta {
			it.meta[i] = 0
		}
		it.epoch = 0
	}
	it.epoch++
}

// slot returns the index holding label, or the empty slot where it
// belongs (Fibonacci hashing, linear probing).
func (it *interner) slot(label int32) uint32 {
	i := uint32(label) * 2654435761 & it.mask
	for {
		m := it.meta[i]
		if uint32(m>>32) != it.epoch || uint32(m) == uint32(label) {
			return i
		}
		i = (i + 1) & it.mask
	}
}

// live reports whether slot i is occupied this epoch.
func (it *interner) live(i uint32) bool { return uint32(it.meta[i]>>32) == it.epoch }

// set occupies slot i with label → id.
func (it *interner) set(i uint32, label, id int32) {
	it.meta[i] = uint64(it.epoch)<<32 | uint64(uint32(label))
	it.val[i] = id
}

// lookup returns the dense id of label, or ok=false if it was never
// interned this epoch. Read-only.
func (it *interner) lookup(label int32) (int32, bool) {
	i := it.slot(label)
	if !it.live(i) {
		return 0, false
	}
	return it.val[i], true
}
