package core

import (
	mbits "math/bits"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// mergeScratch is the labeler-owned arena for the merge step: a small
// epoch-marked interning table (see interner — a per-column-sized hash
// that stays cache-resident, where the direct-index table over the
// 2·w·h label space it replaced cost a cache miss per probe), the
// per-column edge list and class minima, and one accumulated union–find
// meter whose inner forest is re-initialized per column.
type mergeScratch struct {
	it       interner
	values   []int32
	edges    []unionfind.Pair
	classMin []int32
	// Batch-find scratch: per-node roots, and the left-label node id of
	// each 1-pixel in row order (so the final labeling loop needs no
	// interner probe and no per-operation meter call).
	roots    []int32
	pixIds   []int32
	pixRoots []int32
	forest   *unionfind.Forest
	meter    *unionfind.Meter
}

// reset prepares the scratch for a run.
func (sc *mergeScratch) reset() {
	if sc.forest == nil {
		// The merge's "familiar sequential algorithm" (Lemma 2) runs on
		// the package default structure, as before.
		sc.forest = unionfind.NewForest(0, unionfind.LinkBySize, unionfind.CompressFull)
		sc.meter = unionfind.NewMeter(sc.forest)
		// Only Stats/MaxOpCost feed the UF report; skip the histogram.
		sc.meter.DisableHistogram()
	}
	sc.meter.ResetStats()
}

// mergeSub is step 3 of Algorithm CC (Figure 2): within each PE,
// independently and in parallel, run sequential connected components on
// the graph whose nodes are the column's left and right labels and whose
// edges are the per-pixel pairs (leftlabel[j], rightlabel[j]). Every
// pixel then takes the least label of its graph component — which equals
// the least column-major position of its global image component, because
// that least position's label reaches every column the component touches
// through the left labeling, and right-pass labels (offset by w·h) never
// undercut left-pass labels.
//
// It returns the phase as a slap.SubPhase so runCC can attach it to the
// right pass's fused walk (the per-column merge runs the moment the
// column's right labeling is assigned); the scratch is prepared here,
// before the walk starts. Column order is irrelevant: each column's
// merge is independent, and the interning epochs keep the shared
// scratch disjoint between columns.
func (lb *Labeler) mergeSub(labels *bitmap.LabelMap) slap.SubPhase {
	sc := &lb.mg
	sc.reset()
	lb.meters = append(lb.meters, sc.meter)
	unit := lb.opt.UnitCostUF
	body := func(pe *slap.PE) {
		x := pe.Index
		lcol, rcol := &lb.passCols[0][x], &lb.passCols[1][x]
		// The phase is purely local, so every charge is accumulated in
		// ticks and charged once: the PE clock is identical to charging
		// operation by operation.
		var ticks int64

		// Dense-index the distinct labels appearing in this column (one
		// charged step per intern lookup, as the map-based merge charged).
		// A column of k 1-pixels has at most 2k distinct pass labels.
		sc.it.prepare(2 * int(lcol.onesCount))
		sc.values = sc.values[:0]
		sc.edges = sc.edges[:0]
		sc.pixIds = sc.pixIds[:0]
		it := &sc.it
		prevRow := -2
		var ea, eb int32
		for wi, word := range lcol.bits {
			for word != 0 {
				j := wi<<6 + mbits.TrailingZeros64(word)
				word &= word - 1
				// No missing-label guard is needed (or possible) here:
				// out is no longer -1-prefilled, and each pass's assign
				// step already panics on any 1-row whose set has no
				// label, over exactly the same packed bits this loop
				// walks.
				ll, rl := lcol.out[j], rcol.out[j]
				ticks += 2
				// Vertically consecutive 1-rows belong to one set in
				// both passes, so a run's pixels all carry the previous
				// row's (ll, rl) pair: reuse its node ids instead of
				// re-probing the interning table. First sight of a label
				// is always at a run head, so table contents — and every
				// charge — are unchanged.
				if j != prevRow+1 {
					if i := it.slot(ll); it.live(i) {
						ea = it.val[i]
					} else {
						ea = int32(len(sc.values))
						it.set(i, ll, ea)
						sc.values = append(sc.values, ll)
					}
					if i := it.slot(rl); it.live(i) {
						eb = it.val[i]
					} else {
						eb = int32(len(sc.values))
						it.set(i, rl, eb)
						sc.values = append(sc.values, rl)
					}
				}
				prevRow = j
				sc.edges = append(sc.edges, unionfind.Pair{X: ea, Y: eb})
				sc.pixIds = append(sc.pixIds, ea)
			}
		}
		if len(sc.values) == 0 {
			return
		}
		// Sequential connected components over ≤ 2·ones nodes and ones
		// edges: the "familiar sequential algorithm" of Lemma 2, executed
		// as one metered batch (identical order and charges).
		sc.forest.Reset(len(sc.values))
		ops, steps := sc.meter.UnionCostPairs(sc.edges)
		if unit {
			ticks += ops
		} else {
			ticks += steps
		}
		// Least label per class. The finds run as one metered batch
		// (identical order and charges), then the minima fold over the
		// recorded roots.
		classMin := fillNeg(unionfind.GrowInt32(sc.classMin, len(sc.values)))
		sc.classMin = classMin
		roots := unionfind.GrowInt32(sc.roots, len(sc.values))
		sc.roots = roots
		ops, steps = sc.meter.FindCostRange(len(sc.values), roots)
		if unit {
			ticks += ops
		} else {
			ticks += steps
		}
		for id, v := range sc.values {
			root := roots[id]
			if classMin[root] == -1 || v < classMin[root] {
				classMin[root] = v
			}
			ticks++
		}
		// Label every 1-pixel with its class minimum, again with the
		// finds batched — pixIds recorded each pixel's left-label node
		// while the edges were built.
		pixRoots := unionfind.GrowInt32(sc.pixRoots, len(sc.pixIds))
		sc.pixRoots = pixRoots
		ops, steps = sc.meter.FindCostSeq(sc.pixIds, pixRoots)
		if unit {
			ticks += ops
		} else {
			ticks += steps
		}
		ticks += int64(len(sc.pixIds))
		outLab := labels.ColumnSlice(x)
		k := 0
		for wi, word := range lcol.bits {
			for word != 0 {
				j := wi<<6 + mbits.TrailingZeros64(word)
				word &= word - 1
				outLab[j] = classMin[pixRoots[k]]
				k++
			}
		}
		pe.Tick(ticks)
		pe.DeclareMemory(int64(4 * len(sc.values)))
	}
	return slap.SubPhase{Name: "merge", Local: true, Body: body}
}
