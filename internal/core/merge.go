package core

import (
	"fmt"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// merge is step 3 of Algorithm CC (Figure 2): within each PE,
// independently and in parallel, run sequential connected components on
// the graph whose nodes are the column's left and right labels and whose
// edges are the per-pixel pairs (leftlabel[j], rightlabel[j]). Every
// pixel then takes the least label of its graph component — which equals
// the least column-major position of its global image component, because
// that least position's label reaches every column the component touches
// through the left labeling, and right-pass labels (offset by w·h) never
// undercut left-pass labels.
func (lb *labeler) merge(left, right []*colState) *bitmap.LabelMap {
	w, h := lb.w, lb.h
	labels := bitmap.NewLabelMap(w, h)
	lb.m.RunLocal("merge", func(pe *slap.PE) {
		x := pe.Index
		lcol, rcol := left[x], right[x]

		// Dense-index the distinct labels appearing in this column.
		index := make(map[int32]int, 2*len(lcol.ones))
		var values []int32
		idOf := func(label int32) int {
			pe.Tick(1)
			if id, ok := index[label]; ok {
				return id
			}
			id := len(values)
			index[label] = id
			values = append(values, label)
			return id
		}
		type edge struct{ a, b int }
		edges := make([]edge, 0, len(lcol.ones))
		for _, j := range lcol.ones {
			ll, rl := lcol.out[j], rcol.out[j]
			if ll == -1 || rl == -1 {
				panic(fmt.Sprintf("core: PE %d row %d: missing pass label (%d, %d)", x, j, ll, rl))
			}
			edges = append(edges, edge{idOf(ll), idOf(rl)})
		}
		if len(values) == 0 {
			return
		}
		// Sequential connected components over ≤ 2·ones nodes and ones
		// edges: the "familiar sequential algorithm" of Lemma 2.
		uf := unionfind.NewMeter(unionfind.New(len(values)))
		lb.meters = append(lb.meters, uf)
		for _, e := range edges {
			lb.chargeUF(pe, uf, 1, func() { uf.Union(e.a, e.b) })
		}
		// Least label per class.
		classMin := make([]int32, uf.CapBound())
		for i := range classMin {
			classMin[i] = -1
		}
		for id, v := range values {
			var root int
			lb.chargeUF(pe, uf, 1, func() { root = uf.Find(id) })
			if classMin[root] == -1 || v < classMin[root] {
				classMin[root] = v
			}
			pe.Tick(1)
		}
		for _, j := range lcol.ones {
			var root int
			lb.chargeUF(pe, uf, 1, func() { root = uf.Find(index[lcol.out[j]]) })
			labels.Set(x, int(j), classMin[root])
			pe.Tick(1)
		}
		pe.DeclareMemory(int64(4 * len(values)))
	})
	return labels
}
