package core

import (
	"fmt"
	"math"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// mergeScratch is the labeler-owned arena for the merge step: a dense
// epoch-versioned interning table over the label space (left labels are
// < w·h, right labels < 2·w·h, so a flat array replaces the per-column
// hash map the hot path used to allocate and re-hash), the per-column
// edge list and class minima, and one accumulated union–find meter whose
// inner forest is re-initialized per column. Bumping the epoch
// invalidates the whole table in O(1) between columns.
type mergeScratch struct {
	// mark[label] packs (epoch << 32) | id, so an intern probe touches
	// one cache line instead of two.
	mark     []uint64
	epoch    uint32
	values   []int32
	edges    []mergeEdge
	classMin []int32
	forest   *unionfind.Forest
	meter    *unionfind.Meter
}

type mergeEdge struct{ a, b int32 }

// reset prepares the scratch for a run over a 2·w·h label space.
func (sc *mergeScratch) reset(space int) {
	if len(sc.mark) < space {
		sc.mark = make([]uint64, space)
		sc.epoch = 0
	}
	if sc.forest == nil {
		// The merge's "familiar sequential algorithm" (Lemma 2) runs on
		// the package default structure, as before.
		sc.forest = unionfind.NewForest(0, unionfind.LinkBySize, unionfind.CompressFull)
		sc.meter = unionfind.NewMeter(sc.forest)
		// Only Stats/MaxOpCost feed the UF report; skip the histogram.
		sc.meter.DisableHistogram()
	}
	sc.meter.ResetStats()
}

// nextEpoch invalidates the interning table for the next column.
func (sc *mergeScratch) nextEpoch() {
	if sc.epoch == math.MaxUint32 {
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
}

// merge is step 3 of Algorithm CC (Figure 2): within each PE,
// independently and in parallel, run sequential connected components on
// the graph whose nodes are the column's left and right labels and whose
// edges are the per-pixel pairs (leftlabel[j], rightlabel[j]). Every
// pixel then takes the least label of its graph component — which equals
// the least column-major position of its global image component, because
// that least position's label reaches every column the component touches
// through the left labeling, and right-pass labels (offset by w·h) never
// undercut left-pass labels.
func (lb *Labeler) merge(left, right []colState) *bitmap.LabelMap {
	w, h := lb.w, lb.h
	labels := bitmap.NewLabelMap(w, h)
	sc := &lb.mg
	sc.reset(2 * w * h)
	lb.meters = append(lb.meters, sc.meter)
	unit := lb.opt.UnitCostUF
	lb.m.RunLocal("merge", func(pe *slap.PE) {
		x := pe.Index
		lcol, rcol := &left[x], &right[x]
		// The phase is purely local, so every charge is accumulated in
		// ticks and charged once: the PE clock is identical to charging
		// operation by operation.
		var ticks int64

		// Dense-index the distinct labels appearing in this column (one
		// charged step per intern lookup, as the map-based merge charged;
		// the lookup is open-coded — a closure would force the tick
		// accumulator into memory on a 2-probes-per-pixel path).
		sc.nextEpoch()
		sc.values = sc.values[:0]
		sc.edges = sc.edges[:0]
		epoch := sc.epoch
		for _, j := range lcol.ones {
			ll, rl := lcol.out[j], rcol.out[j]
			if ll == -1 || rl == -1 {
				panic(fmt.Sprintf("core: PE %d row %d: missing pass label (%d, %d)", x, j, ll, rl))
			}
			ticks += 2
			var ea, eb int32
			if m := sc.mark[ll]; uint32(m>>32) == epoch {
				ea = int32(uint32(m))
			} else {
				ea = int32(len(sc.values))
				sc.mark[ll] = uint64(epoch)<<32 | uint64(uint32(ea))
				sc.values = append(sc.values, ll)
			}
			if m := sc.mark[rl]; uint32(m>>32) == epoch {
				eb = int32(uint32(m))
			} else {
				eb = int32(len(sc.values))
				sc.mark[rl] = uint64(epoch)<<32 | uint64(uint32(eb))
				sc.values = append(sc.values, rl)
			}
			sc.edges = append(sc.edges, mergeEdge{ea, eb})
		}
		if len(sc.values) == 0 {
			return
		}
		// Sequential connected components over ≤ 2·ones nodes and ones
		// edges: the "familiar sequential algorithm" of Lemma 2.
		sc.forest.Reset(len(sc.values))
		for _, e := range sc.edges {
			_, _, _, _, cost := sc.meter.UnionCost(int(e.a), int(e.b))
			if unit {
				ticks++
			} else {
				ticks += cost
			}
		}
		// Least label per class.
		classMin := fillNeg(unionfind.GrowInt32(sc.classMin, len(sc.values)))
		sc.classMin = classMin
		for id, v := range sc.values {
			root, cost := sc.meter.FindCost(id)
			if unit {
				ticks++
			} else {
				ticks += cost
			}
			if classMin[root] == -1 || v < classMin[root] {
				classMin[root] = v
			}
			ticks++
		}
		outLab := labels.ColumnSlice(x)
		for _, j := range lcol.ones {
			root, cost := sc.meter.FindCost(int(uint32(sc.mark[lcol.out[j]])))
			if unit {
				ticks++
			} else {
				ticks += cost
			}
			outLab[j] = classMin[root]
			ticks++
		}
		pe.Tick(ticks)
		pe.DeclareMemory(int64(4 * len(sc.values)))
	})
	return labels
}
