package core

import (
	"context"
	"fmt"
	"math"
	mbits "math/bits"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
)

// Monoid is a commutative, associative fold operator with identity, the
// generalization Corollary 4 asks for ("any binary operator that is
// associative and commutative"). The paper demonstrates minimum; this
// implementation supports non-idempotent operators (e.g. Sum) as well,
// because each component's contribution per column is combined exactly
// once: a PE folds its left-incoming value, its own column's fold, and
// its right-incoming value, and the sweeps forward each component's
// accumulator exactly once per link.
type Monoid struct {
	// Name identifies the operator in tables.
	Name string
	// Identity is the fold's neutral element.
	Identity int32
	// Combine folds two values; it must be associative and commutative.
	Combine func(a, b int32) int32
}

// Min returns the minimum monoid of Corollary 4.
func Min() Monoid {
	return Monoid{Name: "min", Identity: math.MaxInt32, Combine: func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	}}
}

// Max returns the maximum monoid.
func Max() Monoid {
	return Monoid{Name: "max", Identity: math.MinInt32, Combine: func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	}}
}

// Sum returns the addition monoid; with all-ones initial labels it
// computes component areas.
func Sum() Monoid {
	return Monoid{Name: "sum", Identity: 0, Combine: func(a, b int32) int32 { return a + b }}
}

// Or returns the bitwise-or monoid, useful for merging per-pixel tag
// masks over components.
func Or() Monoid {
	return Monoid{Name: "or", Identity: 0, Combine: func(a, b int32) int32 { return a | b }}
}

// Ones returns an all-ones initial labeling of img (so Aggregate with
// Sum yields component areas).
func Ones(img *bitmap.Bitmap) []int32 {
	init := make([]int32, img.W()*img.H())
	for i := range init {
		init[i] = 1
	}
	return init
}

// AggregateResult is the output of Aggregate.
type AggregateResult struct {
	// PerPixel holds, at each column-major position of a 1-pixel, the
	// fold of initial over that pixel's whole component; background
	// positions hold the identity.
	PerPixel []int32
	// Labels is the component labeling computed along the way.
	Labels *bitmap.LabelMap
	// Metrics covers the labeling and the aggregation phases together.
	Metrics slap.Metrics
	// UF reports union–find behavior of the labeling passes.
	UF UFReport
	// Summary, when non-nil, is the labeling's component summary (see
	// Result.Summary).
	Summary *Summary
}

// Aggregate implements the paper's Corollary 4: label the pixels of each
// component with the fold (op) of the initial labels of the component's
// pixels, in the same asymptotic time as component labeling itself.
// initial is indexed by column-major position (x·H + y).
//
// The procedure follows the Corollary's sketch: first produce a component
// labeling, then fold locally within each column, then run two
// Label-Pass-like sweeps (left-to-right and right-to-left) accumulating
// per-component values, and finally combine the three pieces locally.
//
// With 0 < opt.ArrayWidth < img.W() the run strip-mines onto the
// fixed-width array (see AggregateLarge); results are identical.
func Aggregate(img *bitmap.Bitmap, initial []int32, op Monoid, opt Options) (*AggregateResult, error) {
	lb := labelerPool.Get().(*Labeler)
	defer labelerPool.Put(lb)
	lb.userOpt = opt
	return lb.Aggregate(img, initial, op)
}

// Aggregate is the Labeler's reusable-arena form of the package-level
// Aggregate: the labeling and the aggregation satellites all run
// against the labeler's arenas; the only per-call allocation is the
// returned result. When Options.ArrayWidth names an array narrower than
// the image, the run is strip-mined (see AggregateLarge and the tiler's
// schedule models); per-pixel folds and labels are identical either
// way.
func (lb *Labeler) Aggregate(img *bitmap.Bitmap, initial []int32, op Monoid) (*AggregateResult, error) {
	w, h := img.W(), img.H()
	if len(initial) != w*h {
		return nil, fmt.Errorf("core: initial labels have length %d, want %d", len(initial), w*h)
	}
	if op.Combine == nil {
		return nil, fmt.Errorf("core: monoid %q has no Combine", op.Name)
	}
	if lb.userOpt.Engine == EngineHost {
		return lb.aggregateHost(img, initial, op)
	}
	if aw := lb.userOpt.ArrayWidth; aw > 0 && aw < w {
		return lb.aggregateLarge(img, initial, op)
	}
	return lb.aggregateImage(img, initial, op)
}

// AggregateCtx is Aggregate under a request context, with LabelCtx's
// contract: strip-mined runs poll ctx between strips and stop early
// with a wrapped context error when it is cancelled; whole-image runs
// check ctx only on entry.
func (lb *Labeler) AggregateCtx(ctx context.Context, img *bitmap.Bitmap, initial []int32, op Monoid) (*AggregateResult, error) {
	if err := cancelCheck(ctx); err != nil {
		return nil, err
	}
	lb.ctx = ctx
	defer func() { lb.ctx = nil }()
	return lb.Aggregate(img, initial, op)
}

// aggregateImage is Aggregate over the Image interface, always on a
// whole-image array: the shared path under Aggregate and
// AggregateLarge's per-strip runs (which pass zero-copy strip views and
// the strip's contiguous window of the initial values).
func (lb *Labeler) aggregateImage(img bitmap.Image, initial []int32, op Monoid) (*AggregateResult, error) {
	w, h := img.W(), img.H()
	if len(initial) != w*h {
		return nil, fmt.Errorf("core: initial labels have length %d, want %d", len(initial), w*h)
	}
	if op.Combine == nil {
		return nil, fmt.Errorf("core: monoid %q has no Combine", op.Name)
	}
	labels, err := lb.runCC(img)
	defer func() { lb.img = nil }() // don't keep the caller's image alive between runs
	if err != nil {
		return nil, err
	}
	out := make([]int32, w*h)
	for i := range out {
		out[i] = op.Identity
	}
	if w == 0 || h == 0 {
		lb.finishReport()
		return &AggregateResult{PerPixel: out, Labels: labels, Metrics: lb.m.Metrics(), UF: lb.report}, nil
	}

	states := lb.agg.ensure(w)

	// Local fold per column, and left/right extension flags per component.
	// Column bits come from the left-pass arena, which runCC left intact
	// (witness probes the neighbor columns the same way the sweeps did).
	passCols := lb.passCols[0]
	lb.m.RunLocal("agg:local", func(pe *slap.PE) {
		x := pe.Index
		st := &states[x]
		st.prepare(int(passCols[x].onesCount))
		cbits := passCols[x].bits
		var ticks int64
		for wi, word := range cbits {
			for word != 0 {
				j := wi<<6 + mbits.TrailingZeros64(word)
				word &= word - 1
				c := st.intern(labels.Get(x, j), op)
				st.local[c] = op.Combine(st.local[c], initial[x*h+j])
				if lb.witness(passCols, x, j, 1) != -1 {
					st.extR[c] = true
				}
				if lb.witness(passCols, x, j, -1) != -1 {
					st.extL[c] = true
				}
				ticks++ // one charged step per intern lookup, as before
			}
		}
		pe.Tick(ticks + int64(h)) // the per-row scan charge, batched
		pe.DeclareMemory(int64(6 * len(st.comps)))
	})

	// The two accumulation sweeps. Each component crosses each link at
	// most once (components span contiguous column intervals), giving the
	// exactly-once combination that non-idempotent monoids need.
	lb.aggSweep(slap.LeftToRight, states, op)
	lb.aggSweep(slap.RightToLeft, states, op)

	// Combine locally: left part (columns < x), own column, right part.
	lb.m.RunLocal("agg:combine", func(pe *slap.PE) {
		x := pe.Index
		st := &states[x]
		totals := lb.agg.totals[:0]
		for c := range st.comps {
			totals = append(totals, op.Combine(op.Combine(st.inL[c], st.local[c]), st.inR[c]))
			pe.Tick(1)
		}
		lb.agg.totals = totals[:0]
		cbits := passCols[x].bits
		pe.Tick(int64(h))
		for wi, word := range cbits {
			for word != 0 {
				j := wi<<6 + mbits.TrailingZeros64(word)
				word &= word - 1
				c, ok := st.lookup(labels.Get(x, j))
				if !ok {
					panic(fmt.Sprintf("core: PE %d row %d: pixel label %d never interned", x, j, labels.Get(x, j)))
				}
				out[x*h+j] = totals[c]
			}
		}
	})

	lb.finishReport()
	return &AggregateResult{PerPixel: out, Labels: labels, Metrics: lb.m.Metrics(), UF: lb.report}, nil
}

// aggScratch is the labeler-owned arena behind Aggregate: one aggState
// per column, plus the combine step's totals scratch. Everything is
// re-initialized in place per run — a warm labeler aggregates with no
// per-column allocation, like the labeling passes (the per-column
// component maps this replaced were the last per-column allocation on
// the hot path).
type aggScratch struct {
	states []aggState
	totals []int32
}

// ensure sizes the per-column state arena for a w-column run.
func (a *aggScratch) ensure(w int) []aggState {
	if cap(a.states) < w {
		grown := make([]aggState, w)
		copy(grown, a.states)
		a.states = grown
	}
	a.states = a.states[:w]
	return a.states
}

// aggState is one PE's aggregation memory: the distinct component labels
// of its column in first-appearance order, per-component folds and
// extension flags, and an epoch-marked interner mapping a component
// label to its dense per-column index (the same table as the merge
// scratch's, but per column, because every column's mapping must stay
// live across the accumulation sweeps — lookups during the sweeps are
// read-only, so concurrent sweep engines are safe).
type aggState struct {
	comps []int32 // component labels, first-appearance order
	local []int32 // fold over this column's pixels
	inL   []int32 // fold over columns < x (identity if none)
	inR   []int32 // fold over columns > x
	extL  []bool  // component continues into the previous column
	extR  []bool  // component continues into the next column
	it    interner
}

// prepare re-initializes the state for a column with onesCount 1-pixels
// (a column of k 1-pixels has at most k distinct components).
func (st *aggState) prepare(onesCount int) {
	st.comps = st.comps[:0]
	st.local = st.local[:0]
	st.inL = st.inL[:0]
	st.inR = st.inR[:0]
	st.extL = st.extL[:0]
	st.extR = st.extR[:0]
	st.it.prepare(onesCount)
}

// intern returns the dense index of label, appending a fresh component
// on first sight.
func (st *aggState) intern(label int32, op Monoid) int {
	i := st.it.slot(label)
	if st.it.live(i) {
		return int(st.it.val[i])
	}
	c := len(st.comps)
	st.it.set(i, label, int32(c))
	st.comps = append(st.comps, label)
	st.local = append(st.local, op.Identity)
	st.inL = append(st.inL, op.Identity)
	st.inR = append(st.inR, op.Identity)
	st.extL = append(st.extL, false)
	st.extR = append(st.extR, false)
	return c
}

// lookup returns the dense index of label, or ok=false if it was never
// interned. Read-only: safe from concurrent sweep bodies.
func (st *aggState) lookup(label int32) (int, bool) {
	id, ok := st.it.lookup(label)
	return int(id), ok
}

// aggSweep streams per-component accumulators across the array in one
// direction: a component's value is forwarded once, either immediately
// (components that do not extend backward) or upon receiving the single
// incoming record for it.
func (lb *Labeler) aggSweep(dir slap.Direction, states []aggState, op Monoid) {
	w := lb.w
	lastCol := w - 1
	if dir == slap.RightToLeft {
		lastCol = 0
	}
	lb.m.RunSweep(passName(dir, "agg"), dir, func(pe *slap.PE) {
		x := pe.Index
		st := &states[x]
		extBack, extFwd := st.extL, st.extR
		in := st.inL
		if dir == slap.RightToLeft {
			extBack, extFwd = st.extR, st.extL
			in = st.inR
		}
		// Components with no backward extension have their final
		// accumulator already: forward it now.
		for c, label := range st.comps {
			pe.Tick(1)
			if !extBack[c] && extFwd[c] {
				pe.Send(slap.Msg{Kind: msgLabel, A: label, B: op.Combine(in[c], st.local[c]), Words: 2})
			}
		}
		if pe.HasIn() {
			for {
				msg, ok := pe.RecvWait()
				if !ok {
					panic(fmt.Sprintf("core: PE %d: aggregation stream ended without eos", x))
				}
				if msg.Kind == msgEOS {
					break
				}
				c, ok := st.lookup(msg.A)
				pe.Tick(1)
				if !ok {
					panic(fmt.Sprintf("core: PE %d: aggregation record for unknown component %d", x, msg.A))
				}
				in[c] = op.Combine(in[c], msg.B)
				if extFwd[c] {
					pe.Send(slap.Msg{Kind: msgLabel, A: msg.A, B: op.Combine(in[c], st.local[c]), Words: 2})
				}
			}
		}
		if x != lastCol {
			pe.Send(slap.Msg{Kind: msgEOS})
		}
	})
}
