package core

import (
	"fmt"
	"runtime"
	"testing"

	"slapcc/internal/bitmap"
)

// atGMP runs f with GOMAXPROCS pinned to p, restoring it after. The
// multicore suites sweep this process-wide knob; no test in this repo
// uses t.Parallel, so nothing else observes the change.
func atGMP(t *testing.T, p int, f func(t *testing.T)) {
	t.Run(fmt.Sprintf("gmp%d", p), func(t *testing.T) {
		old := runtime.GOMAXPROCS(p)
		defer runtime.GOMAXPROCS(old)
		f(t)
	})
}

var gmpSweep = []int{1, 2, 4}

// TestMulticoreEngineEquivalence pins the engine-selection contract at
// real GOMAXPROCS values (no ForceConcurrentEngines): whatever executor
// parallel mode picks at 1, 2, or 4 procs, labels and simulated metrics
// are bit-identical to the sequential engine's. At GOMAXPROCS=1 this
// covers the sequential delegate; above it, the batched concurrent
// engine under genuine scheduler interleaving.
func TestMulticoreEngineEquivalence(t *testing.T) {
	const n = 31
	for _, p := range gmpSweep {
		atGMP(t, p, func(t *testing.T) {
			for _, fam := range bitmap.Families() {
				img := fam.Generate(n)
				seq := mustLabel(t, img, Options{})
				par := mustLabel(t, img, Options{Parallel: true})
				if !par.Labels.Equal(seq.Labels) {
					t.Errorf("%s: parallel engine changed the labeling", fam.Name)
				}
				if !metricsIdentical(t, seq, par) {
					t.Errorf("%s: parallel engine changed the metrics:\nseq %+v\ngot %+v",
						fam.Name, seq.Metrics, par.Metrics)
				}
			}
		})
	}
}

// TestMulticoreStreamOrdering pins the LabelerPool/LabelStream delivery
// contract under contention: with more workers than procs and more
// procs than one, results still arrive strictly in submission order and
// bit-identical to a direct Label of the same frame.
func TestMulticoreStreamOrdering(t *testing.T) {
	const n, frames = 24, 32
	imgs := make([]*bitmap.Bitmap, frames)
	want := make([]*Result, frames)
	for i := range imgs {
		imgs[i] = bitmap.Random(n, 0.5, uint64(i)+1)
		want[i] = mustLabel(t, imgs[i], Options{})
	}
	for _, p := range gmpSweep {
		atGMP(t, p, func(t *testing.T) {
			for _, workers := range []int{2, 4} {
				next := 0
				s := NewLabelStream(Options{}, workers, func(r StreamResult) {
					if r.Frame != next {
						t.Errorf("w%d: frame %d delivered at position %d", workers, r.Frame, next)
					}
					next++
					if r.Err != nil {
						t.Errorf("w%d: frame %d: %v", workers, r.Frame, r.Err)
						return
					}
					if !r.Result.Labels.Equal(want[r.Frame].Labels) {
						t.Errorf("w%d: frame %d labels differ from direct Label", workers, r.Frame)
					}
				})
				for _, img := range imgs {
					s.Submit(img)
				}
				s.Close()
				if next != frames {
					t.Errorf("w%d: sink saw %d frames, want %d", workers, next, frames)
				}
			}
		})
	}
}

// TestMulticoreStripWorkersDeterminism pins the strip fan-out contract:
// a strip-mined run's labels AND composed simulated metrics are
// bit-identical whether strips run sequentially or fanned across
// workers, at every GOMAXPROCS — the fan-out is a wall-clock
// optimization, never a semantic knob.
func TestMulticoreStripWorkersDeterminism(t *testing.T) {
	const n, aw = 96, 32
	img := bitmap.Random(n, 0.5, 7)
	base := mustLabel(t, img, Options{ArrayWidth: aw})
	for _, p := range gmpSweep {
		atGMP(t, p, func(t *testing.T) {
			for _, workers := range []int{2, 4} {
				got := mustLabel(t, img, Options{ArrayWidth: aw, StripWorkers: workers})
				if !got.Labels.Equal(base.Labels) {
					t.Errorf("w%d: strip fan-out changed the labeling", workers)
				}
				if !metricsIdentical(t, base, got) {
					t.Errorf("w%d: strip fan-out changed composed metrics:\nbase %+v\ngot %+v",
						workers, base.Metrics, got.Metrics)
				}
			}
		})
	}
}

// TestMulticoreHostEngineStable: the host engine's canonical labels do
// not depend on GOMAXPROCS either.
func TestMulticoreHostEngineStable(t *testing.T) {
	const n = 64
	img := bitmap.Random(n, 0.5, 9)
	want := mustLabel(t, img, Options{})
	for _, p := range gmpSweep {
		atGMP(t, p, func(t *testing.T) {
			host := mustLabel(t, img, Options{Engine: EngineHost})
			if !host.Labels.Equal(want.Labels) {
				t.Error("host engine labels diverged from simulator's canonical labels")
			}
		})
	}
}
