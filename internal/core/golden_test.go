package core

import (
	"testing"

	"slapcc/internal/bitmap"
)

// The golden step counts pin the simulator's cost accounting: any change
// to what the machine charges (link occupancy, dequeue polls, union–find
// step metering, phase structure) shows up here as an exact diff. The
// values themselves are not meaningful beyond "the accounting is what
// docs/METRICS.md describes" — update them deliberately, and re-derive
// the experiment tables, when the cost model changes on purpose.
func TestGoldenStepCounts(t *testing.T) {
	cases := []struct {
		name string
		img  *bitmap.Bitmap
		opt  Options
		want int64
	}{
		{"empty8", bitmap.Empty(8), Options{}, goldenEmpty8},
		{"full8", bitmap.Full(8), Options{}, goldenFull8},
		{"checker8", bitmap.Checker(8), Options{}, goldenChecker8},
		{"serp16", bitmap.HSerpentine(16), Options{}, goldenSerp16},
		{"serp16-unit", bitmap.HSerpentine(16), Options{UnitCostUF: true}, goldenSerp16Unit},
		{"merge32-blum", bitmap.BinaryMerge(32), Options{UF: "blum"}, goldenMerge32Blum},
	}
	for _, tc := range cases {
		res, err := Label(tc.img, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Metrics.Time != tc.want {
			t.Errorf("%s: simulated time changed: got %d, golden %d — if intentional, update golden_test.go and re-run cmd/slapbench",
				tc.name, res.Metrics.Time, tc.want)
		}
	}
}

// Golden values; see TestGoldenStepCounts.
const (
	goldenEmpty8      = 114
	goldenFull8       = 459
	goldenChecker8    = 186
	goldenSerp16      = 810
	goldenSerp16Unit  = 591
	goldenMerge32Blum = 1935
)

// TestGoldenDeterminism re-runs one configuration several times and
// demands bit-identical metrics: the whole experiment methodology
// depends on the simulator being deterministic.
func TestGoldenDeterminism(t *testing.T) {
	img := bitmap.Random(32, 0.5, 12345)
	first, err := Label(img, Options{Speculate: true, IdleCompression: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Label(img, Options{Speculate: true, IdleCompression: true})
		if err != nil {
			t.Fatal(err)
		}
		if again.Metrics.Time != first.Metrics.Time ||
			again.Metrics.Sends != first.Metrics.Sends ||
			again.UF.TotalSteps != first.UF.TotalSteps ||
			again.Speculation != first.Speculation {
			t.Fatalf("run %d: nondeterministic metrics:\nfirst %+v %+v\nagain %+v %+v",
				i, first.Metrics, first.Speculation, again.Metrics, again.Speculation)
		}
		if !again.Labels.Equal(first.Labels) {
			t.Fatalf("run %d: nondeterministic labels", i)
		}
	}
}
