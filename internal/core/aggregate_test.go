package core

import (
	"testing"
	"testing/quick"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
)

func refAgg(img *bitmap.Bitmap, initial []int32, op Monoid) []int32 {
	return seqcc.AggregateRef(img, initial, op.Combine, op.Identity)
}

func positions(img *bitmap.Bitmap) []int32 {
	init := make([]int32, img.W()*img.H())
	for i := range init {
		init[i] = int32(i)
	}
	return init
}

func TestAggregateMinMatchesReference(t *testing.T) {
	img := bitmap.MustParse(`
#.#
#.#
###
`)
	initial := []int32{40, 41, 42, 90, 91, 92, 7, 8, 9}
	res, err := Aggregate(img, initial, Min(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := refAgg(img, initial, Min())
	for i := range want {
		if res.PerPixel[i] != want[i] {
			t.Fatalf("position %d: want %d, got %d", i, want[i], res.PerPixel[i])
		}
	}
	// The single U component's min is 7 (initial of pixel (2,0)).
	if res.PerPixel[0] != 7 {
		t.Fatalf("U component min should be 7, got %d", res.PerPixel[0])
	}
}

func TestAggregateSumComputesAreas(t *testing.T) {
	// Sum is not idempotent: this test catches any double counting at
	// column boundaries or in the final combine.
	for _, fam := range []string{"hserpentine", "frames", "random50", "fig3a", "checker"} {
		f, _ := bitmap.FamilyByName(fam)
		img := f.Generate(21)
		res, err := Aggregate(img, Ones(img), Sum(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		sizes := res.Labels.ComponentSizes()
		for x := 0; x < img.W(); x++ {
			for y := 0; y < img.H(); y++ {
				if !img.Get(x, y) {
					continue
				}
				wantArea := int32(sizes[res.Labels.Get(x, y)])
				if got := res.PerPixel[x*img.H()+y]; got != wantArea {
					t.Fatalf("%s: pixel (%d,%d): area %d, want %d", fam, x, y, got, wantArea)
				}
			}
		}
	}
}

func TestAggregateMaxAndOr(t *testing.T) {
	img := bitmap.HStripes(8, 2)
	initial := positions(img)
	for _, op := range []Monoid{Max(), Or()} {
		res, err := Aggregate(img, initial, op, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := refAgg(img, initial, op)
		for i := range want {
			if res.PerPixel[i] != want[i] {
				t.Fatalf("%s: position %d: want %d, got %d", op.Name, i, want[i], res.PerPixel[i])
			}
		}
	}
}

func TestAggregateDegenerate(t *testing.T) {
	for _, img := range []*bitmap.Bitmap{bitmap.New(0, 0), bitmap.Empty(4), bitmap.Full(1)} {
		res, err := Aggregate(img, Ones(img), Sum(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerPixel) != img.W()*img.H() {
			t.Fatal("PerPixel length mismatch")
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	img := bitmap.Empty(4)
	if _, err := Aggregate(img, make([]int32, 3), Min(), Options{}); err == nil {
		t.Fatal("want error for wrong initial length")
	}
	if _, err := Aggregate(img, Ones(img), Monoid{Name: "broken"}, Options{}); err == nil {
		t.Fatal("want error for nil Combine")
	}
}

func TestAggregateMetricsExtendLabeling(t *testing.T) {
	img := bitmap.Random(24, 0.5, 13)
	plain, err := Label(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(img, Ones(img), Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Metrics.Time <= plain.Metrics.Time {
		t.Fatal("aggregation must add phases on top of labeling")
	}
	// Corollary 4: same asymptotics — the aggregation phases are cheap
	// relative to the labeling (generous 2× envelope here).
	if agg.Metrics.Time > 2*plain.Metrics.Time {
		t.Fatalf("aggregation overhead too large: %d vs %d", agg.Metrics.Time, plain.Metrics.Time)
	}
	for _, name := range []string{"agg:local", "left:agg", "right:agg", "agg:combine"} {
		if _, ok := agg.Metrics.Phase(name); !ok {
			t.Fatalf("missing phase %q", name)
		}
	}
}

// Property: Aggregate(min over positions) recovers exactly the canonical
// component labels, and Aggregate(sum of ones) recovers component sizes,
// on random images.
func TestAggregateQuick(t *testing.T) {
	f := func(seed uint32, np, dp uint8) bool {
		n := int(np%20) + 1
		density := float64(dp%11) / 10
		img := bitmap.Random(n, density, uint64(seed))
		res, err := Aggregate(img, positions(img), Min(), Options{})
		if err != nil {
			return false
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if !img.Get(x, y) {
					continue
				}
				if res.PerPixel[x*n+y] != res.Labels.Get(x, y) {
					return false
				}
			}
		}
		sum, err := Aggregate(img, Ones(img), Sum(), Options{})
		if err != nil {
			return false
		}
		sizes := sum.Labels.ComponentSizes()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if !img.Get(x, y) {
					continue
				}
				if sum.PerPixel[x*n+y] != int32(sizes[sum.Labels.Get(x, y)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
