package core

import (
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
	"slapcc/internal/unionfind"
)

// imageFromBytes deterministically builds a w×h image from raw fuzz
// bytes: bit i of the payload is pixel i in column-major order.
func imageFromBytes(w, h int, data []byte) *bitmap.Bitmap {
	img := bitmap.New(w, h)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			i := x*h + y
			if i/8 < len(data) && data[i/8]&(1<<uint(i%8)) != 0 {
				img.Set(x, y, true)
			}
		}
	}
	return img
}

// FuzzLabelMatchesReference feeds arbitrary images through Algorithm CC
// under rotating union–find kinds and heuristics and demands exact
// agreement with the sequential ground truth. Run with
// `go test -fuzz=FuzzLabelMatchesReference ./internal/core` for
// continuous fuzzing; the seed corpus runs in ordinary `go test`.
func FuzzLabelMatchesReference(f *testing.F) {
	f.Add(uint8(4), uint8(4), []byte{0xff, 0x0f}, uint8(0))
	f.Add(uint8(8), uint8(8), []byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55}, uint8(1))
	f.Add(uint8(3), uint8(5), []byte{0b10101, 0b01010}, uint8(2))
	f.Add(uint8(16), uint8(1), []byte{0xf0, 0x0f}, uint8(3))
	f.Add(uint8(1), uint8(16), []byte{0x3c, 0x3c}, uint8(4))
	f.Add(uint8(0), uint8(7), []byte{}, uint8(5))
	kinds := unionfind.Kinds()
	f.Fuzz(func(t *testing.T, wRaw, hRaw uint8, data []byte, cfg uint8) {
		w := int(wRaw % 24)
		h := int(hRaw % 24)
		img := imageFromBytes(w, h, data)
		opt := Options{
			UF:              kinds[int(cfg)%len(kinds)],
			IdleCompression: cfg&0x40 != 0,
			Speculate:       cfg&0x80 != 0,
		}
		res, err := Label(img, opt)
		if err != nil {
			t.Fatalf("Label(%dx%d, %+v): %v", w, h, opt, err)
		}
		if err := seqcc.Check(img, res.Labels); err != nil {
			t.Fatalf("labeling mismatch for %dx%d %+v:\n%s\n%v", w, h, opt, img, err)
		}
	})
}

// FuzzAggregateSum feeds arbitrary images through the Corollary 4 sum
// aggregation (the non-idempotent case) and checks component areas.
func FuzzAggregateSum(f *testing.F) {
	f.Add(uint8(6), uint8(6), []byte{0xff, 0x81, 0xff, 0x81, 0x7e})
	f.Add(uint8(5), uint8(3), []byte{0b1011011, 0b11})
	f.Fuzz(func(t *testing.T, wRaw, hRaw uint8, data []byte) {
		w := int(wRaw % 20)
		h := int(hRaw % 20)
		img := imageFromBytes(w, h, data)
		res, err := Aggregate(img, Ones(img), Sum(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		sizes := res.Labels.ComponentSizes()
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				if !img.Get(x, y) {
					continue
				}
				if got, want := res.PerPixel[x*h+y], int32(sizes[res.Labels.Get(x, y)]); got != want {
					t.Fatalf("pixel (%d,%d): area %d, want %d", x, y, got, want)
				}
			}
		}
	})
}
