package core

import (
	"testing"
	"testing/quick"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
	"slapcc/internal/unionfind"
)

func TestSpeculatePreservesLabels(t *testing.T) {
	for _, fam := range bitmap.Families() {
		img := fam.Generate(23)
		plain := mustLabel(t, img, Options{})
		spec := mustLabel(t, img, Options{Speculate: true})
		if !plain.Labels.Equal(spec.Labels) {
			t.Errorf("%s: speculation changed the labeling", fam.Name)
		}
		if err := seqcc.Check(img, spec.Labels); err != nil {
			t.Errorf("%s: %v", fam.Name, err)
		}
	}
}

func TestSpeculateFiresOnChainImages(t *testing.T) {
	// Horizontal bars two rows apart joined at the right produce long
	// cross-column union chains where the witness rows continue into the
	// next column: speculation must fire.
	img := bitmap.HSerpentine(32)
	res := mustLabel(t, img, Options{Speculate: true})
	if res.Speculation.Sends == 0 {
		t.Fatal("speculation never fired on hserpentine")
	}
	plain := mustLabel(t, img, Options{})
	if res.Speculation.Wasted > res.Speculation.Sends {
		t.Fatalf("wasted (%d) cannot exceed sends (%d)",
			res.Speculation.Wasted, res.Speculation.Sends)
	}
	t.Logf("hserpentine: plain T=%d spec T=%d sends=%d wasted=%d",
		plain.Metrics.Time, res.Metrics.Time,
		res.Speculation.Sends, res.Speculation.Wasted)
}

func TestSpeculateThrottleBoundsWaste(t *testing.T) {
	// On the full image every dequeued union is a local no-op, so
	// unthrottled speculation multiplies traffic per column (Θ(n·w²)
	// messages). The per-PE throttle must keep both the waste and the
	// slowdown bounded.
	n := 64
	img := bitmap.Full(n)
	off := mustLabel(t, img, Options{})
	on := mustLabel(t, img, Options{Speculate: true})
	if !off.Labels.Equal(on.Labels) {
		t.Fatal("speculation changed the labeling")
	}
	// Each PE may waste at most ~2× its budget before shutting off;
	// with budget 8 and 2 passes over w columns that is ≤ 32·w.
	if on.Speculation.Wasted > int64(32*n) {
		t.Fatalf("throttle failed: %d wasted speculative sends (budget ~%d)",
			on.Speculation.Wasted, 32*n)
	}
	if on.Metrics.Time > off.Metrics.Time*11/10 {
		t.Fatalf("throttled speculation should cost ≤ 10%% extra: %d vs %d",
			on.Metrics.Time, off.Metrics.Time)
	}
}

func TestSpeculateOffReportsZero(t *testing.T) {
	res := mustLabel(t, bitmap.HSerpentine(16), Options{})
	if res.Speculation.Sends != 0 || res.Speculation.Wasted != 0 {
		t.Fatalf("speculation stats should be zero when disabled: %+v", res.Speculation)
	}
}

func TestSpeculateWithAllUFKinds(t *testing.T) {
	img := bitmap.Random(21, 0.55, 99)
	want := seqcc.BFS(img)
	for _, kind := range unionfind.Kinds() {
		res := mustLabel(t, img, Options{UF: kind, Speculate: true, IdleCompression: true})
		if !res.Labels.Equal(want) {
			t.Errorf("%s with speculation: wrong labeling", kind)
		}
	}
}

// Property: speculation (alone and combined with idle compression)
// never changes any labeling on random images.
func TestSpeculateQuick(t *testing.T) {
	f := func(seed uint32, np, dp uint8, idle bool) bool {
		n := int(np%26) + 1
		img := bitmap.Random(n, float64(dp%11)/10, uint64(seed))
		res, err := Label(img, Options{Speculate: true, IdleCompression: idle})
		if err != nil {
			return false
		}
		return seqcc.Check(img, res.Labels) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
