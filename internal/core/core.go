// Package core implements the paper's contribution: Algorithm CC, the
// connected-component labeler for the scan line array processor.
//
// The top-level procedure (paper, Figure 2) is
//
//  1. a left-connected component labeling — each PE groups the rows of
//     its column with union–find while relevant unions stream rightward
//     (Union-Find-Pass, Figure 5), then component labels stream rightward
//     the same way (Label-Pass, Figure 6);
//  2. a right-connected component labeling, the mirror image;
//  3. a purely local merge per PE of the two labelings: sequential
//     connected components on the graph whose nodes are the column's left
//     and right labels and whose edges pair the two labels of each pixel.
//
// Components end up labeled with the least column-major position of
// their pixels. See the package's labeling pass for the one deliberate
// deviation from Figure 6 (the "min rule"), and Aggregate for the
// Corollary 4 extension.
//
// # Reuse
//
// Simulating a run used to allocate its entire working state afresh —
// hundreds of megabytes per megapixel-scale call. All working state now
// lives in arenas owned by a Labeler, which re-initializes them in place
// run after run: construct one with NewLabeler and call Label/Aggregate
// on a stream of images to label with (almost) no allocation after the
// first call. The package-level Label and Aggregate draw Labelers from a
// pool, so even one-shot calls reuse warm arenas under steady load.
// Metrics are identical either way; only host-side speed differs.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"slapcc/internal/bitmap"
	"slapcc/internal/hostcc"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// Options configure a run of Algorithm CC.
type Options struct {
	// UF selects the union–find implementation (default: KindTarjan,
	// weighted union + full path compression, the paper's §3 default).
	UF unionfind.Kind
	// Connectivity selects 4- (the paper's, default) or 8-connectivity.
	// The 8-connected extension keeps the paper's machinery and adds
	// pixel-level bridge records: a single pixel can be diagonally
	// adjacent to up to three mutually disconnected pixels of the next
	// column, which no union in its own column would ever link, so each
	// pixel chains its next-column neighbors explicitly (≤ 2 extra
	// records per pixel; the O(n) per-link traffic bound stands).
	Connectivity bitmap.Connectivity
	// IdleCompression enables the §3 heuristic: while a PE waits on its
	// neighbor during the union–find pass it spends each idle cycle
	// performing one unit of path compression. Only effective for
	// forest-backed UF kinds; ignored otherwise.
	IdleCompression bool
	// Speculate enables the other §3 heuristic: a PE forwards a dequeued
	// union to its neighbor *before* executing the local finds and union,
	// whenever the two witness rows are themselves adjacent to 1-pixels
	// of the next column (an O(1) test). This removes the find/union
	// latency from the inter-PE critical path. A speculative forward is
	// always safe for correctness: the two rows being unioned are
	// connected, so their next-column neighbors belong to one component
	// and the downstream union is at worst a no-op (counted in
	// Result.Speculation.Wasted).
	//
	// It is not automatically safe for time: forwarded no-ops re-forward
	// downstream, and on union-dense images the traffic multiplies per
	// column (a Θ(n·w²) blowup, measured in experiment E11's history).
	// The paper's sketch bounds this with quash messages; a FIFO link
	// cannot unsend, so each PE instead throttles itself — once its own
	// forwards have been mostly wasted it stops speculating for the rest
	// of the pass, bounding the waste per link by a constant.
	Speculate bool
	// Cost is the machine cost model (default slap.Unit()).
	Cost slap.CostModel
	// ChargeInput includes the O(n) row-by-row image input phase
	// (Figure 1) in the metrics (default true; set SkipInput to drop it).
	SkipInput bool
	// UnitCostUF accounts every union–find operation as a single step
	// regardless of its true pointer-step cost: the accounting of §2's
	// Lemma 1/2 ("under the assumption that unions and finds are constant
	// time"). The structure still executes normally; only the charged
	// time differs.
	UnitCostUF bool
	// Profile records per-PE completion times for every phase
	// (Metrics.Phases[i].PerPE), making the systolic wavefront visible.
	Profile bool
	// Parallel runs the sweep phases with host-side concurrency (one
	// goroutine per PE over batched links) when the host has parallelism
	// to exploit. Simulated metrics are identical to the sequential
	// engine's (tests enforce bit-equality); only wall-clock time
	// changes.
	Parallel bool
	// BatchSize and LinkDepth tune the parallel engine's batched links:
	// records accumulated per published batch, and published batches in
	// flight per link. Zero selects the GOMAXPROCS-aware defaults
	// (slap.DefaultLinkTuning); negative values are rejected. Both are
	// host-side wall-time knobs only — simulated metrics are identical
	// at every setting.
	BatchSize int
	LinkDepth int

	// ArrayWidth is the physical PE count of the simulated machine. Zero
	// (the default) sizes the array to the image, as always; a positive
	// width narrower than the image strip-mines the run: the image is
	// partitioned into vertical strips of at most ArrayWidth columns,
	// each strip is labeled by Algorithm CC on the fixed-width array, and
	// the strip-boundary seams are stitched by a host-side union–find
	// pass (see LabelLarge and the tiler's schedule model). Labels are
	// identical to the whole-image run's; negative values are rejected.
	ArrayWidth int
	// StripWorkers fans the strips of a strip-mined run across a
	// LabelerPool of up to this many workers (strips are independent
	// until the seam stitch). Zero or one labels strips sequentially on
	// one warm arena set. Labels and composed metrics are bit-identical
	// at every setting — the schedule model is unaffected; only host
	// wall time changes. Negative values are rejected.
	StripWorkers int
	// Seam selects how a strip-mined run's seam relabel is charged:
	// SeamDistributed (the default) broadcasts the remap table down the
	// array and rewrites per PE, metered as real machine phases
	// ("seam-broadcast", "seam-rewrite"); SeamHost charges the relabel
	// as a sequential host pass folded into "seam-merge" (the pre-PR 5
	// model, kept selectable for comparison — its composed numbers are
	// unchanged bit for bit). Labels, per-pixel aggregates, and the UF
	// report are identical under both; only the charged phases differ.
	// Ignored on whole-image runs. See docs/METRICS.md.
	Seam SeamModel
	// Schedule selects the strip-composition schedule model:
	// ScheduleSequential (the default) runs strips back to back;
	// SchedulePipelined overlaps strip s+1's input phase (and all but
	// the last boundary column's seam offload) with strip s's sweeps on
	// a double-buffered array, shrinking the composed Time while leaving
	// every work total — per-phase makespans, busy time, traffic —
	// identical. Ignored on whole-image runs. See docs/METRICS.md and
	// slap.Metrics.MergePipelined.
	Schedule ScheduleModel

	// Engine selects the execution engine: EngineSim (the default; ""
	// selects it) runs the metered SLAP simulation, EngineHost answers
	// with the word-parallel host labeler — identical labels and
	// aggregate values, no simulation, zero Metrics. Host runs ignore
	// ArrayWidth/Seam/Schedule (a whole-image host pass is bit-identical
	// to any strip decomposition) and the simulation-only knobs. See the
	// Engine type.
	Engine Engine

	// SkipLabels permits the engine to answer without materializing the
	// per-pixel labeling when the caller only needs the summary —
	// Result.Labels may come back nil (Result.Summary carries the frame
	// dimensions and the component summary). The simulator ignores it:
	// a metered run labels as part of the simulation. The host engine
	// honors it by skipping the fill sweep and the label map allocation,
	// which for summary-only traffic is most of the per-frame cost.
	// Aggregation runs ignore it too — per-pixel folds are the product.
	SkipLabels bool

	// noFuse runs the sweep phases through the per-phase reference
	// executor instead of the fused column walk. The two are
	// bit-equivalent (tests compare them exhaustively); the knob exists
	// for those tests and for ablation, hence unexported.
	noFuse bool
}

// SeamModel selects how a strip-mined run charges the seam relabel
// (Options.Seam).
type SeamModel string

// Seam-relabel models.
const (
	// SeamDistributed broadcasts the seam remap table down the array and
	// rewrites per PE — the deployment a real fixed-width SLAP would use
	// — charged as metered "seam-broadcast" and "seam-rewrite" machine
	// phases. The default.
	SeamDistributed SeamModel = "distributed"
	// SeamHost charges the relabel as a sequential host pass inside the
	// "seam-merge" phase: one LocalStep per rewritten pixel, no array
	// phases. The original strip-mining model, kept for comparison.
	SeamHost SeamModel = "host"
)

// Valid reports whether the seam model is known ("" selects the
// default).
func (s SeamModel) Valid() bool {
	return s == "" || s == SeamDistributed || s == SeamHost
}

// ScheduleModel selects the strip-composition schedule
// (Options.Schedule).
type ScheduleModel string

// Strip schedule models.
const (
	// ScheduleSequential composes strips back to back: the composed Time
	// is the sum of every strip's makespan plus the seam phases. The
	// default.
	ScheduleSequential ScheduleModel = "sequential"
	// SchedulePipelined overlaps strip s+1's input phase with strip s's
	// sweeps on a double-buffered array (slap.Metrics.MergePipelined),
	// and streams all but the final boundary column's seam offload under
	// the following strips' compute.
	SchedulePipelined ScheduleModel = "pipelined"
)

// Valid reports whether the schedule model is known ("" selects the
// default).
func (s ScheduleModel) Valid() bool {
	return s == "" || s == ScheduleSequential || s == SchedulePipelined
}

func (o Options) withDefaults() Options {
	if o.UF == "" {
		o.UF = unionfind.KindTarjan
	}
	if o.Cost == (slap.CostModel{}) {
		o.Cost = slap.Unit()
	}
	if o.Connectivity == 0 {
		o.Connectivity = bitmap.Conn4
	}
	if o.Seam == "" {
		o.Seam = SeamDistributed
	}
	if o.Schedule == "" {
		o.Schedule = ScheduleSequential
	}
	if o.Engine == "" {
		o.Engine = EngineSim
	}
	return o
}

// UFReport aggregates union–find behavior over all PEs of both passes.
type UFReport struct {
	Kind       unionfind.Kind
	Finds      int64
	Unions     int64
	TotalSteps int64
	// MaxOpCost is the most expensive single operation observed on any
	// PE: the quantity bounded by O(lg n) for weighted forests and by
	// O(lg n / lg lg n) for the Blum-style structure (Theorem 3).
	MaxOpCost int64
	// MeanOpCost is the steps-per-operation average.
	MeanOpCost float64
}

// SpecStats reports the speculative-forwarding heuristic's behavior.
type SpecStats struct {
	// Sends counts unions forwarded ahead of local execution.
	Sends int64
	// Wasted counts speculative sends whose local union turned out to be
	// a no-op (the sets were already together), i.e. traffic the paper's
	// quash messages would have canceled.
	Wasted int64
}

// Result is the output of Label.
type Result struct {
	// Labels is the canonical component labeling: every component carries
	// the least column-major position of its pixels; background is
	// bitmap.Background.
	Labels *bitmap.LabelMap
	// Metrics is the simulated machine's timing/traffic accounting.
	Metrics slap.Metrics
	// UF reports union–find behavior.
	UF UFReport
	// Speculation reports the Speculate heuristic (zero when disabled).
	Speculation SpecStats
	// Summary, when non-nil, is the labeling's component summary,
	// computed by the engine along the way (the host engine folds it
	// into its resolve sweep for ~free). Values are identical to what
	// seqcc.Summarize(Labels) computes; consumers may use either.
	Summary *Summary
}

// Summary is a labeling's component summary: the class count, the
// total foreground pixels, and the largest component's pixel count —
// the numbers every service response leads with — plus the frame
// dimensions, so a summary-only result (Options.SkipLabels) can answer
// the wire form without a label map to measure.
type Summary struct {
	W, H       int
	Components int
	Foreground int
	Largest    int
}

// message kinds on the links.
const (
	msgEOS   uint8 = iota // end of stream (the paper's "eos")
	msgUnion              // relevant union: A, B = adjacent-row witnesses
	msgLabel              // label flow: A = label, B = target row
)

// Labeler runs Algorithm CC repeatedly without re-allocating its working
// state: the simulated machine, the per-column pass states (column bits,
// union–find structures, adjacency/label satellites), and the merge
// scratch are all arenas re-initialized in place by every call. Use one
// Labeler per stream of images (a video pipeline, a benchmark loop) and
// call Label or Aggregate per frame; after the first call the hot path
// performs (almost) no allocation.
//
// A Labeler is not safe for concurrent use; the results it returns are
// independent of it and stay valid afterwards. The zero cost of reuse is
// observable only host-side: simulated metrics are bit-identical to a
// fresh run's (tests enforce this).
type Labeler struct {
	// userOpt is the configuration supplied at construction; opt is its
	// defaulted form, valid during a run.
	userOpt Options
	opt     Options

	m *slap.Machine

	// Per-run state. img is an Image, not a *Bitmap: the strip tiler
	// labels zero-copy bitmap.Strip views through the same arenas.
	img    bitmap.Image
	w, h   int
	report UFReport
	spec   SpecStats
	meters []*unionfind.Meter

	// Arenas: per-pass column states, the fused-walk subphase specs,
	// the merge scratch, and the aggregation states.
	passCols [2][]colState
	subs     []slap.SubPhase
	mg       mergeScratch
	agg      aggScratch

	// Strip-mining arenas (see tiler.go): the seam-stitch scratch, and
	// the cached worker pool of the StripWorkers fan-out with the
	// options it was built for.
	seam         seamScratch
	stripPool    *LabelerPool
	stripPoolOpt Options

	// host is the host engine's arena set (see engine.go), built lazily
	// on the first EngineHost run so simulator-only labelers pay nothing.
	host *hostcc.Labeler

	// ctx is the caller's request context for the duration of a *Ctx
	// run: strip-mined runs poll it between strips, so a cancelled
	// request stops early instead of finishing the whole image. Nil
	// (the non-Ctx entry points) means never cancelled.
	ctx context.Context
}

// cancelCheck reports ctx's cancellation as a core error (nil ctx never
// cancels). It wraps the context error, so errors.Is(err,
// context.Canceled / DeadlineExceeded) keeps working for callers that
// map cancellation to a status code.
func cancelCheck(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: run cancelled between strips: %w", err)
	}
	return nil
}

// NewLabeler returns a reusable labeler running Algorithm CC under opt.
// Option problems (an unknown union–find kind, an invalid cost model)
// are reported by the first Label call, like the one-shot API.
func NewLabeler(opt Options) *Labeler {
	return &Labeler{userOpt: opt}
}

// Label runs Algorithm CC on img, reusing the labeler's arenas. When
// Options.ArrayWidth names an array narrower than the image, the run is
// strip-mined (see LabelLarge); the labeling is identical either way.
// Options.Engine == EngineHost answers with the host engine instead:
// the same labels, no simulation.
func (lb *Labeler) Label(img *bitmap.Bitmap) (*Result, error) {
	if lb.userOpt.Engine == EngineHost {
		return lb.labelHost(img)
	}
	if aw := lb.userOpt.ArrayWidth; aw > 0 && aw < img.W() {
		return lb.labelLarge(img)
	}
	return lb.labelImage(img)
}

// LabelCtx is Label under a request context: a strip-mined run polls
// ctx between strips and stops early with a wrapped context error when
// it is cancelled, instead of finishing the whole image. Whole-image
// runs are one indivisible simulation; for them ctx is checked only on
// entry. Results and metrics of completed runs are identical to
// Label's.
func (lb *Labeler) LabelCtx(ctx context.Context, img *bitmap.Bitmap) (*Result, error) {
	if err := cancelCheck(ctx); err != nil {
		return nil, err
	}
	lb.ctx = ctx
	defer func() { lb.ctx = nil }()
	return lb.Label(img)
}

// labelImage is Label over the Image interface, always on a whole-image
// array: the shared path under Label, LabelLarge's per-strip runs, and
// Aggregate's labeling step.
func (lb *Labeler) labelImage(img bitmap.Image) (*Result, error) {
	labels, err := lb.runCC(img)
	lb.img = nil // don't keep the caller's image alive between runs
	if err != nil {
		return nil, err
	}
	lb.finishReport()
	return &Result{Labels: labels, Metrics: lb.m.Metrics(), UF: lb.report, Speculation: lb.spec}, nil
}

// labelerPool backs the package-level one-shot calls, so steady streams
// of Label calls reuse warm arenas even without an explicit Labeler.
var labelerPool = sync.Pool{New: func() any { return &Labeler{} }}

// Label runs Algorithm CC on img over a pooled machine and returns the
// labeling, metrics, and union–find report. The labeling always equals
// the sequential ground truth; an error is returned only for
// configuration problems (unknown UF kind, image too large for the label
// space, invalid cost model).
func Label(img *bitmap.Bitmap, opt Options) (*Result, error) {
	lb := labelerPool.Get().(*Labeler)
	defer labelerPool.Put(lb)
	lb.userOpt = opt
	return lb.Label(img)
}

// runCC executes the full Algorithm CC against the labeler's arenas and
// returns the finished labeling; the machine keeps accumulating phases,
// for extensions like Aggregate.
func (lb *Labeler) runCC(img bitmap.Image) (*bitmap.LabelMap, error) {
	opt := lb.userOpt.withDefaults()
	if err := opt.Cost.Validate(); err != nil {
		return nil, err
	}
	if !unionfind.Valid(opt.UF) {
		return nil, fmt.Errorf("core: unknown union-find kind %q", opt.UF)
	}
	if !opt.Connectivity.Valid() {
		return nil, fmt.Errorf("core: invalid connectivity %d", opt.Connectivity)
	}
	w, h := img.W(), img.H()
	if w > 0 && h > 0 && 2*int64(w)*int64(h) > math.MaxInt32 {
		return nil, fmt.Errorf("core: image %dx%d exceeds the int32 label space", w, h)
	}
	lb.opt = opt
	lb.img, lb.w, lb.h = img, w, h
	lb.report = UFReport{Kind: opt.UF}
	lb.spec = SpecStats{}
	lb.meters = lb.meters[:0]
	if lb.m == nil {
		lb.m = slap.NewMachine(w, opt.Cost)
	} else {
		lb.m.Reset(w, opt.Cost)
	}
	if opt.Profile {
		lb.m.EnableProfile()
	}
	if opt.BatchSize < 0 || opt.LinkDepth < 0 {
		return nil, fmt.Errorf("core: negative link tuning (BatchSize %d, LinkDepth %d)", opt.BatchSize, opt.LinkDepth)
	}
	if opt.ArrayWidth < 0 || opt.StripWorkers < 0 {
		return nil, fmt.Errorf("core: negative tiling options (ArrayWidth %d, StripWorkers %d)", opt.ArrayWidth, opt.StripWorkers)
	}
	if !opt.Seam.Valid() {
		return nil, fmt.Errorf("core: unknown seam model %q (want %q or %q)", opt.Seam, SeamDistributed, SeamHost)
	}
	if !opt.Schedule.Valid() {
		return nil, fmt.Errorf("core: unknown schedule model %q (want %q or %q)", opt.Schedule, ScheduleSequential, SchedulePipelined)
	}
	if !opt.Engine.Valid() {
		return nil, fmt.Errorf("core: unknown engine %q (want %q or %q)", opt.Engine, EngineSim, EngineHost)
	}
	lb.m.SetLinkTuning(opt.BatchSize, opt.LinkDepth)
	if opt.Parallel {
		lb.m.EnableParallel()
	}
	if opt.noFuse {
		lb.m.DisableFusion()
	}

	if !opt.SkipInput {
		lb.m.ChargeGlobal("input", int64(h))
	}
	if w == 0 || h == 0 {
		return bitmap.NewLabelMap(w, h), nil
	}

	lb.runPass(slap.LeftToRight, nil)
	// Step 3 of Figure 2, the purely local merge, rides the right-pass
	// walk as its trailing subphase: each column's two labelings are
	// merged immediately after its right-pass assign, while the
	// column's state is still cache-hot. Its phase metrics land after
	// the right pass's, exactly as when it ran as its own walk.
	labels := bitmap.NewLabelMap(w, h)
	mergeSub := lb.mergeSub(labels)
	lb.runPass(slap.RightToLeft, &mergeSub)
	return labels, nil
}

// finishReport folds every pass meter into the aggregate report.
func (lb *Labeler) finishReport() {
	var steps, ops int64
	for _, m := range lb.meters {
		st := m.Stats()
		lb.report.Finds += st.Finds
		lb.report.Unions += st.Unions
		steps += st.FindSteps + st.UnionSteps
		ops += st.Finds + st.Unions
		if c := m.MaxOpCost(); c > lb.report.MaxOpCost {
			lb.report.MaxOpCost = c
		}
	}
	lb.report.TotalSteps = steps
	if ops > 0 {
		lb.report.MeanOpCost = float64(steps) / float64(ops)
	}
}
