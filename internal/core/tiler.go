package core

import (
	"fmt"
	"math"
	"sync"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// The strip-mined tiler: a real SLAP has a fixed PE count, but the images
// worth labeling do not. LabelLarge partitions a w×h image into vertical
// strips of at most Options.ArrayWidth columns, runs Algorithm CC per
// strip on the fixed-width machine (zero-copy bitmap.Strip views over
// one warm arena set, or fanned across a LabelerPool), and stitches the
// strip-boundary seams with a host-side union–find pass, relabeling to
// the global canonical least-column-major labels. The labeling is
// bit-identical to a whole-image run's.
//
// # Schedule model
//
// Composed metrics follow an explicitly sequential schedule — the strips
// execute back to back on the one physical array — so every number stays
// deterministic and meaningful (see slap.Metrics.MergeSequential):
// per-phase makespans and traffic sum across strips, queue peaks and
// per-PE memory max, N is the physical array width (the last strip is
// usually narrower; its surplus PEs idle and charge nothing), and per-PE
// profiles are dropped. StripWorkers only changes host wall time, never
// the composed metrics.
//
// The stitch itself is appended as a "seam-merge" phase charged under
// the run's cost model as a sequential host pass:
//
//   - offload: each seam's two boundary label columns cross one link,
//     2h one-word records per seam (WordSteps each, counted in
//     Sends/Words);
//   - scan: one LocalStep per seam row to inspect the left boundary
//     pixel, plus one per adjacency probe into the right column (1 probe
//     under Conn4, up to 3 clipped probes under Conn8) for each left
//     1-pixel;
//   - stitch: one LocalStep per recorded seam edge (label interning),
//     the metered union–find steps of the unions and the per-label finds
//     (operation counts instead when UnitCostUF), and one LocalStep per
//     distinct boundary label for the class-minimum fold;
//   - relabel: one LocalStep per pixel whose label the merge rewrote.
//
// Seam-merge cost is O(h·strips + rewritten pixels): lower-order next to
// the Θ(w·h) labeling work unless strips are extremely narrow.
//
// LabelLarge runs Algorithm CC on img under opt, strip-mining onto a
// fixed-width array when 0 < opt.ArrayWidth < img.W() (otherwise it is
// exactly Label). The labeling always equals the whole-image run's.
func LabelLarge(img *bitmap.Bitmap, opt Options) (*Result, error) {
	return Label(img, opt)
}

// LabelLarge is the Labeler's reusable form of the package-level
// LabelLarge; it is exactly Label (which strip-mines whenever
// Options.ArrayWidth names an array narrower than the image).
func (lb *Labeler) LabelLarge(img *bitmap.Bitmap) (*Result, error) {
	return lb.Label(img)
}

// labelLarge executes the strip-mined run. Callers guarantee
// 0 < ArrayWidth < img.W().
func (lb *Labeler) labelLarge(img *bitmap.Bitmap) (*Result, error) {
	opt := lb.userOpt.withDefaults()
	w, h := img.W(), img.H()
	if 2*int64(w)*int64(h) > math.MaxInt32 {
		return nil, fmt.Errorf("core: image %dx%d exceeds the int32 label space", w, h)
	}
	if opt.StripWorkers < 0 {
		return nil, fmt.Errorf("core: negative tiling options (ArrayWidth %d, StripWorkers %d)", opt.ArrayWidth, opt.StripWorkers)
	}
	aw := opt.ArrayWidth
	strips := (w + aw - 1) / aw

	// Strip runs are plain whole-image runs over strip views.
	stripOpt := opt
	stripOpt.ArrayWidth = 0
	stripOpt.StripWorkers = 0

	results := make([]*Result, strips)
	if opt.StripWorkers > 1 && strips > 1 {
		// Fan the independent strips across a pool of worker labelers;
		// results land in strip order, so everything downstream is
		// identical to the sequential path. The pool is cached on the
		// labeler, so a warm labeler's workers keep their arenas across
		// frames instead of rebuilding the pool per call.
		workers := opt.StripWorkers
		if workers > strips {
			workers = strips
		}
		pool := lb.stripPool
		if pool == nil || lb.stripPoolOpt != stripOpt || pool.Workers() != workers {
			pool = NewLabelerPool(stripOpt, workers)
			lb.stripPool = pool
			lb.stripPoolOpt = stripOpt
		}
		errs := make([]error, strips)
		var wg sync.WaitGroup
		for s := 0; s < strips; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				x0 := s * aw
				sw := aw
				if w-x0 < sw {
					sw = w - x0
				}
				results[s], errs[s] = pool.labelImage(img.StripView(x0, sw))
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		// One warm arena set labels every strip in turn: the machine and
		// column arenas reset in place per strip, as across frames.
		saved := lb.userOpt
		lb.userOpt = stripOpt
		defer func() { lb.userOpt = saved }()
		for s := 0; s < strips; s++ {
			x0 := s * aw
			sw := aw
			if w-x0 < sw {
				sw = w - x0
			}
			res, err := lb.labelImage(img.StripView(x0, sw))
			if err != nil {
				return nil, err
			}
			results[s] = res
		}
	}

	// Translate strip-local labels to global positions: a strip at column
	// x0 labels with least strip-local positions sx·h + y, and the global
	// position of (x0+sx, y) is (x0+sx)·h + y — a constant x0·h offset.
	global := bitmap.NewLabelMap(w, h)
	for s, res := range results {
		x0 := s * aw
		off := int32(x0 * h)
		for c := 0; c < res.Labels.W(); c++ {
			src := res.Labels.ColumnSlice(c)
			dst := global.ColumnSlice(x0 + c)
			for y, l := range src {
				if l != bitmap.Background {
					dst[y] = l + off
				}
			}
		}
	}

	seamPhase, seamStats := lb.stitchSeams(img, global, aw, opt)

	// Compose the whole-run report under the sequential schedule model.
	comp := slap.Metrics{N: aw}
	rep := UFReport{Kind: opt.UF}
	var spec SpecStats
	var steps, ops int64
	for _, res := range results {
		comp.MergeSequential(res.Metrics)
		rep.Finds += res.UF.Finds
		rep.Unions += res.UF.Unions
		steps += res.UF.TotalSteps
		ops += res.UF.Finds + res.UF.Unions
		if res.UF.MaxOpCost > rep.MaxOpCost {
			rep.MaxOpCost = res.UF.MaxOpCost
		}
		spec.Sends += res.Speculation.Sends
		spec.Wasted += res.Speculation.Wasted
	}
	comp.AppendPhase(seamPhase)
	rep.Finds += seamStats.finds
	rep.Unions += seamStats.unions
	steps += seamStats.steps
	ops += seamStats.finds + seamStats.unions
	if seamStats.maxOp > rep.MaxOpCost {
		rep.MaxOpCost = seamStats.maxOp
	}
	rep.TotalSteps = steps
	if ops > 0 {
		rep.MeanOpCost = float64(steps) / float64(ops)
	}
	return &Result{Labels: global, Metrics: comp, UF: rep, Speculation: spec}, nil
}

// seamUFStats summarizes the stitch's union–find work for the composed
// UF report.
type seamUFStats struct {
	finds, unions int64
	steps         int64
	maxOp         int64
}

// seamScratch is the labeler-owned arena for the seam stitch: the
// epoch-marked interner over boundary labels (the same structure the
// merge and aggregation steps use instead of per-call maps), the dense
// label/edge/root/minimum arrays, and one reusable metered forest. A
// warm labeler stitches seams with no per-call allocation beyond what
// the label count forces on first growth.
type seamScratch struct {
	it       interner
	vals     []int32
	edges    []unionfind.Pair
	roots    []int32
	classMin []int32
	forest   *unionfind.Forest
	meter    *unionfind.Meter
}

// stitchSeams merges the components split across strip boundaries: a
// host-side union–find over the global labels of adjacent boundary
// columns, then a relabel of every affected pixel to its class's least
// label (which is the component's global least column-major position,
// since each class member is already the least position within its
// strip). It rewrites global in place and returns the charged
// "seam-merge" phase (see the schedule model above) plus the union–find
// stats to fold into the run report.
func (lb *Labeler) stitchSeams(img *bitmap.Bitmap, global *bitmap.LabelMap, aw int, opt Options) (slap.PhaseMetrics, seamUFStats) {
	w, h := img.W(), img.H()
	sc := &lb.seam
	// Size the interner from the actual boundary population: distinct
	// boundary labels cannot exceed the boundary 1-pixel count (the
	// loose 2h·seams bound would balloon the table on sparse images at
	// narrow widths). Host-side sizing work only; nothing is charged.
	bound := 0
	for xL := aw - 1; xL+1 < w; xL += aw {
		for y := 0; y < h; y++ {
			if img.Get(xL, y) {
				bound++
			}
			if img.Get(xL+1, y) {
				bound++
			}
		}
	}
	sc.it.prepare(bound)
	sc.vals = sc.vals[:0]
	sc.edges = sc.edges[:0]
	var scanSteps int64
	intern := func(l int32) int32 {
		i := sc.it.slot(l)
		if sc.it.live(i) {
			return sc.it.val[i]
		}
		id := int32(len(sc.vals))
		sc.it.set(i, l, id)
		sc.vals = append(sc.vals, l)
		return id
	}
	loDy, hiDy := 0, 0
	if opt.Connectivity == bitmap.Conn8 {
		loDy, hiDy = -1, 1
	}
	seams := 0
	for xL := aw - 1; xL+1 < w; xL += aw {
		seams++
		xR := xL + 1
		for y := 0; y < h; y++ {
			scanSteps++ // read the left boundary pixel
			if !img.Get(xL, y) {
				continue
			}
			var a int32
			aSet := false
			for dy := loDy; dy <= hiDy; dy++ {
				ny := y + dy
				if ny < 0 || ny >= h {
					continue
				}
				scanSteps++ // one adjacency probe into the right column
				if !img.Get(xR, ny) {
					continue
				}
				if !aSet {
					a = intern(global.Get(xL, y))
					aSet = true
				}
				sc.edges = append(sc.edges, unionfind.Pair{X: a, Y: intern(global.Get(xR, ny))})
			}
		}
	}

	cost := opt.Cost
	phase := slap.PhaseMetrics{Name: "seam-merge"}
	// Offload: each seam's two boundary label columns cross one link as
	// 2h one-word records.
	offload := int64(2*h) * int64(seams)
	phase.Sends = offload
	phase.Words = offload

	var ufCharge, foldSteps, rewrites int64
	var stats seamUFStats
	if len(sc.edges) > 0 {
		if sc.forest == nil {
			sc.forest = unionfind.NewForest(0, unionfind.LinkBySize, unionfind.CompressFull)
			sc.meter = unionfind.NewMeter(sc.forest)
			sc.meter.DisableHistogram()
		}
		sc.forest.Reset(len(sc.vals))
		sc.meter.ResetStats()
		for _, e := range sc.edges {
			sc.meter.Union(int(e.X), int(e.Y))
		}
		roots := unionfind.GrowInt32(sc.roots, len(sc.vals))
		sc.roots = roots
		sc.meter.FindCostRange(len(sc.vals), roots)
		st := sc.meter.Stats()
		stats = seamUFStats{
			finds:  st.Finds,
			unions: st.Unions,
			steps:  st.FindSteps + st.UnionSteps,
			maxOp:  sc.meter.MaxOpCost(),
		}
		if opt.UnitCostUF {
			ufCharge = st.Finds + st.Unions
		} else {
			ufCharge = stats.steps
		}

		// Least label per class; then rewrite the labels the merge
		// changed. Each class member label is the least global position
		// of its component's pixels within one strip, so the class
		// minimum is the component's global least position.
		classMin := fillNeg(unionfind.GrowInt32(sc.classMin, len(sc.vals)))
		sc.classMin = classMin
		changed := false
		for id, v := range sc.vals {
			foldSteps++
			if r := roots[id]; classMin[r] == -1 || v < classMin[r] {
				classMin[r] = v
			}
		}
		for id, v := range sc.vals {
			if classMin[roots[id]] != v {
				changed = true
				break
			}
		}
		if changed {
			for x := 0; x < w; x++ {
				col := global.ColumnSlice(x)
				for y, l := range col {
					if l == bitmap.Background {
						continue
					}
					if id, ok := sc.it.lookup(l); ok {
						if m := classMin[roots[id]]; m != l {
							col[y] = m
							rewrites++
						}
					}
				}
			}
		}
	}
	edgeSteps := int64(len(sc.edges))
	phase.Makespan = cost.WordSteps*offload +
		cost.LocalStep*(scanSteps+edgeSteps+ufCharge+foldSteps+rewrites)
	phase.Busy = phase.Makespan
	return phase, stats
}
