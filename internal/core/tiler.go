package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"

	"slapcc/internal/bitmap"
	"slapcc/internal/obs"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// The strip-mined tiler: a real SLAP has a fixed PE count, but the images
// worth labeling do not. LabelLarge partitions a w×h image into vertical
// strips of at most Options.ArrayWidth columns, runs Algorithm CC per
// strip on the fixed-width machine (zero-copy bitmap.Strip views over
// one warm arena set, or fanned across a LabelerPool), and stitches the
// strip-boundary seams with a metered union–find pass, relabeling to the
// global canonical least-column-major labels. AggregateLarge strip-mines
// the Corollary 4 aggregation the same way: per-strip aggregation, then
// the seam stitch additionally combines the per-strip component folds
// under the monoid. Labels and per-pixel aggregates are bit-identical to
// whole-image runs.
//
// # Schedule models
//
// Composed metrics follow one of two documented schedule models
// (Options.Schedule; full equations in docs/METRICS.md):
//
//   - ScheduleSequential (default): the strips execute back to back on
//     the one physical array (slap.Metrics.MergeSequential). Per-phase
//     makespans and traffic sum across strips, queue peaks and per-PE
//     memory max, N is the physical array width (the last strip is
//     usually narrower; its surplus PEs idle and charge nothing), and
//     per-PE profiles are dropped.
//   - SchedulePipelined: the array double-buffers its column memory, so
//     strip s+1's O(h) input phase streams in while strip s's sweeps run
//     (slap.Metrics.MergePipelined), and every boundary column except
//     the final strip's streams off under the following strips' compute.
//     Work totals are identical to the sequential model's; only the
//     composed Time (and the seam-merge critical path) shrink.
//
// StripWorkers only changes host wall time, never the composed metrics.
//
// # Seam accounting
//
// The stitch is charged as a "seam-merge" phase under the run's cost
// model:
//
//   - offload: each seam's two boundary label columns cross one link,
//     2h one-word records per seam (WordSteps each, counted in
//     Sends/Words); under SchedulePipelined only the final column's h
//     words remain on the critical path (the rest overlap compute);
//   - scan: one LocalStep per seam row to inspect the left boundary
//     pixel, plus one per adjacency probe into the right column (1 probe
//     under Conn4, up to 3 clipped probes under Conn8) for each left
//     1-pixel;
//   - stitch: one LocalStep per recorded seam edge (label interning),
//     the metered union–find steps of the unions and the per-label finds
//     (operation counts instead when UnitCostUF), and one LocalStep per
//     distinct boundary label per fold — the class-minimum fold, plus
//     the class-total fold on aggregation runs.
//
// The relabel itself is charged per Options.Seam:
//
//   - SeamDistributed (default): the remap table — one record per
//     boundary label whose canonical label (or component total) changed
//     — is broadcast down the array as a metered "seam-broadcast" sweep
//     (2-word records; 3-word on aggregation runs, which carry the
//     combined total), and every PE rewrites the columns it holds in a
//     "seam-rewrite" local phase: one LocalStep per foreground pixel
//     examined plus one per pixel rewritten. Both phases execute on a
//     real simulated machine, so their makespans are the systolic ones.
//   - SeamHost: the relabel is a sequential host pass folded into
//     seam-merge — one LocalStep per rewritten pixel — exactly the
//     original strip-mining model, kept selectable for comparison.
//
// Seam work is O(h·strips + rewritten pixels): lower-order next to the
// Θ(w·h) labeling work unless strips are extremely narrow.

// LabelLarge runs Algorithm CC on img under opt, strip-mining onto a
// fixed-width array when 0 < opt.ArrayWidth < img.W() (otherwise it is
// exactly Label). The labeling always equals the whole-image run's.
func LabelLarge(img *bitmap.Bitmap, opt Options) (*Result, error) {
	return Label(img, opt)
}

// StripRun is one strip's completed whole-image run, ready for seam
// composition: the strip-local labeling (least strip-local column-major
// labels, exactly what Label returns for the strip on its own), its
// simulated metrics, and its union–find report. PerPixel carries the
// strip's per-pixel fold on aggregation runs and is nil otherwise.
//
// The split between running strips and composing them is the cluster
// seam: LabelLarge produces StripRuns locally; the slapfront
// coordinator produces them by fanning strips out to slapd backends
// over the wire. Either way ComposeStrips stitches them into a result
// bit-identical to the whole-image run.
type StripRun struct {
	Labels      *bitmap.LabelMap
	Metrics     slap.Metrics
	UF          UFReport
	Speculation SpecStats
	PerPixel    []int32
}

// ComposeStrips stitches already-labeled strips into the whole-image
// labeling result: runs[s] must be the whole-image run of the strip
// covering columns [s·aw, min((s+1)·aw, w)) of img, where aw =
// opt.ArrayWidth. The result — labels, composed metrics under
// opt.Schedule, seam phases under opt.Seam, union–find report — is
// bit-identical to LabelLarge(img, opt), which is implemented on top of
// the same composition.
func ComposeStrips(img *bitmap.Bitmap, runs []StripRun, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := checkCompose(img, runs, opt, false); err != nil {
		return nil, err
	}
	lb := labelerPool.Get().(*Labeler)
	defer labelerPool.Put(lb)
	lb.userOpt = opt
	return lb.composeLabelStrips(img, runs, opt), nil
}

// ComposeAggregateStrips is ComposeStrips for aggregation runs: each
// run's PerPixel must hold the strip's own Corollary-4 fold under op,
// and the stitch additionally combines the per-strip folds of
// seam-crossing components. Bit-identical to AggregateLarge(img,
// initial, op, opt) when the runs were aggregated over the matching
// windows of initial.
func ComposeAggregateStrips(img *bitmap.Bitmap, runs []StripRun, op Monoid, opt Options) (*AggregateResult, error) {
	opt = opt.withDefaults()
	if op.Combine == nil {
		return nil, fmt.Errorf("core: monoid %q has no Combine", op.Name)
	}
	if err := checkCompose(img, runs, opt, true); err != nil {
		return nil, err
	}
	lb := labelerPool.Get().(*Labeler)
	defer labelerPool.Put(lb)
	lb.userOpt = opt
	return lb.composeAggregateStrips(img, runs, op, opt), nil
}

// checkCompose validates a ComposeStrips call: a genuinely strip-mined
// width, the right strip count, and per-strip dimensions that match the
// spans the width implies.
func checkCompose(img *bitmap.Bitmap, runs []StripRun, opt Options, agg bool) error {
	w, h := img.W(), img.H()
	if err := checkTiling(w, h, opt); err != nil {
		return err
	}
	if err := opt.Cost.Validate(); err != nil {
		return err
	}
	if !opt.Seam.Valid() {
		return fmt.Errorf("core: unknown seam model %q (want %q or %q)", opt.Seam, SeamDistributed, SeamHost)
	}
	if !opt.Schedule.Valid() {
		return fmt.Errorf("core: unknown schedule model %q (want %q or %q)", opt.Schedule, ScheduleSequential, SchedulePipelined)
	}
	if !opt.Engine.Valid() {
		return fmt.Errorf("core: unknown engine %q (want %q or %q)", opt.Engine, EngineSim, EngineHost)
	}
	aw := opt.ArrayWidth
	if aw <= 0 || aw >= w {
		return fmt.Errorf("core: ComposeStrips needs 0 < ArrayWidth < image width (got %d for width %d)", aw, w)
	}
	strips := (w + aw - 1) / aw
	if len(runs) != strips {
		return fmt.Errorf("core: %d strip runs for %d strips (width %d, array %d)", len(runs), strips, w, aw)
	}
	for s, run := range runs {
		_, sw := stripSpan(w, aw, s)
		if run.Labels == nil || run.Labels.W() != sw || run.Labels.H() != h {
			return fmt.Errorf("core: strip %d labels are %v, want %dx%d", s, dimsOf(run.Labels), sw, h)
		}
		if agg && len(run.PerPixel) != sw*h {
			return fmt.Errorf("core: strip %d per-pixel fold has %d values, want %d", s, len(run.PerPixel), sw*h)
		}
	}
	return nil
}

// dimsOf formats a label map's dimensions for error text (nil-safe).
func dimsOf(lm *bitmap.LabelMap) string {
	if lm == nil {
		return "nil"
	}
	return fmt.Sprintf("%dx%d", lm.W(), lm.H())
}

// AggregateLarge runs the Corollary 4 aggregation on img under opt,
// strip-mining onto a fixed-width array when 0 < opt.ArrayWidth <
// img.W() (otherwise it is exactly Aggregate): per-strip aggregation
// over zero-copy strip views, then a seam stitch that merges
// seam-crossing components and combines their per-strip folds under op.
// Labels and per-pixel folds always equal the whole-image run's.
func AggregateLarge(img *bitmap.Bitmap, initial []int32, op Monoid, opt Options) (*AggregateResult, error) {
	return Aggregate(img, initial, op, opt)
}

// LabelLarge is the Labeler's reusable form of the package-level
// LabelLarge; it is exactly Label (which strip-mines whenever
// Options.ArrayWidth names an array narrower than the image).
func (lb *Labeler) LabelLarge(img *bitmap.Bitmap) (*Result, error) {
	return lb.Label(img)
}

// AggregateLarge is the Labeler's reusable form of the package-level
// AggregateLarge; it is exactly Aggregate (which strip-mines whenever
// Options.ArrayWidth names an array narrower than the image).
func (lb *Labeler) AggregateLarge(img *bitmap.Bitmap, initial []int32, op Monoid) (*AggregateResult, error) {
	return lb.Aggregate(img, initial, op)
}

// seamPhaseNames are the phases a strip-mined run's seam pass can
// emit, in execution order: the stitch itself, then — under the
// distributed relabel — the remap broadcast and the per-PE rewrite.
var seamPhaseNames = [...]string{"seam-merge", "seam-broadcast", "seam-rewrite"}

// SeamTime sums the makespans of every seam phase of a composed report
// ("seam-merge" alone under SeamHost; plus "seam-broadcast" and
// "seam-rewrite" under the default distributed relabel). Zero on
// whole-image runs, which have no seams.
func SeamTime(m slap.Metrics) int64 {
	var total int64
	for _, name := range seamPhaseNames {
		if p, ok := m.Phase(name); ok {
			total += p.Makespan
		}
	}
	return total
}

// stripSpan returns strip s's leftmost column and width.
func stripSpan(w, aw, s int) (x0, sw int) {
	x0 = s * aw
	sw = aw
	if w-x0 < sw {
		sw = w - x0
	}
	return x0, sw
}

// checkTiling validates the strip-mined entry preconditions shared by
// labelLarge and aggregateLarge.
func checkTiling(w, h int, opt Options) error {
	if 2*int64(w)*int64(h) > math.MaxInt32 {
		return fmt.Errorf("core: image %dx%d exceeds the int32 label space", w, h)
	}
	if opt.StripWorkers < 0 {
		return fmt.Errorf("core: negative tiling options (ArrayWidth %d, StripWorkers %d)", opt.ArrayWidth, opt.StripWorkers)
	}
	return nil
}

// mergeStrip folds one strip's metrics into the composed report under
// the selected schedule model.
func mergeStrip(comp *slap.Metrics, opt Options, s slap.Metrics) {
	if opt.Schedule == SchedulePipelined {
		comp.MergePipelined(s)
	} else {
		comp.MergeSequential(s)
	}
}

// foldStripUF accumulates one strip's union–find report into the
// composed one (TotalSteps/MeanOpCost are finalized by finishStripUF).
func foldStripUF(rep *UFReport, steps, ops *int64, s UFReport) {
	rep.Finds += s.Finds
	rep.Unions += s.Unions
	*steps += s.TotalSteps
	*ops += s.Finds + s.Unions
	if s.MaxOpCost > rep.MaxOpCost {
		rep.MaxOpCost = s.MaxOpCost
	}
}

// finishStripUF folds the seam stitch's union–find stats and finalizes
// the derived fields.
func finishStripUF(rep *UFReport, steps, ops int64, seam seamUFStats) {
	rep.Finds += seam.finds
	rep.Unions += seam.unions
	steps += seam.steps
	ops += seam.finds + seam.unions
	if seam.maxOp > rep.MaxOpCost {
		rep.MaxOpCost = seam.maxOp
	}
	rep.TotalSteps = steps
	if ops > 0 {
		rep.MeanOpCost = float64(steps) / float64(ops)
	}
}

// globalizeLabels translates one strip's labels to global positions: a
// strip at column x0 labels with least strip-local positions sx·h + y,
// and the global position of (x0+sx, y) is (x0+sx)·h + y — a constant
// x0·h offset.
func globalizeLabels(global *bitmap.LabelMap, labels *bitmap.LabelMap, x0, h int) {
	off := int32(x0 * h)
	for c := 0; c < labels.W(); c++ {
		src := labels.ColumnSlice(c)
		dst := global.ColumnSlice(x0 + c)
		for y, l := range src {
			if l != bitmap.Background {
				dst[y] = l + off
			}
		}
	}
}

// stripTraceSpan opens one strip's trace span when the request context
// carries one (nil — a no-op span — otherwise), tagged with the strip
// index so /debug/requests attributes seam-adjacent stragglers.
func stripTraceSpan(ctx context.Context, s int) *obs.Span {
	ssp := obs.FromContext(ctx).Child("strip")
	if ssp != nil {
		ssp.Annotate("s=" + strconv.Itoa(s))
	}
	return ssp
}

// labelLarge executes the strip-mined labeling run. Callers guarantee
// 0 < ArrayWidth < img.W().
func (lb *Labeler) labelLarge(img *bitmap.Bitmap) (*Result, error) {
	opt := lb.userOpt.withDefaults()
	w, h := img.W(), img.H()
	if err := checkTiling(w, h, opt); err != nil {
		return nil, err
	}
	aw := opt.ArrayWidth
	strips := (w + aw - 1) / aw

	// Strip runs are plain whole-image runs over strip views.
	stripOpt := opt
	stripOpt.ArrayWidth = 0
	stripOpt.StripWorkers = 0

	runs := make([]StripRun, strips)
	if opt.StripWorkers > 1 && strips > 1 {
		// Fan the independent strips across a pool of worker labelers;
		// results land in strip order, so everything downstream is
		// identical to the sequential path. The pool is cached on the
		// labeler, so a warm labeler's workers keep their arenas across
		// frames instead of rebuilding the pool per call.
		ctx := lb.ctx
		pool := lb.ensureStripPool(stripOpt, opt.StripWorkers, strips)
		errs := make([]error, strips)
		var wg sync.WaitGroup
		for s := 0; s < strips; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				if err := cancelCheck(ctx); err != nil {
					errs[s] = err
					return
				}
				ssp := stripTraceSpan(ctx, s)
				x0, sw := stripSpan(w, aw, s)
				res, err := pool.labelImage(img.StripView(x0, sw))
				ssp.EndErr(err)
				if err != nil {
					errs[s] = err
					return
				}
				runs[s] = StripRun{Labels: res.Labels, Metrics: res.Metrics, UF: res.UF, Speculation: res.Speculation}
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		// One warm arena set labels every strip in turn: the machine and
		// column arenas reset in place per strip, as across frames. A
		// cancelled request context stops the run between strips instead
		// of finishing the whole image.
		saved := lb.userOpt
		lb.userOpt = stripOpt
		defer func() { lb.userOpt = saved }()
		for s := 0; s < strips; s++ {
			if err := cancelCheck(lb.ctx); err != nil {
				return nil, err
			}
			ssp := stripTraceSpan(lb.ctx, s)
			x0, sw := stripSpan(w, aw, s)
			res, err := lb.labelImage(img.StripView(x0, sw))
			ssp.EndErr(err)
			if err != nil {
				return nil, err
			}
			runs[s] = StripRun{Labels: res.Labels, Metrics: res.Metrics, UF: res.UF, Speculation: res.Speculation}
		}
	}

	return lb.composeLabelStrips(img, runs, opt), nil
}

// composeLabelStrips is the second half of a strip-mined labeling run —
// globalize the strip labelings, stitch the seams, compose the report
// under the schedule model — shared by labelLarge and the exported
// ComposeStrips (whose runs arrive from remote backends).
func (lb *Labeler) composeLabelStrips(img *bitmap.Bitmap, runs []StripRun, opt Options) *Result {
	w, h := img.W(), img.H()
	aw := opt.ArrayWidth
	global := bitmap.NewLabelMap(w, h)
	for s, run := range runs {
		globalizeLabels(global, run.Labels, s*aw, h)
	}

	if opt.Engine == EngineHost {
		tsp := obs.FromContext(lb.ctx).Child("stitch")
		rep, spec := lb.composeHostStrips(img, global, runs, nil, nil, opt)
		tsp.End()
		return &Result{Labels: global, UF: rep, Speculation: spec}
	}

	tsp := obs.FromContext(lb.ctx).Child("stitch")
	seamPhases, seamStats, seamMem := lb.stitchSeams(img, global, nil, nil, aw, opt)
	tsp.End()

	// Compose the whole-run report under the selected schedule model.
	comp := slap.Metrics{N: aw}
	rep := UFReport{Kind: opt.UF}
	var spec SpecStats
	var steps, ops int64
	for _, run := range runs {
		mergeStrip(&comp, opt, run.Metrics)
		foldStripUF(&rep, &steps, &ops, run.UF)
		spec.Sends += run.Speculation.Sends
		spec.Wasted += run.Speculation.Wasted
	}
	for _, p := range seamPhases {
		comp.AppendPhase(p)
	}
	if seamMem > comp.PEMemory {
		comp.PEMemory = seamMem
	}
	finishStripUF(&rep, steps, ops, seamStats)
	return &Result{Labels: global, Metrics: comp, UF: rep, Speculation: spec}
}

// aggregateLarge executes the strip-mined Corollary 4 aggregation.
// Callers guarantee 0 < ArrayWidth < img.W() and validated initial/op.
func (lb *Labeler) aggregateLarge(img *bitmap.Bitmap, initial []int32, op Monoid) (*AggregateResult, error) {
	opt := lb.userOpt.withDefaults()
	w, h := img.W(), img.H()
	if err := checkTiling(w, h, opt); err != nil {
		return nil, err
	}
	aw := opt.ArrayWidth
	strips := (w + aw - 1) / aw

	stripOpt := opt
	stripOpt.ArrayWidth = 0
	stripOpt.StripWorkers = 0

	// Per-strip aggregation: each strip sees the contiguous column-major
	// window of the initial values its columns own — zero-copy, like the
	// strip views themselves.
	runs := make([]StripRun, strips)
	if opt.StripWorkers > 1 && strips > 1 {
		ctx := lb.ctx
		pool := lb.ensureStripPool(stripOpt, opt.StripWorkers, strips)
		errs := make([]error, strips)
		var wg sync.WaitGroup
		for s := 0; s < strips; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				if err := cancelCheck(ctx); err != nil {
					errs[s] = err
					return
				}
				ssp := stripTraceSpan(ctx, s)
				x0, sw := stripSpan(w, aw, s)
				res, err := pool.aggregateImage(img.StripView(x0, sw), initial[x0*h:(x0+sw)*h], op)
				ssp.EndErr(err)
				if err != nil {
					errs[s] = err
					return
				}
				runs[s] = StripRun{Labels: res.Labels, Metrics: res.Metrics, UF: res.UF, PerPixel: res.PerPixel}
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		saved := lb.userOpt
		lb.userOpt = stripOpt
		defer func() { lb.userOpt = saved }()
		for s := 0; s < strips; s++ {
			if err := cancelCheck(lb.ctx); err != nil {
				return nil, err
			}
			ssp := stripTraceSpan(lb.ctx, s)
			x0, sw := stripSpan(w, aw, s)
			res, err := lb.aggregateImage(img.StripView(x0, sw), initial[x0*h:(x0+sw)*h], op)
			ssp.EndErr(err)
			if err != nil {
				return nil, err
			}
			runs[s] = StripRun{Labels: res.Labels, Metrics: res.Metrics, UF: res.UF, PerPixel: res.PerPixel}
		}
	}

	return lb.composeAggregateStrips(img, runs, op, opt), nil
}

// composeAggregateStrips is composeLabelStrips for aggregation runs:
// the stitch additionally combines seam-crossing components' per-strip
// folds under op. Shared by aggregateLarge and ComposeAggregateStrips.
func (lb *Labeler) composeAggregateStrips(img *bitmap.Bitmap, runs []StripRun, op Monoid, opt Options) *AggregateResult {
	w, h := img.W(), img.H()
	aw := opt.ArrayWidth
	global := bitmap.NewLabelMap(w, h)
	out := make([]int32, w*h)
	for s, run := range runs {
		x0 := s * aw
		globalizeLabels(global, run.Labels, x0, h)
		copy(out[x0*h:], run.PerPixel)
	}

	if opt.Engine == EngineHost {
		tsp := obs.FromContext(lb.ctx).Child("stitch")
		rep, _ := lb.composeHostStrips(img, global, runs, out, &op, opt)
		tsp.End()
		return &AggregateResult{PerPixel: out, Labels: global, UF: rep}
	}

	tsp := obs.FromContext(lb.ctx).Child("stitch")
	seamPhases, seamStats, seamMem := lb.stitchSeams(img, global, out, &op, aw, opt)
	tsp.End()

	comp := slap.Metrics{N: aw}
	rep := UFReport{Kind: opt.UF}
	var steps, ops int64
	for _, run := range runs {
		mergeStrip(&comp, opt, run.Metrics)
		foldStripUF(&rep, &steps, &ops, run.UF)
	}
	for _, p := range seamPhases {
		comp.AppendPhase(p)
	}
	if seamMem > comp.PEMemory {
		comp.PEMemory = seamMem
	}
	finishStripUF(&rep, steps, ops, seamStats)
	return &AggregateResult{PerPixel: out, Labels: global, Metrics: comp, UF: rep}
}

// ensureStripPool returns the labeler's cached strip-worker pool,
// rebuilding it when the options or worker count changed.
func (lb *Labeler) ensureStripPool(stripOpt Options, workers, strips int) *LabelerPool {
	if workers > strips {
		workers = strips
	}
	pool := lb.stripPool
	if pool == nil || lb.stripPoolOpt != stripOpt || pool.Workers() != workers {
		pool = NewLabelerPool(stripOpt, workers)
		lb.stripPool = pool
		lb.stripPoolOpt = stripOpt
	}
	return pool
}

// seamUFStats summarizes the stitch's union–find work for the composed
// UF report.
type seamUFStats struct {
	finds, unions int64
	steps         int64
	maxOp         int64
}

// remapPair is one seam remap-table entry: a globalized strip-local
// label whose canonical label (or, on aggregation runs, component
// total) the stitch changed.
type remapPair struct {
	old, canon int32
}

// seamScratch is the labeler-owned arena for the seam stitch: the
// epoch-marked interner over boundary labels (the same structure the
// merge and aggregation steps use instead of per-call maps), the dense
// label/value/edge/root/fold arrays, one reusable metered forest, and —
// for the distributed relabel — a private fixed-width machine that
// executes the seam-broadcast/seam-rewrite phases. A warm labeler
// stitches seams with no per-call allocation beyond what the label
// count forces on first growth.
type seamScratch struct {
	it       interner
	vals     []int32
	acc      []int32 // per boundary label: its component's per-strip fold (aggregation only)
	edges    []unionfind.Pair
	roots    []int32
	classMin []int32
	classTot []int32
	pairs    []remapPair
	colFG    []int64 // per column: foreground pixels (distributed rewrite charge)
	colRW    []int64 // per column: rewritten pixels
	forest   *unionfind.Forest
	meter    *unionfind.Meter
	m        *slap.Machine
	phases   [3]slap.PhaseMetrics // seam-merge [, seam-broadcast, seam-rewrite]
}

// stitchSeams merges the components split across strip boundaries: a
// metered union–find over the global labels of adjacent boundary
// columns, then a relabel of every affected pixel to its class's least
// label (which is the component's global least column-major position,
// since each class member is already the least position within its
// strip). On aggregation runs (op non-nil) it additionally combines the
// per-strip component folds of each class under op and rewrites out to
// the combined totals. It rewrites global (and out) in place and
// returns the charged seam phases (see the accounting model above), the
// union–find stats to fold into the run report, and the peak per-PE
// memory the distributed relabel declared.
func (lb *Labeler) stitchSeams(img *bitmap.Bitmap, global *bitmap.LabelMap, out []int32, op *Monoid, aw int, opt Options) ([]slap.PhaseMetrics, seamUFStats, int64) {
	w, h := img.W(), img.H()
	sc := &lb.seam
	// Size the interner from the actual boundary population: distinct
	// boundary labels cannot exceed the boundary 1-pixel count (the
	// loose 2h·seams bound would balloon the table on sparse images at
	// narrow widths). Host-side sizing work only; nothing is charged.
	bound := 0
	for xL := aw - 1; xL+1 < w; xL += aw {
		for y := 0; y < h; y++ {
			if img.Get(xL, y) {
				bound++
			}
			if img.Get(xL+1, y) {
				bound++
			}
		}
	}
	sc.it.prepare(bound)
	sc.vals = sc.vals[:0]
	sc.acc = sc.acc[:0]
	sc.edges = sc.edges[:0]
	var scanSteps int64
	intern := func(l int32, pos int) int32 {
		i := sc.it.slot(l)
		if sc.it.live(i) {
			return sc.it.val[i]
		}
		id := int32(len(sc.vals))
		sc.it.set(i, l, id)
		sc.vals = append(sc.vals, l)
		if op != nil {
			// Any pixel of the piece carries the piece's whole-strip
			// fold, so the first-seen boundary pixel's value is it.
			sc.acc = append(sc.acc, out[pos])
		}
		return id
	}
	loDy, hiDy := 0, 0
	if opt.Connectivity == bitmap.Conn8 {
		loDy, hiDy = -1, 1
	}
	seams := 0
	for xL := aw - 1; xL+1 < w; xL += aw {
		seams++
		xR := xL + 1
		for y := 0; y < h; y++ {
			scanSteps++ // read the left boundary pixel
			if !img.Get(xL, y) {
				continue
			}
			var a int32
			aSet := false
			for dy := loDy; dy <= hiDy; dy++ {
				ny := y + dy
				if ny < 0 || ny >= h {
					continue
				}
				scanSteps++ // one adjacency probe into the right column
				if !img.Get(xR, ny) {
					continue
				}
				if !aSet {
					a = intern(global.Get(xL, y), xL*h+y)
					aSet = true
				}
				sc.edges = append(sc.edges, unionfind.Pair{X: a, Y: intern(global.Get(xR, ny), xR*h+ny)})
			}
		}
	}

	cost := opt.Cost
	distributed := opt.Seam != SeamHost
	// Offload: each seam's two boundary label columns cross one link as
	// 2h one-word records.
	offload := int64(2*h) * int64(seams)

	var ufCharge, foldSteps, rewrites int64
	var stats seamUFStats
	sc.pairs = sc.pairs[:0]
	if len(sc.edges) > 0 {
		if sc.forest == nil {
			sc.forest = unionfind.NewForest(0, unionfind.LinkBySize, unionfind.CompressFull)
			sc.meter = unionfind.NewMeter(sc.forest)
			sc.meter.DisableHistogram()
		}
		sc.forest.Reset(len(sc.vals))
		sc.meter.ResetStats()
		for _, e := range sc.edges {
			sc.meter.Union(int(e.X), int(e.Y))
		}
		roots := unionfind.GrowInt32(sc.roots, len(sc.vals))
		sc.roots = roots
		sc.meter.FindCostRange(len(sc.vals), roots)
		st := sc.meter.Stats()
		stats = seamUFStats{
			finds:  st.Finds,
			unions: st.Unions,
			steps:  st.FindSteps + st.UnionSteps,
			maxOp:  sc.meter.MaxOpCost(),
		}
		if opt.UnitCostUF {
			ufCharge = st.Finds + st.Unions
		} else {
			ufCharge = stats.steps
		}

		// Least label per class; then rewrite the labels the merge
		// changed. Each class member label is the least global position
		// of its component's pixels within one strip, so the class
		// minimum is the component's global least position. On
		// aggregation runs, the class total — the op-fold of the member
		// pieces' strip folds — is computed alongside; each piece
		// contributes exactly once, which non-idempotent monoids need.
		classMin := fillNeg(unionfind.GrowInt32(sc.classMin, len(sc.vals)))
		sc.classMin = classMin
		var classTot []int32
		for id, v := range sc.vals {
			foldSteps++
			if r := roots[id]; classMin[r] == -1 || v < classMin[r] {
				classMin[r] = v
			}
		}
		if op != nil {
			classTot = unionfind.GrowInt32(sc.classTot, len(sc.vals))
			sc.classTot = classTot
			for i := range classTot {
				classTot[i] = op.Identity
			}
			for id := range sc.vals {
				foldSteps++
				r := roots[id]
				classTot[r] = op.Combine(classTot[r], sc.acc[id])
			}
		}
		for id, v := range sc.vals {
			if classMin[roots[id]] != v || (op != nil && classTot[roots[id]] != sc.acc[id]) {
				sc.pairs = append(sc.pairs, remapPair{old: v, canon: classMin[roots[id]]})
			}
		}
		if len(sc.pairs) > 0 {
			var colFG, colRW []int64
			if distributed {
				colFG = growInt64(sc.colFG, w)
				colRW = growInt64(sc.colRW, w)
				sc.colFG, sc.colRW = colFG, colRW
			}
			for x := 0; x < w; x++ {
				col := global.ColumnSlice(x)
				var fg, rw int64
				for y, l := range col {
					if l == bitmap.Background {
						continue
					}
					fg++
					if id, ok := sc.it.lookup(l); ok {
						changed := false
						if m := classMin[roots[id]]; m != l {
							col[y] = m
							changed = true
						}
						if op != nil {
							if t := classTot[roots[id]]; t != out[x*h+y] {
								out[x*h+y] = t
								changed = true
							}
						}
						if changed {
							rw++
							rewrites++
						}
					}
				}
				if distributed {
					colFG[x] = fg
					colRW[x] = rw
				}
			}
		}
	}

	edgeSteps := int64(len(sc.edges))
	local := scanSteps + edgeSteps + ufCharge + foldSteps
	if !distributed {
		local += rewrites
	}
	seamMerge := slap.PhaseMetrics{Name: "seam-merge"}
	seamMerge.Sends = offload
	seamMerge.Words = offload
	seamMerge.Busy = cost.WordSteps*offload + cost.LocalStep*local
	if opt.Schedule == SchedulePipelined {
		// Every boundary column except the final strip's streamed off
		// the array while the following strips computed; one h-word
		// column remains on the critical path before the host stitch.
		seamMerge.Makespan = cost.WordSteps*int64(h) + cost.LocalStep*local
	} else {
		seamMerge.Makespan = seamMerge.Busy
	}
	sc.phases[0] = seamMerge
	var peMem int64
	if !distributed {
		return sc.phases[:1], stats, 0
	}
	sc.phases[1], sc.phases[2], peMem = lb.seamArrayPhases(w, aw, op != nil, len(sc.pairs) > 0, cost)
	return sc.phases[:3], stats, peMem
}

// seamArrayPhases executes the distributed relabel on the seam machine —
// a real simulated array of the physical width — and returns its two
// phases plus the peak per-PE memory the remap table declared.
//
// seam-broadcast: the remap table enters at PE 0 and rides the links to
// the end of the array, one record per changed boundary label (2 words:
// old label, canonical label; 3 on aggregation runs, which also carry
// the class total), one LocalStep per PE per record for the table
// insert, eos-terminated like every Algorithm CC stream. The makespan is
// the systolic one: the last PE finishes ~(R + N) record times after the
// first.
//
// seam-rewrite: purely local; PE i holds column i of every strip (the
// array is reused, not replicated), and charges one LocalStep per
// foreground pixel it examines plus one per pixel it rewrites. When the
// remap table is empty the PEs skip their columns entirely.
func (lb *Labeler) seamArrayPhases(w, aw int, agg, changed bool, cost slap.CostModel) (bcast, rewrite slap.PhaseMetrics, peMem int64) {
	sc := &lb.seam
	if sc.m == nil {
		sc.m = slap.NewMachine(aw, cost)
	} else {
		sc.m.Reset(aw, cost)
	}
	m := sc.m
	recWords := uint8(2)
	if agg {
		recWords = 3
	}
	pairs := sc.pairs
	tableWords := int64(recWords) * int64(len(pairs))
	m.RunSweep("seam-broadcast", slap.LeftToRight, func(pe *slap.PE) {
		if pe.Index == 0 {
			for _, p := range pairs {
				pe.Tick(1) // table insert
				if pe.HasOut() {
					pe.Send(slap.Msg{Kind: msgLabel, A: p.old, B: p.canon, Words: recWords})
				}
			}
			if pe.HasOut() {
				pe.Send(slap.Msg{Kind: msgEOS})
			}
		} else {
			for {
				msg, ok := pe.RecvWait()
				if !ok {
					panic(fmt.Sprintf("core: PE %d: seam-broadcast stream ended without eos", pe.Index))
				}
				if msg.Kind == msgEOS {
					if pe.HasOut() {
						pe.Send(msg)
					}
					break
				}
				pe.Tick(1) // table insert
				if pe.HasOut() {
					pe.Send(msg)
				}
			}
		}
		pe.DeclareMemory(tableWords)
	})
	m.RunLocal("seam-rewrite", func(pe *slap.PE) {
		var ticks int64
		if changed {
			for x := pe.Index; x < w; x += aw {
				ticks += sc.colFG[x] + sc.colRW[x]
			}
		}
		pe.Tick(ticks)
	})
	return m.PhaseMetricsAt(0), m.PhaseMetricsAt(1), m.PEMemoryWords()
}

// growInt64 returns s grown to length n, zeroed.
func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		s = make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
