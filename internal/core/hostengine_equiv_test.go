package core

import (
	"fmt"
	"math/rand"
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
)

// The host engine's contract: bit-identical labels and aggregate values
// to the simulator for every family, connectivity, and shape — with
// zero Metrics and a HostUFKind report. These tests are the standing
// cross-engine harness the tentpole calls for: the simulator is checked
// against seqcc ground truth elsewhere, so holding host == sim == BFS
// here closes the triangle.

var hostTestConns = []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8}

// requireHostShape asserts the host-engine result-shape contract: no
// simulated metrics at all, and the host UF kind.
func requireHostShape(t *testing.T, name string, m interface {
	metricsZero() bool
	ufKind() string
}) {
	t.Helper()
	if !m.metricsZero() {
		t.Fatalf("%s: host engine emitted simulated metrics", name)
	}
	if m.ufKind() != string(HostUFKind) {
		t.Fatalf("%s: UF kind %q, want %q", name, m.ufKind(), HostUFKind)
	}
}

type labelShape struct{ r *Result }

func (s labelShape) metricsZero() bool {
	return s.r.Metrics.Time == 0 && len(s.r.Metrics.Phases) == 0 && s.r.Metrics.Sends == 0
}
func (s labelShape) ufKind() string { return string(s.r.UF.Kind) }

type aggShape struct{ r *AggregateResult }

func (s aggShape) metricsZero() bool {
	return s.r.Metrics.Time == 0 && len(s.r.Metrics.Phases) == 0 && s.r.Metrics.Sends == 0
}
func (s aggShape) ufKind() string { return string(s.r.UF.Kind) }

func TestHostEngineLabelMatrix(t *testing.T) {
	for _, fam := range bitmap.Families() {
		for _, n := range []int{33, 64} {
			img := fam.Generate(n)
			for _, conn := range hostTestConns {
				name := fmt.Sprintf("%s n=%d conn%d", fam.Name, n, conn)
				sim, err := Label(img, Options{Connectivity: conn})
				if err != nil {
					t.Fatalf("%s: sim: %v", name, err)
				}
				host, err := Label(img, Options{Engine: EngineHost, Connectivity: conn})
				if err != nil {
					t.Fatalf("%s: host: %v", name, err)
				}
				if !host.Labels.Equal(sim.Labels) {
					t.Fatalf("%s: host labels diverge from simulator", name)
				}
				requireHostShape(t, name, labelShape{host})

				// The host engine ignores ArrayWidth: a strip-mined request
				// answers with the whole-image labels, which the simulator's
				// own tiler invariant makes bit-identical.
				stripSim, err := LabelLarge(img, Options{Connectivity: conn, ArrayWidth: 16})
				if err != nil {
					t.Fatalf("%s: sim aw=16: %v", name, err)
				}
				stripHost, err := LabelLarge(img, Options{Engine: EngineHost, Connectivity: conn, ArrayWidth: 16})
				if err != nil {
					t.Fatalf("%s: host aw=16: %v", name, err)
				}
				if !stripHost.Labels.Equal(stripSim.Labels) {
					t.Fatalf("%s: host aw=16 labels diverge from simulator", name)
				}
			}
		}
	}
}

func TestHostEngineAggregateMatrix(t *testing.T) {
	monoids := []Monoid{Min(), Max(), Sum(), Or()}
	pick := map[string]bool{"random50": true, "checker": true, "hserpentine": true, "blobs": true}
	for _, f := range bitmap.Families() {
		if !pick[f.Name] {
			continue
		}
		fam := f.Name
		img := f.Generate(48)
		initial := make([]int32, img.W()*img.H())
		for i := range initial {
			initial[i] = int32(i%23) - 5
		}
		for _, conn := range hostTestConns {
			for _, op := range monoids {
				name := fmt.Sprintf("%s conn%d %s", fam, conn, op.Name)
				sim, err := Aggregate(img, initial, op, Options{Connectivity: conn})
				if err != nil {
					t.Fatalf("%s: sim: %v", name, err)
				}
				host, err := Aggregate(img, initial, op, Options{Engine: EngineHost, Connectivity: conn})
				if err != nil {
					t.Fatalf("%s: host: %v", name, err)
				}
				if !host.Labels.Equal(sim.Labels) {
					t.Fatalf("%s: host labels diverge", name)
				}
				for i := range sim.PerPixel {
					if host.PerPixel[i] != sim.PerPixel[i] {
						t.Fatalf("%s: per-pixel[%d] host %d, sim %d", name, i, host.PerPixel[i], sim.PerPixel[i])
					}
				}
				requireHostShape(t, name, aggShape{host})
			}
		}
	}
}

// TestHostEngineDifferential is the three-way fuzz: host engine vs the
// sequential BFS ground truth vs the fused simulator, labels and
// aggregates, across random non-square shapes × connectivities × strip
// widths. CI runs this under -race with the rest of the module.
func TestHostEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED8))
	for i := 0; i < 24; i++ {
		w := 1 + rng.Intn(96)
		h := 1 + rng.Intn(96)
		density := 0.15 + 0.7*rng.Float64()
		img := bitmap.RandomRect(w, h, density, uint64(rng.Int63()))
		conn := hostTestConns[i%2]
		aw := 0
		if w > 4 && i%3 != 0 {
			aw = 2 + rng.Intn(w-2) // genuinely strip-mined for the simulator
		}
		name := fmt.Sprintf("case %d: %dx%d conn%d aw=%d", i, w, h, conn, aw)

		bfs := seqcc.BFSConn(img, conn)
		host, err := Label(img, Options{Engine: EngineHost, Connectivity: conn, ArrayWidth: aw})
		if err != nil {
			t.Fatalf("%s: host: %v", name, err)
		}
		if !host.Labels.Equal(bfs) {
			t.Fatalf("%s: host labels diverge from BFS", name)
		}
		sim, err := Label(img, Options{Connectivity: conn, ArrayWidth: aw})
		if err != nil {
			t.Fatalf("%s: sim: %v", name, err)
		}
		if !sim.Labels.Equal(bfs) {
			t.Fatalf("%s: simulator labels diverge from BFS", name)
		}

		initial := make([]int32, w*h)
		for p := range initial {
			initial[p] = int32(rng.Intn(64)) - 16
		}
		op := []Monoid{Sum(), Min(), Max(), Or()}[i%4]
		hostAgg, err := Aggregate(img, initial, op, Options{Engine: EngineHost, Connectivity: conn, ArrayWidth: aw})
		if err != nil {
			t.Fatalf("%s: host agg: %v", name, err)
		}
		simAgg, err := Aggregate(img, initial, op, Options{Connectivity: conn, ArrayWidth: aw})
		if err != nil {
			t.Fatalf("%s: sim agg: %v", name, err)
		}
		for p := range simAgg.PerPixel {
			if hostAgg.PerPixel[p] != simAgg.PerPixel[p] {
				t.Fatalf("%s %s: per-pixel[%d] host %d, sim %d", name, op.Name, p, hostAgg.PerPixel[p], simAgg.PerPixel[p])
			}
		}
		if conn == bitmap.Conn4 {
			ref := seqcc.AggregateRef(img, initial, op.Combine, op.Identity)
			for p := range ref {
				if hostAgg.PerPixel[p] != ref[p] {
					t.Fatalf("%s %s: per-pixel[%d] host %d, seqcc %d", name, op.Name, p, hostAgg.PerPixel[p], ref[p])
				}
			}
		}
	}
}

// copyStrip materializes a strip as its own Bitmap, the shape a remote
// backend would have decoded from the wire.
func copyStrip(img *bitmap.Bitmap, x0, sw int) *bitmap.Bitmap {
	out := bitmap.New(sw, img.H())
	for x := 0; x < sw; x++ {
		for y := 0; y < img.H(); y++ {
			out.Set(x, y, img.Get(x0+x, y))
		}
	}
	return out
}

// TestHostEngineCompose drives the cluster-shaped path: strips labeled
// independently under the host engine, stitched by ComposeStrips /
// ComposeAggregateStrips with Engine == EngineHost. The composed answer
// must match a whole-image host run — and therefore the simulator.
func TestHostEngineCompose(t *testing.T) {
	img := bitmap.Random(90, 0.5, 0xC10)
	w, h := img.W(), img.H()
	initial := make([]int32, w*h)
	for i := range initial {
		initial[i] = 1
	}
	for _, conn := range hostTestConns {
		for _, aw := range []int{16, 37, 64} {
			name := fmt.Sprintf("conn%d aw=%d", conn, aw)
			opt := Options{Engine: EngineHost, Connectivity: conn, ArrayWidth: aw}
			strips := (w + aw - 1) / aw
			runs := make([]StripRun, strips)
			aggRuns := make([]StripRun, strips)
			for s := 0; s < strips; s++ {
				x0, sw := stripSpan(w, aw, s)
				strip := copyStrip(img, x0, sw)
				res, err := Label(strip, Options{Engine: EngineHost, Connectivity: conn})
				if err != nil {
					t.Fatalf("%s: strip %d: %v", name, s, err)
				}
				runs[s] = StripRun{Labels: res.Labels, UF: res.UF}
				agg, err := Aggregate(strip, initial[x0*h:(x0+sw)*h], Sum(), Options{Engine: EngineHost, Connectivity: conn})
				if err != nil {
					t.Fatalf("%s: strip agg %d: %v", name, s, err)
				}
				aggRuns[s] = StripRun{Labels: agg.Labels, UF: agg.UF, PerPixel: agg.PerPixel}
			}

			whole, err := Label(img, Options{Engine: EngineHost, Connectivity: conn})
			if err != nil {
				t.Fatalf("%s: whole: %v", name, err)
			}
			composed, err := ComposeStrips(img, runs, opt)
			if err != nil {
				t.Fatalf("%s: compose: %v", name, err)
			}
			if !composed.Labels.Equal(whole.Labels) {
				t.Fatalf("%s: composed host labels diverge from whole-image host run", name)
			}
			requireHostShape(t, name, labelShape{composed})

			wholeAgg, err := Aggregate(img, initial, Sum(), Options{Engine: EngineHost, Connectivity: conn})
			if err != nil {
				t.Fatalf("%s: whole agg: %v", name, err)
			}
			composedAgg, err := ComposeAggregateStrips(img, aggRuns, Sum(), opt)
			if err != nil {
				t.Fatalf("%s: compose agg: %v", name, err)
			}
			if !composedAgg.Labels.Equal(wholeAgg.Labels) {
				t.Fatalf("%s: composed agg labels diverge", name)
			}
			for i := range wholeAgg.PerPixel {
				if composedAgg.PerPixel[i] != wholeAgg.PerPixel[i] {
					t.Fatalf("%s: composed per-pixel[%d] = %d, want %d", name, i, composedAgg.PerPixel[i], wholeAgg.PerPixel[i])
				}
			}
			requireHostShape(t, name+" agg", aggShape{composedAgg})
		}
	}
}

func TestHostEngineRejectsBadOptions(t *testing.T) {
	img := bitmap.Random(8, 0.5, 1)
	cases := []Options{
		{Engine: "quantum"},
		{Engine: EngineHost, UF: "made-up"},
		{Engine: EngineHost, Connectivity: 5},
		{Engine: EngineHost, ArrayWidth: -1},
		{Engine: EngineHost, Seam: "telepathic"},
	}
	for i, opt := range cases {
		if _, err := Label(img, opt); err == nil {
			t.Fatalf("case %d (%+v): expected an option error", i, opt)
		}
	}
}
