package core

import (
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
)

// TestExhaustiveTinyImages labels EVERY binary image of a given size and
// compares against the ground truth: 512 images at 3×3 in short mode,
// all 65536 at 4×4 otherwise, plus every 1×k/k×1/2×3 shape. Exhaustive
// coverage at small sizes is the strongest evidence the pass/merge logic
// has no residual case bugs (it sweeps every possible adjacency pattern,
// prong merge, and empty-column layout).
func TestExhaustiveTinyImages(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 4}, {4, 1}, {2, 3}, {3, 2}, {3, 3}}
	if !testing.Short() {
		shapes = append(shapes, [2]int{4, 4})
	}
	for _, wh := range shapes {
		w, h := wh[0], wh[1]
		cells := w * h
		for mask := 0; mask < 1<<uint(cells); mask++ {
			img := bitmap.New(w, h)
			for i := 0; i < cells; i++ {
				if mask&(1<<uint(i)) != 0 {
					img.Set(i%w, i/w, true)
				}
			}
			res, err := Label(img, Options{SkipInput: true})
			if err != nil {
				t.Fatalf("%dx%d mask %b: %v", w, h, mask, err)
			}
			if err := seqcc.Check(img, res.Labels); err != nil {
				t.Fatalf("%dx%d mask %b: %v\n%s", w, h, mask, err, img)
			}
		}
	}
}

// TestMessageBounds checks the traffic bound behind Lemma 1's timing
// argument: in the union–find pass only relevant unions cross a link, so
// total records are bounded by the union count plus one eos per link;
// the label pass forwards at most once per incoming record plus one
// initial send per set and eos. We assert the aggregate forms.
func TestMessageBounds(t *testing.T) {
	for _, fam := range bitmap.Families() {
		n := 32
		img := fam.Generate(n)
		res := mustLabel(t, img, Options{})
		for _, dir := range []string{"left", "right"} {
			uf, ok := res.Metrics.Phase(dir + ":unionfind")
			if !ok {
				t.Fatalf("missing phase %s:unionfind", dir)
			}
			// Unions per pass ≤ #1-pixels; eos per link ≤ n-1.
			maxUnions := int64(img.CountOnes())
			if uf.Sends > maxUnions+int64(n) {
				t.Errorf("%s %s: %d union-pass records exceeds bound %d",
					fam.Name, dir, uf.Sends, maxUnions+int64(n))
			}
			lp, ok := res.Metrics.Phase(dir + ":labelpass")
			if !ok {
				t.Fatalf("missing phase %s:labelpass", dir)
			}
			// Each set sends at most once per incoming plus once as a
			// source; sets ≤ 1-pixels; plus eos per link.
			if lp.Sends > 2*maxUnions+2*int64(n) {
				t.Errorf("%s %s: %d label-pass records exceeds bound %d",
					fam.Name, dir, lp.Sends, 2*maxUnions+2*int64(n))
			}
		}
	}
}

// TestPerPEMemoryLinear pins the architecture constraint the paper's
// Figure 1 states: Θ(n) memory per PE.
func TestPerPEMemoryLinear(t *testing.T) {
	var prev int64
	for _, n := range []int{32, 64, 128} {
		res := mustLabel(t, bitmap.Random(n, 0.5, 1), Options{})
		mem := res.Metrics.PEMemory
		if mem <= 0 {
			t.Fatal("memory not declared")
		}
		if prev > 0 {
			ratio := float64(mem) / float64(prev)
			if ratio < 1.5 || ratio > 2.5 {
				t.Fatalf("per-PE memory should double with n: %d -> %d", prev, mem)
			}
		}
		prev = mem
	}
}
