package core

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
)

// TestPhaseNameInventory is the docs gate: it runs configurations
// covering every phase the labeling system can emit — whole-image
// labeling, Corollary 4 aggregation, strip-mined runs under both seam
// models and both schedules — and fails if any emitted phase name is
// missing from docs/METRICS.md. CI runs it by name; adding a phase to
// the system without documenting its charge breaks the build.
func TestPhaseNameInventory(t *testing.T) {
	docPath := filepath.Join("..", "..", "docs", "METRICS.md")
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("reading %s: %v", docPath, err)
	}

	names := map[string]bool{}
	collect := func(run func() (slap.Metrics, error)) {
		m, err := run()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Phases {
			names[p.Name] = true
		}
	}
	labelM := func(opt Options) func() (slap.Metrics, error) {
		return func() (slap.Metrics, error) {
			res, err := Label(bitmap.Random(24, 0.5, 3), opt)
			if err != nil {
				return slap.Metrics{}, err
			}
			return res.Metrics, nil
		}
	}
	aggM := func(opt Options) func() (slap.Metrics, error) {
		return func() (slap.Metrics, error) {
			img := bitmap.Random(24, 0.5, 3)
			res, err := Aggregate(img, Ones(img), Sum(), opt)
			if err != nil {
				return slap.Metrics{}, err
			}
			return res.Metrics, nil
		}
	}

	collect(labelM(Options{}))
	collect(aggM(Options{}))
	for _, seam := range []SeamModel{SeamHost, SeamDistributed} {
		for _, sched := range []ScheduleModel{ScheduleSequential, SchedulePipelined} {
			collect(labelM(Options{ArrayWidth: 8, Seam: seam, Schedule: sched}))
		}
	}
	collect(aggM(Options{ArrayWidth: 8}))

	// Sanity: the sweep above must reach every known phase family —
	// if a phase is ever renamed, this list and docs/METRICS.md move together.
	for _, must := range []string{
		"input", "left:unionfind", "right:assign", "merge",
		"agg:local", "left:agg", "right:agg", "agg:combine",
		"seam-merge", "seam-broadcast", "seam-rewrite",
	} {
		if !names[must] {
			t.Errorf("inventory sweep no longer emits %q — extend the sweep or drop it from the list", must)
		}
	}

	var missing []string
	for name := range names {
		if !strings.Contains(string(doc), "`"+name+"`") {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Fatalf("phase names emitted by the system but undocumented in docs/METRICS.md: %v\n"+
			"document what each charges in the phase inventory table", missing)
	}
}
