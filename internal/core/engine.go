package core

import (
	"fmt"
	"math"

	"slapcc/internal/bitmap"
	"slapcc/internal/hostcc"
	"slapcc/internal/unionfind"
)

// Engine selects which execution engine answers a run (Options.Engine).
//
// The simulator is the paper; the host engine is for callers who want
// the paper's answers without the paper's machine. Both produce the
// same canonical least-column-major labels and the same Corollary 4
// aggregate values for every image, connectivity, and shape — the
// cross-engine differential tests enforce it — so switching engines
// changes only what else comes back: the simulator's Result carries the
// full metered accounting, the host engine's carries none.
type Engine string

const (
	// EngineSim runs the metered SLAP simulation: systolic phases,
	// traffic, queue peaks, union–find step charges. The default (""
	// selects it).
	EngineSim Engine = "sim"
	// EngineHost answers on the host with the word-parallel run-based
	// labeler (internal/hostcc): identical labels and aggregates, no
	// simulation. Metrics is zero (no phases, no simulated time) and the
	// UF report carries the host labeler's operation counts under
	// HostUFKind. ArrayWidth, Seam, and Schedule do not apply — a host
	// run always labels the whole image in one pass, which is
	// bit-identical to any strip-mined decomposition — and the
	// simulation-only knobs (Cost, UF, Parallel, …) are validated but
	// otherwise ignored.
	EngineHost Engine = "host"
)

// Valid reports whether the engine is known ("" selects the default).
func (e Engine) Valid() bool { return e == "" || e == EngineSim || e == EngineHost }

// HostUFKind is the UFReport.Kind of a host-engine run: the run
// union–find is the host labeler's own (weighted, path-halving), not
// one of the simulator's metered structures, and only its operation
// counts are reported.
const HostUFKind unionfind.Kind = "host"

// hostReport shapes the host labeler's stats as the run's UF report.
// TotalSteps/MaxOpCost/MeanOpCost stay zero: the host engine does not
// meter pointer steps — that is the point of it.
func hostReport(st hostcc.Stats) UFReport {
	return UFReport{Kind: HostUFKind, Finds: st.Finds, Unions: st.Unions}
}

// checkHostRun validates the option surface for a host-engine run with
// the same checks (and error text) the simulator's runCC applies, so a
// bad configuration fails identically whichever engine would have run.
func checkHostRun(opt Options, w, h int) error {
	if err := opt.Cost.Validate(); err != nil {
		return err
	}
	if !unionfind.Valid(opt.UF) {
		return fmt.Errorf("core: unknown union-find kind %q", opt.UF)
	}
	if !opt.Connectivity.Valid() {
		return fmt.Errorf("core: invalid connectivity %d", opt.Connectivity)
	}
	if w > 0 && h > 0 && 2*int64(w)*int64(h) > math.MaxInt32 {
		return fmt.Errorf("core: image %dx%d exceeds the int32 label space", w, h)
	}
	if opt.BatchSize < 0 || opt.LinkDepth < 0 {
		return fmt.Errorf("core: negative link tuning (BatchSize %d, LinkDepth %d)", opt.BatchSize, opt.LinkDepth)
	}
	if opt.ArrayWidth < 0 || opt.StripWorkers < 0 {
		return fmt.Errorf("core: negative tiling options (ArrayWidth %d, StripWorkers %d)", opt.ArrayWidth, opt.StripWorkers)
	}
	if !opt.Seam.Valid() {
		return fmt.Errorf("core: unknown seam model %q (want %q or %q)", opt.Seam, SeamDistributed, SeamHost)
	}
	if !opt.Schedule.Valid() {
		return fmt.Errorf("core: unknown schedule model %q (want %q or %q)", opt.Schedule, ScheduleSequential, SchedulePipelined)
	}
	return nil
}

// hostLabeler returns the labeler's lazily built host-engine arena set,
// so LabelerPool / sync.Pool reuse warms the host path exactly like the
// simulator's.
func (lb *Labeler) hostLabeler() *hostcc.Labeler {
	if lb.host == nil {
		lb.host = hostcc.NewLabeler()
	}
	return lb.host
}

// labelHost answers Label with the host engine: canonical labels, zero
// Metrics, a HostUFKind report. Under Options.SkipLabels the labeling
// itself is never materialized — the summary-only sweep produces the
// identical Stats (and so the identical wire response, minus the label
// array) at a fraction of the cost.
func (lb *Labeler) labelHost(img *bitmap.Bitmap) (*Result, error) {
	opt := lb.userOpt.withDefaults()
	if err := checkHostRun(opt, img.W(), img.H()); err != nil {
		return nil, err
	}
	if err := cancelCheck(lb.ctx); err != nil {
		return nil, err
	}
	if opt.SkipLabels {
		st := lb.hostLabeler().Summary(img, opt.Connectivity)
		return &Result{UF: hostReport(st), Summary: hostSummary(st, img)}, nil
	}
	labels, st := lb.hostLabeler().Label(img, opt.Connectivity)
	return &Result{Labels: labels, UF: hostReport(st), Summary: hostSummary(st, img)}, nil
}

// hostSummary lifts the host labeler's run-derived component summary
// (identical to seqcc.Summarize over the labels, at O(runs) instead of
// O(pixels)) into the result.
func hostSummary(st hostcc.Stats, img *bitmap.Bitmap) *Summary {
	return &Summary{W: img.W(), H: img.H(), Components: st.Components, Foreground: st.Foreground, Largest: st.Largest}
}

// aggregateHost answers Aggregate with the host engine; callers
// validated initial and op.
func (lb *Labeler) aggregateHost(img *bitmap.Bitmap, initial []int32, op Monoid) (*AggregateResult, error) {
	opt := lb.userOpt.withDefaults()
	if err := checkHostRun(opt, img.W(), img.H()); err != nil {
		return nil, err
	}
	if err := cancelCheck(lb.ctx); err != nil {
		return nil, err
	}
	labels, per, st := lb.hostLabeler().Aggregate(img, initial, op.Identity, op.Combine, opt.Connectivity)
	return &AggregateResult{PerPixel: per, Labels: labels, UF: hostReport(st), Summary: hostSummary(st, img)}, nil
}

// composeHostStrips is the host-engine compose path behind
// ComposeStrips/ComposeAggregateStrips (out/op non-nil on aggregation
// runs): the cluster coordinator fans strips to backends under
// cost=host and stitches the answers here. The strip labelings are
// already globalized into global; the stitch reuses the seam
// machinery's label (and fold) rewrite with the seam forced to the
// host model — no seam machine is built, and the charged phases are
// discarded, because a host-engine answer carries no Metrics. The
// composed labels are bit-identical to one whole-image host run (the
// tiler's own invariant), and the UF report folds the strips' and the
// stitch's operation counts under HostUFKind.
func (lb *Labeler) composeHostStrips(img *bitmap.Bitmap, global *bitmap.LabelMap, runs []StripRun, out []int32, op *Monoid, opt Options) (UFReport, SpecStats) {
	hostOpt := opt
	hostOpt.Seam = SeamHost
	_, seamStats, _ := lb.stitchSeams(img, global, out, op, opt.ArrayWidth, hostOpt)
	rep := UFReport{Kind: HostUFKind}
	var spec SpecStats
	for _, run := range runs {
		rep.Finds += run.UF.Finds
		rep.Unions += run.UF.Unions
		spec.Sends += run.Speculation.Sends
		spec.Wasted += run.Speculation.Wasted
	}
	rep.Finds += seamStats.finds
	rep.Unions += seamStats.unions
	return rep, spec
}
