package core

import (
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
)

// Non-square equivalence: tiling makes w ≠ h first-class (the last strip
// of a strip-mined run is almost always narrower than the array), so the
// engines are held to the same conformance bar off the square diagonal
// as on it — sequential per-phase, fused, and parallel executions of
// every shape must agree bit for bit with each other and with the
// sequential ground truth.

// nonSquareSizes spans wide, tall, degenerate, and >64-row shapes (the
// packed-column walks change word count at multiples of 64).
var nonSquareSizes = [][2]int{
	{1, 17}, {17, 1}, {5, 3}, {9, 33}, {33, 9}, {64, 16}, {16, 64}, {70, 7}, {7, 70}, {3, 130},
}

func TestNonSquareEngineEquivalence(t *testing.T) {
	for _, conn := range []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8} {
		for _, wh := range nonSquareSizes {
			w, h := wh[0], wh[1]
			for _, density := range []float64{0.3, 0.55} {
				img := bitmap.RandomRect(w, h, density, uint64(w*1000+h)+uint64(conn))

				fused := mustLabel(t, img, Options{Connectivity: conn})
				if err := seqcc.CheckConn(img, fused.Labels, conn); err != nil {
					t.Fatalf("%dx%d/conn%d/d%.2f: fused engine wrong: %v", w, h, conn, density, err)
				}
				unfused := mustLabel(t, img, Options{Connectivity: conn, noFuse: true})
				par := mustLabel(t, img, Options{Connectivity: conn, Parallel: true})

				for _, tc := range []struct {
					engine string
					res    *Result
				}{
					{"per-phase", unfused},
					{"parallel", par},
				} {
					if !tc.res.Labels.Equal(fused.Labels) {
						t.Errorf("%dx%d/conn%d/d%.2f: %s engine changed the labeling",
							w, h, conn, density, tc.engine)
					}
					if !metricsIdentical(t, fused, tc.res) {
						t.Errorf("%dx%d/conn%d/d%.2f: %s engine changed the metrics:\nfused %+v\ngot   %+v",
							w, h, conn, density, tc.engine, fused.Metrics, tc.res.Metrics)
					}
				}
			}
		}
	}
}

// TestNonSquareStructuredShapes covers deterministic non-square
// structures (full, single row/column spans, serpentine slices) where
// off-by-one bugs in the affine label bases would show immediately.
func TestNonSquareStructuredShapes(t *testing.T) {
	imgs := map[string]*bitmap.Bitmap{
		"full-wide": func() *bitmap.Bitmap { b := bitmap.New(41, 6); b.Fill(true); return b }(),
		"full-tall": func() *bitmap.Bitmap { b := bitmap.New(6, 41); b.Fill(true); return b }(),
		"serp-slice": func() *bitmap.Bitmap {
			s := bitmap.HSerpentine(32)
			return s.SubImage(0, 0, 32, 11)
		}(),
		"row": func() *bitmap.Bitmap {
			b := bitmap.New(50, 1)
			for x := 0; x < 50; x += 2 {
				b.Set(x, 0, true)
			}
			return b
		}(),
		"col": func() *bitmap.Bitmap {
			b := bitmap.New(1, 50)
			for y := 0; y < 50; y++ {
				b.Set(0, y, true)
			}
			return b
		}(),
	}
	for name, img := range imgs {
		for _, conn := range []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8} {
			fused := mustLabel(t, img, Options{Connectivity: conn})
			if err := seqcc.CheckConn(img, fused.Labels, conn); err != nil {
				t.Fatalf("%s/conn%d: %v", name, conn, err)
			}
			unfused := mustLabel(t, img, Options{Connectivity: conn, noFuse: true})
			if !unfused.Labels.Equal(fused.Labels) || !metricsIdentical(t, fused, unfused) {
				t.Errorf("%s/conn%d: per-phase engine diverged", name, conn)
			}
		}
	}
}
