package core

import (
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
)

// mustLabelLarge is mustLabel through the strip-mined entry point.
func mustLabelLarge(t *testing.T, img *bitmap.Bitmap, opt Options) *Result {
	t.Helper()
	res, err := LabelLarge(img, opt)
	if err != nil {
		t.Fatalf("LabelLarge: %v", err)
	}
	return res
}

// TestLabelLargeMatchesGroundTruth sweeps families × array widths ×
// connectivities: the strip-mined labeling must be bit-identical to both
// the whole-image run and the sequential ground truth. ArrayWidth 1 is
// the stress extreme — every column boundary is a seam.
func TestLabelLargeMatchesGroundTruth(t *testing.T) {
	const n = 48
	for _, conn := range []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8} {
		for _, fam := range bitmap.Families() {
			img := fam.Generate(n)
			whole := mustLabel(t, img, Options{Connectivity: conn})
			if err := seqcc.CheckConn(img, whole.Labels, conn); err != nil {
				t.Fatalf("%s/conn%d: whole-image run wrong: %v", fam.Name, conn, err)
			}
			for _, aw := range []int{1, 7, 16, 48, 64} {
				res := mustLabelLarge(t, img, Options{Connectivity: conn, ArrayWidth: aw})
				if !res.Labels.Equal(whole.Labels) {
					t.Errorf("%s/conn%d/aw%d: strip-mined labeling diverged from whole-image run",
						fam.Name, conn, aw)
				}
			}
		}
	}
}

// TestLabelLargeNonSquareFuzz labels fuzzed non-square images through
// the tiler at several array widths and checks against the ground truth:
// the last strip is narrower than the array almost everywhere here.
func TestLabelLargeNonSquareFuzz(t *testing.T) {
	rng := bitmap.NewRNG(0xA11CE)
	for trial := 0; trial < 60; trial++ {
		w := 1 + rng.Intn(97)
		h := 1 + rng.Intn(53)
		density := 0.15 + 0.7*rng.Float64()
		img := bitmap.RandomRect(w, h, density, rng.Uint64())
		aw := 1 + rng.Intn(w)
		conn := bitmap.Conn4
		if trial%2 == 1 {
			conn = bitmap.Conn8
		}
		res := mustLabelLarge(t, img, Options{Connectivity: conn, ArrayWidth: aw})
		if err := seqcc.CheckConn(img, res.Labels, conn); err != nil {
			t.Fatalf("trial %d (%dx%d aw=%d conn%d): %v", trial, w, h, aw, conn, err)
		}
	}
}

// TestLabelLargeHuge is the production-scale check: every built-in
// family at 2048×2048 on a 256-wide array, bit-identical to the
// sequential ground truth. Conn8 rides along for two families.
func TestLabelLargeHuge(t *testing.T) {
	if testing.Short() {
		t.Skip("2048×2048 family sweep skipped in -short mode")
	}
	const n, aw = 2048, 256
	lab := NewLabeler(Options{ArrayWidth: aw})
	for _, fam := range bitmap.Families() {
		img := fam.Generate(n)
		res, err := lab.LabelLarge(img)
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		if err := seqcc.CheckConn(img, res.Labels, bitmap.Conn4); err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
	}
	for _, name := range []string{"random50", "hserpentine"} {
		fam, ok := bitmap.FamilyByName(name)
		if !ok {
			t.Fatalf("family %s missing", name)
		}
		img := fam.Generate(n)
		res, err := LabelLarge(img, Options{ArrayWidth: aw, Connectivity: bitmap.Conn8})
		if err != nil {
			t.Fatalf("%s/conn8: %v", name, err)
		}
		if err := seqcc.CheckConn(img, res.Labels, bitmap.Conn8); err != nil {
			t.Fatalf("%s/conn8: %v", name, err)
		}
	}
}

// TestLabelLargeSchedule pins the composed schedule model: per-phase
// makespans of the composed report equal the sum of the per-strip
// phases, N is the array width, and the seam-merge phase is last.
func TestLabelLargeSchedule(t *testing.T) {
	img := bitmap.Random(40, 0.5, 99)
	const aw = 16 // strips of 16, 16, 8
	res := mustLabelLarge(t, img, Options{ArrayWidth: aw})
	if res.Metrics.N != aw {
		t.Errorf("composed N = %d, want the array width %d", res.Metrics.N, aw)
	}
	last := res.Metrics.Phases[len(res.Metrics.Phases)-1]
	if last.Name != "seam-merge" {
		t.Fatalf("last composed phase is %q, want seam-merge", last.Name)
	}
	if last.Makespan <= 0 || last.Sends != int64(2*img.H()*2) {
		t.Errorf("seam-merge phase %+v: want positive makespan and 2h sends per seam (2 seams)", last)
	}

	// Strip runs are plain runs over the views; their phase makespans
	// must sum to the composed ones.
	var sum int64
	for _, x0 := range []int{0, 16, 32} {
		sw := 16
		if x0 == 32 {
			sw = 8
		}
		sub := img.SubImage(x0, 0, sw, img.H())
		r := mustLabel(t, sub, Options{})
		sum += r.Metrics.Time
	}
	if got := res.Metrics.Time - last.Makespan; got != sum {
		t.Errorf("composed strip time %d, want Σ strip makespans %d", got, sum)
	}
}

// TestLabelLargeDeterministicAcrossModes: repeated runs, warm-labeler
// runs, and pool-fanned runs must agree bit for bit — labels, composed
// metrics, UF report, speculation. The strip schedule model is
// sequential no matter how the host executes it.
func TestLabelLargeDeterministicAcrossModes(t *testing.T) {
	img := bitmap.RandomRect(90, 37, 0.5, 4242)
	base := Options{ArrayWidth: 13, Connectivity: bitmap.Conn8, Speculate: true}
	first := mustLabelLarge(t, img, base)
	if err := seqcc.CheckConn(img, first.Labels, bitmap.Conn8); err != nil {
		t.Fatal(err)
	}
	warm := NewLabeler(base)
	warm.Label(bitmap.Random(21, 0.4, 5)) // dirty the arenas first
	cases := map[string]func() (*Result, error){
		"repeat": func() (*Result, error) { return LabelLarge(img, base) },
		"warm":   func() (*Result, error) { return warm.LabelLarge(img) },
		"pool3": func() (*Result, error) {
			opt := base
			opt.StripWorkers = 3
			return LabelLarge(img, opt)
		},
		"pool16": func() (*Result, error) {
			opt := base
			opt.StripWorkers = 16
			return LabelLarge(img, opt)
		},
	}
	for name, run := range cases {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Labels.Equal(first.Labels) {
			t.Errorf("%s: labels diverged", name)
		}
		if !metricsIdentical(t, first, res) {
			t.Errorf("%s: composed metrics diverged:\nfirst %+v\ngot   %+v", name, first.Metrics, res.Metrics)
		}
	}
}

// TestLabelLargeArrayWidthZeroIsLabel: ArrayWidth 0 (and any width at
// least the image's) must stay bit-identical to the plain path —
// the whole-image array of every run before strip-mining existed.
func TestLabelLargeArrayWidthZeroIsLabel(t *testing.T) {
	img := bitmap.Random(33, 0.5, 7)
	plain := mustLabel(t, img, Options{})
	for _, aw := range []int{0, 33, 100} {
		res := mustLabelLarge(t, img, Options{ArrayWidth: aw})
		if !res.Labels.Equal(plain.Labels) || !metricsIdentical(t, plain, res) {
			t.Errorf("aw=%d: diverged from the plain whole-image run", aw)
		}
	}
}

// TestLabelLargeRejectsBadOptions: negative tiling options are
// configuration errors, and Aggregate has no strip-mined form yet.
func TestLabelLargeRejectsBadOptions(t *testing.T) {
	img := bitmap.Random(16, 0.5, 1)
	if _, err := Label(img, Options{ArrayWidth: -1}); err == nil {
		t.Error("negative ArrayWidth accepted")
	}
	if _, err := Label(img, Options{StripWorkers: -2}); err == nil {
		t.Error("negative StripWorkers accepted")
	}
	if _, err := LabelLarge(img, Options{ArrayWidth: 4, StripWorkers: -1}); err == nil {
		t.Error("negative StripWorkers accepted on the strip path")
	}
	if _, err := Aggregate(img, Ones(img), Sum(), Options{ArrayWidth: 4}); err == nil {
		t.Error("Aggregate accepted a strip-mined ArrayWidth")
	}
}

// TestGoldenLargeStepCounts pins the composed accounting of the
// strip-mined path for two family/ArrayWidth pairs, exactly as
// TestGoldenStepCounts pins the whole-image accounting. Update
// deliberately when the schedule model or the cost accounting changes.
func TestGoldenLargeStepCounts(t *testing.T) {
	cases := []struct {
		name string
		img  *bitmap.Bitmap
		opt  Options
		want int64
	}{
		{"checker64-aw16", bitmap.Checker(64), Options{ArrayWidth: 16}, goldenLargeChecker64AW16},
		{"serp64-aw32", bitmap.HSerpentine(64), Options{ArrayWidth: 32}, goldenLargeSerp64AW32},
	}
	for _, tc := range cases {
		res, err := LabelLarge(tc.img, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Metrics.Time != tc.want {
			t.Errorf("%s: composed simulated time changed: got %d, golden %d — if intentional, update tiler_test.go",
				tc.name, res.Metrics.Time, tc.want)
		}
	}
}

// Golden values; see TestGoldenLargeStepCounts.
const (
	goldenLargeChecker64AW16 = 6024
	goldenLargeSerp64AW32    = 7457
)
