package core

import (
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
)

// mustLabelLarge is mustLabel through the strip-mined entry point.
func mustLabelLarge(t *testing.T, img *bitmap.Bitmap, opt Options) *Result {
	t.Helper()
	res, err := LabelLarge(img, opt)
	if err != nil {
		t.Fatalf("LabelLarge: %v", err)
	}
	return res
}

// TestLabelLargeMatchesGroundTruth sweeps families × array widths ×
// connectivities: the strip-mined labeling must be bit-identical to both
// the whole-image run and the sequential ground truth. ArrayWidth 1 is
// the stress extreme — every column boundary is a seam.
func TestLabelLargeMatchesGroundTruth(t *testing.T) {
	const n = 48
	for _, conn := range []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8} {
		for _, fam := range bitmap.Families() {
			img := fam.Generate(n)
			whole := mustLabel(t, img, Options{Connectivity: conn})
			if err := seqcc.CheckConn(img, whole.Labels, conn); err != nil {
				t.Fatalf("%s/conn%d: whole-image run wrong: %v", fam.Name, conn, err)
			}
			for _, aw := range []int{1, 7, 16, 48, 64} {
				res := mustLabelLarge(t, img, Options{Connectivity: conn, ArrayWidth: aw})
				if !res.Labels.Equal(whole.Labels) {
					t.Errorf("%s/conn%d/aw%d: strip-mined labeling diverged from whole-image run",
						fam.Name, conn, aw)
				}
			}
		}
	}
}

// TestLabelLargeNonSquareFuzz labels fuzzed non-square images through
// the tiler at several array widths and checks against the ground truth:
// the last strip is narrower than the array almost everywhere here.
func TestLabelLargeNonSquareFuzz(t *testing.T) {
	rng := bitmap.NewRNG(0xA11CE)
	for trial := 0; trial < 60; trial++ {
		w := 1 + rng.Intn(97)
		h := 1 + rng.Intn(53)
		density := 0.15 + 0.7*rng.Float64()
		img := bitmap.RandomRect(w, h, density, rng.Uint64())
		aw := 1 + rng.Intn(w)
		conn := bitmap.Conn4
		if trial%2 == 1 {
			conn = bitmap.Conn8
		}
		res := mustLabelLarge(t, img, Options{Connectivity: conn, ArrayWidth: aw})
		if err := seqcc.CheckConn(img, res.Labels, conn); err != nil {
			t.Fatalf("trial %d (%dx%d aw=%d conn%d): %v", trial, w, h, aw, conn, err)
		}
	}
}

// TestLabelLargeHuge is the production-scale check: every built-in
// family at 2048×2048 on a 256-wide array, bit-identical to the
// sequential ground truth. Conn8 rides along for two families.
func TestLabelLargeHuge(t *testing.T) {
	if testing.Short() {
		t.Skip("2048×2048 family sweep skipped in -short mode")
	}
	const n, aw = 2048, 256
	lab := NewLabeler(Options{ArrayWidth: aw})
	for _, fam := range bitmap.Families() {
		img := fam.Generate(n)
		res, err := lab.LabelLarge(img)
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		if err := seqcc.CheckConn(img, res.Labels, bitmap.Conn4); err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
	}
	for _, name := range []string{"random50", "hserpentine"} {
		fam, ok := bitmap.FamilyByName(name)
		if !ok {
			t.Fatalf("family %s missing", name)
		}
		img := fam.Generate(n)
		res, err := LabelLarge(img, Options{ArrayWidth: aw, Connectivity: bitmap.Conn8})
		if err != nil {
			t.Fatalf("%s/conn8: %v", name, err)
		}
		if err := seqcc.CheckConn(img, res.Labels, bitmap.Conn8); err != nil {
			t.Fatalf("%s/conn8: %v", name, err)
		}
	}
}

// TestLabelLargeSchedule pins the composed sequential schedule model:
// per-phase makespans of the composed report equal the sum of the
// per-strip phases, N is the array width, and the seam phases come
// last — "seam-merge" alone under SeamHost, then "seam-broadcast" and
// "seam-rewrite" under the default distributed relabel.
func TestLabelLargeSchedule(t *testing.T) {
	img := bitmap.Random(40, 0.5, 99)
	const aw = 16 // strips of 16, 16, 8

	// Strip runs are plain runs over the views; their phase makespans
	// must sum to the composed ones.
	var sum int64
	for _, x0 := range []int{0, 16, 32} {
		sw := 16
		if x0 == 32 {
			sw = 8
		}
		sub := img.SubImage(x0, 0, sw, img.H())
		r := mustLabel(t, sub, Options{})
		sum += r.Metrics.Time
	}

	res := mustLabelLarge(t, img, Options{ArrayWidth: aw, Seam: SeamHost})
	if res.Metrics.N != aw {
		t.Errorf("composed N = %d, want the array width %d", res.Metrics.N, aw)
	}
	last := res.Metrics.Phases[len(res.Metrics.Phases)-1]
	if last.Name != "seam-merge" {
		t.Fatalf("last composed phase is %q, want seam-merge under SeamHost", last.Name)
	}
	if last.Makespan <= 0 || last.Sends != int64(2*img.H()*2) {
		t.Errorf("seam-merge phase %+v: want positive makespan and 2h sends per seam (2 seams)", last)
	}
	if got := res.Metrics.Time - last.Makespan; got != sum {
		t.Errorf("composed strip time %d, want Σ strip makespans %d", got, sum)
	}

	// Distributed relabel (the default): the remap broadcast and per-PE
	// rewrite are their own array phases after seam-merge, and the strip
	// portion of the composed time is unchanged.
	dist := mustLabelLarge(t, img, Options{ArrayWidth: aw})
	n := len(dist.Metrics.Phases)
	names := []string{dist.Metrics.Phases[n-3].Name, dist.Metrics.Phases[n-2].Name, dist.Metrics.Phases[n-1].Name}
	if names[0] != "seam-merge" || names[1] != "seam-broadcast" || names[2] != "seam-rewrite" {
		t.Fatalf("trailing composed phases are %v, want [seam-merge seam-broadcast seam-rewrite]", names)
	}
	var seamTime int64
	for _, p := range dist.Metrics.Phases[n-3:] {
		seamTime += p.Makespan
	}
	if got := dist.Metrics.Time - seamTime; got != sum {
		t.Errorf("distributed: composed strip time %d, want Σ strip makespans %d", got, sum)
	}
	if !dist.Labels.Equal(res.Labels) {
		t.Error("seam model changed the labeling")
	}
	if dist.UF != res.UF {
		t.Errorf("seam model changed the UF report:\nhost %+v\ndist %+v", res.UF, dist.UF)
	}
}

// TestLabelLargePipelinedSchedule pins the pipelined schedule model:
// work totals (per-phase makespans, traffic) are identical to the
// sequential composition; only the composed Time shrinks, by at most
// the later strips' input makespans plus the overlapped seam offload.
func TestLabelLargePipelinedSchedule(t *testing.T) {
	img := bitmap.Random(48, 0.5, 7)
	const aw = 16
	seq := mustLabelLarge(t, img, Options{ArrayWidth: aw})
	pipe := mustLabelLarge(t, img, Options{ArrayWidth: aw, Schedule: SchedulePipelined})
	if !pipe.Labels.Equal(seq.Labels) {
		t.Fatal("schedule model changed the labeling")
	}
	if pipe.UF != seq.UF {
		t.Errorf("schedule model changed the UF report")
	}
	if len(pipe.Metrics.Phases) != len(seq.Metrics.Phases) {
		t.Fatalf("phase count differs: %d vs %d", len(pipe.Metrics.Phases), len(seq.Metrics.Phases))
	}
	for i, ps := range seq.Metrics.Phases {
		pp := pipe.Metrics.Phases[i]
		if pp.Name != ps.Name || pp.Busy != ps.Busy || pp.Sends != ps.Sends || pp.Words != ps.Words {
			t.Errorf("phase %q: work totals differ between schedules: %+v vs %+v", ps.Name, pp, ps)
		}
		if pp.Name != "seam-merge" && pp.Makespan != ps.Makespan {
			t.Errorf("phase %q: makespan differs between schedules (only seam-merge's may)", ps.Name)
		}
	}
	if pipe.Metrics.Sends != seq.Metrics.Sends || pipe.Metrics.Words != seq.Metrics.Words {
		t.Error("schedule model changed the traffic totals")
	}
	if pipe.Metrics.Time >= seq.Metrics.Time {
		t.Errorf("pipelined Time %d not below sequential %d", pipe.Metrics.Time, seq.Metrics.Time)
	}
	// The input saving is bounded by the later strips' input makespans;
	// the offload saving by the overlapped boundary columns.
	input, ok := seq.Metrics.Phase("input")
	if !ok {
		t.Fatal("no input phase")
	}
	seamSeq, _ := seq.Metrics.Phase("seam-merge")
	seamPipe, _ := pipe.Metrics.Phase("seam-merge")
	maxSaving := input.Makespan + (seamSeq.Makespan - seamPipe.Makespan)
	if saving := seq.Metrics.Time - pipe.Metrics.Time; saving > maxSaving {
		t.Errorf("pipelined saving %d exceeds the model bound %d", saving, maxSaving)
	}

	// SkipInput leaves nothing to overlap but the seam offload.
	seqNoIn := mustLabelLarge(t, img, Options{ArrayWidth: aw, SkipInput: true})
	pipeNoIn := mustLabelLarge(t, img, Options{ArrayWidth: aw, SkipInput: true, Schedule: SchedulePipelined})
	seamSeqNI, _ := seqNoIn.Metrics.Phase("seam-merge")
	seamPipeNI, _ := pipeNoIn.Metrics.Phase("seam-merge")
	if got, want := seqNoIn.Metrics.Time-pipeNoIn.Metrics.Time, seamSeqNI.Makespan-seamPipeNI.Makespan; got != want {
		t.Errorf("SkipInput pipelined saving %d, want exactly the seam offload overlap %d", got, want)
	}
}

// TestLabelLargeDeterministicAcrossModes: repeated runs, warm-labeler
// runs, and pool-fanned runs must agree bit for bit — labels, composed
// metrics, UF report, speculation. The strip schedule model is
// sequential no matter how the host executes it.
func TestLabelLargeDeterministicAcrossModes(t *testing.T) {
	img := bitmap.RandomRect(90, 37, 0.5, 4242)
	base := Options{ArrayWidth: 13, Connectivity: bitmap.Conn8, Speculate: true}
	first := mustLabelLarge(t, img, base)
	if err := seqcc.CheckConn(img, first.Labels, bitmap.Conn8); err != nil {
		t.Fatal(err)
	}
	warm := NewLabeler(base)
	warm.Label(bitmap.Random(21, 0.4, 5)) // dirty the arenas first
	cases := map[string]func() (*Result, error){
		"repeat": func() (*Result, error) { return LabelLarge(img, base) },
		"warm":   func() (*Result, error) { return warm.LabelLarge(img) },
		"pool3": func() (*Result, error) {
			opt := base
			opt.StripWorkers = 3
			return LabelLarge(img, opt)
		},
		"pool16": func() (*Result, error) {
			opt := base
			opt.StripWorkers = 16
			return LabelLarge(img, opt)
		},
	}
	for name, run := range cases {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Labels.Equal(first.Labels) {
			t.Errorf("%s: labels diverged", name)
		}
		if !metricsIdentical(t, first, res) {
			t.Errorf("%s: composed metrics diverged:\nfirst %+v\ngot   %+v", name, first.Metrics, res.Metrics)
		}
	}
}

// TestLabelLargeArrayWidthZeroIsLabel: ArrayWidth 0 (and any width at
// least the image's) must stay bit-identical to the plain path —
// the whole-image array of every run before strip-mining existed.
func TestLabelLargeArrayWidthZeroIsLabel(t *testing.T) {
	img := bitmap.Random(33, 0.5, 7)
	plain := mustLabel(t, img, Options{})
	for _, aw := range []int{0, 33, 100} {
		res := mustLabelLarge(t, img, Options{ArrayWidth: aw})
		if !res.Labels.Equal(plain.Labels) || !metricsIdentical(t, plain, res) {
			t.Errorf("aw=%d: diverged from the plain whole-image run", aw)
		}
	}
}

// TestLabelLargeRejectsBadOptions: negative tiling options and unknown
// seam/schedule models are configuration errors.
func TestLabelLargeRejectsBadOptions(t *testing.T) {
	img := bitmap.Random(16, 0.5, 1)
	if _, err := Label(img, Options{ArrayWidth: -1}); err == nil {
		t.Error("negative ArrayWidth accepted")
	}
	if _, err := Label(img, Options{StripWorkers: -2}); err == nil {
		t.Error("negative StripWorkers accepted")
	}
	if _, err := LabelLarge(img, Options{ArrayWidth: 4, StripWorkers: -1}); err == nil {
		t.Error("negative StripWorkers accepted on the strip path")
	}
	if _, err := Label(img, Options{Seam: "telepathy"}); err == nil {
		t.Error("unknown seam model accepted")
	}
	if _, err := LabelLarge(img, Options{ArrayWidth: 4, Schedule: "asap"}); err == nil {
		t.Error("unknown schedule model accepted")
	}
	if _, err := Aggregate(img, Ones(img), Monoid{Name: "broken"}, Options{ArrayWidth: 4}); err == nil {
		t.Error("monoid without Combine accepted on the strip path")
	}
	if _, err := AggregateLarge(img, Ones(img)[:3], Sum(), Options{ArrayWidth: 4}); err == nil {
		t.Error("short initial slice accepted on the strip path")
	}
}

// TestGoldenLargeStepCounts pins the composed accounting of the
// strip-mined path for two family/ArrayWidth pairs under every
// seam-relabel × schedule model combination, exactly as
// TestGoldenStepCounts pins the whole-image accounting. The SeamHost ×
// ScheduleSequential rows are the original strip-mining model and must
// never drift (they pin "the sequential model is unchanged bit for
// bit"); the others pin the distributed relabel and the pipelined
// schedule. Update deliberately when a schedule model or the cost
// accounting changes.
func TestGoldenLargeStepCounts(t *testing.T) {
	cases := []struct {
		name string
		img  *bitmap.Bitmap
		opt  Options
		want int64
	}{
		{"checker64-aw16-host-seq", bitmap.Checker(64), Options{ArrayWidth: 16, Seam: SeamHost}, goldenLargeChecker64AW16HostSeq},
		{"serp64-aw32-host-seq", bitmap.HSerpentine(64), Options{ArrayWidth: 32, Seam: SeamHost}, goldenLargeSerp64AW32HostSeq},
		{"checker64-aw16-dist-seq", bitmap.Checker(64), Options{ArrayWidth: 16}, goldenLargeChecker64AW16DistSeq},
		{"serp64-aw32-dist-seq", bitmap.HSerpentine(64), Options{ArrayWidth: 32}, goldenLargeSerp64AW32DistSeq},
		{"checker64-aw16-dist-pipe", bitmap.Checker(64), Options{ArrayWidth: 16, Schedule: SchedulePipelined}, goldenLargeChecker64AW16DistPipe},
		{"serp64-aw32-dist-pipe", bitmap.HSerpentine(64), Options{ArrayWidth: 32, Schedule: SchedulePipelined}, goldenLargeSerp64AW32DistPipe},
	}
	for _, tc := range cases {
		res, err := LabelLarge(tc.img, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Metrics.Time != tc.want {
			t.Errorf("%s: composed simulated time changed: got %d, golden %d — if intentional, update tiler_test.go",
				tc.name, res.Metrics.Time, tc.want)
		}
	}
}

// Golden values; see TestGoldenLargeStepCounts. The host-seq constants
// predate the distributed relabel (PR 3) and are pinned unchanged.
const (
	goldenLargeChecker64AW16HostSeq  = 6024
	goldenLargeSerp64AW32HostSeq     = 7457
	goldenLargeChecker64AW16DistSeq  = 6039
	goldenLargeSerp64AW32DistSeq     = 5787
	goldenLargeChecker64AW16DistPipe = 5527
	goldenLargeSerp64AW32DistPipe    = 5659
)

// TestGoldenAggregateLargeStepCounts pins the strip-mined aggregation's
// composed accounting the same way.
func TestGoldenAggregateLargeStepCounts(t *testing.T) {
	img := bitmap.Checker(64)
	res, err := AggregateLarge(img, Ones(img), Sum(), Options{ArrayWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Time != goldenAggChecker64AW16DistSeq {
		t.Errorf("agg checker64-aw16 dist-seq: got %d, golden %d — if intentional, update tiler_test.go",
			res.Metrics.Time, goldenAggChecker64AW16DistSeq)
	}
	img2 := bitmap.HSerpentine(64)
	res2, err := AggregateLarge(img2, Ones(img2), Sum(), Options{ArrayWidth: 32, Schedule: SchedulePipelined})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.Time != goldenAggSerp64AW32DistPipe {
		t.Errorf("agg serp64-aw32 dist-pipe: got %d, golden %d — if intentional, update tiler_test.go",
			res2.Metrics.Time, goldenAggSerp64AW32DistPipe)
	}
}

// Golden values; see TestGoldenAggregateLargeStepCounts.
const (
	goldenAggChecker64AW16DistSeq = 7183
	goldenAggSerp64AW32DistPipe   = 6831
)

// aggEqual compares two aggregation results bit for bit (labels and
// per-pixel folds).
func aggEqual(a, b *AggregateResult) bool {
	if !a.Labels.Equal(b.Labels) || len(a.PerPixel) != len(b.PerPixel) {
		return false
	}
	for i := range a.PerPixel {
		if a.PerPixel[i] != b.PerPixel[i] {
			return false
		}
	}
	return true
}

// TestAggregateLargeMatchesWholeImage sweeps families × monoids × array
// widths × connectivities: the strip-mined aggregation must be
// bit-identical — labels and per-pixel folds — to the whole-image run.
// ArrayWidth 1 is the stress extreme; positions-initial Min reproduces
// the canonical labels, Sum computes areas (non-idempotent, so each
// strip piece must be combined exactly once).
func TestAggregateLargeMatchesWholeImage(t *testing.T) {
	const n = 48
	ops := []struct {
		op        Monoid
		positions bool
	}{
		{Sum(), false},
		{Min(), true},
		{Max(), true},
	}
	for _, conn := range []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8} {
		for _, fam := range bitmap.Families() {
			img := fam.Generate(n)
			for oi, tc := range ops {
				initial := Ones(img)
				if tc.positions {
					for i := range initial {
						initial[i] = int32(i)
					}
				}
				whole, err := Aggregate(img, initial, tc.op, Options{Connectivity: conn})
				if err != nil {
					t.Fatalf("%s/conn%d/%s: whole: %v", fam.Name, conn, tc.op.Name, err)
				}
				for _, aw := range []int{1, 7, 16, 48} {
					if oi > 0 && aw != 7 {
						continue // Min/Max ride one width; Sum sweeps all
					}
					res, err := AggregateLarge(img, initial, tc.op, Options{Connectivity: conn, ArrayWidth: aw})
					if err != nil {
						t.Fatalf("%s/conn%d/%s/aw%d: %v", fam.Name, conn, tc.op.Name, aw, err)
					}
					if !aggEqual(whole, res) {
						t.Errorf("%s/conn%d/%s/aw%d: strip-mined aggregation diverged from whole-image run",
							fam.Name, conn, tc.op.Name, aw)
					}
				}
			}
		}
	}
}

// TestAggregateLargeNonSquareFuzz aggregates fuzzed non-square images
// through the tiler: random shapes, widths, monoids, connectivities,
// seam and schedule models — always bit-identical to the whole-image
// run.
func TestAggregateLargeNonSquareFuzz(t *testing.T) {
	rng := bitmap.NewRNG(0x5EAB)
	monoids := []Monoid{Sum(), Min(), Max(), Or()}
	for trial := 0; trial < 40; trial++ {
		w := 1 + rng.Intn(97)
		h := 1 + rng.Intn(53)
		density := 0.15 + 0.7*rng.Float64()
		img := bitmap.RandomRect(w, h, density, rng.Uint64())
		aw := 1 + rng.Intn(w)
		conn := bitmap.Conn4
		if trial%2 == 1 {
			conn = bitmap.Conn8
		}
		op := monoids[trial%len(monoids)]
		initial := make([]int32, w*h)
		for i := range initial {
			initial[i] = int32(rng.Intn(1 << 16))
		}
		opt := Options{Connectivity: conn, ArrayWidth: aw}
		if trial%3 == 1 {
			opt.Seam = SeamHost
		}
		if trial%4 == 2 {
			opt.Schedule = SchedulePipelined
		}
		whole, err := Aggregate(img, initial, op, Options{Connectivity: conn})
		if err != nil {
			t.Fatalf("trial %d: whole: %v", trial, err)
		}
		res, err := AggregateLarge(img, initial, op, opt)
		if err != nil {
			t.Fatalf("trial %d (%dx%d aw=%d conn%d %s): %v", trial, w, h, aw, conn, op.Name, err)
		}
		if !aggEqual(whole, res) {
			t.Errorf("trial %d (%dx%d aw=%d conn%d %s seam=%q sched=%q): diverged",
				trial, w, h, aw, conn, op.Name, opt.Seam, opt.Schedule)
		}
	}
}

// TestAggregateLargeHuge is the production-scale check the acceptance
// criteria name: every built-in family at 2048×2048 on a 256-wide
// array, bit-identical to the whole-image aggregation.
func TestAggregateLargeHuge(t *testing.T) {
	if testing.Short() {
		t.Skip("2048×2048 family sweep skipped in -short mode")
	}
	const n, aw = 2048, 256
	lab := NewLabeler(Options{ArrayWidth: aw})
	wholeLab := NewLabeler(Options{})
	for _, fam := range bitmap.Families() {
		img := fam.Generate(n)
		initial := Ones(img)
		whole, err := wholeLab.Aggregate(img, initial, Sum())
		if err != nil {
			t.Fatalf("%s: whole: %v", fam.Name, err)
		}
		res, err := lab.AggregateLarge(img, initial, Sum())
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		if !aggEqual(whole, res) {
			t.Errorf("%s: 2048×2048 strip-mined aggregation diverged", fam.Name)
		}
	}
}

// TestAggregateLargeDeterministicAcrossModes: repeated, warm, and
// pool-fanned strip-mined aggregations agree bit for bit — per-pixel
// folds, labels, composed metrics, UF report.
func TestAggregateLargeDeterministicAcrossModes(t *testing.T) {
	img := bitmap.RandomRect(90, 37, 0.5, 4242)
	initial := Ones(img)
	base := Options{ArrayWidth: 13, Connectivity: bitmap.Conn8}
	first, err := AggregateLarge(img, initial, Sum(), base)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewLabeler(base)
	warm.Label(bitmap.Random(21, 0.4, 5)) // dirty the arenas first
	cases := map[string]func() (*AggregateResult, error){
		"repeat": func() (*AggregateResult, error) { return AggregateLarge(img, initial, Sum(), base) },
		"warm":   func() (*AggregateResult, error) { return warm.AggregateLarge(img, initial, Sum()) },
		"pool3": func() (*AggregateResult, error) {
			opt := base
			opt.StripWorkers = 3
			return AggregateLarge(img, initial, Sum(), opt)
		},
	}
	for name, run := range cases {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !aggEqual(first, res) {
			t.Errorf("%s: results diverged", name)
		}
		if res.Metrics.Time != first.Metrics.Time || res.UF != first.UF {
			t.Errorf("%s: composed metrics diverged", name)
		}
	}
}

// TestSeamModelsAgreeOnResults: SeamHost vs SeamDistributed and
// sequential vs pipelined schedules may only change the charged phases,
// never the labeling, the per-pixel folds, or the union–find report.
func TestSeamModelsAgreeOnResults(t *testing.T) {
	img := bitmap.RandomRect(70, 41, 0.45, 31337)
	base := mustLabelLarge(t, img, Options{ArrayWidth: 24, Seam: SeamHost})
	for _, seam := range []SeamModel{SeamHost, SeamDistributed} {
		for _, sched := range []ScheduleModel{ScheduleSequential, SchedulePipelined} {
			res := mustLabelLarge(t, img, Options{ArrayWidth: 24, Seam: seam, Schedule: sched})
			if !res.Labels.Equal(base.Labels) {
				t.Errorf("seam=%s sched=%s: labeling diverged", seam, sched)
			}
			if res.UF != base.UF {
				t.Errorf("seam=%s sched=%s: UF report diverged", seam, sched)
			}
		}
	}
}
