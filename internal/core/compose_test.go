package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"slapcc/internal/bitmap"
)

// stripRunsFor labels each strip of img as an independent whole-image
// run over a *materialized* sub-image — exactly what a remote backend
// sees on the wire — and returns the StripRuns in strip order.
func stripRunsFor(t *testing.T, img *bitmap.Bitmap, opt Options) []StripRun {
	t.Helper()
	w, h := img.W(), img.H()
	aw := opt.ArrayWidth
	strips := (w + aw - 1) / aw
	stripOpt := opt
	stripOpt.ArrayWidth = 0
	stripOpt.StripWorkers = 0
	runs := make([]StripRun, strips)
	for s := 0; s < strips; s++ {
		x0, sw := stripSpan(w, aw, s)
		res := mustLabel(t, img.SubImage(x0, 0, sw, h), stripOpt)
		runs[s] = StripRun{Labels: res.Labels, Metrics: res.Metrics, UF: res.UF, Speculation: res.Speculation}
	}
	return runs
}

// TestComposeStripsMatchesLabelLarge is the cluster seam's contract:
// strips labeled independently over materialized sub-images (the wire
// shape) and stitched by ComposeStrips must reproduce LabelLarge
// bit-for-bit — labels, composed metrics under both schedule models,
// seam phases under both seam models, and the union–find report.
func TestComposeStripsMatchesLabelLarge(t *testing.T) {
	const n = 40
	for _, conn := range []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8} {
		for _, seam := range []SeamModel{SeamDistributed, SeamHost} {
			for _, sched := range []ScheduleModel{ScheduleSequential, SchedulePipelined} {
				for _, fam := range []string{"random50", "vserpentine", "spiral"} {
					f, ok := bitmap.FamilyByName(fam)
					if !ok {
						t.Fatalf("family %s missing", fam)
					}
					img := f.Generate(n)
					opt := Options{Connectivity: conn, Seam: seam, Schedule: sched, ArrayWidth: 16}
					want := mustLabelLarge(t, img, opt)
					got, err := ComposeStrips(img, stripRunsFor(t, img, opt), opt)
					if err != nil {
						t.Fatalf("%s/conn%d/%s/%s: ComposeStrips: %v", fam, conn, seam, sched, err)
					}
					if !got.Labels.Equal(want.Labels) {
						t.Errorf("%s/conn%d/%s/%s: composed labels diverged", fam, conn, seam, sched)
					}
					if !reflect.DeepEqual(got.Metrics, want.Metrics) {
						t.Errorf("%s/conn%d/%s/%s: composed metrics diverged:\n got %+v\nwant %+v",
							fam, conn, seam, sched, got.Metrics, want.Metrics)
					}
					if !reflect.DeepEqual(got.UF, want.UF) {
						t.Errorf("%s/conn%d/%s/%s: composed UF report diverged: got %+v want %+v",
							fam, conn, seam, sched, got.UF, want.UF)
					}
					if got.Speculation != want.Speculation {
						t.Errorf("%s/conn%d/%s/%s: speculation stats diverged", fam, conn, seam, sched)
					}
				}
			}
		}
	}
}

// TestComposeAggregateStripsMatchesAggregateLarge is the aggregation
// half of the same contract: per-strip Corollary-4 folds over
// materialized sub-images, composed, must equal AggregateLarge
// bit-for-bit.
func TestComposeAggregateStripsMatchesAggregateLarge(t *testing.T) {
	img := bitmap.Random(40, 0.5, 0xC0FFEE)
	w, h := img.W(), img.H()
	initial := Ones(img)
	for _, op := range []Monoid{Sum(), Min()} {
		for _, sched := range []ScheduleModel{ScheduleSequential, SchedulePipelined} {
			opt := Options{ArrayWidth: 16, Schedule: sched}
			want, err := AggregateLarge(img, initial, op, opt)
			if err != nil {
				t.Fatalf("AggregateLarge: %v", err)
			}
			aw := opt.ArrayWidth
			strips := (w + aw - 1) / aw
			stripOpt := opt
			stripOpt.ArrayWidth = 0
			runs := make([]StripRun, strips)
			for s := 0; s < strips; s++ {
				x0, sw := stripSpan(w, aw, s)
				res, err := Aggregate(img.SubImage(x0, 0, sw, h), initial[x0*h:(x0+sw)*h], op, stripOpt)
				if err != nil {
					t.Fatalf("strip %d: Aggregate: %v", s, err)
				}
				runs[s] = StripRun{Labels: res.Labels, Metrics: res.Metrics, UF: res.UF, PerPixel: res.PerPixel}
			}
			got, err := ComposeAggregateStrips(img, runs, op, opt)
			if err != nil {
				t.Fatalf("ComposeAggregateStrips: %v", err)
			}
			if !got.Labels.Equal(want.Labels) {
				t.Errorf("%s/%s: composed labels diverged", op.Name, sched)
			}
			if !reflect.DeepEqual(got.PerPixel, want.PerPixel) {
				t.Errorf("%s/%s: composed per-pixel folds diverged", op.Name, sched)
			}
			if !reflect.DeepEqual(got.Metrics, want.Metrics) {
				t.Errorf("%s/%s: composed metrics diverged", op.Name, sched)
			}
			if !reflect.DeepEqual(got.UF, want.UF) {
				t.Errorf("%s/%s: composed UF report diverged", op.Name, sched)
			}
		}
	}
}

// TestComposeStripsValidation pins the precondition errors: bad array
// width, wrong strip count, wrong strip dimensions, missing per-pixel
// folds on aggregation composes.
func TestComposeStripsValidation(t *testing.T) {
	img := bitmap.Random(20, 0.5, 7)
	opt := Options{ArrayWidth: 8}
	runs := stripRunsFor(t, img, opt)

	if _, err := ComposeStrips(img, runs, Options{ArrayWidth: 0}); err == nil {
		t.Error("ArrayWidth 0 accepted")
	}
	if _, err := ComposeStrips(img, runs, Options{ArrayWidth: 20}); err == nil {
		t.Error("ArrayWidth == image width accepted")
	}
	if _, err := ComposeStrips(img, runs[:2], opt); err == nil {
		t.Error("wrong strip count accepted")
	}
	bad := append([]StripRun(nil), runs...)
	bad[1].Labels = bitmap.NewLabelMap(3, 3)
	if _, err := ComposeStrips(img, bad, opt); err == nil {
		t.Error("wrong strip dimensions accepted")
	}
	bad = append([]StripRun(nil), runs...)
	bad[0].Labels = nil
	if _, err := ComposeStrips(img, bad, opt); err == nil {
		t.Error("nil strip labels accepted")
	}
	if _, err := ComposeAggregateStrips(img, runs, Sum(), opt); err == nil {
		t.Error("aggregation compose without per-pixel folds accepted")
	}
	if _, err := ComposeAggregateStrips(img, runs, Monoid{Name: "broken"}, opt); err == nil {
		t.Error("monoid without Combine accepted")
	}
}

// countdownCtx cancels itself after its Err method has been polled n
// times — a deterministic stand-in for "the client hung up mid-run".
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	if c.n > 0 {
		c.n--
		return nil
	}
	return context.Canceled
}

// TestLabelCtxCancelsBetweenStrips exercises the satellite contract: a
// strip-mined run polls its context between strips and stops early,
// returning an error that unwraps to context.Canceled. Poll budget 2 =
// the entry check plus strip 0's check, so the run dies before strip 1
// of 5.
func TestLabelCtxCancelsBetweenStrips(t *testing.T) {
	img := bitmap.Random(40, 0.5, 3)
	lb := NewLabeler(Options{ArrayWidth: 8})
	ctx := &countdownCtx{Context: context.Background(), n: 2}
	if _, err := lb.LabelCtx(ctx, img); !errors.Is(err, context.Canceled) {
		t.Fatalf("LabelCtx under mid-run cancellation: got %v, want context.Canceled", err)
	}
	// The labeler must shed the dead context: the same arenas label fine
	// on the next (uncancelled) run.
	if _, err := lb.Label(img); err != nil {
		t.Fatalf("Label after a cancelled run: %v", err)
	}

	// Aggregation path, same budget arithmetic.
	ctx = &countdownCtx{Context: context.Background(), n: 2}
	if _, err := lb.AggregateCtx(ctx, img, Ones(img), Sum()); !errors.Is(err, context.Canceled) {
		t.Fatalf("AggregateCtx under mid-run cancellation: got %v, want context.Canceled", err)
	}

	// Already-cancelled context: rejected on entry, before any work.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lb.LabelCtx(done, img); !errors.Is(err, context.Canceled) {
		t.Fatalf("LabelCtx with pre-cancelled ctx: got %v, want context.Canceled", err)
	}
}

// deadlineCtx is countdownCtx for deadlines: Err flips to
// DeadlineExceeded after n polls — "the request's time budget ran out
// mid-run".
type deadlineCtx struct {
	context.Context
	n int
}

func (c *deadlineCtx) Err() error {
	if c.n > 0 {
		c.n--
		return nil
	}
	return context.DeadlineExceeded
}

// TestLabelCtxDeadlineBetweenStrips: an expiring deadline budget stops
// a strip-mined run between strips exactly as a cancellation does, and
// the error unwraps to context.DeadlineExceeded — the distinction slapd
// uses to answer 504 (server out of time) instead of 499 (client hung
// up).
func TestLabelCtxDeadlineBetweenStrips(t *testing.T) {
	img := bitmap.Random(40, 0.5, 3)
	lb := NewLabeler(Options{ArrayWidth: 8})
	ctx := &deadlineCtx{Context: context.Background(), n: 2}
	_, err := lb.LabelCtx(ctx, img)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("LabelCtx under mid-run expiry: got %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("expiry error also claims context.Canceled")
	}
	// The labeler sheds the expired context and keeps working.
	if _, err := lb.Label(img); err != nil {
		t.Fatalf("Label after an expired run: %v", err)
	}

	ctx = &deadlineCtx{Context: context.Background(), n: 2}
	if _, err := lb.AggregateCtx(ctx, img, Ones(img), Sum()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AggregateCtx under mid-run expiry: got %v, want context.DeadlineExceeded", err)
	}
}

// TestPoolLabelWithCtx covers the pool front doors: a live context
// passes through to a normal run; a cancelled one aborts — in the
// worker wait or between strips — with a wrapped context error.
func TestPoolLabelWithCtx(t *testing.T) {
	img := bitmap.Random(24, 0.5, 9)
	pool := NewLabelerPool(Options{}, 1)
	opt := Options{ArrayWidth: 8}

	res, err := pool.LabelWithCtx(context.Background(), img, opt)
	if err != nil {
		t.Fatalf("LabelWithCtx: %v", err)
	}
	want := mustLabelLarge(t, img, opt)
	if !res.Labels.Equal(want.Labels) {
		t.Error("LabelWithCtx diverged from LabelLarge")
	}

	agg, err := pool.AggregateWithCtx(context.Background(), img, Ones(img), Sum(), opt)
	if err != nil {
		t.Fatalf("AggregateWithCtx: %v", err)
	}
	if agg.Labels == nil || len(agg.PerPixel) != img.W()*img.H() {
		t.Error("AggregateWithCtx returned a malformed result")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.LabelWithCtx(cancelled, img, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("LabelWithCtx with cancelled ctx: got %v, want context.Canceled", err)
	}
	if _, err := pool.AggregateWithCtx(cancelled, img, Ones(img), Sum(), opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("AggregateWithCtx with cancelled ctx: got %v, want context.Canceled", err)
	}
}
