package core

import (
	"testing"
	"testing/quick"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
	"slapcc/internal/unionfind"
)

func conn8(t *testing.T, img *bitmap.Bitmap, opt Options) *Result {
	t.Helper()
	opt.Connectivity = bitmap.Conn8
	res, err := Label(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConn8CheckerIsOneComponent(t *testing.T) {
	// The checkerboard is the canonical connectivity witness: n²/2
	// isolated pixels under Conn4, one single diagonally-woven component
	// under Conn8.
	img := bitmap.Checker(9)
	four := mustLabel(t, img, Options{})
	eight := conn8(t, img, Options{})
	if four.Labels.ComponentCount() != 41 {
		t.Fatalf("4-connected checker: want 41 components, got %d", four.Labels.ComponentCount())
	}
	if eight.Labels.ComponentCount() != 1 {
		t.Fatalf("8-connected checker: want 1 component, got %d\n%s",
			eight.Labels.ComponentCount(), eight.Labels)
	}
}

func TestConn8DiagonalLine(t *testing.T) {
	// A bare diagonal: disconnected dots under Conn4, one line under Conn8.
	img := bitmap.New(6, 6)
	for i := 0; i < 6; i++ {
		img.Set(i, i, true)
	}
	if got := mustLabel(t, img, Options{}).Labels.ComponentCount(); got != 6 {
		t.Fatalf("4-connected diagonal: want 6, got %d", got)
	}
	if got := conn8(t, img, Options{}).Labels.ComponentCount(); got != 1 {
		t.Fatalf("8-connected diagonal: want 1, got %d", got)
	}
}

func TestConn8BridgePixel(t *testing.T) {
	// One pixel whose three next-column neighbors are pairwise
	// unconnected except through it: the case that forces the
	// pixel-level bridge records.
	img := bitmap.MustParse(`
.#
##
.#
`)
	res := conn8(t, img, Options{})
	if err := seqcc.CheckConn(img, res.Labels, bitmap.Conn8); err != nil {
		t.Fatalf("bridge case: %v\n%s", err, res.Labels)
	}
	if res.Labels.ComponentCount() != 1 {
		t.Fatalf("want 1 component, got %d", res.Labels.ComponentCount())
	}
}

func TestConn8AllFamilies(t *testing.T) {
	for _, fam := range bitmap.Families() {
		img := fam.Generate(19)
		res := conn8(t, img, Options{})
		if err := seqcc.CheckConn(img, res.Labels, bitmap.Conn8); err != nil {
			t.Errorf("%s: %v", fam.Name, err)
		}
	}
}

func TestConn8WithAllOptions(t *testing.T) {
	img := bitmap.Random(21, 0.45, 31)
	want := seqcc.BFSConn(img, bitmap.Conn8)
	for _, kind := range unionfind.Kinds() {
		for _, spec := range []bool{false, true} {
			res := conn8(t, img, Options{UF: kind, Speculate: spec, IdleCompression: true, Parallel: spec})
			if !res.Labels.Equal(want) {
				t.Errorf("uf=%s spec=%v: wrong 8-connected labeling", kind, spec)
			}
		}
	}
}

// TestConn8ExhaustiveTiny sweeps every binary image at small shapes — the
// diagonal adjacency cases are exactly where hand reasoning goes wrong.
func TestConn8ExhaustiveTiny(t *testing.T) {
	shapes := [][2]int{{1, 4}, {4, 1}, {2, 3}, {3, 3}}
	if !testing.Short() {
		shapes = append(shapes, [2]int{4, 4}, [2]int{2, 5})
	}
	for _, wh := range shapes {
		w, h := wh[0], wh[1]
		cells := w * h
		for mask := 0; mask < 1<<uint(cells); mask++ {
			img := bitmap.New(w, h)
			for i := 0; i < cells; i++ {
				if mask&(1<<uint(i)) != 0 {
					img.Set(i%w, i/w, true)
				}
			}
			res, err := Label(img, Options{Connectivity: bitmap.Conn8, SkipInput: true})
			if err != nil {
				t.Fatalf("%dx%d mask %b: %v", w, h, mask, err)
			}
			if err := seqcc.CheckConn(img, res.Labels, bitmap.Conn8); err != nil {
				t.Fatalf("%dx%d mask %b: %v\n%s", w, h, mask, err, img)
			}
		}
	}
}

func TestConn8Aggregate(t *testing.T) {
	img := bitmap.Checker(11) // one big component under Conn8
	opt := Options{Connectivity: bitmap.Conn8}
	res, err := Aggregate(img, Ones(img), Sum(), opt)
	if err != nil {
		t.Fatal(err)
	}
	want := int32(img.CountOnes())
	for x := 0; x < 11; x++ {
		for y := 0; y < 11; y++ {
			if !img.Get(x, y) {
				continue
			}
			if got := res.PerPixel[x*11+y]; got != want {
				t.Fatalf("pixel (%d,%d): area %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestInvalidConnectivityRejected(t *testing.T) {
	if _, err := Label(bitmap.Empty(4), Options{Connectivity: 5}); err == nil {
		t.Fatal("want error for invalid connectivity")
	}
}

// Property: 8-connected labeling equals the 8-connected ground truth on
// random images; 8-connected component counts never exceed 4-connected.
func TestConn8Quick(t *testing.T) {
	f := func(seed uint32, np, dp uint8) bool {
		n := int(np%22) + 1
		img := bitmap.Random(n, float64(dp%11)/10, uint64(seed))
		res, err := Label(img, Options{Connectivity: bitmap.Conn8})
		if err != nil {
			return false
		}
		if seqcc.CheckConn(img, res.Labels, bitmap.Conn8) != nil {
			return false
		}
		four, err := Label(img, Options{})
		if err != nil {
			return false
		}
		return res.Labels.ComponentCount() <= four.Labels.ComponentCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
