package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"slapcc/internal/bitmap"
)

func streamFrames(n, count int) []*bitmap.Bitmap {
	frames := make([]*bitmap.Bitmap, count)
	for i := range frames {
		frames[i] = bitmap.Random(n, 0.5, uint64(i+1))
	}
	return frames
}

// TestLabelStreamOrderingAndEquivalence: results arrive in submission
// order, one per frame, and each is bit-identical to a plain Label of
// the same frame — for the synchronous single-worker stream and for
// fan-out streams wider than the host.
func TestLabelStreamOrderingAndEquivalence(t *testing.T) {
	const n, count = 31, 24
	frames := streamFrames(n, count)
	want := make([]*Result, count)
	for i, img := range frames {
		want[i] = mustLabel(t, img, Options{})
	}
	for _, workers := range []int{1, 2, 4, 7} {
		var got []StreamResult
		s := NewLabelStream(Options{}, workers, func(r StreamResult) {
			got = append(got, r)
		})
		if s.Workers() != workers {
			t.Fatalf("workers=%d: stream reports %d", workers, s.Workers())
		}
		for _, img := range frames {
			s.Submit(img)
		}
		s.Close()
		if len(got) != count {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), count)
		}
		for i, r := range got {
			if r.Frame != i {
				t.Fatalf("workers=%d: result %d carries frame %d (out of order)", workers, i, r.Frame)
			}
			if r.Err != nil {
				t.Fatalf("workers=%d frame %d: %v", workers, i, r.Err)
			}
			if !r.Result.Labels.Equal(want[i].Labels) {
				t.Errorf("workers=%d frame %d: labels diverged from one-shot Label", workers, i)
			}
			if r.Result.Metrics.Time != want[i].Metrics.Time ||
				r.Result.Metrics.Sends != want[i].Metrics.Sends ||
				r.Result.UF != want[i].UF {
				t.Errorf("workers=%d frame %d: metrics diverged from one-shot Label", workers, i)
			}
		}
	}
}

// TestLabelStreamSingleWorkerIsSynchronous: with one worker the sink
// runs inside Submit, before it returns — the single-labeler delegate
// with no goroutine hand-off.
func TestLabelStreamSingleWorkerIsSynchronous(t *testing.T) {
	img := bitmap.Random(16, 0.5, 9)
	delivered := false
	s := NewLabelStream(Options{}, 1, func(r StreamResult) { delivered = true })
	s.Submit(img)
	if !delivered {
		t.Fatal("single-worker Submit returned before the sink ran")
	}
	s.Close()
}

// TestLabelStreamError: a configuration error reaches the sink as a
// per-frame StreamResult.Err, in order, without wedging the stream.
func TestLabelStreamError(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var errs, oks int
		s := NewLabelStream(Options{UF: "no-such-kind"}, workers, func(r StreamResult) {
			if r.Err != nil {
				errs++
			} else {
				oks++
			}
		})
		for i := 0; i < 5; i++ {
			s.Submit(bitmap.Random(8, 0.5, uint64(i)))
		}
		s.Close()
		if errs != 5 || oks != 0 {
			t.Fatalf("workers=%d: %d errors, %d successes; want 5, 0", workers, errs, oks)
		}
	}
}

// TestLabelStreamCloseIdempotent: Close twice is fine; Submit after
// Close panics.
func TestLabelStreamCloseIdempotent(t *testing.T) {
	s := NewLabelStream(Options{}, 2, func(StreamResult) {})
	s.Submit(bitmap.Random(8, 0.5, 1))
	s.Close()
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close did not panic")
		}
	}()
	s.Submit(bitmap.Random(8, 0.5, 2))
}

// TestLabelerPoolConcurrent hammers one pool from many goroutines (the
// race detector patrols the arena sharing) and checks every result
// against the sequential ground truth labeling.
func TestLabelerPoolConcurrent(t *testing.T) {
	const workers, calls = 4, 32
	pool := NewLabelerPool(Options{}, workers)
	if pool.Workers() != workers {
		t.Fatalf("pool reports %d workers", pool.Workers())
	}
	frames := streamFrames(23, calls)
	want := make([]*Result, calls)
	for i, img := range frames {
		want[i] = mustLabel(t, img, Options{})
	}
	var failures atomic.Int64
	done := make(chan struct{})
	for g := 0; g < workers*2; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := g; i < calls; i += workers * 2 {
				res, err := pool.Label(frames[i])
				if err != nil || !res.Labels.Equal(want[i].Labels) {
					failures.Add(1)
				}
			}
		}(g)
	}
	for g := 0; g < workers*2; g++ {
		<-done
	}
	if failures.Load() != 0 {
		t.Fatalf("%d concurrent pool calls diverged", failures.Load())
	}
}

// TestLabelStreamManyFrames pushes enough frames through a wide stream
// to exercise backpressure and the collector's reordering window.
func TestLabelStreamManyFrames(t *testing.T) {
	const count = 200
	expect := 0
	s := NewLabelStream(Options{}, 8, func(r StreamResult) {
		if r.Frame != expect {
			t.Errorf("frame %d delivered at position %d", r.Frame, expect)
		}
		expect++
	})
	for i := 0; i < count; i++ {
		s.Submit(bitmap.Random(9+i%7, 0.4, uint64(i)))
	}
	s.Close()
	if expect != count {
		t.Fatalf("delivered %d frames, want %d", expect, count)
	}
}

func ExampleLabelStream() {
	imgs := []*bitmap.Bitmap{
		bitmap.MustParse("##\n.#"),
		bitmap.MustParse("#.\n.#"),
	}
	s := NewLabelStream(Options{}, 2, func(r StreamResult) {
		fmt.Printf("frame %d: %d components\n", r.Frame, r.Result.Labels.ComponentCount())
	})
	for _, img := range imgs {
		s.Submit(img)
	}
	s.Close()
	// Output:
	// frame 0: 1 components
	// frame 1: 2 components
}

// TestLabelerPoolPanicKeepsCapacity: a panicking labeler must not shrink
// the pool. The panic propagates to the caller, but the worker slot is
// refilled (with a fresh labeler, since the panicked one's arenas may be
// mid-run corrupt): afterwards the pool still holds Workers() usable
// frames of capacity, every one of them able to label.
func TestLabelerPoolPanicKeepsCapacity(t *testing.T) {
	const workers = 3
	p := NewLabelerPool(Options{}, workers)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Label(nil) did not panic")
			}
		}()
		p.Label(nil) // nil image: panics inside the worker's Label
	}()

	// Every slot must still be present and usable: check out all
	// Workers() labelers without blocking, exercise each, return them.
	img := bitmap.Random(12, 0.5, 9)
	want := mustLabel(t, img, Options{})
	var held []*Labeler
	for i := 0; i < workers; i++ {
		select {
		case lb := <-p.free:
			held = append(held, lb)
		default:
			t.Fatalf("pool lost a worker: only %d of %d free after the panic", i, workers)
		}
	}
	for i, lb := range held {
		res, err := lb.Label(img)
		if err != nil {
			t.Fatalf("worker %d unusable after panic recovery: %v", i, err)
		}
		if !res.Labels.Equal(want.Labels) {
			t.Fatalf("worker %d mislabels after panic recovery", i)
		}
	}
	for _, lb := range held {
		p.free <- lb
	}
	if got, err := p.Label(img); err != nil || !got.Labels.Equal(want.Labels) {
		t.Fatalf("pool unusable after refill: %v", err)
	}
}
