package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"slapcc/internal/bitmap"
)

func streamFrames(n, count int) []*bitmap.Bitmap {
	frames := make([]*bitmap.Bitmap, count)
	for i := range frames {
		frames[i] = bitmap.Random(n, 0.5, uint64(i+1))
	}
	return frames
}

// TestLabelStreamOrderingAndEquivalence: results arrive in submission
// order, one per frame, and each is bit-identical to a plain Label of
// the same frame — for the synchronous single-worker stream and for
// fan-out streams wider than the host.
func TestLabelStreamOrderingAndEquivalence(t *testing.T) {
	const n, count = 31, 24
	frames := streamFrames(n, count)
	want := make([]*Result, count)
	for i, img := range frames {
		want[i] = mustLabel(t, img, Options{})
	}
	for _, workers := range []int{1, 2, 4, 7} {
		var got []StreamResult
		s := NewLabelStream(Options{}, workers, func(r StreamResult) {
			got = append(got, r)
		})
		if s.Workers() != workers {
			t.Fatalf("workers=%d: stream reports %d", workers, s.Workers())
		}
		for _, img := range frames {
			s.Submit(img)
		}
		s.Close()
		if len(got) != count {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), count)
		}
		for i, r := range got {
			if r.Frame != i {
				t.Fatalf("workers=%d: result %d carries frame %d (out of order)", workers, i, r.Frame)
			}
			if r.Err != nil {
				t.Fatalf("workers=%d frame %d: %v", workers, i, r.Err)
			}
			if !r.Result.Labels.Equal(want[i].Labels) {
				t.Errorf("workers=%d frame %d: labels diverged from one-shot Label", workers, i)
			}
			if r.Result.Metrics.Time != want[i].Metrics.Time ||
				r.Result.Metrics.Sends != want[i].Metrics.Sends ||
				r.Result.UF != want[i].UF {
				t.Errorf("workers=%d frame %d: metrics diverged from one-shot Label", workers, i)
			}
		}
	}
}

// TestLabelStreamSingleWorkerIsSynchronous: with one worker the sink
// runs inside Submit, before it returns — the single-labeler delegate
// with no goroutine hand-off.
func TestLabelStreamSingleWorkerIsSynchronous(t *testing.T) {
	img := bitmap.Random(16, 0.5, 9)
	delivered := false
	s := NewLabelStream(Options{}, 1, func(r StreamResult) { delivered = true })
	s.Submit(img)
	if !delivered {
		t.Fatal("single-worker Submit returned before the sink ran")
	}
	s.Close()
}

// TestLabelStreamError: a configuration error reaches the sink as a
// per-frame StreamResult.Err, in order, without wedging the stream.
func TestLabelStreamError(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var errs, oks int
		s := NewLabelStream(Options{UF: "no-such-kind"}, workers, func(r StreamResult) {
			if r.Err != nil {
				errs++
			} else {
				oks++
			}
		})
		for i := 0; i < 5; i++ {
			s.Submit(bitmap.Random(8, 0.5, uint64(i)))
		}
		s.Close()
		if errs != 5 || oks != 0 {
			t.Fatalf("workers=%d: %d errors, %d successes; want 5, 0", workers, errs, oks)
		}
	}
}

// TestLabelStreamCloseIdempotent: Close twice is fine; Submit after
// Close panics.
func TestLabelStreamCloseIdempotent(t *testing.T) {
	s := NewLabelStream(Options{}, 2, func(StreamResult) {})
	s.Submit(bitmap.Random(8, 0.5, 1))
	s.Close()
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close did not panic")
		}
	}()
	s.Submit(bitmap.Random(8, 0.5, 2))
}

// TestLabelerPoolConcurrent hammers one pool from many goroutines (the
// race detector patrols the arena sharing) and checks every result
// against the sequential ground truth labeling.
func TestLabelerPoolConcurrent(t *testing.T) {
	const workers, calls = 4, 32
	pool := NewLabelerPool(Options{}, workers)
	if pool.Workers() != workers {
		t.Fatalf("pool reports %d workers", pool.Workers())
	}
	frames := streamFrames(23, calls)
	want := make([]*Result, calls)
	for i, img := range frames {
		want[i] = mustLabel(t, img, Options{})
	}
	var failures atomic.Int64
	done := make(chan struct{})
	for g := 0; g < workers*2; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := g; i < calls; i += workers * 2 {
				res, err := pool.Label(frames[i])
				if err != nil || !res.Labels.Equal(want[i].Labels) {
					failures.Add(1)
				}
			}
		}(g)
	}
	for g := 0; g < workers*2; g++ {
		<-done
	}
	if failures.Load() != 0 {
		t.Fatalf("%d concurrent pool calls diverged", failures.Load())
	}
}

// TestLabelStreamManyFrames pushes enough frames through a wide stream
// to exercise backpressure and the collector's reordering window.
func TestLabelStreamManyFrames(t *testing.T) {
	const count = 200
	expect := 0
	s := NewLabelStream(Options{}, 8, func(r StreamResult) {
		if r.Frame != expect {
			t.Errorf("frame %d delivered at position %d", r.Frame, expect)
		}
		expect++
	})
	for i := 0; i < count; i++ {
		s.Submit(bitmap.Random(9+i%7, 0.4, uint64(i)))
	}
	s.Close()
	if expect != count {
		t.Fatalf("delivered %d frames, want %d", expect, count)
	}
}

func ExampleLabelStream() {
	imgs := []*bitmap.Bitmap{
		bitmap.MustParse("##\n.#"),
		bitmap.MustParse("#.\n.#"),
	}
	s := NewLabelStream(Options{}, 2, func(r StreamResult) {
		fmt.Printf("frame %d: %d components\n", r.Frame, r.Result.Labels.ComponentCount())
	})
	for _, img := range imgs {
		s.Submit(img)
	}
	s.Close()
	// Output:
	// frame 0: 1 components
	// frame 1: 2 components
}

// TestLabelerPoolPanicKeepsCapacity: a panicking labeler must not shrink
// the pool. The panic propagates to the caller, but the worker slot is
// refilled (with a fresh labeler, since the panicked one's arenas may be
// mid-run corrupt): afterwards the pool still holds Workers() usable
// frames of capacity, every one of them able to label.
func TestLabelerPoolPanicKeepsCapacity(t *testing.T) {
	const workers = 3
	p := NewLabelerPool(Options{}, workers)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Label(nil) did not panic")
			}
		}()
		p.Label(nil) // nil image: panics inside the worker's Label
	}()

	// Every slot must still be present and usable: check out all
	// Workers() labelers without blocking, exercise each, return them.
	img := bitmap.Random(12, 0.5, 9)
	want := mustLabel(t, img, Options{})
	var held []*Labeler
	for i := 0; i < workers; i++ {
		select {
		case lb := <-p.free:
			held = append(held, lb)
		default:
			t.Fatalf("pool lost a worker: only %d of %d free after the panic", i, workers)
		}
	}
	for i, lb := range held {
		res, err := lb.Label(img)
		if err != nil {
			t.Fatalf("worker %d unusable after panic recovery: %v", i, err)
		}
		if !res.Labels.Equal(want.Labels) {
			t.Fatalf("worker %d mislabels after panic recovery", i)
		}
	}
	for _, lb := range held {
		p.free <- lb
	}
	if got, err := p.Label(img); err != nil || !got.Labels.Equal(want.Labels) {
		t.Fatalf("pool unusable after refill: %v", err)
	}
}

// TestLabelerPoolLabelWith: per-call options take effect for exactly
// that call — the worker reverts to the pool's options afterwards — and
// results match a one-shot Label under the same options.
func TestLabelerPoolLabelWith(t *testing.T) {
	img := bitmap.MustParse("#.#\n.#.\n#.#")
	pool := NewLabelerPool(Options{}, 1)

	conn8 := Options{Connectivity: bitmap.Conn8}
	want8 := mustLabel(t, img, conn8)
	got8, err := pool.LabelWith(img, conn8)
	if err != nil {
		t.Fatal(err)
	}
	if !got8.Labels.Equal(want8.Labels) || got8.Metrics.Time != want8.Metrics.Time {
		t.Fatal("LabelWith(conn8) diverged from one-shot Label")
	}

	want4 := mustLabel(t, img, Options{})
	got4, err := pool.Label(img)
	if err != nil {
		t.Fatal(err)
	}
	if !got4.Labels.Equal(want4.Labels) || got4.Metrics.Time != want4.Metrics.Time {
		t.Fatal("pool options did not revert after LabelWith")
	}

	// Strip-mined per-request options flow through to LabelLarge.
	big := bitmap.Random(48, 0.5, 3)
	wantL := mustLabel(t, big, Options{})
	gotL, err := pool.LabelWith(big, Options{ArrayWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !gotL.Labels.Equal(wantL.Labels) {
		t.Fatal("LabelWith(ArrayWidth) mislabels")
	}
	if gotL.Metrics.N != 16 {
		t.Fatalf("strip-mined run reports array width %d, want 16", gotL.Metrics.N)
	}
}

// TestLabelerPoolTryLabelWith: with every worker checked out TryLabelWith
// refuses immediately (ok=false, nothing labeled); once a worker is
// free it labels like LabelWith. The full/empty transition is exact for
// a 1-worker pool.
func TestLabelerPoolTryLabelWith(t *testing.T) {
	img := bitmap.Random(12, 0.5, 5)
	pool := NewLabelerPool(Options{}, 1)
	if pool.Idle() != 1 {
		t.Fatalf("fresh pool Idle() = %d, want 1", pool.Idle())
	}

	lb := <-pool.free // occupy the only worker
	if pool.Idle() != 0 {
		t.Fatalf("emptied pool Idle() = %d, want 0", pool.Idle())
	}
	if res, ok, err := pool.TryLabelWith(img, Options{}); ok || res != nil || err != nil {
		t.Fatalf("TryLabelWith on an empty pool = %v, %v, %v", res, ok, err)
	}
	pool.free <- lb

	want := mustLabel(t, img, Options{})
	res, ok, err := pool.TryLabelWith(img, Options{})
	if !ok || err != nil {
		t.Fatalf("TryLabelWith on a free pool = ok=%v, err=%v", ok, err)
	}
	if !res.Labels.Equal(want.Labels) {
		t.Fatal("TryLabelWith mislabels")
	}
	if pool.Idle() != 1 {
		t.Fatalf("pool Idle() = %d after TryLabelWith returned, want 1", pool.Idle())
	}
}

// TestLabelerPoolAggregateWith: per-call aggregation matches the
// one-shot Aggregate, and an error restores the worker and its options.
func TestLabelerPoolAggregateWith(t *testing.T) {
	img := bitmap.MustParse("##.\n.#.\n..#")
	pool := NewLabelerPool(Options{}, 1)
	want, err := Aggregate(img, Ones(img), Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.AggregateWith(img, Ones(img), Sum(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.PerPixel {
		if want.PerPixel[i] != got.PerPixel[i] {
			t.Fatalf("PerPixel[%d] = %d, want %d", i, got.PerPixel[i], want.PerPixel[i])
		}
	}

	// A strip-mined aggregate runs through AggregateLarge and matches the
	// whole-image fold; a bad call errors and the worker must come back
	// with the pool's own options intact.
	strip, err := pool.AggregateWith(img, Ones(img), Sum(), Options{ArrayWidth: 2})
	if err != nil {
		t.Fatalf("strip-mined AggregateWith: %v", err)
	}
	for i := range want.PerPixel {
		if want.PerPixel[i] != strip.PerPixel[i] {
			t.Fatalf("strip-mined PerPixel[%d] = %d, want %d", i, strip.PerPixel[i], want.PerPixel[i])
		}
	}
	if _, err := pool.AggregateWith(img, Ones(img), Monoid{Name: "broken"}, Options{}); err == nil {
		t.Fatal("monoid without Combine did not error")
	}
	if pool.Idle() != 1 {
		t.Fatalf("worker not returned after AggregateWith error: Idle() = %d", pool.Idle())
	}
	if res, err := pool.Label(img); err != nil || !res.Labels.Equal(mustLabel(t, img, Options{}).Labels) {
		t.Fatalf("pool unusable after AggregateWith error: %v", err)
	}
}

// TestLabelStreamTrySubmit walks the full/empty transition: with the
// sink gated shut the pipeline backs up until TrySubmit refuses; after
// the gate opens and the backlog drains, TrySubmit accepts again, and
// every accepted frame arrives exactly once, in order.
func TestLabelStreamTrySubmit(t *testing.T) {
	gate := make(chan struct{})
	delivered := make(chan int, 256)
	seen := 0
	s := NewLabelStream(Options{}, 2, func(r StreamResult) {
		<-gate
		if r.Frame != seen {
			t.Errorf("frame %d delivered at position %d", r.Frame, seen)
		}
		seen++
		delivered <- r.Frame
	})
	if s.QueueCap() != 2*s.Workers() {
		t.Fatalf("QueueCap() = %d, want %d", s.QueueCap(), 2*s.Workers())
	}

	img := bitmap.Random(8, 0.5, 1)
	accepted := 0
	refused := false
	for i := 0; i < 100; i++ {
		if s.TrySubmit(img) {
			accepted++
		} else {
			refused = true
			break
		}
	}
	if !refused {
		t.Fatal("TrySubmit never refused with the sink gated shut")
	}
	// The workers keep dequeuing while we look, so the depth may already
	// have dropped below the full mark that triggered the refusal; it can
	// never exceed the cap.
	if d := s.QueueDepth(); d > s.QueueCap() {
		t.Fatalf("QueueDepth() = %d exceeds QueueCap() %d", d, s.QueueCap())
	}

	close(gate) // drain the backlog
	for i := 0; i < accepted; i++ {
		<-delivered
	}
	if !s.TrySubmit(img) {
		t.Fatal("TrySubmit still refusing after the backlog drained")
	}
	accepted++
	s.Close()
	if seen != accepted {
		t.Fatalf("delivered %d frames, accepted %d", seen, accepted)
	}
}

// TestLabelStreamTrySubmitSingleWorker: the synchronous delegate never
// queues, so TrySubmit always accepts and delivers inline.
func TestLabelStreamTrySubmitSingleWorker(t *testing.T) {
	n := 0
	s := NewLabelStream(Options{}, 1, func(StreamResult) { n++ })
	if s.QueueDepth() != 0 || s.QueueCap() != 0 {
		t.Fatalf("single-worker queue accessors = %d/%d, want 0/0", s.QueueDepth(), s.QueueCap())
	}
	for i := 0; i < 5; i++ {
		if !s.TrySubmit(bitmap.Random(8, 0.5, uint64(i))) {
			t.Fatal("single-worker TrySubmit refused")
		}
	}
	if n != 5 {
		t.Fatalf("delivered %d frames inline, want 5", n)
	}
	s.Close()
}
