package imageio

import (
	"bytes"
	"image"
	"image/color"
	"image/png"
	"strings"
	"testing"

	"slapcc/internal/bitmap"
)

func testImage(t *testing.T) *bitmap.Bitmap {
	t.Helper()
	return bitmap.MustParse("##..#\n.#.#.\n#...#")
}

// TestRoundTripAllFormats: every concrete codec encodes and decodes back
// to the same pixels, both with the format named and via auto-sniffing.
func TestRoundTripAllFormats(t *testing.T) {
	img := testImage(t)
	for _, f := range Formats() {
		data, err := EncodeBytes(img, f)
		if err != nil {
			t.Fatalf("%s: encode: %v", f, err)
		}
		for _, decodeAs := range []Format{f, FormatAuto} {
			got, err := DecodeBytes(data, decodeAs, Limits{})
			if err != nil {
				t.Fatalf("%s as %s: decode: %v", f, decodeAs, err)
			}
			if !got.Equal(img) {
				t.Fatalf("%s as %s: round trip changed the image", f, decodeAs)
			}
		}
		if sniffed := Sniff(data); sniffed != f && !(f == FormatArt && sniffed == FormatArt) {
			t.Fatalf("%s: sniffed as %s", f, sniffed)
		}
	}
}

// TestParseFormat: names resolve case-insensitively, "" means auto, junk
// is rejected.
func TestParseFormat(t *testing.T) {
	for name, want := range map[string]Format{
		"png": FormatPNG, "PBM": FormatPBM, " art ": FormatArt,
		"raw": FormatRaw, "auto": FormatAuto, "": FormatAuto,
	} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %q, %v; want %q", name, got, err, want)
		}
	}
	if _, err := ParseFormat("jpeg"); err == nil || !strings.Contains(err.Error(), "jpeg") {
		t.Fatalf("ParseFormat(jpeg) = %v", err)
	}
}

// TestContentTypes: the MIME mapping round-trips for every concrete
// format and unknown types fall back to auto.
func TestContentTypes(t *testing.T) {
	for _, f := range Formats() {
		if got := FormatFromContentType(f.ContentType()); got != f {
			t.Fatalf("%s: content type %q maps back to %s", f, f.ContentType(), got)
		}
	}
	if got := FormatFromContentType("application/json"); got != FormatAuto {
		t.Fatalf("unknown content type maps to %s", got)
	}
	if got := FormatFromContentType("image/png; charset=binary"); got != FormatPNG {
		t.Fatalf("parameterized content type maps to %s", got)
	}
}

// TestPNGThreshold: dark pixels are foreground, light pixels and
// transparent pixels are background, for gray and RGBA sources alike.
func TestPNGThreshold(t *testing.T) {
	rgba := image.NewRGBA(image.Rect(0, 0, 3, 1))
	rgba.Set(0, 0, color.Black)
	rgba.Set(1, 0, color.White)
	rgba.Set(2, 0, color.RGBA{}) // fully transparent
	var buf bytes.Buffer
	if err := png.Encode(&buf, rgba); err != nil {
		t.Fatal(err)
	}
	img, err := DecodeBytes(buf.Bytes(), FormatAuto, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Get(0, 0) || img.Get(1, 0) || img.Get(2, 0) {
		t.Fatalf("threshold wrong: got %v %v %v", img.Get(0, 0), img.Get(1, 0), img.Get(2, 0))
	}

	gray := FromImage(ToImage(testImage(t)))
	if !gray.Equal(testImage(t)) {
		t.Fatal("gray fast path diverged from the threshold")
	}
}

// TestLimits: each codec rejects an over-limit image, and PNG and SLR1
// reject it from the header alone (the raster is never materialized —
// observable here only as the error arriving, but the code path is the
// header check).
func TestLimits(t *testing.T) {
	img := bitmap.Random(32, 0.5, 7)
	tight := Limits{MaxWidth: 16}
	loose := Limits{MaxPixels: 32 * 32}
	for _, f := range Formats() {
		data, err := EncodeBytes(img, f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if _, err := DecodeBytes(data, f, tight); err == nil || !strings.Contains(err.Error(), "limit") {
			t.Fatalf("%s: over-width decode: %v", f, err)
		}
		if _, err := DecodeBytes(data, f, loose); err != nil {
			t.Fatalf("%s: at-limit decode rejected: %v", f, err)
		}
	}
	if err := (Limits{MaxPixels: 100}).Check(11, 11); err == nil {
		t.Fatal("pixel limit not enforced")
	}
	if err := Unlimited().Check(1<<20, 1<<20); err != nil {
		t.Fatalf("Unlimited rejected: %v", err)
	}
}

// TestDecodeErrors: garbage input fails per codec with a useful error
// rather than panicking, including binary junk sniffed as art.
func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeBytes([]byte{0x00, 0x01, 0xfe}, FormatAuto, Limits{}); err == nil {
		t.Fatal("binary junk decoded")
	}
	if _, err := DecodeBytes([]byte("P1\n2 2\n1 1 1"), FormatPBM, Limits{}); err == nil {
		t.Fatal("truncated PBM decoded")
	}
	if _, err := DecodeBytes(pngSignature, FormatPNG, Limits{}); err == nil {
		t.Fatal("truncated PNG decoded")
	}
	if _, err := EncodeBytes(testImage(t), "jpeg"); err == nil {
		t.Fatal("unknown encode format accepted")
	}
}

// TestDecodeReader: the io.Reader form matches DecodeBytes.
func TestDecodeReader(t *testing.T) {
	img := testImage(t)
	data, err := EncodeBytes(img, FormatPBM)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(data), FormatAuto, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(img) {
		t.Fatal("Decode(reader) diverged")
	}
}
