// Package imageio gives every entry point of the repository — the CLI,
// the labeling service, the load generator — one set of pluggable image
// codecs that decode straight into bitmap.Bitmap under explicit size
// limits. Four formats are supported:
//
//   - png: stdlib image/png; a pixel is foreground when it is dark
//     (luminance < 50%) and not transparent, so black-on-white document
//     scans come in the right way up.
//   - pbm: plain PBM (P1), the format the CLI has always read.
//   - art: the ASCII-art alphabet of bitmap.Parse ('#'/'1'/'X' vs
//     '.'/'0'/' ').
//   - raw: the SLR1 packed-bitset wire format (bitmap.ReadRaw), the
//     service's densest ingest path.
//
// FormatAuto sniffs the leading bytes (PNG signature, "P1", "SLR1",
// anything else parses as art), which is what a network endpoint wants:
// clients send whatever they have.
package imageio

import (
	"bytes"
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"strings"

	"slapcc/internal/bitmap"
)

// Format names an image codec.
type Format string

// Supported formats. FormatAuto selects by content sniffing.
const (
	FormatAuto Format = "auto"
	FormatPNG  Format = "png"
	FormatPBM  Format = "pbm"
	FormatArt  Format = "art"
	FormatRaw  Format = "raw"
)

// Formats lists the concrete codecs (everything but auto).
func Formats() []Format { return []Format{FormatPNG, FormatPBM, FormatArt, FormatRaw} }

// ParseFormat resolves a user-supplied format name ("png", "pbm", "art",
// "raw", "auto", or "" for auto).
func ParseFormat(name string) (Format, error) {
	switch f := Format(strings.ToLower(strings.TrimSpace(name))); f {
	case "":
		return FormatAuto, nil
	case FormatAuto, FormatPNG, FormatPBM, FormatArt, FormatRaw:
		return f, nil
	default:
		return "", fmt.Errorf("imageio: unknown format %q (png, pbm, art, raw, auto)", name)
	}
}

// ContentType returns the MIME type a service should use for f.
func (f Format) ContentType() string {
	switch f {
	case FormatPNG:
		return "image/png"
	case FormatPBM:
		return "image/x-portable-bitmap"
	case FormatArt:
		return "text/plain; charset=utf-8"
	case FormatRaw:
		return "application/x-slap-raw"
	}
	return "application/octet-stream"
}

// FormatFromContentType maps a MIME type to a Format, defaulting to
// FormatAuto for unknown or absent types.
func FormatFromContentType(ct string) Format {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.ToLower(strings.TrimSpace(ct)) {
	case "image/png":
		return FormatPNG
	case "image/x-portable-bitmap", "image/x-portable-anymap":
		return FormatPBM
	case "application/x-slap-raw":
		return FormatRaw
	case "text/plain":
		return FormatArt
	}
	return FormatAuto
}

// Limits bound what a decode will materialize. The zero value of any
// field selects its default; use Unlimited for an explicit no-limit.
type Limits struct {
	// MaxWidth and MaxHeight bound each dimension (default 1<<20,
	// matching the PBM/SLR1 parsers' sanity bound).
	MaxWidth, MaxHeight int
	// MaxPixels bounds w·h (default 1<<26 ≈ 67M pixels, comfortably
	// inside the int32 label space the labeler itself enforces).
	MaxPixels int64
}

// DefaultLimits returns the limits a service should start from.
func DefaultLimits() Limits {
	return Limits{MaxWidth: 1 << 20, MaxHeight: 1 << 20, MaxPixels: 1 << 26}
}

// Unlimited is the practically-unbounded limit set (the parsers' own
// 1<<20 dimension sanity checks still apply).
func Unlimited() Limits {
	return Limits{MaxWidth: 1 << 30, MaxHeight: 1 << 30, MaxPixels: 1 << 62}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxWidth <= 0 {
		l.MaxWidth = d.MaxWidth
	}
	if l.MaxHeight <= 0 {
		l.MaxHeight = d.MaxHeight
	}
	if l.MaxPixels <= 0 {
		l.MaxPixels = d.MaxPixels
	}
	return l
}

// ErrLimit marks a decode rejected by Limits; service layers map it to
// 413 Payload Too Large (errors.Is on the Check error finds it).
var ErrLimit = errors.New("image exceeds limits")

// Check reports whether a w×h image fits the limits.
func (l Limits) Check(w, h int) error {
	l = l.withDefaults()
	if w > l.MaxWidth || h > l.MaxHeight {
		return fmt.Errorf("imageio: image %dx%d exceeds the %dx%d dimension limit: %w", w, h, l.MaxWidth, l.MaxHeight, ErrLimit)
	}
	if int64(w)*int64(h) > l.MaxPixels {
		return fmt.Errorf("imageio: image %dx%d exceeds the %d-pixel limit: %w", w, h, l.MaxPixels, ErrLimit)
	}
	return nil
}

// pngSignature is the 8-byte PNG file signature.
var pngSignature = []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}

// Sniff guesses the format of data from its leading bytes. Anything
// that is not PNG, plain PBM, or SLR1 sniffs as ASCII art — art has no
// magic, and the art parser's strict pixel alphabet rejects binary junk
// with a positioned error anyway.
func Sniff(data []byte) Format {
	switch {
	case bytes.HasPrefix(data, pngSignature):
		return FormatPNG
	case bytes.HasPrefix(data, []byte("P1")):
		return FormatPBM
	case bytes.HasPrefix(data, []byte("SLR1")):
		return FormatRaw
	default:
		return FormatArt
	}
}

// DecodeBytes decodes data as format (FormatAuto sniffs) into a Bitmap,
// enforcing limits before the pixels are materialized where the format
// allows (PNG and SLR1 declare dimensions up front; PBM and art are
// checked as soon as their cheap header/line scan yields them).
func DecodeBytes(data []byte, format Format, limits Limits) (*bitmap.Bitmap, error) {
	if format == FormatAuto || format == "" {
		format = Sniff(data)
	}
	switch format {
	case FormatPNG:
		return decodePNG(data, limits)
	case FormatPBM:
		img, err := bitmap.ReadPBM(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return img, limits.Check(img.W(), img.H())
	case FormatArt:
		img, err := bitmap.Parse(string(data))
		if err != nil {
			return nil, err
		}
		return img, limits.Check(img.W(), img.H())
	case FormatRaw:
		return decodeRaw(data, limits)
	default:
		return nil, fmt.Errorf("imageio: unknown format %q", format)
	}
}

// Decode reads everything from r and decodes it; the service layer
// bounds r (http.MaxBytesReader) before it gets here.
func Decode(r io.Reader, format Format, limits Limits) (*bitmap.Bitmap, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data, format, limits)
}

func decodeRaw(data []byte, limits Limits) (*bitmap.Bitmap, error) {
	// SLR1 declares dimensions in its fixed header: check the limits
	// against the header alone so an oversized frame is rejected before
	// its raster is allocated.
	if w, h, ok := bitmap.RawDims(data); ok {
		if err := limits.Check(w, h); err != nil {
			return nil, err
		}
	}
	return bitmap.ReadRaw(bytes.NewReader(data))
}

func decodePNG(data []byte, limits Limits) (*bitmap.Bitmap, error) {
	cfg, err := png.DecodeConfig(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("imageio: png header: %w", err)
	}
	if err := limits.Check(cfg.Width, cfg.Height); err != nil {
		return nil, err
	}
	src, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("imageio: png: %w", err)
	}
	return FromImage(src), nil
}

// FromImage thresholds any image.Image into a Bitmap: a pixel is
// foreground when it is dark (luminance below 50%) and not mostly
// transparent. This matches PBM's 1 = black convention, so a scanned
// page's ink is the foreground.
func FromImage(src image.Image) *bitmap.Bitmap {
	bounds := src.Bounds()
	w, h := bounds.Dx(), bounds.Dy()
	b := bitmap.New(w, h)
	gray, isGray := src.(*image.Gray)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if isGray {
				if gray.GrayAt(bounds.Min.X+x, bounds.Min.Y+y).Y < 128 {
					b.Set(x, y, true)
				}
				continue
			}
			c := src.At(bounds.Min.X+x, bounds.Min.Y+y)
			_, _, _, a := c.RGBA()
			if a < 0x8000 {
				continue // transparent = background
			}
			if color.GrayModel.Convert(c).(color.Gray).Y < 128 {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

// EncodeBytes serializes img as format. FormatAuto (and "") selects
// raw, the densest encoding.
func EncodeBytes(img *bitmap.Bitmap, format Format) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, img, format); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Encode serializes img as format to w.
func Encode(w io.Writer, img *bitmap.Bitmap, format Format) error {
	switch format {
	case FormatPNG:
		return png.Encode(w, ToImage(img))
	case FormatPBM:
		return img.WritePBM(w)
	case FormatArt:
		_, err := io.WriteString(w, img.String())
		return err
	case FormatRaw, FormatAuto, "":
		return img.WriteRaw(w)
	default:
		return fmt.Errorf("imageio: unknown format %q", format)
	}
}

// ToImage renders img as an 8-bit grayscale image, foreground black on
// white — the inverse of FromImage's threshold.
func ToImage(img *bitmap.Bitmap) *image.Gray {
	w, h := img.W(), img.H()
	out := image.NewGray(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := uint8(255)
			if img.Get(x, y) {
				v = 0
			}
			out.SetGray(x, y, color.Gray{Y: v})
		}
	}
	return out
}
