package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"slapcc/api"
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/imageio"
	"slapcc/internal/slap"
)

// TestHealthzReportsLoadAndDrain pins the routing-signal contract the
// slapfront coordinator depends on: a serving backend answers 200 with
// a JSON HealthResponse carrying its load figures, and the instant
// Shutdown begins — before the drain completes — /healthz flips to 503
// with Status "draining".
func TestHealthzReportsLoadAndDrain(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 3})

	req := httptest.NewRequest(http.MethodGet, api.PathHealthz, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while serving: %d %s", rec.Code, rec.Body.String())
	}
	h := decodeJSON[api.HealthResponse](t, rec)
	if h.Status != "ok" || h.Inflight != 0 || h.QueueDepth != 0 {
		t.Fatalf("healthz body: %+v", h)
	}
	if h.Capacity != s.AdmissionCapacity() || h.Workers != 2 {
		t.Fatalf("healthz capacity/workers: %+v (capacity want %d)", h, s.AdmissionCapacity())
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", rec.Code)
	}
	if h := decodeJSON[api.HealthResponse](t, rec); h.Status != "draining" {
		t.Fatalf("draining healthz body: %+v", h)
	}
}

// TestWordBitsParam: wordbits pins the bit-serial word width instead
// of deriving it from the posted frame's dimensions. A 24×24 strip
// charged at a 64×64 image's word width must report exactly the
// metrics of a local run under slap.BitSerial of that width — the
// divergence the parameter exists to remove when a coordinator fans
// out strips of a larger image.
func TestWordBitsParam(t *testing.T) {
	img := bitmap.Random(24, 0.5, 21)
	s := New(Config{Workers: 1})
	bits := slap.WordBitsForDims(64, 64)
	if bits == slap.WordBitsForDims(24, 24) {
		t.Fatal("test needs distinct word widths")
	}

	rec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{Cost: "bitserial", WordBits: bits})
	if rec.Code != http.StatusOK {
		t.Fatalf("label: %d %s", rec.Code, rec.Body.String())
	}
	got := decodeJSON[api.LabelResponse](t, rec)

	want, err := core.Label(img, core.Options{Cost: slap.BitSerial(bits)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.TimeSteps != want.Metrics.Time {
		t.Fatalf("pinned wordbits TimeSteps = %d, local = %d", got.Metrics.TimeSteps, want.Metrics.Time)
	}

	// Unpinned, the same frame derives its own (different) width.
	rec = postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{Cost: "bitserial"})
	if derived := decodeJSON[api.LabelResponse](t, rec); derived.Metrics.TimeSteps == got.Metrics.TimeSteps {
		t.Fatal("wordbits parameter had no effect")
	}

	// Negative widths are rejected.
	rec = postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{Cost: "bitserial", WordBits: -1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("wordbits=-1: %d", rec.Code)
	}
}

// TestInitialOffsetParam: initialoffset shifts the "positions" initial
// values to the strip's global column-major origin, so a strip posted
// on its own folds exactly what the whole-image run folds over that
// window.
func TestInitialOffsetParam(t *testing.T) {
	whole := bitmap.Random(32, 0.5, 33)
	h := whole.H()
	const x0, sw = 16, 16
	strip := whole.SubImage(x0, 0, sw, h)
	s := New(Config{Workers: 1})

	rec := postImage(t, s, api.PathAggregate, strip, imageio.FormatRaw,
		api.Params{Op: "min", Initial: "positions", InitialOffset: x0 * h, WantLabels: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("aggregate: %d %s", rec.Code, rec.Body.String())
	}
	got := decodeJSON[api.AggregateResponse](t, rec)

	initial := make([]int32, sw*h)
	for i := range initial {
		initial[i] = int32(i + x0*h)
	}
	want, err := core.Aggregate(strip, initial, core.Min(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PerPixel) != len(want.PerPixel) {
		t.Fatalf("per-pixel length %d, want %d", len(got.PerPixel), len(want.PerPixel))
	}
	for i := range want.PerPixel {
		if got.PerPixel[i] != want.PerPixel[i] {
			t.Fatalf("per_pixel[%d] = %d, want %d", i, got.PerPixel[i], want.PerPixel[i])
		}
	}
}

// TestCancelledRequestAborts: a request whose context is already dead
// never runs the labeling; the handler answers 499 (client closed
// request) rather than burning a worker on an abandoned frame. The
// between-strips cancellation itself is pinned in internal/core.
func TestCancelledRequestAborts(t *testing.T) {
	s := New(Config{Workers: 1})
	img := bitmap.Random(32, 0.5, 5)
	data, err := imageio.EncodeBytes(img, imageio.FormatRaw)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, path := range []string{
		api.PathLabel + "?array=8",
		api.PathAggregate + "?array=8&op=sum",
	} {
		var body io.Reader = bytes.NewReader(data)
		req := httptest.NewRequest(http.MethodPost, path, body).WithContext(ctx)
		req.Header.Set("Content-Type", imageio.FormatRaw.ContentType())
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != statusClientClosedRequest {
			t.Fatalf("%s with dead context: %d %s", path, rec.Code, rec.Body.String())
		}
	}
}
