package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"slapcc/api"
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/imageio"
)

func postImage(t *testing.T, h http.Handler, path string, img *bitmap.Bitmap, f imageio.Format, p api.Params) *httptest.ResponseRecorder {
	t.Helper()
	p.Format = string(f)
	data, err := imageio.EncodeBytes(img, f)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path+"?"+p.Query().Encode(), bytes.NewReader(data))
	req.Header.Set("Content-Type", f.ContentType())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeJSON[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON (%s): %v", rec.Body.String(), err)
	}
	return v
}

func wantLabels(t *testing.T, img *bitmap.Bitmap, opt core.Options) []int32 {
	t.Helper()
	res, err := core.Label(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int32, 0, img.W()*img.H())
	for x := 0; x < img.W(); x++ {
		labels = append(labels, res.Labels.ColumnSlice(x)...)
	}
	return labels
}

// TestLabelEndpointAllFormats: every codec round-trips through
// POST /v1/label, and the returned labels are bit-identical to the
// in-process Label of the same frame.
func TestLabelEndpointAllFormats(t *testing.T) {
	s := New(Config{Workers: 2})
	img := bitmap.Random(24, 0.5, 11)
	want := wantLabels(t, img, core.Options{})
	for _, f := range imageio.Formats() {
		rec := postImage(t, s, api.PathLabel, img, f, api.Params{WantLabels: true})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d: %s", f, rec.Code, rec.Body.String())
		}
		resp := decodeJSON[api.LabelResponse](t, rec)
		if resp.Width != 24 || resp.Height != 24 {
			t.Fatalf("%s: got %dx%d", f, resp.Width, resp.Height)
		}
		if len(resp.Labels) != len(want) {
			t.Fatalf("%s: %d labels, want %d", f, len(resp.Labels), len(want))
		}
		for i := range want {
			if resp.Labels[i] != want[i] {
				t.Fatalf("%s: label[%d] = %d, want %d", f, i, resp.Labels[i], want[i])
			}
		}
		if resp.Metrics.TimeSteps <= 0 || resp.Metrics.ArrayWidth != 24 {
			t.Fatalf("%s: suspicious metrics %+v", f, resp.Metrics)
		}
	}
}

// TestLabelEndpointParams: per-request connectivity, UF, bit-serial
// cost, and strip-mining all flow through to the core and match the
// equivalent in-process run.
func TestLabelEndpointParams(t *testing.T) {
	s := New(Config{Workers: 1})
	img := bitmap.Random(40, 0.4, 3)
	cases := []struct {
		name string
		p    api.Params
		opt  core.Options
	}{
		{"conn8", api.Params{Connectivity: 8}, core.Options{Connectivity: bitmap.Conn8}},
		{"blum", api.Params{UF: "blum"}, core.Options{UF: "blum"}},
		{"strip", api.Params{ArrayWidth: 16}, core.Options{ArrayWidth: 16}},
	}
	for _, tc := range cases {
		want, err := core.Label(img, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		tc.p.WantLabels = true
		rec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, tc.p)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d: %s", tc.name, rec.Code, rec.Body.String())
		}
		resp := decodeJSON[api.LabelResponse](t, rec)
		if resp.Metrics.TimeSteps != want.Metrics.Time {
			t.Fatalf("%s: time %d, want %d", tc.name, resp.Metrics.TimeSteps, want.Metrics.Time)
		}
		if resp.UF.Kind != string(want.UF.Kind) || resp.UF.TotalSteps != want.UF.TotalSteps {
			t.Fatalf("%s: UF %+v, want %+v", tc.name, resp.UF, want.UF)
		}
	}

	// bitserial charges more simulated time than unit cost.
	unit := decodeJSON[api.LabelResponse](t, postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{}))
	bs := decodeJSON[api.LabelResponse](t, postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{Cost: "bitserial"}))
	if bs.Metrics.TimeSteps <= unit.Metrics.TimeSteps {
		t.Fatalf("bitserial %d not slower than unit %d", bs.Metrics.TimeSteps, unit.Metrics.TimeSteps)
	}
}

// TestLabelEndpointErrors: the error taxonomy — bad params 400, junk
// bodies 400, over-limit images 413, oversized bodies 413, wrong
// method 405.
func TestLabelEndpointErrors(t *testing.T) {
	s := New(Config{Workers: 1, Limits: imageio.Limits{MaxWidth: 16, MaxHeight: 16}, MaxBodyBytes: 2048})
	img := bitmap.Random(8, 0.5, 1)

	if rec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{Connectivity: 5}); rec.Code != http.StatusBadRequest {
		t.Fatalf("conn=5: %d", rec.Code)
	}
	if rec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{UF: "nope"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("uf=nope: %d", rec.Code)
	}
	if rec := postImage(t, s, api.PathLabel, bitmap.Random(32, 0.5, 2), imageio.FormatRaw, api.Params{}); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit image: %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, api.PathLabel, bytes.NewReader(make([]byte, 4096)))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d: %s", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest(http.MethodGet, api.PathLabel, nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET label: %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, api.PathLabel, strings.NewReader("#@!\x00"))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("junk body: %d", rec.Code)
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("error body not JSON: %s", rec.Body.String())
	}
}

// TestAggregateEndpoint: sum-over-ones equals component areas from the
// in-process Aggregate, for whole-image and strip-mined (array=) runs
// alike.
func TestAggregateEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	img := bitmap.MustParse("##.\n.#.\n..#")
	want, err := core.Aggregate(img, core.Ones(img), core.Sum(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := postImage(t, s, api.PathAggregate, img, imageio.FormatArt, api.Params{Op: "sum", WantLabels: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("%d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeJSON[api.AggregateResponse](t, rec)
	if resp.Op != "sum" {
		t.Fatalf("op = %q", resp.Op)
	}
	for i := range want.PerPixel {
		if resp.PerPixel[i] != want.PerPixel[i] {
			t.Fatalf("per_pixel[%d] = %d, want %d", i, resp.PerPixel[i], want.PerPixel[i])
		}
	}

	// array= strip-mines the aggregation (the PR 4 refusal is gone): the
	// per-pixel folds and labels must pin against in-process
	// AggregateLarge, whose values equal the whole-image run's.
	wantStrip, err := core.AggregateLarge(img, core.Ones(img), core.Sum(), core.Options{ArrayWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec = postImage(t, s, api.PathAggregate, img, imageio.FormatArt, api.Params{Op: "sum", ArrayWidth: 2, WantLabels: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("strip-mined aggregate: %d: %s", rec.Code, rec.Body.String())
	}
	sresp := decodeJSON[api.AggregateResponse](t, rec)
	if sresp.Metrics.ArrayWidth != 2 || sresp.Metrics.TimeSteps != wantStrip.Metrics.Time {
		t.Fatalf("strip-mined metrics: array %d time %d, want array 2 time %d",
			sresp.Metrics.ArrayWidth, sresp.Metrics.TimeSteps, wantStrip.Metrics.Time)
	}
	for i := range wantStrip.PerPixel {
		if sresp.PerPixel[i] != wantStrip.PerPixel[i] {
			t.Fatalf("strip-mined per_pixel[%d] = %d, want %d", i, sresp.PerPixel[i], wantStrip.PerPixel[i])
		}
		if sresp.PerPixel[i] != want.PerPixel[i] {
			t.Fatalf("strip-mined per_pixel[%d] = %d diverges from whole-image %d", i, sresp.PerPixel[i], want.PerPixel[i])
		}
	}

	if rec := postImage(t, s, api.PathAggregate, img, imageio.FormatArt, api.Params{Op: "median"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad op: %d", rec.Code)
	}
}

// TestSeamScheduleParams: seam= and schedule= select the strip models
// per request — pinned against the in-process runs — and unknown values
// are 400s.
func TestSeamScheduleParams(t *testing.T) {
	s := New(Config{Workers: 1})
	img := bitmap.Random(24, 0.5, 11)
	for _, tc := range []struct {
		p   api.Params
		opt core.Options
	}{
		{api.Params{ArrayWidth: 8, Seam: "host"}, core.Options{ArrayWidth: 8, Seam: core.SeamHost}},
		{api.Params{ArrayWidth: 8, Schedule: "pipelined"}, core.Options{ArrayWidth: 8, Schedule: core.SchedulePipelined}},
		{api.Params{ArrayWidth: 8, Seam: "distributed", Schedule: "sequential"}, core.Options{ArrayWidth: 8}},
	} {
		want, err := core.LabelLarge(img, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		rec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, tc.p)
		if rec.Code != http.StatusOK {
			t.Fatalf("%+v: %d: %s", tc.p, rec.Code, rec.Body.String())
		}
		resp := decodeJSON[api.LabelResponse](t, rec)
		if resp.Metrics.TimeSteps != want.Metrics.Time {
			t.Errorf("%+v: time %d, want %d", tc.p, resp.Metrics.TimeSteps, want.Metrics.Time)
		}
	}
	for _, p := range []api.Params{{Seam: "psychic"}, {Schedule: "asap"}} {
		rec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, p)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%+v accepted: %d", p, rec.Code)
		}
	}
}

func buildBatch(t *testing.T, frames []*bitmap.Bitmap, formats []imageio.Format, junkAt int) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, img := range frames {
		f := formats[i%len(formats)]
		hdr := make(map[string][]string)
		hdr["Content-Type"] = []string{f.ContentType()}
		hdr["Content-Disposition"] = []string{fmt.Sprintf(`form-data; name="frame%d"; filename="frame%d"`, i, i)}
		pw, err := mw.CreatePart(hdr)
		if err != nil {
			t.Fatal(err)
		}
		if i == junkAt {
			pw.Write([]byte("P1\nnot a bitmap"))
			continue
		}
		if err := imageio.Encode(pw, img, f); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	return &buf, mw.FormDataContentType()
}

// TestBatchEndpoint: mixed-format frames come back in part order,
// bit-identical to in-process labeling, with a poisoned part reported
// per-frame without failing the batch.
func TestBatchEndpoint(t *testing.T) {
	s := New(Config{Workers: 4})
	const n = 9
	junkAt := 4
	frames := make([]*bitmap.Bitmap, n)
	for i := range frames {
		frames[i] = bitmap.Random(10+3*i, 0.45, uint64(i+1))
	}
	body, ctype := buildBatch(t, frames, imageio.Formats(), junkAt)
	req := httptest.NewRequest(http.MethodPost, api.PathBatch+"?labels=1", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeJSON[api.BatchResponse](t, rec)
	if resp.Frames != n || resp.Errors != 1 || len(resp.Results) != n {
		t.Fatalf("frames %d errors %d results %d", resp.Frames, resp.Errors, len(resp.Results))
	}
	for i, item := range resp.Results {
		if item.Index != i {
			t.Fatalf("result %d carries index %d", i, item.Index)
		}
		if i == junkAt {
			if item.Error == "" || item.Result != nil {
				t.Fatalf("poisoned part %d: %+v", i, item)
			}
			continue
		}
		if item.Error != "" {
			t.Fatalf("part %d: %s", i, item.Error)
		}
		want := wantLabels(t, frames[i], core.Options{})
		if len(item.Result.Labels) != len(want) {
			t.Fatalf("part %d: %d labels, want %d", i, len(item.Result.Labels), len(want))
		}
		for j := range want {
			if item.Result.Labels[j] != want[j] {
				t.Fatalf("part %d label[%d] = %d, want %d", i, j, item.Result.Labels[j], want[j])
			}
		}
	}
}

// TestBatchFrameCap: one part over MaxBatchFrames fails the request
// with 413.
func TestBatchFrameCap(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatchFrames: 2})
	frames := []*bitmap.Bitmap{bitmap.Random(8, 0.5, 1), bitmap.Random(8, 0.5, 2), bitmap.Random(8, 0.5, 3)}
	body, ctype := buildBatch(t, frames, []imageio.Format{imageio.FormatRaw}, -1)
	req := httptest.NewRequest(http.MethodPost, api.PathBatch, body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("%d: %s", rec.Code, rec.Body.String())
	}
}

// TestAdmissionControl pins the full/empty transition deterministically
// by filling the admission semaphore directly: at capacity every POST
// sheds with 429 + Retry-After and counts in slapd_rejected_total; one
// released slot readmits.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	if s.AdmissionCapacity() != 2 {
		t.Fatalf("capacity %d, want 2", s.AdmissionCapacity())
	}
	img := bitmap.Random(8, 0.5, 1)

	for i := 0; i < s.AdmissionCapacity(); i++ {
		s.sem <- struct{}{}
	}
	rec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("at capacity: %d", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
	<-s.sem
	rec = postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{})
	if rec.Code != http.StatusOK {
		t.Fatalf("after release: %d: %s", rec.Code, rec.Body.String())
	}
	var metrics bytes.Buffer
	s.reg.render(&metrics, gauges{})
	if !strings.Contains(metrics.String(), "slapd_rejected_total 1") {
		t.Fatal("rejection not counted")
	}
}

// TestConcurrentClientsAndDrain is the race-detector workout: many
// concurrent clients across label and batch endpoints, a drain racing
// the tail of the load, every admitted request completing exactly once
// (200 or 429, nothing else), and post-drain requests refused with 503.
func TestConcurrentClientsAndDrain(t *testing.T) {
	s := New(Config{Workers: 3, QueueDepth: 3})
	const clients = 8
	frames := make([]*bitmap.Bitmap, clients)
	for i := range frames {
		frames[i] = bitmap.Random(16+i, 0.5, uint64(i+1))
	}
	var wg sync.WaitGroup
	codes := make(chan int, clients*8)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				if c%3 == 0 {
					body, ctype := buildBatch(t, frames[:3], []imageio.Format{imageio.FormatRaw, imageio.FormatPBM}, -1)
					req := httptest.NewRequest(http.MethodPost, api.PathBatch, body)
					req.Header.Set("Content-Type", ctype)
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					codes <- rec.Code
				} else {
					rec := postImage(t, s, api.PathLabel, frames[c], imageio.FormatRaw, api.Params{WantLabels: c%2 == 0})
					codes <- rec.Code
				}
			}
		}(c)
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d under concurrent load", code)
		}
	}

	// Drain while one request is in flight: it must complete, the drain
	// must wait for it, and later requests must see 503.
	release := make(chan struct{})
	inflight := make(chan struct{})
	slow := bitmap.Random(64, 0.5, 99)
	var slowCode int
	var slowWG sync.WaitGroup
	slowWG.Add(1)
	go func() {
		defer slowWG.Done()
		// Hold an admission slot open across the drain by pausing inside
		// the handler via the pool: simplest is a request large enough to
		// still be running when Shutdown fires — gate on inflight instead.
		close(inflight)
		rec := postImage(t, s, api.PathLabel, slow, imageio.FormatRaw, api.Params{})
		slowCode = rec.Code
		close(release)
	}()
	<-inflight
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-release
	if slowCode != http.StatusOK && slowCode != http.StatusServiceUnavailable {
		t.Fatalf("racing request status %d", slowCode)
	}
	rec := postImage(t, s, api.PathLabel, slow, imageio.FormatRaw, api.Params{})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain POST: %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, api.PathHealthz, nil)
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: %d", hrec.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestShutdownHonorsContext: a drain blocked by a stuck request returns
// the context error instead of hanging.
func TestShutdownHonorsContext(t *testing.T) {
	s := New(Config{Workers: 1})
	s.mu.Lock()
	s.inflight = 1 // simulate a wedged request
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned with a request still in flight")
	}
	s.mu.Lock()
	s.inflight = 0
	s.mu.Unlock()
	s.idle.Broadcast()
}

// TestMetricsGolden pins the full /metrics exposition after a known
// request sequence under a stub clock: the format is part of the API
// surface operators scrape, so a change here is a reviewed diff.
func TestMetricsGolden(t *testing.T) {
	tick := time.Unix(1700000000, 0)
	s := New(Config{Workers: 2, QueueDepth: 2, Now: func() time.Time {
		tick = tick.Add(250 * time.Millisecond)
		return tick
	}})

	img := bitmap.MustParse("##\n.#")
	if rec := postImage(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{}); rec.Code != http.StatusOK {
		t.Fatalf("label: %d", rec.Code)
	}
	if rec := postImage(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{Connectivity: 5}); rec.Code != http.StatusBadRequest {
		t.Fatal("bad conn accepted")
	}
	hreq := httptest.NewRequest(http.MethodGet, api.PathHealthz, nil)
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", hrec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, api.PathMetrics, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	const golden = `# HELP slapd_requests_total HTTP requests completed, by endpoint and status code.
# TYPE slapd_requests_total counter
slapd_requests_total{endpoint="healthz",code="200"} 1
slapd_requests_total{endpoint="label",code="200"} 1
slapd_requests_total{endpoint="label",code="400"} 1
# HELP slapd_request_seconds Wall time of completed requests, by endpoint.
# TYPE slapd_request_seconds histogram
slapd_request_seconds_bucket{endpoint="healthz",le="0.001"} 0
slapd_request_seconds_bucket{endpoint="healthz",le="0.0025"} 0
slapd_request_seconds_bucket{endpoint="healthz",le="0.005"} 0
slapd_request_seconds_bucket{endpoint="healthz",le="0.01"} 0
slapd_request_seconds_bucket{endpoint="healthz",le="0.025"} 0
slapd_request_seconds_bucket{endpoint="healthz",le="0.05"} 0
slapd_request_seconds_bucket{endpoint="healthz",le="0.1"} 0
slapd_request_seconds_bucket{endpoint="healthz",le="0.25"} 1
slapd_request_seconds_bucket{endpoint="healthz",le="0.5"} 1
slapd_request_seconds_bucket{endpoint="healthz",le="1"} 1
slapd_request_seconds_bucket{endpoint="healthz",le="2.5"} 1
slapd_request_seconds_bucket{endpoint="healthz",le="5"} 1
slapd_request_seconds_bucket{endpoint="healthz",le="10"} 1
slapd_request_seconds_bucket{endpoint="healthz",le="+Inf"} 1
slapd_request_seconds_sum{endpoint="healthz"} 0.25
slapd_request_seconds_count{endpoint="healthz"} 1
slapd_request_seconds_bucket{endpoint="label",le="0.001"} 0
slapd_request_seconds_bucket{endpoint="label",le="0.0025"} 0
slapd_request_seconds_bucket{endpoint="label",le="0.005"} 0
slapd_request_seconds_bucket{endpoint="label",le="0.01"} 0
slapd_request_seconds_bucket{endpoint="label",le="0.025"} 0
slapd_request_seconds_bucket{endpoint="label",le="0.05"} 0
slapd_request_seconds_bucket{endpoint="label",le="0.1"} 0
slapd_request_seconds_bucket{endpoint="label",le="0.25"} 0
slapd_request_seconds_bucket{endpoint="label",le="0.5"} 0
slapd_request_seconds_bucket{endpoint="label",le="1"} 0
slapd_request_seconds_bucket{endpoint="label",le="2.5"} 0
slapd_request_seconds_bucket{endpoint="label",le="5"} 1
slapd_request_seconds_bucket{endpoint="label",le="10"} 2
slapd_request_seconds_bucket{endpoint="label",le="+Inf"} 2
slapd_request_seconds_sum{endpoint="label"} 8.5
slapd_request_seconds_count{endpoint="label"} 2
# HELP slapd_stage_seconds Wall time of request stages (top-level trace spans), by stage.
# TYPE slapd_stage_seconds histogram
slapd_stage_seconds_bucket{stage="decode",le="0.001"} 0
slapd_stage_seconds_bucket{stage="decode",le="0.0025"} 0
slapd_stage_seconds_bucket{stage="decode",le="0.005"} 0
slapd_stage_seconds_bucket{stage="decode",le="0.01"} 0
slapd_stage_seconds_bucket{stage="decode",le="0.025"} 0
slapd_stage_seconds_bucket{stage="decode",le="0.05"} 0
slapd_stage_seconds_bucket{stage="decode",le="0.1"} 0
slapd_stage_seconds_bucket{stage="decode",le="0.25"} 2
slapd_stage_seconds_bucket{stage="decode",le="0.5"} 2
slapd_stage_seconds_bucket{stage="decode",le="1"} 2
slapd_stage_seconds_bucket{stage="decode",le="2.5"} 2
slapd_stage_seconds_bucket{stage="decode",le="5"} 2
slapd_stage_seconds_bucket{stage="decode",le="10"} 2
slapd_stage_seconds_bucket{stage="decode",le="+Inf"} 2
slapd_stage_seconds_sum{stage="decode"} 0.5
slapd_stage_seconds_count{stage="decode"} 2
slapd_stage_seconds_bucket{stage="encode",le="0.001"} 0
slapd_stage_seconds_bucket{stage="encode",le="0.0025"} 0
slapd_stage_seconds_bucket{stage="encode",le="0.005"} 0
slapd_stage_seconds_bucket{stage="encode",le="0.01"} 0
slapd_stage_seconds_bucket{stage="encode",le="0.025"} 0
slapd_stage_seconds_bucket{stage="encode",le="0.05"} 0
slapd_stage_seconds_bucket{stage="encode",le="0.1"} 0
slapd_stage_seconds_bucket{stage="encode",le="0.25"} 1
slapd_stage_seconds_bucket{stage="encode",le="0.5"} 1
slapd_stage_seconds_bucket{stage="encode",le="1"} 1
slapd_stage_seconds_bucket{stage="encode",le="2.5"} 1
slapd_stage_seconds_bucket{stage="encode",le="5"} 1
slapd_stage_seconds_bucket{stage="encode",le="10"} 1
slapd_stage_seconds_bucket{stage="encode",le="+Inf"} 1
slapd_stage_seconds_sum{stage="encode"} 0.25
slapd_stage_seconds_count{stage="encode"} 1
slapd_stage_seconds_bucket{stage="label",le="0.001"} 0
slapd_stage_seconds_bucket{stage="label",le="0.0025"} 0
slapd_stage_seconds_bucket{stage="label",le="0.005"} 0
slapd_stage_seconds_bucket{stage="label",le="0.01"} 0
slapd_stage_seconds_bucket{stage="label",le="0.025"} 0
slapd_stage_seconds_bucket{stage="label",le="0.05"} 0
slapd_stage_seconds_bucket{stage="label",le="0.1"} 0
slapd_stage_seconds_bucket{stage="label",le="0.25"} 0
slapd_stage_seconds_bucket{stage="label",le="0.5"} 0
slapd_stage_seconds_bucket{stage="label",le="1"} 1
slapd_stage_seconds_bucket{stage="label",le="2.5"} 1
slapd_stage_seconds_bucket{stage="label",le="5"} 1
slapd_stage_seconds_bucket{stage="label",le="10"} 1
slapd_stage_seconds_bucket{stage="label",le="+Inf"} 1
slapd_stage_seconds_sum{stage="label"} 0.75
slapd_stage_seconds_count{stage="label"} 1
slapd_stage_seconds_bucket{stage="queue",le="0.001"} 0
slapd_stage_seconds_bucket{stage="queue",le="0.0025"} 0
slapd_stage_seconds_bucket{stage="queue",le="0.005"} 0
slapd_stage_seconds_bucket{stage="queue",le="0.01"} 0
slapd_stage_seconds_bucket{stage="queue",le="0.025"} 0
slapd_stage_seconds_bucket{stage="queue",le="0.05"} 0
slapd_stage_seconds_bucket{stage="queue",le="0.1"} 0
slapd_stage_seconds_bucket{stage="queue",le="0.25"} 2
slapd_stage_seconds_bucket{stage="queue",le="0.5"} 2
slapd_stage_seconds_bucket{stage="queue",le="1"} 2
slapd_stage_seconds_bucket{stage="queue",le="2.5"} 2
slapd_stage_seconds_bucket{stage="queue",le="5"} 2
slapd_stage_seconds_bucket{stage="queue",le="10"} 2
slapd_stage_seconds_bucket{stage="queue",le="+Inf"} 2
slapd_stage_seconds_sum{stage="queue"} 0.5
slapd_stage_seconds_count{stage="queue"} 2
# HELP slapd_frames_labeled_total Frames labeled, counting every batch part.
# TYPE slapd_frames_labeled_total counter
slapd_frames_labeled_total 1
# HELP slapd_ingest_bytes_total Request body bytes accepted for decoding.
# TYPE slapd_ingest_bytes_total counter
slapd_ingest_bytes_total 12
# HELP slapd_rejected_total Requests shed with 429 by admission control.
# TYPE slapd_rejected_total counter
slapd_rejected_total 0
# HELP slapd_deadline_rejected_total Requests refused with 504 because their deadline budget was spent or unmeetable.
# TYPE slapd_deadline_rejected_total counter
slapd_deadline_rejected_total 0
# HELP slapd_panics_total Handler panics recovered (each answered 500).
# TYPE slapd_panics_total counter
slapd_panics_total 0
# HELP slapd_inflight Admitted requests currently being served.
# TYPE slapd_inflight gauge
slapd_inflight 0
# HELP slapd_queue_depth Admitted requests waiting for a worker.
# TYPE slapd_queue_depth gauge
slapd_queue_depth 0
# HELP slapd_admission_capacity Admission slots (workers + queue depth bound).
# TYPE slapd_admission_capacity gauge
slapd_admission_capacity 4
# HELP slapd_admission_limit Adaptive (AIMD) concurrency limit; equals capacity while no latency target is set.
# TYPE slapd_admission_limit gauge
slapd_admission_limit 4
# HELP slapd_workers Labeler pool size.
# TYPE slapd_workers gauge
slapd_workers 2
# HELP slapd_workers_idle Labeler pool workers currently free.
# TYPE slapd_workers_idle gauge
slapd_workers_idle 2
# HELP slapd_draining 1 while the server is draining for shutdown.
# TYPE slapd_draining gauge
slapd_draining 0
`
	if got := rec.Body.String(); got != golden {
		t.Fatalf("metrics drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
}

// TestHealthz: healthy until draining.
func TestHealthz(t *testing.T) {
	s := New(Config{Workers: 1})
	req := httptest.NewRequest(http.MethodGet, api.PathHealthz, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

// TestVerifyMode: Config.Verify cross-checks labels against the ground
// truth without changing successful responses.
func TestVerifyMode(t *testing.T) {
	s := New(Config{Workers: 1, Verify: true})
	rec := postImage(t, s, api.PathLabel, bitmap.Random(16, 0.5, 4), imageio.FormatRaw, api.Params{})
	if rec.Code != http.StatusOK {
		t.Fatalf("%d: %s", rec.Code, rec.Body.String())
	}
}
