package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"slapcc/api"
	"slapcc/internal/bitmap"
	"slapcc/internal/imageio"
)

// postImageHeaders is postImage with extra request headers — the
// deadline/request-ID tests need to speak the new wire surface.
func postImageHeaders(t *testing.T, h http.Handler, path string, img *bitmap.Bitmap, f imageio.Format, p api.Params, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	p.Format = string(f)
	data, err := imageio.EncodeBytes(img, f)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path+"?"+p.Query().Encode(), bytes.NewReader(data))
	req.Header.Set("Content-Type", f.ContentType())
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestDeadlineSpentRejectedBeforePool: a request arriving with an
// exhausted X-Slap-Deadline-Ms budget answers 504 without entering the
// labeler pool — doomed work is refused at admission, and the refusal
// counts in slapd_deadline_rejected_total, not slapd_rejected_total.
func TestDeadlineSpentRejectedBeforePool(t *testing.T) {
	s := New(Config{Workers: 2})
	img := bitmap.MustParse("##\n.#")

	rec := postImageHeaders(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{},
		map[string]string{api.HeaderDeadlineMS: "0"})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("spent budget: %d %s", rec.Code, rec.Body.String())
	}
	e := decodeJSON[api.ErrorResponse](t, rec)
	if !strings.Contains(e.Error, "deadline") {
		t.Fatalf("error body: %+v", e)
	}
	if e.RequestID == "" {
		t.Fatal("504 payload carries no request_id")
	}
	s.reg.mu.Lock()
	deadline, rejected := s.reg.deadline, s.reg.rejected
	s.reg.mu.Unlock()
	if deadline != 1 || rejected != 0 {
		t.Fatalf("deadline=%d rejected=%d, want 1/0", deadline, rejected)
	}
	if idle := s.pool.Idle(); idle != 2 {
		t.Fatalf("pool touched: %d idle workers", idle)
	}
	// A generous budget sails through.
	rec = postImageHeaders(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{},
		map[string]string{api.HeaderDeadlineMS: "60000"})
	if rec.Code != http.StatusOK {
		t.Fatalf("live budget: %d %s", rec.Code, rec.Body.String())
	}
}

// TestDeadlineMidRunStopsStripLoop: a budget that expires while a
// strip-mined labeling is underway stops the run between strips (the
// core cancelCheck seam) and answers 504, not 499 — the server, not the
// client, gave up.
func TestDeadlineMidRunStopsStripLoop(t *testing.T) {
	s := New(Config{Workers: 1})
	img := bitmap.Random(256, 0.5, 7)
	// Burn the whole budget between admission and the strip loop, so the
	// deadline deterministically expires while the request is in the
	// labeling path regardless of how fast this machine labels.
	testDecodeHook = func(*bitmap.Bitmap) { time.Sleep(20 * time.Millisecond) }
	defer func() { testDecodeHook = nil }()
	rec := postImageHeaders(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{ArrayWidth: 16},
		map[string]string{api.HeaderDeadlineMS: "10"})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("mid-run expiry: %d %s", rec.Code, rec.Body.String())
	}
	if e := decodeJSON[api.ErrorResponse](t, rec); !strings.Contains(e.Error, "cancelled") {
		t.Fatalf("error body: %+v", e)
	}
	// The worker came back: the pool replaced nothing and leaked nothing.
	if idle := s.pool.Idle(); idle != 1 {
		t.Fatalf("pool idle = %d after expiry, want 1", idle)
	}
}

// TestDeadlineQueueScaledRejection: once a latency estimate exists, a
// budget smaller than the queue-scaled estimate fails fast with 504
// instead of queueing toward certain expiry.
func TestDeadlineQueueScaledRejection(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 2})
	s.mu.Lock()
	s.estEWMA = 0.5 // completed requests have been taking ~500 ms
	s.mu.Unlock()
	img := bitmap.MustParse("##\n.#")

	rec := postImageHeaders(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{},
		map[string]string{api.HeaderDeadlineMS: "100"})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("100ms budget under 500ms estimate: %d %s", rec.Code, rec.Body.String())
	}
	if e := decodeJSON[api.ErrorResponse](t, rec); !strings.Contains(e.Error, "estimate") {
		t.Fatalf("error body: %+v", e)
	}
	rec = postImageHeaders(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{},
		map[string]string{api.HeaderDeadlineMS: "5000"})
	if rec.Code != http.StatusOK {
		t.Fatalf("5s budget: %d %s", rec.Code, rec.Body.String())
	}
}

// TestRequestIDPropagation: the server echoes a caller-supplied
// X-Slap-Request-Id on the response and in error payloads, and mints
// one when the caller sent none.
func TestRequestIDPropagation(t *testing.T) {
	s := New(Config{Workers: 1})
	img := bitmap.MustParse("##\n.#")

	rec := postImageHeaders(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{},
		map[string]string{api.HeaderRequestID: "trace-me-42"})
	if got := rec.Header().Get(api.HeaderRequestID); got != "trace-me-42" {
		t.Fatalf("request ID echoed as %q", got)
	}

	rec = postImage(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{})
	if got := rec.Header().Get(api.HeaderRequestID); got == "" {
		t.Fatal("no request ID minted")
	}

	rec = postImageHeaders(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{Connectivity: 5},
		map[string]string{api.HeaderRequestID: "bad-req-7"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad conn: %d", rec.Code)
	}
	if e := decodeJSON[api.ErrorResponse](t, rec); e.RequestID != "bad-req-7" {
		t.Fatalf("error payload request_id = %q", e.RequestID)
	}
}

// TestPanicIsolation: a poisoned request (decoder forced to panic via
// the test hook) answers 500 with its request ID, increments
// slapd_panics_total, logs the stack — and takes out neither subsequent
// requests nor a pool worker.
func TestPanicIsolation(t *testing.T) {
	var logbuf bytes.Buffer
	s := New(Config{Workers: 2, Logf: func(format string, args ...any) {
		fmt.Fprintf(&logbuf, format+"\n", args...)
	}})
	img := bitmap.MustParse("##\n.#")

	armed := true
	testDecodeHook = func(*bitmap.Bitmap) {
		if armed {
			armed = false
			panic("poisoned frame")
		}
	}
	defer func() { testDecodeHook = nil }()

	rec := postImageHeaders(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{},
		map[string]string{api.HeaderRequestID: "boom-1"})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("poisoned request: %d %s", rec.Code, rec.Body.String())
	}
	if e := decodeJSON[api.ErrorResponse](t, rec); e.RequestID != "boom-1" {
		t.Fatalf("500 payload request_id = %q", e.RequestID)
	}
	s.reg.mu.Lock()
	panics := s.reg.panics
	s.reg.mu.Unlock()
	if panics != 1 {
		t.Fatalf("slapd_panics_total = %d, want 1", panics)
	}
	log := logbuf.String()
	if !strings.Contains(log, "boom-1") || !strings.Contains(log, "poisoned frame") ||
		!strings.Contains(log, "goroutine") {
		t.Fatalf("panic log missing request ID, value, or stack:\n%s", log)
	}

	// The next request is unharmed and no admission slot or worker leaked.
	rec = postImage(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{})
	if rec.Code != http.StatusOK {
		t.Fatalf("request after panic: %d %s", rec.Code, rec.Body.String())
	}
	s.mu.Lock()
	inflight := s.inflight
	s.mu.Unlock()
	if inflight != 0 || len(s.sem) != 0 {
		t.Fatalf("leaked admission state: inflight=%d sem=%d", inflight, len(s.sem))
	}
	if idle := s.pool.Idle(); idle != 2 {
		t.Fatalf("pool idle = %d, want 2", idle)
	}
}

// TestAdaptiveAdmission: with a LatencyTarget set, completed requests
// running over target shrink the AIMD limit multiplicatively (floored
// at 1) and requests under target grow it back; the live limit shows in
// /healthz, and admission sheds with 429 once inflight reaches it even
// with semaphore slots free.
func TestAdaptiveAdmission(t *testing.T) {
	tick := time.Unix(1700000000, 0)
	s := New(Config{Workers: 2, QueueDepth: 2, LatencyTarget: 100 * time.Millisecond,
		Now: func() time.Time {
			tick = tick.Add(250 * time.Millisecond) // every request "takes" 250 ms
			return tick
		}})
	img := bitmap.MustParse("##\n.#")

	for i := 0; i < 6; i++ {
		if rec := postImage(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{}); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
	}
	// 4 × 0.8^6 ≈ 1.05: the limit decayed to the floor region.
	s.mu.Lock()
	limit := s.limit
	s.mu.Unlock()
	if limit >= 2 {
		t.Fatalf("limit = %v after 6 over-target requests, want < 2", limit)
	}

	hreq := httptest.NewRequest(http.MethodGet, api.PathHealthz, nil)
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, hreq)
	if h := decodeJSON[api.HealthResponse](t, hrec); h.AdmissionLimit != int(limit) {
		t.Fatalf("healthz admission_limit = %d, want %d", h.AdmissionLimit, int(limit))
	}

	// One request already in flight ≥ the decayed limit: shed with 429
	// even though the semaphore has free slots.
	s.mu.Lock()
	s.inflight = 1
	s.mu.Unlock()
	rec := postImage(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over adaptive limit: %d %s", rec.Code, rec.Body.String())
	}
	if len(s.sem) != 0 {
		t.Fatalf("shed request kept a semaphore token: %d held", len(s.sem))
	}
	s.mu.Lock()
	s.inflight = 0
	s.mu.Unlock()

	// Recovery: requests under target (clock stalled) grow the limit.
	stall := tick
	s.cfg.Now = func() time.Time { return stall }
	before := limit
	for i := 0; i < 8; i++ {
		if rec := postImage(t, s, api.PathLabel, img, imageio.FormatArt, api.Params{}); rec.Code != http.StatusOK {
			t.Fatalf("recovery request %d: %d", i, rec.Code)
		}
	}
	s.mu.Lock()
	after := s.limit
	s.mu.Unlock()
	if after <= before {
		t.Fatalf("limit did not recover: %v -> %v", before, after)
	}
	if after > float64(s.AdmissionCapacity()) {
		t.Fatalf("limit %v exceeds capacity %d", after, s.AdmissionCapacity())
	}
}
