// Package server implements slapd, the network labeling service: an
// http.Handler that decodes images (PNG, PBM, ASCII art, or the SLR1
// raw wire format), admits requests through a bounded queue with 429
// backpressure, labels them on a shared pool of warm Labelers, and
// reports itself through Prometheus-format metrics and a health
// endpoint. See the api package for the wire contract and the client
// package for the matching Go client.
//
// The shape follows the batch-kernel ingest pipelines of the parallel
// CCL literature: decode and admission are cheap and synchronous, the
// expensive labeling step runs on a fixed set of warm workers
// (per-request options retarget a worker without cold arenas), and load
// beyond the queue bound is shed immediately rather than buffered into
// unbounded memory.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"slapcc/api"
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/imageio"
	"slapcc/internal/obs"
	"slapcc/internal/seqcc"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// PathDebugRequests serves the in-memory trace ring (recent, slowest,
// errored requests) as JSON or HTML — slapd's x/net/trace analogue.
const PathDebugRequests = "/debug/requests"

// Config configures a Server; the zero value serves with GOMAXPROCS
// workers, a queue of 2× that, default image limits, and 64 MiB bodies.
type Config struct {
	// Options are the base labeling options; per-request parameters
	// override individual fields (connectivity, UF, cost, ArrayWidth).
	Options core.Options
	// Workers sizes the labeler pool (≤ 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker beyond the ones being served; admission refuses with 429
	// once Workers+QueueDepth requests are in flight (≤ 0 selects
	// 2×Workers).
	QueueDepth int
	// Limits bound decoded image sizes (zero fields select
	// imageio.DefaultLimits).
	Limits imageio.Limits
	// MaxBodyBytes bounds each request body, including whole batch
	// bodies (≤ 0 selects 64 MiB).
	MaxBodyBytes int64
	// MaxBatchFrames bounds parts per batch request (≤ 0 selects 64).
	MaxBatchFrames int
	// RetryAfter is the hint sent with 429 responses (≤ 0 selects 1s;
	// sub-second values round up to 1s on the wire).
	RetryAfter time.Duration
	// Verify cross-checks every labeling against the sequential ground
	// truth before answering — the belt-and-suspenders mode for
	// conformance runs; leave false in production.
	Verify bool
	// LatencyTarget enables adaptive (AIMD) admission: while completed
	// requests run over the target the concurrency limit decreases
	// multiplicatively, and while they hold under it the limit recovers
	// additively toward Workers+QueueDepth — so the server sheds load
	// the moment latency degrades instead of waiting for the queue to
	// fill. 0 (the default) keeps the fixed Workers+QueueDepth bound.
	LatencyTarget time.Duration
	// Logf receives one line per notable server event (recovered
	// panics, with the request ID and stack); nil discards.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests); nil selects time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxBatchFrames <= 0 {
		c.MaxBatchFrames = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the slapd http.Handler. Construct with New, serve with any
// http.Server, and call Shutdown to drain before exit.
type Server struct {
	cfg  Config
	pool *core.LabelerPool
	mux  *http.ServeMux
	reg  *registry
	ring *obs.Ring

	// Admission: sem holds one token per admitted request; inflight
	// counts them for the drain and the gauge. mu serializes admission
	// against Shutdown so no request slips in after the drain begins.
	sem      chan struct{}
	mu       sync.Mutex
	draining bool
	inflight int
	idle     sync.Cond // signaled whenever inflight drops

	// Adaptive admission (mu-guarded): limit is the AIMD concurrency
	// bound in [1, Workers+QueueDepth] (pinned at the capacity while
	// LatencyTarget is 0), estEWMA the running latency estimate in
	// seconds that scales deadline-budget rejection by queue depth.
	limit   float64
	estEWMA float64
}

// New returns a Server ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  core.NewLabelerPool(cfg.Options, cfg.Workers),
		mux:   http.NewServeMux(),
		reg:   newRegistry(),
		ring:  obs.NewRing(0, 0, 0),
		sem:   make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		limit: float64(cfg.Workers + cfg.QueueDepth),
	}
	s.idle.L = &s.mu
	s.mux.HandleFunc(api.PathLabel, s.instrument("label", s.admitted("label", s.recovered(s.handleLabel))))
	s.mux.HandleFunc(api.PathAggregate, s.instrument("aggregate", s.admitted("aggregate", s.recovered(s.handleAggregate))))
	s.mux.HandleFunc(api.PathBatch, s.instrument("batch", s.admitted("batch", s.recovered(s.handleBatch))))
	s.mux.HandleFunc(api.PathHealthz, s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc(api.PathMetrics, s.instrument("metrics", s.handleMetrics))
	s.mux.Handle(PathDebugRequests, s.DebugHandler())
	return s
}

// DebugHandler serves the trace ring — mounted on the main mux at
// PathDebugRequests and remountable on a separate -debugaddr listener.
func (s *Server) DebugHandler() http.Handler { return s.ring.Handler() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Workers returns the labeler pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// AdmissionCapacity returns how many requests may be in flight before
// admission sheds with 429.
func (s *Server) AdmissionCapacity() int { return s.cfg.Workers + s.cfg.QueueDepth }

// HoldAdmissionForTest occupies every admission slot until release is
// closed, then frees them — the hook conformance tests use to drive
// genuine 429 backpressure through real HTTP requests.
func (s *Server) HoldAdmissionForTest(release <-chan struct{}) {
	n := s.AdmissionCapacity()
	for i := 0; i < n; i++ {
		s.sem <- struct{}{}
	}
	<-release
	for i := 0; i < n; i++ {
		<-s.sem
	}
}

// Shutdown drains the server: new requests are refused with 503 (and
// /healthz reports unhealthy, so load balancers stop routing here),
// while every already-admitted request runs to completion. It returns
// nil once the last one finishes, or ctx's error on timeout. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.inflight > 0 {
			s.idle.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with per-endpoint request and latency
// accounting.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.cfg.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.reg.observe(name, sw.code, s.cfg.Now().Sub(start))
	}
}

// admitted wraps a labeling handler with method filtering, request-ID
// assignment, the request trace, deadline-budget screening, drain
// refusal, and the bounded admission queue: when Workers+QueueDepth
// requests are already in flight — or, under a LatencyTarget, when the
// AIMD limit is reached — the request is shed immediately with 429 and
// a Retry-After hint instead of queueing without bound.
func (s *Server) admitted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		// Request ID: take the caller's, mint one otherwise. The response
		// header is set before anything can fail, so writeError (and the
		// panic recovery below it) echo the ID from any depth.
		id := r.Header.Get(api.HeaderRequestID)
		if id == "" {
			id = api.NewRequestID()
		}
		w.Header().Set(api.HeaderRequestID, id)

		// The request trace rides the context from here on: core's span
		// hooks (pool wait, strips, stitch) attach under whatever stage
		// span the handler has opened. Every exit — shed, refused, failed,
		// answered — finalizes into the stage histograms and the
		// /debug/requests ring.
		tr := obs.New(id, name, s.cfg.Now)
		ctx := obs.ContextWith(api.ContextWithRequestID(r.Context(), id), tr.Root())
		r = r.WithContext(ctx)
		defer func() {
			if sw, ok := w.(*statusWriter); ok && sw.code >= http.StatusBadRequest {
				if sw.code == statusClientClosedRequest {
					tr.Root().Cancel()
				} else {
					tr.Root().Fail(fmt.Sprintf("http %d", sw.code))
				}
			}
			tr.Finish()
			s.reg.observeStages(tr.Stages())
			s.ring.Observe(tr)
		}()

		// Deadline budget: a spent budget — or one the current queue
		// cannot plausibly meet — fails fast with 504 before touching the
		// labeler pool; a live one bounds the request context, so the
		// strip loop stops between strips when it expires mid-run.
		if budget, ok := api.ParseDeadline(r.Header.Get(api.HeaderDeadlineMS)); ok {
			if budget <= 0 {
				s.reg.addDeadlineRejected()
				writeError(w, http.StatusGatewayTimeout, "deadline budget already spent")
				return
			}
			if need := s.deadlineEstimate(); need > 0 && budget < need {
				s.reg.addDeadlineRejected()
				writeError(w, http.StatusGatewayTimeout,
					fmt.Sprintf("deadline budget %v under queue-scaled estimate %v", budget, need))
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), budget)
			defer cancel()
			r = r.WithContext(ctx)
		}

		// The admission walk is non-blocking (load is shed, not queued),
		// so the "queue" span is usually microseconds — it exists so a
		// trace that *was* delayed at admission says so explicitly.
		qsp := tr.Root().Child("queue")
		shed := func() {
			qsp.End()
			s.reg.addRejected()
			secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, "admission queue full, retry later")
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			qsp.End()
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.mu.Unlock()
			shed()
			return
		}
		// The semaphore is the hard capacity bound; the adaptive limit
		// sheds earlier while latency runs over target.
		if lim := int(s.limit); s.cfg.LatencyTarget > 0 && s.inflight >= lim {
			<-s.sem
			s.mu.Unlock()
			shed()
			return
		}
		s.inflight++
		s.mu.Unlock()
		qsp.End()
		start := s.cfg.Now()
		defer func() {
			s.observeAdmitted(s.cfg.Now().Sub(start))
			<-s.sem
			s.mu.Lock()
			s.inflight--
			s.mu.Unlock()
			s.idle.Broadcast()
		}()
		h(w, r)
	}
}

// recovered wraps a handler with panic isolation: a panicking request
// answers 500 (with its request ID), counts in slapd_panics_total, and
// logs the stack — instead of killing the connection and whatever else
// shared its goroutine's fate. The labeler pool independently replaces
// a worker that panicked mid-run (see core.LabelerPool), so one
// poisoned request costs one response, not a worker.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.reg.addPanic()
				id := w.Header().Get(api.HeaderRequestID)
				s.logf("panic serving %s (request %s): %v\n%s", r.URL.Path, id, p, debug.Stack())
				if sw, ok := w.(*statusWriter); !ok || sw.code == 0 {
					writeError(w, http.StatusInternalServerError, "internal error")
				}
			}
		}()
		h(w, r)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// observeAdmitted feeds one admitted request's wall time into the
// latency estimate and — under a LatencyTarget — the AIMD limit:
// multiplicative decrease the moment a request runs over target,
// additive (1/limit per completion ≈ +1 per round) recovery while
// requests hold under it.
func (s *Server) observeAdmitted(dur time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := dur.Seconds()
	if s.estEWMA == 0 {
		s.estEWMA = sec
	} else {
		s.estEWMA += 0.2 * (sec - s.estEWMA)
	}
	if s.cfg.LatencyTarget <= 0 {
		return
	}
	capf := float64(s.cfg.Workers + s.cfg.QueueDepth)
	if dur > s.cfg.LatencyTarget {
		s.limit *= 0.8
		if s.limit < 1 {
			s.limit = 1
		}
	} else {
		s.limit += 1 / s.limit
		if s.limit > capf {
			s.limit = capf
		}
	}
}

// deadlineEstimate is what a newly admitted request is expected to
// need: the latency EWMA scaled by the queue turns ahead of it. Zero
// until the first request completes — with no history the server
// admits and lets the in-run deadline do its job.
func (s *Server) deadlineEstimate() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.estEWMA == 0 {
		return 0
	}
	waiting := s.inflight - s.cfg.Workers
	if waiting < 0 {
		waiting = 0
	}
	turns := 1 + float64(waiting)/float64(s.cfg.Workers)
	return time.Duration(s.estEWMA * turns * float64(time.Second))
}

// handleHealthz answers the routing signal coordinators act on: 200
// with a JSON HealthResponse (queue depth included, so a balancer can
// prefer idle backends) while serving, 503 with Status "draining" the
// moment Shutdown begins — before the drain finishes — so upstreams
// stop routing here while in-flight requests complete.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := api.HealthResponse{
		Status:   "ok",
		Inflight: s.inflight,
		Capacity: s.AdmissionCapacity(),
		Workers:  s.cfg.Workers,
	}
	if s.cfg.LatencyTarget > 0 {
		resp.AdmissionLimit = int(s.limit)
	}
	draining := s.draining
	s.mu.Unlock()
	if resp.QueueDepth = resp.Inflight - s.cfg.Workers; resp.QueueDepth < 0 {
		resp.QueueDepth = 0
	}
	code := http.StatusOK
	if draining {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	gv := gauges{
		inflight: s.inflight,
		capacity: s.AdmissionCapacity(),
		limit:    int(s.limit),
		workers:  s.cfg.Workers,
		idle:     s.pool.Idle(),
		draining: s.draining,
	}
	s.mu.Unlock()
	if gv.queueDep = gv.inflight - s.cfg.Workers; gv.queueDep < 0 {
		gv.queueDep = 0
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.render(w, gv)
}

// readFrame reads and decodes the request body under the configured
// bounds; the returned status is the HTTP code to answer on error.
func (s *Server) readFrame(w http.ResponseWriter, r *http.Request, p api.Params) (*bitmap.Bitmap, int, error) {
	format, err := imageio.ParseFormat(p.Format)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if format == imageio.FormatAuto {
		format = imageio.FormatFromContentType(r.Header.Get("Content-Type"))
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return nil, http.StatusBadRequest, err
	}
	s.reg.addBytesIn(int64(len(body)))
	img, err := imageio.DecodeBytes(body, format, s.cfg.Limits)
	if err != nil {
		if errors.Is(err, imageio.ErrLimit) {
			return nil, http.StatusRequestEntityTooLarge, err
		}
		return nil, http.StatusBadRequest, err
	}
	if testDecodeHook != nil {
		testDecodeHook(img)
	}
	return img, 0, nil
}

// testDecodeHook, when set by a test, observes every successfully
// decoded frame — the seam panic-isolation tests use to poison one
// request without inventing an unparseable-yet-parseable image.
var testDecodeHook func(*bitmap.Bitmap)

// optionsFor resolves per-request parameters over the base options.
func (s *Server) optionsFor(p api.Params, imgW, imgH int) (core.Options, error) {
	return OptionsFromParams(s.cfg.Options, p, imgW, imgH)
}

// OptionsFromParams resolves wire parameters over base options for an
// imgW×imgH frame — the one translation every program serving or
// replaying the api must share (slapd resolves requests with it; the
// slapfront coordinator resolves its local-fallback runs with it, so a
// degraded run is configured exactly as the backends would be).
func OptionsFromParams(base core.Options, p api.Params, imgW, imgH int) (core.Options, error) {
	opt := base
	switch p.Connectivity {
	case 0:
	case 4:
		opt.Connectivity = bitmap.Conn4
	case 8:
		opt.Connectivity = bitmap.Conn8
	default:
		return opt, fmt.Errorf("bad conn %d (want 4 or 8)", p.Connectivity)
	}
	if p.UF != "" {
		kind := unionfind.Kind(p.UF)
		if !unionfind.Valid(kind) {
			return opt, fmt.Errorf("unknown uf %q (want one of %v)", p.UF, unionfind.Kinds())
		}
		opt.UF = kind
	}
	if p.WordBits < 0 {
		return opt, fmt.Errorf("bad wordbits %d (must be ≥ 0)", p.WordBits)
	}
	// cost= is the engine selector: unit and bitserial pick the metered
	// simulator under the matching charge model; host picks the host
	// engine (same answers, no simulation, zero Metrics on the wire).
	switch strings.ToLower(p.Cost) {
	case "", "unit":
	case "bitserial":
		bits := p.WordBits
		if bits == 0 {
			bits = slap.WordBitsForDims(imgW, imgH)
		}
		opt.Cost = slap.BitSerial(bits)
	case "host":
		opt.Engine = core.EngineHost
	default:
		return opt, fmt.Errorf("bad cost %q (want unit, bitserial, or host)", p.Cost)
	}
	if p.ArrayWidth < 0 {
		return opt, fmt.Errorf("bad array %d (must be ≥ 0)", p.ArrayWidth)
	}
	if p.ArrayWidth > 0 {
		opt.ArrayWidth = p.ArrayWidth
	}
	if p.Seam != "" {
		seam := core.SeamModel(strings.ToLower(p.Seam))
		if !seam.Valid() {
			return opt, fmt.Errorf("bad seam %q (want %q or %q)", p.Seam, core.SeamDistributed, core.SeamHost)
		}
		opt.Seam = seam
	}
	if p.Schedule != "" {
		sched := core.ScheduleModel(strings.ToLower(p.Schedule))
		if !sched.Valid() {
			return opt, fmt.Errorf("bad schedule %q (want %q or %q)", p.Schedule, core.ScheduleSequential, core.SchedulePipelined)
		}
		opt.Schedule = sched
	}
	return opt, nil
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	p, err := api.ParamsFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp := obs.FromContext(r.Context())
	dsp := sp.Child("decode")
	img, status, err := s.readFrame(w, r, p)
	dsp.EndErr(err)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	resp, status, err := s.labelOne(r.Context(), img, p)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	s.reg.addFrames(1)
	writeTraced(w, http.StatusOK, resp, sp)
}

// statusClientClosedRequest is nginx's conventional code for "the
// client hung up before we answered" — nothing standard fits, and the
// write usually goes nowhere, but the access log and metrics should
// distinguish an abandoned request from a bad one.
const statusClientClosedRequest = 499

// labelOne labels a decoded frame on the pool under per-request
// params. The request context propagates into the run: a client that
// hangs up cancels a strip-mined labeling between strips instead of
// paying for the whole image.
func (s *Server) labelOne(ctx context.Context, img *bitmap.Bitmap, p api.Params) (*api.LabelResponse, int, error) {
	opt, err := s.optionsFor(p, img.W(), img.H())
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// The "label" span covers the whole engine run — pool wait, strips,
	// and stitch attach under it via the context.
	rsp := obs.FromContext(ctx).Child("label")
	annotateEngine(rsp, opt)
	ctx = obs.ContextWith(ctx, rsp)
	// A client that didn't ask for labels only needs the summary — let
	// the engine skip materializing the labeling (the host engine does;
	// the simulator ignores it). Server-side verification still needs
	// the labels to check.
	opt.SkipLabels = !p.WantLabels && !s.cfg.Verify
	res, err := s.pool.LabelWithCtx(ctx, img, opt)
	if err != nil {
		rsp.EndErr(err)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, err
		}
		if ctx.Err() != nil {
			return nil, statusClientClosedRequest, err
		}
		return nil, http.StatusBadRequest, err
	}
	if s.cfg.Verify {
		conn := opt.Connectivity
		if conn == 0 {
			conn = bitmap.Conn4
		}
		if err := seqcc.CheckConn(img, res.Labels, conn); err != nil {
			err = fmt.Errorf("verification failed: %w", err)
			rsp.EndErr(err)
			return nil, http.StatusInternalServerError, err
		}
	}
	// Materializing the response (summarizing, flattening the label map)
	// is part of producing the answer — the span closes after it, so the
	// stage decomposition accounts for the handler's real wall time.
	out := ToLabelResponse(res, p.WantLabels)
	rsp.End()
	return out, 0, nil
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	p, err := api.ParamsFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	op, err := monoidByName(p.Op)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp := obs.FromContext(r.Context())
	dsp := sp.Child("decode")
	img, status, err := s.readFrame(w, r, p)
	dsp.EndErr(err)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	opt, err := s.optionsFor(p, img.W(), img.H())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	initial, err := InitialValues(img, p.Initial, p.InitialOffset)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rsp := sp.Child("aggregate")
	annotateEngine(rsp, opt)
	res, err := s.pool.AggregateWithCtx(obs.ContextWith(r.Context(), rsp), img, initial, op, opt)
	if err != nil {
		rsp.EndErr(err)
		if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, err.Error())
			return
		}
		if r.Context().Err() != nil {
			writeError(w, statusClientClosedRequest, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := ToAggregateResponse(res, op.Name, p.WantLabels)
	rsp.End()
	s.reg.addFrames(1)
	writeTraced(w, http.StatusOK, resp, sp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	p, err := api.ParamsFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp := obs.FromContext(r.Context())
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	mr, err := r.MultipartReader()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch requires multipart/form-data: %v", err))
		return
	}
	dsp := sp.Child("decode")

	// Decode parts synchronously (cheap), then fan the expensive
	// labeling out across the shared pool: each frame retargets a warm
	// worker, and the batch finishes when its slowest frame does.
	// Results stay in part order by construction.
	type frame struct {
		idx int
		img *bitmap.Bitmap
	}
	var frames []frame
	items := []api.BatchItem{}
	for {
		part, err := mr.NextPart()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			dsp.EndErr(err)
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("batch body exceeds %d bytes", s.cfg.MaxBodyBytes))
			} else {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("reading batch part %d: %v", len(items), err))
			}
			return
		}
		idx := len(items)
		if idx >= s.cfg.MaxBatchFrames {
			part.Close()
			dsp.End()
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("batch exceeds %d frames", s.cfg.MaxBatchFrames))
			return
		}
		img, perr := s.decodePart(part, p)
		part.Close()
		if perr != nil {
			items = append(items, api.BatchItem{Index: idx, Error: perr.Error()})
			continue
		}
		items = append(items, api.BatchItem{Index: idx})
		frames = append(frames, frame{idx: idx, img: img})
	}
	dsp.End()

	var wg sync.WaitGroup
	for _, f := range frames {
		wg.Add(1)
		go func(f frame) {
			defer wg.Done()
			fsp := sp.Child("frame")
			if fsp != nil {
				fsp.Annotate("i=" + strconv.Itoa(f.idx))
			}
			resp, _, err := s.labelOne(obs.ContextWith(r.Context(), fsp), f.img, p)
			fsp.EndErr(err)
			if err != nil {
				items[f.idx].Error = err.Error()
				return
			}
			items[f.idx].Result = resp
		}(f)
	}
	wg.Wait()

	out := api.BatchResponse{Frames: len(items), Results: items}
	labeled := 0
	for _, it := range items {
		if it.Error != "" {
			out.Errors++
		}
		if it.Result != nil {
			labeled++
		}
	}
	s.reg.addFrames(labeled)
	writeTraced(w, http.StatusOK, out, sp)
}

// decodePart decodes one multipart frame; the part's Content-Type
// overrides the batch-level format parameter when present.
func (s *Server) decodePart(part *multipart.Part, p api.Params) (*bitmap.Bitmap, error) {
	format, err := imageio.ParseFormat(p.Format)
	if err != nil {
		return nil, err
	}
	if ct := part.Header.Get("Content-Type"); ct != "" {
		if f := imageio.FormatFromContentType(ct); f != imageio.FormatAuto {
			format = f
		}
	}
	data, err := io.ReadAll(part)
	if err != nil {
		return nil, err
	}
	s.reg.addBytesIn(int64(len(data)))
	return imageio.DecodeBytes(data, format, s.cfg.Limits)
}

// ToLabelResponse converts a core result to the wire form — exported
// so the slapfront coordinator answers composed runs with byte-for-byte
// the JSON a local slapd would have produced.
func ToLabelResponse(res *core.Result, wantLabels bool) *api.LabelResponse {
	lm := res.Labels
	var st seqcc.Stats
	w, h := 0, 0
	if lm != nil {
		w, h = lm.W(), lm.H()
	}
	if s := res.Summary; s != nil {
		// The engine already summarized along its own sweep (host engine:
		// O(runs)); the values are identical to Summarize's by contract.
		// A summary-only result (Options.SkipLabels) has no label map at
		// all — the summary carries the frame dimensions instead.
		st = seqcc.Stats{Components: s.Components, Foreground: s.Foreground, Largest: s.Largest}
		if lm == nil {
			w, h = s.W, s.H
		}
	} else {
		st = seqcc.Summarize(lm)
	}
	out := &api.LabelResponse{
		Width:      w,
		Height:     h,
		Foreground: st.Foreground,
		Components: st.Components,
		Largest:    st.Largest,
		Metrics: api.Metrics{
			ArrayWidth: res.Metrics.N,
			TimeSteps:  res.Metrics.Time,
			Sends:      res.Metrics.Sends,
			Words:      res.Metrics.Words,
			MaxQueue:   res.Metrics.MaxQueue,
			PEMemory:   res.Metrics.PEMemory,
		},
		UF: api.UFReport{
			Kind:       string(res.UF.Kind),
			Finds:      res.UF.Finds,
			Unions:     res.UF.Unions,
			TotalSteps: res.UF.TotalSteps,
			MaxOpCost:  res.UF.MaxOpCost,
			MeanOpCost: res.UF.MeanOpCost,
		},
	}
	for _, ph := range res.Metrics.Phases {
		out.Metrics.Phases = append(out.Metrics.Phases, api.PhaseMetrics{
			Name:     ph.Name,
			Makespan: ph.Makespan,
			Sends:    ph.Sends,
			Words:    ph.Words,
			Idle:     ph.Idle,
			MaxQueue: ph.MaxQueue,
		})
	}
	if wantLabels && lm != nil {
		labels := make([]int32, 0, lm.W()*lm.H())
		for x := 0; x < lm.W(); x++ {
			labels = append(labels, lm.ColumnSlice(x)...)
		}
		out.Labels = labels
	}
	return out
}

// ToAggregateResponse is ToLabelResponse for aggregation runs.
func ToAggregateResponse(res *core.AggregateResult, opName string, wantLabels bool) *api.AggregateResponse {
	resp := &api.AggregateResponse{
		LabelResponse: *ToLabelResponse(&core.Result{Labels: res.Labels, Metrics: res.Metrics, UF: res.UF, Summary: res.Summary}, wantLabels),
		Op:            opName,
	}
	if wantLabels {
		resp.PerPixel = res.PerPixel
	}
	return resp
}

// MonoidByName resolves a wire op name to the core monoid ("" = min,
// the paper's Corollary 4 operator).
func MonoidByName(name string) (core.Monoid, error) {
	return monoidByName(name)
}

func monoidByName(name string) (core.Monoid, error) {
	switch strings.ToLower(name) {
	case "", "min":
		return core.Min(), nil
	case "max":
		return core.Max(), nil
	case "sum":
		return core.Sum(), nil
	case "or":
		return core.Or(), nil
	}
	return core.Monoid{}, fmt.Errorf("unknown op %q (min, max, sum, or)", name)
}

// InitialValues builds the initial per-pixel aggregation values: all
// ones, or column-major positions shifted by offset (a strip of a
// larger image passes its global origin, so per-strip folds match the
// whole-image run's).
func InitialValues(img *bitmap.Bitmap, kind string, offset int) ([]int32, error) {
	switch strings.ToLower(kind) {
	case "", "ones":
		return core.Ones(img), nil
	case "positions":
		init := make([]int32, img.W()*img.H())
		for i := range init {
			init[i] = int32(i + offset)
		}
		return init, nil
	}
	return nil, fmt.Errorf("unknown initial %q (ones, positions)", kind)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// annotateEngine tags a run span with the engine answering it.
func annotateEngine(sp *obs.Span, opt core.Options) {
	if sp == nil {
		return
	}
	if opt.Engine == core.EngineHost {
		sp.Annotate("engine=host")
	} else {
		sp.Annotate("engine=sim")
	}
}

// writeTraced is writeJSON for traced success responses: the body is
// encoded to a buffer under an "encode" span, then the trace's stage
// breakdown rides ahead of it in a Server-Timing header (headers must
// precede the body, so the encoder cannot stream straight to the
// wire). The bytes written are identical to writeJSON's.
func writeTraced(w http.ResponseWriter, code int, v any, sp *obs.Span) {
	if sp == nil {
		writeJSON(w, code, v)
		return
	}
	esp := sp.Child("encode")
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	err := enc.Encode(v)
	esp.EndErr(err)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if tr := sp.Trace(); tr != nil {
		if st := tr.ServerTiming(); st != "" {
			w.Header().Set("Server-Timing", st)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

// writeError answers an ErrorResponse; the request ID the admission
// middleware stamped on the response header (if any) rides along in the
// payload, so an error seen three tiers up is traceable to one line in
// this server's log.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, api.ErrorResponse{Error: msg, RequestID: w.Header().Get(api.HeaderRequestID)})
}
