package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"slapcc/api"
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/imageio"
	"slapcc/internal/unionfind"
)

// TestParamRejectionTable pins the wire contract for malformed option
// values: every unknown cost/uf/seam/schedule/conn/op answers 400, and
// the error body names the valid options, so a caller who typos a
// parameter learns the menu instead of silently getting a default.
func TestParamRejectionTable(t *testing.T) {
	s := New(Config{Workers: 1})
	img := bitmap.Random(8, 0.5, 7)
	kindList := fmt.Sprintf("%v", unionfind.Kinds())
	cases := []struct {
		name string
		path string
		p    api.Params
		want string // substring of the error body naming valid options
	}{
		{"cost", api.PathLabel, api.Params{Cost: "quantum"}, `bad cost "quantum" (want unit, bitserial, or host)`},
		{"cost-agg", api.PathAggregate, api.Params{Cost: "free"}, "want unit, bitserial, or host"},
		{"uf", api.PathLabel, api.Params{UF: "bogus"}, fmt.Sprintf(`unknown uf "bogus" (want one of %s)`, kindList)},
		{"seam", api.PathLabel, api.Params{Seam: "psychic"}, `bad seam "psychic" (want "distributed" or "host")`},
		{"schedule", api.PathLabel, api.Params{Schedule: "chaotic"}, `bad schedule "chaotic" (want "sequential" or "pipelined")`},
		{"conn", api.PathLabel, api.Params{Connectivity: 6}, "bad conn 6 (want 4 or 8)"},
		{"op", api.PathAggregate, api.Params{Op: "xor"}, `unknown op "xor" (min, max, sum, or)`},
		{"array", api.PathLabel, api.Params{ArrayWidth: -3}, "bad array -3"},
		{"wordbits", api.PathLabel, api.Params{WordBits: -1}, "bad wordbits -1"},
	}
	for _, tc := range cases {
		rec := postImage(t, s, tc.path, img, imageio.FormatRaw, tc.p)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: code %d (%s), want 400", tc.name, rec.Code, rec.Body.String())
		}
		er := decodeJSON[api.ErrorResponse](t, rec)
		if !strings.Contains(er.Error, tc.want) {
			t.Fatalf("%s: error %q does not name the valid options (want substring %q)", tc.name, er.Error, tc.want)
		}
	}
}

// TestCostParamResolution pins the cost= → engine/cost-model mapping at
// the OptionsFromParams seam every serving program shares.
func TestCostParamResolution(t *testing.T) {
	for _, cost := range []string{"", "unit", "bitserial", "host", "HOST"} {
		opt, err := OptionsFromParams(core.Options{}, api.Params{Cost: cost}, 16, 16)
		if err != nil {
			t.Fatalf("cost=%q: %v", cost, err)
		}
		wantHost := strings.EqualFold(cost, "host")
		if got := opt.Engine == core.EngineHost; got != wantHost {
			t.Fatalf("cost=%q: Engine = %q", cost, opt.Engine)
		}
		if cost == "bitserial" && opt.Cost.WordBits == 0 {
			t.Fatalf("cost=bitserial: word width not derived")
		}
	}
}

// TestHostCostEndToEnd serves cost=host through the real handlers: the
// labels and folds are bit-identical to the simulator's, the response
// Metrics is all zeros (no phases, no simulated time), and the UF
// report carries the host labeler's counts under kind "host".
func TestHostCostEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2, Verify: true})
	img := bitmap.Random(32, 0.5, 21)

	simRec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{WantLabels: true})
	hostRec := postImage(t, s, api.PathLabel, img, imageio.FormatRaw, api.Params{Cost: "host", WantLabels: true})
	if simRec.Code != http.StatusOK || hostRec.Code != http.StatusOK {
		t.Fatalf("label codes sim=%d host=%d: %s", simRec.Code, hostRec.Code, hostRec.Body.String())
	}
	sim := decodeJSON[api.LabelResponse](t, simRec)
	host := decodeJSON[api.LabelResponse](t, hostRec)
	if len(host.Labels) != len(sim.Labels) {
		t.Fatalf("label count host %d, sim %d", len(host.Labels), len(sim.Labels))
	}
	for i := range sim.Labels {
		if host.Labels[i] != sim.Labels[i] {
			t.Fatalf("label[%d] host %d, sim %d", i, host.Labels[i], sim.Labels[i])
		}
	}
	if host.Components != sim.Components || host.Foreground != sim.Foreground || host.Largest != sim.Largest {
		t.Fatalf("summary diverges: host %+v, sim %+v", host, sim)
	}
	if host.Metrics.TimeSteps != 0 || host.Metrics.Sends != 0 || len(host.Metrics.Phases) != 0 || host.Metrics.ArrayWidth != 0 {
		t.Fatalf("host run leaked simulated metrics: %+v", host.Metrics)
	}
	if host.UF.Kind != string(core.HostUFKind) || host.UF.Finds == 0 {
		t.Fatalf("host UF report %+v", host.UF)
	}
	if sim.Metrics.TimeSteps == 0 {
		t.Fatalf("simulator run lost its metrics: %+v", sim.Metrics)
	}

	// Summary-only (labels=0, server verification off): the host engine
	// answers without materializing the labeling at all, and the
	// response must still match a labeled host run field for field —
	// dimensions, summary, and UF report included.
	s2 := New(Config{Workers: 1})
	slim := decodeJSON[api.LabelResponse](t, postImage(t, s2, api.PathLabel, img, imageio.FormatRaw, api.Params{Cost: "host"}))
	if slim.Width != img.W() || slim.Height != img.H() {
		t.Fatalf("summary-only dims %dx%d, want %dx%d", slim.Width, slim.Height, img.W(), img.H())
	}
	if slim.Components != host.Components || slim.Foreground != host.Foreground || slim.Largest != host.Largest {
		t.Fatalf("summary-only summary diverges: %+v vs labeled %+v", slim, host)
	}
	if slim.UF != host.UF {
		t.Fatalf("summary-only UF report %+v, labeled %+v", slim.UF, host.UF)
	}
	if len(slim.Labels) != 0 {
		t.Fatalf("summary-only response carries %d labels", len(slim.Labels))
	}

	// Aggregation: component areas under cost=host, including a
	// strip-mined request (array= is a no-op for the host engine but
	// must be accepted — the cluster coordinator stamps it on strip jobs).
	for _, p := range []api.Params{
		{Cost: "host", Op: "sum", WantLabels: true},
		{Cost: "host", Op: "sum", ArrayWidth: 8, WantLabels: true},
	} {
		simA := decodeJSON[api.AggregateResponse](t, postImage(t, s, api.PathAggregate, img, imageio.FormatRaw, api.Params{Op: "sum", WantLabels: true}))
		rec := postImage(t, s, api.PathAggregate, img, imageio.FormatRaw, p)
		if rec.Code != http.StatusOK {
			t.Fatalf("aggregate array=%d: %d: %s", p.ArrayWidth, rec.Code, rec.Body.String())
		}
		hostA := decodeJSON[api.AggregateResponse](t, rec)
		for i := range simA.PerPixel {
			if hostA.PerPixel[i] != simA.PerPixel[i] {
				t.Fatalf("array=%d: per-pixel[%d] host %d, sim %d", p.ArrayWidth, i, hostA.PerPixel[i], simA.PerPixel[i])
			}
		}
		if hostA.Metrics.TimeSteps != 0 || len(hostA.Metrics.Phases) != 0 {
			t.Fatalf("array=%d: host aggregate leaked metrics: %+v", p.ArrayWidth, hostA.Metrics)
		}
	}
}
