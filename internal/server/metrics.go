package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"slapcc/internal/obs"
)

// registry is slapd's metrics store: per-endpoint request/latency
// histograms plus service-wide ingest totals, rendered in Prometheus
// text exposition format with no external dependencies. Everything
// renders in sorted label order so /metrics output is deterministic —
// the golden test depends on it, and diff-based scrape debugging
// benefits.
type registry struct {
	mu       sync.Mutex
	requests map[reqKey]int64
	lat      map[string]*obs.Histogram // request wall time by endpoint
	stage    map[string]*obs.Histogram // stage wall time by trace span name
	frames   int64
	bytesIn  int64
	rejected int64
	deadline int64
	panics   int64
}

type reqKey struct {
	endpoint string
	code     int
}

func newRegistry() *registry {
	return &registry{
		requests: make(map[reqKey]int64),
		lat:      make(map[string]*obs.Histogram),
		stage:    make(map[string]*obs.Histogram),
	}
}

// observe records one completed request.
func (g *registry) observe(endpoint string, code int, dur time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.requests[reqKey{endpoint, code}]++
	h := g.lat[endpoint]
	if h == nil {
		h = obs.NewHistogram(nil)
		g.lat[endpoint] = h
	}
	h.Observe(dur.Seconds())
}

// observeStages records a finished trace's top-level stage durations.
func (g *registry) observeStages(stages []obs.Stage) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, st := range stages {
		h := g.stage[st.Name]
		if h == nil {
			h = obs.NewHistogram(nil)
			g.stage[st.Name] = h
		}
		h.Observe(st.Dur.Seconds())
	}
}

func (g *registry) addFrames(n int)      { g.mu.Lock(); g.frames += int64(n); g.mu.Unlock() }
func (g *registry) addBytesIn(n int64)   { g.mu.Lock(); g.bytesIn += n; g.mu.Unlock() }
func (g *registry) addRejected()         { g.mu.Lock(); g.rejected++; g.mu.Unlock() }
func (g *registry) addDeadlineRejected() { g.mu.Lock(); g.deadline++; g.mu.Unlock() }
func (g *registry) addPanic()            { g.mu.Lock(); g.panics++; g.mu.Unlock() }

// gauges are the live values the server samples at render time.
type gauges struct {
	inflight int
	queueDep int
	capacity int
	limit    int
	idle     int
	workers  int
	draining bool
}

// render writes the whole exposition. Counter families come first, then
// gauges; within a family, series sort by label values.
func (g *registry) render(w io.Writer, gv gauges) {
	g.mu.Lock()
	defer g.mu.Unlock()

	fmt.Fprintln(w, "# HELP slapd_requests_total HTTP requests completed, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE slapd_requests_total counter")
	keys := make([]reqKey, 0, len(g.requests))
	for k := range g.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "slapd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, g.requests[k])
	}

	// Request and stage latencies render as cumulative-bucket histograms;
	// the _count/_sum series keep the names the old summary exposed, so
	// dashboards built on them survive the conversion.
	fmt.Fprintln(w, "# HELP slapd_request_seconds Wall time of completed requests, by endpoint.")
	fmt.Fprintln(w, "# TYPE slapd_request_seconds histogram")
	eps := make([]string, 0, len(g.lat))
	for ep := range g.lat {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		g.lat[ep].WriteProm(w, "slapd_request_seconds", fmt.Sprintf("endpoint=%q", ep))
	}

	fmt.Fprintln(w, "# HELP slapd_stage_seconds Wall time of request stages (top-level trace spans), by stage.")
	fmt.Fprintln(w, "# TYPE slapd_stage_seconds histogram")
	sts := make([]string, 0, len(g.stage))
	for st := range g.stage {
		sts = append(sts, st)
	}
	sort.Strings(sts)
	for _, st := range sts {
		g.stage[st].WriteProm(w, "slapd_stage_seconds", fmt.Sprintf("stage=%q", st))
	}

	fmt.Fprintln(w, "# HELP slapd_frames_labeled_total Frames labeled, counting every batch part.")
	fmt.Fprintln(w, "# TYPE slapd_frames_labeled_total counter")
	fmt.Fprintf(w, "slapd_frames_labeled_total %d\n", g.frames)
	fmt.Fprintln(w, "# HELP slapd_ingest_bytes_total Request body bytes accepted for decoding.")
	fmt.Fprintln(w, "# TYPE slapd_ingest_bytes_total counter")
	fmt.Fprintf(w, "slapd_ingest_bytes_total %d\n", g.bytesIn)
	fmt.Fprintln(w, "# HELP slapd_rejected_total Requests shed with 429 by admission control.")
	fmt.Fprintln(w, "# TYPE slapd_rejected_total counter")
	fmt.Fprintf(w, "slapd_rejected_total %d\n", g.rejected)
	fmt.Fprintln(w, "# HELP slapd_deadline_rejected_total Requests refused with 504 because their deadline budget was spent or unmeetable.")
	fmt.Fprintln(w, "# TYPE slapd_deadline_rejected_total counter")
	fmt.Fprintf(w, "slapd_deadline_rejected_total %d\n", g.deadline)
	fmt.Fprintln(w, "# HELP slapd_panics_total Handler panics recovered (each answered 500).")
	fmt.Fprintln(w, "# TYPE slapd_panics_total counter")
	fmt.Fprintf(w, "slapd_panics_total %d\n", g.panics)

	fmt.Fprintln(w, "# HELP slapd_inflight Admitted requests currently being served.")
	fmt.Fprintln(w, "# TYPE slapd_inflight gauge")
	fmt.Fprintf(w, "slapd_inflight %d\n", gv.inflight)
	fmt.Fprintln(w, "# HELP slapd_queue_depth Admitted requests waiting for a worker.")
	fmt.Fprintln(w, "# TYPE slapd_queue_depth gauge")
	fmt.Fprintf(w, "slapd_queue_depth %d\n", gv.queueDep)
	fmt.Fprintln(w, "# HELP slapd_admission_capacity Admission slots (workers + queue depth bound).")
	fmt.Fprintln(w, "# TYPE slapd_admission_capacity gauge")
	fmt.Fprintf(w, "slapd_admission_capacity %d\n", gv.capacity)
	fmt.Fprintln(w, "# HELP slapd_admission_limit Adaptive (AIMD) concurrency limit; equals capacity while no latency target is set.")
	fmt.Fprintln(w, "# TYPE slapd_admission_limit gauge")
	fmt.Fprintf(w, "slapd_admission_limit %d\n", gv.limit)
	fmt.Fprintln(w, "# HELP slapd_workers Labeler pool size.")
	fmt.Fprintln(w, "# TYPE slapd_workers gauge")
	fmt.Fprintf(w, "slapd_workers %d\n", gv.workers)
	fmt.Fprintln(w, "# HELP slapd_workers_idle Labeler pool workers currently free.")
	fmt.Fprintln(w, "# TYPE slapd_workers_idle gauge")
	fmt.Fprintf(w, "slapd_workers_idle %d\n", gv.idle)
	fmt.Fprintln(w, "# HELP slapd_draining 1 while the server is draining for shutdown.")
	fmt.Fprintln(w, "# TYPE slapd_draining gauge")
	fmt.Fprintf(w, "slapd_draining %d\n", boolGauge(gv.draining))
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
