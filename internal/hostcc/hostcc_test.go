package hostcc

import (
	"fmt"
	"math"
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
)

var conns = []bitmap.Connectivity{bitmap.Conn4, bitmap.Conn8}

func checkLabels(t *testing.T, name string, img *bitmap.Bitmap, conn bitmap.Connectivity, got *bitmap.LabelMap) {
	t.Helper()
	want := seqcc.BFSConn(img, conn)
	if !got.Equal(want) {
		t.Fatalf("%s conn%d: host labels diverge from BFS ground truth", name, conn)
	}
}

func TestLabelFamilies(t *testing.T) {
	lb := NewLabeler()
	for _, fam := range bitmap.Families() {
		for _, n := range []int{1, 7, 33, 64, 65, 96} {
			img := fam.Generate(n)
			for _, conn := range conns {
				got, st := lb.Label(img, conn)
				checkLabels(t, fmt.Sprintf("%s n=%d", fam.Name, n), img, conn, got)
				if st.Runs < 0 || st.Finds < 0 {
					t.Fatalf("%s n=%d: negative stats %+v", fam.Name, n, st)
				}
			}
		}
	}
}

func TestLabelNonSquare(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 130}, {130, 1}, {3, 64}, {64, 3}, {17, 129}, {128, 63}, {63, 128}}
	seed := uint64(0xD00D)
	for _, sh := range shapes {
		for _, density := range []float64{0.1, 0.5, 0.9} {
			img := bitmap.RandomRect(sh[0], sh[1], density, seed)
			seed++
			for _, conn := range conns {
				got, _ := Label(img, conn)
				checkLabels(t, fmt.Sprintf("%dx%d d=%.1f", sh[0], sh[1], density), img, conn, got)
			}
		}
	}
}

// Runs that cross 64-bit word boundaries exercise the carry/lookahead
// bits of the start/end masks; pin them explicitly.
func TestLabelWordBoundaryRuns(t *testing.T) {
	img := bitmap.New(3, 200)
	for y := 10; y <= 130; y++ { // one run spanning words 0..2
		img.Set(0, y, true)
	}
	img.Set(0, 63, true) // already inside the run
	img.Set(1, 63, true)
	img.Set(1, 64, true) // run exactly on the boundary
	img.Set(2, 199, true)
	for _, conn := range conns {
		got, st := Label(img, conn)
		checkLabels(t, "word-boundary", img, conn, got)
		if st.Runs != 3 {
			t.Fatalf("conn%d: got %d runs, want 3", conn, st.Runs)
		}
	}
}

func TestAggregateMatchesReference(t *testing.T) {
	type mono struct {
		name     string
		identity int32
		combine  func(a, b int32) int32
	}
	monoids := []mono{
		{"sum", 0, func(a, b int32) int32 { return a + b }},
		{"min", math.MaxInt32, func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		}},
		{"max", math.MinInt32, func(a, b int32) int32 {
			if a > b {
				return a
			}
			return b
		}},
		{"or", 0, func(a, b int32) int32 { return a | b }},
	}
	lb := NewLabeler()
	seed := uint64(0xA66)
	for _, sh := range [][2]int{{40, 25}, {25, 40}, {64, 64}, {130, 7}} {
		img := bitmap.RandomRect(sh[0], sh[1], 0.55, seed)
		seed++
		initial := make([]int32, sh[0]*sh[1])
		for i := range initial {
			initial[i] = int32(i%17) - 4
		}
		for _, m := range monoids {
			// The sequential reference is 4-connected; host conn4 must match.
			labels, per, _ := lb.Aggregate(img, initial, m.identity, m.combine, bitmap.Conn4)
			checkLabels(t, "agg-"+m.name, img, bitmap.Conn4, labels)
			want := seqcc.AggregateRef(img, initial, m.combine, m.identity)
			for i := range want {
				if per[i] != want[i] {
					t.Fatalf("%s %dx%d: per-pixel[%d] = %d, want %d", m.name, sh[0], sh[1], i, per[i], want[i])
				}
			}
		}
	}
}

// Summary must return exactly the Stats a Label call would — it is the
// summary-only service fast path, and the wire response built from it
// has to match a labeled run's field for field.
func TestSummaryMatchesLabel(t *testing.T) {
	lb := NewLabeler()
	for _, fam := range bitmap.Families() {
		for _, n := range []int{1, 7, 64, 65, 96} {
			img := fam.Generate(n)
			for _, conn := range conns {
				_, want := lb.Label(img, conn)
				got := lb.Summary(img, conn)
				if got != want {
					t.Fatalf("%s n=%d conn%d: Summary stats %+v != Label stats %+v", fam.Name, n, conn, got, want)
				}
			}
		}
	}
	for _, sh := range [][2]int{{0, 0}, {0, 5}, {5, 0}, {1, 130}, {130, 1}, {128, 63}} {
		img := bitmap.RandomRect(sh[0], sh[1], 0.5, uint64(sh[0])*131+uint64(sh[1]))
		_, want := lb.Label(img, bitmap.Conn8)
		if got := lb.Summary(img, bitmap.Conn8); got != want {
			t.Fatalf("%dx%d: Summary stats %+v != Label stats %+v", sh[0], sh[1], got, want)
		}
	}
}

func TestArenaReuseIsIdentical(t *testing.T) {
	lb := NewLabeler()
	img1 := bitmap.Random(80, 0.5, 1)
	img2 := bitmap.Random(50, 0.7, 2)
	first, st1 := lb.Label(img1, bitmap.Conn4)
	lb.Label(img2, bitmap.Conn8) // dirty the arenas with a different shape
	again, st2 := lb.Label(img1, bitmap.Conn4)
	if !first.Equal(again) {
		t.Fatal("warm rerun diverged from fresh run")
	}
	if st1 != st2 {
		t.Fatalf("warm rerun stats %+v != fresh %+v", st2, st1)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	for _, sh := range [][2]int{{0, 0}, {0, 5}, {5, 0}} {
		img := bitmap.New(sh[0], sh[1])
		got, st := Label(img, bitmap.Conn4)
		if got.W() != sh[0] || got.H() != sh[1] || st.Runs != 0 {
			t.Fatalf("%dx%d: got %dx%d, %d runs", sh[0], sh[1], got.W(), got.H(), st.Runs)
		}
	}
}
