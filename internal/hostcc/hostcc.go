// Package hostcc is the host execution engine: a word-parallel two-pass
// connected-component labeler that computes the same canonical
// least-column-major labeling as the simulated SLAP — and the same
// Corollary 4 aggregate folds — without simulating anything. No phases,
// no metered union–find, no systolic accounting: just answers, at
// hundreds of megabytes per second instead of single digits.
//
// The algorithm is the classic run-based two-pass labeler (PAPERS.md:
// Gupta et al. 1606.05973), shaped for this repository's column-major
// packed bitsets:
//
//  1. Runs. Each column's bits arrive as a packed []uint64
//     (bitmap.ColumnWords); vertical runs of 1-pixels fall out of two
//     word-parallel masks — run starts are word &^ (word<<1 | carry),
//     run ends are word &^ (word>>1 | next<<63) — scanned with
//     bits.TrailingZeros64, so a solid column costs O(h/64), not O(h).
//  2. Unions. Adjacent columns' runs merge by a two-pointer sweep over
//     their sorted row intervals (8-connectivity widens each interval
//     by one row); a path-halving union–find linked by least run id
//     joins the runs. Runs are created in ascending column-major start
//     order, so every class's root is its least run — the one whose
//     start is the component's least column-major position — and
//     parents always point at smaller ids.
//  3. Resolve + fill. Because parents decrease, one ascending sweep
//     resolves every run's canonical label with a single array read
//     (a root mints base+y0, a non-root copies its parent's already
//     resolved label) — no find chains on the hot write path — and
//     writes the run's rows through LabelMap.ColumnSlice. Aggregation
//     folds each run's initial values once into its root
//     (exactly-once combination, which non-idempotent monoids like
//     sum require), then writes per-pixel totals alongside the labels.
//
// Everything lives in a reusable arena Labeler, pooled like the
// simulator's, so steady host-engine traffic allocates only the
// returned results. The engine is held bit-identical to the simulator
// across the whole family × connectivity × shape matrix by the
// cross-engine tests in internal/core.
package hostcc

import (
	"math/bits"
	"sync"

	"slapcc/internal/bitmap"
)

// Stats reports what a host run did: run (interval) counts and the
// union–find operation counts, for the UF report the service surfaces
// — the host engine charges no simulated steps — plus the component
// summary (count, foreground pixels, largest component), which the
// resolve sweep computes from the run structure for ~free, sparing
// result consumers a per-pixel summarization pass.
type Stats struct {
	Runs   int64
	Finds  int64
	Unions int64

	Components int
	Foreground int
	Largest    int
}

// Labeler is the host engine's reusable arena set: column word
// buffers, the flat run arrays, and the run union–find. Like the
// simulator's Labeler it is not safe for concurrent use, and the
// results it returns are independent of it.
type Labeler struct {
	words  []uint64 // one 64-column block of packed column bitsets
	runY0  []int32  // per run: first row
	runY1  []int32  // per run: last row
	colRun []int32  // per column: first run index; len w+1
	parent []int32  // run union–find, linked by least id: parent[r] ≤ r
	root   []int32  // per-run scratch: resolved root
	canon  []int32  // per-run scratch: resolved canonical label
	fold   []int32  // per-root: aggregate fold (aggregation only)
	size   []int32  // per-root: component pixel count (the summary)

	finds, unions int64
	fg, largest   int // component summary, accumulated by the resolve sweeps
}

// NewLabeler returns a reusable host-engine labeler.
func NewLabeler() *Labeler { return &Labeler{} }

// pool backs the package-level one-shot calls, mirroring the
// simulator's labelerPool: steady one-shot host traffic reuses warm
// arenas.
var pool = sync.Pool{New: func() any { return NewLabeler() }}

// Label labels img on a pooled host labeler. See Labeler.Label.
func Label(img *bitmap.Bitmap, conn bitmap.Connectivity) (*bitmap.LabelMap, Stats) {
	lb := pool.Get().(*Labeler)
	defer pool.Put(lb)
	return lb.Label(img, conn)
}

// Aggregate aggregates img on a pooled host labeler. See
// Labeler.Aggregate.
func Aggregate(img *bitmap.Bitmap, initial []int32, identity int32, combine func(a, b int32) int32, conn bitmap.Connectivity) (*bitmap.LabelMap, []int32, Stats) {
	lb := pool.Get().(*Labeler)
	defer pool.Put(lb)
	return lb.Aggregate(img, initial, identity, combine, conn)
}

// Label computes the canonical component labeling of img: every
// component labeled with the least column-major position (x·H + y) of
// its pixels, background bitmap.Background — bit-identical to the
// simulator's Result.Labels for every image and connectivity.
func (lb *Labeler) Label(img *bitmap.Bitmap, conn bitmap.Connectivity) (*bitmap.LabelMap, Stats) {
	w, h := img.W(), img.H()
	// The fill sweep writes every slot exactly once — runs get their
	// label, the gaps between them get Background — so the map skips its
	// own Background prefill (a whole extra pass over W·H at this speed).
	out := bitmap.NewLabelMapNoInit(w, h)
	lb.runPass(img, conn)

	n := len(lb.runY0)
	lb.canon = growInt32(lb.canon, n)
	lb.root = growInt32(lb.root, n)
	lb.size = growInt32(lb.size, n)
	labv, roots, sizes := lb.canon, lb.root, lb.size
	runY0, runY1, parent := lb.runY0, lb.runY1, lb.parent
	for i := range sizes {
		sizes[i] = 0
	}
	lb.finds += int64(n) // one root resolution per run
	r := 0
	for x := 0; x < w; x++ {
		col := out.ColumnSlice(x)
		base := int32(x * h)
		gap := int32(0) // first row of the background gap before the next run
		for ; r < int(lb.colRun[x+1]); r++ {
			// Parents point at strictly smaller ids, so an ascending sweep
			// sees every parent's label already resolved: a root is its
			// class's least run (least column-major start = the canonical
			// label), a non-root copies its parent's label. Component sizes
			// fold into the roots along the same sweep — the summary costs
			// O(runs), not a per-pixel pass.
			var lab, root int32
			if p := parent[r]; p == int32(r) {
				lab, root = base+runY0[r], int32(r)
			} else {
				lab, root = labv[p], roots[p]
			}
			labv[r], roots[r] = lab, root
			y0, y1 := runY0[r], runY1[r]
			ln := y1 - y0 + 1
			lb.fg += int(ln)
			s := sizes[root] + ln
			sizes[root] = s
			if int(s) > lb.largest {
				lb.largest = int(s)
			}
			pre := col[gap:y0]
			for i := range pre {
				pre[i] = bitmap.Background
			}
			run := col[y0 : y1+1]
			for i := range run {
				run[i] = lab
			}
			gap = y1 + 1
		}
		tail := col[gap:]
		for i := range tail {
			tail[i] = bitmap.Background
		}
	}
	return out, lb.stats()
}

// Summary computes exactly the Stats a Label call would return — runs,
// operation counts, and the component summary — without materializing
// the per-pixel labeling: the same run pass, then an O(runs) resolve
// sweep that tracks only roots and component sizes. Summary-only
// service traffic (labels not requested) answers with this, skipping
// the fill sweep and the W·H label allocation that otherwise dominate
// a host frame.
func (lb *Labeler) Summary(img *bitmap.Bitmap, conn bitmap.Connectivity) Stats {
	lb.runPass(img, conn)

	n := len(lb.runY0)
	lb.root = growInt32(lb.root, n)
	lb.size = growInt32(lb.size, n)
	roots, sizes := lb.root, lb.size
	runY0, runY1, parent := lb.runY0, lb.runY1, lb.parent
	for i := range sizes {
		sizes[i] = 0
	}
	lb.finds += int64(n) // one root resolution per run
	for r := 0; r < n; r++ {
		root := int32(r)
		if p := parent[r]; p != int32(r) {
			root = roots[p]
		}
		roots[r] = root
		ln := runY1[r] - runY0[r] + 1
		lb.fg += int(ln)
		s := sizes[root] + ln
		sizes[root] = s
		if int(s) > lb.largest {
			lb.largest = int(s)
		}
	}
	return lb.stats()
}

// Aggregate computes the Corollary 4 aggregation on the host: the
// labeling plus, at every foreground position, the fold (under
// combine/identity) of initial over that pixel's whole component;
// background positions hold identity. initial is indexed by
// column-major position and must have length W·H (the caller
// validates). Values are bit-identical to the simulator's
// AggregateResult.PerPixel.
func (lb *Labeler) Aggregate(img *bitmap.Bitmap, initial []int32, identity int32, combine func(a, b int32) int32, conn bitmap.Connectivity) (*bitmap.LabelMap, []int32, Stats) {
	w, h := img.W(), img.H()
	// Like Label, pass B writes every label slot (runs and gaps), so the
	// map skips its Background prefill; per still prefills identity —
	// pass B only touches its foreground positions.
	out := bitmap.NewLabelMapNoInit(w, h)
	per := make([]int32, w*h)
	for i := range per {
		per[i] = identity
	}
	lb.runPass(img, conn)

	n := len(lb.runY0)
	lb.canon = growInt32(lb.canon, n)
	lb.fold = growInt32(lb.fold, n)
	lb.root = growInt32(lb.root, n)
	lb.size = growInt32(lb.size, n)
	canon, fold, roots, sizes := lb.canon, lb.fold, lb.root, lb.size
	for i := range sizes {
		sizes[i] = 0
	}
	lb.finds += int64(n) // one root resolution per run

	// Pass A: fold each run's initial values once into its class — the
	// exactly-once combination non-idempotent monoids need — resolving
	// roots, canonical labels, and the component summary along the same
	// ascending sweep (parents point at smaller, already resolved ids; a
	// root is its class's least run, whose start is the canonical label).
	r := 0
	for x := 0; x < w; x++ {
		base := x * h
		for ; r < int(lb.colRun[x+1]); r++ {
			acc := identity
			for _, v := range initial[base+int(lb.runY0[r]) : base+int(lb.runY1[r])+1] {
				acc = combine(acc, v)
			}
			var root int32
			if p := lb.parent[r]; p == int32(r) {
				root = int32(r)
				roots[r] = root
				canon[r] = int32(base) + lb.runY0[r]
				fold[r] = acc
			} else {
				root = roots[p]
				roots[r] = root
				canon[r] = canon[p]
				fold[root] = combine(fold[root], acc)
			}
			ln := lb.runY1[r] - lb.runY0[r] + 1
			lb.fg += int(ln)
			s := sizes[root] + ln
			sizes[root] = s
			if int(s) > lb.largest {
				lb.largest = int(s)
			}
		}
	}

	// Pass B: write labels (runs and background gaps) and the finished
	// class totals.
	r = 0
	for x := 0; x < w; x++ {
		col := out.ColumnSlice(x)
		base := x * h
		gap := 0 // first row of the background gap before the next run
		for ; r < int(lb.colRun[x+1]); r++ {
			lab, tot := canon[r], fold[roots[r]]
			y0, y1 := int(lb.runY0[r]), int(lb.runY1[r])
			pre := col[gap:y0]
			for i := range pre {
				pre[i] = bitmap.Background
			}
			runLab := col[y0 : y1+1]
			runTot := per[base+y0 : base+y1+1]
			for i := range runLab {
				runLab[i] = lab
				runTot[i] = tot
			}
			gap = y1 + 1
		}
		tail := col[gap:]
		for i := range tail {
			tail[i] = bitmap.Background
		}
	}
	return out, per, lb.stats()
}

// runPass extracts every column's vertical runs from the packed column
// words and unions vertically adjacent runs of neighboring columns —
// the whole connectivity structure, built in one left-to-right sweep.
func (lb *Labeler) runPass(img *bitmap.Bitmap, conn bitmap.Connectivity) {
	w, h := img.W(), img.H()
	hw := (h + 63) >> 6
	lb.runY0 = lb.runY0[:0]
	lb.runY1 = lb.runY1[:0]
	lb.parent = lb.parent[:0]
	lb.colRun = append(lb.colRun[:0], 0)
	lb.finds, lb.unions = 0, 0
	lb.fg, lb.largest = 0, 0

	widen := int32(0)
	if conn == bitmap.Conn8 {
		widen = 1 // a diagonal touch is row-interval overlap widened by one
	}
	maxCol := (h + 1) / 2 // a column holds at most ⌈h/2⌉ runs
	prevLo := 0
	for x := 0; x < w; x++ {
		// Columns arrive 64 at a time through the blocked bit transpose —
		// the per-column, per-row bit gather was the hottest single loop
		// in the engine.
		if x&63 == 0 {
			lb.words = img.ColumnWordsBlock(x, lb.words)
		}
		words := lb.words[(x&63)*hw : (x&63)*hw+hw]
		// Reserve this column's worst case up front so the emission loop
		// writes runs by index — three appends per run (len/cap checks and
		// length updates ×~runs×3) were a measurable slice of the pass.
		curLo := len(lb.runY0)
		lb.runY0 = growTo(lb.runY0, curLo+maxCol)[:curLo]
		lb.runY1 = growTo(lb.runY1, curLo+maxCol)[:curLo]
		lb.parent = growTo(lb.parent, curLo+maxCol)[:curLo]
		runY0 := lb.runY0[:curLo+maxCol]
		runY1 := lb.runY1[:curLo+maxCol]
		n := curLo
		inRun := false
		var y0 int32
		for wi, word := range words {
			if word == 0 {
				// A run never spans an all-zero word: its end was emitted
				// from the previous word's mask (the lookahead bit was 0).
				continue
			}
			var carry, next uint64
			if wi > 0 {
				carry = words[wi-1] >> 63
			}
			if wi+1 < len(words) {
				next = words[wi+1] & 1
			}
			starts := word &^ (word<<1 | carry)
			ends := word &^ (word>>1 | next<<63)
			base := int32(wi << 6)
			// Starts and ends strictly alternate in bit order; each end
			// closes either the run carried in from below or the lowest
			// un-popped start.
			for ends != 0 {
				if !inRun {
					y0 = base + int32(bits.TrailingZeros64(starts))
					starts &= starts - 1
				}
				runY0[n] = y0
				runY1[n] = base + int32(bits.TrailingZeros64(ends))
				n++
				ends &= ends - 1
				inRun = false
			}
			if starts != 0 { // exactly one start can remain: a run crossing into the next word
				y0 = base + int32(bits.TrailingZeros64(starts))
				inRun = true
			}
		}
		curHi := n
		lb.runY0 = lb.runY0[:curHi]
		lb.runY1 = lb.runY1[:curHi]
		lb.parent = lb.parent[:curHi]
		for r := curLo; r < curHi; r++ {
			lb.parent[r] = int32(r)
		}
		// Two-pointer merge against the previous column's runs. Runs in a
		// column are separated by at least one background row, so the
		// widened intervals' low ends still ascend and pi never backtracks.
		pi := prevLo
		for ci := curLo; ci < curHi; ci++ {
			lo, hi := runY0[ci]-widen, runY1[ci]+widen
			for pi < curLo && runY1[pi] < lo {
				pi++
			}
			for pj := pi; pj < curLo && runY0[pj] <= hi; pj++ {
				lb.union(int32(pj), int32(ci))
			}
		}
		prevLo = curLo
		lb.colRun = append(lb.colRun, int32(curHi))
	}
}

// growTo returns s with capacity at least n, preserving contents.
func growTo(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s
	}
	ns := make([]int32, len(s), max(n, 2*cap(s)))
	copy(ns, s)
	return ns
}

// find returns r's root with path halving, counting the operation.
func (lb *Labeler) find(r int32) int32 {
	lb.finds++
	p := lb.parent
	for p[r] != r {
		p[r] = p[p[r]]
		r = p[r]
	}
	return r
}

// union links a's and b's classes under the smaller root id, counting
// effective unions. Least-id linking keeps parents strictly decreasing
// (path halving preserves it), which is what lets the resolve sweeps
// replace per-run find chains with one sequential pass, and makes every
// class's root the run holding the canonical label.
func (lb *Labeler) union(a, b int32) {
	ra, rb := lb.find(a), lb.find(b)
	if ra == rb {
		return
	}
	lb.unions++
	if ra > rb {
		ra, rb = rb, ra
	}
	lb.parent[rb] = ra
}

func (lb *Labeler) stats() Stats {
	n := len(lb.runY0)
	return Stats{
		Runs: int64(n), Finds: lb.finds, Unions: lb.unions,
		// Every effective union merges two classes into one, so the class
		// count is runs − unions.
		Components: n - int(lb.unions),
		Foreground: lb.fg,
		Largest:    lb.largest,
	}
}

// growInt32 returns s with length n, reusing capacity (contents
// unspecified).
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
