// Package seqcc provides sequential connected-component labelers for an
// n×n binary image under 4-connectivity: the ground truth every SLAP
// algorithm in this repository is validated against, plus the classic
// uniprocessor baselines the paper cites (Schwartz–Sharir–Siegel and
// Dillencourt–Samet–Tamminen label images in time linear in the pixel
// count when pixels arrive in scan order; see the paper's §1).
//
// All labelers produce the same canonical labeling as Algorithm CC: every
// component is labeled with the least column-major position (x·H + y) of
// its pixels, and background pixels carry bitmap.Background. Outputs are
// therefore comparable with ==, not merely up to renaming.
package seqcc

import (
	"fmt"

	"slapcc/internal/bitmap"
	"slapcc/internal/unionfind"
)

// BFS labels 4-connected components by flood fill, visiting seeds in
// column-major order so each component's seed is its least position. It
// is the package's correctness oracle: ~40 lines with no clever data
// structures.
func BFS(b *bitmap.Bitmap) *bitmap.LabelMap { return BFSConn(b, bitmap.Conn4) }

// BFSConn is BFS under an explicit connectivity.
func BFSConn(b *bitmap.Bitmap, conn bitmap.Connectivity) *bitmap.LabelMap {
	w, h := b.W(), b.H()
	lm := bitmap.NewLabelMap(w, h)
	deltas := conn.Neighbors()
	var stack [][2]int
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if !b.Get(x, y) || lm.Get(x, y) != bitmap.Background {
				continue
			}
			seed := int32(x*h + y)
			lm.Set(x, y, seed)
			stack = append(stack[:0], [2]int{x, y})
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, d := range deltas {
					nx, ny := p[0]+d[0], p[1]+d[1]
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					if b.Get(nx, ny) && lm.Get(nx, ny) == bitmap.Background {
						lm.Set(nx, ny, seed)
						stack = append(stack, [2]int{nx, ny})
					}
				}
			}
		}
	}
	return lm
}

// TwoPass is the classic union–find labeler: pass one scans rows,
// assigning provisional labels and recording equivalences between the
// left and upper neighbors; pass two resolves labels through the
// union–find structure. A final normalization rewrites every component to
// its least column-major position.
func TwoPass(b *bitmap.Bitmap) *bitmap.LabelMap {
	w, h := b.W(), b.H()
	lm := bitmap.NewLabelMap(w, h)
	if w == 0 || h == 0 {
		return lm
	}
	uf := unionfind.New(w * h)
	prov := make([]int32, w*h) // provisional label per pixel index (row-major scan)
	for i := range prov {
		prov[i] = bitmap.Background
	}
	idx := func(x, y int) int { return x*h + y }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !b.Get(x, y) {
				continue
			}
			left, up := int32(bitmap.Background), int32(bitmap.Background)
			if x > 0 && b.Get(x-1, y) {
				left = prov[idx(x-1, y)]
			}
			if y > 0 && b.Get(x, y-1) {
				up = prov[idx(x, y-1)]
			}
			switch {
			case left == bitmap.Background && up == bitmap.Background:
				prov[idx(x, y)] = int32(idx(x, y))
			case left != bitmap.Background && up == bitmap.Background:
				prov[idx(x, y)] = left
			case left == bitmap.Background:
				prov[idx(x, y)] = up
			default:
				prov[idx(x, y)] = left
				uf.Union(int(left), int(up))
			}
		}
	}
	normalizeRoots(b, lm, uf, func(x, y int) int { return int(prov[idx(x, y)]) })
	return lm
}

// run is a maximal horizontal segment of 1-pixels within one row.
type run struct {
	x0, x1 int // inclusive column span
	set    int // union-find element
}

// RunBased labels components by run-length merging in scan order, the
// structure of the linear-time sequential algorithms the paper cites:
// each row is reduced to runs, and runs are unioned with the overlapping
// runs of the previous row.
func RunBased(b *bitmap.Bitmap) *bitmap.LabelMap {
	w, h := b.W(), b.H()
	lm := bitmap.NewLabelMap(w, h)
	if w == 0 || h == 0 {
		return lm
	}
	uf := unionfind.New(w * h)
	runSet := make([]int32, w*h) // pixel index -> its run's set element
	var prev, cur []run
	for y := 0; y < h; y++ {
		cur = cur[:0]
		for x := 0; x < w; x++ {
			if !b.Get(x, y) {
				continue
			}
			x0 := x
			for x+1 < w && b.Get(x+1, y) {
				x++
			}
			cur = append(cur, run{x0: x0, x1: x, set: x0*h + y})
		}
		// Union with overlapping runs of the previous row (two-pointer).
		pi := 0
		for _, r := range cur {
			for pi < len(prev) && prev[pi].x1 < r.x0 {
				pi++
			}
			for j := pi; j < len(prev) && prev[j].x0 <= r.x1; j++ {
				uf.Union(r.set, prev[j].set)
			}
		}
		for _, r := range cur {
			for x := r.x0; x <= r.x1; x++ {
				runSet[x*h+y] = int32(r.set)
			}
		}
		prev = append(prev[:0], cur...)
	}
	normalizeRoots(b, lm, uf, func(x, y int) int { return int(runSet[x*h+y]) })
	return lm
}

// normalizeRoots assigns canonical least-position labels: it computes the
// minimum column-major position per union-find root and writes it to
// every member pixel.
func normalizeRoots(b *bitmap.Bitmap, lm *bitmap.LabelMap, uf unionfind.UnionFind, elem func(x, y int) int) {
	w, h := b.W(), b.H()
	minPos := make(map[int]int32)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if !b.Get(x, y) {
				continue
			}
			root := uf.Find(elem(x, y))
			pos := int32(x*h + y)
			if m, ok := minPos[root]; !ok || pos < m {
				minPos[root] = pos
			}
		}
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if b.Get(x, y) {
				lm.Set(x, y, minPos[uf.Find(elem(x, y))])
			}
		}
	}
}

// Check verifies that lm is exactly the canonical 4-connected component
// labeling of b, returning a descriptive error otherwise.
func Check(b *bitmap.Bitmap, lm *bitmap.LabelMap) error {
	return CheckConn(b, lm, bitmap.Conn4)
}

// CheckConn verifies lm against the ground truth under an explicit
// connectivity: it recomputes the canonical labeling with BFSConn and
// compares pixel by pixel.
func CheckConn(b *bitmap.Bitmap, lm *bitmap.LabelMap, conn bitmap.Connectivity) error {
	if lm.W() != b.W() || lm.H() != b.H() {
		return fmt.Errorf("seqcc: label map is %dx%d, image is %dx%d", lm.W(), lm.H(), b.W(), b.H())
	}
	want := BFSConn(b, conn)
	for x := 0; x < b.W(); x++ {
		for y := 0; y < b.H(); y++ {
			g, e := lm.Get(x, y), want.Get(x, y)
			if g != e {
				return fmt.Errorf("seqcc: pixel (%d,%d) under %v: label %d, want %d", x, y, conn, g, e)
			}
		}
	}
	return nil
}

// Stats describes a labeling.
type Stats struct {
	Components int
	Foreground int
	Largest    int
}

// Summarize computes component statistics of a labeling.
func Summarize(lm *bitmap.LabelMap) Stats {
	sizes := lm.ComponentSizes()
	st := Stats{Components: len(sizes)}
	for _, s := range sizes {
		st.Foreground += s
		if s > st.Largest {
			st.Largest = s
		}
	}
	return st
}

// AggregateRef computes, per component of b, the op-fold of initial[p]
// over the component's pixels (initial is indexed by column-major
// position). It returns per-pixel results: out[p] = fold over p's
// component, bitmap.Background pixels map to identity. This is the
// sequential reference for the paper's Corollary 4 extension.
func AggregateRef(b *bitmap.Bitmap, initial []int32, op func(a, c int32) int32, identity int32) []int32 {
	w, h := b.W(), b.H()
	if len(initial) != w*h {
		panic(fmt.Sprintf("seqcc: initial labels have length %d, want %d", len(initial), w*h))
	}
	lm := BFS(b)
	acc := make(map[int32]int32)
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			l := lm.Get(x, y)
			if l == bitmap.Background {
				continue
			}
			v, ok := acc[l]
			if !ok {
				v = identity
			}
			acc[l] = op(v, initial[x*h+y])
		}
	}
	out := make([]int32, w*h)
	for i := range out {
		out[i] = identity
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if l := lm.Get(x, y); l != bitmap.Background {
				out[x*h+y] = acc[l]
			}
		}
	}
	return out
}
