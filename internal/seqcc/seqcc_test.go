package seqcc

import (
	"testing"
	"testing/quick"

	"slapcc/internal/bitmap"
)

// labelers under test, all of which must produce identical canonical maps.
var labelers = map[string]func(*bitmap.Bitmap) *bitmap.LabelMap{
	"bfs":     BFS,
	"twopass": TwoPass,
	"runs":    RunBased,
}

func TestEmptyImage(t *testing.T) {
	for name, fn := range labelers {
		lm := fn(bitmap.Empty(5))
		if lm.ComponentCount() != 0 {
			t.Errorf("%s: empty image should have 0 components", name)
		}
	}
}

func TestZeroSizeImage(t *testing.T) {
	for name, fn := range labelers {
		lm := fn(bitmap.New(0, 0))
		if lm.W() != 0 || lm.H() != 0 {
			t.Errorf("%s: 0x0 image mishandled", name)
		}
	}
}

func TestFullImage(t *testing.T) {
	for name, fn := range labelers {
		lm := fn(bitmap.Full(6))
		if lm.ComponentCount() != 1 {
			t.Errorf("%s: full image should be one component", name)
		}
		if lm.Get(5, 5) != 0 {
			t.Errorf("%s: canonical label should be position 0, got %d", name, lm.Get(5, 5))
		}
	}
}

func TestKnownLabeling(t *testing.T) {
	//   col: 0123
	b := bitmap.MustParse(`
#.##
#..#
.##.
`)
	// Components: {(0,0),(0,1)} seed pos 0; {(2,0),(3,0),(3,1),(1,2),(2,2)}:
	// (3,0)-(3,1) joined to (2,0); (2,2)-(1,2) joined via (2,?)... (2,2) and
	// (3,1) are not 4-adjacent, so {(1,2),(2,2)} is separate with seed 1*3+2=5.
	want := map[[2]int]int32{
		{0, 0}: 0, {0, 1}: 0,
		{2, 0}: 6, {3, 0}: 6, {3, 1}: 6,
		{1, 2}: 5, {2, 2}: 5,
	}
	for name, fn := range labelers {
		lm := fn(b)
		for c, w := range want {
			if got := lm.Get(c[0], c[1]); got != w {
				t.Errorf("%s: pixel %v: want %d, got %d\n%s", name, c, w, got, lm)
			}
		}
		if lm.ComponentCount() != 3 {
			t.Errorf("%s: want 3 components, got %d", name, lm.ComponentCount())
		}
	}
}

func TestUShapeMergesAcrossColumns(t *testing.T) {
	// The two-prong pattern that breaks naive left-to-right labelers:
	// prongs connect only at the bottom.
	b := bitmap.MustParse(`
#.#
#.#
###
`)
	for name, fn := range labelers {
		lm := fn(b)
		if lm.ComponentCount() != 1 {
			t.Errorf("%s: U shape should be a single component, got %d\n%s", name, lm.ComponentCount(), lm)
		}
		if lm.Get(2, 0) != 0 {
			t.Errorf("%s: label should be min position 0, got %d", name, lm.Get(2, 0))
		}
	}
}

func TestGeneratorsAgreement(t *testing.T) {
	for _, fam := range bitmap.Families() {
		for _, n := range []int{1, 2, 3, 7, 16, 33} {
			b := fam.Generate(n)
			ref := BFS(b)
			for name, fn := range labelers {
				if name == "bfs" {
					continue
				}
				if got := fn(b); !got.Equal(ref) {
					t.Fatalf("family %s n=%d: %s disagrees with BFS", fam.Name, n, name)
				}
			}
		}
	}
}

func TestCheckerComponentCounts(t *testing.T) {
	lm := BFS(bitmap.Checker(9))
	if got, want := lm.ComponentCount(), 41; got != want {
		t.Fatalf("Checker(9): want %d components, got %d", want, got)
	}
}

func TestCheckAcceptsAndRejects(t *testing.T) {
	b := bitmap.Random(20, 0.5, 77)
	lm := TwoPass(b)
	if err := Check(b, lm); err != nil {
		t.Fatalf("Check rejected a correct labeling: %v", err)
	}
	// Corrupt one foreground pixel's label.
	var cx, cy = -1, -1
	for x := 0; x < 20 && cx < 0; x++ {
		for y := 0; y < 20; y++ {
			if b.Get(x, y) {
				cx, cy = x, y
				break
			}
		}
	}
	lm.Set(cx, cy, lm.Get(cx, cy)+1)
	if err := Check(b, lm); err == nil {
		t.Fatal("Check accepted a corrupted labeling")
	}
	if err := Check(b, bitmap.NewLabelMap(3, 3)); err == nil {
		t.Fatal("Check accepted wrong dimensions")
	}
}

func TestSummarize(t *testing.T) {
	b := bitmap.MustParse(`
##..
....
...#
`)
	st := Summarize(BFS(b))
	if st.Components != 2 || st.Foreground != 3 || st.Largest != 2 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestAggregateRefMin(t *testing.T) {
	b := bitmap.MustParse(`
##.
.#.
..#
`)
	w, h := b.W(), b.H()
	initial := make([]int32, w*h)
	for i := range initial {
		initial[i] = int32(100 - i) // decreasing, so min is at the largest position
	}
	minOp := func(a, c int32) int32 {
		if a < c {
			return a
		}
		return c
	}
	out := AggregateRef(b, initial, minOp, int32(1<<30))
	// Component A: (0,0),(1,0),(1,1): positions 0,3,4 -> min initial = 100-4 = 96.
	// Component B: (2,2): position 8 -> 92.
	if out[0] != 96 || out[3] != 96 || out[4] != 96 {
		t.Fatalf("component A aggregate wrong: %v", out)
	}
	if out[8] != 92 {
		t.Fatalf("component B aggregate wrong: %v", out)
	}
	if out[1] != 1<<30 {
		t.Fatal("background should hold the identity")
	}
}

func TestAggregateRefSumIsArea(t *testing.T) {
	b := bitmap.HStripes(8, 2)
	initial := make([]int32, 64)
	for i := range initial {
		initial[i] = 1
	}
	out := AggregateRef(b, initial, func(a, c int32) int32 { return a + c }, 0)
	// Each stripe spans a full row: area 8.
	for x := 0; x < 8; x++ {
		if out[x*8+0] != 8 {
			t.Fatalf("stripe area: want 8, got %d", out[x*8+0])
		}
	}
}

func TestAggregateRefValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for wrong initial length")
		}
	}()
	AggregateRef(bitmap.Empty(4), make([]int32, 3), func(a, c int32) int32 { return a }, 0)
}

// Property: all three labelers agree on random images, and the labeling
// satisfies the canonical-label property (label equals least position).
func TestLabelersAgreeQuick(t *testing.T) {
	f := func(seed uint32, np, dp uint8) bool {
		n := int(np%24) + 1
		density := float64(dp%11) / 10
		b := bitmap.Random(n, density, uint64(seed))
		ref := BFS(b)
		if !TwoPass(b).Equal(ref) || !RunBased(b).Equal(ref) {
			return false
		}
		// Canonical property: every label is the least position in its class.
		min := map[int32]int32{}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				l := ref.Get(x, y)
				if l == bitmap.Background {
					continue
				}
				pos := int32(x*n + y)
				if m, ok := min[l]; !ok || pos < m {
					min[l] = pos
				}
			}
		}
		for l, m := range min {
			if l != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: rectangular (non-square) images work too.
func TestRectangularQuick(t *testing.T) {
	f := func(seed uint32, wp, hp uint8) bool {
		w := int(wp%20) + 1
		h := int(hp%20) + 1
		b := bitmap.New(w, h)
		rng := bitmap.NewRNG(uint64(seed))
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				if rng.Float64() < 0.5 {
					b.Set(x, y, true)
				}
			}
		}
		ref := BFS(b)
		return TwoPass(b).Equal(ref) && RunBased(b).Equal(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
