package cluster

import (
	"context"
	"sync"
	"time"

	"slapcc/client"
)

// breakerState is the per-backend circuit breaker's state machine:
//
//	closed ──(Threshold consecutive failures)──▶ open
//	open ──(Cooldown elapses)──▶ half-open
//	half-open ──(trial succeeds)──▶ closed
//	half-open ──(trial fails)──▶ open (cooldown restarts)
//
// Closed admits traffic freely. Open admits nothing — the backend's
// strips are re-sharded across the survivors instead of queueing
// behind a corpse. Half-open admits exactly one trial request at a
// time; its outcome decides the next state, so one cheap probe (or one
// real job) re-earns trust instead of a thundering herd.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// backend is one slapd the coordinator routes to: its retry-free
// client (the coordinator owns retry and routing policy — nested
// client retries would multiply the budget), the breaker, and the
// health/load signals routing reads.
type backend struct {
	name string // host:port, for metrics and logs
	url  string
	cl   *client.Client

	mu          sync.Mutex
	state       breakerState
	consecFails int
	openedAt    time.Time
	trialInFly  bool // half-open: one trial at a time
	outstanding int  // jobs in flight (least-loaded routing)
	probeOK     bool // last active /healthz probe (optimistic start)
	lastErr     string
}

func newBackend(rawURL string, opts []client.Option) *backend {
	name := rawURL
	for _, pfx := range []string{"http://", "https://"} {
		if len(name) > len(pfx) && name[:len(pfx)] == pfx {
			name = name[len(pfx):]
		}
	}
	opts = append([]client.Option{client.WithMaxRetries(0)}, opts...)
	return &backend{
		name:    name,
		url:     rawURL,
		cl:      client.New(rawURL, opts...),
		probeOK: true,
	}
}

// tryAcquire admits one job if the breaker and the active-probe signal
// allow it, and reserves the slot (outstanding++, plus the half-open
// trial token). Callers must pair it with release.
func (b *backend) tryAcquire(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.trialInFly = false
		fallthrough
	case breakerHalfOpen:
		if b.trialInFly {
			return false
		}
		b.trialInFly = true
	default: // closed
		if !b.probeOK {
			return false
		}
	}
	b.outstanding++
	return true
}

// release reports a job's outcome and updates the breaker. A 429 or a
// caller-side cancellation is released with countable=false: the
// backend answered (or was never at fault), so the outcome teaches the
// breaker nothing.
func (b *backend) release(ok, countable bool, now time.Time, threshold int, errText string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.outstanding--
	if b.state == breakerHalfOpen {
		b.trialInFly = false
	}
	if !countable {
		return
	}
	if ok {
		b.consecFails = 0
		b.state = breakerClosed
		b.probeOK = true
		b.lastErr = ""
		return
	}
	b.consecFails++
	b.lastErr = errText
	if b.state == breakerHalfOpen || b.consecFails >= threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}

// load returns the routing key: jobs in flight right now.
func (b *backend) load() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.outstanding
}

// snapshot returns the state the metrics and health endpoints report.
func (b *backend) snapshot() (state breakerState, probeOK bool, outstanding int, consec int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.probeOK, b.outstanding, b.consecFails
}

// probe runs one active /healthz round-trip and feeds the result into
// the same signals passive traffic drives: a healthy answer closes the
// breaker (probes double as the half-open trial), a draining or dead
// backend is marked and — after enough consecutive failures — opened.
func (b *backend) probe(ctx context.Context, timeout time.Duration, now time.Time, threshold int) bool {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	_, err := b.cl.Health(pctx)
	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil {
		b.probeOK = false
		b.lastErr = err.Error()
		b.consecFails++
		if b.consecFails >= threshold || b.state == breakerHalfOpen {
			b.state = breakerOpen
			b.openedAt = now
		}
		return false
	}
	b.probeOK = true
	b.consecFails = 0
	b.state = breakerClosed
	b.lastErr = ""
	return true
}

// pick selects the admissible backend with the least load, reserving a
// slot on it; nil when no backend will take the job (all open, probing
// dead, or mid-trial) — the caller's cue to degrade to local
// execution.
func (co *Coordinator) pick(now time.Time) *backend {
	return co.pickExcluding(now, nil)
}

// pickExcluding is pick skipping one backend — a hedge must land on a
// different machine than the straggling primary or it doubles the very
// queue it is trying to route around.
func (co *Coordinator) pickExcluding(now time.Time, skip *backend) *backend {
	co.pickMu.Lock()
	defer co.pickMu.Unlock()
	// Least-outstanding first; ties go to list order. Acquisition is
	// checked per candidate so a half-open backend admits exactly its
	// one trial even under concurrent picks.
	order := make([]*backend, len(co.backends))
	copy(order, co.backends)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].load() < order[j-1].load(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, b := range order {
		if b == skip {
			continue
		}
		if b.tryAcquire(now, co.cfg.BreakerCooldown) {
			return b
		}
	}
	return nil
}
