// Package chaos is slapfront's fault-injection layer: an HTTP proxy
// that sits in front of a real slapd handler and misbehaves on
// command — added latency, 5xx errors, connection resets, mid-body
// truncation, and hangs. A deterministic Plan decides each request's
// fate from its sequence number, so chaos tests replay exactly and a
// failure is a seed, not a flake.
package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Mode is one injected failure.
type Mode int

const (
	// Pass proxies the request untouched.
	Pass Mode = iota
	// Delay holds the request for Decision.Delay, then proxies it.
	Delay
	// Error500 answers 500 without touching the backend.
	Error500
	// Reset closes the TCP connection with a RST (SetLinger(0)): the
	// client sees ECONNRESET or an abrupt EOF.
	Reset
	// Truncate runs the real handler, advertises the full
	// Content-Length, but sends only half the body before closing: the
	// client's decoder sees io.ErrUnexpectedEOF.
	Truncate
	// Hang never answers; the request parks until the client gives up
	// (its context or the coordinator's job timeout fires) or the
	// proxy is Closed.
	Hang
)

func (m Mode) String() string {
	switch m {
	case Delay:
		return "delay"
	case Error500:
		return "error500"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Hang:
		return "hang"
	default:
		return "pass"
	}
}

// Decision is one request's fate.
type Decision struct {
	Mode  Mode
	Delay time.Duration // Delay mode only
}

// Proxy wraps an inner handler with plan-driven fault injection.
// Requests are numbered from 0 in arrival order; Plan(n) decides
// request n's fate. Swap the plan mid-test with SetPlan (e.g. to
// "kill" a backend after its first strip).
type Proxy struct {
	next http.Handler
	done chan struct{}

	mu     sync.Mutex
	n      int
	plan   func(n int) Decision
	closed bool
}

// NewProxy wraps next. A nil plan passes everything through.
func NewProxy(next http.Handler, plan func(n int) Decision) *Proxy {
	return &Proxy{next: next, plan: plan, done: make(chan struct{})}
}

// Close releases every hung request so the server around the proxy can
// shut down. Call it before closing that server.
func (p *Proxy) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.done)
	}
}

// SetPlan replaces the plan; the request counter keeps running.
func (p *Proxy) SetPlan(plan func(n int) Decision) {
	p.mu.Lock()
	p.plan = plan
	p.mu.Unlock()
}

// Requests returns how many requests the proxy has seen.
func (p *Proxy) Requests() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

func (p *Proxy) decide() Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.n
	p.n++
	if p.plan == nil {
		return Decision{Mode: Pass}
	}
	return p.plan(n)
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d := p.decide()
	switch d.Mode {
	case Delay:
		select {
		case <-time.After(d.Delay):
		case <-r.Context().Done():
			return
		}
		p.next.ServeHTTP(w, r)
	case Error500:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"chaos: injected failure"}`)
	case Reset:
		abort(w)
	case Truncate:
		rec := httptest.NewRecorder()
		p.next.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		conn, buf, err := hijack(w)
		if err != nil {
			return
		}
		fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
			rec.Code, http.StatusText(rec.Code), rec.Header().Get("Content-Type"), len(body))
		buf.Write(body[:len(body)/2])
		buf.Flush()
		conn.Close()
	case Hang:
		// Drain the body first: with unread request bytes buffered the
		// server never arms its client-disconnect watch, and the hang
		// would outlive the client that caused it.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-p.done:
		}
	default:
		p.next.ServeHTTP(w, r)
	}
}

func hijack(w http.ResponseWriter) (net.Conn, *writerFlusher, error) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("chaos: response writer is not hijackable")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, nil, err
	}
	return conn, &writerFlusher{rw}, nil
}

type writerFlusher struct {
	rw interface {
		Write([]byte) (int, error)
		Flush() error
	}
}

func (w *writerFlusher) Write(p []byte) (int, error) { return w.rw.Write(p) }
func (w *writerFlusher) Flush()                      { w.rw.Flush() }

// abort hijacks the connection and closes it with linger 0, producing
// a TCP RST instead of a graceful FIN.
func abort(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos: response writer is not hijackable")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}
