package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"slapcc/api"
	"slapcc/internal/core"
)

// TestClusterHostEngine serves cost=host end to end through slapfront:
// strip jobs carry cost=host to the backends, each strip comes back
// with host-engine labels and no simulated metrics, and the compose
// path stitches them into the same answers a local cost=host run gives.
//
// The answer contract under cost=host is labels, folds, and the
// component summary — not union–find operation counts: a composed run
// folds per-strip and seam counts, which legitimately differ from one
// whole-image host pass. So strip-mined responses are compared field by
// field, while the whole-image pass-through (one job, forwarded
// verbatim) is held byte-for-byte.
func TestClusterHostEngine(t *testing.T) {
	ref := newSlapd(t)
	b1, b2 := newSlapd(t), newSlapd(t)
	_, front := newFront(t, []string{b1.URL, b2.URL}, nil)
	img := testImage(t)

	t.Run("whole image byte-identical", func(t *testing.T) {
		for _, tc := range []struct {
			path string
			p    api.Params
		}{
			{api.PathLabel, api.Params{Cost: "host", WantLabels: true}},
			{api.PathAggregate, api.Params{Cost: "host", Op: "sum", WantLabels: true}},
		} {
			wantCode, want := post(t, ref.URL, tc.path, tc.p, img)
			gotCode, got := post(t, front.URL, tc.path, tc.p, img)
			if wantCode != http.StatusOK || gotCode != http.StatusOK {
				t.Fatalf("%s: status local %d cluster %d (%s)", tc.path, wantCode, gotCode, got)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s: cluster response diverges from local:\nlocal:   %s\ncluster: %s", tc.path, want, got)
			}
		}
	})

	t.Run("strip-mined label", func(t *testing.T) {
		p := api.Params{Cost: "host", ArrayWidth: 8, WantLabels: true}
		_, want := post(t, ref.URL, api.PathLabel, p, img)
		code, got := post(t, front.URL, api.PathLabel, p, img)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, got)
		}
		var local, clustered api.LabelResponse
		if err := json.Unmarshal(want, &local); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(got, &clustered); err != nil {
			t.Fatal(err)
		}
		if len(clustered.Labels) != len(local.Labels) {
			t.Fatalf("label count cluster %d, local %d", len(clustered.Labels), len(local.Labels))
		}
		for i := range local.Labels {
			if clustered.Labels[i] != local.Labels[i] {
				t.Fatalf("label[%d] cluster %d, local %d", i, clustered.Labels[i], local.Labels[i])
			}
		}
		if clustered.Components != local.Components || clustered.Foreground != local.Foreground || clustered.Largest != local.Largest {
			t.Fatalf("summary diverges: cluster %+v, local %+v", clustered, local)
		}
		if clustered.Metrics.TimeSteps != 0 || len(clustered.Metrics.Phases) != 0 || clustered.Metrics.Sends != 0 {
			t.Fatalf("composed host run leaked simulated metrics: %+v", clustered.Metrics)
		}
		if clustered.UF.Kind != string(core.HostUFKind) || clustered.UF.Finds == 0 {
			t.Fatalf("composed host UF report %+v", clustered.UF)
		}
	})

	t.Run("strip-mined aggregate", func(t *testing.T) {
		p := api.Params{Cost: "host", ArrayWidth: 8, Op: "min", Initial: "positions", WantLabels: true}
		_, want := post(t, ref.URL, api.PathAggregate, p, img)
		code, got := post(t, front.URL, api.PathAggregate, p, img)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, got)
		}
		var local, clustered api.AggregateResponse
		if err := json.Unmarshal(want, &local); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(got, &clustered); err != nil {
			t.Fatal(err)
		}
		if len(clustered.PerPixel) != len(local.PerPixel) {
			t.Fatalf("fold count cluster %d, local %d", len(clustered.PerPixel), len(local.PerPixel))
		}
		for i := range local.PerPixel {
			if clustered.PerPixel[i] != local.PerPixel[i] {
				t.Fatalf("per-pixel[%d] cluster %d, local %d", i, clustered.PerPixel[i], local.PerPixel[i])
			}
		}
		if clustered.Metrics.TimeSteps != 0 || len(clustered.Metrics.Phases) != 0 {
			t.Fatalf("composed host aggregate leaked simulated metrics: %+v", clustered.Metrics)
		}
	})
}
