package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerTransitions walks the breaker's whole state machine under
// a fake clock: closed → open at the failure threshold, open blocks
// until the cooldown, half-open admits exactly one trial, a failed
// trial re-opens, a successful one closes.
func TestBreakerTransitions(t *testing.T) {
	const threshold = 2
	cooldown := 10 * time.Second
	now := time.Unix(1000, 0)
	b := newBackend("http://backend-a:8080", nil)
	if b.name != "backend-a:8080" {
		t.Fatalf("name = %q, want scheme stripped", b.name)
	}

	// Failures below the threshold keep the breaker closed.
	if !b.tryAcquire(now, cooldown) {
		t.Fatal("fresh backend refused a job")
	}
	b.release(false, true, now, threshold, "boom")
	if st, _, _, consec := b.snapshot(); st != breakerClosed || consec != 1 {
		t.Fatalf("after 1 failure: state %v consec %d, want closed 1", st, consec)
	}

	// The threshold-th consecutive failure opens it.
	if !b.tryAcquire(now, cooldown) {
		t.Fatal("closed backend refused a job")
	}
	b.release(false, true, now, threshold, "boom")
	if st, _, _, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("after %d failures: state %v, want open", threshold, st)
	}

	// Open blocks everything until the cooldown elapses.
	if b.tryAcquire(now.Add(cooldown-time.Millisecond), cooldown) {
		t.Fatal("open breaker admitted a job before the cooldown")
	}

	// Cooldown elapsed: half-open, exactly one trial at a time.
	trialAt := now.Add(cooldown)
	if !b.tryAcquire(trialAt, cooldown) {
		t.Fatal("cooled-down breaker refused the half-open trial")
	}
	if st, _, _, _ := b.snapshot(); st != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", st)
	}
	if b.tryAcquire(trialAt, cooldown) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// A failed trial re-opens immediately (no threshold count needed)
	// and restarts the cooldown.
	b.release(false, true, trialAt, threshold, "still dead")
	if st, _, _, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("failed trial left state %v, want open", st)
	}
	if b.tryAcquire(trialAt.Add(cooldown-time.Second), cooldown) {
		t.Fatal("cooldown did not restart after the failed trial")
	}

	// A successful trial closes the breaker and clears the counters.
	retryAt := trialAt.Add(cooldown)
	if !b.tryAcquire(retryAt, cooldown) {
		t.Fatal("second trial refused")
	}
	b.release(true, true, retryAt, threshold, "")
	if st, _, out, consec := b.snapshot(); st != breakerClosed || consec != 0 || out != 0 {
		t.Fatalf("after successful trial: state %v consec %d outstanding %d, want closed 0 0", st, consec, out)
	}
}

// TestBreakerUncountableOutcomes: 429s and caller-side cancellations
// release the slot but teach the breaker nothing — a busy backend is
// not a broken one.
func TestBreakerUncountableOutcomes(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBackend("http://b", nil)
	b.tryAcquire(now, time.Second)
	b.release(false, true, now, 3, "boom")
	for i := 0; i < 10; i++ {
		if !b.tryAcquire(now, time.Second) {
			t.Fatalf("acquire %d refused", i)
		}
		b.release(true, false, now, 3, "") // 429: ok but uncountable
	}
	if st, _, out, consec := b.snapshot(); st != breakerClosed || consec != 1 || out != 0 {
		t.Fatalf("uncountable outcomes moved the breaker: state %v consec %d outstanding %d", st, consec, out)
	}
	// An uncountable failure (caller cancelled) likewise.
	b.tryAcquire(now, time.Second)
	b.release(false, false, now, 3, "")
	if _, _, _, consec := b.snapshot(); consec != 1 {
		t.Fatalf("cancelled job counted against the backend: consec %d", consec)
	}
}

// TestPickRoutesLeastLoaded: routing prefers the backend with the
// fewest jobs in flight, skips open breakers and failed probes, and
// returns nil when nobody is admissible.
func TestPickRoutesLeastLoaded(t *testing.T) {
	co := New(Config{Backends: []string{"http://a", "http://b"}})
	defer co.Close()
	now := time.Unix(1000, 0)
	a, b := co.backends[0], co.backends[1]

	// Load a; pick must choose b.
	if !a.tryAcquire(now, co.cfg.BreakerCooldown) {
		t.Fatal("acquire a")
	}
	if got := co.pick(now); got != b {
		t.Fatalf("pick = %v, want least-loaded b", got)
	}
	b.release(true, true, now, 3, "")

	// Open b's breaker; pick must fall back to a despite its load.
	for i := 0; i < co.cfg.BreakerThreshold; i++ {
		b.tryAcquire(now, co.cfg.BreakerCooldown)
		b.release(false, true, now, co.cfg.BreakerThreshold, "boom")
	}
	if got := co.pick(now); got != a {
		t.Fatalf("pick = %v, want a (b's breaker open)", got)
	}
	a.release(true, true, now, 3, "")
	a.release(true, true, now, 3, "")

	// Fail a's probe; with b open too, pick must return nil.
	a.mu.Lock()
	a.probeOK = false
	a.mu.Unlock()
	if got := co.pick(now); got != nil {
		t.Fatalf("pick = %v, want nil with a unprobed and b open", got)
	}
}

// TestProbeNowTracksBackendHealth: the active prober marks a draining
// (503) backend unroutable and restores it when it recovers, feeding
// the same signal path passive traffic uses.
func TestProbeNowTracksBackendHealth(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining"}`))
	}))
	defer srv.Close()

	co := New(Config{Backends: []string{srv.URL}})
	defer co.Close()
	b := co.backends[0]

	co.ProbeNow(context.Background())
	if _, probeOK, _, _ := b.snapshot(); !probeOK {
		t.Fatal("healthy backend marked down")
	}
	if co.pick(co.cfg.Now()) != b {
		t.Fatal("healthy backend not picked")
	}
	b.release(true, true, co.cfg.Now(), 3, "")

	// Draining: the probe marks it down, and routing skips it.
	healthy.Store(false)
	co.ProbeNow(context.Background())
	if _, probeOK, _, _ := b.snapshot(); probeOK {
		t.Fatal("draining backend still marked up")
	}
	if got := co.pick(co.cfg.Now()); got != nil {
		t.Fatalf("pick = %v, want nil while draining", got)
	}

	// Enough failed probes open the breaker outright.
	for i := 0; i < co.cfg.BreakerThreshold; i++ {
		co.ProbeNow(context.Background())
	}
	if st, _, _, _ := b.snapshot(); st != breakerOpen {
		t.Fatalf("state %v after repeated failed probes, want open", st)
	}

	// Recovery: a healthy probe closes the breaker again. (The probe
	// ignores the cooldown by design — it is the half-open trial.)
	healthy.Store(true)
	co.ProbeNow(context.Background())
	if st, probeOK, _, _ := b.snapshot(); st != breakerClosed || !probeOK {
		t.Fatalf("state %v probeOK %v after recovery, want closed true", st, probeOK)
	}
}
