package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"slapcc/api"
	"slapcc/internal/bitmap"
	"slapcc/internal/cluster/chaos"
	"slapcc/internal/imageio"
	"slapcc/internal/server"
)

// instantSleep skips backoff waits in tests while still honoring a
// dead context, so retry storms resolve in microseconds.
func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func newSlapd(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(server.New(server.Config{Workers: 2}))
	t.Cleanup(srv.Close)
	return srv
}

func newFront(t *testing.T, backends []string, mutate func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg := Config{Backends: backends, Sleep: instantSleep}
	if mutate != nil {
		mutate(&cfg)
	}
	co := New(cfg)
	t.Cleanup(co.Close)
	srv := httptest.NewServer(co)
	t.Cleanup(srv.Close)
	return co, srv
}

// post sends img raw-encoded to base+path with p's query and returns
// the status and the exact response bytes.
func post(t *testing.T, base, path string, p api.Params, img *bitmap.Bitmap) (int, []byte) {
	t.Helper()
	data, err := imageio.EncodeBytes(img, imageio.FormatRaw)
	if err != nil {
		t.Fatal(err)
	}
	url := base + path
	if q := p.Query().Encode(); q != "" {
		url += "?" + q
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", string(imageio.FormatRaw.ContentType()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func testImage(t *testing.T) *bitmap.Bitmap {
	t.Helper()
	return bitmap.Random(40, 0.5, 0xC0FFEE).SubImage(0, 0, 40, 24)
}

// clusterCases is the request matrix every bit-identicality test runs:
// strip-mined and whole-image, both connectivities, both schedules,
// both seam models, bit-serial cost, and aggregation with global
// position initials — the shapes whose composition could plausibly
// diverge over the wire.
func clusterCases() []struct {
	name string
	path string
	p    api.Params
} {
	return []struct {
		name string
		path string
		p    api.Params
	}{
		{"label strips", api.PathLabel, api.Params{ArrayWidth: 8, WantLabels: true}},
		{"label strips conn8", api.PathLabel, api.Params{ArrayWidth: 8, Connectivity: 8, WantLabels: true}},
		{"label strips bitserial pipelined", api.PathLabel, api.Params{ArrayWidth: 8, Cost: "bitserial", Schedule: "pipelined", WantLabels: true}},
		{"label strips host seam", api.PathLabel, api.Params{ArrayWidth: 8, Seam: "host", WantLabels: true}},
		{"label strips no labels", api.PathLabel, api.Params{ArrayWidth: 16}},
		{"label whole image", api.PathLabel, api.Params{WantLabels: true}},
		{"label array wider than image", api.PathLabel, api.Params{ArrayWidth: 64, WantLabels: true}},
		{"aggregate sum strips", api.PathAggregate, api.Params{ArrayWidth: 8, Op: "sum"}},
		{"aggregate min positions strips", api.PathAggregate, api.Params{ArrayWidth: 8, Op: "min", Initial: "positions", Cost: "bitserial", WantLabels: true}},
		{"aggregate whole image", api.PathAggregate, api.Params{Op: "max", WantLabels: true}},
	}
}

// TestClusterBitIdenticalToLocal: every coordinator response — strip
// fan-out, whole-image pass-through, aggregation — is byte-for-byte
// the response a single local slapd gives the same request.
func TestClusterBitIdenticalToLocal(t *testing.T) {
	ref := newSlapd(t)
	b1, b2, b3 := newSlapd(t), newSlapd(t), newSlapd(t)
	_, front := newFront(t, []string{b1.URL, b2.URL, b3.URL}, nil)
	img := testImage(t)

	for _, tc := range clusterCases() {
		t.Run(tc.name, func(t *testing.T) {
			wantCode, want := post(t, ref.URL, tc.path, tc.p, img)
			gotCode, got := post(t, front.URL, tc.path, tc.p, img)
			if wantCode != http.StatusOK || gotCode != http.StatusOK {
				t.Fatalf("status: local %d cluster %d (cluster body %s)", wantCode, gotCode, got)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("cluster response diverges from local:\nlocal:   %s\ncluster: %s", want, got)
			}
		})
	}
}

// TestClusterBitIdenticalUnderChaos: the same matrix with every
// backend behind a misbehaving proxy — injected 5xx, connection
// resets, mid-body truncation, latency — still answers 200 with
// byte-identical bodies. The plans are deterministic functions of each
// proxy's request count, so a failure here replays.
func TestClusterBitIdenticalUnderChaos(t *testing.T) {
	ref := newSlapd(t)
	mk := func(plan func(n int) chaos.Decision) *httptest.Server {
		inner := server.New(server.Config{Workers: 2})
		srv := httptest.NewServer(chaos.NewProxy(inner, plan))
		t.Cleanup(srv.Close)
		return srv
	}
	b1 := mk(func(n int) chaos.Decision {
		if n%5 == 1 {
			return chaos.Decision{Mode: chaos.Error500}
		}
		return chaos.Decision{Mode: chaos.Pass}
	})
	b2 := mk(func(n int) chaos.Decision {
		if n%4 == 2 {
			return chaos.Decision{Mode: chaos.Reset}
		}
		return chaos.Decision{Mode: chaos.Pass}
	})
	b3 := mk(func(n int) chaos.Decision {
		switch {
		case n%6 == 3:
			return chaos.Decision{Mode: chaos.Truncate}
		case n%6 == 0:
			return chaos.Decision{Mode: chaos.Delay, Delay: 5 * time.Millisecond}
		}
		return chaos.Decision{Mode: chaos.Pass}
	})
	_, front := newFront(t, []string{b1.URL, b2.URL, b3.URL}, nil)
	img := testImage(t)

	for round := 0; round < 3; round++ {
		for _, tc := range clusterCases() {
			wantCode, want := post(t, ref.URL, tc.path, tc.p, img)
			gotCode, got := post(t, front.URL, tc.path, tc.p, img)
			if wantCode != http.StatusOK || gotCode != http.StatusOK {
				t.Fatalf("round %d %s: status local %d cluster %d (cluster body %s)", round, tc.name, wantCode, gotCode, got)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("round %d %s: cluster response diverges under chaos:\nlocal:   %s\ncluster: %s", round, tc.name, want, got)
			}
		}
	}
}

// TestClusterSurvivesBackendDeath: a backend that answers its first
// request and then resets every connection — a crash mid-run — costs
// nothing: its strips re-shard to the survivor and the response stays
// byte-identical, with zero client-visible errors.
func TestClusterSurvivesBackendDeath(t *testing.T) {
	ref := newSlapd(t)
	b1 := newSlapd(t)
	inner := server.New(server.Config{Workers: 2})
	dying := chaos.NewProxy(inner, func(n int) chaos.Decision {
		if n == 0 {
			return chaos.Decision{Mode: chaos.Pass}
		}
		return chaos.Decision{Mode: chaos.Reset}
	})
	b2 := httptest.NewServer(dying)
	t.Cleanup(b2.Close)
	_, front := newFront(t, []string{b1.URL, b2.URL}, func(cfg *Config) {
		cfg.JobConcurrency = 2
	})
	img := testImage(t)
	p := api.Params{ArrayWidth: 4, WantLabels: true} // 10 strips

	wantCode, want := post(t, ref.URL, api.PathLabel, p, img)
	gotCode, got := post(t, front.URL, api.PathLabel, p, img)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status: local %d cluster %d (cluster body %s)", wantCode, gotCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("response diverges after backend death:\nlocal:   %s\ncluster: %s", want, got)
	}
	if dying.Requests() < 2 {
		t.Fatalf("dying backend saw %d requests; the test never exercised the death", dying.Requests())
	}
	// A follow-up request still works — the survivor (and, if the
	// breaker opened, local fallback) carries it.
	gotCode, got = post(t, front.URL, api.PathLabel, p, img)
	if gotCode != http.StatusOK || !bytes.Equal(want, got) {
		t.Fatalf("follow-up request: status %d, identical %v", gotCode, bytes.Equal(want, got))
	}
}

// TestClusterDegradesToLocal: with every backend dead the coordinator
// answers anyway — every job runs locally — and the response is still
// byte-identical to a healthy slapd's.
func TestClusterDegradesToLocal(t *testing.T) {
	ref := newSlapd(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	co, front := newFront(t, []string{dead.URL}, func(cfg *Config) {
		cfg.RetryBudget = 2
	})
	img := testImage(t)
	p := api.Params{ArrayWidth: 8, WantLabels: true}

	wantCode, want := post(t, ref.URL, api.PathLabel, p, img)
	gotCode, got := post(t, front.URL, api.PathLabel, p, img)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status: local %d cluster %d (cluster body %s)", wantCode, gotCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("degraded response diverges:\nlocal:   %s\ncluster: %s", want, got)
	}

	// The failure story is visible: local fallbacks counted, and the
	// dead backend's breaker opened.
	resp, err := http.Get(front.URL + api.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(metrics), "slapfront_local_fallbacks_total 0\n") {
		t.Fatalf("metrics report no local fallbacks:\n%s", metrics)
	}
	if st, _, _, _ := co.backends[0].snapshot(); st != breakerOpen {
		t.Fatalf("dead backend's breaker is %v, want open", st)
	}

	// And aggregation degrades the same way.
	ap := api.Params{ArrayWidth: 8, Op: "min", Initial: "positions", WantLabels: true}
	wantCode, want = post(t, ref.URL, api.PathAggregate, ap, img)
	gotCode, got = post(t, front.URL, api.PathAggregate, ap, img)
	if wantCode != http.StatusOK || gotCode != http.StatusOK || !bytes.Equal(want, got) {
		t.Fatalf("degraded aggregate: status local %d cluster %d identical %v", wantCode, gotCode, bytes.Equal(want, got))
	}
}

// TestClusterNoBackendsConfigured: an empty fleet is a working (purely
// local) coordinator, not an error.
func TestClusterNoBackendsConfigured(t *testing.T) {
	ref := newSlapd(t)
	_, front := newFront(t, nil, nil)
	img := testImage(t)
	for _, tc := range clusterCases() {
		wantCode, want := post(t, ref.URL, tc.path, tc.p, img)
		gotCode, got := post(t, front.URL, tc.path, tc.p, img)
		if wantCode != http.StatusOK || gotCode != http.StatusOK || !bytes.Equal(want, got) {
			t.Fatalf("%s: status local %d cluster %d identical %v", tc.name, wantCode, gotCode, bytes.Equal(want, got))
		}
	}
}

// TestClusterRejectsBadRequests: parameter validation happens at the
// front door with the same 400s a slapd gives, before any fan-out.
func TestClusterRejectsBadRequests(t *testing.T) {
	_, front := newFront(t, nil, nil)
	img := testImage(t)
	cases := []struct {
		name string
		path string
		p    api.Params
	}{
		{"bad connectivity", api.PathLabel, api.Params{Connectivity: 5}},
		{"bad uf", api.PathLabel, api.Params{UF: "nope"}},
		{"bad cost", api.PathLabel, api.Params{Cost: "quantum"}},
		{"bad op", api.PathAggregate, api.Params{Op: "median"}},
		{"bad initial", api.PathAggregate, api.Params{Op: "sum", Initial: "zeros"}},
	}
	for _, tc := range cases {
		code, body := post(t, front.URL, tc.path, tc.p, img)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", tc.name, code, body)
		}
		var e api.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body %q", tc.name, body)
		}
	}
	// Method check.
	resp, err := http.Get(front.URL + api.PathLabel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET label: %d, want 405", resp.StatusCode)
	}
}

// TestClusterCancelledRequest: a client that hangs up mid-request (the
// only backend hangs forever) aborts the fan-out; the coordinator
// records the request as 499, not as a success or a 5xx.
func TestClusterCancelledRequest(t *testing.T) {
	inner := server.New(server.Config{Workers: 2})
	proxy := chaos.NewProxy(inner, func(n int) chaos.Decision {
		return chaos.Decision{Mode: chaos.Hang}
	})
	hang := httptest.NewServer(proxy)
	t.Cleanup(hang.Close)
	t.Cleanup(proxy.Close) // LIFO: release hung requests before hang.Close waits on them
	_, front := newFront(t, []string{hang.URL}, nil)
	img := testImage(t)

	data, err := imageio.EncodeBytes(img, imageio.FormatRaw)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	p := api.Params{ArrayWidth: 8}
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		front.URL+api.PathLabel+"?"+p.Query().Encode(), bytes.NewReader(data))
	req.Header.Set("Content-Type", string(imageio.FormatRaw.ContentType()))
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("request against a hung backend returned before cancellation")
	}

	// The coordinator saw the hang-up: poll the metrics for the 499.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(front.URL + api.PathMetrics)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `slapfront_requests_total{endpoint="label",code="499"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no 499 recorded:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterHealthz: the coordinator's own health endpoint reports
// per-backend routing state and stays "ok" even with the fleet down —
// slapfront degrades, it does not die.
func TestClusterHealthz(t *testing.T) {
	b := newSlapd(t)
	co, front := newFront(t, []string{b.URL, "http://127.0.0.1:1"}, nil)
	co.ProbeNow(context.Background())

	resp, err := http.Get(front.URL + api.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var snap HealthSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Status != "ok" || len(snap.Backends) != 2 {
		t.Fatalf("snapshot %+v, want ok with 2 backends", snap)
	}
	if !snap.Backends[0].ProbeOK {
		t.Fatalf("live backend reported down: %+v", snap.Backends[0])
	}
	if snap.Backends[1].ProbeOK {
		t.Fatalf("dead backend reported up: %+v", snap.Backends[1])
	}
}
