// Package cluster implements slapfront, the fault-tolerant coordinator
// that promotes the strip-mined tiler across the network: it exposes
// the same /v1/label and /v1/aggregate API as a single slapd, splits
// each image into per-strip jobs, fans them out to a fleet of slapd
// backends over the SLR1 wire format, and stitches the returned strip
// runs with the exact seam-merge and schedule composition the local
// tiler uses (core.ComposeStrips) — so every response is bit-identical
// to a local run of the same request.
//
// Only O(boundary) data rides the composition: each backend returns
// its strip's labels and fold report, and the coordinator's host-side
// stitch touches boundary columns plus rewritten pixels, the same
// merge structure the strip-mining analysis charges.
//
// The robustness model, end to end:
//
//   - per-job timeouts, with capped exponential backoff + jitter
//     between attempts and one retry budget per job;
//   - health-aware routing: active /healthz probes (draining backends
//     report 503 and stop receiving work) plus the passive outcome of
//     every job feed a per-backend circuit breaker (see backend.go);
//   - partial failure re-shards: a failed strip re-routes to the
//     least-loaded surviving backend, not back to the corpse;
//   - full degradation: a strip no backend will take runs locally on
//     the coordinator — through the same wire-shaped round-trip as a
//     remote strip, so the composed answer stays bit-identical — and
//     the service keeps answering with every backend down.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"slapcc/api"
	"slapcc/client"
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/imageio"
	"slapcc/internal/obs"
	"slapcc/internal/server"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// Config configures a Coordinator.
type Config struct {
	// Backends are the slapd base URLs to fan out to. Empty is allowed:
	// every request runs locally (a degenerate but working cluster).
	Backends []string
	// Options are the base labeling options local-fallback runs resolve
	// request parameters over, exactly as a slapd's Config.Options.
	Options core.Options
	// JobTimeout bounds one strip job attempt on one backend (default
	// 30s): a hung backend costs one timeout, then its strips re-shard.
	JobTimeout time.Duration
	// RetryBudget is the attempt budget per job across all backends
	// (default 4). Exhausting it degrades the job to local execution.
	RetryBudget int
	// BackoffBase and BackoffMax shape the between-attempt wait: attempt
	// k waits ~BackoffBase·2^k with jitter, capped at BackoffMax
	// (defaults 25ms and 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold opens a backend's breaker after this many
	// consecutive countable failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks before
	// admitting a half-open trial (default 5s).
	BreakerCooldown time.Duration
	// ProbeInterval spaces the active /healthz probes (default 0 =
	// disabled; the slapfront daemon enables them, deterministic tests
	// drive ProbeNow instead).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default 2s).
	ProbeTimeout time.Duration
	// JobConcurrency caps strip jobs in flight per request (≤ 0 selects
	// 2 per backend, minimum 2).
	JobConcurrency int
	// HedgeDelay floors the hedge timer: an outstanding strip job is
	// re-issued to a second backend after max(HedgeDelay, p95 of recent
	// job latencies), first complete response winning (default 50ms).
	HedgeDelay time.Duration
	// HedgeMax caps hedged (duplicate) attempts across one request's
	// whole fan-out, so hedging never amplifies an overload. 0 (the
	// zero value) disables hedging; the slapfront daemon defaults its
	// flag to 2.
	HedgeMax int
	// Limits bound decoded image sizes; MaxBodyBytes bounds request
	// bodies (≤ 0 selects 64 MiB).
	Limits       imageio.Limits
	MaxBodyBytes int64
	// ClientOptions are appended to every per-backend client (tests:
	// transport doubles). Retries stay disabled regardless — the
	// coordinator owns retry policy.
	ClientOptions []client.Option
	// Now and Rand override the clock and the jitter source (tests).
	Now  func() time.Time
	Rand func() float64
	// Sleep overrides the between-attempt wait (tests); it must return
	// early with ctx's error when the context dies.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.JobConcurrency <= 0 {
		c.JobConcurrency = 2 * len(c.Backends)
		if c.JobConcurrency < 2 {
			c.JobConcurrency = 2
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 50 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Rand == nil {
		c.Rand = func() float64 { return 0.5 }
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			if d <= 0 {
				return ctx.Err()
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return c
}

// Coordinator is the slapfront http.Handler. Construct with New; call
// Close to stop the active prober.
type Coordinator struct {
	cfg      Config
	backends []*backend
	mux      *http.ServeMux
	reg      *registry
	ring     *obs.Ring
	pickMu   sync.Mutex
	stop     chan struct{}
	stopped  sync.Once
}

// New returns a Coordinator routing to cfg.Backends.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:  cfg,
		mux:  http.NewServeMux(),
		reg:  newRegistry(),
		ring: obs.NewRing(0, 0, 0),
		stop: make(chan struct{}),
	}
	for _, u := range cfg.Backends {
		co.backends = append(co.backends, newBackend(strings.TrimRight(u, "/"), cfg.ClientOptions))
	}
	co.mux.HandleFunc(api.PathLabel, co.instrument("label", co.handleLabel))
	co.mux.HandleFunc(api.PathAggregate, co.instrument("aggregate", co.handleAggregate))
	co.mux.HandleFunc(api.PathHealthz, co.instrument("healthz", co.handleHealthz))
	co.mux.HandleFunc(api.PathMetrics, co.instrument("metrics", co.handleMetrics))
	co.mux.Handle(server.PathDebugRequests, co.DebugHandler())
	if cfg.ProbeInterval > 0 && len(co.backends) > 0 {
		go co.probeLoop()
	}
	return co
}

// ServeHTTP implements http.Handler.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { co.mux.ServeHTTP(w, r) }

// Close stops the active prober. The handler keeps serving.
func (co *Coordinator) Close() { co.stopped.Do(func() { close(co.stop) }) }

// DebugHandler serves the recent-request trace ring (/debug/requests),
// for mounting on a private debug listener as well as the main mux.
func (co *Coordinator) DebugHandler() http.Handler { return co.ring.Handler() }

func (co *Coordinator) probeLoop() {
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.ProbeNow(context.Background())
		}
	}
}

// ProbeNow actively probes every backend's /healthz once, in parallel,
// and feeds the outcomes into the routing state. The prober calls it
// on a timer; deterministic tests call it directly.
func (co *Coordinator) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range co.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			wasOpen, _, _, _ := b.snapshot()
			if !b.probe(ctx, co.cfg.ProbeTimeout, co.cfg.Now(), co.cfg.BreakerThreshold) {
				if st, _, _, _ := b.snapshot(); st == breakerOpen && wasOpen != breakerOpen {
					co.reg.addOpened()
				}
			}
		}(b)
	}
	wg.Wait()
}

// HealthSnapshot is the coordinator's /healthz body.
type HealthSnapshot struct {
	Status   string          `json:"status"`
	Backends []BackendHealth `json:"backends"`
}

// BackendHealth is one backend's routing state as /healthz reports it.
type BackendHealth struct {
	Backend     string `json:"backend"`
	Breaker     string `json:"breaker"`
	ProbeOK     bool   `json:"probe_ok"`
	Outstanding int    `json:"outstanding"`
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := HealthSnapshot{Status: "ok", Backends: []BackendHealth{}}
	for _, b := range co.backends {
		st, probeOK, out, _ := b.snapshot()
		snap.Backends = append(snap.Backends, BackendHealth{
			Backend: b.name, Breaker: st.String(), ProbeOK: probeOK, Outstanding: out,
		})
	}
	// The coordinator itself is always healthy — with every backend
	// down it degrades to local execution rather than going dark.
	writeJSON(w, http.StatusOK, snap)
}

func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	gs := make([]backendGauge, 0, len(co.backends))
	for _, b := range co.backends {
		st, probeOK, out, _ := b.snapshot()
		gs = append(gs, backendGauge{name: b.name, state: st, probeOK: probeOK, outstanding: out})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	co.reg.render(w, gs)
}

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (co *Coordinator) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := co.cfg.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		co.reg.observe(name, sw.code, co.cfg.Now().Sub(start))
	}
}

// readFrame mirrors slapd's body handling: format from the parameter
// or Content-Type, bounded read, decode under the limits.
func (co *Coordinator) readFrame(w http.ResponseWriter, r *http.Request, p api.Params) (*bitmap.Bitmap, int, error) {
	format, err := imageio.ParseFormat(p.Format)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if format == imageio.FormatAuto {
		format = imageio.FormatFromContentType(r.Header.Get("Content-Type"))
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, co.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", co.cfg.MaxBodyBytes)
		}
		return nil, http.StatusBadRequest, err
	}
	img, err := imageio.DecodeBytes(body, format, co.cfg.Limits)
	if err != nil {
		if errors.Is(err, imageio.ErrLimit) {
			return nil, http.StatusRequestEntityTooLarge, err
		}
		return nil, http.StatusBadRequest, err
	}
	return img, 0, nil
}

// lifecycle stamps the request's ID on the response header and context
// (so backend calls and error payloads carry it), opens the request's
// trace — the root span rides the context, every downstream strip and
// attempt span nests under it — and applies the caller's
// X-Slap-Deadline-Ms budget: a spent budget answers 504 before any
// fan-out, a live one bounds the whole fan-out's context — each backend
// attempt then re-stamps the remaining budget on the wire via the
// client. The returned done func (handlers defer it) finalizes the
// trace: it marks the root from the response status, feeds the stage
// histograms, and files the trace in the /debug/requests ring. Returns
// ok=false when the request was already answered.
func (co *Coordinator) lifecycle(w http.ResponseWriter, r *http.Request, name string) (*http.Request, func(), bool) {
	id := r.Header.Get(api.HeaderRequestID)
	if id == "" {
		id = api.NewRequestID()
	}
	w.Header().Set(api.HeaderRequestID, id)
	tr := obs.New(id, name, co.cfg.Now)
	ctx := obs.ContextWith(api.ContextWithRequestID(r.Context(), id), tr.Root())
	cancel := context.CancelFunc(func() {})
	if budget, ok := api.ParseDeadline(r.Header.Get(api.HeaderDeadlineMS)); ok {
		if budget <= 0 {
			writeError(w, http.StatusGatewayTimeout, "deadline budget already spent")
			tr.Root().Fail("http 504")
			tr.Finish()
			co.ring.Observe(tr)
			return nil, nil, false
		}
		ctx, cancel = context.WithTimeout(ctx, budget)
	}
	done := func() {
		cancel()
		if sw, ok := w.(*statusWriter); ok && sw.code >= http.StatusBadRequest {
			if sw.code == 499 {
				tr.Root().Cancel()
			} else {
				tr.Root().Fail(fmt.Sprintf("http %d", sw.code))
			}
		}
		tr.Finish()
		co.reg.observeStages(tr.Stages())
		co.ring.Observe(tr)
	}
	return r.WithContext(ctx), done, true
}

// errNoBackend reports that no backend would accept a job right now:
// every breaker open, every probe failing, or no backends configured.
var errNoBackend = errors.New("cluster: no routable backend")

// hedgeState caps hedged (duplicate) attempts across one request's
// whole fan-out: each request gets HedgeMax duplicates total, however
// many strips it sharded into, so hedging helps a straggler without
// ever doubling an overloaded fleet's work.
type hedgeState struct {
	mu   sync.Mutex
	left int
}

// newHedgeState returns the per-request hedge budget, or nil when
// hedging is off (HedgeMax 0) or pointless (fewer than two backends).
func (co *Coordinator) newHedgeState() *hedgeState {
	if co.cfg.HedgeMax <= 0 || len(co.backends) < 2 {
		return nil
	}
	return &hedgeState{left: co.cfg.HedgeMax}
}

func (hs *hedgeState) take() bool {
	if hs == nil {
		return false
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.left <= 0 {
		return false
	}
	hs.left--
	return true
}

// put returns an unused hedge token (taken, but no second backend was
// routable to spend it on).
func (hs *hedgeState) put() {
	if hs == nil {
		return
	}
	hs.mu.Lock()
	hs.left++
	hs.mu.Unlock()
}

// hedgeDelay is how long an outstanding job runs before a duplicate is
// issued: the p95 of recent successful job latencies — a hedge should
// fire only for tail stragglers — floored at HedgeDelay while the
// quantile is still warming up.
func (co *Coordinator) hedgeDelay() time.Duration {
	d := co.reg.jobP95()
	if d < co.cfg.HedgeDelay {
		d = co.cfg.HedgeDelay
	}
	return d
}

// dispatch runs one job under the retry/routing policy: pick the
// healthiest backend, bound the attempt with the job timeout, hedge a
// straggling attempt to a second backend, classify the outcome, back
// off, re-route. It returns the job's result, or a 4xx
// *client.StatusError to propagate verbatim, or a terminal error
// (errNoBackend / exhausted budget) that the caller answers by running
// the job locally.
func dispatch[T any](co *Coordinator, ctx context.Context, kind string, hs *hedgeState, run func(context.Context, *client.Client) (T, error)) (T, error) {
	var zero T
	var lastErr error = errNoBackend
	for attempt := 0; attempt < co.cfg.RetryBudget; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		if attempt > 0 {
			co.reg.addRetry()
		}
		b := co.pick(co.cfg.Now())
		if b == nil {
			// Nothing routable. If a breaker could half-open within the
			// budget the backoff below gives it the chance; a totally
			// empty fleet fails fast to local.
			obs.FromContext(ctx).Event("no-backend")
			if len(co.backends) == 0 {
				return zero, errNoBackend
			}
			lastErr = errNoBackend
			if err := co.cfg.Sleep(ctx, co.backoffWait(attempt)); err != nil {
				return zero, err
			}
			continue
		}
		res, err, retryable, wait := hedgedAttempt(co, ctx, hs, b, run)
		if err == nil {
			return res, nil
		}
		if !retryable {
			return zero, err
		}
		lastErr = err
		if wait <= 0 {
			wait = co.backoffWait(attempt)
		}
		if err := co.cfg.Sleep(ctx, wait); err != nil {
			return zero, err
		}
	}
	return zero, fmt.Errorf("cluster: %s job failed after %d attempts: %w", kind, co.cfg.RetryBudget, lastErr)
}

// hedgedAttempt runs one attempt slot: the job on backend b, plus — if
// the hedge timer fires while b is still working and the request's
// hedge budget and a second routable backend exist — one duplicate,
// first complete response winning. The loser's context is cancelled the
// moment a winner lands, and every launched copy is awaited and
// released before returning, so per-backend outstanding gauges always
// drain. Hedge losers are uncountable for the circuit breaker, like
// 429s: a cancelled duplicate says nothing about the backend's health.
//
// Returns (result, error, retryable, suggested wait): retryable=false
// errors propagate to the caller (4xx, parent-context death);
// retryable=true errors let dispatch back off and re-route.
func hedgedAttempt[T any](co *Coordinator, ctx context.Context, hs *hedgeState, b *backend, run func(context.Context, *client.Client) (T, error)) (T, error, bool, time.Duration) {
	var zero T
	type outcome struct {
		b     *backend
		res   T
		err   error
		start time.Time
		sp    *obs.Span
	}
	results := make(chan outcome, 2)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	// Each launched copy gets its own "attempt" span; the attempt's
	// context carries it, so the client grafts the backend's
	// Server-Timing tree under the attempt that actually fetched it.
	// The select loop below settles every span exactly once: the single
	// winner gets "winner", cancelled losers are marked cancelled.
	launch := func(b *backend, hedge bool) context.CancelFunc {
		asp := obs.FromContext(ctx).Child("attempt")
		if asp != nil {
			asp.Annotate("backend=" + b.name)
			if hedge {
				asp.Annotate("hedge")
			}
		}
		actx, acancel := context.WithCancel(obs.ContextWith(ctx, asp))
		start := co.cfg.Now()
		go func() {
			jctx, jcancel := context.WithTimeout(actx, co.cfg.JobTimeout)
			defer jcancel()
			res, err := run(jctx, b.cl)
			results <- outcome{b: b, res: res, err: err, start: start, sp: asp}
		}()
		return acancel
	}
	cancels = append(cancels, launch(b, false))
	inFlight := 1

	// The timer goroutine only signals; the select loop below launches
	// the duplicate, so backend picking never races result handling.
	timer := make(chan struct{}, 1)
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	if hs != nil {
		go func() {
			if co.cfg.Sleep(tctx, co.hedgeDelay()) == nil {
				timer <- struct{}{}
			}
		}()
	}

	var (
		winner   outcome
		won      bool
		hedgedTo *backend
		terminal error // 4xx / parent-context error: propagate, don't retry
		lastErr  error
		wait     time.Duration
	)
	settle := func() {
		tcancel()
		for _, c := range cancels {
			c()
		}
	}
	for inFlight > 0 {
		select {
		case o := <-results:
			inFlight--
			now := co.cfg.Now()
			if won || terminal != nil {
				// The slot already concluded; this copy is the cancelled
				// loser (or, rarely, a second success — still a healthy
				// answer). Losers are uncountable.
				if o.err == nil {
					o.b.release(true, true, now, co.cfg.BreakerThreshold, "")
					co.reg.addJob(o.b.name, "ok")
					o.sp.Annotate("late")
					o.sp.End()
				} else {
					o.b.release(false, false, now, co.cfg.BreakerThreshold, "")
					co.reg.addJob(o.b.name, "cancelled")
					o.sp.Cancel()
				}
				continue
			}
			if o.err == nil {
				o.b.release(true, true, now, co.cfg.BreakerThreshold, "")
				co.reg.addJob(o.b.name, "ok")
				co.reg.addJobLatency(now.Sub(o.start))
				winner, won = o, true
				if hedgedTo != nil && o.b == hedgedTo {
					co.reg.addHedgeWin()
				}
				o.sp.Annotate("winner")
				o.sp.End()
				settle()
				continue
			}
			var se *client.StatusError
			switch {
			case errors.As(o.err, &se) && se.Code == http.StatusTooManyRequests:
				// Busy, not broken: the backend answered coherently.
				// Remember its hint (bounded); a still-running copy may
				// yet win.
				o.b.release(true, false, now, co.cfg.BreakerThreshold, "")
				co.reg.addJob(o.b.name, "busy")
				o.sp.Annotate("busy")
				o.sp.EndErr(o.err)
				lastErr = o.err
				if w := se.RetryAfter; w > 0 && w <= co.cfg.BackoffMax {
					wait = w
				}
			case errors.As(o.err, &se) && se.Code < http.StatusInternalServerError:
				// 4xx: our request (and hence the caller's) is wrong.
				// Propagate — re-sending it elsewhere cannot fix it, and
				// the backend is healthy.
				o.b.release(true, true, now, co.cfg.BreakerThreshold, "")
				o.sp.EndErr(o.err)
				terminal = o.err
				settle()
			case ctx.Err() != nil:
				// The caller hung up or its deadline budget expired; the
				// backend may be fine. Uncountable.
				o.b.release(false, false, now, co.cfg.BreakerThreshold, "")
				o.sp.Cancel()
				terminal = ctx.Err()
				settle()
			default:
				// 5xx, timeout, or transport failure: a real backend
				// failure. Count it, maybe open the breaker; dispatch
				// re-shards to a survivor after the backoff.
				wasOpen, _, _, _ := o.b.snapshot()
				o.b.release(false, true, now, co.cfg.BreakerThreshold, o.err.Error())
				if st, _, _, _ := o.b.snapshot(); st == breakerOpen && wasOpen != breakerOpen {
					co.reg.addOpened()
				}
				co.reg.addJob(o.b.name, "error")
				o.sp.EndErr(o.err)
				lastErr = o.err
				if errors.Is(o.err, context.DeadlineExceeded) {
					// The *job* timeout expired, not the request's budget
					// (ctx.Err() was nil above). Flatten the wrap with %v so
					// an exhausted retry budget still reads as a backend
					// failure — eligible for local fallback — rather than a
					// spent deadline.
					lastErr = fmt.Errorf("cluster: job timed out after %v: %v", co.cfg.JobTimeout, o.err)
				}
			}
		case <-timer:
			if !hs.take() {
				continue
			}
			b2 := co.pickExcluding(co.cfg.Now(), b)
			if b2 == nil {
				hs.put()
				continue
			}
			co.reg.addHedge()
			hedgedTo = b2
			cancels = append(cancels, launch(b2, true))
			inFlight++
		}
	}
	if won {
		return winner.res, nil, false, 0
	}
	if terminal != nil {
		return zero, terminal, false, 0
	}
	return zero, lastErr, true, wait
}

// backoffWait is attempt k's capped exponential backoff with jitter,
// uniformly within [half, full] of BackoffBase·2^k capped by
// BackoffMax.
func (co *Coordinator) backoffWait(attempt int) time.Duration {
	if attempt > 20 {
		attempt = 20
	}
	d := co.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > co.cfg.BackoffMax {
		d = co.cfg.BackoffMax
	}
	half := d / 2
	return half + time.Duration(co.cfg.Rand()*float64(half))
}

// fallbackLocal reports whether err means "run this job locally": the
// fleet is unroutable or the budget is spent. 4xx propagation and
// caller cancellation are not fallback cases.
func fallbackLocal(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *client.StatusError
	if errors.As(err, &se) && se.Code < http.StatusInternalServerError && se.Code != http.StatusTooManyRequests {
		return false
	}
	return true
}

// writeDispatchError answers a request whose dispatch failed without a
// local fallback: 4xx pass through verbatim, an expired deadline budget
// is 504 (the server ran out of time), cancellation is the client's own
// doing (499), anything else is a 502.
func writeDispatchError(w http.ResponseWriter, err error) {
	var se *client.StatusError
	if errors.As(err, &se) {
		writeError(w, se.Code, se.Msg)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	if errors.Is(err, context.Canceled) {
		writeError(w, 499, err.Error())
		return
	}
	writeError(w, http.StatusBadGateway, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// writeTraced is writeJSON for traced success responses: the body is
// encoded to a buffer under an "encode" span, then the request's whole
// span tree — the coordinator's own stages with each attempt's grafted
// backend tree nested inside — rides ahead of it in a Server-Timing
// header. The bytes written are identical to writeJSON's, which the
// cluster-vs-local byte-equality tests depend on.
func writeTraced(w http.ResponseWriter, code int, v any, sp *obs.Span) {
	if sp == nil {
		writeJSON(w, code, v)
		return
	}
	esp := sp.Child("encode")
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	err := enc.Encode(v)
	esp.EndErr(err)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if tr := sp.Trace(); tr != nil {
		if st := tr.ServerTiming(); st != "" {
			w.Header().Set("Server-Timing", st)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, api.ErrorResponse{Error: msg, RequestID: w.Header().Get(api.HeaderRequestID)})
}

// stripRunFromResponse reconstructs a core.StripRun from one strip's
// wire response. The wire omits Busy/NilRecvs/per-PE profiles and the
// speculation stats — none of which ever serialize in a composed
// response — so the composition over reconstructed runs is
// byte-identical to the local tiler's.
func stripRunFromResponse(resp *api.LabelResponse, perPixel []int32, wantAgg bool) (core.StripRun, error) {
	sw, h := resp.Width, resp.Height
	if len(resp.Labels) != sw*h {
		return core.StripRun{}, fmt.Errorf("cluster: strip response has %d labels, want %d", len(resp.Labels), sw*h)
	}
	lm := bitmap.NewLabelMap(sw, h)
	for x := 0; x < sw; x++ {
		copy(lm.ColumnSlice(x), resp.Labels[x*h:(x+1)*h])
	}
	m := slap.Metrics{
		N:        resp.Metrics.ArrayWidth,
		Time:     resp.Metrics.TimeSteps,
		Sends:    resp.Metrics.Sends,
		Words:    resp.Metrics.Words,
		MaxQueue: resp.Metrics.MaxQueue,
		PEMemory: resp.Metrics.PEMemory,
	}
	for _, ph := range resp.Metrics.Phases {
		m.Phases = append(m.Phases, slap.PhaseMetrics{
			Name:     ph.Name,
			Makespan: ph.Makespan,
			Sends:    ph.Sends,
			Words:    ph.Words,
			Idle:     ph.Idle,
			MaxQueue: ph.MaxQueue,
		})
	}
	run := core.StripRun{
		Labels:  lm,
		Metrics: m,
		UF: core.UFReport{
			Kind:       unionfind.Kind(resp.UF.Kind),
			Finds:      resp.UF.Finds,
			Unions:     resp.UF.Unions,
			TotalSteps: resp.UF.TotalSteps,
			MaxOpCost:  resp.UF.MaxOpCost,
			MeanOpCost: resp.UF.MeanOpCost,
		},
	}
	if wantAgg {
		if len(perPixel) != sw*h {
			return core.StripRun{}, fmt.Errorf("cluster: strip response has %d per-pixel folds, want %d", len(perPixel), sw*h)
		}
		run.PerPixel = perPixel
	}
	return run, nil
}

// stripParams builds the wire parameters of the strip at x0 under
// caller parameters p and the full-image resolved options opt: a plain
// whole-strip run (no array), full labels for the stitch, the
// bit-serial word width pinned to the full image's resolved width (a
// strip left to choose its own would charge narrower words than the
// local tiler does), and — on aggregation jobs — the strip's global
// column-major origin as the positions offset. cost= rides through
// verbatim, so under cost=host every backend answers its strip with the
// host engine and the compose path (core.ComposeStrips with Engine set)
// stitches labels and folds without any simulated metrics to merge.
func stripParams(p api.Params, opt core.Options, h, x0 int, agg bool) api.Params {
	sp := api.Params{
		Format:       string(imageio.FormatRaw),
		Connectivity: p.Connectivity,
		UF:           p.UF,
		Cost:         p.Cost,
		WordBits:     p.WordBits,
		WantLabels:   true,
	}
	if opt.Cost.WordBits > 0 {
		sp.Cost = "bitserial"
		sp.WordBits = opt.Cost.WordBits
	}
	if agg {
		sp.Op = p.Op
		sp.Initial = p.Initial
		sp.InitialOffset = p.InitialOffset + x0*h
	}
	return sp
}

// job is one strip's work order.
type job struct {
	s      int // strip index
	x0, sw int
	data   []byte // SLR1-encoded strip
}

// encodeJobs materializes and encodes every strip of img.
func encodeJobs(img *bitmap.Bitmap, aw int) ([]job, error) {
	w, h := img.W(), img.H()
	strips := (w + aw - 1) / aw
	jobs := make([]job, strips)
	for s := 0; s < strips; s++ {
		x0 := s * aw
		sw := aw
		if w-x0 < sw {
			sw = w - x0
		}
		data, err := imageio.EncodeBytes(img.SubImage(x0, 0, sw, h), imageio.FormatRaw)
		if err != nil {
			return nil, err
		}
		jobs[s] = job{s: s, x0: x0, sw: sw, data: data}
	}
	return jobs, nil
}

// runJobs executes every strip job — remote with retries and
// re-sharding, locally as the last resort — with at most
// JobConcurrency in flight. each returns the strip's run or an error;
// the first error (by strip index) wins.
func (co *Coordinator) runJobs(ctx context.Context, jobs []job, each func(context.Context, job) (core.StripRun, error)) ([]core.StripRun, error) {
	runs := make([]core.StripRun, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, co.cfg.JobConcurrency)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			runs[i], errs[i] = each(ctx, jobs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

func (co *Coordinator) handleLabel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	p, err := api.ParamsFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	r, done, ok := co.lifecycle(w, r, "label")
	if !ok {
		return
	}
	defer done()
	root := obs.FromContext(r.Context())
	dsp := root.Child("decode")
	img, status, err := co.readFrame(w, r, p)
	dsp.EndErr(err)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	// Resolve options exactly as a backend would: rejects bad
	// parameters here with the same 400s, and configures local
	// fallback runs identically.
	opt, err := server.OptionsFromParams(co.cfg.Options, p, img.W(), img.H())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	hs := co.newHedgeState()

	aw := opt.ArrayWidth
	if aw <= 0 || aw >= img.W() {
		// Whole-image run: one job, routed like any other.
		resp, err := co.wholeImageLabel(ctx, img, p, opt, hs)
		if err != nil {
			writeDispatchError(w, err)
			return
		}
		writeTraced(w, http.StatusOK, resp, root)
		return
	}

	jobs, err := encodeJobs(img, aw)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	stripOpt := opt
	stripOpt.ArrayWidth = 0
	stripOpt.StripWorkers = 0
	fsp := root.Child("fanout")
	runs, err := co.runJobs(obs.ContextWith(ctx, fsp), jobs, func(jctx context.Context, j job) (core.StripRun, error) {
		ssp := obs.FromContext(jctx).Child("strip")
		if ssp != nil {
			ssp.Annotate("s=" + strconv.Itoa(j.s))
		}
		run, jerr := co.labelStrip(obs.ContextWith(jctx, ssp), j, p, opt, stripOpt, img.H(), hs)
		ssp.EndErr(jerr)
		return run, jerr
	})
	fsp.EndErr(err)
	if err != nil {
		writeDispatchError(w, err)
		return
	}
	tsp := root.Child("stitch")
	res, err := core.ComposeStrips(img, runs, opt)
	tsp.EndErr(err)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeTraced(w, http.StatusOK, server.ToLabelResponse(res, p.WantLabels), root)
}

// labelStrip runs one strip's label job: remote dispatch under the
// retry/hedge policy, degrading to a local run when no backend will
// take it.
func (co *Coordinator) labelStrip(ctx context.Context, j job, p api.Params, opt, stripOpt core.Options, h int, hs *hedgeState) (core.StripRun, error) {
	sp := stripParams(p, opt, h, j.x0, false)
	resp, derr := dispatch(co, ctx, "label", hs, func(jctx context.Context, cl *client.Client) (*api.LabelResponse, error) {
		return cl.LabelData(jctx, j.data, string(imageio.FormatRaw.ContentType()), sp)
	})
	if derr != nil {
		if !fallbackLocal(derr) {
			return core.StripRun{}, derr
		}
		co.reg.addFallback()
		lsp := obs.FromContext(ctx).Child("local")
		res, lerr := core.Label(mustDecodeStrip(j), stripOpt)
		lsp.EndErr(lerr)
		if lerr != nil {
			return core.StripRun{}, lerr
		}
		resp = server.ToLabelResponse(res, true)
	}
	return stripRunFromResponse(resp, nil, false)
}

func (co *Coordinator) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	p, err := api.ParamsFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	op, err := server.MonoidByName(p.Op)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	switch strings.ToLower(p.Initial) {
	case "", "ones", "positions":
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown initial %q (ones, positions)", p.Initial))
		return
	}
	r, done, ok := co.lifecycle(w, r, "aggregate")
	if !ok {
		return
	}
	defer done()
	root := obs.FromContext(r.Context())
	dsp := root.Child("decode")
	img, status, err := co.readFrame(w, r, p)
	dsp.EndErr(err)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	opt, err := server.OptionsFromParams(co.cfg.Options, p, img.W(), img.H())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	hs := co.newHedgeState()

	aw := opt.ArrayWidth
	if aw <= 0 || aw >= img.W() {
		resp, err := co.wholeImageAggregate(ctx, img, p, op, opt, hs)
		if err != nil {
			writeDispatchError(w, err)
			return
		}
		writeTraced(w, http.StatusOK, resp, root)
		return
	}

	jobs, err := encodeJobs(img, aw)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	stripOpt := opt
	stripOpt.ArrayWidth = 0
	stripOpt.StripWorkers = 0
	h := img.H()
	fsp := root.Child("fanout")
	runs, err := co.runJobs(obs.ContextWith(ctx, fsp), jobs, func(jctx context.Context, j job) (core.StripRun, error) {
		ssp := obs.FromContext(jctx).Child("strip")
		if ssp != nil {
			ssp.Annotate("s=" + strconv.Itoa(j.s))
		}
		run, jerr := co.aggregateStrip(obs.ContextWith(jctx, ssp), j, p, op, opt, stripOpt, h, hs)
		ssp.EndErr(jerr)
		return run, jerr
	})
	fsp.EndErr(err)
	if err != nil {
		writeDispatchError(w, err)
		return
	}
	tsp := root.Child("stitch")
	res, err := core.ComposeAggregateStrips(img, runs, op, opt)
	tsp.EndErr(err)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeTraced(w, http.StatusOK, server.ToAggregateResponse(res, op.Name, p.WantLabels), root)
}

// aggregateStrip is labelStrip for /v1/aggregate.
func (co *Coordinator) aggregateStrip(ctx context.Context, j job, p api.Params, op core.Monoid, opt, stripOpt core.Options, h int, hs *hedgeState) (core.StripRun, error) {
	sp := stripParams(p, opt, h, j.x0, true)
	resp, derr := dispatch(co, ctx, "aggregate", hs, func(jctx context.Context, cl *client.Client) (*api.AggregateResponse, error) {
		return cl.AggregateData(jctx, j.data, string(imageio.FormatRaw.ContentType()), sp)
	})
	if derr != nil {
		if !fallbackLocal(derr) {
			return core.StripRun{}, derr
		}
		co.reg.addFallback()
		lsp := obs.FromContext(ctx).Child("local")
		strip := mustDecodeStrip(j)
		initial, ierr := server.InitialValues(strip, p.Initial, p.InitialOffset+j.x0*h)
		if ierr != nil {
			lsp.EndErr(ierr)
			return core.StripRun{}, ierr
		}
		res, lerr := core.Aggregate(strip, initial, op, stripOpt)
		lsp.EndErr(lerr)
		if lerr != nil {
			return core.StripRun{}, lerr
		}
		resp = server.ToAggregateResponse(res, op.Name, true)
	}
	return stripRunFromResponse(&resp.LabelResponse, resp.PerPixel, true)
}

// wholeImageLabel routes an un-strip-mined request as a single job,
// degrading to a local run when no backend will take it.
func (co *Coordinator) wholeImageLabel(ctx context.Context, img *bitmap.Bitmap, p api.Params, opt core.Options, hs *hedgeState) (*api.LabelResponse, error) {
	data, err := imageio.EncodeBytes(img, imageio.FormatRaw)
	if err != nil {
		return nil, err
	}
	fp := p
	fp.Format = string(imageio.FormatRaw)
	ssp := obs.FromContext(ctx).Child("strip")
	ctx = obs.ContextWith(ctx, ssp)
	resp, derr := dispatch(co, ctx, "label", hs, func(jctx context.Context, cl *client.Client) (*api.LabelResponse, error) {
		return cl.LabelData(jctx, data, string(imageio.FormatRaw.ContentType()), fp)
	})
	if derr == nil {
		ssp.End()
		return resp, nil
	}
	if !fallbackLocal(derr) {
		ssp.EndErr(derr)
		return nil, derr
	}
	co.reg.addFallback()
	lsp := ssp.Child("local")
	res, err := core.Label(img, opt)
	lsp.EndErr(err)
	ssp.EndErr(err)
	if err != nil {
		return nil, err
	}
	return server.ToLabelResponse(res, p.WantLabels), nil
}

// wholeImageAggregate is wholeImageLabel for /v1/aggregate.
func (co *Coordinator) wholeImageAggregate(ctx context.Context, img *bitmap.Bitmap, p api.Params, op core.Monoid, opt core.Options, hs *hedgeState) (*api.AggregateResponse, error) {
	data, err := imageio.EncodeBytes(img, imageio.FormatRaw)
	if err != nil {
		return nil, err
	}
	fp := p
	fp.Format = string(imageio.FormatRaw)
	ssp := obs.FromContext(ctx).Child("strip")
	ctx = obs.ContextWith(ctx, ssp)
	resp, derr := dispatch(co, ctx, "aggregate", hs, func(jctx context.Context, cl *client.Client) (*api.AggregateResponse, error) {
		return cl.AggregateData(jctx, data, string(imageio.FormatRaw.ContentType()), fp)
	})
	if derr == nil {
		ssp.End()
		return resp, nil
	}
	if !fallbackLocal(derr) {
		ssp.EndErr(derr)
		return nil, derr
	}
	co.reg.addFallback()
	lsp := ssp.Child("local")
	initial, err := server.InitialValues(img, p.Initial, p.InitialOffset)
	if err != nil {
		lsp.EndErr(err)
		ssp.EndErr(err)
		return nil, err
	}
	res, err := core.Aggregate(img, initial, op, opt)
	lsp.EndErr(err)
	ssp.EndErr(err)
	if err != nil {
		return nil, err
	}
	return server.ToAggregateResponse(res, op.Name, p.WantLabels), nil
}

// mustDecodeStrip re-decodes a job's already-encoded strip for local
// fallback. The bytes came from EncodeBytes moments ago, so failure is
// a programming error.
func mustDecodeStrip(j job) *bitmap.Bitmap {
	img, err := imageio.DecodeBytes(j.data, imageio.FormatRaw, imageio.Limits{})
	if err != nil {
		panic(fmt.Sprintf("cluster: re-decoding own strip %d: %v", j.s, err))
	}
	return img
}
