package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"slapcc/api"
	"slapcc/internal/bitmap"
	"slapcc/internal/cluster/chaos"
	"slapcc/internal/imageio"
	"slapcc/internal/obs"
	"slapcc/internal/server"
)

// walkSpans visits every span in a snapshot tree, handing each visitor
// call the span and its parent (nil at the root).
func walkSpans(sp obs.SpanSnapshot, parent *obs.SpanSnapshot, visit func(sp, parent *obs.SpanSnapshot)) {
	visit(&sp, parent)
	for _, c := range sp.Children {
		walkSpans(c, &sp, visit)
	}
}

// ringTraces polls a coordinator's ring until want traces named name
// have been filed (Observe runs after the response is written, so a
// client that has read the body can still be a beat ahead of the ring).
func ringTraces(t *testing.T, co *Coordinator, name string, want int) []obs.TraceSnapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got []obs.TraceSnapshot
		for _, tr := range co.ring.Snapshot().Recent {
			if tr.Name == name {
				got = append(got, tr)
			}
		}
		if len(got) >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring has %d %q traces, want %d", len(got), name, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceHedgeWinnerSpans pins trace correctness under hedged
// concurrency (the cluster suite runs under -race in CI): with one
// straggling and one healthy backend and the hedge timer firing
// instantly, every strip's attempt spans settle to exactly one winner —
// the losers are cancelled or marked late/busy, never left open, and
// at least one attempt carries the hedge mark.
func TestTraceHedgeWinnerSpans(t *testing.T) {
	const stall = 500 * time.Millisecond
	slowInner := server.New(server.Config{Workers: 2})
	slowProxy := chaos.NewProxy(slowInner, func(n int) chaos.Decision {
		return chaos.Decision{Mode: chaos.Delay, Delay: stall}
	})
	slow := httptest.NewServer(slowProxy)
	t.Cleanup(slow.Close)
	t.Cleanup(slowProxy.Close)
	fast := newSlapd(t)

	co, front := newFront(t, []string{slow.URL, fast.URL}, func(cfg *Config) {
		cfg.HedgeMax = 4
	})
	img := testImage(t)
	code, body := post(t, front.URL, api.PathLabel, api.Params{ArrayWidth: 20, WantLabels: true}, img)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if hedges, _ := hedgeCounters(co); hedges < 1 {
		t.Fatalf("hedges=%d, the straggler setup should always hedge", hedges)
	}

	tr := ringTraces(t, co, "label", 1)[0]
	type settle struct{ winners, open int }
	perStrip := map[string]*settle{}
	hedged := false
	walkSpans(tr.Root, nil, func(sp, parent *obs.SpanSnapshot) {
		if sp.Name != "attempt" {
			return
		}
		key := fmt.Sprintf("%s %s", parent.Name, parent.Note)
		st := perStrip[key]
		if st == nil {
			st = &settle{}
			perStrip[key] = st
		}
		if strings.Contains(sp.Note, "hedge") {
			hedged = true
		}
		switch {
		case strings.Contains(sp.Note, "winner"):
			st.winners++
		case sp.Status == obs.StatusCancelled,
			strings.Contains(sp.Note, "late"),
			strings.Contains(sp.Note, "busy"):
			// settled loser
		default:
			st.open++
		}
	})
	if len(perStrip) != 2 {
		t.Fatalf("attempts under %d strips, want 2:\n%s", len(perStrip), mustJSON(tr))
	}
	for strip, st := range perStrip {
		if st.winners != 1 || st.open != 0 {
			t.Fatalf("strip %q settled to %d winners and %d unsettled attempts, want exactly 1 and 0:\n%s",
				strip, st.winners, st.open, mustJSON(tr))
		}
	}
	if !hedged {
		t.Fatalf("no attempt span carries the hedge mark:\n%s", mustJSON(tr))
	}
}

func mustJSON(v any) string {
	b, _ := json.MarshalIndent(v, "", "  ")
	return string(b)
}

// debugRing fetches a daemon's /debug/requests ring as JSON.
func debugRing(t *testing.T, base string) obs.RingSnapshot {
	t.Helper()
	resp, err := http.Get(base + server.PathDebugRequests + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RingSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestTraceStageCoverage is the acceptance criterion for the tracing
// layer: a strip-mined cost=host request through slapfront returns a
// merged Server-Timing tree carrying the backends' grafted stages, and
// on the backend side the per-stage decomposition accounts for at
// least 90% of each strip request's wall time — the handler's work is
// the trace, not the gaps between spans.
func TestTraceStageCoverage(t *testing.T) {
	b := newSlapd(t)
	_, front := newFront(t, []string{b.URL}, nil)

	img := bitmap.Random(1024, 0.5, 0xBEEF)
	data, err := imageio.EncodeBytes(img, imageio.FormatRaw)
	if err != nil {
		t.Fatal(err)
	}
	p := api.Params{ArrayWidth: 256, Cost: "host", WantLabels: true} // 4 strips
	req, _ := http.NewRequest(http.MethodPost, front.URL+api.PathLabel+"?"+p.Query().Encode(), bytes.NewReader(data))
	req.Header.Set("Content-Type", string(imageio.FormatRaw.ContentType()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// One tree spanning both tiers: the header must carry the front's
	// own stages and, nested under each strip's attempt, the grafted
	// backend stages.
	st := resp.Header.Get("Server-Timing")
	for _, want := range []string{"decode", "fanout.strip", "fanout.strip.attempt", "fanout.strip.attempt.label", "stitch", "encode"} {
		if !strings.Contains(st, want+";dur=") {
			t.Fatalf("Server-Timing misses %q:\n%s", want, st)
		}
	}

	// Backend side: every strip request's top-level stages must sum to
	// ≥90% of its wall time.
	deadline := time.Now().Add(5 * time.Second)
	var traces []obs.TraceSnapshot
	for {
		traces = traces[:0]
		for _, tr := range debugRing(t, b.URL).Recent {
			if tr.Name == "label" {
				traces = append(traces, tr)
			}
		}
		if len(traces) >= 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(traces) != 4 {
		t.Fatalf("backend ring has %d label traces, want 4 strips", len(traces))
	}
	for _, tr := range traces {
		var stages float64
		for _, c := range tr.Root.Children {
			stages += c.DurMS
		}
		if tr.DurMS <= 0 || stages < 0.9*tr.DurMS {
			t.Errorf("trace %s: stages cover %.2fms of %.2fms wall (%.0f%%), want ≥90%%:\n%s",
				tr.ID, stages, tr.DurMS, 100*stages/tr.DurMS, mustJSON(tr))
		}
	}
}

// TestSpanNameInventoryDocumented is the observability docs gate,
// mirroring core's TestPhaseNameInventory: it drives every request
// shape the daemons trace — strip fan-out with grafted backend stages,
// whole-image proxying, aggregation, local fallback with no backends,
// and a direct slapd batch — then fails if any span name that showed
// up is missing from docs/METRICS.md.
func TestSpanNameInventoryDocumented(t *testing.T) {
	docPath := filepath.Join("..", "..", "docs", "METRICS.md")
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("reading %s: %v", docPath, err)
	}

	b := newSlapd(t)
	co, front := newFront(t, []string{b.URL}, nil)
	img := testImage(t)
	for _, tc := range []struct {
		path string
		p    api.Params
	}{
		{api.PathLabel, api.Params{ArrayWidth: 8, WantLabels: true}},
		{api.PathLabel, api.Params{WantLabels: true}},
		{api.PathAggregate, api.Params{ArrayWidth: 8, Op: "min", Initial: "positions"}},
	} {
		if code, body := post(t, front.URL, tc.path, tc.p, img); code != http.StatusOK {
			t.Fatalf("%s: %d %s", tc.path, code, body)
		}
	}
	// Every backend down at birth: the dispatcher records the no-backend
	// event and the job runs under a local span.
	coLocal, frontLocal := newFront(t, nil, nil)
	if code, body := post(t, frontLocal.URL, api.PathLabel, api.Params{ArrayWidth: 8}, img); code != http.StatusOK {
		t.Fatalf("local fallback: %d %s", code, body)
	}
	// Batch rides only on slapd: frame spans under the batch root.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i := 0; i < 2; i++ {
		pw, err := mw.CreateFormFile("frames", fmt.Sprintf("f%d.raw", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := imageio.Encode(pw, img, imageio.FormatRaw); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	resp, err := http.Post(b.URL+api.PathBatch, mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}

	// The sweep must reach every span family; rings are filed just after
	// the response, so poll until the full vocabulary has landed.
	must := []string{
		"label", "aggregate", "batch", "frame",
		"queue", "decode", "encode", "pool", "strip", "stitch",
		"fanout", "attempt", "local", "no-backend",
	}
	names := map[string]bool{}
	deadline := time.Now().Add(5 * time.Second)
	for {
		collect := func(traces []obs.TraceSnapshot) {
			for _, tr := range traces {
				walkSpans(tr.Root, nil, func(sp, _ *obs.SpanSnapshot) { names[sp.Name] = true })
			}
		}
		collect(co.ring.Snapshot().Recent)
		collect(coLocal.ring.Snapshot().Recent)
		collect(debugRing(t, b.URL).Recent)
		missing := false
		for _, m := range must {
			if !names[m] {
				missing = true
			}
		}
		if !missing || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, m := range must {
		if !names[m] {
			t.Errorf("inventory sweep no longer emits span %q — extend the sweep or drop it from the list", m)
		}
	}

	var missing []string
	for name := range names {
		if !strings.Contains(string(doc), "`"+name+"`") {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Fatalf("span names emitted by the daemons but undocumented in docs/METRICS.md: %v\n"+
			"document each in the span inventory table", missing)
	}
}
