package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"slapcc/internal/obs"
)

// registry is slapfront's metrics store, the same dependency-free
// Prometheus text idiom as slapd's: per-endpoint request counters,
// per-backend job outcomes, and the robustness counters that tell the
// failure story — retries, re-routed strips, local fallbacks, breaker
// openings.
type registry struct {
	mu        sync.Mutex
	requests  map[reqKey]int64
	lat       map[string]*obs.Histogram // request wall time by endpoint
	stage     map[string]*obs.Histogram // stage wall time by trace span name
	jobs      map[jobKey]int64
	retries   int64
	fallbacks int64
	opened    int64
	hedges    int64
	hedgeWins int64

	// jobLats is a ring of the last latRingSize successful job
	// latencies in seconds; jobLatN counts all recorded. The hedge
	// timer reads its p95, so hedges fire only for tail stragglers.
	jobLats [latRingSize]float64
	jobLatN int
}

const latRingSize = 128

type reqKey struct {
	endpoint string
	code     int
}

type jobKey struct {
	backend string
	outcome string // ok | error | busy
}

func newRegistry() *registry {
	return &registry{
		requests: make(map[reqKey]int64),
		lat:      make(map[string]*obs.Histogram),
		stage:    make(map[string]*obs.Histogram),
		jobs:     make(map[jobKey]int64),
	}
}

func (g *registry) observe(endpoint string, code int, dur time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.requests[reqKey{endpoint, code}]++
	h := g.lat[endpoint]
	if h == nil {
		h = obs.NewHistogram(nil)
		g.lat[endpoint] = h
	}
	h.Observe(dur.Seconds())
}

// observeStages records a finished trace's top-level stage durations.
func (g *registry) observeStages(stages []obs.Stage) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, st := range stages {
		h := g.stage[st.Name]
		if h == nil {
			h = obs.NewHistogram(nil)
			g.stage[st.Name] = h
		}
		h.Observe(st.Dur.Seconds())
	}
}

func (g *registry) addJob(backend, outcome string) {
	g.mu.Lock()
	g.jobs[jobKey{backend, outcome}]++
	g.mu.Unlock()
}

func (g *registry) addRetry()    { g.mu.Lock(); g.retries++; g.mu.Unlock() }
func (g *registry) addFallback() { g.mu.Lock(); g.fallbacks++; g.mu.Unlock() }
func (g *registry) addOpened()   { g.mu.Lock(); g.opened++; g.mu.Unlock() }
func (g *registry) addHedge()    { g.mu.Lock(); g.hedges++; g.mu.Unlock() }
func (g *registry) addHedgeWin() { g.mu.Lock(); g.hedgeWins++; g.mu.Unlock() }

func (g *registry) addJobLatency(d time.Duration) {
	g.mu.Lock()
	g.jobLats[g.jobLatN%latRingSize] = d.Seconds()
	g.jobLatN++
	g.mu.Unlock()
}

// jobP95 is the 95th percentile of the recorded job-latency ring; zero
// until any job has completed.
func (g *registry) jobP95() time.Duration {
	g.mu.Lock()
	n := g.jobLatN
	if n > latRingSize {
		n = latRingSize
	}
	lats := make([]float64, n)
	copy(lats, g.jobLats[:n])
	g.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(lats)
	idx := n * 95 / 100
	if idx >= n {
		idx = n - 1
	}
	return time.Duration(lats[idx] * float64(time.Second))
}

// backendGauge is one backend's live state at render time.
type backendGauge struct {
	name        string
	state       breakerState
	probeOK     bool
	outstanding int
}

func (g *registry) render(w io.Writer, backends []backendGauge) {
	g.mu.Lock()
	defer g.mu.Unlock()

	fmt.Fprintln(w, "# HELP slapfront_requests_total HTTP requests completed, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE slapfront_requests_total counter")
	rkeys := make([]reqKey, 0, len(g.requests))
	for k := range g.requests {
		rkeys = append(rkeys, k)
	}
	sort.Slice(rkeys, func(i, j int) bool {
		if rkeys[i].endpoint != rkeys[j].endpoint {
			return rkeys[i].endpoint < rkeys[j].endpoint
		}
		return rkeys[i].code < rkeys[j].code
	})
	for _, k := range rkeys {
		fmt.Fprintf(w, "slapfront_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, g.requests[k])
	}

	// Request and stage latencies render as cumulative-bucket histograms;
	// the _count/_sum series keep the names the old summary exposed, so
	// dashboards built on them survive the conversion.
	fmt.Fprintln(w, "# HELP slapfront_request_seconds Wall time of completed requests, by endpoint.")
	fmt.Fprintln(w, "# TYPE slapfront_request_seconds histogram")
	eps := make([]string, 0, len(g.lat))
	for ep := range g.lat {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		g.lat[ep].WriteProm(w, "slapfront_request_seconds", fmt.Sprintf("endpoint=%q", ep))
	}

	fmt.Fprintln(w, "# HELP slapfront_stage_seconds Wall time of request stages (top-level trace spans), by stage.")
	fmt.Fprintln(w, "# TYPE slapfront_stage_seconds histogram")
	sts := make([]string, 0, len(g.stage))
	for st := range g.stage {
		sts = append(sts, st)
	}
	sort.Strings(sts)
	for _, st := range sts {
		g.stage[st].WriteProm(w, "slapfront_stage_seconds", fmt.Sprintf("stage=%q", st))
	}

	fmt.Fprintln(w, "# HELP slapfront_jobs_total Strip jobs dispatched to backends, by outcome.")
	fmt.Fprintln(w, "# TYPE slapfront_jobs_total counter")
	jkeys := make([]jobKey, 0, len(g.jobs))
	for k := range g.jobs {
		jkeys = append(jkeys, k)
	}
	sort.Slice(jkeys, func(i, j int) bool {
		if jkeys[i].backend != jkeys[j].backend {
			return jkeys[i].backend < jkeys[j].backend
		}
		return jkeys[i].outcome < jkeys[j].outcome
	})
	for _, k := range jkeys {
		fmt.Fprintf(w, "slapfront_jobs_total{backend=%q,outcome=%q} %d\n", k.backend, k.outcome, g.jobs[k])
	}

	fmt.Fprintln(w, "# HELP slapfront_job_retries_total Job attempts re-routed after a failure or busy signal.")
	fmt.Fprintln(w, "# TYPE slapfront_job_retries_total counter")
	fmt.Fprintf(w, "slapfront_job_retries_total %d\n", g.retries)
	fmt.Fprintln(w, "# HELP slapfront_local_fallbacks_total Jobs executed locally because no backend would take them.")
	fmt.Fprintln(w, "# TYPE slapfront_local_fallbacks_total counter")
	fmt.Fprintf(w, "slapfront_local_fallbacks_total %d\n", g.fallbacks)
	fmt.Fprintln(w, "# HELP slapfront_breaker_opened_total Circuit breaker open transitions.")
	fmt.Fprintln(w, "# TYPE slapfront_breaker_opened_total counter")
	fmt.Fprintf(w, "slapfront_breaker_opened_total %d\n", g.opened)
	fmt.Fprintln(w, "# HELP slapfront_hedges_total Duplicate strip jobs issued for straggling attempts.")
	fmt.Fprintln(w, "# TYPE slapfront_hedges_total counter")
	fmt.Fprintf(w, "slapfront_hedges_total %d\n", g.hedges)
	fmt.Fprintln(w, "# HELP slapfront_hedge_wins_total Hedged duplicates that answered before the primary.")
	fmt.Fprintln(w, "# TYPE slapfront_hedge_wins_total counter")
	fmt.Fprintf(w, "slapfront_hedge_wins_total %d\n", g.hedgeWins)

	fmt.Fprintln(w, "# HELP slapfront_backend_up 1 while the backend is routable (breaker closed and last probe healthy).")
	fmt.Fprintln(w, "# TYPE slapfront_backend_up gauge")
	for _, b := range backends {
		up := 0
		if b.state == breakerClosed && b.probeOK {
			up = 1
		}
		fmt.Fprintf(w, "slapfront_backend_up{backend=%q} %d\n", b.name, up)
	}
	fmt.Fprintln(w, "# HELP slapfront_backend_breaker_state Breaker state: 0 closed, 1 half-open, 2 open.")
	fmt.Fprintln(w, "# TYPE slapfront_backend_breaker_state gauge")
	for _, b := range backends {
		v := 0
		switch b.state {
		case breakerHalfOpen:
			v = 1
		case breakerOpen:
			v = 2
		}
		fmt.Fprintf(w, "slapfront_backend_breaker_state{backend=%q} %d\n", b.name, v)
	}
	fmt.Fprintln(w, "# HELP slapfront_backend_outstanding Jobs in flight per backend.")
	fmt.Fprintln(w, "# TYPE slapfront_backend_outstanding gauge")
	for _, b := range backends {
		fmt.Fprintf(w, "slapfront_backend_outstanding{backend=%q} %d\n", b.name, b.outstanding)
	}
}
