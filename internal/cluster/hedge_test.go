package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"slapcc/api"
	"slapcc/internal/cluster/chaos"
	"slapcc/internal/imageio"
	"slapcc/internal/server"
)

// hedgeCounters reads the hedge metrics white-box.
func hedgeCounters(co *Coordinator) (hedges, wins int64) {
	co.reg.mu.Lock()
	defer co.reg.mu.Unlock()
	return co.reg.hedges, co.reg.hedgeWins
}

func decodeBody(resp *http.Response, v any) error { return json.NewDecoder(resp.Body).Decode(v) }

// outstandingTotal sums every backend's in-flight gauge.
func outstandingTotal(co *Coordinator) int {
	total := 0
	for _, b := range co.backends {
		_, _, out, _ := b.snapshot()
		total += out
	}
	return total
}

// TestHedgeWinsOverStraggler pins the hedging payoff deterministically:
// one backend delays every request by p99-scale time, the other is
// healthy. With hedging on (the instant test Sleep fires the hedge
// timer immediately), the composed frame answers from the fast backend
// well before the straggler's delay elapses — first response wins, the
// loser's attempt is cancelled, and the outstanding gauges are drained
// before the response is even written.
func TestHedgeWinsOverStraggler(t *testing.T) {
	const stall = 500 * time.Millisecond
	ref := newSlapd(t)
	slowInner := server.New(server.Config{Workers: 2})
	slowProxy := chaos.NewProxy(slowInner, func(n int) chaos.Decision {
		return chaos.Decision{Mode: chaos.Delay, Delay: stall}
	})
	slow := httptest.NewServer(slowProxy)
	t.Cleanup(slow.Close)
	t.Cleanup(slowProxy.Close)
	fast := newSlapd(t)

	co, front := newFront(t, []string{slow.URL, fast.URL}, func(cfg *Config) {
		cfg.HedgeMax = 4
	})
	img := testImage(t)
	p := api.Params{ArrayWidth: 20, WantLabels: true} // 2 strips

	wantCode, want := post(t, ref.URL, api.PathLabel, p, img)
	start := time.Now()
	gotCode, got := post(t, front.URL, api.PathLabel, p, img)
	elapsed := time.Since(start)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status: local %d cluster %d (cluster body %s)", wantCode, gotCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("hedged response diverges:\nlocal:   %s\ncluster: %s", want, got)
	}
	if elapsed >= stall {
		t.Fatalf("composed frame took %v, the straggler's %v stall set the latency — hedge never won", elapsed, stall)
	}
	hedges, wins := hedgeCounters(co)
	if hedges < 1 || wins < 1 {
		t.Fatalf("hedges=%d wins=%d, want both ≥ 1", hedges, wins)
	}
	if out := outstandingTotal(co); out != 0 {
		t.Fatalf("outstanding gauges = %d after response, want 0", out)
	}
}

// TestHedgeCapBoundsAttempts: under fleet-wide slowness (every backend
// hangs), hedging must not amplify the overload — total upstream
// attempts stay bounded by RetryBudget primaries plus HedgeMax
// duplicates, and the request still answers via local fallback.
func TestHedgeCapBoundsAttempts(t *testing.T) {
	ref := newSlapd(t)
	mkHang := func() (*httptest.Server, *chaos.Proxy) {
		inner := server.New(server.Config{Workers: 2})
		proxy := chaos.NewProxy(inner, func(n int) chaos.Decision {
			return chaos.Decision{Mode: chaos.Hang}
		})
		srv := httptest.NewServer(proxy)
		t.Cleanup(srv.Close)
		t.Cleanup(proxy.Close) // LIFO: release hung requests before srv.Close waits
		return srv, proxy
	}
	b1, p1 := mkHang()
	b2, p2 := mkHang()

	const retryBudget, hedgeMax = 2, 2
	co, front := newFront(t, []string{b1.URL, b2.URL}, func(cfg *Config) {
		cfg.RetryBudget = retryBudget
		cfg.HedgeMax = hedgeMax
		cfg.JobTimeout = 50 * time.Millisecond
	})
	img := testImage(t)
	p := api.Params{WantLabels: true} // whole image: one job, every attempt visible

	wantCode, want := post(t, ref.URL, api.PathLabel, p, img)
	gotCode, got := post(t, front.URL, api.PathLabel, p, img)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("status: local %d cluster %d (cluster body %s)", wantCode, gotCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("fallback response diverges:\nlocal:   %s\ncluster: %s", want, got)
	}
	total := p1.Requests() + p2.Requests()
	if total > retryBudget+hedgeMax {
		t.Fatalf("%d upstream attempts for one request, want ≤ %d (RetryBudget %d + HedgeMax %d)",
			total, retryBudget+hedgeMax, retryBudget, hedgeMax)
	}
	if total < retryBudget {
		t.Fatalf("%d upstream attempts, want ≥ the %d-attempt retry budget", total, retryBudget)
	}
	if out := outstandingTotal(co); out != 0 {
		t.Fatalf("outstanding gauges = %d after response, want 0", out)
	}
}

// TestHedgeLoserCancelled: the losing copy of a hedged job has its
// request context cancelled the moment the winner lands — observed from
// inside the loser's handler — and its slot is released before the
// coordinator answers. Runs under -race in CI with the rest of the
// cluster suite.
func TestHedgeLoserCancelled(t *testing.T) {
	cancelled := make(chan struct{}, 4)
	blocking := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server arms its client-disconnect watch;
		// with unread bytes buffered, r.Context() never fires on abort.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		cancelled <- struct{}{}
	}))
	t.Cleanup(blocking.Close)
	ref := newSlapd(t)
	fast := newSlapd(t)

	co, front := newFront(t, []string{blocking.URL, fast.URL}, func(cfg *Config) {
		cfg.HedgeMax = 2
	})
	img := testImage(t)
	p := api.Params{WantLabels: true}

	wantCode, want := post(t, ref.URL, api.PathLabel, p, img)
	gotCode, got := post(t, front.URL, api.PathLabel, p, img)
	if wantCode != http.StatusOK || gotCode != http.StatusOK || !bytes.Equal(want, got) {
		t.Fatalf("hedged request: status local %d cluster %d identical %v", wantCode, gotCode, bytes.Equal(want, got))
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing hedge's context was never cancelled")
	}
	if out := outstandingTotal(co); out != 0 {
		t.Fatalf("outstanding gauges = %d after response, want 0", out)
	}
	if _, wins := hedgeCounters(co); wins < 1 {
		t.Fatal("the hedge should have won against a never-answering primary")
	}
}

// TestHedgeBitIdenticalWhenBothComplete: with two healthy identical
// backends and the hedge timer firing instantly, both copies of a job
// routinely complete; whichever wins, the composed response stays
// byte-identical to a local slapd's, round after round.
func TestHedgeBitIdenticalWhenBothComplete(t *testing.T) {
	ref := newSlapd(t)
	b1, b2 := newSlapd(t), newSlapd(t)
	co, front := newFront(t, []string{b1.URL, b2.URL}, func(cfg *Config) {
		cfg.HedgeMax = 8
	})
	img := testImage(t)

	cases := []struct {
		path string
		p    api.Params
	}{
		{api.PathLabel, api.Params{ArrayWidth: 8, WantLabels: true}},
		{api.PathAggregate, api.Params{ArrayWidth: 8, Op: "min", Initial: "positions", WantLabels: true}},
	}
	for round := 0; round < 3; round++ {
		for _, tc := range cases {
			wantCode, want := post(t, ref.URL, tc.path, tc.p, img)
			gotCode, got := post(t, front.URL, tc.path, tc.p, img)
			if wantCode != http.StatusOK || gotCode != http.StatusOK {
				t.Fatalf("round %d %s: status local %d cluster %d", round, tc.path, wantCode, gotCode)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("round %d %s: hedged response diverges:\nlocal:   %s\ncluster: %s", round, tc.path, want, got)
			}
		}
		if out := outstandingTotal(co); out != 0 {
			t.Fatalf("round %d: outstanding gauges = %d, want 0", round, out)
		}
	}
}

// TestClusterDeadlineBudget: slapfront enforces X-Slap-Deadline-Ms at
// its own front door — a spent budget answers 504 (with the request ID
// in the payload) before any fan-out, and a caller-supplied request ID
// echoes back on success too.
func TestClusterDeadlineBudget(t *testing.T) {
	b := newSlapd(t)
	_, front := newFront(t, []string{b.URL}, nil)
	img := testImage(t)
	data, err := imageio.EncodeBytes(img, imageio.FormatRaw)
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodPost, front.URL+api.PathLabel, bytes.NewReader(data))
	req.Header.Set("Content-Type", string(imageio.FormatRaw.ContentType()))
	req.Header.Set(api.HeaderDeadlineMS, "0")
	req.Header.Set(api.HeaderRequestID, "spent-99")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("spent budget: %d, want 504", resp.StatusCode)
	}
	if got := resp.Header.Get(api.HeaderRequestID); got != "spent-99" {
		t.Fatalf("request ID echoed as %q", got)
	}
	var e api.ErrorResponse
	if err := decodeBody(resp, &e); err != nil || e.RequestID != "spent-99" {
		t.Fatalf("error payload %+v (err %v)", e, err)
	}

	// A live budget flows through to a normal answer, ID echoed.
	req, _ = http.NewRequest(http.MethodPost, front.URL+api.PathLabel, bytes.NewReader(data))
	req.Header.Set("Content-Type", string(imageio.FormatRaw.ContentType()))
	req.Header.Set(api.HeaderDeadlineMS, "60000")
	req.Header.Set(api.HeaderRequestID, "live-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live budget: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.HeaderRequestID); got != "live-7" {
		t.Fatalf("request ID on success echoed as %q", got)
	}
}
