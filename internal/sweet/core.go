package sweet

import (
	"fmt"
	"runtime"
	"time"

	"slapcc/internal/benchfmt"
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/slap"
)

// withGMP runs f at GOMAXPROCS p and restores the previous setting.
// The core scenarios sweep this process-wide knob — safe here because
// scenarios run strictly sequentially and nothing else is in flight.
func withGMP(p int, f func() error) error {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	return f()
}

// sampleMBs measures f (which must process `pixels` pixels per call)
// count times, framesPer calls per sample, returning MB/s samples.
// ≥ 3 samples is what lets a later diff use the significance test
// instead of the loose point heuristic.
func sampleMBs(count, framesPer int, pixels int64, f func() error) ([]float64, error) {
	samples := make([]float64, count)
	for s := range samples {
		t0 := time.Now()
		for k := 0; k < framesPer; k++ {
			if err := f(); err != nil {
				return nil, err
			}
		}
		samples[s] = float64(pixels*int64(framesPer)) / 1e6 / time.Since(t0).Seconds()
	}
	return samples, nil
}

// sampled builds a gated throughput Result from raw samples.
func sampled(name string, samples []float64, attrs map[string]string) benchfmt.Result {
	r := benchfmt.Result{
		Name: name, Unit: "MB/s", Better: benchfmt.HigherIsBetter,
		Samples: samples, Attrs: attrs,
	}
	r.Value = r.Mean()
	return r
}

// runEngine: the PR 2/PR 8 engine matrix — sequential simulator,
// parallel simulator at every GOMAXPROCS point, host engine, and the
// bit-serial cost model. The gmp>1 rows are the repo's first
// measurements with the scheduler actually allowed extra procs.
func runEngine(cfg Config) ([]benchfmt.Result, error) {
	n := cfg.scale(1024, 128)
	img := bitmap.Random(n, 0.5, cfg.Seed)
	pixels := int64(n) * int64(n)
	label := func(opt core.Options) func() error {
		return func() error {
			_, err := core.Label(img, opt)
			return err
		}
	}
	var res []benchfmt.Result

	seq, err := sampleMBs(cfg.Count, 1, pixels, label(core.Options{}))
	if err != nil {
		return nil, err
	}
	res = append(res, sampled("core/engine-seq/mb_per_s", seq, nil))

	for _, p := range cfg.GoMaxProcs {
		var par []float64
		err := withGMP(p, func() error {
			var err error
			par, err = sampleMBs(cfg.Count, 1, pixels, label(core.Options{Parallel: true}))
			return err
		})
		if err != nil {
			return nil, err
		}
		res = append(res, sampled(fmt.Sprintf("core/engine-par/gmp%d/mb_per_s", p), par,
			map[string]string{"gomaxprocs": fmt.Sprint(p)}))
	}

	host, err := sampleMBs(cfg.Count, cfg.scale(8, 2), pixels, label(core.Options{Engine: core.EngineHost}))
	if err != nil {
		return nil, err
	}
	res = append(res, sampled("core/engine-host/mb_per_s", host, nil))

	bits, err := sampleMBs(cfg.Count, 1, pixels,
		label(core.Options{Cost: slap.BitSerial(slap.WordBitsForDims(n, n))}))
	if err != nil {
		return nil, err
	}
	res = append(res, sampled("core/engine-bitserial/mb_per_s", bits, nil))
	return res, nil
}

// runStream: the frame-streaming subsystem across worker counts, each
// measured with GOMAXPROCS matched to the worker count. One worker is
// the synchronous delegate path; more workers exercise the fan-out and
// in-order collector.
func runStream(cfg Config) ([]benchfmt.Result, error) {
	n := cfg.scale(256, 64)
	frames := cfg.scale(16, 4)
	imgs := make([]*bitmap.Bitmap, frames)
	for i := range imgs {
		imgs[i] = bitmap.Random(n, 0.5, cfg.Seed+uint64(i))
	}
	pixels := int64(n) * int64(n) * int64(frames)
	var res []benchfmt.Result
	for _, w := range []int{1, 2, 4} {
		runOnce := func() error {
			var streamErr error
			s := core.NewLabelStream(core.Options{}, w, func(r core.StreamResult) {
				if r.Err != nil && streamErr == nil {
					streamErr = r.Err
				}
			})
			for _, img := range imgs {
				s.Submit(img)
			}
			s.Close()
			return streamErr
		}
		var samples []float64
		err := withGMP(w, func() error {
			var err error
			samples, err = sampleMBs(cfg.Count, 1, pixels, runOnce)
			return err
		})
		if err != nil {
			return nil, err
		}
		res = append(res, sampled(fmt.Sprintf("core/stream/w%d/mb_per_s", w), samples,
			map[string]string{"workers": fmt.Sprint(w), "frames": fmt.Sprint(frames)}))
	}
	return res, nil
}

// runStripWorkers: strip-mined labeling with the strips fanned across a
// worker pool — the LabelLarge multicore path. Composed metrics are
// bit-identical at every width (other tests enforce it); this measures
// what the fan-out buys in wall time.
func runStripWorkers(cfg Config) ([]benchfmt.Result, error) {
	n, aw := cfg.scale(1024, 128), cfg.scale(128, 32)
	img := bitmap.Random(n, 0.5, cfg.Seed)
	pixels := int64(n) * int64(n)
	var res []benchfmt.Result
	for _, w := range []int{1, 2, 4} {
		opt := core.Options{ArrayWidth: aw, StripWorkers: w}
		var samples []float64
		err := withGMP(w, func() error {
			var err error
			samples, err = sampleMBs(cfg.Count, 1, pixels, func() error {
				_, err := core.Label(img, opt)
				return err
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		res = append(res, sampled(fmt.Sprintf("core/stripworkers/w%d/mb_per_s", w), samples,
			map[string]string{"workers": fmt.Sprint(w), "array_width": fmt.Sprint(aw)}))
	}
	return res, nil
}

// runReuse: steady-state throughput and per-frame allocations of one
// reused Labeler — the arena-reuse contract from the PR 2 baseline.
func runReuse(cfg Config) ([]benchfmt.Result, error) {
	n := cfg.scale(256, 64)
	frames := cfg.scale(8, 4)
	imgs := make([]*bitmap.Bitmap, frames)
	for i := range imgs {
		imgs[i] = bitmap.Random(n, 0.5, cfg.Seed+uint64(i))
	}
	pixels := int64(n) * int64(n) * int64(frames)
	lb := core.NewLabeler(core.Options{})
	runOnce := func() error {
		for _, img := range imgs {
			if _, err := lb.Label(img); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm the arenas before measuring either time or allocations.
	if err := runOnce(); err != nil {
		return nil, err
	}
	samples, err := sampleMBs(cfg.Count, 1, pixels, runOnce)
	if err != nil {
		return nil, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	if err := runOnce(); err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&ms1)
	allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(frames)
	return []benchfmt.Result{
		sampled("core/reuse/mb_per_s", samples, nil),
		{Name: "core/reuse/allocs_per_frame", Unit: "allocs/frame", Value: allocs},
	}, nil
}

// runLinkTune: the parallel engine's BatchSize x LinkDepth grid at the
// sweep's top GOMAXPROCS point — the data slap.DefaultLinkTuning's
// defaults are tuned from. All informational: a tuning surface, not a
// gate.
func runLinkTune(cfg Config) ([]benchfmt.Result, error) {
	n := cfg.scale(512, 96)
	img := bitmap.Random(n, 0.5, cfg.Seed)
	pixels := int64(n) * int64(n)
	gmp := cfg.GoMaxProcs[len(cfg.GoMaxProcs)-1]
	batches := []int{64, 256, 1024}
	depths := []int{2, 8, 32}
	if cfg.Short {
		batches, depths = []int{256}, []int{8}
	}
	var res []benchfmt.Result
	err := withGMP(gmp, func() error {
		defBatch, defDepth := slap.DefaultLinkTuning()
		for _, b := range batches {
			for _, dep := range depths {
				opt := core.Options{Parallel: true, BatchSize: b, LinkDepth: dep}
				samples, err := sampleMBs(cfg.Count, 1, pixels, func() error {
					_, err := core.Label(img, opt)
					return err
				})
				if err != nil {
					return err
				}
				r := benchfmt.Result{
					Name: fmt.Sprintf("core/linktune/b%d-d%d/mb_per_s", b, dep),
					Unit: "MB/s", Samples: samples,
					Attrs: map[string]string{
						"gomaxprocs": fmt.Sprint(gmp),
						"batch":      fmt.Sprint(b),
						"depth":      fmt.Sprint(dep),
					},
				}
				r.Value = r.Mean()
				res = append(res, r)
			}
		}
		// The defaults' own point, so the grid shows where the shipped
		// tuning sits relative to the alternatives.
		samples, err := sampleMBs(cfg.Count, 1, pixels, func() error {
			_, err := core.Label(img, core.Options{Parallel: true})
			return err
		})
		if err != nil {
			return err
		}
		r := benchfmt.Result{
			Name: "core/linktune/default/mb_per_s", Unit: "MB/s", Samples: samples,
			Attrs: map[string]string{
				"gomaxprocs": fmt.Sprint(gmp),
				"batch":      fmt.Sprint(defBatch),
				"depth":      fmt.Sprint(defDepth),
			},
			Note: "slap.DefaultLinkTuning as shipped",
		}
		r.Value = r.Mean()
		res = append(res, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
