package sweet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	slapcc "slapcc"
	"slapcc/api"
	"slapcc/client"
	"slapcc/internal/benchfmt"
	"slapcc/internal/obs"
	"slapcc/internal/server"
	"slapcc/internal/stats"
)

// daemon is an in-process slapd: the real server.Server behind a real
// TCP listener, plus the same localhost debug listener -debugaddr
// binds, so the harness profiles it exactly the way an operator would.
type daemon struct {
	srv      *server.Server
	main     *http.Server
	debug    *http.Server
	URL      string
	DebugURL string
}

// bootSlapd starts a daemon on ephemeral ports and waits for /healthz.
func bootSlapd(cfg server.Config) (*daemon, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		return nil, err
	}
	d := &daemon{
		srv:      srv,
		main:     &http.Server{Handler: srv},
		debug:    &http.Server{Handler: obs.DebugMux(srv.DebugHandler())},
		URL:      "http://" + ln.Addr().String(),
		DebugURL: "http://" + dln.Addr().String(),
	}
	go d.main.Serve(ln)
	go d.debug.Serve(dln)
	c := client.New(d.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		if err := c.Healthz(ctx); err == nil {
			return d, nil
		}
		select {
		case <-ctx.Done():
			d.Close()
			return nil, fmt.Errorf("slapd did not become healthy: %w", ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (d *daemon) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	d.main.Shutdown(ctx)
	d.debug.Close()
	return err
}

// frameSpec is one encoded request in a scenario corpus.
type frameSpec struct {
	data   []byte
	ctype  string
	params api.Params
	pixels int64
}

// corpus encodes perSize frames for every size x format combination.
func corpus(cfg Config, sizes []int, formats []string, perSize int, params api.Params) ([]frameSpec, error) {
	var specs []frameSpec
	seed := cfg.Seed
	for _, n := range sizes {
		for _, format := range formats {
			for k := 0; k < perSize; k++ {
				seed++
				img := slapcc.RandomImage(n, 0.5, seed)
				data, ctype, err := client.EncodeImage(img, format)
				if err != nil {
					return nil, fmt.Errorf("encode %dpx %s: %w", n, format, err)
				}
				p := params
				p.Format = format
				specs = append(specs, frameSpec{data: data, ctype: ctype, params: p, pixels: int64(n) * int64(n)})
			}
		}
	}
	return specs, nil
}

// loopCfg shapes one closed-loop drive of a daemon.
type loopCfg struct {
	prefix  string // canonical metric prefix, e.g. "steady"
	frames  int
	conc    int
	retries int // client retry budget for 429s
}

// loopOut is what the closed loop hands back for metric assembly.
type loopOut struct {
	frames     int
	elapsed    time.Duration
	bytesSent  int64
	pixels     int64
	retried429 int64
	lats       []time.Duration
	stageLats  map[string][]time.Duration
	gc         obs.GCSnapshot
}

// counting429 counts 429 responses at the transport so retried shed
// requests are visible even when the client absorbs them.
type counting429 struct {
	rt http.RoundTripper
	n  atomic.Int64
}

func (c *counting429) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.rt.RoundTrip(req)
	if err == nil && resp.StatusCode == http.StatusTooManyRequests {
		c.n.Add(1)
	}
	return resp, err
}

// drive runs the slapload-style closed loop: conc workers pulling
// frames off a shared counter, each request traced so the server's
// Server-Timing stage breakdown lands in stageLats. Any request error
// (after retries) fails the scenario — a benchmark that errors is not a
// measurement.
func drive(d *daemon, specs []frameSpec, lc loopCfg) (*loopOut, error) {
	counter := &counting429{rt: http.DefaultTransport.(*http.Transport).Clone()}
	hc := &http.Client{Transport: counter, Timeout: 60 * time.Second}
	opts := []client.Option{client.WithHTTPClient(hc), client.WithMaxRetryWait(time.Second)}
	opts = append(opts, client.WithMaxRetries(lc.retries))
	c := client.New(d.URL, opts...)
	ctx := context.Background()

	// Warmup, uncounted: connection pool and server arenas.
	for i := 0; i < min(lc.conc, len(specs)); i++ {
		if _, err := c.LabelData(ctx, specs[i].data, specs[i].ctype, specs[i].params); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}

	var (
		next      atomic.Int64
		bytesSent atomic.Int64
		pixels    atomic.Int64
		firstErr  atomic.Value
		mu        sync.Mutex
		lats      []time.Duration
		stageLats = map[string][]time.Duration{}
		wg        sync.WaitGroup
	)
	gc0 := obs.ReadGC()
	start := time.Now()
	for g := 0; g < lc.conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, lc.frames/lc.conc+1)
			localStages := map[string][]time.Duration{}
			for {
				i := int(next.Add(1)) - 1
				if i >= lc.frames {
					break
				}
				sp := &specs[i%len(specs)]
				tr := obs.New("", lc.prefix, nil)
				t0 := time.Now()
				_, err := c.LabelData(obs.ContextWith(ctx, tr.Root()), sp.data, sp.ctype, sp.params)
				dur := time.Since(t0)
				tr.Finish()
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				for _, st := range tr.Stages() {
					localStages[st.Name] = append(localStages[st.Name], st.Dur)
				}
				local = append(local, dur)
				bytesSent.Add(int64(len(sp.data)))
				pixels.Add(sp.pixels)
			}
			mu.Lock()
			lats = append(lats, local...)
			for name, ds := range localStages {
				stageLats[name] = append(stageLats[name], ds...)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return nil, fmt.Errorf("request failed mid-loop: %w", err)
	}
	return &loopOut{
		frames:     len(lats),
		elapsed:    elapsed,
		bytesSent:  bytesSent.Load(),
		pixels:     pixels.Load(),
		retried429: counter.n.Load(),
		lats:       lats,
		stageLats:  stageLats,
		gc:         obs.ReadGC().Delta(gc0),
	}, nil
}

// latMs converts durations to sorted milliseconds for percentiles.
func latMs(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / 1e6
	}
	sort.Float64s(out)
	return out
}

// results turns a loop run into the canonical metric set for prefix:
// gated throughputs, informational latency/stage percentiles, and the
// GC the loop induced. The names match the legacy adapters in
// internal/benchfmt so diffs join across the whole trajectory.
func (o *loopOut) results(prefix string) []benchfmt.Result {
	secs := o.elapsed.Seconds()
	ms := latMs(o.lats)
	res := []benchfmt.Result{
		{Name: prefix + "/frames_per_s", Unit: "frames/s", Better: benchfmt.HigherIsBetter,
			Value: float64(o.frames) / secs},
		{Name: prefix + "/wire_mb_per_s", Unit: "MB/s", Better: benchfmt.HigherIsBetter,
			Value: float64(o.bytesSent) / 1e6 / secs},
		{Name: prefix + "/pixel_mb_per_s", Unit: "MB/s", Better: benchfmt.HigherIsBetter,
			Value: float64(o.pixels) / 1e6 / secs},
		{Name: prefix + "/latency_p50_ms", Unit: "ms", Value: stats.Percentile(ms, 0.50)},
		{Name: prefix + "/latency_p95_ms", Unit: "ms", Value: stats.Percentile(ms, 0.95)},
		{Name: prefix + "/latency_p99_ms", Unit: "ms", Value: stats.Percentile(ms, 0.99)},
		{Name: prefix + "/gc_collections", Unit: "count", Value: float64(o.gc.NumGC)},
		{Name: prefix + "/gc_pause_ms", Unit: "ms", Value: float64(o.gc.PauseTotal) / 1e6},
	}
	if o.retried429 > 0 {
		res = append(res, benchfmt.Result{
			Name: prefix + "/retried_429", Unit: "count", Value: float64(o.retried429)})
	}
	// Per-stage server-side percentiles from the grafted Server-Timing
	// breakdowns (PR 9's tracing): where the p95 actually goes.
	stages := make([]string, 0, len(o.stageLats))
	for name := range o.stageLats {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	for _, name := range stages {
		sms := latMs(o.stageLats[name])
		res = append(res, benchfmt.Result{
			Name: prefix + "/stage/" + name + "_p95_ms", Unit: "ms",
			Value: stats.Percentile(sms, 0.95),
		})
	}
	return res
}

// profiled wraps a loop with CPU + heap profile capture from the debug
// listener when cfg.ProfileDir is set — the pprof fetch runs while the
// loop does, like `go tool pprof http://...` against a live daemon.
func profiled(cfg Config, d *daemon, name string, run func() (*loopOut, error)) (*loopOut, error) {
	if cfg.ProfileDir == "" {
		return run()
	}
	if err := os.MkdirAll(cfg.ProfileDir, 0o755); err != nil {
		return nil, err
	}
	secs := cfg.scale(5, 1)
	profErr := make(chan error, 1)
	profBody := make(chan []byte, 1)
	go func() {
		body, err := fetchBytes(fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", d.DebugURL, secs))
		profBody <- body
		profErr <- err
	}()
	out, err := run()
	if err != nil {
		<-profErr // don't leak the fetch
		return nil, err
	}
	body := <-profBody
	if perr := <-profErr; perr != nil {
		return nil, fmt.Errorf("cpu profile capture: %w", perr)
	}
	if werr := os.WriteFile(filepath.Join(cfg.ProfileDir, name+".cpu.pb.gz"), body, 0o644); werr != nil {
		return nil, werr
	}
	heap, herr := fetchBytes(d.DebugURL + "/debug/pprof/heap")
	if herr != nil {
		return nil, fmt.Errorf("heap profile capture: %w", herr)
	}
	if werr := os.WriteFile(filepath.Join(cfg.ProfileDir, name+".heap.pb.gz"), heap, 0o644); werr != nil {
		return nil, werr
	}
	return out, nil
}

func fetchBytes(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// serviceLoop is the shared boot → corpus → profiled drive → results
// shape behind the simple service scenarios.
func serviceLoop(cfg Config, scfg server.Config, sizes []int, formats []string, params api.Params, lc loopCfg) ([]benchfmt.Result, error) {
	d, err := bootSlapd(scfg)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	specs, err := corpus(cfg, sizes, formats, 2, params)
	if err != nil {
		return nil, err
	}
	out, err := profiled(cfg, d, lc.prefix, func() (*loopOut, error) { return drive(d, specs, lc) })
	if err != nil {
		return nil, err
	}
	return out.results(lc.prefix), nil
}

// runSteady: the PR 4 steady-state shape — mixed frame sizes, raw+png,
// moderate concurrency against default workers.
func runSteady(cfg Config) ([]benchfmt.Result, error) {
	sizes := []int{64, 128, 256}
	if cfg.Short {
		sizes = []int{32, 64}
	}
	return serviceLoop(cfg, server.Config{},
		sizes, []string{"raw", "png"}, api.Params{},
		loopCfg{prefix: "steady", frames: cfg.scale(600, 40), conc: cfg.scale(4, 2), retries: 8})
}

// runBurst: concurrency far above the worker pool with a short queue;
// the client's retries absorb the shed 429s, measuring goodput under
// pressure.
func runBurst(cfg Config) ([]benchfmt.Result, error) {
	return serviceLoop(cfg,
		server.Config{Workers: 2, QueueDepth: 4},
		[]int{cfg.scale(128, 64)}, []string{"raw"}, api.Params{},
		loopCfg{prefix: "burst", frames: cfg.scale(300, 24), conc: 8, retries: 16})
}

// runStrip: strip-mined frames (array narrower than the image) through
// the service, the Section 4 composition path end to end.
func runStrip(cfg Config) ([]benchfmt.Result, error) {
	n, aw := 512, 128
	if cfg.Short {
		n, aw = 96, 32
	}
	return serviceLoop(cfg, server.Config{},
		[]int{n}, []string{"raw"}, api.Params{ArrayWidth: aw},
		loopCfg{prefix: "strip", frames: cfg.scale(60, 8), conc: 2, retries: 8})
}

// runOverload: the PR 4 overload shape — no retries, workers=1 queue=1,
// a burst bigger than capacity; the interesting numbers are how much
// was shed (429) versus served, all informational.
func runOverload(cfg Config) ([]benchfmt.Result, error) {
	d, err := bootSlapd(server.Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	// Frames big enough that one label outlasts the scheduler's
	// preemption slice: on a 1-core host that is what lets the rest of
	// the in-process burst arrive while a label is mid-flight, so the
	// admission bound is actually exercised.
	specs, err := corpus(cfg, []int{cfg.scale(512, 256)}, []string{"raw"}, 2, api.Params{})
	if err != nil {
		return nil, err
	}
	c := client.New(d.URL, client.WithMaxRetries(0))
	total := cfg.scale(64, 16)
	var ok, rejected, failed atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	// One uncounted request per distinct spec warms the connection
	// pool; the barrier then releases the whole burst at once so the
	// arrivals genuinely exceed the admission capacity of 2.
	for i := range specs {
		c.LabelData(ctx, specs[i].data, specs[i].ctype, specs[i].params)
	}
	start := make(chan struct{})
	for i := 0; i < total; i++ {
		sp := &specs[i%len(specs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := c.LabelData(ctx, sp.data, sp.ctype, sp.params)
			var se *client.StatusError
			switch {
			case err == nil:
				ok.Add(1)
			case errors.As(err, &se) && se.Code == http.StatusTooManyRequests:
				rejected.Add(1)
			default:
				failed.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if failed.Load() > 0 {
		return nil, fmt.Errorf("%d non-429 failures under overload", failed.Load())
	}
	return []benchfmt.Result{
		{Name: "overload/requests", Unit: "count", Value: float64(total)},
		{Name: "overload/ok", Unit: "count", Value: float64(ok.Load())},
		{Name: "overload/rejected_429", Unit: "count", Value: float64(rejected.Load())},
	}, nil
}

// runBatch: multipart batch endpoint throughput — many frames per
// round trip.
func runBatch(cfg Config) ([]benchfmt.Result, error) {
	d, err := bootSlapd(server.Config{})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	n := cfg.scale(128, 48)
	perBatch := cfg.scale(16, 4)
	batches := cfg.scale(12, 2)
	frames := make([]client.Frame, perBatch)
	var pixels int64
	for i := range frames {
		img := slapcc.RandomImage(n, 0.5, cfg.Seed+uint64(i))
		fr, err := client.EncodeFrame(img, "raw")
		if err != nil {
			return nil, err
		}
		frames[i] = fr
		pixels += int64(n) * int64(n)
	}
	c := client.New(d.URL, client.WithMaxRetries(8))
	ctx := context.Background()
	if _, err := c.LabelBatch(ctx, frames, api.Params{}); err != nil {
		return nil, fmt.Errorf("warmup batch: %w", err)
	}
	gc0 := obs.ReadGC()
	start := time.Now()
	for b := 0; b < batches; b++ {
		if _, err := c.LabelBatch(ctx, frames, api.Params{}); err != nil {
			return nil, fmt.Errorf("batch %d: %w", b, err)
		}
	}
	elapsed := time.Since(start)
	gc := obs.ReadGC().Delta(gc0)
	secs := elapsed.Seconds()
	return []benchfmt.Result{
		{Name: "batch/frames_per_s", Unit: "frames/s", Better: benchfmt.HigherIsBetter,
			Value: float64(batches*perBatch) / secs},
		{Name: "batch/pixel_mb_per_s", Unit: "MB/s", Better: benchfmt.HigherIsBetter,
			Value: float64(pixels*int64(batches)) / 1e6 / secs},
		{Name: "batch/frames_per_batch", Unit: "count", Value: float64(perBatch)},
		{Name: "batch/gc_collections", Unit: "count", Value: float64(gc.NumGC)},
	}, nil
}

// runCost: identical corpora served by cost=host and cost=bitserial —
// the PR 8 comparison, plus the derived ratio that gates the host
// engine's win.
func runCost(cfg Config) ([]benchfmt.Result, error) {
	d, err := bootSlapd(server.Config{})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	n := cfg.scale(1024, 128)
	frames := cfg.scale(24, 4)
	var all []benchfmt.Result
	byPrefix := map[string]float64{}
	for _, cost := range []string{"host", "bitserial"} {
		prefix := "cost-" + cost
		specs, err := corpus(cfg, []int{n}, []string{"raw"}, 2, api.Params{Cost: cost})
		if err != nil {
			return nil, err
		}
		out, err := profiled(cfg, d, prefix, func() (*loopOut, error) {
			return drive(d, specs, loopCfg{prefix: prefix, frames: frames, conc: 1, retries: 8})
		})
		if err != nil {
			return nil, fmt.Errorf("cost=%s: %w", cost, err)
		}
		res := out.results(prefix)
		all = append(all, res...)
		for _, r := range res {
			if r.Name == prefix+"/pixel_mb_per_s" {
				byPrefix[cost] = r.Value
			}
		}
	}
	if byPrefix["bitserial"] > 0 {
		all = append(all, benchfmt.Result{
			Name: "engine/host_over_bitserial", Unit: "x", Better: benchfmt.HigherIsBetter,
			Value: byPrefix["host"] / byPrefix["bitserial"],
			Note:  "host-engine pixel throughput over metered bit-serial simulation, identical requests",
		})
	}
	return all, nil
}
