// Package sweet is the end-to-end benchmark harness behind
// cmd/slapsweet, in the mold of the upstream Go benchmarks repo's
// sweet/bent drivers: a table of named scenarios, each of which boots a
// real slapd (in process, on a real TCP listener, with the same debug
// listener the -debugaddr flag binds) or drives the core directly,
// measures under a fixed protocol, and emits canonical
// benchfmt.Results. The scenario table, metric names, and scale rules
// are all plain data — unit-testable without a network — and the
// canonical names are the join keys `slapsweet -diff` uses against the
// committed BENCH trajectory (see internal/benchfmt and
// docs/BENCHMARKING.md).
package sweet

import (
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sort"
	"time"

	"slapcc/internal/benchfmt"
	"slapcc/internal/obs"
)

// Config scales and points a run.
type Config struct {
	// Short shrinks every scenario to a seconds-long smoke (the go
	// test mode); full scale is the CI/measurement mode.
	Short bool
	// GoMaxProcs are the GOMAXPROCS values the core scenarios sweep.
	// Defaults to 1,2,4 plus NumCPU when larger: the parallel engine,
	// the stream pool, and the strip fan-out are measured at every
	// point, so a 1-core runner still exercises (and times) the >1
	// scheduling paths while a multicore runner shows real speedup.
	GoMaxProcs []int
	// Count is the number of samples per core measurement (default 3;
	// ≥ 3 lets a later diff run the significance test instead of the
	// point heuristic).
	Count int
	// ProfileDir, when non-empty, receives CPU and heap profiles per
	// service scenario, fetched from the booted slapd's debug listener
	// exactly as an operator would from -debugaddr.
	ProfileDir string
	// Seed feeds every generated frame.
	Seed uint64
	// Log receives one line per scenario; nil discards.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if len(c.GoMaxProcs) == 0 {
		c.GoMaxProcs = []int{1, 2, 4}
		if n := runtime.NumCPU(); n > 4 {
			c.GoMaxProcs = append(c.GoMaxProcs, n)
		}
	}
	if c.Count <= 0 {
		c.Count = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// scale picks full when the run is full-size, short in smoke mode.
func (c Config) scale(full, short int) int {
	if c.Short {
		return short
	}
	return full
}

// Scenario is one named benchmark: a protocol plus the canonical
// metrics it emits.
type Scenario struct {
	// Name is the scenario's invocation name and the first segment of
	// every metric it emits (the "cost" scenario also emits the
	// derived engine/ ratio).
	Name string
	// Kind is "service" (boots a slapd and drives it over HTTP) or
	// "core" (drives the engines in process, sweeping GOMAXPROCS).
	Kind string
	// Desc is the one-line inventory entry.
	Desc string
	run  func(cfg Config) ([]benchfmt.Result, error)
}

// Scenarios returns the scenario table in presentation order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "steady", Kind: "service", Desc: "steady-state closed loop: mixed 64-256px frames, raw+png, concurrency 4", run: runSteady},
		{Name: "burst", Kind: "service", Desc: "burst: concurrency 4x the workers against a short queue, retries absorbing 429s", run: runBurst},
		{Name: "overload", Kind: "service", Desc: "overload: no-retry burst against workers=1 queue=1, measures shedding", run: runOverload},
		{Name: "strip", Kind: "service", Desc: "strip-mined frames (array-width 128) through slapd", run: runStrip},
		{Name: "batch", Kind: "service", Desc: "multipart batch endpoint throughput", run: runBatch},
		{Name: "cost", Kind: "service", Desc: "cost=host vs cost=bitserial on identical requests; emits the host/bitserial ratio", run: runCost},
		{Name: "engine", Kind: "core", Desc: "seq vs parallel simulator across GOMAXPROCS, plus host and bitserial points", run: runEngine},
		{Name: "stream", Kind: "core", Desc: "LabelStream/LabelerPool frame-streaming scaling across worker counts", run: runStream},
		{Name: "stripworkers", Kind: "core", Desc: "LabelLarge StripWorkers fan-out across worker counts", run: runStripWorkers},
		{Name: "reuse", Kind: "core", Desc: "reused Labeler steady-state throughput and allocations", run: runReuse},
		{Name: "linktune", Kind: "core", Desc: "parallel-engine BatchSize x LinkDepth sweep (tunes slap.DefaultLinkTuning)", run: runLinkTune},
	}
}

// Select returns the scenarios whose names match the anchored regular
// expression pattern ("" selects all), in table order.
func Select(pattern string) ([]Scenario, error) {
	all := Scenarios()
	if pattern == "" {
		return all, nil
	}
	re, err := regexp.Compile("^(" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("sweet: bad scenario pattern %q: %w", pattern, err)
	}
	var out []Scenario
	for _, s := range all {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		names := make([]string, len(all))
		for i, s := range all {
			names[i] = s.Name
		}
		sort.Strings(names)
		return nil, fmt.Errorf("sweet: pattern %q matches no scenario (have %v)", pattern, names)
	}
	return out, nil
}

// Run executes the selected scenarios and assembles the typed BENCH
// file, stamped with the runner's provenance.
func Run(pattern string, cfg Config) (*benchfmt.File, error) {
	cfg = cfg.withDefaults()
	scens, err := Select(pattern)
	if err != nil {
		return nil, err
	}
	rt := obs.Runtime()
	f := &benchfmt.File{
		Schema: benchfmt.SchemaV1,
		Date:   time.Now().UTC().Format("2006-01-02"),
		Runner: benchfmt.Runner{
			CPU: rt.CPU, Cores: rt.Cores, GOMAXPROCS: rt.GOMAXPROCS, GoVersion: rt.GoVersion,
		},
		Protocol: fmt.Sprintf("cmd/slapsweet: in-process slapd on a TCP listener, closed-loop client; core scenarios swept at GOMAXPROCS %v with %d samples per point; short=%v",
			cfg.GoMaxProcs, cfg.Count, cfg.Short),
	}
	for _, s := range scens {
		t0 := time.Now()
		fmt.Fprintf(cfg.Log, "sweet: running %s (%s) — %s\n", s.Name, s.Kind, s.Desc)
		results, err := s.run(cfg)
		if err != nil {
			return nil, fmt.Errorf("sweet: scenario %s: %w", s.Name, err)
		}
		f.Results = append(f.Results, results...)
		fmt.Fprintf(cfg.Log, "sweet: %s done in %.1fs (%d metrics)\n", s.Name, time.Since(t0).Seconds(), len(results))
	}
	f.Sort()
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("sweet: assembled BENCH file invalid: %w", err)
	}
	return f, nil
}
