// Package lowerbound builds the Theorem 5 experiment: on a SLAP whose
// adjacent PEs may exchange only one bit per time step, component
// labeling needs Ω(n lg n) time.
//
// The paper's argument: consider images whose odd rows are empty and
// whose even rows each carry one run of 1s ending at the right edge. The
// canonical label of the run in row y is its leftmost position — so the
// rightmost PE's output encodes every run start. With n choices per even
// row there are n^(n/2) distinguishable images, i.e. (n/2)·lg n bits,
// but the rightmost PE starts with only its own n pixels and gains at
// most one bit per step over its single incoming link.
package lowerbound

import (
	"fmt"
	"math"

	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/slap"
)

// EntropyBits returns lg of the number of distinguishable labelings of
// the even-row-runs family: (⌈n/2⌉)·lg n.
func EntropyBits(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64((n+1)/2) * math.Log2(float64(n))
}

// MinSteps returns the information-theoretic minimum number of time
// steps for the rightmost PE of a 1-bit SLAP: it must acquire
// EntropyBits(n) bits while starting with the n bits of its own column
// and receiving at most one new bit per step.
func MinSteps(n int) int64 {
	b := EntropyBits(n) - float64(n)
	if b < 0 {
		return 0
	}
	return int64(math.Ceil(b))
}

// Datapoint is one measured size of the lower-bound experiment.
type Datapoint struct {
	N int
	// EntropyBits is the output entropy of the family.
	EntropyBits float64
	// BoundSteps is the Ω(n lg n) information-theoretic minimum.
	BoundSteps int64
	// BitSteps is Algorithm CC's measured makespan on the 1-bit SLAP.
	BitSteps int64
	// WordSteps is the measured makespan on the standard word SLAP.
	WordSteps int64
}

// RatioToBound returns BitSteps / BoundSteps (how far the algorithm is
// from the information-theoretic floor), or 0 when the bound is 0.
func (d Datapoint) RatioToBound() float64 {
	if d.BoundSteps == 0 {
		return 0
	}
	return float64(d.BitSteps) / float64(d.BoundSteps)
}

// Measure runs Algorithm CC on a random member of the even-row-runs
// family under both the bit-serial and the word cost model and verifies
// the two runs agree on the labeling.
func Measure(n int, seed uint64, opt core.Options) (Datapoint, error) {
	img := bitmap.RandomEvenRowRuns(n, seed)
	d := Datapoint{N: n, EntropyBits: EntropyBits(n), BoundSteps: MinSteps(n)}

	wordOpt := opt
	wordOpt.Cost = slap.Unit()
	wres, err := core.Label(img, wordOpt)
	if err != nil {
		return d, fmt.Errorf("lowerbound: word model: %w", err)
	}
	d.WordSteps = wres.Metrics.Time

	bitOpt := opt
	bitOpt.Cost = slap.BitSerial(slap.WordBitsFor(n))
	bres, err := core.Label(img, bitOpt)
	if err != nil {
		return d, fmt.Errorf("lowerbound: bit model: %w", err)
	}
	d.BitSteps = bres.Metrics.Time

	if !wres.Labels.Equal(bres.Labels) {
		return d, fmt.Errorf("lowerbound: cost model changed the labeling at n=%d", n)
	}
	return d, nil
}
