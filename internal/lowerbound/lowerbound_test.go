package lowerbound

import (
	"math"
	"testing"

	"slapcc/internal/core"
)

func TestEntropyBits(t *testing.T) {
	if EntropyBits(1) != 0 {
		t.Fatal("n=1 has no entropy")
	}
	// n=16: 8 rows × lg 16 = 32 bits.
	if got := EntropyBits(16); math.Abs(got-32) > 1e-9 {
		t.Fatalf("EntropyBits(16): want 32, got %g", got)
	}
	// Superlinear growth: entropy/n should increase with n.
	if EntropyBits(1024)/1024 <= EntropyBits(64)/64 {
		t.Fatal("entropy per PE must grow with n (that's the whole point)")
	}
}

func TestMinSteps(t *testing.T) {
	if MinSteps(2) != 0 {
		t.Fatalf("tiny n should have a vacuous bound, got %d", MinSteps(2))
	}
	// n=1024: 512·10 - 1024 = 4096.
	if got := MinSteps(1024); got != 4096 {
		t.Fatalf("MinSteps(1024): want 4096, got %d", got)
	}
}

func TestMeasureRespectsBound(t *testing.T) {
	for _, n := range []int{32, 64, 128} {
		d, err := Measure(n, 42, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d.BitSteps <= d.WordSteps {
			t.Fatalf("n=%d: bit-serial must cost more than word links (%d vs %d)",
				n, d.BitSteps, d.WordSteps)
		}
		if d.BitSteps < d.BoundSteps {
			t.Fatalf("n=%d: measured %d beats the information-theoretic bound %d — impossible",
				n, d.BitSteps, d.BoundSteps)
		}
		if d.BoundSteps > 0 && d.RatioToBound() <= 0 {
			t.Fatalf("n=%d: ratio should be positive, got %g", n, d.RatioToBound())
		}
	}
}

func TestMeasuredGrowthSuperlinear(t *testing.T) {
	// On the 1-bit SLAP the per-PE cost must grow with n (Θ(n lg n)
	// total): T/n at n=256 should clearly exceed T/n at n=32.
	d32, err := Measure(32, 7, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d256, err := Measure(256, 7, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r32 := float64(d32.BitSteps) / 32
	r256 := float64(d256.BitSteps) / 256
	if r256 <= r32 {
		t.Fatalf("bit-SLAP time per PE must grow: %g at n=32, %g at n=256", r32, r256)
	}
}

func TestRatioToBoundZeroGuard(t *testing.T) {
	d := Datapoint{BitSteps: 100, BoundSteps: 0}
	if d.RatioToBound() != 0 {
		t.Fatal("zero bound should yield ratio 0")
	}
}
