// Package baseline implements the prior SLAP component-labeling
// approaches the paper compares against (§1): the Θ(n lg n) block-merge
// strategy of the earlier SLAP algorithms [Alnuweiri–Prasanna 1991;
// Helman–JáJá 1995], and the naive iterative label-propagation scheme
// whose failure mode the paper's Figure 3(b) illustrates.
//
// Both produce the same canonical labeling as Algorithm CC (least
// column-major position per component), so outputs are directly
// comparable, and both charge their simulated time to a slap.Machine so
// makespans are comparable too.
//
// Unlike internal/core, which runs message by message on the simulator,
// these baselines are *semantically* computed with global data structures
// and *cost-charged* per round according to their communication and work
// structure (documented per phase below). That level of fidelity is
// enough for the experiments, which only use the baselines' asymptotic
// shape (Θ(n lg n), Θ(n²)) — not their constants.
package baseline

import (
	"fmt"

	"slapcc/internal/bitmap"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// Result is the output of a baseline labeler.
type Result struct {
	Labels  *bitmap.LabelMap
	Metrics slap.Metrics
	// Rounds is the number of global rounds executed.
	Rounds int
}

// BlockMerge labels components by divide and conquer over column blocks:
// every PE first labels its own column's runs; then, for lg n rounds,
// adjacent blocks of 2^r columns merge pairwise. A merge reads the two
// boundary columns (n words across the boundary link), resolves label
// equivalences with union–find, and rewrites the labels inside the merged
// block (every PE scans its column; the equivalence map is pipelined
// through the block). Each round therefore costs Θ(n + block width),
// and the total is Θ(n lg n) — the bound the paper improves on.
func BlockMerge(img *bitmap.Bitmap) (*Result, error) {
	w, h := img.W(), img.H()
	if w > 0 && h > 0 && 2*int64(w)*int64(h) > 1<<31-1 {
		return nil, fmt.Errorf("baseline: image %dx%d exceeds the int32 label space", w, h)
	}
	m := slap.NewMachine(w, slap.Unit())
	m.ChargeGlobal("input", int64(h))
	lm := bitmap.NewLabelMap(w, h)
	res := &Result{Labels: lm}
	if w == 0 || h == 0 {
		res.Metrics = m.Metrics()
		return res, nil
	}

	// Round 0: label vertical runs per column; cost Θ(h) per PE.
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if !img.Get(x, y) {
				continue
			}
			if y > 0 && img.Get(x, y-1) {
				lm.Set(x, y, lm.Get(x, y-1))
			} else {
				lm.Set(x, y, int32(x*h+y))
			}
		}
	}
	m.ChargeGlobal("blockmerge:init", int64(h))

	// Merge rounds.
	for width := 1; width < w; width *= 2 {
		res.Rounds++
		maxEquivs := 0
		for left := 0; left+width < w; left += 2 * width {
			boundary := left + width // first column of the right block
			equivs := mergeBoundary(img, lm, boundary, left, minInt(left+2*width, w))
			if equivs > maxEquivs {
				maxEquivs = equivs
			}
		}
		// Per-round charge: boundary exchange (h words over one link) +
		// pipelined relabel-map broadcast through the block (width +
		// 2·entries steps) + every PE rescanning its column (h).
		m.ChargeGlobal(fmt.Sprintf("blockmerge:round%d", res.Rounds),
			int64(h)+int64(width)+2*int64(maxEquivs)+int64(h))
	}
	res.Metrics = m.Metrics()
	return res, nil
}

// mergeBoundary resolves equivalences across the boundary between columns
// boundary-1 and boundary, rewriting labels in columns [lo, hi). It
// returns the number of boundary equivalence pairs.
func mergeBoundary(img *bitmap.Bitmap, lm *bitmap.LabelMap, boundary, lo, hi int) int {
	h := img.H()
	type pair struct{ a, b int32 }
	var pairs []pair
	for y := 0; y < h; y++ {
		if img.Get(boundary-1, y) && img.Get(boundary, y) {
			pairs = append(pairs, pair{lm.Get(boundary-1, y), lm.Get(boundary, y)})
		}
	}
	if len(pairs) == 0 {
		return 0
	}
	// Union the label pairs over a dense index.
	index := map[int32]int{}
	var values []int32
	id := func(v int32) int {
		if i, ok := index[v]; ok {
			return i
		}
		i := len(values)
		index[v] = i
		values = append(values, v)
		return i
	}
	for _, p := range pairs {
		id(p.a)
		id(p.b)
	}
	uf := unionfind.New(len(values))
	for _, p := range pairs {
		uf.Union(index[p.a], index[p.b])
	}
	remap := map[int32]int32{}
	classMin := map[int]int32{}
	for i, v := range values {
		r := uf.Find(i)
		if cur, ok := classMin[r]; !ok || v < cur {
			classMin[r] = v
		}
	}
	for i, v := range values {
		if mv := classMin[uf.Find(i)]; mv != v {
			remap[v] = mv
		}
	}
	if len(remap) == 0 {
		return len(pairs)
	}
	for x := lo; x < hi; x++ {
		for y := 0; y < h; y++ {
			if v := lm.Get(x, y); v != bitmap.Background {
				if nv, ok := remap[v]; ok {
					lm.Set(x, y, nv)
				}
			}
		}
	}
	return len(pairs)
}

// NaivePropagation is the scheme the paper's Figure 3(b) defeats:
// iteratively, every PE refreshes its column's run labels from its own
// column and both neighbor columns (minimum label wins) until nothing
// changes anywhere. Each round costs Θ(h) per PE for the neighbor
// exchanges (h words each way) plus the column rescan. Labels cross one
// column boundary per round, so the round count is the eccentricity of
// the image's run graph measured in column crossings: serpentine images
// force a label to sweep the full width once per snake row — Θ(n²)
// rounds and Θ(n³) total time, versus near-Θ(n) for Algorithm CC.
// maxRounds (0 = w·h/2 + w + 4, enough for any image) guards against
// accidental non-convergence.
func NaivePropagation(img *bitmap.Bitmap, maxRounds int) (*Result, error) {
	w, h := img.W(), img.H()
	if w > 0 && h > 0 && 2*int64(w)*int64(h) > 1<<31-1 {
		return nil, fmt.Errorf("baseline: image %dx%d exceeds the int32 label space", w, h)
	}
	if maxRounds <= 0 {
		maxRounds = w*h/2 + w + 4
	}
	m := slap.NewMachine(w, slap.Unit())
	m.ChargeGlobal("input", int64(h))
	lm := bitmap.NewLabelMap(w, h)
	res := &Result{Labels: lm}
	if w == 0 || h == 0 {
		res.Metrics = m.Metrics()
		return res, nil
	}
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if img.Get(x, y) {
				lm.Set(x, y, int32(x*h+y))
			}
		}
	}
	for {
		changed := false
		// One synchronized round, PE by PE against the previous state.
		prev := cloneLabels(lm)
		for x := 0; x < w; x++ {
			// Per run (maximal vertical segment), the new label is the
			// minimum of the run's own labels and all adjacent labels in
			// the two neighbor columns.
			for y0 := 0; y0 < h; {
				if !img.Get(x, y0) {
					y0++
					continue
				}
				y1 := y0
				for y1+1 < h && img.Get(x, y1+1) {
					y1++
				}
				best := prev.Get(x, y0)
				for y := y0; y <= y1; y++ {
					best = min32(best, prev.Get(x, y))
					if x > 0 && img.Get(x-1, y) {
						best = min32(best, prev.Get(x-1, y))
					}
					if x+1 < w && img.Get(x+1, y) {
						best = min32(best, prev.Get(x+1, y))
					}
				}
				for y := y0; y <= y1; y++ {
					if lm.Get(x, y) != best {
						lm.Set(x, y, best)
						changed = true
					}
				}
				y0 = y1 + 1
			}
		}
		res.Rounds++
		// Round charge: exchange both boundary columns (2·h words) plus
		// the column rescan (h).
		m.ChargeGlobal(fmt.Sprintf("naive:round%d", res.Rounds), 3*int64(h))
		if !changed {
			break
		}
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("baseline: naive propagation did not converge in %d rounds", maxRounds)
		}
	}
	res.Metrics = m.Metrics()
	return res, nil
}

func cloneLabels(lm *bitmap.LabelMap) *bitmap.LabelMap {
	c := bitmap.NewLabelMap(lm.W(), lm.H())
	for x := 0; x < lm.W(); x++ {
		for y := 0; y < lm.H(); y++ {
			c.Set(x, y, lm.Get(x, y))
		}
	}
	return c
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
