package baseline

import (
	"testing"
	"testing/quick"

	"slapcc/internal/bitmap"
	"slapcc/internal/seqcc"
)

func TestBlockMergeCorrectOnFamilies(t *testing.T) {
	for _, fam := range bitmap.Families() {
		for _, n := range []int{1, 2, 3, 8, 17, 32} {
			img := fam.Generate(n)
			res, err := BlockMerge(img)
			if err != nil {
				t.Fatalf("%s n=%d: %v", fam.Name, n, err)
			}
			if err := seqcc.Check(img, res.Labels); err != nil {
				t.Fatalf("%s n=%d: %v", fam.Name, n, err)
			}
		}
	}
}

func TestNaivePropagationCorrectOnFamilies(t *testing.T) {
	for _, fam := range bitmap.Families() {
		for _, n := range []int{1, 2, 3, 8, 17, 32} {
			img := fam.Generate(n)
			res, err := NaivePropagation(img, 0)
			if err != nil {
				t.Fatalf("%s n=%d: %v", fam.Name, n, err)
			}
			if err := seqcc.Check(img, res.Labels); err != nil {
				t.Fatalf("%s n=%d: %v", fam.Name, n, err)
			}
		}
	}
}

func TestDegenerateImages(t *testing.T) {
	for _, img := range []*bitmap.Bitmap{bitmap.New(0, 0), bitmap.Empty(3), bitmap.Full(1)} {
		if _, err := BlockMerge(img); err != nil {
			t.Fatal(err)
		}
		if _, err := NaivePropagation(img, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBlockMergeRoundCount(t *testing.T) {
	res, err := BlockMerge(bitmap.Random(64, 0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 6 { // lg 64
		t.Fatalf("want 6 merge rounds for n=64, got %d", res.Rounds)
	}
}

func TestBlockMergeIsNLogN(t *testing.T) {
	// Makespan on a fixed-density image should grow like n lg n: the
	// ratio T/(n lg n) stays within a narrow band while T/n grows.
	var ratios []float64
	for _, n := range []int{64, 128, 256, 512} {
		img := bitmap.Random(n, 0.5, 7)
		res, err := BlockMerge(img)
		if err != nil {
			t.Fatal(err)
		}
		lg := 0
		for v := n; v > 1; v >>= 1 {
			lg++
		}
		ratios = append(ratios, float64(res.Metrics.Time)/(float64(n)*float64(lg)))
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > ratios[0]*2 || ratios[i] < ratios[0]/2 {
			t.Fatalf("T/(n lg n) drifts: %v", ratios)
		}
	}
}

func TestNaivePropagationDegeneratesOnSerpentine(t *testing.T) {
	// The Figure 3(b) story: a label crosses one column boundary per
	// round and must sweep the full width once per snake row, so rounds
	// grow quadratically with n (and total time cubically).
	r32, err := NaivePropagation(bitmap.HSerpentine(32), 0)
	if err != nil {
		t.Fatal(err)
	}
	r64, err := NaivePropagation(bitmap.HSerpentine(64), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r64.Rounds < 3*r32.Rounds {
		t.Fatalf("rounds should roughly quadruple with n: %d -> %d", r32.Rounds, r64.Rounds)
	}
	if r64.Rounds < 64 {
		t.Fatalf("serpentine should force ≫ n rounds, got %d", r64.Rounds)
	}
}

func TestNaivePropagationFastOnEasyImages(t *testing.T) {
	res, err := NaivePropagation(bitmap.VStripes(64, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 3 {
		t.Fatalf("vertical stripes should converge immediately, took %d rounds", res.Rounds)
	}
}

func TestNaivePropagationRoundLimit(t *testing.T) {
	if _, err := NaivePropagation(bitmap.HSerpentine(64), 3); err == nil {
		t.Fatal("want convergence failure with a tiny round budget")
	}
}

func TestBaselinesAgreeQuick(t *testing.T) {
	f := func(seed uint32, np, dp uint8) bool {
		n := int(np%24) + 1
		img := bitmap.Random(n, float64(dp%11)/10, uint64(seed))
		want := seqcc.BFS(img)
		bm, err := BlockMerge(img)
		if err != nil || !bm.Labels.Equal(want) {
			return false
		}
		np2, err := NaivePropagation(img, 0)
		if err != nil || !np2.Labels.Equal(want) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
