package bitmap

import (
	"strings"
	"testing"
)

func TestLabelMapBasics(t *testing.T) {
	lm := NewLabelMap(3, 2)
	if lm.W() != 3 || lm.H() != 2 {
		t.Fatalf("want 3x2, got %dx%d", lm.W(), lm.H())
	}
	for x := 0; x < 3; x++ {
		for y := 0; y < 2; y++ {
			if lm.Get(x, y) != Background {
				t.Fatal("fresh map should be background")
			}
		}
	}
	lm.Set(2, 1, 7)
	if lm.Get(2, 1) != 7 {
		t.Fatal("Set/Get broken")
	}
}

func TestLabelMapBoundsPanic(t *testing.T) {
	lm := NewLabelMap(2, 2)
	for name, fn := range map[string]func(){
		"get": func() { lm.Get(2, 0) },
		"set": func() { lm.Set(0, -1, 1) },
		"new": func() { NewLabelMap(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLabelMapEqualAndCounts(t *testing.T) {
	a := NewLabelMap(2, 2)
	b := NewLabelMap(2, 2)
	if !a.Equal(b) {
		t.Fatal("fresh maps should be equal")
	}
	a.Set(0, 0, 5)
	a.Set(1, 1, 5)
	a.Set(0, 1, 9)
	if a.Equal(b) {
		t.Fatal("maps should differ")
	}
	if a.Equal(NewLabelMap(2, 3)) {
		t.Fatal("different dimensions should not be equal")
	}
	if a.ComponentCount() != 2 {
		t.Fatalf("want 2 labels, got %d", a.ComponentCount())
	}
	sizes := a.ComponentSizes()
	if sizes[5] != 2 || sizes[9] != 1 {
		t.Fatalf("unexpected sizes %v", sizes)
	}
}

func TestLabelMapForeground(t *testing.T) {
	lm := NewLabelMap(2, 2)
	lm.Set(1, 0, 3)
	fg := lm.Foreground()
	if fg.CountOnes() != 1 || !fg.Get(1, 0) {
		t.Fatalf("foreground wrong:\n%s", fg)
	}
}

func TestLabelMapString(t *testing.T) {
	lm := NewLabelMap(3, 1)
	lm.Set(0, 0, 10)
	lm.Set(2, 0, 10)
	s := lm.String()
	if s != "a.a\n" {
		t.Fatalf("want %q, got %q", "a.a\n", s)
	}
	// Distinct labels get distinct letters.
	lm.Set(1, 0, 4)
	if got := lm.String(); got != "aba\n" {
		t.Fatalf("want %q, got %q", "aba\n", got)
	}
}

func TestConnectivity(t *testing.T) {
	if !Conn4.Valid() || !Conn8.Valid() || Connectivity(5).Valid() {
		t.Fatal("Valid broken")
	}
	if len(Conn4.Neighbors()) != 4 || len(Conn8.Neighbors()) != 8 {
		t.Fatal("neighbor counts wrong")
	}
	if !strings.Contains(Conn4.String(), "4") || !strings.Contains(Conn8.String(), "8") {
		t.Fatal("String broken")
	}
	if Connectivity(0).String() != "invalid-connectivity" {
		t.Fatal("invalid String broken")
	}
	// Conn8's neighbors must be a superset of Conn4's.
	has := map[[2]int]bool{}
	for _, d := range Conn8.Neighbors() {
		has[d] = true
	}
	for _, d := range Conn4.Neighbors() {
		if !has[d] {
			t.Fatalf("Conn8 missing %v", d)
		}
	}
}
