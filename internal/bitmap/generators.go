package bitmap

import "fmt"

// RNG is a small deterministic pseudo-random generator (splitmix64). The
// experiments must be reproducible across Go releases, so we do not depend
// on math/rand's generator or shuffling order.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform in [0, n). It panics when n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("bitmap: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value uniform in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Empty returns an n×n all-zero image.
func Empty(n int) *Bitmap { return Square(n) }

// Full returns an n×n all-one image: a single component.
func Full(n int) *Bitmap {
	b := Square(n)
	b.Fill(true)
	return b
}

// SinglePixel returns an n×n image with exactly one 1-pixel at (x, y).
func SinglePixel(n, x, y int) *Bitmap {
	b := Square(n)
	b.Set(x, y, true)
	return b
}

// Random returns an n×n image where each pixel is 1 independently with
// probability density.
func Random(n int, density float64, seed uint64) *Bitmap {
	b := Square(n)
	rng := NewRNG(seed)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if rng.Float64() < density {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

// RandomRect is Random over an arbitrary w×h rectangle, for the
// non-square sweeps (the strip tiler makes w ≠ h first-class: the last
// strip of a tiled run is usually narrower than the array).
func RandomRect(w, h int, density float64, seed uint64) *Bitmap {
	b := New(w, h)
	rng := NewRNG(seed)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if rng.Float64() < density {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

// Checker returns the checkerboard image: every 1-pixel is isolated under
// 4-connectivity, so the image has ⌈n²/2⌉ components — the maximum
// possible. This maximizes label traffic and set counts.
func Checker(n int) *Bitmap {
	b := Square(n)
	for y := 0; y < n; y++ {
		for x := (y % 2); x < n; x += 2 {
			b.Set(x, y, true)
		}
	}
	return b
}

// HStripes returns horizontal full-width stripes of 1s with the given
// period (period ≥ 2: one 1-row every period rows). Each stripe is one
// component that spans every column.
func HStripes(n, period int) *Bitmap {
	if period < 1 {
		period = 1
	}
	b := Square(n)
	for y := 0; y < n; y += period {
		for x := 0; x < n; x++ {
			b.Set(x, y, true)
		}
	}
	return b
}

// VStripes returns vertical full-height stripes with the given period.
// Every component lives entirely inside one PE; no union ever crosses a
// link, the best case for the left/right passes.
func VStripes(n, period int) *Bitmap {
	if period < 1 {
		period = 1
	}
	b := Square(n)
	for x := 0; x < n; x += period {
		for y := 0; y < n; y++ {
			b.Set(x, y, true)
		}
	}
	return b
}

// EvenRowRuns builds the Theorem 5 lower-bound family: only even rows hold
// 1-pixels, and even row y carries the suffix run [starts[y/2], n-1]. The
// component containing the rightmost pixel of row y is labeled by the
// column-major position starts[y/2]·n + y, so the rightmost processor's
// output encodes every run start: there are n^(n/2) distinguishable
// images, forcing Ω(n lg n) bits across the last link of a 1-bit SLAP.
// starts must have length ⌈n/2⌉ with entries in [0, n-1].
func EvenRowRuns(n int, starts []int) *Bitmap {
	if want := (n + 1) / 2; len(starts) != want {
		panic(fmt.Sprintf("bitmap: EvenRowRuns needs %d starts for n=%d, got %d", want, n, len(starts)))
	}
	b := Square(n)
	for i, s := range starts {
		y := 2 * i
		if s < 0 || s >= n {
			panic(fmt.Sprintf("bitmap: run start %d out of range [0,%d)", s, n))
		}
		for x := s; x < n; x++ {
			b.Set(x, y, true)
		}
	}
	return b
}

// RandomEvenRowRuns draws a uniform member of the EvenRowRuns family.
func RandomEvenRowRuns(n int, seed uint64) *Bitmap {
	rng := NewRNG(seed)
	starts := make([]int, (n+1)/2)
	for i := range starts {
		starts[i] = rng.Intn(n)
	}
	return EvenRowRuns(n, starts)
}

// HSerpentine returns a single snake component: every even row is full and
// odd rows carry a connector pixel on alternating ends. A label entering
// at the top-left must logically traverse Θ(n) rows; with naive
// top-to-bottom label passing this pattern (the spirit of the paper's
// Figure 3(b), tiled) forces Θ(n²) total work, while Algorithm CC stays
// near-linear.
func HSerpentine(n int) *Bitmap {
	b := Square(n)
	for y := 0; y < n; y += 2 {
		for x := 0; x < n; x++ {
			b.Set(x, y, true)
		}
	}
	for y := 1; y < n; y += 2 {
		if (y/2)%2 == 0 {
			b.Set(n-1, y, true)
		} else {
			b.Set(0, y, true)
		}
	}
	return b
}

// VSerpentine is HSerpentine rotated a quarter turn: full columns joined
// alternately at top and bottom. Each PE holds one solid run, and unions
// trickle across the array one column at a time — the longest possible
// dependence chain for the left pass with minimal per-column work.
func VSerpentine(n int) *Bitmap {
	b := Square(n)
	for x := 0; x < n; x += 2 {
		for y := 0; y < n; y++ {
			b.Set(x, y, true)
		}
	}
	for x := 1; x < n; x += 2 {
		if (x/2)%2 == 0 {
			b.Set(x, n-1, true)
		} else {
			b.Set(x, 0, true)
		}
	}
	return b
}

// BinaryMerge builds the union-tree adversary. Every even row is a full
// horizontal "lane" (n/2 lanes, each alive in every column). At level
// l = 1, 2, … a dedicated bridge column carries vertical runs that merge
// the lanes in blocks of 2^l, so the lanes union in a perfectly balanced
// binary tree: the worst case for linked-forest depth (Θ(lg n)) and the
// generator of the paper's Θ(n lg n) concern for the Union-Find-Pass.
func BinaryMerge(n int) *Bitmap {
	b := Square(n)
	lanes := n / 2
	if lanes == 0 {
		if n > 0 {
			b.Set(0, 0, true)
		}
		return b
	}
	for lane := 0; lane < lanes; lane++ {
		for x := 0; x < n; x++ {
			b.Set(x, 2*lane, true)
		}
	}
	levels := 0
	for 1<<uint(levels) < lanes {
		levels++
	}
	if levels == 0 {
		return b
	}
	colStep := (n - 2) / levels
	if colStep < 1 {
		colStep = 1
	}
	for l := 1; l <= levels; l++ {
		x := 1 + (l-1)*colStep
		if x >= n {
			x = n - 1
		}
		span := 1 << uint(l)
		for base := 0; base < lanes; base += span {
			// Vertical run joining lane base+span/2-1 to lane base+span/2;
			// partial tail blocks still merge with their left half.
			mid := base + span/2
			if mid >= lanes {
				continue
			}
			for y := 2 * (mid - 1); y <= 2*mid; y++ {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

// NestedC returns concentric C shapes (frames open on the right), gap
// pixels apart. Distinct Cs never touch, so the image has one component
// per C; each PE sees many separate segments whose relationships resolve
// only far to the right — the difficulty illustrated by the paper's
// Figure 3(a).
func NestedC(n, gap int) *Bitmap {
	if gap < 2 {
		gap = 2
	}
	b := Square(n)
	for k := 0; k*gap*2 < n/2; k++ {
		d := k * gap
		top, bot, left := d, n-1-d, d
		if top >= bot || left >= n-1-d {
			break
		}
		right := n - 1 - d
		for x := left; x <= right; x++ {
			b.Set(x, top, true)
			b.Set(x, bot, true)
		}
		for y := top; y <= bot; y++ {
			b.Set(left, y, true)
		}
	}
	return b
}

// NestedFrames returns concentric closed square rings, gap pixels apart;
// one component per ring.
func NestedFrames(n, gap int) *Bitmap {
	if gap < 2 {
		gap = 2
	}
	b := Square(n)
	for d := 0; 2*d < n-1; d += gap {
		lo, hi := d, n-1-d
		if lo > hi {
			break
		}
		for x := lo; x <= hi; x++ {
			b.Set(x, lo, true)
			b.Set(x, hi, true)
		}
		for y := lo; y <= hi; y++ {
			b.Set(lo, y, true)
			b.Set(hi, y, true)
		}
	}
	return b
}

// Spiral returns a single rectangular spiral arm (arms two apart): one
// long, winding component touching every PE many times.
func Spiral(n int) *Bitmap {
	b := Square(n)
	if n == 0 {
		return b
	}
	x, y := 0, 0
	b.Set(0, 0, true)
	left, right, top, bottom := 0, n-1, 0, n-1
	for {
		for ; x < right; x++ {
			b.Set(x+1, y, true)
		}
		top += 2
		for ; y < bottom; y++ {
			b.Set(x, y+1, true)
		}
		right -= 2
		for ; x > left; x-- {
			b.Set(x-1, y, true)
		}
		bottom -= 2
		for ; y > top; y-- {
			b.Set(x, y-1, true)
		}
		left += 2
		if left > right || top > bottom {
			return b
		}
	}
}

// Maze carves a random spanning tree over a coarse cell grid (cells are
// 2×2 pixel blocks separated by walls), yielding a single component whose
// corridors wander over the whole image.
func Maze(n int, seed uint64) *Bitmap {
	b := Square(n)
	cells := (n - 1) / 2
	if cells <= 0 {
		if n > 0 {
			b.Set(0, 0, true)
		}
		return b
	}
	rng := NewRNG(seed)
	visited := make([]bool, cells*cells)
	type pt struct{ cx, cy int }
	stack := []pt{{0, 0}}
	visited[0] = true
	b.Set(0, 0, true)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		// Gather unvisited neighbors.
		var cand []pt
		for _, d := range [4]pt{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := cur.cx+d.cx, cur.cy+d.cy
			if nx >= 0 && nx < cells && ny >= 0 && ny < cells && !visited[ny*cells+nx] {
				cand = append(cand, pt{nx, ny})
			}
		}
		if len(cand) == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		next := cand[rng.Intn(len(cand))]
		visited[next.cy*cells+next.cx] = true
		// Carve the wall between cur and next and the next cell itself.
		wx, wy := cur.cx*2+(next.cx-cur.cx), cur.cy*2+(next.cy-cur.cy)
		b.Set(wx, wy, true)
		b.Set(next.cx*2, next.cy*2, true)
		stack = append(stack, next)
	}
	return b
}

// Blobs scatters k random-walk blobs of the given number of steps each.
func Blobs(n, k, steps int, seed uint64) *Bitmap {
	b := Square(n)
	if n == 0 {
		return b
	}
	rng := NewRNG(seed)
	for i := 0; i < k; i++ {
		x, y := rng.Intn(n), rng.Intn(n)
		b.Set(x, y, true)
		for s := 0; s < steps; s++ {
			switch rng.Intn(4) {
			case 0:
				if x+1 < n {
					x++
				}
			case 1:
				if x > 0 {
					x--
				}
			case 2:
				if y+1 < n {
					y++
				}
			case 3:
				if y > 0 {
					y--
				}
			}
			b.Set(x, y, true)
		}
	}
	return b
}

// Diagonal returns a 2-pixel-wide staircase along the main diagonal: a
// single component that crosses every PE exactly once with minimal area.
func Diagonal(n int) *Bitmap {
	b := Square(n)
	for i := 0; i < n; i++ {
		b.Set(i, i, true)
		if i+1 < n {
			b.Set(i, i+1, true)
		}
	}
	return b
}

// Fig3a reconstructs the texture of the paper's Figure 3(a): interleaved
// combs entering from the left and from the right, whose teeth overlap so
// that each processor must track how components seen in earlier columns
// interconnect. (The published figure is 12×16; this is the same texture
// at parametric size.)
func Fig3a(n int) *Bitmap {
	b := Square(n)
	if n < 4 {
		return Full(n)
	}
	// Left comb: spine at x=0, teeth on rows ≡ 0 (mod 4) reaching x=n-3.
	// Right comb: spine at x=n-1, teeth on rows ≡ 2 (mod 4) reaching x=2.
	// The two-pixel standoff keeps the combs disjoint (two interleaved
	// components) while every interior column sees alternating segments
	// of both.
	for y := 0; y < n; y++ {
		b.Set(0, y, true)
		b.Set(n-1, y, true)
	}
	for y := 0; y < n; y += 4 {
		for x := 0; x <= n-3; x++ {
			b.Set(x, y, true)
		}
	}
	for y := 2; y < n; y += 4 {
		for x := 2; x <= n-1; x++ {
			b.Set(x, y, true)
		}
	}
	return b
}

// Fig3b reconstructs the paper's Figure 3(b): a pattern that, repeated
// over and over, forces a naive top-to-bottom label-passing scheme to
// re-send labels Θ(n) times. It tiles short horizontal bars linked
// alternately on the left and right into vertical zigzag chains.
func Fig3b(n int) *Bitmap {
	b := Square(n)
	const tileW = 8
	for ty := 0; ty < n; ty += 2 {
		for tx := 0; tx < n; tx += tileW {
			w := tileW - 2
			if tx+w > n {
				w = n - tx
			}
			for x := tx; x < tx+w && x < n; x++ {
				b.Set(x, ty, true)
			}
			if ty+1 < n {
				// Connector alternates between the bar's left and right end.
				if (ty/2)%2 == 0 {
					if tx+w-1 < n && w > 0 {
						b.Set(tx+w-1, ty+1, true)
					}
				} else {
					b.Set(tx, ty+1, true)
				}
			}
		}
	}
	return b
}

// Cross returns a plus-shaped single component through the image center.
func Cross(n int) *Bitmap {
	b := Square(n)
	if n == 0 {
		return b
	}
	mid := n / 2
	for i := 0; i < n; i++ {
		b.Set(i, mid, true)
		b.Set(mid, i, true)
	}
	return b
}
