package bitmap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The SLR1 raw wire format: the densest self-describing serialization of
// a Bitmap, built for the labeling service's hot ingest path (no pixel
// re-parsing, no compression round-trip — a 1024×1024 frame is a 128 KiB
// body decoded with byte moves). The normative specification, decoder
// obligations, and a worked hex example live in docs/SLR1.md; this
// implementation is its reference.
//
//	offset  size          field
//	0       4             magic "SLR1"
//	4       4             width,  little-endian uint32
//	8       4             height, little-endian uint32
//	12      h·⌈w/8⌉       raster: rows top to bottom, each padded to a
//	                      whole byte; bit x&7 of byte x>>3 is pixel (x, y),
//	                      1 = foreground. Padding bits above w are zero.
const (
	rawMagic      = "SLR1"
	rawHeaderSize = 12
)

// RawSize returns the encoded SLR1 size in bytes of a w×h image.
func RawSize(w, h int) int { return rawHeaderSize + h*((w+7)/8) }

// WriteRaw writes the image in the SLR1 raw packed-bitset format.
func (b *Bitmap) WriteRaw(w io.Writer) error {
	rowBytes := (b.w + 7) / 8
	buf := make([]byte, rawHeaderSize+rowBytes)
	copy(buf, rawMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(b.w))
	binary.LittleEndian.PutUint32(buf[8:], uint32(b.h))
	if _, err := w.Write(buf[:rawHeaderSize]); err != nil {
		return err
	}
	row := buf[rawHeaderSize:]
	for y := 0; y < b.h; y++ {
		words := b.words[y*b.stride : (y+1)*b.stride]
		for k := 0; k < rowBytes; k++ {
			row[k] = byte(words[k>>3] >> (8 * uint(k&7)))
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// AppendRaw appends the SLR1 encoding of the image to dst and returns
// the extended slice; the allocation-free form of WriteRaw for callers
// assembling request bodies.
func (b *Bitmap) AppendRaw(dst []byte) []byte {
	rowBytes := (b.w + 7) / 8
	need := RawSize(b.w, b.h)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	var hdr [rawHeaderSize]byte
	copy(hdr[:], rawMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(b.w))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(b.h))
	dst = append(dst, hdr[:]...)
	for y := 0; y < b.h; y++ {
		words := b.words[y*b.stride : (y+1)*b.stride]
		for k := 0; k < rowBytes; k++ {
			dst = append(dst, byte(words[k>>3]>>(8*uint(k&7))))
		}
	}
	return dst
}

// RawDims reads the dimensions out of an SLR1 header without touching
// the raster, so admission layers can enforce size limits before any
// pixel storage is allocated. ok is false when data is not SLR1.
func RawDims(data []byte) (w, h int, ok bool) {
	if len(data) < rawHeaderSize || string(data[:4]) != rawMagic {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(data[4:])), int(binary.LittleEndian.Uint32(data[8:])), true
}

// ReadRaw reads an SLR1 raw packed-bitset image. Dimensions are
// validated against the same bound as ReadPBM before the raster is
// touched; padding bits in the raster are masked off, so a sloppy
// encoder cannot smuggle out-of-width pixels into the bitmap.
func ReadRaw(r io.Reader) (*Bitmap, error) {
	var hdr [rawHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("bitmap: reading SLR1 header: %w", err)
	}
	if string(hdr[:4]) != rawMagic {
		return nil, fmt.Errorf("bitmap: bad SLR1 magic %q", hdr[:4])
	}
	w := int(binary.LittleEndian.Uint32(hdr[4:]))
	h := int(binary.LittleEndian.Uint32(hdr[8:]))
	if w < 0 || h < 0 || w > 1<<20 || h > 1<<20 {
		return nil, fmt.Errorf("bitmap: unreasonable SLR1 dimensions %dx%d", w, h)
	}
	b := New(w, h)
	rowBytes := (w + 7) / 8
	row := make([]byte, rowBytes)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(r, row); err != nil {
			return nil, fmt.Errorf("bitmap: SLR1 raster truncated at row %d: %w", y, err)
		}
		words := b.words[y*b.stride : (y+1)*b.stride]
		for k := 0; k < rowBytes; k++ {
			words[k>>3] |= uint64(row[k]) << (8 * uint(k&7))
		}
	}
	b.clearPadding()
	return b, nil
}
