package bitmap

import "testing"

// TestStripViewMatchesSubImage: a Strip must read exactly like the
// copied SubImage of the same window, through both Get and ColumnWords,
// without copying any pixels.
func TestStripViewMatchesSubImage(t *testing.T) {
	img := RandomRect(131, 70, 0.5, 31337)
	for _, win := range [][2]int{{0, 131}, {0, 17}, {64, 64}, {63, 5}, {130, 1}, {40, 0}} {
		x0, w := win[0], win[1]
		s := img.StripView(x0, w)
		sub := img.SubImage(x0, 0, w, img.H())
		if s.W() != w || s.H() != img.H() {
			t.Fatalf("strip [%d,%d): dims %dx%d, want %dx%d", x0, x0+w, s.W(), s.H(), w, img.H())
		}
		for x := -1; x <= w; x++ {
			got := s.ColumnWords(x, nil)
			want := sub.ColumnWords(x, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("strip [%d,%d): column %d word %d: %x, want %x", x0, x0+w, x, i, got[i], want[i])
				}
			}
			for y := 0; y < img.H(); y++ {
				if s.Get(x, y) != sub.Get(x, y) {
					t.Fatalf("strip [%d,%d): Get(%d,%d) diverges from SubImage", x0, x0+w, x, y)
				}
			}
		}
	}
}

// TestStripViewSharesStorage: the view is zero-copy — writes to the
// parent are visible through it.
func TestStripViewSharesStorage(t *testing.T) {
	img := New(10, 4)
	s := img.StripView(3, 4)
	if s.Get(1, 2) {
		t.Fatal("fresh image has a set pixel")
	}
	img.Set(4, 2, true)
	if !s.Get(1, 2) {
		t.Fatal("write to the parent not visible through the strip view")
	}
	if s.Get(-1, 2) || s.Get(4, 2) {
		t.Fatal("out-of-strip columns must read as 0")
	}
}

// TestStripViewBounds: windows outside the image are programming errors.
func TestStripViewBounds(t *testing.T) {
	img := New(8, 8)
	for _, win := range [][2]int{{-1, 4}, {5, 4}, {0, 9}, {8, 1}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("StripView(%d, %d) did not panic", win[0], win[1])
				}
			}()
			img.StripView(win[0], win[1])
		}()
	}
}
