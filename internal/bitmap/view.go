package bitmap

import "fmt"

// Image is the read-only shape the simulator consumes: dimensions plus
// word-packed column extraction. *Bitmap implements it, and so does the
// zero-copy *Strip view, which is how the strip-mined tiler runs
// Algorithm CC over a window of a larger image without copying pixels.
type Image interface {
	// W returns the width (number of columns / SLAP processors).
	W() int
	// H returns the height (number of rows).
	H() int
	// ColumnWords extracts column x as a little-endian bitset into dst
	// (reused when its capacity suffices); out-of-range columns extract
	// as all zeros.
	ColumnWords(x int, dst []uint64) []uint64
}

var (
	_ Image = (*Bitmap)(nil)
	_ Image = (*Strip)(nil)
)

// Strip is a zero-copy vertical slice of a Bitmap: columns [x0, x0+w) at
// full height, re-addressed from column 0. The strip-mined tiler labels
// each strip on a fixed-width array through this view; no pixels are
// copied (column extraction delegates to the parent with the offset
// applied). A Strip observes later writes to the parent image.
type Strip struct {
	src *Bitmap
	x0  int
	w   int
}

// StripView returns the view of columns [x0, x0+w). It panics when the
// window is not fully inside the image: a silent clip would corrupt the
// tiler's seam arithmetic.
func (b *Bitmap) StripView(x0, w int) *Strip {
	if x0 < 0 || w < 0 || x0+w > b.w {
		panic(fmt.Sprintf("bitmap: strip [%d, %d) out of bounds for width %d", x0, x0+w, b.w))
	}
	return &Strip{src: b, x0: x0, w: w}
}

// W returns the strip's width.
func (s *Strip) W() int { return s.w }

// H returns the strip's height (the parent's).
func (s *Strip) H() int { return s.src.h }

// Get returns the pixel at strip coordinates (x, y); out-of-range
// coordinates read as 0, mirroring Bitmap.Get (columns outside the strip
// read as 0 even where the parent image has pixels).
func (s *Strip) Get(x, y int) bool {
	if x < 0 || x >= s.w {
		return false
	}
	return s.src.Get(s.x0+x, y)
}

// ColumnWords extracts strip column x (parent column x0+x) as a packed
// bitset, exactly as Bitmap.ColumnWords does; columns outside the strip
// extract as all zeros even where the parent image has pixels.
func (s *Strip) ColumnWords(x int, dst []uint64) []uint64 {
	if x < 0 || x >= s.w {
		return s.src.ColumnWords(-1, dst)
	}
	return s.src.ColumnWords(s.x0+x, dst)
}
