package bitmap

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse builds a bitmap from ASCII art: one row per line, with '#', '1',
// 'X' and 'x' read as 1-pixels and '.', '0', ' ' and '_' as 0-pixels.
// Lines may end with "\r\n" (the trailing '\r' is stripped, so art
// pasted from CRLF files parses and the '\r' never inflates the computed
// width). Lines may have differing lengths; the image width is the
// longest line and short lines are padded with 0s. Leading/trailing
// blank lines are ignored.
func Parse(art string) (*Bitmap, error) {
	lines := strings.Split(art, "\n")
	for i, ln := range lines {
		lines[i] = strings.TrimSuffix(ln, "\r")
	}
	for len(lines) > 0 && strings.TrimSpace(lines[0]) == "" {
		lines = lines[1:]
	}
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	w := 0
	for _, ln := range lines {
		if len(ln) > w {
			w = len(ln)
		}
	}
	b := New(w, len(lines))
	for y, ln := range lines {
		for x := 0; x < len(ln); x++ {
			switch ln[x] {
			case '#', '1', 'X', 'x':
				b.Set(x, y, true)
			case '.', '0', ' ', '_':
				// zero pixel
			default:
				return nil, fmt.Errorf("bitmap: unrecognized pixel %q at (%d, %d)", ln[x], x, y)
			}
		}
	}
	return b, nil
}

// MustParse is Parse that panics on error, for test fixtures.
func MustParse(art string) *Bitmap {
	b, err := Parse(art)
	if err != nil {
		panic(err)
	}
	return b
}

// WritePBM writes the image in plain PBM (P1) format. PBM's convention of
// 1 = black matches our 1 = foreground.
func (b *Bitmap) WritePBM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P1\n%d %d\n", b.w, b.h); err != nil {
		return err
	}
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			c := byte('0')
			if b.Get(x, y) {
				c = '1'
			}
			if err := bw.WriteByte(c); err != nil {
				return err
			}
			if x != b.w-1 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPBM reads a plain PBM (P1) image, tolerating arbitrary whitespace
// between tokens and '#' comment lines as the format allows.
func ReadPBM(r io.Reader) (*Bitmap, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	sc.Split(scanPBMTokens)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	magic, err := next()
	if err != nil {
		return nil, fmt.Errorf("bitmap: reading PBM magic: %w", err)
	}
	if magic != "P1" {
		return nil, fmt.Errorf("bitmap: unsupported PBM magic %q (want P1)", magic)
	}
	var w, h int
	tok, err := next()
	if err != nil {
		return nil, fmt.Errorf("bitmap: reading PBM width: %w", err)
	}
	if _, err := fmt.Sscanf(tok, "%d", &w); err != nil {
		return nil, fmt.Errorf("bitmap: bad PBM width %q", tok)
	}
	tok, err = next()
	if err != nil {
		return nil, fmt.Errorf("bitmap: reading PBM height: %w", err)
	}
	if _, err := fmt.Sscanf(tok, "%d", &h); err != nil {
		return nil, fmt.Errorf("bitmap: bad PBM height %q", tok)
	}
	if w < 0 || h < 0 || w > 1<<20 || h > 1<<20 {
		return nil, fmt.Errorf("bitmap: unreasonable PBM dimensions %dx%d", w, h)
	}
	b := New(w, h)
	// P1 allows raster digits to be packed without separators; consume
	// the raster digit by digit from whitespace-separated tokens.
	var cur string
	pos := 0
	nextDigit := func() (byte, error) {
		for pos >= len(cur) {
			tok, err := next()
			if err != nil {
				return 0, err
			}
			cur, pos = tok, 0
		}
		c := cur[pos]
		pos++
		return c, nil
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c, err := nextDigit()
			if err != nil {
				return nil, fmt.Errorf("bitmap: PBM truncated at pixel (%d, %d): %w", x, y, err)
			}
			switch c {
			case '1':
				b.Set(x, y, true)
			case '0':
				// zero pixel
			default:
				return nil, fmt.Errorf("bitmap: bad PBM pixel %q at (%d, %d)", c, x, y)
			}
		}
	}
	return b, nil
}

// scanPBMTokens is a bufio.SplitFunc yielding whitespace-separated tokens
// with '#'-to-end-of-line comments removed. Packed raster digits are NOT
// split here — the header tokens "10" or "11" would be indistinguishable
// from packed pixels; ReadPBM consumes raster tokens digit by digit
// instead.
func scanPBMTokens(data []byte, atEOF bool) (advance int, token []byte, err error) {
	i := 0
	// Skip whitespace and comments.
	for i < len(data) {
		c := data[i]
		if c == '#' {
			j := i
			for j < len(data) && data[j] != '\n' {
				j++
			}
			if j == len(data) && !atEOF {
				return 0, nil, nil // need more data to finish the comment
			}
			i = j
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			i++
			continue
		}
		break
	}
	if i == len(data) {
		if atEOF {
			return i, nil, nil
		}
		return i, nil, nil
	}
	start := i
	for i < len(data) {
		c := data[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#' {
			break
		}
		i++
	}
	if i == len(data) && !atEOF {
		return start, nil, nil // token may continue; wait for more data
	}
	return i, data[start:i], nil
}
