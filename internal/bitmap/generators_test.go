package bitmap

import (
	"testing"
	"testing/quick"
)

// floodCount labels 4-connected components with a simple BFS; the bitmap
// package keeps its own tiny copy so generator tests do not depend on
// internal/seqcc (which itself depends on bitmap).
func floodCount(b *Bitmap) int {
	n, m := b.W(), b.H()
	seen := make([]bool, n*m)
	count := 0
	var queue [][2]int
	for x := 0; x < n; x++ {
		for y := 0; y < m; y++ {
			if !b.Get(x, y) || seen[x*m+y] {
				continue
			}
			count++
			seen[x*m+y] = true
			queue = append(queue[:0], [2]int{x, y})
			for len(queue) > 0 {
				p := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := p[0]+d[0], p[1]+d[1]
					if b.Get(nx, ny) && !seen[nx*m+ny] {
						seen[nx*m+ny] = true
						queue = append(queue, [2]int{nx, ny})
					}
				}
			}
		}
	}
	return count
}

func TestEmptyFullSingle(t *testing.T) {
	if Empty(8).CountOnes() != 0 {
		t.Fatal("Empty should have no ones")
	}
	if Full(8).CountOnes() != 64 {
		t.Fatal("Full(8) should have 64 ones")
	}
	if floodCount(Full(8)) != 1 {
		t.Fatal("Full should be one component")
	}
	sp := SinglePixel(8, 3, 5)
	if sp.CountOnes() != 1 || !sp.Get(3, 5) {
		t.Fatal("SinglePixel misplaced")
	}
}

func TestCheckerComponents(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		b := Checker(n)
		want := (n*n + 1) / 2
		if got := b.CountOnes(); got != want {
			t.Errorf("Checker(%d): want %d ones, got %d", n, want, got)
		}
		if got := floodCount(b); got != want {
			t.Errorf("Checker(%d): want %d isolated components, got %d", n, want, got)
		}
	}
}

func TestStripes(t *testing.T) {
	h := HStripes(9, 3)
	if got := floodCount(h); got != 3 {
		t.Fatalf("HStripes(9,3): want 3 components, got %d", got)
	}
	v := VStripes(9, 3)
	if got := floodCount(v); got != 3 {
		t.Fatalf("VStripes(9,3): want 3 components, got %d", got)
	}
	if !h.Transpose().Equal(v) {
		t.Fatal("HStripes transposed should equal VStripes")
	}
}

func TestSerpentinesAreOneComponent(t *testing.T) {
	for _, n := range []int{2, 3, 8, 17, 32} {
		if got := floodCount(HSerpentine(n)); got != 1 {
			t.Errorf("HSerpentine(%d): want 1 component, got %d", n, got)
		}
		if got := floodCount(VSerpentine(n)); got != 1 {
			t.Errorf("VSerpentine(%d): want 1 component, got %d", n, got)
		}
	}
}

func TestSpiralOneComponent(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33, 64} {
		b := Spiral(n)
		if got := floodCount(b); got != 1 {
			t.Errorf("Spiral(%d): want 1 component, got %d\n%s", n, got, b)
		}
		// The spiral must reach every column so every PE participates.
		for x := 0; x < n; x++ {
			found := false
			for y := 0; y < n; y++ {
				if b.Get(x, y) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("Spiral(%d): column %d empty", n, x)
			}
		}
	}
}

func TestMazeOneComponent(t *testing.T) {
	for _, n := range []int{3, 5, 9, 17, 33} {
		b := Maze(n, 99)
		if got := floodCount(b); got != 1 {
			t.Errorf("Maze(%d): want 1 component, got %d", n, got)
		}
	}
}

func TestBinaryMergeOneComponentAndLanes(t *testing.T) {
	for _, n := range []int{4, 8, 16, 31, 64} {
		b := BinaryMerge(n)
		if got := floodCount(b); got != 1 {
			t.Errorf("BinaryMerge(%d): want 1 merged component, got %d", n, got)
		}
		// Every even row must be a full lane.
		for lane := 0; lane < n/2; lane++ {
			for x := 0; x < n; x++ {
				if !b.Get(x, 2*lane) {
					t.Fatalf("BinaryMerge(%d): lane %d broken at x=%d", n, lane, x)
				}
			}
		}
	}
}

func TestNestedShapes(t *testing.T) {
	// NestedFrames(16, 4): rings at d=0, 4; d=8 is 2*8=16 !< 15 stops — so 2 rings.
	b := NestedFrames(16, 4)
	if got := floodCount(b); got != 2 {
		t.Fatalf("NestedFrames(16,4): want 2 rings, got %d\n%s", got, b)
	}
	c := NestedC(20, 2)
	got := floodCount(c)
	if got < 2 {
		t.Fatalf("NestedC(20,2): want several separate Cs, got %d\n%s", got, c)
	}
}

func TestFig3aTwoInterleavedCombs(t *testing.T) {
	for _, n := range []int{8, 12, 16, 32} {
		b := Fig3a(n)
		if got := floodCount(b); got != 2 {
			t.Errorf("Fig3a(%d): want exactly 2 interleaved combs, got %d\n%s", n, got, b)
		}
	}
}

func TestFig3bChains(t *testing.T) {
	b := Fig3b(32)
	got := floodCount(b)
	// One zigzag chain per 8-column tile stripe.
	want := (32 + 7) / 8
	if got != want {
		t.Errorf("Fig3b(32): want %d chains, got %d\n%s", want, got, b)
	}
}

func TestEvenRowRunsStructure(t *testing.T) {
	starts := []int{0, 3, 7, 7}
	b := EvenRowRuns(8, starts)
	for i, s := range starts {
		y := 2 * i
		for x := 0; x < 8; x++ {
			want := x >= s
			if b.Get(x, y) != want {
				t.Fatalf("row %d x=%d: want %v", y, x, want)
			}
		}
		if y+1 < 8 && b.Column(0, nil)[y+1] {
			t.Fatalf("odd row %d should be empty", y+1)
		}
	}
	// Components: one per even row (runs never touch vertically).
	if got := floodCount(b); got != len(starts) {
		t.Fatalf("want %d run components, got %d", len(starts), got)
	}
}

func TestEvenRowRunsValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { EvenRowRuns(8, []int{0}) },          // wrong length
		func() { EvenRowRuns(8, []int{0, 1, 2, 9}) }, // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestDiagonalAndCross(t *testing.T) {
	if got := floodCount(Diagonal(16)); got != 1 {
		t.Fatalf("Diagonal: want 1 component, got %d", got)
	}
	if got := floodCount(Cross(15)); got != 1 {
		t.Fatalf("Cross: want 1 component, got %d", got)
	}
}

func TestBlobsWithinBounds(t *testing.T) {
	b := Blobs(20, 5, 50, 11)
	if b.CountOnes() == 0 {
		t.Fatal("blobs should set some pixels")
	}
}

func TestRandomDensity(t *testing.T) {
	b := Random(128, 0.3, 5)
	d := b.Density()
	if d < 0.25 || d > 0.35 {
		t.Fatalf("density 0.3 sample out of tolerance: %g", d)
	}
	// Determinism.
	if !Random(128, 0.3, 5).Equal(b) {
		t.Fatal("Random with same seed must be identical")
	}
}

func TestFamiliesRegistry(t *testing.T) {
	fams := Families()
	if len(fams) < 10 {
		t.Fatalf("expected a rich family suite, got %d", len(fams))
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if f.Name == "" || f.Description == "" || f.Generate == nil {
			t.Fatalf("family %+v incomplete", f.Name)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate family name %q", f.Name)
		}
		seen[f.Name] = true
		// Every family must generate valid images at small sizes,
		// including degenerate ones.
		for _, n := range []int{0, 1, 2, 3, 8, 16} {
			b := f.Generate(n)
			if b.W() != n || b.H() != n {
				t.Fatalf("family %q: Generate(%d) returned %dx%d", f.Name, n, b.W(), b.H())
			}
		}
	}
	if _, ok := FamilyByName("checker"); !ok {
		t.Fatal("FamilyByName should find checker")
	}
	if _, ok := FamilyByName("no-such-family"); ok {
		t.Fatal("FamilyByName should reject unknown names")
	}
}

// Property: generated images are deterministic functions of (family, n).
func TestFamilyDeterminismQuick(t *testing.T) {
	fams := Families()
	f := func(fi uint8, np uint8) bool {
		fam := fams[int(fi)%len(fams)]
		n := int(np%32) + 1
		return fam.Generate(n).Equal(fam.Generate(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
