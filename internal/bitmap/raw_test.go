package bitmap

import (
	"bytes"
	"strings"
	"testing"
)

// TestRawRoundTrip: WriteRaw/AppendRaw/ReadRaw agree byte for byte and
// reproduce the image exactly across awkward widths (sub-byte, sub-word,
// multi-word, non-square, empty).
func TestRawRoundTrip(t *testing.T) {
	shapes := [][2]int{{1, 1}, {3, 5}, {8, 8}, {9, 2}, {63, 7}, {64, 3}, {65, 4}, {130, 65}, {0, 0}, {0, 4}, {5, 0}}
	for _, sh := range shapes {
		w, h := sh[0], sh[1]
		img := New(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if (x*31+y*17)%3 == 0 {
					img.Set(x, y, true)
				}
			}
		}
		var buf bytes.Buffer
		if err := img.WriteRaw(&buf); err != nil {
			t.Fatalf("%dx%d: WriteRaw: %v", w, h, err)
		}
		if buf.Len() != RawSize(w, h) {
			t.Fatalf("%dx%d: encoded %d bytes, RawSize says %d", w, h, buf.Len(), RawSize(w, h))
		}
		if app := img.AppendRaw(nil); !bytes.Equal(app, buf.Bytes()) {
			t.Fatalf("%dx%d: AppendRaw differs from WriteRaw", w, h)
		}
		got, err := ReadRaw(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%dx%d: ReadRaw: %v", w, h, err)
		}
		if !got.Equal(img) {
			t.Fatalf("%dx%d: round trip changed the image", w, h)
		}
	}
}

// TestRawRejects: bad magic, truncated header, truncated raster, and
// absurd dimensions all fail with positioned errors, and dirty padding
// bits are masked off rather than leaking out-of-width pixels.
func TestRawRejects(t *testing.T) {
	img := Random(10, 0.5, 1)
	enc := img.AppendRaw(nil)

	if _, err := ReadRaw(bytes.NewReader([]byte("JUNKJUNKJUNKJUNK"))); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := ReadRaw(bytes.NewReader(enc[:6])); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("truncated header: %v", err)
	}
	if _, err := ReadRaw(bytes.NewReader(enc[:len(enc)-1])); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated raster: %v", err)
	}
	huge := append([]byte(nil), enc...)
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadRaw(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "unreasonable") {
		t.Fatalf("absurd dimensions: %v", err)
	}

	// Set padding bits above width 10 in every row byte; the decode must
	// produce the same image as the clean encoding.
	dirty := append([]byte(nil), enc...)
	for i := rawHeaderSize; i < len(dirty); i += 2 {
		dirty[i+1] |= 0xfc // bits 10..15 of the 16-bit row
	}
	got, err := ReadRaw(bytes.NewReader(dirty))
	if err != nil {
		t.Fatalf("dirty padding: %v", err)
	}
	if !got.Equal(img) {
		t.Fatal("padding bits leaked into the decoded image")
	}
}

// TestRawDims: the header peek reports dimensions without a decode and
// refuses non-SLR1 data.
func TestRawDims(t *testing.T) {
	enc := New(37, 21).AppendRaw(nil)
	w, h, ok := RawDims(enc)
	if !ok || w != 37 || h != 21 {
		t.Fatalf("RawDims = %d, %d, %v", w, h, ok)
	}
	if _, _, ok := RawDims([]byte("P1\n2 2\n")); ok {
		t.Fatal("RawDims accepted PBM data")
	}
	if _, _, ok := RawDims(enc[:8]); ok {
		t.Fatal("RawDims accepted a truncated header")
	}
}
