package bitmap

import (
	"fmt"
	"strings"
)

// Background is the label of 0-pixels in a LabelMap.
const Background int32 = -1

// LabelMap holds a per-pixel component labeling. Labels are int32: the
// canonical label of a component is the least column-major position
// (x·H + y) of its pixels, which for images up to 32767² fits comfortably
// (the algorithm's right-pass labels use one extra bit of headroom).
// Storage is column-major to match the SLAP's one-column-per-PE layout.
type LabelMap struct {
	w, h int
	lab  []int32
}

// NewLabelMap returns a w×h map with every pixel labeled Background.
func NewLabelMap(w, h int) *LabelMap {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("bitmap: negative label map %dx%d", w, h))
	}
	lm := &LabelMap{w: w, h: h, lab: make([]int32, w*h)}
	for i := range lm.lab {
		lm.lab[i] = Background
	}
	return lm
}

// NewLabelMapNoInit returns a w×h label map whose slots are zero, NOT
// Background: the caller must write every position (runs and
// background gaps alike) before handing the map out. The host engine's
// fill sweep does exactly that, and skipping the Background prefill is
// a measurable slice of its per-frame cost.
func NewLabelMapNoInit(w, h int) *LabelMap {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("bitmap: negative label map %dx%d", w, h))
	}
	return &LabelMap{w: w, h: h, lab: make([]int32, w*h)}
}

// W returns the width.
func (lm *LabelMap) W() int { return lm.w }

// H returns the height.
func (lm *LabelMap) H() int { return lm.h }

// Get returns the label at (x, y).
func (lm *LabelMap) Get(x, y int) int32 {
	if x < 0 || x >= lm.w || y < 0 || y >= lm.h {
		panic(fmt.Sprintf("bitmap: label Get(%d, %d) out of bounds for %dx%d", x, y, lm.w, lm.h))
	}
	return lm.lab[x*lm.h+y]
}

// Set assigns the label at (x, y).
func (lm *LabelMap) Set(x, y int, v int32) {
	if x < 0 || x >= lm.w || y < 0 || y >= lm.h {
		panic(fmt.Sprintf("bitmap: label Set(%d, %d) out of bounds for %dx%d", x, y, lm.w, lm.h))
	}
	lm.lab[x*lm.h+y] = v
}

// ColumnSlice returns the backing storage of column x (labels indexed by
// row). Writes through it are writes to the map — the simulator's merge
// step uses it to assign a column's labels without per-pixel bounds
// arithmetic.
func (lm *LabelMap) ColumnSlice(x int) []int32 {
	return lm.lab[x*lm.h : (x+1)*lm.h]
}

// Equal reports whether two label maps agree exactly.
func (lm *LabelMap) Equal(o *LabelMap) bool {
	if lm.w != o.w || lm.h != o.h {
		return false
	}
	for i := range lm.lab {
		if lm.lab[i] != o.lab[i] {
			return false
		}
	}
	return true
}

// ComponentCount returns the number of distinct non-background labels.
func (lm *LabelMap) ComponentCount() int {
	seen := make(map[int32]struct{})
	for _, v := range lm.lab {
		if v != Background {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// ComponentSizes returns the pixel count of every distinct label.
func (lm *LabelMap) ComponentSizes() map[int32]int {
	// Canonical labels are column-major positions, so they index a dense
	// counting array of W·H slots — an order of magnitude cheaper than a
	// per-pixel map assignment on large frames. A labeling carrying a
	// foreign label space (e.g. a strip relabeled to global positions
	// that exceed its own W·H) falls back to the map.
	n := int32(len(lm.lab))
	counts := make([]int32, n)
	roots := make([]int32, 0, 64)
	for _, v := range lm.lab {
		if v < 0 {
			continue
		}
		if v >= n {
			return lm.componentSizesMap()
		}
		if counts[v] == 0 {
			roots = append(roots, v)
		}
		counts[v]++
	}
	sizes := make(map[int32]int, len(roots))
	for _, r := range roots {
		sizes[r] = int(counts[r])
	}
	return sizes
}

func (lm *LabelMap) componentSizesMap() map[int32]int {
	sizes := make(map[int32]int)
	for _, v := range lm.lab {
		if v != Background {
			sizes[v]++
		}
	}
	return sizes
}

// Foreground returns the binary image of non-background pixels.
func (lm *LabelMap) Foreground() *Bitmap {
	b := New(lm.w, lm.h)
	for x := 0; x < lm.w; x++ {
		for y := 0; y < lm.h; y++ {
			if lm.Get(x, y) != Background {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

// String renders the map with one compact cell per pixel: '.' for
// background and a letter cycling through a–z per distinct label (in
// order of first appearance), for small-image debugging.
func (lm *LabelMap) String() string {
	names := map[int32]byte{}
	var sb strings.Builder
	for y := 0; y < lm.h; y++ {
		for x := 0; x < lm.w; x++ {
			v := lm.Get(x, y)
			if v == Background {
				sb.WriteByte('.')
				continue
			}
			c, ok := names[v]
			if !ok {
				c = byte('a' + len(names)%26)
				names[v] = c
			}
			sb.WriteByte(c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
