package bitmap

// Family is a named parametric image generator used by the experiment
// harness: every experiment sweeps Generate over a range of image sizes.
type Family struct {
	// Name identifies the family in tables and benchmark names.
	Name string
	// Description says what behaviour the family exercises.
	Description string
	// Generate returns the n×n member of the family.
	Generate func(n int) *Bitmap
}

// Families returns the standard workload suite, in presentation order.
// All random families use fixed seeds so runs are reproducible.
func Families() []Family {
	return []Family{
		{
			Name:        "empty",
			Description: "all-zero image; pure pipeline overhead",
			Generate:    Empty,
		},
		{
			Name:        "full",
			Description: "all-one image; one giant component, maximal run unions",
			Generate:    Full,
		},
		{
			Name:        "random50",
			Description: "uniform random, density 0.50 (near percolation threshold)",
			Generate:    func(n int) *Bitmap { return Random(n, 0.50, 0xC0FFEE) },
		},
		{
			Name:        "random30",
			Description: "uniform random, density 0.30 (many small components)",
			Generate:    func(n int) *Bitmap { return Random(n, 0.30, 0xBEEF) },
		},
		{
			Name:        "random70",
			Description: "uniform random, density 0.70 (few large components)",
			Generate:    func(n int) *Bitmap { return Random(n, 0.70, 0xFACADE) },
		},
		{
			Name:        "checker",
			Description: "checkerboard; maximal component count (n²/2 singletons)",
			Generate:    Checker,
		},
		{
			Name:        "hserpentine",
			Description: "horizontal snake; Figure 3(b)-style naive-propagation adversary",
			Generate:    HSerpentine,
		},
		{
			Name:        "vserpentine",
			Description: "vertical snake; longest cross-array dependence chain",
			Generate:    VSerpentine,
		},
		{
			Name:        "binarymerge",
			Description: "balanced binary union tree; linked-forest depth adversary",
			Generate:    BinaryMerge,
		},
		{
			Name:        "fig3a",
			Description: "interleaved combs (paper Figure 3(a) texture)",
			Generate:    Fig3a,
		},
		{
			Name:        "fig3b",
			Description: "tiled linked bars (paper Figure 3(b) texture)",
			Generate:    Fig3b,
		},
		{
			Name:        "nestedc",
			Description: "concentric C shapes; many long-lived open components",
			Generate:    func(n int) *Bitmap { return NestedC(n, 2) },
		},
		{
			Name:        "frames",
			Description: "concentric closed rings",
			Generate:    func(n int) *Bitmap { return NestedFrames(n, 4) },
		},
		{
			Name:        "spiral",
			Description: "single spiral arm; one tortuous component",
			Generate:    Spiral,
		},
		{
			Name:        "maze",
			Description: "random spanning-tree corridors; one tortuous component",
			Generate:    func(n int) *Bitmap { return Maze(n, 0xDECAFBAD) },
		},
		{
			Name:        "blobs",
			Description: "random-walk blobs; organic mid-size components",
			Generate:    func(n int) *Bitmap { return Blobs(n, maxInt(1, n/8), 4*n, 0x5EED) },
		},
		{
			Name:        "evenrowruns",
			Description: "Theorem 5 lower-bound family (random suffix runs on even rows)",
			Generate:    func(n int) *Bitmap { return RandomEvenRowRuns(n, 0x7EB5) },
		},
	}
}

// FamilyByName returns the named family and whether it exists.
func FamilyByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
