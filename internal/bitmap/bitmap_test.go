package bitmap

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	b := New(65, 3)
	if b.W() != 65 || b.H() != 3 {
		t.Fatalf("want 65x3, got %dx%d", b.W(), b.H())
	}
	if b.CountOnes() != 0 {
		t.Fatal("fresh bitmap should be empty")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for negative dimensions")
		}
	}()
	New(-1, 4)
}

func TestSetGetRoundTrip(t *testing.T) {
	b := New(130, 7) // width crosses two word boundaries
	coords := [][2]int{{0, 0}, {63, 0}, {64, 0}, {127, 6}, {128, 3}, {129, 6}}
	for _, c := range coords {
		b.Set(c[0], c[1], true)
	}
	for _, c := range coords {
		if !b.Get(c[0], c[1]) {
			t.Errorf("pixel (%d,%d) should be set", c[0], c[1])
		}
	}
	if got := b.CountOnes(); got != len(coords) {
		t.Fatalf("CountOnes: want %d, got %d", len(coords), got)
	}
	b.Set(64, 0, false)
	if b.Get(64, 0) {
		t.Fatal("pixel (64,0) should be cleared")
	}
}

func TestGetOutOfBoundsIsZero(t *testing.T) {
	b := Full(4)
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {4, 0}, {0, 4}, {100, 100}} {
		if b.Get(c[0], c[1]) {
			t.Errorf("out-of-bounds Get(%d,%d) should be false", c[0], c[1])
		}
	}
}

func TestSetOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-bounds Set")
		}
	}()
	New(4, 4).Set(4, 0, true)
}

func TestFillAndDensity(t *testing.T) {
	b := New(70, 3) // 70 is not a multiple of 64: exercises padding mask
	b.Fill(true)
	if got := b.CountOnes(); got != 210 {
		t.Fatalf("full 70x3 should have 210 ones, got %d", got)
	}
	if b.Density() != 1 {
		t.Fatalf("density of full image should be 1, got %g", b.Density())
	}
	b.Fill(false)
	if b.CountOnes() != 0 || b.Density() != 0 {
		t.Fatal("cleared image should be empty")
	}
	if Empty(0).Density() != 0 {
		t.Fatal("0x0 image density should be 0")
	}
}

func TestCloneEqual(t *testing.T) {
	b := Random(33, 0.5, 1)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Set(0, 0, !c.Get(0, 0))
	if b.Equal(c) {
		t.Fatal("mutated clone should differ")
	}
	if b.Equal(New(33, 32)) || b.Equal(New(32, 33)) {
		t.Fatal("different dimensions should not be equal")
	}
}

func TestColumn(t *testing.T) {
	b := MustParse(`
#..
.#.
#..
`)
	col := b.Column(0, nil)
	want := []bool{true, false, true}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("column 0: want %v, got %v", want, col)
		}
	}
	dst := make([]bool, 3)
	got := b.Column(1, dst)
	if &got[0] != &dst[0] {
		t.Fatal("Column should reuse dst when provided")
	}
	if !got[1] || got[0] || got[2] {
		t.Fatalf("column 1 mismatch: %v", got)
	}
}

func TestPos(t *testing.T) {
	b := New(5, 7)
	if b.Pos(0, 0) != 0 || b.Pos(1, 0) != 7 || b.Pos(2, 3) != 17 {
		t.Fatal("column-major position formula x*H+y violated")
	}
}

func TestStringRendering(t *testing.T) {
	b := New(3, 2)
	b.Set(0, 0, true)
	b.Set(2, 1, true)
	want := "#..\n..#\n"
	if got := b.String(); got != want {
		t.Fatalf("want %q, got %q", want, got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	art := `
##.#
....
#..#
`
	b := MustParse(art)
	if b.W() != 4 || b.H() != 3 {
		t.Fatalf("want 4x3, got %dx%d", b.W(), b.H())
	}
	reparsed := MustParse(b.String())
	if !b.Equal(reparsed) {
		t.Fatal("String/Parse round trip failed")
	}
}

func TestParseRaggedAndAliases(t *testing.T) {
	b, err := Parse("1X#\n0. \n_x1")
	if err != nil {
		t.Fatal(err)
	}
	if b.W() != 3 || b.H() != 3 {
		t.Fatalf("want 3x3, got %dx%d", b.W(), b.H())
	}
	if b.CountOnes() != 5 {
		t.Fatalf("want 5 ones, got %d", b.CountOnes())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("#?#"); err == nil {
		t.Fatal("want error for unrecognized pixel character")
	}
}

func TestPBMRoundTrip(t *testing.T) {
	for _, gen := range []*Bitmap{Empty(5), Full(5), Random(17, 0.4, 7), Checker(8)} {
		var sb strings.Builder
		if err := gen.WritePBM(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := ReadPBM(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("ReadPBM: %v\ninput:\n%s", err, sb.String())
		}
		if !gen.Equal(back) {
			t.Fatal("PBM round trip changed the image")
		}
	}
}

func TestReadPBMWithCommentsAndPacking(t *testing.T) {
	in := "P1\n# a comment\n3 2\n110\n# another\n0 1 1\n"
	b, err := ReadPBM(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := MustParse("##.\n.##")
	if !b.Equal(want) {
		t.Fatalf("want\n%s\ngot\n%s", want, b)
	}
}

func TestReadPBMErrors(t *testing.T) {
	cases := []string{
		"P4\n2 2\n",        // wrong magic
		"P1\n2\n",          // missing height
		"P1\n2 2\n1 0 1\n", // truncated raster
		"P1\nx 2\n1 1 1 1", // bad width token
		"P1\n2 2\n1 0 2 0", // bad pixel
	}
	for _, in := range cases {
		if _, err := ReadPBM(strings.NewReader(in)); err == nil {
			t.Errorf("want error for %q", in)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	b := Random(19, 0.5, 3)
	if !b.Transpose().Transpose().Equal(b) {
		t.Fatal("transpose twice should be identity")
	}
	tr := b.Transpose()
	for y := 0; y < b.H(); y++ {
		for x := 0; x < b.W(); x++ {
			if b.Get(x, y) != tr.Get(y, x) {
				t.Fatalf("transpose mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestMirrorInvolutions(t *testing.T) {
	b := Random(21, 0.5, 9)
	if !b.MirrorH().MirrorH().Equal(b) {
		t.Fatal("MirrorH twice should be identity")
	}
	if !b.MirrorV().MirrorV().Equal(b) {
		t.Fatal("MirrorV twice should be identity")
	}
	m := b.MirrorH()
	if b.Get(0, 5) != m.Get(b.W()-1, 5) {
		t.Fatal("MirrorH should swap ends of rows")
	}
}

func TestSubImageOverlay(t *testing.T) {
	b := Full(6)
	s := b.SubImage(1, 2, 3, 4)
	if s.W() != 3 || s.H() != 4 || s.CountOnes() != 12 {
		t.Fatalf("unexpected subimage %dx%d ones=%d", s.W(), s.H(), s.CountOnes())
	}
	dst := Empty(10)
	dst.Overlay(s, 8, 8) // clips: only (8,8),(9,8),(8,9),(9,9),(8,10)x... inside
	if dst.CountOnes() != 4 {
		t.Fatalf("clipped overlay should set 4 pixels, got %d", dst.CountOnes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-bounds SubImage")
		}
	}()
	b.SubImage(4, 4, 3, 3)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGIntnBoundsQuick(t *testing.T) {
	rng := NewRNG(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := rng.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: PBM write/read round-trips arbitrary images exactly.
func TestPBMRoundTripQuick(t *testing.T) {
	f := func(seed uint32, wp, hp uint8) bool {
		w := int(wp%40) + 1
		h := int(hp%40) + 1
		img := New(w, h)
		rng := NewRNG(uint64(seed))
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				if rng.Float64() < 0.5 {
					img.Set(x, y, true)
				}
			}
		}
		var sb strings.Builder
		if err := img.WritePBM(&sb); err != nil {
			return false
		}
		back, err := ReadPBM(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return img.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Set/Get agree with a naive map-based shadow implementation.
func TestBitmapShadowQuick(t *testing.T) {
	f := func(ops []uint32) bool {
		const w, h = 37, 23
		b := New(w, h)
		shadow := map[[2]int]bool{}
		for _, op := range ops {
			x := int(op % w)
			y := int((op / w) % h)
			v := (op>>16)&1 == 1
			b.Set(x, y, v)
			shadow[[2]int{x, y}] = v
		}
		count := 0
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				want := shadow[[2]int{x, y}]
				if b.Get(x, y) != want {
					return false
				}
				if want {
					count++
				}
			}
		}
		return b.CountOnes() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnWords(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {3, 7}, {5, 64}, {9, 65}, {65, 130}, {70, 200}} {
		w, h := dim[0], dim[1]
		n := w
		if h > n {
			n = h
		}
		b := Random(n, 0.5, uint64(w*h)).SubImage(0, 0, w, h)
		var dst []uint64
		for x := -1; x <= w; x++ {
			dst = b.ColumnWords(x, dst)
			if len(dst) != (h+63)/64 {
				t.Fatalf("%dx%d col %d: got %d words, want %d", w, h, x, len(dst), (h+63)/64)
			}
			for y := 0; y < h; y++ {
				got := dst[y>>6]&(1<<(uint(y)&63)) != 0
				if got != b.Get(x, y) {
					t.Fatalf("%dx%d: ColumnWords(%d) bit %d = %v, Get = %v", w, h, x, y, got, b.Get(x, y))
				}
			}
			// Padding above H must be zero so word-wise walks are exact.
			if rem := h % 64; rem != 0 && len(dst) > 0 {
				if hi := dst[len(dst)-1] >> uint(rem); hi != 0 {
					t.Fatalf("%dx%d col %d: dirty padding bits %x", w, h, x, hi)
				}
			}
		}
		// Reuse must overwrite every word.
		full := New(w, h)
		full.Fill(true)
		dst = full.ColumnWords(0, dst)
		dst = b.ColumnWords(1%w, dst)
		for y := 0; y < h; y++ {
			if got := dst[y>>6]&(1<<(uint(y)&63)) != 0; got != b.Get(1%w, y) {
				t.Fatalf("%dx%d: reused dst stale at row %d", w, h, y)
			}
		}
	}
}

// TestColumnWordsBlock holds the blocked transpose extractor to
// ColumnWords' output for every column of every block, across widths
// and heights that exercise partial last blocks and partial last row
// words on both axes.
func TestColumnWordsBlock(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {3, 7}, {64, 64}, {65, 130}, {70, 200}, {128, 63}, {200, 70}} {
		w, h := dim[0], dim[1]
		n := w
		if h > n {
			n = h
		}
		b := Random(n, 0.5, uint64(7*w+h)).SubImage(0, 0, w, h)
		hw := (h + 63) / 64
		var block, one []uint64
		for x0 := 0; x0 < w; x0 += 64 {
			block = b.ColumnWordsBlock(x0, block)
			if len(block) != 64*hw {
				t.Fatalf("%dx%d block %d: got %d words, want %d", w, h, x0, len(block), 64*hw)
			}
			for c := 0; c < 64; c++ {
				one = b.ColumnWords(x0+c, one)
				for k := 0; k < hw; k++ {
					if block[c*hw+k] != one[k] {
						t.Fatalf("%dx%d: block col %d word %d = %#x, ColumnWords = %#x",
							w, h, x0+c, k, block[c*hw+k], one[k])
					}
				}
			}
		}
	}
}

// TestParseCRLF: art with Windows line endings must parse identically to
// its LF form — the trailing '\r' is stripped per line, never treated as
// a pixel, and never inflates the computed width.
func TestParseCRLF(t *testing.T) {
	crlf, err := Parse("##.\r\n.#.\r\n..#")
	if err != nil {
		t.Fatalf("CRLF art rejected: %v", err)
	}
	lf := MustParse("##.\n.#.\n..#")
	if !crlf.Equal(lf) {
		t.Fatalf("CRLF parse diverged from LF parse:\n%s\nvs\n%s", crlf, lf)
	}
	if crlf.W() != 3 || crlf.H() != 3 {
		t.Fatalf("CRLF parse got %dx%d, want 3x3 (stray \\r inflated the width?)", crlf.W(), crlf.H())
	}
	// A lone trailing CRLF line is a blank line, same as LF.
	b, err := Parse("#\r\n\r\n")
	if err != nil || b.W() != 1 || b.H() != 1 {
		t.Fatalf("trailing CRLF blank line: got %v, %dx%d", err, b.W(), b.H())
	}
}

// TestParseAlphabet pins the full accepted pixel alphabet, one rune per
// case: '#', '1', 'X', 'x' are 1-pixels; '.', '0', ' ', '_' are
// 0-pixels; everything else is rejected with a position.
func TestParseAlphabet(t *testing.T) {
	cases := []struct {
		rune byte
		want bool // foreground?
		ok   bool
	}{
		{'#', true, true},
		{'1', true, true},
		{'X', true, true},
		{'x', true, true},
		{'.', false, true},
		{'0', false, true},
		{' ', false, true},
		{'_', false, true},
		{'?', false, false},
		{'2', false, false},
		{'\t', false, false},
	}
	for _, tc := range cases {
		// Anchor with a known foreground pixel so width is stable.
		b, err := Parse("#" + string(tc.rune))
		if !tc.ok {
			if err == nil {
				t.Errorf("rune %q accepted, want rejection", tc.rune)
			}
			continue
		}
		if err != nil {
			t.Errorf("rune %q rejected: %v", tc.rune, err)
			continue
		}
		if got := b.Get(1, 0); got != tc.want {
			t.Errorf("rune %q parsed as %v, want %v", tc.rune, got, tc.want)
		}
	}
}
