// Package bitmap provides the binary-image container used throughout the
// repository, together with the workload generators, text/PBM
// serialization, and geometric transforms needed by the experiments.
//
// Pixels are addressed as (x, y) with x the column index in [0, W) and y
// the row index in [0, H), matching the paper's convention that processor
// i of the SLAP holds column i and rows are numbered top to bottom. The
// column-major position of pixel (x, y) in an n×n image is x·n + y; the
// paper uses that position as the initial label of each pixel.
package bitmap

import (
	"fmt"
	"strings"
)

// Connectivity selects which pixels count as adjacent.
type Connectivity uint8

// Supported connectivities. The paper treats 4-connectivity ("adjacent
// horizontally or vertically"); 8-connectivity adds the diagonals and is
// provided as the customary library extension.
const (
	Conn4 Connectivity = 4
	Conn8 Connectivity = 8
)

// Valid reports whether c is a supported connectivity.
func (c Connectivity) Valid() bool { return c == Conn4 || c == Conn8 }

func (c Connectivity) String() string {
	switch c {
	case Conn4:
		return "4-connected"
	case Conn8:
		return "8-connected"
	}
	return "invalid-connectivity"
}

// Neighbors returns the adjacency offsets of c.
func (c Connectivity) Neighbors() [][2]int {
	if c == Conn8 {
		return [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	}
	return [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
}

// Bitmap is a binary image stored bit-packed in row-major order. The zero
// value is an empty 0×0 image; use New to allocate.
type Bitmap struct {
	w, h   int
	words  []uint64 // row-major, ceil(w/64) words per row
	stride int      // words per row
}

// New returns an all-zero bitmap of width w and height h. It panics if
// either dimension is negative.
func New(w, h int) *Bitmap {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("bitmap: negative dimensions %dx%d", w, h))
	}
	stride := (w + 63) / 64
	return &Bitmap{w: w, h: h, stride: stride, words: make([]uint64, stride*h)}
}

// Square returns an all-zero n×n bitmap.
func Square(n int) *Bitmap { return New(n, n) }

// W returns the width (number of columns / SLAP processors).
func (b *Bitmap) W() int { return b.w }

// H returns the height (number of rows).
func (b *Bitmap) H() int { return b.h }

// InBounds reports whether (x, y) is a valid pixel coordinate.
func (b *Bitmap) InBounds(x, y int) bool {
	return x >= 0 && x < b.w && y >= 0 && y < b.h
}

// Get returns the pixel at (x, y). Out-of-bounds coordinates read as 0,
// which simplifies neighborhood scans at the image border.
func (b *Bitmap) Get(x, y int) bool {
	if !b.InBounds(x, y) {
		return false
	}
	return b.words[y*b.stride+x/64]&(1<<uint(x%64)) != 0
}

// Set assigns the pixel at (x, y). It panics on out-of-bounds coordinates:
// silently dropping writes would mask generator bugs.
func (b *Bitmap) Set(x, y int, v bool) {
	if !b.InBounds(x, y) {
		panic(fmt.Sprintf("bitmap: Set(%d, %d) out of bounds for %dx%d", x, y, b.w, b.h))
	}
	idx := y*b.stride + x/64
	mask := uint64(1) << uint(x%64)
	if v {
		b.words[idx] |= mask
	} else {
		b.words[idx] &^= mask
	}
}

// Fill sets every pixel to v.
func (b *Bitmap) Fill(v bool) {
	var w uint64
	if v {
		w = ^uint64(0)
	}
	for i := range b.words {
		b.words[i] = w
	}
	if v {
		b.clearPadding()
	}
}

// clearPadding zeroes the unused high bits in the last word of each row so
// that popcounts and equality checks are exact.
func (b *Bitmap) clearPadding() {
	rem := b.w % 64
	if rem == 0 || b.stride == 0 {
		return
	}
	mask := (uint64(1) << uint(rem)) - 1
	for y := 0; y < b.h; y++ {
		b.words[y*b.stride+b.stride-1] &= mask
	}
}

// Clone returns a deep copy of the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	c := New(b.w, b.h)
	copy(c.words, b.words)
	return c
}

// Equal reports whether two bitmaps have identical dimensions and pixels.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.w != o.w || b.h != o.h {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// CountOnes returns the number of 1-pixels.
func (b *Bitmap) CountOnes() int {
	n := 0
	for _, w := range b.words {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Density returns the fraction of 1-pixels, in [0, 1]; 0 for empty images.
func (b *Bitmap) Density() float64 {
	if b.w*b.h == 0 {
		return 0
	}
	return float64(b.CountOnes()) / float64(b.w*b.h)
}

// Column copies column x into dst (which must have length ≥ H) and returns
// it; dst may be nil, in which case a fresh slice is allocated. This is
// the shape in which a SLAP PE holds its slice of the image. The word and
// mask of the column are computed once and strided down the rows, which
// is measurably cheaper than a per-pixel Get on the simulator's reset
// path.
func (b *Bitmap) Column(x int, dst []bool) []bool {
	if dst == nil {
		dst = make([]bool, b.h)
	}
	if x < 0 || x >= b.w {
		for y := 0; y < b.h; y++ {
			dst[y] = false
		}
		return dst
	}
	idx := x / 64
	mask := uint64(1) << uint(x%64)
	for y := 0; y < b.h; y++ {
		dst[y] = b.words[idx]&mask != 0
		idx += b.stride
	}
	return dst
}

// ColumnWords extracts column x as a little-endian bitset: bit y%64 of
// word y/64 of the result is pixel (x, y). dst is reused when its
// capacity suffices (the simulator's arenas), and out-of-range columns
// extract as all zeros, mirroring Column. Padding bits above H are
// always zero, so word-wise popcounts and zero-skipping walks over the
// result are exact. This is the packed shape the fused column pipeline
// walks with bits.TrailingZeros64.
func (b *Bitmap) ColumnWords(x int, dst []uint64) []uint64 {
	n := (b.h + 63) >> 6
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	if x < 0 || x >= b.w {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	idx := x >> 6
	sh := uint(x & 63)
	var acc uint64
	for y := 0; y < b.h; y++ {
		acc |= (b.words[y*b.stride+idx] >> sh & 1) << (uint(y) & 63)
		if y&63 == 63 {
			dst[y>>6] = acc
			acc = 0
		}
	}
	if b.h&63 != 0 {
		dst[b.h>>6] = acc
	}
	return dst
}

// ColumnWordsBlock extracts the 64 columns starting at word-aligned x0
// as packed column bitsets, laid out column-major in dst: word k of
// column x0+c is dst[c·ceil(H/64)+k], each bitset exactly what
// ColumnWords(x0+c) returns (columns at or beyond W extract as all
// zeros, padding bits above H are zero). One 64×64 bit transpose per
// 64-row tile replaces 64·64 single-bit probes, which is what lets the
// host engine stream whole images at memory-bandwidth-ish rates.
func (b *Bitmap) ColumnWordsBlock(x0 int, dst []uint64) []uint64 {
	if x0&63 != 0 || x0 < 0 || x0 >= b.w {
		panic("bitmap: ColumnWordsBlock x0 must be word-aligned and in range")
	}
	hw := (b.h + 63) >> 6
	n := 64 * hw
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	// Mask each source row word to the valid columns, so a row word's
	// padding bits cannot leak into the last block's phantom columns.
	mask := ^uint64(0)
	if rem := b.w - x0; rem < 64 {
		mask = 1<<uint(rem) - 1
	}
	idx := x0 >> 6
	var tile [64]uint64
	for yc := 0; yc < hw; yc++ {
		y0 := yc << 6
		rows := b.h - y0
		if rows > 64 {
			rows = 64
		}
		base := y0*b.stride + idx
		for i := 0; i < rows; i++ {
			tile[i] = b.words[base+i*b.stride] & mask
		}
		for i := rows; i < 64; i++ {
			tile[i] = 0
		}
		transpose64(&tile)
		for c := 0; c < 64; c++ {
			dst[c*hw+yc] = tile[c]
		}
	}
	return dst
}

// transpose64 transposes a 64×64 bit matrix in place (row i's bit j
// becomes row j's bit i) by recursive block swaps — the classic
// Hacker's Delight 7-3 network widened to 64 bits: lg 64 stages, each
// exchanging complementary sub-blocks under a shrinking mask.
func transpose64(a *[64]uint64) {
	mask := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & mask
			a[k+j] ^= t
			a[k] ^= t << uint(j)
		}
		j >>= 1
		mask ^= mask << uint(j)
	}
}

// Pos returns the column-major position x·H + y of a pixel, the initial
// label assigned by the paper's Algorithm CC.
func (b *Bitmap) Pos(x, y int) int { return x*b.h + y }

// String renders the bitmap as ASCII art with '#' for 1-pixels and '.'
// for 0-pixels, one row per line.
func (b *Bitmap) String() string {
	var sb strings.Builder
	sb.Grow((b.w + 1) * b.h)
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if b.Get(x, y) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
