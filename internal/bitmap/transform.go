package bitmap

// Transpose returns the transposed image (columns become rows). The SLAP
// right pass is implemented as a left pass over the horizontally mirrored
// image; Transpose exists for tests that check 4-connectivity is symmetric
// under it.
func (b *Bitmap) Transpose() *Bitmap {
	t := New(b.h, b.w)
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if b.Get(x, y) {
				t.Set(y, x, true)
			}
		}
	}
	return t
}

// MirrorH returns the image mirrored left-to-right: pixel (x, y) maps to
// (W-1-x, y).
func (b *Bitmap) MirrorH() *Bitmap {
	m := New(b.w, b.h)
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if b.Get(x, y) {
				m.Set(b.w-1-x, y, true)
			}
		}
	}
	return m
}

// MirrorV returns the image mirrored top-to-bottom: pixel (x, y) maps to
// (x, H-1-y).
func (b *Bitmap) MirrorV() *Bitmap {
	m := New(b.w, b.h)
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if b.Get(x, y) {
				m.Set(x, b.h-1-y, true)
			}
		}
	}
	return m
}

// SubImage copies the rectangle with corner (x0, y0) and size w×h. It
// panics when the rectangle is not fully inside the image.
func (b *Bitmap) SubImage(x0, y0, w, h int) *Bitmap {
	if x0 < 0 || y0 < 0 || w < 0 || h < 0 || x0+w > b.w || y0+h > b.h {
		panic("bitmap: SubImage rectangle out of bounds")
	}
	s := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if b.Get(x0+x, y0+y) {
				s.Set(x, y, true)
			}
		}
	}
	return s
}

// Overlay sets every 1-pixel of src into b at offset (x0, y0), clipping
// pixels that fall outside b.
func (b *Bitmap) Overlay(src *Bitmap, x0, y0 int) {
	for y := 0; y < src.h; y++ {
		for x := 0; x < src.w; x++ {
			if src.Get(x, y) && b.InBounds(x0+x, y0+y) {
				b.Set(x0+x, y0+y, true)
			}
		}
	}
}
