// Package stats provides the small set of numeric helpers used by the
// benchmark harness: summaries of sample sets and least-squares fits in
// log space, which estimate the growth exponent of measured step counts.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample set.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
}

// Summarize computes a Summary of xs. It returns a zero Summary when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// LinearFit is a least-squares line y = Slope*x + Intercept with the
// coefficient of determination R2.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits y = a*x + b by ordinary least squares. It returns an error
// when fewer than two points are given or all x values coincide.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate fit, all x equal")
	}
	fit := LinearFit{}
	fit.Slope = (n*sxy - sx*sy) / den
	fit.Intercept = (sy - fit.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		fit.R2 = 1
		return fit, nil
	}
	ssRes := 0.0
	for i := range xs {
		r := ys[i] - (fit.Slope*xs[i] + fit.Intercept)
		ssRes += r * r
	}
	fit.R2 = 1 - ssRes/ssTot
	return fit, nil
}

// FitPower fits y = c*x^p by least squares on (log x, log y) and returns
// the exponent p, scale c, and R2 of the log-space fit. All inputs must be
// positive.
func FitPower(xs, ys []float64) (exponent, scale, r2 float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: FitPower requires positive samples, got (%g, %g)", xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	fit, err := FitLine(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return fit.Slope, math.Exp(fit.Intercept), fit.R2, nil
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs by the
// nearest-rank method on a sorted copy; it returns 0 for an empty set.
// This is the same estimator the load generator and the trace ring use,
// so percentiles are comparable across every reporting surface.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// MannWhitneyU runs the two-sided Mann–Whitney U test (normal
// approximation with tie correction) on two independent sample sets and
// returns the approximate p-value for the null hypothesis that the two
// distributions are equal. It is the significance test behind the
// benchmark diff: distribution-free, so benchmark noise needs no
// normality assumption (the same choice benchstat makes). Fewer than 3
// samples on either side cannot reach significance at any conventional
// level, so the test returns p = 1 there rather than pretending.
func MannWhitneyU(a, b []float64) float64 {
	n1, n2 := len(a), len(b)
	if n1 < 3 || n2 < 3 {
		return 1
	}
	// Rank the pooled samples, mid-ranking ties.
	type obs struct {
		v     float64
		group int
	}
	pooled := make([]obs, 0, n1+n2)
	for _, v := range a {
		pooled = append(pooled, obs{v, 0})
	}
	for _, v := range b {
		pooled = append(pooled, obs{v, 1})
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].v < pooled[j].v })
	ranks := make([]float64, len(pooled))
	tieTerm := 0.0 // Σ (t³ − t) over tie groups, for the variance correction
	for i := 0; i < len(pooled); {
		j := i
		for j < len(pooled) && pooled[j].v == pooled[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		if t := float64(j - i); t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}
	r1 := 0.0
	for i, o := range pooled {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	mean := float64(n1) * float64(n2) / 2
	nf, n1f, n2f := float64(n1+n2), float64(n1), float64(n2)
	variance := n1f * n2f / 12 * (nf + 1 - tieTerm/(nf*(nf-1)))
	if variance <= 0 {
		// Every sample identical: the distributions are indistinguishable.
		return 1
	}
	// Continuity-corrected z; two-sided p from the normal tail.
	z := math.Abs(u1-mean) - 0.5
	if z < 0 {
		z = 0
	}
	z /= math.Sqrt(variance)
	return 2 * normTail(z)
}

// normTail returns P(Z > z) for the standard normal distribution.
func normTail(z float64) float64 {
	p := 0.5 * math.Erfc(z/math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return p
}

// Log2 returns the base-2 logarithm of n as a float64; Log2(0) and Log2(1)
// return 1 so that quantities like n·lg n stay positive for tiny n.
func Log2(n int) float64 {
	if n <= 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// Ratio returns a/b, or 0 when b is zero; convenient for metric tables.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
