package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty summary should be zero, got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.Median != 42 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.StdDev != 0 {
		t.Fatalf("single sample stddev should be 0, got %g", s.StdDev)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 {
		t.Fatalf("mean: want 2.5, got %g", s.Mean)
	}
	if s.Median != 2.5 {
		t.Fatalf("median: want 2.5, got %g", s.Median)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Fatalf("min/max: got %g/%g", s.Min, s.Max)
	}
	want := math.Sqrt(5.0 / 3.0)
	if !almostEqual(s.StdDev, want, 1e-12) {
		t.Fatalf("stddev: want %g, got %g", want, s.StdDev)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median: want 5, got %g", s.Median)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 3, 1e-9) || !almostEqual(fit.Intercept, -7, 1e-9) {
		t.Fatalf("want y=3x-7, got %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Fatalf("exact fit should have R2=1, got %g", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for a single point")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("want error for constant x")
	}
}

func TestFitPowerExact(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * x * x // y = 5 x^2
	}
	p, c, r2, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, 2, 1e-9) || !almostEqual(c, 5, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Fatalf("want p=2 c=5 r2=1, got p=%g c=%g r2=%g", p, c, r2)
	}
}

func TestFitPowerRejectsNonPositive(t *testing.T) {
	if _, _, _, err := FitPower([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Fatal("want error for non-positive x")
	}
	if _, _, _, err := FitPower([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("want error for non-positive y")
	}
}

func TestLog2(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want float64
	}{{0, 1}, {1, 1}, {2, 1}, {4, 2}, {1024, 10}} {
		if got := Log2(tc.n); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Log2(%d): want %g, got %g", tc.n, tc.want, got)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("6/3 should be 2")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("division by zero should yield 0")
	}
}

// Property: the fitted line through any affine data recovers the slope and
// intercept regardless of the (distinct) sample positions.
func TestFitLineRecoversAffineQuick(t *testing.T) {
	f := func(slope, intercept float64, seed uint8) bool {
		if math.Abs(slope) > 1e6 || math.Abs(intercept) > 1e6 {
			return true // avoid float blowup; not the property under test
		}
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		for i := range xs {
			xs[i] = float64(i) + float64(seed%7)
			ys[i] = slope*xs[i] + intercept
		}
		fit, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, slope, 1e-6+1e-9*math.Abs(slope)) &&
			almostEqual(fit.Intercept, intercept, 1e-5+1e-9*math.Abs(intercept))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize bounds — Min ≤ Median ≤ Max and Min ≤ Mean ≤ Max.
func TestSummarizeBoundsQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.95, 4}, {-1, 1}, {2, 5},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
	// Percentile must not mutate its input.
	if xs[0] != 5 {
		t.Errorf("Percentile sorted its input in place: %v", xs)
	}
}

// TestMannWhitneyU pins the test's behavior on the regimes the
// benchmark diff cares about: separated distributions are significant,
// identical ones are not, and undersized or constant samples can never
// reach significance.
func TestMannWhitneyU(t *testing.T) {
	a := []float64{10.1, 10.0, 9.9, 10.2, 9.8, 10.0, 10.1, 9.9}
	b := []float64{6.0, 6.1, 5.9, 6.2, 5.8, 6.0, 6.1, 5.9}
	if p := MannWhitneyU(a, b); p >= 0.01 {
		t.Errorf("clearly separated samples: p = %v, want < 0.01", p)
	}
	if p := MannWhitneyU(a, a); p < 0.9 {
		t.Errorf("identical samples: p = %v, want ~1", p)
	}
	if p := MannWhitneyU(a[:2], b); p != 1 {
		t.Errorf("undersized sample: p = %v, want 1", p)
	}
	flat := []float64{5, 5, 5, 5}
	if p := MannWhitneyU(flat, flat); p != 1 {
		t.Errorf("all-constant samples: p = %v, want 1", p)
	}
	// Symmetry: swapping the groups must not change the two-sided p.
	if p1, p2 := MannWhitneyU(a, b), MannWhitneyU(b, a); math.Abs(p1-p2) > 1e-12 {
		t.Errorf("asymmetric p-values: %v vs %v", p1, p2)
	}
	// Interleaved-but-offset distributions: significant but mild.
	c := []float64{9.7, 9.9, 10.1, 9.8, 10.0, 10.2, 9.9, 10.1}
	d := []float64{9.9, 10.1, 10.3, 10.0, 10.2, 10.4, 10.1, 10.3}
	if p := MannWhitneyU(c, d); p >= 0.05 {
		t.Errorf("offset overlapping samples: p = %v, want < 0.05", p)
	}
}
