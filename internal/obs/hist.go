package obs

import (
	"fmt"
	"io"
	"strconv"
)

// DefBuckets are the explicit request/stage latency bounds (seconds)
// both daemons' histograms use: 1ms to 10s, roughly ×2.5 apart —
// decode and queue land in the bottom decade, whole-frame labeling in
// the middle, stragglers and timeouts at the top.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a Prometheus-style cumulative-bucket histogram with
// explicit bounds. Concurrency-safe via the owning registry's lock —
// Observe and WriteProm are plain field updates, callers serialize.
type Histogram struct {
	bounds []float64
	counts []uint64 // one per bound, plus the +Inf overflow at the end
	sum    float64
	total  uint64
}

// NewHistogram returns a histogram over bounds (ascending);
// nil selects DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe files one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.total }

// WriteProm renders the histogram's series in Prometheus text format:
// cumulative name_bucket lines (le up to +Inf), then name_sum and
// name_count. labels is a pre-formatted label list without braces
// (`endpoint="label"`), or empty.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.total)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.sum, name, labels, h.total)
	}
}
