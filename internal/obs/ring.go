package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"sync"
)

// Ring keeps the traces /debug/requests serves: a FIFO of the most
// recent, the top-K slowest (stable on ties — the earlier arrival
// outranks an equally slow later one, so eviction order is
// deterministic), and a FIFO of the most recent errored traces.
// Observe is called once per finished request; everything else reads
// snapshots.
type Ring struct {
	mu        sync.Mutex
	recentCap int
	slowCap   int
	errCap    int
	recent    []*Trace // newest last
	slowest   []*Trace // duration-descending, stable
	errored   []*Trace // newest last
}

// NewRing sizes the three shelves; values ≤ 0 select the defaults
// (64 recent, 16 slowest, 32 errored).
func NewRing(recent, slowest, errored int) *Ring {
	if recent <= 0 {
		recent = 64
	}
	if slowest <= 0 {
		slowest = 16
	}
	if errored <= 0 {
		errored = 32
	}
	return &Ring{recentCap: recent, slowCap: slowest, errCap: errored}
}

// Observe files a finished trace.
func (r *Ring) Observe(t *Trace) {
	if r == nil || t == nil {
		return
	}
	dur := t.Duration()
	status := t.Status()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent = append(r.recent, t)
	if len(r.recent) > r.recentCap {
		r.recent = r.recent[1:]
	}
	if status != StatusOK {
		r.errored = append(r.errored, t)
		if len(r.errored) > r.errCap {
			r.errored = r.errored[1:]
		}
	}
	// Insert after every at-least-as-slow entry: stable, deterministic.
	i := len(r.slowest)
	for i > 0 && r.slowest[i-1].Duration() < dur {
		i--
	}
	if i < r.slowCap {
		r.slowest = append(r.slowest, nil)
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = t
		if len(r.slowest) > r.slowCap {
			r.slowest = r.slowest[:r.slowCap]
		}
	}
}

// RingSnapshot is the /debug/requests JSON body.
type RingSnapshot struct {
	Recent  []TraceSnapshot `json:"recent"`
	Slowest []TraceSnapshot `json:"slowest"`
	Errored []TraceSnapshot `json:"errored"`
}

// Snapshot captures all three shelves, newest first on the FIFOs.
func (r *Ring) Snapshot() RingSnapshot {
	r.mu.Lock()
	recent := append([]*Trace(nil), r.recent...)
	slowest := append([]*Trace(nil), r.slowest...)
	errored := append([]*Trace(nil), r.errored...)
	r.mu.Unlock()
	snap := RingSnapshot{Recent: []TraceSnapshot{}, Slowest: []TraceSnapshot{}, Errored: []TraceSnapshot{}}
	for i := len(recent) - 1; i >= 0; i-- {
		snap.Recent = append(snap.Recent, recent[i].Snapshot())
	}
	for _, t := range slowest {
		snap.Slowest = append(snap.Slowest, t.Snapshot())
	}
	for i := len(errored) - 1; i >= 0; i-- {
		snap.Errored = append(snap.Errored, errored[i].Snapshot())
	}
	return snap
}

// Handler serves the ring as /debug/requests: JSON under
// ?format=json (or an Accept preferring application/json), a plain
// HTML page of indented span trees otherwise.
func (r *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<!DOCTYPE html><html><head><title>/debug/requests</title></head><body><h1>requests</h1>\n")
		section := func(title string, traces []TraceSnapshot) {
			fmt.Fprintf(w, "<h2>%s (%d)</h2>\n<pre>\n", html.EscapeString(title), len(traces))
			for _, t := range traces {
				writeTraceHTML(w, t)
			}
			fmt.Fprint(w, "</pre>\n")
		}
		section("recent", snap.Recent)
		section("slowest", snap.Slowest)
		section("errored", snap.Errored)
		fmt.Fprint(w, "</body></html>\n")
	})
}

func writeTraceHTML(w http.ResponseWriter, t TraceSnapshot) {
	fmt.Fprintf(w, "%s  %s  %.3fms  %s\n",
		html.EscapeString(t.Start.Format("15:04:05.000")), html.EscapeString(t.ID), t.DurMS,
		html.EscapeString(t.Root.Status))
	var walk func(s SpanSnapshot, depth int)
	walk = func(s SpanSnapshot, depth int) {
		line := fmt.Sprintf("%s%s  %.3fms", strings.Repeat("  ", depth), s.Name, s.DurMS)
		if s.Remote {
			line += "  [remote]"
		}
		if s.Status != "" {
			line += "  [" + s.Status + "]"
		}
		if s.Note != "" {
			line += "  " + s.Note
		}
		fmt.Fprintf(w, "%s\n", html.EscapeString(line))
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 1)
	fmt.Fprint(w, "\n")
}
