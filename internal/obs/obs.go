// Package obs is the request-scoped tracing layer behind slapd and
// slapfront: a dependency-free Trace of nested Spans keyed by the
// request's X-Slap-Request-Id. A trace surfaces three ways — a
// Server-Timing response header (rendered by ServerTiming, parsed back
// by ParseServerTiming, and grafted across tiers by Span.Graft, so the
// coordinator's tree carries every backend's stages), per-stage
// Prometheus histograms (Histogram), and the /debug/requests ring of
// recent, slowest, and errored traces (Ring).
//
// Every Span method is safe on a nil receiver: code paths that run
// without a trace (direct library use of core, benchmarks) pay one nil
// check per hook and nothing else. The clock is injected at trace
// construction, so every layer above is stub-clock testable.
package obs

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Span statuses. The empty string is success; Cancel marks a span
// StatusCancelled (a hedge loser, a hung-up client), errors mark it
// StatusError.
const (
	StatusOK        = ""
	StatusCancelled = "cancelled"
	StatusError     = "error"
)

// Trace is one request's span tree. Construct with New; the root span
// is open until Finish. All methods are safe for concurrent use — a
// strip fan-out appends child spans from many goroutines.
type Trace struct {
	mu   sync.Mutex
	id   string
	now  func() time.Time
	root *Span
}

// Span is one timed stage inside a trace. The zero of everything —
// a nil *Span — is a valid no-op span, so instrumentation hooks cost
// one nil check when no trace is attached.
type Span struct {
	tr       *Trace
	name     string
	note     string
	status   string
	start    time.Time
	dur      time.Duration
	ended    bool
	remote   bool // grafted from another tier's Server-Timing
	children []*Span
}

// New starts a trace named name (by convention the endpoint) keyed by
// the request id. now overrides the clock (tests); nil selects
// time.Now.
func New(id, name string, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	t := &Trace{id: id, now: now}
	t.root = &Span{tr: t, name: name, start: now()}
	return t
}

// ID returns the request id the trace is keyed by.
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Finish ends the root span (idempotent). Child spans left open keep
// accumulating until their own End; a finished trace's duration is
// fixed.
func (t *Trace) Finish() { t.root.End() }

// Duration returns the root span's duration (time so far while open).
func (t *Trace) Duration() time.Duration { return t.root.Duration() }

// Status returns the root span's status.
func (t *Trace) Status() string { return t.root.Status() }

// Stage is one top-level stage of a finished trace, as fed to the
// per-stage histograms.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Stages returns the root's direct children in start order — the
// per-stage wall-time decomposition of the request.
func (t *Trace) Stages() []Stage {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, 0, len(t.root.children))
	for _, c := range t.root.children {
		out = append(out, Stage{Name: c.name, Dur: c.durLocked(t.now())})
	}
	return out
}

// SpanNames returns the sorted set of every span name in the trace,
// remote (grafted) spans included — the docs-gate input.
func (t *Trace) SpanNames() []string {
	t.mu.Lock()
	set := map[string]bool{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		set[sp.name] = true
		for _, c := range sp.children {
			walk(c)
		}
	}
	walk(t.root)
	t.mu.Unlock()
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// durLocked is the span's duration, using now while still open.
// Callers hold tr.mu.
func (sp *Span) durLocked(now time.Time) time.Duration {
	if sp.ended || sp.remote {
		return sp.dur
	}
	return now.Sub(sp.start)
}

// Child starts a child span. Nil-safe: a nil receiver returns nil, so
// untraced paths chain no-ops all the way down.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	c := &Span{tr: sp.tr, name: name, start: sp.tr.now()}
	sp.children = append(sp.children, c)
	return c
}

// Event records a zero-duration child span — a point-in-time marker
// (a breaker rejection, a hedge launch).
func (sp *Span) Event(name string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	now := sp.tr.now()
	sp.children = append(sp.children, &Span{tr: sp.tr, name: name, start: now, ended: true})
}

// End closes the span with its current status (idempotent).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	sp.endLocked()
}

func (sp *Span) endLocked() {
	if sp.ended {
		return
	}
	sp.ended = true
	sp.dur = sp.tr.now().Sub(sp.start)
}

// EndErr closes the span, deriving status from err: nil is success,
// context.Canceled marks it cancelled, anything else errors the span
// and records the message.
func (sp *Span) EndErr(err error) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			sp.status = StatusCancelled
		} else {
			sp.status = StatusError
		}
		if sp.note == "" {
			sp.note = err.Error()
		}
	}
	sp.endLocked()
}

// Cancel closes the span as cancelled — the hedge loser's mark.
func (sp *Span) Cancel() {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	sp.status = StatusCancelled
	sp.endLocked()
}

// Fail marks the span errored without closing it (the root carries the
// request's final status while later stages still run).
func (sp *Span) Fail(note string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	sp.status = StatusError
	if sp.note == "" {
		sp.note = note
	}
}

// Annotate attaches a short note (backend name, strip index, "winner").
// Repeated notes join with a space.
func (sp *Span) Annotate(note string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if sp.note == "" {
		sp.note = note
	} else {
		sp.note += " " + note
	}
}

// Name returns the span's name ("" on nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name // immutable after construction
}

// Status returns the span's status.
func (sp *Span) Status() string {
	if sp == nil {
		return StatusOK
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return sp.status
}

// Duration returns the span's duration (time so far while open).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return sp.durLocked(sp.tr.now())
}

// Trace returns the owning trace (nil on nil).
func (sp *Span) Trace() *Trace {
	if sp == nil {
		return nil
	}
	return sp.tr
}

type ctxKey struct{}

// ContextWith returns ctx carrying sp; the span hooks below it
// (pool wait, per-strip, seam stitch, backend attempts) attach their
// children there.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span ctx carries, or nil — and nil is a
// working no-op span, so callers never check.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ServerTiming renders the trace as a Server-Timing header value: one
// entry per span below the root, depth-first, nesting encoded in
// dotted path names (label.strip), duration in milliseconds, a
// non-success status in desc. ParseServerTiming inverts it and
// Span.Graft rebuilds the tree, so a coordinator merges each backend's
// header into its own trace and the client sees one tree spanning both
// tiers.
func (t *Trace) ServerTiming() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var b strings.Builder
	var walk func(sp *Span, prefix string)
	walk = func(sp *Span, prefix string) {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		b.WriteString(prefix)
		b.WriteString(";dur=")
		b.WriteString(strconv.FormatFloat(float64(sp.durLocked(now))/float64(time.Millisecond), 'f', -1, 64))
		if sp.status != "" {
			b.WriteString(";desc=")
			b.WriteString(sp.status)
		}
		for _, c := range sp.children {
			walk(c, prefix+"."+c.name)
		}
	}
	for _, c := range t.root.children {
		walk(c, c.name)
	}
	return b.String()
}

// Entry is one parsed Server-Timing metric.
type Entry struct {
	Name string // dotted span path
	Dur  time.Duration
	Desc string
}

// ParseServerTiming parses a Server-Timing header value, preserving
// entry order (the renderer's depth-first order is what lets Graft
// rebuild the tree).
func ParseServerTiming(h string) []Entry {
	var out []Entry
	for _, part := range strings.Split(h, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ";")
		e := Entry{Name: strings.TrimSpace(fields[0])}
		if e.Name == "" {
			continue
		}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				continue
			}
			switch strings.ToLower(k) {
			case "dur":
				if ms, err := strconv.ParseFloat(v, 64); err == nil {
					e.Dur = time.Duration(ms * float64(time.Millisecond))
				}
			case "desc":
				e.Desc = strings.Trim(v, `"`)
			}
		}
		out = append(out, e)
	}
	return out
}

// Graft attaches another tier's parsed Server-Timing entries under sp
// as remote spans, rebuilding the dotted paths into a tree. Repeated
// names attach under the most recently seen span of their parent path
// — exactly the renderer's depth-first order — so per-strip entries
// land under their own strip.
func (sp *Span) Graft(entries []Entry) {
	if sp == nil || len(entries) == 0 {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	last := map[string]*Span{"": sp}
	for _, e := range entries {
		parentPath, name := "", e.Name
		if i := strings.LastIndex(e.Name, "."); i >= 0 {
			parentPath, name = e.Name[:i], e.Name[i+1:]
		}
		parent := last[parentPath]
		if parent == nil {
			parent = sp // orphaned path: keep the data, flatten the nesting
		}
		c := &Span{tr: sp.tr, name: name, status: e.Desc, dur: e.Dur, ended: true, remote: true}
		parent.children = append(parent.children, c)
		last[e.Name] = c
	}
}

// SpanSnapshot is one span as /debug/requests serves it.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	StartMS  float64        `json:"start_ms"` // offset from the trace's start
	DurMS    float64        `json:"dur_ms"`
	Status   string         `json:"status,omitempty"`
	Note     string         `json:"note,omitempty"`
	Remote   bool           `json:"remote,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// TraceSnapshot is one trace as /debug/requests serves it.
type TraceSnapshot struct {
	ID    string       `json:"id"`
	Name  string       `json:"name"`
	Start time.Time    `json:"start"`
	DurMS float64      `json:"dur_ms"`
	Root  SpanSnapshot `json:"root"`
}

// Snapshot captures the trace for serving.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	origin := t.root.start
	var snap func(sp *Span) SpanSnapshot
	snap = func(sp *Span) SpanSnapshot {
		s := SpanSnapshot{
			Name:   sp.name,
			DurMS:  float64(sp.durLocked(now)) / float64(time.Millisecond),
			Status: sp.status,
			Note:   sp.note,
			Remote: sp.remote,
		}
		if !sp.remote {
			s.StartMS = float64(sp.start.Sub(origin)) / float64(time.Millisecond)
		}
		for _, c := range sp.children {
			s.Children = append(s.Children, snap(c))
		}
		return s
	}
	return TraceSnapshot{
		ID:    t.id,
		Name:  t.root.name,
		Start: origin,
		DurMS: float64(t.root.durLocked(now)) / float64(time.Millisecond),
		Root:  snap(t.root),
	}
}
