package obs

import (
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"
)

// RuntimeInfo describes the host a measurement ran on — the provenance
// block every BENCH artifact carries. Cores is the physical CPU count;
// GOMAXPROCS is what the scheduler was actually allowed to use, which
// matters because the two diverge in the multicore sweeps.
type RuntimeInfo struct {
	CPU        string `json:"cpu,omitempty"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go"`
}

// Runtime captures the current host. The CPU model comes from
// /proc/cpuinfo and is empty on platforms without it.
func Runtime() RuntimeInfo {
	return RuntimeInfo{
		CPU:        cpuModel(),
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
	}
}

// cpuModel returns the first "model name" line of /proc/cpuinfo.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// GCSnapshot is a point-in-time view of the collector, cheap enough to
// bracket a benchmark scenario with: Delta of two snapshots is the GC
// activity the scenario induced.
type GCSnapshot struct {
	NumGC        uint32        `json:"num_gc"`
	PauseTotal   time.Duration `json:"pause_total_ns"`
	HeapAllocMB  float64       `json:"heap_alloc_mb"`
	TotalAllocMB float64       `json:"total_alloc_mb"`
}

// ReadGC captures the collector's counters now.
func ReadGC() GCSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return GCSnapshot{
		NumGC:        ms.NumGC,
		PauseTotal:   time.Duration(ms.PauseTotalNs),
		HeapAllocMB:  float64(ms.HeapAlloc) / 1e6,
		TotalAllocMB: float64(ms.TotalAlloc) / 1e6,
	}
}

// Delta returns the GC activity between prev and s (counters and
// cumulative allocation; HeapAllocMB is carried from s, a gauge).
func (s GCSnapshot) Delta(prev GCSnapshot) GCSnapshot {
	return GCSnapshot{
		NumGC:        s.NumGC - prev.NumGC,
		PauseTotal:   s.PauseTotal - prev.PauseTotal,
		HeapAllocMB:  s.HeapAllocMB,
		TotalAllocMB: s.TotalAllocMB - prev.TotalAllocMB,
	}
}

// RuntimeHandler serves the host + GC snapshot as JSON — the
// machine-readable twin of /debug/pprof for harnesses that want the
// provenance block without shelling into the process.
func RuntimeHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Runtime RuntimeInfo `json:"runtime"`
			GC      GCSnapshot  `json:"gc"`
		}{Runtime(), ReadGC()})
	})
}
