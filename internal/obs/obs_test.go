package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubClock ticks a fixed step per reading — the same shape the server
// tests inject, so span durations are exact.
func stubClock(step time.Duration) func() time.Time {
	tick := time.Unix(1700000000, 0)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		tick = tick.Add(step)
		return tick
	}
}

func TestSpanTreeAndServerTiming(t *testing.T) {
	tr := New("req-1", "label", stubClock(100*time.Millisecond))
	q := tr.Root().Child("queue")
	q.End()
	run := tr.Root().Child("label")
	s0 := run.Child("strip")
	s0.End()
	s1 := run.Child("strip")
	s1.EndErr(errors.New("boom"))
	run.End()
	tr.Finish()

	st := tr.ServerTiming()
	want := "queue;dur=100, label;dur=500, label.strip;dur=100, label.strip;dur=100;desc=error"
	if st != want {
		t.Fatalf("ServerTiming:\n got %q\nwant %q", st, want)
	}

	stages := tr.Stages()
	if len(stages) != 2 || stages[0].Name != "queue" || stages[0].Dur != 100*time.Millisecond ||
		stages[1].Name != "label" || stages[1].Dur != 500*time.Millisecond {
		t.Fatalf("stages: %+v", stages)
	}
	names := tr.SpanNames()
	if got := strings.Join(names, ","); got != "label,queue,strip" {
		t.Fatalf("span names: %v", names)
	}
	if tr.Duration() != 900*time.Millisecond {
		t.Fatalf("trace duration %v", tr.Duration())
	}
}

func TestParseServerTimingRoundTrip(t *testing.T) {
	in := `queue;dur=0.5, decode;dur=1.25, label;dur=40;desc=cancelled, label.strip;dur=20, junk, ;dur=3`
	es := ParseServerTiming(in)
	if len(es) != 5 {
		t.Fatalf("parsed %d entries: %+v", len(es), es)
	}
	if es[0].Name != "queue" || es[0].Dur != 500*time.Microsecond {
		t.Fatalf("entry 0: %+v", es[0])
	}
	if es[2].Desc != "cancelled" || es[2].Dur != 40*time.Millisecond {
		t.Fatalf("entry 2: %+v", es[2])
	}
	if es[3].Name != "label.strip" {
		t.Fatalf("entry 3: %+v", es[3])
	}
	if es[4].Name != "junk" {
		t.Fatalf("entry 4: %+v", es[4])
	}
}

// TestGraftRebuildsTree: a backend's flat Server-Timing grafts back
// into a nested tree, repeated strip entries landing as siblings, and
// the merged trace renders both tiers with the attempt prefix.
func TestGraftRebuildsTree(t *testing.T) {
	tr := New("req-2", "label", stubClock(time.Millisecond))
	att := tr.Root().Child("attempt")
	att.Graft(ParseServerTiming("queue;dur=1, label;dur=10, label.strip;dur=4, label.strip;dur=5, label.stitch;dur=1, encode;dur=2"))
	att.End()
	tr.Finish()

	snap := tr.Snapshot()
	a := snap.Root.Children[0]
	if len(a.Children) != 3 {
		t.Fatalf("attempt children: %+v", a.Children)
	}
	lbl := a.Children[1]
	if lbl.Name != "label" || len(lbl.Children) != 3 {
		t.Fatalf("grafted label subtree: %+v", lbl)
	}
	if !lbl.Remote || lbl.Children[0].Name != "strip" || lbl.Children[1].Name != "strip" || lbl.Children[2].Name != "stitch" {
		t.Fatalf("grafted label subtree: %+v", lbl)
	}
	st := tr.ServerTiming()
	for _, wantSub := range []string{"attempt.label.strip;dur=4", "attempt.label.strip;dur=5", "attempt.queue;dur=1", "attempt.encode;dur=2"} {
		if !strings.Contains(st, wantSub) {
			t.Fatalf("merged header %q missing %q", st, wantSub)
		}
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.End()
	sp.EndErr(errors.New("x"))
	sp.Cancel()
	sp.Annotate("n")
	sp.Fail("f")
	sp.Event("e")
	sp.Graft([]Entry{{Name: "a", Dur: time.Second}})
	if c := sp.Child("child"); c != nil {
		t.Fatal("nil span spawned a real child")
	}
	if sp.Duration() != 0 || sp.Name() != "" || sp.Status() != StatusOK || sp.Trace() != nil {
		t.Fatal("nil span accessors not zero")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context carries span %v", got)
	}
	if got := FromContext(nil); got != nil { //nolint:staticcheck // nil ctx is the no-trace fast path
		t.Fatalf("nil context carries span %v", got)
	}
}

func TestContextCarriesSpan(t *testing.T) {
	tr := New("req-3", "label", stubClock(time.Millisecond))
	ctx := ContextWith(context.Background(), tr.Root())
	if got := FromContext(ctx); got != tr.Root() {
		t.Fatalf("FromContext = %v", got)
	}
}

func TestStatusesAndEvents(t *testing.T) {
	tr := New("req-4", "label", stubClock(time.Millisecond))
	a := tr.Root().Child("attempt")
	a.Cancel()
	b := tr.Root().Child("attempt")
	b.EndErr(context.Canceled)
	c := tr.Root().Child("attempt")
	c.EndErr(context.DeadlineExceeded)
	tr.Root().Event("no-backend")
	tr.Root().Fail("five hundred")
	tr.Finish()
	if a.Status() != StatusCancelled || b.Status() != StatusCancelled || c.Status() != StatusError {
		t.Fatalf("statuses: %q %q %q", a.Status(), b.Status(), c.Status())
	}
	if tr.Status() != StatusError {
		t.Fatalf("root status %q", tr.Status())
	}
	snap := tr.Snapshot()
	ev := snap.Root.Children[3]
	if ev.Name != "no-backend" || ev.DurMS != 0 {
		t.Fatalf("event snapshot: %+v", ev)
	}
}

// TestConcurrentSpans drives child creation and ending from many
// goroutines — the strip fan-out shape — under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := New("req-5", "label", nil)
	run := tr.Root().Child("label")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := run.Child("strip")
			sp.Annotate(fmt.Sprintf("s=%d", i))
			if i%3 == 0 {
				sp.Cancel()
			} else {
				sp.End()
			}
			_ = tr.ServerTiming() // render concurrently with writes
		}(i)
	}
	wg.Wait()
	run.End()
	tr.Finish()
	snap := tr.Snapshot()
	if n := len(snap.Root.Children[0].Children); n != 32 {
		t.Fatalf("%d strip spans, want 32", n)
	}
}

// TestRingEvictionDeterministic pins all three shelves' eviction
// order: recent and errored are FIFOs, slowest is duration-descending
// with stable ties (earlier arrival outranks an equally slow
// latecomer).
func TestRingEvictionDeterministic(t *testing.T) {
	r := NewRing(3, 2, 2)
	mk := func(id string, dur time.Duration, fail bool) *Trace {
		// New reads the clock once (root start), Finish once (root end),
		// so a step of dur yields exactly that duration.
		tr := New(id, "label", stubClock(dur))
		if fail {
			tr.Root().Fail("x")
		}
		tr.Finish()
		return tr
	}
	r.Observe(mk("a", 10*time.Millisecond, false))
	r.Observe(mk("b", 30*time.Millisecond, true))
	r.Observe(mk("c", 30*time.Millisecond, false))
	r.Observe(mk("d", 20*time.Millisecond, true))
	r.Observe(mk("e", 40*time.Millisecond, false))

	snap := r.Snapshot()
	ids := func(ts []TraceSnapshot) string {
		var out []string
		for _, t := range ts {
			out = append(out, t.ID)
		}
		return strings.Join(out, ",")
	}
	if got := ids(snap.Recent); got != "e,d,c" {
		t.Fatalf("recent = %s, want e,d,c", got)
	}
	// b and c tie at 30ms: b arrived first, keeps rank; e (40ms) bumps c.
	if got := ids(snap.Slowest); got != "e,b" {
		t.Fatalf("slowest = %s, want e,b", got)
	}
	if got := ids(snap.Errored); got != "d,b" {
		t.Fatalf("errored = %s, want d,b", got)
	}
}

func TestRingHandler(t *testing.T) {
	r := NewRing(0, 0, 0)
	tr := New("req-9", "label", stubClock(time.Millisecond))
	tr.Root().Child("decode").End()
	tr.Finish()
	r.Observe(tr)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?format=json", nil))
	var snap RingSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json: %v\n%s", err, rec.Body.String())
	}
	if len(snap.Recent) != 1 || snap.Recent[0].ID != "req-9" || snap.Recent[0].Root.Children[0].Name != "decode" {
		t.Fatalf("snapshot: %+v", snap)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{"req-9", "decode", "recent (1)"} {
		if !strings.Contains(body, want) {
			t.Fatalf("html missing %q:\n%s", want, body)
		}
	}
}

func TestHistogramRendering(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 2.5})
	for _, v := range []float64{0.05, 0.1, 0.3, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	h.WriteProm(&b, "x_seconds", `endpoint="label"`)
	want := `x_seconds_bucket{endpoint="label",le="0.1"} 2
x_seconds_bucket{endpoint="label",le="0.5"} 3
x_seconds_bucket{endpoint="label",le="2.5"} 3
x_seconds_bucket{endpoint="label",le="+Inf"} 5
x_seconds_sum{endpoint="label"} 103.45
x_seconds_count{endpoint="label"} 5
`
	if b.String() != want {
		t.Fatalf("render:\n got %q\nwant %q", b.String(), want)
	}
	var u strings.Builder
	NewHistogram(nil).WriteProm(&u, "y_seconds", "")
	if !strings.Contains(u.String(), `y_seconds_bucket{le="0.001"} 0`) || !strings.Contains(u.String(), "y_seconds_count 0") {
		t.Fatalf("unlabeled render:\n%s", u.String())
	}
}
