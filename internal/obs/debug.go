package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux is the private debug surface the daemons bind behind their
// -debugaddr flag: the net/http/pprof profile handlers plus the
// request-trace ring at /debug/requests. It is meant for a separate
// localhost-only listener — profiles and traces expose internals that
// must never ride the public serving port.
func DebugMux(traces http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/runtime", RuntimeHandler())
	if traces != nil {
		mux.Handle("/debug/requests", traces)
	}
	return mux
}
