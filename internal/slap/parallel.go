package slap

import (
	"fmt"
	"sync"
)

// The concurrent sweep engine runs every PE as its own goroutine with
// channel links, exploiting the pipeline parallelism of the simulated
// array on the host machine. Virtual time is unaffected: message ready
// times and the receivers' poll arithmetic are computed exactly as in
// the sequential engine, so both engines produce identical Metrics (the
// tests demand bit-equality). Only wall-clock time differs.
//
// Restrictions in parallel mode:
//   - Recv (the non-blocking single poll) is unsupported: knowing that
//     *nothing* is available at virtual time t would require clock
//     watermarks from the producer. Algorithm CC only ever blocks
//     (RecvWait), so nothing in this repository needs it.
//   - Phase bodies must not share mutable state across PEs (the engine
//     cannot check this; the race detector can).

// linkChanCap bounds in-flight records per link; producers block when a
// consumer falls this far behind, throttling only wall time.
const linkChanCap = 1 << 12

// EnableParallel switches RunSweep to the concurrent engine for
// subsequently executed phases.
func (mc *Machine) EnableParallel() { mc.parallel = true }

// runSweepParallel is RunSweep's concurrent twin. A panic in any PE
// goroutine is captured and re-raised on the caller's goroutine after
// the phase drains, preserving the sequential engine's failure behavior.
func (mc *Machine) runSweepParallel(name string, dir Direction, body func(pe *PE)) int64 {
	var phase PhaseMetrics
	phase.Name = name
	pes := make([]*PE, mc.n)
	panics := make([]any, mc.n)
	var prev chan timedMsg
	var wg sync.WaitGroup
	for pos := 0; pos < mc.n; pos++ {
		idx := pos
		if dir == RightToLeft {
			idx = mc.n - 1 - pos
		}
		pe := &PE{Index: idx, cost: mc.cost, inCh: prev}
		if pos < mc.n-1 {
			pe.outCh = make(chan timedMsg, linkChanCap)
			prev = pe.outCh
		}
		pes[pos] = pe
		wg.Add(1)
		go func(pos int, pe *PE) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[pos] = r
				}
				if pe.outCh != nil {
					close(pe.outCh)
				}
				// Drain the inbound link so an upstream producer never
				// blocks forever if this PE stopped early (e.g. after a
				// captured panic).
				if pe.inCh != nil {
					for range pe.inCh {
					}
				}
			}()
			body(pe)
		}(pos, pe)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	// Fold in array order so aggregation is deterministic.
	for _, pe := range pes {
		mc.foldPE(&phase, pe)
		if q := peakBacklogLog(pe.recvLog); q > phase.MaxQueue {
			phase.MaxQueue = q
		}
	}
	mc.metrics.add(phase)
	return phase.Makespan
}

// sendCh transmits on the channel link (parallel mode).
func (pe *PE) sendCh(m Msg) {
	w := m.words()
	d := w * pe.cost.WordSteps
	pe.clock += d
	pe.busy += d
	pe.sends++
	pe.words += w
	pe.outCh <- timedMsg{msg: m, ready: pe.clock, consumeAt: -1}
}

// recvWaitCh blocks on the channel link until a record arrives or the
// producer closes the stream, then applies the same poll arithmetic as
// the sequential engine.
func (pe *PE) recvWaitCh() (Msg, bool) {
	tm, ok := <-pe.inCh
	if !ok {
		return Msg{}, false
	}
	polls := int64(1)
	if diff := tm.ready - pe.clock; diff > pe.cost.QueueOp {
		polls = (diff + pe.cost.QueueOp - 1) / pe.cost.QueueOp
	}
	if pe.idleFn != nil {
		for i := int64(1); i < polls; i++ {
			pe.clock += pe.cost.QueueOp
			pe.idleTime += pe.cost.QueueOp
			pe.nilRecvs++
			pe.idleFn()
		}
	} else if polls > 1 {
		idle := (polls - 1) * pe.cost.QueueOp
		pe.clock += idle
		pe.idleTime += idle
		pe.nilRecvs += polls - 1
	}
	pe.clock += pe.cost.QueueOp
	pe.busy += pe.cost.QueueOp
	pe.recvs++
	tm.consumeAt = pe.clock
	pe.recvLog = append(pe.recvLog, tm)
	return tm.msg, true
}

// peakBacklogLog computes the peak link backlog from a consumer's log of
// (ready, consumeAt) pairs; both sequences are non-decreasing, exactly as
// in the sequential engine's peakBacklog.
func peakBacklogLog(log []timedMsg) int {
	peak, cur := 0, 0
	j := 0
	for i := range log {
		for j < i && log[j].consumeAt >= 0 && log[j].consumeAt < log[i].ready {
			cur--
			j++
		}
		cur++
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// errRecvParallel is the panic message for unsupported polls.
func errRecvParallel(idx int) string {
	return fmt.Sprintf("slap: PE %d: non-blocking Recv is unsupported in parallel mode (use RecvWait)", idx)
}
