package slap

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The concurrent sweep engine runs every PE as its own goroutine,
// exploiting the pipeline parallelism of the simulated array on the host
// machine. Virtual time is unaffected: message ready times and the
// receivers' poll arithmetic are computed exactly as in the sequential
// engine, so both engines produce identical Metrics (the tests demand
// bit-equality). Only wall-clock time differs.
//
// Links carry *batches* of records rather than single records: a
// producer accumulates up to batchSize records in a local buffer and
// publishes the whole buffer with one channel operation (flushing early
// when it is itself about to block, so the pipeline never stalls on an
// unpublished batch). This amortizes the per-record synchronization that
// made a channel-per-record engine slower than the sequential one, which
// defeated the engine's purpose.
//
// On a host without parallelism (GOMAXPROCS=1) goroutines cannot
// overlap, so any synchronization is pure overhead: the engine then
// delegates to the sequential executor, keeping the parallel-mode API
// restrictions below so programs behave identically everywhere.
//
// Restrictions in parallel mode:
//   - Recv (the non-blocking single poll) is unsupported: knowing that
//     *nothing* is available at virtual time t would require clock
//     watermarks from the producer. Algorithm CC only ever blocks
//     (RecvWait), so nothing in this repository needs it.
//   - Phase bodies must not share mutable state across PEs (the engine
//     cannot check this; the race detector can).

// DefaultLinkTuning returns the GOMAXPROCS-aware defaults for the
// batched links: batch is the number of records a producer accumulates
// before publishing, depth the number of published batches in flight
// per link (producers block when a consumer falls that far behind,
// throttling only wall time). With more cores, more PEs genuinely run
// at once, so deeper links pay off (the pipeline absorbs longer
// producer/consumer rate mismatches) and somewhat smaller batches cut
// the latency before a downstream PE can start; on few cores the
// larger batch amortizes synchronization that can't overlap anyway.
// Machine.SetLinkTuning (surfaced as Options.BatchSize/LinkDepth)
// overrides both without recompiling.
func DefaultLinkTuning() (batch, depth int) {
	p := runtime.GOMAXPROCS(0)
	batch, depth = 256, 8
	if p >= 32 {
		batch = 128
	}
	if p > 8 {
		depth = p
		if depth > 32 {
			depth = 32
		}
	}
	if p > runtime.NumCPU() {
		// Oversubscribed: more procs than cores means PEs time-share,
		// so a producer's batch can sit unconsumed for a full scheduler
		// slice before its consumer runs again. Smaller batches bound
		// that handoff latency. Measured in the PR 10 linktune sweep
		// (BENCH_pr10.json, core/linktune/*): batch 64 beat 256 by ~25%
		// at GOMAXPROCS 4 on a 1-core host, consistently across samples.
		batch = 64
	}
	return batch, depth
}

// EnableParallel switches RunSweep to the concurrent engine for
// subsequently executed phases.
func (mc *Machine) EnableParallel() { mc.parallel = true }

// forceConcurrent bypasses the single-core delegate below, so
// conformance tests can exercise the batched concurrent engine end to
// end regardless of the host's GOMAXPROCS.
var forceConcurrent atomic.Bool

// ForceConcurrentEngines toggles the test hook that makes parallel-mode
// sweeps use the concurrent engine even on single-core hosts. It exists
// for engine-equivalence tests; production callers never need it.
func ForceConcurrentEngines(on bool) { forceConcurrent.Store(on) }

// runSweepParallel picks the executor for a parallel-mode sweep.
func (mc *Machine) runSweepParallel(name string, dir Direction, body func(pe *PE)) int64 {
	if !mc.alwaysConcurrent && !forceConcurrent.Load() && runtime.GOMAXPROCS(0) == 1 {
		return mc.runSweepSeq(name, dir, body, true)
	}
	return mc.runSweepConcurrent(name, dir, body)
}

// runSweepConcurrent is RunSweep's concurrent twin. A panic in any PE
// goroutine is captured and re-raised on the caller's goroutine after
// the phase drains, preserving the sequential engine's failure behavior.
func (mc *Machine) runSweepConcurrent(name string, dir Direction, body func(pe *PE)) int64 {
	var phase PhaseMetrics
	phase.Name = name
	pes := make([]*PE, mc.n)
	panics := make([]any, mc.n)
	// pool recycles batch buffers machine-wide for the phase.
	pool := make(chan []timedMsg, 8*runtime.GOMAXPROCS(0))
	var prev chan []timedMsg
	var wg sync.WaitGroup
	for pos := 0; pos < mc.n; pos++ {
		idx := pos
		if dir == RightToLeft {
			idx = mc.n - 1 - pos
		}
		pe := &PE{Index: idx, cost: mc.cost, inCh: prev, pool: pool, noPoll: true, batchCap: mc.batchSize}
		if pos < mc.n-1 {
			pe.outCh = make(chan []timedMsg, mc.linkDepth)
			pe.outBuf = make([]timedMsg, 0, mc.batchSize)
			prev = pe.outCh
		}
		pes[pos] = pe
		wg.Add(1)
		go func(pos int, pe *PE) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[pos] = r
				}
				if pe.outCh != nil {
					pe.flushOut()
					close(pe.outCh)
				}
				// Drain the inbound link so an upstream producer never
				// blocks forever if this PE stopped early (e.g. after a
				// captured panic).
				if pe.inCh != nil {
					for b := range pe.inCh {
						pe.putBatch(b)
					}
				}
			}()
			body(pe)
		}(pos, pe)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	// Fold in array order so aggregation is deterministic.
	for _, pe := range pes {
		mc.foldPE(&phase, pe)
		if pe.maxBacklog > phase.MaxQueue {
			phase.MaxQueue = pe.maxBacklog
		}
	}
	mc.metrics.add(phase)
	return phase.Makespan
}

// getBatch returns an empty batch buffer, recycling from the pool.
func (pe *PE) getBatch() []timedMsg {
	select {
	case b := <-pe.pool:
		return b[:0]
	default:
		return make([]timedMsg, 0, pe.batchCap)
	}
}

// putBatch offers a spent batch buffer back to the pool.
func (pe *PE) putBatch(b []timedMsg) {
	select {
	case pe.pool <- b:
	default:
	}
}

// flushOut publishes the producer's pending batch, if any.
func (pe *PE) flushOut() {
	if len(pe.outBuf) == 0 {
		return
	}
	pe.outCh <- pe.outBuf
	pe.outBuf = pe.getBatch()
}

// sendCh transmits on the batched link (concurrent engine).
func (pe *PE) sendCh(m Msg) {
	w := m.words()
	d := w * pe.cost.WordSteps
	pe.clock += d
	pe.busy += d
	pe.sends++
	pe.words += w
	pe.outBuf = append(pe.outBuf, timedMsg{msg: m, ready: pe.clock, consumeAt: -1})
	if len(pe.outBuf) >= pe.batchCap {
		pe.flushOut()
	}
}

// recvWaitCh blocks on the batched link until a record arrives or the
// producer closes the stream, then applies the same poll arithmetic as
// the sequential engine. Before blocking it publishes its own pending
// batch so downstream PEs keep working through the stall.
func (pe *PE) recvWaitCh() (Msg, bool) {
	if pe.inPos == len(pe.inBuf) {
		if pe.inBuf != nil {
			pe.putBatch(pe.inBuf)
			pe.inBuf = nil
		}
		var b []timedMsg
		var ok bool
		select {
		case b, ok = <-pe.inCh:
		default:
			if pe.outCh != nil {
				pe.flushOut()
			}
			b, ok = <-pe.inCh
		}
		if !ok {
			return Msg{}, false
		}
		pe.inBuf, pe.inPos = b, 0
	}
	tm := &pe.inBuf[pe.inPos]
	pe.inPos++
	polls := int64(1)
	if diff := tm.ready - pe.clock; diff > pe.cost.QueueOp {
		polls = (diff + pe.cost.QueueOp - 1) / pe.cost.QueueOp
	}
	if pe.idleFn != nil {
		for i := int64(1); i < polls; i++ {
			pe.clock += pe.cost.QueueOp
			pe.idleTime += pe.cost.QueueOp
			pe.nilRecvs++
			pe.idleFn()
		}
	} else if polls > 1 {
		idle := (polls - 1) * pe.cost.QueueOp
		pe.clock += idle
		pe.idleTime += idle
		pe.nilRecvs += polls - 1
	}
	pe.clock += pe.cost.QueueOp
	pe.busy += pe.cost.QueueOp
	pe.recvs++
	pe.noteBacklog(tm.ready, pe.clock)
	return tm.msg, true
}

// noteBacklog streams the peak-backlog computation of the sequential
// engine's peakBacklog: pendCons holds the consume times of previously
// consumed records not yet retired; a record consumed strictly before the
// new record's ready time had left the queue by the time the new record
// entered it. Ready and consume times are both non-decreasing, so the
// window only moves forward and the work is O(1) amortized.
func (pe *PE) noteBacklog(ready, consumeAt int64) {
	for pe.pendHead < len(pe.pendCons) && pe.pendCons[pe.pendHead] < ready {
		pe.pendHead++
	}
	if cur := len(pe.pendCons) - pe.pendHead + 1; cur > pe.maxBacklog {
		pe.maxBacklog = cur
	}
	if pe.pendHead > 32 && 2*pe.pendHead >= len(pe.pendCons) {
		n := copy(pe.pendCons, pe.pendCons[pe.pendHead:])
		pe.pendCons = pe.pendCons[:n]
		pe.pendHead = 0
	}
	pe.pendCons = append(pe.pendCons, consumeAt)
}

// errRecvParallel is the panic message for unsupported polls.
func errRecvParallel(idx int) string {
	return fmt.Sprintf("slap: PE %d: non-blocking Recv is unsupported in parallel mode (use RecvWait)", idx)
}
