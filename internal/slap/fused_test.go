package slap

import (
	"reflect"
	"testing"
)

// fusedProgram is a three-subphase program with the dependency shape of
// Algorithm CC's passes: a sweep that streams records forward, a local
// phase reading per-PE state, and a second sweep over the state the
// first two produced.
func fusedProgram(n int) (state []int64, subs []SubPhase) {
	state = make([]int64, n)
	subs = []SubPhase{
		{Name: "sweep1", Body: func(pe *PE) {
			pe.Tick(int64(pe.Index) + 1)
			if pe.HasIn() {
				for {
					m, ok := pe.RecvWait()
					if !ok || m.Kind == 0 {
						break
					}
					state[pe.Index] += int64(m.A)
				}
			}
			if pe.HasOut() {
				pe.Send(Msg{Kind: 1, A: int32(pe.Index), Words: 2})
				pe.Send(Msg{Kind: 0})
			}
		}},
		{Name: "local", Local: true, Body: func(pe *PE) {
			pe.Tick(state[pe.Index] + 3)
			pe.DeclareMemory(state[pe.Index])
		}},
		{Name: "sweep2", Body: func(pe *PE) {
			if pe.HasIn() {
				for {
					m, ok := pe.RecvWait()
					if !ok || m.Kind == 0 {
						break
					}
					state[pe.Index] += int64(m.B)
				}
			}
			pe.Tick(2)
			if pe.HasOut() {
				pe.Send(Msg{Kind: 2, B: int32(state[pe.Index])})
				pe.Send(Msg{Kind: 0})
			}
		}},
	}
	return state, subs
}

// TestRunFusedMatchesUnfused: the fused walk must produce bit-identical
// Metrics and per-PE state to the per-phase reference executor, in both
// directions, including the degenerate sizes.
func TestRunFusedMatchesUnfused(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 32} {
		for _, dir := range []Direction{LeftToRight, RightToLeft} {
			ref := NewMachine(n, Unit())
			ref.DisableFusion()
			refState, refSubs := fusedProgram(n)
			ref.RunFused(dir, nil, refSubs)

			fused := NewMachine(n, Unit())
			if !fused.FusedSweeps() {
				t.Fatal("fusion unexpectedly off")
			}
			fusedState, fusedSubs := fusedProgram(n)
			fused.RunFused(dir, nil, fusedSubs)

			if !reflect.DeepEqual(refState, fusedState) {
				t.Fatalf("n=%d dir=%v: program state diverged: %v vs %v", n, dir, refState, fusedState)
			}
			if !reflect.DeepEqual(ref.Metrics(), fused.Metrics()) {
				t.Fatalf("n=%d dir=%v: metrics diverged:\nref   %+v\nfused %+v", n, dir, ref.Metrics(), fused.Metrics())
			}
		}
	}
}

// TestRunFusedPrep: prep runs once per position, in walk order, before
// the position's bodies; the unfused delegate runs every prep up front.
func TestRunFusedPrep(t *testing.T) {
	const n = 5
	for _, fuseOff := range []bool{false, true} {
		mc := NewMachine(n, Unit())
		if fuseOff {
			mc.DisableFusion()
		}
		var prepped []int
		var seen []int
		mc.RunFused(RightToLeft, func(idx int) { prepped = append(prepped, idx) }, []SubPhase{
			{Name: "check", Local: true, Body: func(pe *PE) {
				seen = append(seen, pe.Index)
				for _, p := range prepped {
					if p == pe.Index {
						return
					}
				}
				t.Fatalf("fuseOff=%v: PE %d ran before its prep (prepped %v)", fuseOff, pe.Index, prepped)
			}},
		})
		if len(prepped) != n {
			t.Fatalf("fuseOff=%v: %d preps, want %d", fuseOff, len(prepped), n)
		}
		want := []int{4, 3, 2, 1, 0}
		if !reflect.DeepEqual(prepped, want) {
			t.Fatalf("fuseOff=%v: prep order %v, want %v", fuseOff, prepped, want)
		}
		// Local subphases always execute ascending (RunLocal's order) in
		// the unfused delegate; the fused walk visits in dir order.
		if fuseOff && !reflect.DeepEqual(seen, []int{0, 1, 2, 3, 4}) {
			t.Fatalf("delegate body order %v", seen)
		}
	}
}

// TestRunFusedParallelDelegates: in parallel mode RunFused must not
// fuse (the concurrent engine owns the sweep), and metrics must still
// match the sequential fused run.
func TestRunFusedParallelDelegates(t *testing.T) {
	ForceConcurrentEngines(true)
	defer ForceConcurrentEngines(false)
	const n = 9
	seq := NewMachine(n, Unit())
	seqState, seqSubs := fusedProgram(n)
	seq.RunFused(LeftToRight, nil, seqSubs)

	par := NewMachine(n, Unit())
	par.EnableParallel()
	if par.FusedSweeps() {
		t.Fatal("parallel machine claims fused sweeps")
	}
	parState, parSubs := fusedProgram(n)
	par.RunFused(LeftToRight, nil, parSubs)

	if !reflect.DeepEqual(seqState, parState) {
		t.Fatalf("state diverged: %v vs %v", seqState, parState)
	}
	if !reflect.DeepEqual(seq.Metrics(), par.Metrics()) {
		t.Fatalf("metrics diverged:\nseq %+v\npar %+v", seq.Metrics(), par.Metrics())
	}
}

// TestSetLinkTuning: every tuning produces identical simulated metrics
// on the concurrent engine; zero keeps the current values.
func TestSetLinkTuning(t *testing.T) {
	ForceConcurrentEngines(true)
	defer ForceConcurrentEngines(false)
	run := func(batch, depth int) Metrics {
		mc := NewMachine(6, Unit())
		mc.EnableParallel()
		mc.SetLinkTuning(batch, depth)
		_, subs := fusedProgram(6)
		mc.RunFused(LeftToRight, nil, subs)
		return mc.Metrics()
	}
	base := run(0, 0)
	for _, tc := range [][2]int{{1, 1}, {3, 2}, {1024, 64}} {
		if got := run(tc[0], tc[1]); !reflect.DeepEqual(base, got) {
			t.Fatalf("tuning %v changed metrics:\nbase %+v\ngot  %+v", tc, base, got)
		}
	}
	mc := NewMachine(2, Unit())
	b0, d0 := mc.batchSize, mc.linkDepth
	mc.SetLinkTuning(0, -5)
	if mc.batchSize != b0 || mc.linkDepth != d0 {
		t.Fatal("zero/negative tuning must keep current values")
	}
}
