package slap

import (
	"testing"
	"testing/quick"
)

// pipelineProgram is a sweep body usable under both engines: each PE
// does some local work per record and forwards it until the last PE.
func pipelineProgram(t *testing.T, records int, work int64) func(pe *PE) {
	return func(pe *PE) {
		if !pe.HasIn() {
			if !pe.HasOut() {
				pe.Tick(work) // single-PE machine: purely local
				return
			}
			for i := 0; i < records; i++ {
				pe.Tick(work)
				pe.Send(Msg{Kind: 1, A: int32(i), Words: 2})
			}
			pe.Send(Msg{Kind: 0}) // eos
			return
		}
		for {
			msg, ok := pe.RecvWait()
			if !ok {
				t.Error("stream ended without eos")
				return
			}
			if msg.Kind == 0 {
				if pe.HasOut() {
					pe.Send(msg)
				}
				return
			}
			pe.Tick(work)
			if pe.HasOut() {
				pe.Send(msg)
			}
		}
	}
}

func runBothEngines(t *testing.T, n, records int, work int64, dir Direction) (seq, par Metrics) {
	t.Helper()
	ms := NewMachine(n, Unit())
	ms.RunSweep("p", dir, pipelineProgram(t, records, work))
	mp := NewMachine(n, Unit())
	mp.EnableParallel()
	// Force the concurrent engine so these tests exercise it even on a
	// single-core host, where EnableParallel alone would delegate to the
	// sequential executor.
	mp.alwaysConcurrent = true
	mp.RunSweep("p", dir, pipelineProgram(t, records, work))
	return ms.Metrics(), mp.Metrics()
}

func metricsEqual(a, b Metrics) bool {
	if a.Time != b.Time || a.Sends != b.Sends || a.Words != b.Words || a.MaxQueue != b.MaxQueue {
		return false
	}
	if len(a.Phases) != len(b.Phases) {
		return false
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa.Makespan != pb.Makespan || pa.Busy != pb.Busy || pa.Idle != pb.Idle ||
			pa.Sends != pb.Sends || pa.Words != pb.Words || pa.NilRecvs != pb.NilRecvs ||
			pa.MaxQueue != pb.MaxQueue {
			return false
		}
	}
	return true
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		n, records int
		work       int64
		dir        Direction
	}{
		{2, 1, 0, LeftToRight},
		{8, 5, 3, LeftToRight},
		{8, 5, 3, RightToLeft},
		{64, 40, 1, LeftToRight},
		{17, 9, 7, RightToLeft},
		{1, 0, 5, LeftToRight},
	} {
		seq, par := runBothEngines(t, tc.n, tc.records, tc.work, tc.dir)
		if !metricsEqual(seq, par) {
			t.Errorf("n=%d records=%d work=%d %v:\nseq %+v\npar %+v",
				tc.n, tc.records, tc.work, tc.dir, seq, par)
		}
	}
}

func TestParallelEngineMatchesSequentialQuick(t *testing.T) {
	f := func(np, rp, wp uint8, right bool) bool {
		n := int(np%20) + 1
		records := int(rp % 30)
		work := int64(wp % 10)
		dir := LeftToRight
		if right {
			dir = RightToLeft
		}
		seq, par := runBothEngines(t, n, records, work, dir)
		return metricsEqual(seq, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelIdleWork(t *testing.T) {
	// The idle hook must run the same number of times under both engines.
	counts := [2]int{}
	for mode := 0; mode < 2; mode++ {
		m := NewMachine(2, Unit())
		if mode == 1 {
			m.EnableParallel()
			m.alwaysConcurrent = true
		}
		calls := 0
		m.RunSweep("idle", LeftToRight, func(pe *PE) {
			if !pe.HasIn() {
				pe.Tick(25)
				pe.Send(Msg{})
				return
			}
			pe.OnIdle(func() { calls++ })
			if _, ok := pe.RecvWait(); !ok {
				t.Fatal("want record")
			}
		})
		counts[mode] = calls
	}
	if counts[0] != counts[1] || counts[0] == 0 {
		t.Fatalf("idle calls differ: seq=%d par=%d", counts[0], counts[1])
	}
}

func TestParallelRecvPanics(t *testing.T) {
	// The poll restriction must hold on both parallel-mode executors: the
	// concurrent engine and the single-core sequential delegate.
	for _, force := range []bool{true, false} {
		func() {
			m := NewMachine(2, Unit())
			m.EnableParallel()
			m.alwaysConcurrent = force
			defer func() {
				if recover() == nil {
					t.Fatalf("Recv in parallel mode should panic (forceConcurrent=%v)", force)
				}
			}()
			m.RunSweep("bad", LeftToRight, func(pe *PE) {
				if !pe.HasIn() {
					pe.Send(Msg{})
					return
				}
				pe.Recv()
			})
		}()
	}
}

// TestParallelDelegateMatchesSequential pins the single-core fallback:
// with the concurrent engine not forced, a parallel-mode sweep must
// produce the same metrics as the plain sequential engine regardless of
// which executor GOMAXPROCS selects.
func TestParallelDelegateMatchesSequential(t *testing.T) {
	ms := NewMachine(16, Unit())
	ms.RunSweep("p", LeftToRight, pipelineProgram(t, 20, 2))
	mp := NewMachine(16, Unit())
	mp.EnableParallel()
	mp.RunSweep("p", LeftToRight, pipelineProgram(t, 20, 2))
	if !metricsEqual(ms.Metrics(), mp.Metrics()) {
		t.Fatalf("delegated engine diverges:\nseq %+v\npar %+v", ms.Metrics(), mp.Metrics())
	}
}

// TestBatchedEngineLargeStream pushes well past one batch per link so
// batch publication, early flush, and buffer recycling all engage.
func TestBatchedEngineLargeStream(t *testing.T) {
	const n, records = 5, 3000 // records >> batchSize
	seq, par := runBothEngines(t, n, records, 1, LeftToRight)
	if !metricsEqual(seq, par) {
		t.Fatalf("batched engine diverges on large stream:\nseq %+v\npar %+v", seq, par)
	}
	if seq.Sends == 0 {
		t.Fatal("stream should carry records")
	}
}

func TestParallelRunLocalUnaffected(t *testing.T) {
	m := NewMachine(4, Unit())
	m.EnableParallel()
	span := m.RunLocal("w", func(pe *PE) { pe.Tick(int64(pe.Index)) })
	if span != 3 {
		t.Fatalf("RunLocal should behave identically, got %d", span)
	}
}
