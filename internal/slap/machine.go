package slap

import "fmt"

// Msg is one record traveling over a link. Kind is defined by the program
// (the simulator only moves records); A and B are the payload. Words is
// the record's width in machine words (0 means 1): Algorithm CC sends row
// pairs (2 words) during the union–find pass and (label, row) pairs
// during the label pass.
type Msg struct {
	Kind  uint8
	A, B  int32
	Words uint8
}

// words returns the width in words, at least 1.
func (m Msg) words() int64 {
	if m.Words == 0 {
		return 1
	}
	return int64(m.Words)
}

type timedMsg struct {
	msg       Msg
	ready     int64 // receiver may consume at clock ≥ ready
	consumeAt int64 // set on consumption; -1 while pending
}

// link is a one-directional FIFO between adjacent PEs.
type link struct {
	msgs     []timedMsg
	consumed int
}

// Direction orients a sweep.
type Direction int

// Sweep directions.
const (
	// LeftToRight runs PE 0 first; PE i receives from PE i-1.
	LeftToRight Direction = iota
	// RightToLeft runs PE n-1 first; PE i receives from PE i+1.
	RightToLeft
)

func (d Direction) String() string {
	if d == LeftToRight {
		return "left-to-right"
	}
	return "right-to-left"
}

// PE is one processing element's view during a phase: a virtual clock,
// an inbound link from the previous PE of the sweep and an outbound link
// toward the next. Programs call Tick for local work, Send/Recv/RecvWait
// for communication, and may install idle work with OnIdle. A PE is only
// valid for the duration of the phase body it is passed to.
type PE struct {
	// Index is the PE's position, 0..n-1 (the column it holds).
	Index int

	cost   CostModel
	clock  int64
	in     *link
	out    *link
	idleFn func()

	// noPoll marks parallel-mode execution, where the non-blocking Recv
	// poll is unsupported (see parallel.go) — also on the sequential
	// executor when it stands in for the concurrent engine, so programs
	// behave identically on every host.
	noPoll bool

	// Batched link endpoints of the concurrent engine (see parallel.go);
	// nil in sequential mode.
	inCh     chan []timedMsg
	outCh    chan []timedMsg
	inBuf    []timedMsg
	inPos    int
	outBuf   []timedMsg
	pool     chan []timedMsg
	batchCap int

	// Streaming peak-backlog tracker (consumer side, concurrent engine):
	// consume times of not-yet-retired records, a sliding window.
	pendCons   []int64
	pendHead   int
	maxBacklog int

	busy     int64
	idleTime int64
	sends    int64
	words    int64
	recvs    int64
	nilRecvs int64
	memWords int64
}

// Now returns the PE's clock within the current phase.
func (pe *PE) Now() int64 { return pe.clock }

// Tick charges units of local computation. (The panic is a constant so
// Tick stays within the inlining budget of the simulation's hot loops.)
func (pe *PE) Tick(units int64) {
	if units < 0 {
		panic("slap: negative tick")
	}
	d := units * pe.cost.LocalStep
	pe.clock += d
	pe.busy += d
}

// DeclareMemory records that the program uses the given number of words
// of PE-local memory; the machine tracks the maximum per PE so tests can
// check the architecture's Θ(n) memory budget.
func (pe *PE) DeclareMemory(words int64) {
	if words > pe.memWords {
		pe.memWords = words
	}
}

// HasIn reports whether the PE has an inbound link (false for the first
// PE of a sweep, which the paper's pseudocode special-cases as "if i = 0
// then incoming ← eos").
func (pe *PE) HasIn() bool { return pe.in != nil || pe.inCh != nil }

// HasOut reports whether the PE has an outbound link (false for the last
// PE of a sweep).
func (pe *PE) HasOut() bool { return pe.out != nil || pe.outCh != nil }

// Send transmits m to the next PE of the sweep. Transmission occupies the
// sender for Words×WordSteps, and the record becomes available to the
// receiver when the last word has crossed.
func (pe *PE) Send(m Msg) {
	if pe.outCh != nil {
		pe.sendCh(m)
		return
	}
	if pe.out == nil {
		pe.sendNoLink()
	}
	w := m.words()
	d := w * pe.cost.WordSteps
	pe.clock += d
	pe.busy += d
	pe.sends++
	pe.words += w
	pe.out.msgs = append(pe.out.msgs, timedMsg{msg: m, ready: pe.clock, consumeAt: -1})
}

func (pe *PE) sendNoLink() {
	panic(fmt.Sprintf("slap: PE %d has no outbound link", pe.Index))
}

// Recv performs one dequeue attempt (one QueueOp charge): it returns the
// earliest unconsumed inbound record whose ready time has passed, or
// ok=false when the queue is empty at this instant — the paper's
// "Dequeue returns nil if empty queue".
func (pe *PE) Recv() (m Msg, ok bool) {
	if pe.noPoll {
		panic(errRecvParallel(pe.Index))
	}
	pe.clock += pe.cost.QueueOp
	pe.busy += pe.cost.QueueOp
	if pe.in == nil || pe.in.consumed == len(pe.in.msgs) {
		pe.nilRecvs++
		return Msg{}, false
	}
	next := &pe.in.msgs[pe.in.consumed]
	if next.ready > pe.clock {
		pe.nilRecvs++
		return Msg{}, false
	}
	pe.in.consumed++
	next.consumeAt = pe.clock
	pe.recvs++
	pe.noteBacklog(next.ready, pe.clock)
	return next.msg, true
}

// RecvWait polls until an inbound record is available and consumes it.
// Polling costs one QueueOp per cycle; cycles with nothing to consume are
// either spent on the installed idle function (one call per idle cycle)
// or fast-forwarded, with identical resulting clocks. It returns ok=false
// only when the sender has terminated without ever sending another
// record — for Algorithm CC, which closes every stream with an eos
// record, that indicates a protocol violation.
func (pe *PE) RecvWait() (m Msg, ok bool) {
	if pe.inCh != nil {
		return pe.recvWaitCh()
	}
	if pe.in == nil || pe.in.consumed == len(pe.in.msgs) {
		return Msg{}, false
	}
	next := &pe.in.msgs[pe.in.consumed]
	// Polls complete at clock+Q, clock+2Q, …; the successful one is the
	// first completing at or after next.ready. (The unit-cost model is
	// the overwhelmingly common case; skip its division.)
	polls := int64(1)
	if diff := next.ready - pe.clock; diff > pe.cost.QueueOp {
		if pe.cost.QueueOp == 1 {
			polls = diff
		} else {
			polls = (diff + pe.cost.QueueOp - 1) / pe.cost.QueueOp
		}
	}
	if pe.idleFn != nil {
		for i := int64(1); i < polls; i++ {
			pe.clock += pe.cost.QueueOp
			pe.idleTime += pe.cost.QueueOp
			pe.nilRecvs++
			pe.idleFn()
		}
	} else if polls > 1 {
		idle := (polls - 1) * pe.cost.QueueOp
		pe.clock += idle
		pe.idleTime += idle
		pe.nilRecvs += polls - 1
	}
	pe.clock += pe.cost.QueueOp
	pe.busy += pe.cost.QueueOp
	pe.in.consumed++
	next.consumeAt = pe.clock
	pe.recvs++
	pe.noteBacklog(next.ready, pe.clock)
	return next.msg, true
}

// OnIdle installs fn as the PE's idle-cycle work (§3: path compression
// while waiting on the left neighbor). fn must perform O(1) work per
// call; it runs once per otherwise-idle cycle inside RecvWait.
func (pe *PE) OnIdle(fn func()) { pe.idleFn = fn }

// PhaseMetrics describes one executed phase.
type PhaseMetrics struct {
	Name     string
	Makespan int64 // max PE completion time
	Busy     int64 // Σ busy time over PEs
	Idle     int64 // Σ idle time over PEs
	Sends    int64 // records transmitted
	Words    int64 // words transmitted
	NilRecvs int64 // empty dequeue attempts
	MaxQueue int   // peak backlog (sent, not yet consumed) on any link
	// PerPE holds each PE's completion time, populated only when the
	// machine's profile mode is on: the systolic wavefront of a sweep is
	// directly visible as the (roughly linear) growth across the array.
	PerPE []int64
}

// Metrics aggregates a machine run.
type Metrics struct {
	N        int
	Phases   []PhaseMetrics
	Time     int64 // Σ phase makespans (pipelined composition: critical path)
	Sends    int64
	Words    int64
	MaxQueue int
	PEMemory int64 // max declared per-PE memory in words

	// Pipelined-composition state (see MergePipelined in compose.go): the
	// completion time of the last merged strip's input stage, and the
	// start/completion times of its compute stage. Zero outside pipelined
	// composition.
	pipeInputEnd   int64
	pipeComputeBeg int64
	pipeComputeEnd int64
}

// add folds a phase into the totals.
func (m *Metrics) add(p PhaseMetrics) {
	m.Phases = append(m.Phases, p)
	m.Time += p.Makespan
	m.Sends += p.Sends
	m.Words += p.Words
	if p.MaxQueue > m.MaxQueue {
		m.MaxQueue = p.MaxQueue
	}
}

// Phase returns the metrics of the named phase and whether it exists.
func (m *Metrics) Phase(name string) (PhaseMetrics, bool) {
	for _, p := range m.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseMetrics{}, false
}

// Machine is an n-PE SLAP. Programs run against it phase by phase; it
// accumulates Metrics. A Machine can be reused across runs with Reset,
// in which case its internal link and PE scratch memory is recycled —
// the hot path of a reused machine allocates nothing.
type Machine struct {
	n        int
	cost     CostModel
	metrics  Metrics
	profile  bool
	parallel bool
	// alwaysConcurrent forces the concurrent sweep engine even when the
	// host has no parallelism (tests exercise the engine with it).
	alwaysConcurrent bool
	// fuseOff makes RunFused run its subphases as separate per-phase
	// walks (the reference executor; see fused.go).
	fuseOff bool
	// batchSize/linkDepth tune the concurrent engine's batched links
	// (see parallel.go); Reset restores the GOMAXPROCS-aware defaults.
	batchSize int
	linkDepth int

	// Arenas reused across phases and runs.
	scratchPE PE
	freeLinks []*link
	pendBuf   []int64 // backlog-tracker buffer handed to the scratch PE
	fusedSubs []fusedSub
}

// EnableProfile turns on per-PE completion-time recording (PhaseMetrics.
// PerPE) for subsequently executed phases.
func (mc *Machine) EnableProfile() { mc.profile = true }

// NewMachine returns an n-PE machine under the given cost model.
func NewMachine(n int, cost CostModel) *Machine {
	mc := &Machine{}
	mc.Reset(n, cost)
	return mc
}

// Reset re-initializes the machine to n PEs under the given cost model,
// clearing accumulated metrics and mode flags while keeping internal
// buffers for reuse. A reset machine is observationally identical to a
// fresh NewMachine(n, cost).
func (mc *Machine) Reset(n int, cost CostModel) {
	if n < 0 {
		panic(fmt.Sprintf("slap: negative machine size %d", n))
	}
	if err := cost.Validate(); err != nil {
		panic(err)
	}
	mc.n = n
	mc.cost = cost
	mc.profile = false
	mc.parallel = false
	mc.fuseOff = false
	mc.batchSize, mc.linkDepth = DefaultLinkTuning()
	mc.metrics = Metrics{N: n, Phases: mc.metrics.Phases[:0]}
}

// SetLinkTuning overrides the concurrent engine's batched-link
// parameters for subsequently executed phases: batch is the number of
// records a producer accumulates before publishing, depth the number of
// published batches in flight per link. Zero (or negative) keeps the
// current value. Both affect only host-side wall time and memory; the
// simulated metrics are identical at every setting (tests enforce it).
func (mc *Machine) SetLinkTuning(batch, depth int) {
	if batch > 0 {
		mc.batchSize = batch
	}
	if depth > 0 {
		mc.linkDepth = depth
	}
}

// N returns the number of PEs.
func (mc *Machine) N() int { return mc.n }

// Cost returns the machine's cost model.
func (mc *Machine) Cost() CostModel { return mc.cost }

// PhaseCount returns how many phases the machine has executed since the
// last Reset.
func (mc *Machine) PhaseCount() int { return len(mc.metrics.Phases) }

// PhaseMetricsAt returns the i-th executed phase by value, with any
// per-PE profile dropped — the allocation-free read for composition
// code that folds a phase and moves on. Metrics() remains the safe
// independent full copy.
func (mc *Machine) PhaseMetricsAt(i int) PhaseMetrics {
	p := mc.metrics.Phases[i]
	p.PerPE = nil
	return p
}

// PEMemoryWords returns the maximum per-PE memory declared so far.
func (mc *Machine) PEMemoryWords() int64 { return mc.metrics.PEMemory }

// Metrics returns the metrics accumulated so far. The returned value is
// an independent copy: it stays valid after the machine is reset.
func (mc *Machine) Metrics() Metrics {
	m := mc.metrics
	m.Phases = append([]PhaseMetrics(nil), mc.metrics.Phases...)
	for i := range m.Phases {
		if p := m.Phases[i].PerPE; p != nil {
			m.Phases[i].PerPE = append([]int64(nil), p...)
		}
	}
	return m
}

// acquireLink returns an empty link, recycling a released one if any.
func (mc *Machine) acquireLink() *link {
	if k := len(mc.freeLinks); k > 0 {
		l := mc.freeLinks[k-1]
		mc.freeLinks = mc.freeLinks[:k-1]
		l.msgs = l.msgs[:0]
		l.consumed = 0
		return l
	}
	return &link{}
}

// releaseLink returns a fully folded link to the arena.
func (mc *Machine) releaseLink(l *link) { mc.freeLinks = append(mc.freeLinks, l) }

// ChargeGlobal records a phase that occupies every PE for the given
// number of steps — used for the image input phase (one row per step,
// Figure 1) and by coarse-grained baselines.
func (mc *Machine) ChargeGlobal(name string, steps int64) {
	if steps < 0 {
		panic(fmt.Sprintf("slap: negative global charge %d", steps))
	}
	mc.metrics.add(PhaseMetrics{
		Name:     name,
		Makespan: steps * mc.cost.LocalStep,
		Busy:     steps * mc.cost.LocalStep * int64(mc.n),
	})
}

// RunLocal executes body once per PE with no links: a purely local phase.
// The phase makespan is the maximum PE time.
func (mc *Machine) RunLocal(name string, body func(pe *PE)) int64 {
	var phase PhaseMetrics
	phase.Name = name
	pe := &mc.scratchPE
	for i := 0; i < mc.n; i++ {
		*pe = PE{Index: i, cost: mc.cost}
		body(pe)
		mc.foldPE(&phase, pe)
	}
	mc.metrics.add(phase)
	return phase.Makespan
}

// RunSweep executes body once per PE in the order of dir, wiring each PE's
// inbound link to its predecessor's outbound link. Communication must be
// unidirectional (enforced by construction: there are no backward links).
// The phase makespan is the maximum PE completion time.
func (mc *Machine) RunSweep(name string, dir Direction, body func(pe *PE)) int64 {
	if mc.parallel {
		return mc.runSweepParallel(name, dir, body)
	}
	return mc.runSweepSeq(name, dir, body, false)
}

// runSweepSeq executes the sweep on the calling goroutine in topological
// order. At most two link buffers are ever live — the one the current PE
// consumes and the one it produces; a link is folded into the queue
// statistics and recycled as soon as its consumer finishes, so a sweep
// over a reused machine allocates nothing.
func (mc *Machine) runSweepSeq(name string, dir Direction, body func(pe *PE), noPoll bool) int64 {
	var phase PhaseMetrics
	phase.Name = name
	var in, out *link
	pe := &mc.scratchPE
	for pos := 0; pos < mc.n; pos++ {
		idx := pos
		if dir == RightToLeft {
			idx = mc.n - 1 - pos
		}
		out = nil
		if pos < mc.n-1 {
			out = mc.acquireLink()
		}
		*pe = PE{Index: idx, cost: mc.cost, in: in, out: out, noPoll: noPoll, pendCons: mc.pendBuf[:0]}
		body(pe)
		mc.foldPE(&phase, pe)
		mc.pendBuf = pe.pendCons[:0]
		if in != nil {
			// The consumer streamed its own peak backlog; a full link
			// rescan is only needed when records were left unconsumed
			// (impossible for the eos-terminated programs in this
			// repository, but legal for the machine).
			q := pe.maxBacklog
			if in.consumed != len(in.msgs) {
				q = peakBacklog(in)
			}
			if q > phase.MaxQueue {
				phase.MaxQueue = q
			}
			mc.releaseLink(in)
		}
		in = out
	}
	mc.metrics.add(phase)
	return phase.Makespan
}

// foldPE accumulates one PE's counters into the phase and machine totals.
func (mc *Machine) foldPE(phase *PhaseMetrics, pe *PE) {
	if mc.profile {
		if phase.PerPE == nil {
			phase.PerPE = make([]int64, mc.n)
		}
		phase.PerPE[pe.Index] = pe.clock
	}
	if pe.clock > phase.Makespan {
		phase.Makespan = pe.clock
	}
	phase.Busy += pe.busy
	phase.Idle += pe.idleTime
	phase.Sends += pe.sends
	phase.Words += pe.words
	phase.NilRecvs += pe.nilRecvs
	if pe.memWords > mc.metrics.PEMemory {
		mc.metrics.PEMemory = pe.memWords
	}
}

// peakBacklog computes the maximum number of records simultaneously
// in flight or queued on l. Ready times and consume times are both
// non-decreasing, so a two-pointer sweep suffices.
func peakBacklog(l *link) int {
	peak, cur := 0, 0
	j := 0
	for i := range l.msgs {
		// Message i enters the queue at its ready time; first retire
		// every message consumed strictly before that.
		for j < i {
			c := l.msgs[j].consumeAt
			if c >= 0 && c < l.msgs[i].ready {
				cur--
				j++
				continue
			}
			break
		}
		cur++
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
