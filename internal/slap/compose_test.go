package slap

import "testing"

// TestWordBitsForDims: the word width for a w×h image is ⌈lg max(2,
// 2·w·h)⌉ — independent of the aspect ratio, and equal to WordBitsFor on
// the square diagonal. The 1024×16 row is the motivating over-charge:
// maxDim-based sizing billed it 21-bit words where 15 suffice.
func TestWordBitsForDims(t *testing.T) {
	cases := []struct {
		w, h, want int
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{1, 2, 2},
		{2, 2, 3},
		{1024, 16, 15}, // 2·w·h = 32768 = 2^15
		{16, 1024, 15},
		{1024, 1024, 21},
		{3, 1000, 13}, // 6000 ≤ 2^13
	}
	for _, tc := range cases {
		if got := WordBitsForDims(tc.w, tc.h); got != tc.want {
			t.Errorf("WordBitsForDims(%d, %d): want %d, got %d", tc.w, tc.h, tc.want, got)
		}
	}
	for _, n := range []int{0, 1, 2, 7, 64, 1000, 4096} {
		if WordBitsFor(n) != WordBitsForDims(n, n) {
			t.Errorf("WordBitsFor(%d) != WordBitsForDims(%d, %d)", n, n, n)
		}
	}
}

// TestMergeSequential pins the strip schedule model's fold: phases merge
// by name (makespans/traffic sum, queue peaks max), totals follow, N and
// PEMemory behave as documented, and AppendPhase accounts like an
// executed phase.
func TestMergeSequential(t *testing.T) {
	strip := func(span, sends, words int64, q int, mem int64) Metrics {
		m := Metrics{N: 8, PEMemory: mem}
		m.add(PhaseMetrics{Name: "input", Makespan: span, Busy: span * 8})
		m.add(PhaseMetrics{Name: "left:unionfind", Makespan: 2 * span, Sends: sends, Words: words, MaxQueue: q,
			PerPE: []int64{1, 2}})
		return m
	}
	a, b := strip(10, 5, 9, 3, 100), strip(7, 2, 4, 5, 80)

	comp := Metrics{N: 8}
	comp.MergeSequential(a)
	comp.MergeSequential(b)

	if comp.N != 8 {
		t.Errorf("N = %d, want 8", comp.N)
	}
	if len(comp.Phases) != 2 {
		t.Fatalf("composed %d phases, want 2 (folded by name)", len(comp.Phases))
	}
	in, uf := comp.Phases[0], comp.Phases[1]
	if in.Name != "input" || in.Makespan != 17 || in.Busy != 17*8 {
		t.Errorf("input phase folded wrong: %+v", in)
	}
	if uf.Makespan != 34 || uf.Sends != 7 || uf.Words != 13 || uf.MaxQueue != 5 || uf.PerPE != nil {
		t.Errorf("unionfind phase folded wrong: %+v", uf)
	}
	if comp.Time != a.Time+b.Time || comp.Sends != 7 || comp.Words != 13 ||
		comp.MaxQueue != 5 || comp.PEMemory != 100 {
		t.Errorf("totals folded wrong: %+v", comp)
	}

	before := comp.Time
	comp.AppendPhase(PhaseMetrics{Name: "seam-merge", Makespan: 11, Busy: 11, Sends: 4, Words: 4})
	if comp.Time != before+11 || comp.Sends != 11 || comp.Phases[len(comp.Phases)-1].Name != "seam-merge" {
		t.Errorf("AppendPhase did not account like an executed phase: %+v", comp)
	}
}

// TestMergePipelined pins the pipelined schedule recurrence: work
// totals fold exactly as MergeSequential, while Time follows the
// double-buffered input-overlap model — only the first strip's input is
// on the critical path when inputs are shorter than computes, and an
// input longer than the preceding compute stalls the pipeline by the
// difference.
func TestMergePipelined(t *testing.T) {
	strip := func(input, compute int64) Metrics {
		var m Metrics
		m.add(PhaseMetrics{Name: "input", Makespan: input, Busy: input})
		m.add(PhaseMetrics{Name: "left:unionfind", Makespan: compute, Sends: 3, Words: 5})
		return m
	}

	// Uniform strips, I < C: T = I + k·C.
	var comp Metrics
	for i := 0; i < 3; i++ {
		comp.MergePipelined(strip(4, 10))
	}
	if comp.Time != 4+3*10 {
		t.Errorf("uniform pipeline Time = %d, want %d", comp.Time, 34)
	}
	if comp.Phases[0].Makespan != 12 || comp.Phases[1].Makespan != 30 {
		t.Errorf("work totals did not fold sequentially: %+v", comp.Phases)
	}
	if comp.Sends != 9 || comp.Words != 15 {
		t.Errorf("traffic totals wrong: %+v", comp)
	}
	if comp.PipelinedSaving() != 42-34 {
		t.Errorf("PipelinedSaving = %d, want 8", comp.PipelinedSaving())
	}

	// An input longer than the previous compute stalls the array: strip
	// 2's input (25) begins once strip 1 starts computing (t=4) and ends
	// at 29, after strip 1's compute (14), so compute 2 spans [29, 39].
	var stall Metrics
	stall.MergePipelined(strip(4, 10))
	stall.MergePipelined(strip(25, 10))
	if stall.Time != 39 {
		t.Errorf("stalled pipeline Time = %d, want 39", stall.Time)
	}

	// No input phase (SkipInput): pipelining degenerates to sequential.
	var noIn Metrics
	a := Metrics{}
	a.add(PhaseMetrics{Name: "left:unionfind", Makespan: 7})
	noIn.MergePipelined(a)
	noIn.MergePipelined(a)
	if noIn.Time != 14 || noIn.PipelinedSaving() != 0 {
		t.Errorf("SkipInput pipeline Time = %d saving %d, want 14 and 0", noIn.Time, noIn.PipelinedSaving())
	}

	// Appended (seam) phases execute after the drain and add as usual.
	before := comp.Time
	comp.AppendPhase(PhaseMetrics{Name: "seam-merge", Makespan: 11})
	if comp.Time != before+11 {
		t.Errorf("AppendPhase after pipeline: Time = %d, want %d", comp.Time, before+11)
	}
}

// TestMergeSequentialAppendsUnseenPhases: a later run with a phase the
// accumulator has not seen appends it, preserving order.
func TestMergeSequentialAppendsUnseenPhases(t *testing.T) {
	var comp Metrics
	var a Metrics
	a.add(PhaseMetrics{Name: "p1", Makespan: 3})
	comp.MergeSequential(a)
	var b Metrics
	b.add(PhaseMetrics{Name: "p1", Makespan: 4})
	b.add(PhaseMetrics{Name: "p2", Makespan: 5})
	comp.MergeSequential(b)
	if len(comp.Phases) != 2 || comp.Phases[0].Makespan != 7 || comp.Phases[1].Makespan != 5 {
		t.Errorf("unseen phase handling wrong: %+v", comp.Phases)
	}
	if comp.Time != 12 {
		t.Errorf("Time = %d, want 12", comp.Time)
	}
}
