package slap

// Metrics composition for strip-mined runs: a fixed-width array labels an
// oversized image as a sequence of independent strip runs plus a seam
// merge. Two schedule models are offered (both documented in
// docs/METRICS.md, with the equations):
//
// # Sequential (MergeSequential)
//
// The strips execute back to back on the one physical array, so composed
// numbers stay as meaningful and deterministic as single-run numbers:
//
//   - phase makespans, busy/idle time, and traffic ADD (phases are folded
//     by name, so "left:unionfind" of the composed report is the total
//     over every strip's left union–find phase);
//   - peak queue depths and per-PE memory MAX (the array is reused, not
//     replicated);
//   - N stays the physical array width (strips narrower than the array
//     leave the surplus PEs idle and charge nothing for them);
//   - per-PE profiles are dropped (they do not compose across runs of
//     differing strip widths).
//
// # Pipelined (MergePipelined)
//
// The array double-buffers its column memory, so strip s+1's O(h) input
// phase streams in WHILE strip s's sweeps run; only the first strip's
// input sits on the critical path (when inputs are shorter than computes,
// the typical case by a factor of Θ(lg n)). Work accounting — per-phase
// makespans, busy time, traffic — is identical to the sequential model;
// only the composed Time differs, because phases overlap. The recurrence
// is the classic two-stage pipeline with one lookahead buffer:
//
//	endInput(s)   = max(endInput(s-1), begCompute(s-1)) + I(s)
//	begCompute(s) = max(endCompute(s-1), endInput(s))
//	endCompute(s) = begCompute(s) + C(s)
//
// where I(s) is the makespan of strip s's "input" phase (0 under
// SkipInput, which collapses the model to the sequential one) and C(s)
// is the rest of the strip's makespan. Composed Time after the last
// strip is endCompute(last); phases appended afterwards (the seam
// phases) execute sequentially after the pipeline drains and add their
// makespans as usual.
//
// The seam merge itself is appended phase by phase (AppendPhase) so the
// report shows exactly what the stitching cost.

// foldStrip folds s's phases and traffic into m under either schedule
// model: phase metrics fold by name in s's order (appending unseen
// phases), makespans and traffic sum, queue peaks and PE memory max. m
// keeps its N.
func (m *Metrics) foldStrip(s Metrics) {
	for _, p := range s.Phases {
		p.PerPE = nil
		i := -1
		for j := range m.Phases {
			if m.Phases[j].Name == p.Name {
				i = j
				break
			}
		}
		if i < 0 {
			m.Phases = append(m.Phases, p)
			continue
		}
		q := &m.Phases[i]
		q.Makespan += p.Makespan
		q.Busy += p.Busy
		q.Idle += p.Idle
		q.Sends += p.Sends
		q.Words += p.Words
		q.NilRecvs += p.NilRecvs
		if p.MaxQueue > q.MaxQueue {
			q.MaxQueue = p.MaxQueue
		}
		q.PerPE = nil
	}
	m.Sends += s.Sends
	m.Words += s.Words
	if s.MaxQueue > m.MaxQueue {
		m.MaxQueue = s.MaxQueue
	}
	if s.PEMemory > m.PEMemory {
		m.PEMemory = s.PEMemory
	}
}

// MergeSequential folds s into m under the sequential strip schedule:
// phase metrics fold by name in s's order (appending unseen phases),
// makespans and traffic sum, queue peaks and PE memory max. m keeps its
// N. Typical use starts from Metrics{N: arrayWidth} and merges each
// strip's metrics in strip order.
func (m *Metrics) MergeSequential(s Metrics) {
	m.foldStrip(s)
	m.Time += s.Time
}

// MergePipelined folds s into m under the pipelined strip schedule (see
// the package comment above for the model): work accounting is identical
// to MergeSequential, but the composed Time follows the double-buffered
// input-overlap recurrence, so it is at most the sequential Time and
// shrinks by up to Σ later strips' input makespans. Start from a fresh
// Metrics{N: arrayWidth}, merge every strip in strip order, then
// AppendPhase any trailing (seam) phases — those execute after the
// pipeline drains and add sequentially.
func (m *Metrics) MergePipelined(s Metrics) {
	m.foldStrip(s)
	var input int64
	if p, ok := s.Phase("input"); ok {
		input = p.Makespan
	}
	compute := s.Time - input

	endInput := maxInt64(m.pipeInputEnd, m.pipeComputeBeg) + input
	begCompute := maxInt64(m.pipeComputeEnd, endInput)
	endCompute := begCompute + compute

	// The composed Time may already carry phases appended before the
	// pipeline (none in the tiler's usage, but keep the invariant): only
	// the pipelined portion is replaced by the recurrence.
	m.Time += endCompute - m.pipeComputeEnd
	m.pipeInputEnd = endInput
	m.pipeComputeBeg = begCompute
	m.pipeComputeEnd = endCompute
}

// PipelinedSaving returns how much composed time the pipelined schedule
// has saved so far versus sequential composition of the same strips:
// Σ strip makespans minus the pipeline critical path. Zero when the
// accumulator has only seen MergeSequential.
func (m *Metrics) PipelinedSaving() int64 {
	var seq int64
	for _, p := range m.Phases {
		seq += p.Makespan
	}
	return seq - m.Time
}

// AppendPhase records p as a new phase of m, folding it into the totals
// exactly as a phase executed on the machine would be.
func (m *Metrics) AppendPhase(p PhaseMetrics) { m.add(p) }

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
