package slap

// Metrics composition for strip-mined runs: a fixed-width array labels an
// oversized image as a sequence of independent strip runs plus a host-side
// seam merge. The schedule model is explicitly sequential — the strips
// execute back to back on the one physical array — so composed numbers
// stay as meaningful and deterministic as single-run numbers:
//
//   - phase makespans, busy/idle time, and traffic ADD (phases are folded
//     by name, so "left:unionfind" of the composed report is the total
//     over every strip's left union–find phase);
//   - peak queue depths and per-PE memory MAX (the array is reused, not
//     replicated);
//   - N stays the physical array width (strips narrower than the array
//     leave the surplus PEs idle and charge nothing for them);
//   - per-PE profiles are dropped (they do not compose across runs of
//     differing strip widths).
//
// The seam merge itself is appended as its own phase (AppendPhase) so the
// report shows exactly what the stitching cost.

// MergeSequential folds s into m under the sequential strip schedule:
// phase metrics fold by name in s's order (appending unseen phases),
// makespans and traffic sum, queue peaks and PE memory max. m keeps its
// N. Typical use starts from Metrics{N: arrayWidth} and merges each
// strip's metrics in strip order.
func (m *Metrics) MergeSequential(s Metrics) {
	for _, p := range s.Phases {
		p.PerPE = nil
		i := -1
		for j := range m.Phases {
			if m.Phases[j].Name == p.Name {
				i = j
				break
			}
		}
		if i < 0 {
			m.Phases = append(m.Phases, p)
			continue
		}
		q := &m.Phases[i]
		q.Makespan += p.Makespan
		q.Busy += p.Busy
		q.Idle += p.Idle
		q.Sends += p.Sends
		q.Words += p.Words
		q.NilRecvs += p.NilRecvs
		if p.MaxQueue > q.MaxQueue {
			q.MaxQueue = p.MaxQueue
		}
		q.PerPE = nil
	}
	m.Time += s.Time
	m.Sends += s.Sends
	m.Words += s.Words
	if s.MaxQueue > m.MaxQueue {
		m.MaxQueue = s.MaxQueue
	}
	if s.PEMemory > m.PEMemory {
		m.PEMemory = s.PEMemory
	}
}

// AppendPhase records p as a new phase of m, folding it into the totals
// exactly as a phase executed on the machine would be.
func (m *Metrics) AppendPhase(p PhaseMetrics) { m.add(p) }
