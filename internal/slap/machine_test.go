package slap

import (
	"testing"
	"testing/quick"
)

func TestCostModels(t *testing.T) {
	if err := Unit().Validate(); err != nil {
		t.Fatal(err)
	}
	bs := BitSerial(12)
	if err := bs.Validate(); err != nil {
		t.Fatal(err)
	}
	if bs.WordSteps != 12 || bs.WordBits != 12 {
		t.Fatalf("bit-serial model wrong: %+v", bs)
	}
	if (CostModel{}).Validate() == nil {
		t.Fatal("zero cost model must be invalid")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BitSerial(0) should panic")
		}
	}()
	BitSerial(0)
}

func TestWordBitsFor(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 3}, {4, 5}, {16, 9}, {1024, 21},
	} {
		if got := WordBitsFor(tc.n); got != tc.want {
			t.Errorf("WordBitsFor(%d): want %d, got %d", tc.n, tc.want, got)
		}
	}
}

func TestRunLocalMakespanIsMax(t *testing.T) {
	m := NewMachine(4, Unit())
	span := m.RunLocal("work", func(pe *PE) {
		pe.Tick(int64(pe.Index + 1)) // PE 3 works 4 steps
	})
	if span != 4 {
		t.Fatalf("makespan: want 4, got %d", span)
	}
	mt := m.Metrics()
	if mt.Time != 4 || len(mt.Phases) != 1 || mt.Phases[0].Busy != 1+2+3+4 {
		t.Fatalf("unexpected metrics %+v", mt)
	}
}

func TestChargeGlobal(t *testing.T) {
	m := NewMachine(8, Unit())
	m.ChargeGlobal("input", 8)
	mt := m.Metrics()
	if mt.Time != 8 {
		t.Fatalf("want global charge 8, got %d", mt.Time)
	}
	if p, ok := mt.Phase("input"); !ok || p.Busy != 64 {
		t.Fatalf("input phase metrics wrong: %+v ok=%v", p, ok)
	}
	if _, ok := mt.Phase("nope"); ok {
		t.Fatal("Phase should miss unknown names")
	}
}

// pipelineSweep: every PE forwards a token after one tick of local work.
// The completion time of the last PE must be Θ(n): the systolic pipeline
// the whole design rests on.
func TestSweepPipelineLatency(t *testing.T) {
	const n = 64
	m := NewMachine(n, Unit())
	span := m.RunSweep("pipe", LeftToRight, func(pe *PE) {
		if !pe.HasIn() {
			pe.Tick(1)
			pe.Send(Msg{Kind: 1})
			return
		}
		msg, ok := pe.RecvWait()
		if !ok {
			t.Fatalf("PE %d: token lost", pe.Index)
		}
		if msg.Kind != 1 {
			t.Fatalf("PE %d: wrong token %v", pe.Index, msg)
		}
		if pe.Index != n-1 {
			pe.Send(msg)
		}
	})
	// PE0 finishes at 2; each hop adds recv (≥1 after ready) + send 1.
	if span < int64(n) || span > int64(4*n) {
		t.Fatalf("pipeline span should be Θ(n), got %d", span)
	}
}

func TestSweepRightToLeft(t *testing.T) {
	const n = 5
	m := NewMachine(n, Unit())
	var order []int
	m.RunSweep("r2l", RightToLeft, func(pe *PE) {
		order = append(order, pe.Index)
		if pe.HasIn() {
			if _, ok := pe.RecvWait(); !ok {
				t.Fatalf("PE %d should receive", pe.Index)
			}
		}
		if pe.Index != 0 {
			pe.Send(Msg{Kind: 9})
		}
	})
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	if LeftToRight.String() == RightToLeft.String() {
		t.Fatal("directions should render distinctly")
	}
}

func TestRecvPollSemantics(t *testing.T) {
	m := NewMachine(2, Unit())
	m.RunSweep("poll", LeftToRight, func(pe *PE) {
		if pe.Index == 0 {
			pe.Tick(10) // message ready at t=11
			pe.Send(Msg{Kind: 7})
			return
		}
		// Receiver polls from t=0: the first ten polls (t=1..10) must
		// return nothing; the poll completing at t=11 succeeds.
		got := false
		for i := 0; i < 20; i++ {
			if msg, ok := pe.Recv(); ok {
				if pe.Now() != 11 {
					t.Fatalf("message consumed at t=%d, want 11", pe.Now())
				}
				if msg.Kind != 7 {
					t.Fatalf("wrong message %+v", msg)
				}
				got = true
				break
			}
		}
		if !got {
			t.Fatal("poller never saw the message")
		}
	})
}

func TestRecvWaitFastForwardMatchesPolling(t *testing.T) {
	// RecvWait and a manual Recv polling loop must land on identical
	// clocks: fast-forward is an optimization, not a semantic change.
	run := func(manual bool) int64 {
		var final int64
		m := NewMachine(2, Unit())
		m.RunSweep("x", LeftToRight, func(pe *PE) {
			if pe.Index == 0 {
				pe.Tick(17)
				pe.Send(Msg{Kind: 1})
				return
			}
			if manual {
				for {
					if _, ok := pe.Recv(); ok {
						break
					}
				}
			} else {
				if _, ok := pe.RecvWait(); !ok {
					t.Fatal("RecvWait should succeed")
				}
			}
			final = pe.Now()
		})
		return final
	}
	a, b := run(true), run(false)
	if a != b {
		t.Fatalf("manual polling got t=%d, RecvWait got t=%d", a, b)
	}
}

func TestRecvWaitIdleWorkRunsOncePerIdleCycle(t *testing.T) {
	m := NewMachine(2, Unit())
	m.RunSweep("idle", LeftToRight, func(pe *PE) {
		if pe.Index == 0 {
			pe.Tick(10)
			pe.Send(Msg{})
			return
		}
		calls := 0
		pe.OnIdle(func() { calls++ })
		if _, ok := pe.RecvWait(); !ok {
			t.Fatal("want message")
		}
		// Message ready at 11; successful poll at 11; idle polls at 1..10.
		if calls != 10 {
			t.Fatalf("idle work should run 10 times, ran %d", calls)
		}
		if pe.Now() != 11 {
			t.Fatalf("idle path clock %d, want 11", pe.Now())
		}
	})
}

func TestRecvWaitExhaustedStream(t *testing.T) {
	m := NewMachine(2, Unit())
	m.RunSweep("drain", LeftToRight, func(pe *PE) {
		if pe.Index == 0 {
			pe.Send(Msg{Kind: 1})
			return
		}
		if _, ok := pe.RecvWait(); !ok {
			t.Fatal("first record should arrive")
		}
		if _, ok := pe.RecvWait(); ok {
			t.Fatal("exhausted stream must report ok=false")
		}
		if _, ok := pe.Recv(); ok {
			t.Fatal("poll on exhausted stream must fail")
		}
	})
}

func TestBitSerialWordCost(t *testing.T) {
	// Under the Theorem 5 model a 2-word record takes 2×bits link steps.
	const bits = 10
	m := NewMachine(2, BitSerial(bits))
	m.RunSweep("bits", LeftToRight, func(pe *PE) {
		if pe.Index == 0 {
			pe.Send(Msg{Words: 2})
			if pe.Now() != 2*bits {
				t.Fatalf("sender occupied for %d, want %d", pe.Now(), 2*bits)
			}
			return
		}
		if _, ok := pe.RecvWait(); !ok {
			t.Fatal("want record")
		}
		if pe.Now() != 2*bits {
			t.Fatalf("receiver got record at %d, want %d", pe.Now(), 2*bits)
		}
	})
	if w := m.Metrics().Words; w != 2 {
		t.Fatalf("word count: want 2, got %d", w)
	}
}

func TestQueueBacklogPeak(t *testing.T) {
	m := NewMachine(2, Unit())
	m.RunSweep("burst", LeftToRight, func(pe *PE) {
		if pe.Index == 0 {
			for i := 0; i < 5; i++ {
				pe.Send(Msg{Kind: uint8(i)})
			}
			return
		}
		pe.Tick(100) // let everything pile up
		for i := 0; i < 5; i++ {
			if _, ok := pe.RecvWait(); !ok {
				t.Fatal("missing record")
			}
		}
	})
	mt := m.Metrics()
	if mt.MaxQueue != 5 {
		t.Fatalf("peak backlog: want 5, got %d", mt.MaxQueue)
	}
}

func TestQueueBacklogSteadyState(t *testing.T) {
	m := NewMachine(2, Unit())
	m.RunSweep("steady", LeftToRight, func(pe *PE) {
		if pe.Index == 0 {
			for i := 0; i < 50; i++ {
				pe.Tick(1)
				pe.Send(Msg{})
			}
			return
		}
		for i := 0; i < 50; i++ {
			if _, ok := pe.RecvWait(); !ok {
				t.Fatal("missing record")
			}
		}
	})
	// Consumer keeps pace (1 recv per 2 sender steps): backlog stays small.
	if q := m.Metrics().MaxQueue; q > 2 {
		t.Fatalf("steady-state backlog should be ≤ 2, got %d", q)
	}
}

func TestDeclareMemoryTracked(t *testing.T) {
	m := NewMachine(3, Unit())
	m.RunLocal("mem", func(pe *PE) {
		pe.DeclareMemory(int64(100 * (pe.Index + 1)))
		pe.DeclareMemory(5) // smaller later declaration must not shrink
	})
	if got := m.Metrics().PEMemory; got != 300 {
		t.Fatalf("PEMemory: want 300, got %d", got)
	}
}

func TestSendWithoutLinkPanics(t *testing.T) {
	m := NewMachine(1, Unit())
	defer func() {
		if recover() == nil {
			t.Fatal("send on the last PE should panic")
		}
	}()
	m.RunSweep("solo", LeftToRight, func(pe *PE) {
		pe.Send(Msg{})
	})
}

func TestNegativeTickPanics(t *testing.T) {
	m := NewMachine(1, Unit())
	defer func() {
		if recover() == nil {
			t.Fatal("negative tick should panic")
		}
	}()
	m.RunLocal("bad", func(pe *PE) { pe.Tick(-1) })
}

func TestMachineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size should panic")
		}
	}()
	NewMachine(-1, Unit())
}

func TestChargeGlobalNegativePanics(t *testing.T) {
	m := NewMachine(1, Unit())
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge should panic")
		}
	}()
	m.ChargeGlobal("bad", -1)
}

func TestProfilePerPE(t *testing.T) {
	m := NewMachine(4, Unit())
	m.EnableProfile()
	m.RunLocal("w", func(pe *PE) { pe.Tick(int64(pe.Index + 1)) })
	p := m.Metrics().Phases[0]
	if len(p.PerPE) != 4 {
		t.Fatalf("PerPE should have 4 entries, got %d", len(p.PerPE))
	}
	for i, want := range []int64{1, 2, 3, 4} {
		if p.PerPE[i] != want {
			t.Fatalf("PerPE[%d]: want %d, got %d", i, want, p.PerPE[i])
		}
	}
	// Profile off: no PerPE.
	m2 := NewMachine(2, Unit())
	m2.RunLocal("w", func(pe *PE) { pe.Tick(1) })
	if m2.Metrics().Phases[0].PerPE != nil {
		t.Fatal("PerPE should be nil without profiling")
	}
	// Profile works in parallel sweeps too, indexed by PE position.
	m3 := NewMachine(3, Unit())
	m3.EnableProfile()
	m3.EnableParallel()
	m3.RunSweep("s", LeftToRight, func(pe *PE) {
		pe.Tick(int64(pe.Index + 1))
		if pe.HasIn() {
			if _, ok := pe.RecvWait(); !ok {
				t.Error("missing token")
			}
		}
		if pe.HasOut() {
			pe.Send(Msg{})
		}
	})
	pp := m3.Metrics().Phases[0].PerPE
	if len(pp) != 3 || pp[0] <= 0 || pp[2] <= pp[0] {
		t.Fatalf("parallel sweep profile wrong: %v", pp)
	}
}

// TestMachineResetMatchesFresh: a reset machine must be observationally
// identical to a fresh one, and its sweeps must stop allocating once the
// link arena is warm.
func TestMachineResetMatchesFresh(t *testing.T) {
	run := func(m *Machine) Metrics {
		m.ChargeGlobal("input", 3)
		m.RunSweep("s", LeftToRight, func(pe *PE) {
			if !pe.HasIn() {
				for i := 0; i < 10; i++ {
					pe.Tick(2)
					pe.Send(Msg{Kind: 1, Words: 2})
				}
				pe.Send(Msg{Kind: 0})
				return
			}
			for {
				msg, ok := pe.RecvWait()
				if !ok || msg.Kind == 0 {
					return
				}
				pe.Tick(1)
			}
		})
		m.RunLocal("l", func(pe *PE) { pe.Tick(int64(pe.Index)) })
		return m.Metrics()
	}
	fresh := run(NewMachine(6, Unit()))
	reused := NewMachine(9, BitSerial(4))
	run(reused) // dirty it
	reused.Reset(6, Unit())
	if got := run(reused); !metricsEqual(fresh, got) {
		t.Fatalf("reset machine diverges:\nfresh  %+v\nreused %+v", fresh, got)
	}
	// The copy Metrics returns must survive a Reset.
	snapshot := reused.Metrics()
	phases := len(snapshot.Phases)
	reused.Reset(2, Unit())
	run(reused)
	if len(snapshot.Phases) != phases || snapshot.Phases[0].Name != "input" {
		t.Fatal("Metrics snapshot corrupted by machine reuse")
	}
	// Warm sequential sweeps allocate nothing.
	m := NewMachine(6, Unit())
	run(m)
	allocs := testing.AllocsPerRun(10, func() {
		m.Reset(6, Unit())
		run(m)
	})
	// Metrics() deep-copies its phase slice per call; everything else is
	// arena-backed.
	if allocs > 4 {
		t.Fatalf("warm sequential run allocates %.1f times, want ≤ 4", allocs)
	}
}

// Property: for any pattern of sender delays, the receiver's completion
// time equals max over records of (arrival chain), and busy+idle = clock
// on the receiving PE.
func TestSweepTimeAccountingQuick(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 40 {
			delays = delays[:40]
		}
		ok := true
		m := NewMachine(2, Unit())
		m.RunSweep("acct", LeftToRight, func(pe *PE) {
			if pe.Index == 0 {
				for _, d := range delays {
					pe.Tick(int64(d % 8))
					pe.Send(Msg{})
				}
				return
			}
			for range delays {
				if _, got := pe.RecvWait(); !got {
					ok = false
					return
				}
			}
			if pe.busy+pe.idleTime != pe.clock {
				ok = false
			}
		})
		if !ok {
			return false
		}
		mt := m.Metrics()
		p := mt.Phases[0]
		return p.Busy+p.Idle >= p.Makespan && p.Sends == int64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
