// Package slap simulates the scan line array processor: a SIMD linear
// array of n processing elements (PEs) with Θ(n) memory each, where each
// pair of adjacent PEs exchanges one Θ(lg n)-bit word per time step
// (paper, Figure 1).
//
// # Timing model
//
// The paper's pseudocode is systolic: within any one pass, PE i receives
// only from one fixed neighbor, each dequeue attempt costs one time step,
// and local work is charged per union–find pointer step. Because
// communication in every pass of Algorithm CC is unidirectional, the
// simulator executes the PEs sequentially in topological order while
// tracking a per-PE virtual clock; each message records when it becomes
// available at the receiver (sender clock after transmission). A dequeue
// at local time t consumes the earliest unconsumed message whose ready
// time is ≤ t, and otherwise returns nothing — exactly the queue
// semantics of Figures 5 and 6. Idle waiting is either fast-forwarded
// (time passes, no work) or spent on caller-supplied idle work (the §3
// idle-compression heuristic), one unit per idle cycle; both paths yield
// identical clocks.
//
// The makespan of a phase is the maximum PE completion time; phases are
// barrier-separated, matching the paper's phase-by-phase accounting. The
// SIMD restriction (one common instruction stream with predication) costs
// only a constant factor over this MIMD-style count and is not modeled.
//
// docs/METRICS.md is the reference for every phase name the system
// emits, what each meter entry charges, and the strip-composition
// schedule equations (MergeSequential/MergePipelined in compose.go).
package slap

import "fmt"

// CostModel assigns step charges to the primitive operations of a PE.
// The zero value is not valid; use Unit or BitSerial.
type CostModel struct {
	// LocalStep is the charge for one unit of local computation (one
	// union–find pointer step, one queue bookkeeping action, …).
	LocalStep int64
	// QueueOp is the charge for one dequeue attempt (paper: one time step
	// per loop iteration of the receive loops).
	QueueOp int64
	// WordSteps is the number of time steps one machine word needs to
	// cross a link. 1 on the standard SLAP; WordBits on the restricted
	// 1-bit SLAP of Theorem 5.
	WordSteps int64
	// WordBits records the word width in bits (Θ(lg n)); informational
	// except that BitSerial sets WordSteps = WordBits.
	WordBits int
}

// Unit returns the standard SLAP cost model: every primitive costs one
// step and a word crosses a link in one step.
func Unit() CostModel {
	return CostModel{LocalStep: 1, QueueOp: 1, WordSteps: 1, WordBits: 0}
}

// BitSerial returns the Theorem 5 restricted model: links carry one bit
// per step, so a wordBits-wide word needs wordBits steps to cross.
func BitSerial(wordBits int) CostModel {
	if wordBits < 1 {
		panic(fmt.Sprintf("slap: word width %d < 1", wordBits))
	}
	return CostModel{LocalStep: 1, QueueOp: 1, WordSteps: int64(wordBits), WordBits: wordBits}
}

// Validate reports whether the model is usable.
func (c CostModel) Validate() error {
	if c.LocalStep < 1 || c.QueueOp < 1 || c.WordSteps < 1 {
		return fmt.Errorf("slap: cost model charges must be ≥ 1: %+v", c)
	}
	return nil
}

// WordBitsFor returns the word width ⌈lg max(2, 2n²)⌉ the machine needs
// so a single word can carry any pixel label of an n×n image (labels are
// column-major positions, possibly offset by n² for the right pass).
func WordBitsFor(n int) int { return WordBitsForDims(n, n) }

// WordBitsForDims is WordBitsFor for an arbitrary w×h image: labels are
// column-major positions in [0, w·h), offset by w·h for the right pass,
// so a word needs ⌈lg max(2, 2·w·h)⌉ bits — not ⌈lg 2·max(w,h)²⌉, which
// over-charges non-square images (a 1024×16 image needs 15-bit words,
// not 21-bit).
func WordBitsForDims(w, h int) int {
	need := uint64(2)
	if w > 0 && h > 0 {
		need = 2 * uint64(w) * uint64(h)
	}
	bitsN := 1
	for v := need - 1; v > 1; v >>= 1 {
		bitsN++
	}
	return bitsN
}
