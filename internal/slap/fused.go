package slap

// The fused sweep runner: Algorithm CC's pass structure is a chain of
// phases over the same array where phase k of PE i depends only on
// phase k of PE i-1 (sweep links) and phases < k of PE i itself. Run
// phase by phase, the host walks the whole array once per phase and
// every PE's working set falls out of cache between phases; fused, the
// host walks the array once per *pass*, running every phase body for a
// column back to back while its column state is hot. Virtual time is
// untouched: each subphase keeps its own link chain and its own
// PhaseMetrics, every PE view starts at clock 0 exactly as in the
// per-phase executors, and the phases are folded into the machine's
// metrics in declaration order — the resulting Metrics are bit-identical
// to the unfused execution (tests demand it).

// SubPhase is one phase of a fused walk.
type SubPhase struct {
	// Name labels the phase in the machine metrics.
	Name string
	// Local marks a phase with no links (RunLocal's shape); non-local
	// subphases sweep in the walk's direction.
	Local bool
	// Body is the per-PE program.
	Body func(pe *PE)
}

// fusedSub is the walk-persistent state of one subphase: its metrics,
// the link its next consumer will read (the producer's outbound link is
// a walk-local variable), and its backlog-tracker buffer.
type fusedSub struct {
	phase PhaseMetrics
	in    *link
	pend  []int64
}

// DisableFusion makes RunFused execute its subphases as separate
// per-phase walks (RunSweep/RunLocal) for subsequently executed phases.
// The unfused executor is the reference implementation: equivalence
// tests and ablations run both and compare metrics bit for bit.
func (mc *Machine) DisableFusion() { mc.fuseOff = true }

// FusedSweeps reports whether RunFused will actually fuse: false in
// parallel mode (the concurrent engine handles pipeline parallelism
// itself) and after DisableFusion. Callers that prepare per-column
// state lazily inside the walk must prepare it up front when this is
// false, because the per-phase executors visit columns phase by phase
// (and, on the concurrent engine, from several goroutines).
func (mc *Machine) FusedSweeps() bool { return !mc.parallel && !mc.fuseOff }

// RunFused executes subs as one fused walk over the array in the order
// of dir: per position, prep (when non-nil, host-side state setup that
// charges nothing) runs first, then every subphase body back to back.
// When FusedSweeps is false it delegates to the per-phase executors:
// all preps first, then each subphase via RunSweep or RunLocal.
func (mc *Machine) RunFused(dir Direction, prep func(idx int), subs []SubPhase) {
	if !mc.FusedSweeps() {
		if prep != nil {
			for pos := 0; pos < mc.n; pos++ {
				idx := pos
				if dir == RightToLeft {
					idx = mc.n - 1 - pos
				}
				prep(idx)
			}
		}
		for i := range subs {
			if subs[i].Local {
				mc.RunLocal(subs[i].Name, subs[i].Body)
			} else {
				mc.RunSweep(subs[i].Name, dir, subs[i].Body)
			}
		}
		return
	}

	// Grow the walk arena; per-sub pend buffers are kept across runs.
	if cap(mc.fusedSubs) < len(subs) {
		grown := make([]fusedSub, len(subs))
		copy(grown, mc.fusedSubs)
		mc.fusedSubs = grown
	}
	fs := mc.fusedSubs[:len(subs)]
	for i := range fs {
		fs[i].phase = PhaseMetrics{Name: subs[i].Name}
		fs[i].in = nil
	}

	pe := &mc.scratchPE
	for pos := 0; pos < mc.n; pos++ {
		idx := pos
		if dir == RightToLeft {
			idx = mc.n - 1 - pos
		}
		if prep != nil {
			prep(idx)
		}
		for i := range subs {
			s := &fs[i]
			var out *link
			if !subs[i].Local && pos < mc.n-1 {
				out = mc.acquireLink()
			}
			*pe = PE{Index: idx, cost: mc.cost, in: s.in, out: out, pendCons: s.pend[:0]}
			subs[i].Body(pe)
			mc.foldPE(&s.phase, pe)
			s.pend = pe.pendCons[:0]
			if s.in != nil {
				// Same queue-peak bookkeeping as runSweepSeq: the consumer
				// streamed its own peak; a rescan only matters for links
				// with unconsumed records.
				q := pe.maxBacklog
				if s.in.consumed != len(s.in.msgs) {
					q = peakBacklog(s.in)
				}
				if q > s.phase.MaxQueue {
					s.phase.MaxQueue = q
				}
				mc.releaseLink(s.in)
			}
			s.in = out
		}
	}
	for i := range fs {
		mc.metrics.add(fs[i].phase)
	}
}
