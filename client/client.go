// Package client is the Go client for the slapd labeling service: a
// thin, connection-reusing wrapper over the api wire contract with
// typed results and automatic retry of transient failures.
//
//	c := client.New("http://localhost:8117")
//	resp, err := c.Label(ctx, img, api.Params{})
//	// resp.Components, resp.Metrics.TimeSteps, …
//
// Params.Cost selects the serving engine: the default metered
// simulator ("unit"/"bitserial") fills resp.Metrics with simulated
// machine time, while "host" answers with the word-parallel host
// engine — identical labels and folds, resp.Metrics all zeros by
// contract (docs/ARCHITECTURE.md, "The engine layer").
//
// One Client is safe for concurrent use and keeps connections alive
// across requests (the load generator drives thousands of frames per
// connection through it). Every POST body is a replayable byte slice
// and labeling is pure, so retrying is always safe; one attempt budget
// (WithMaxRetries) covers both failure families:
//
//   - 429 backpressure: the wait honors the server's Retry-After hint
//     (whole seconds or an HTTP-date; zero, negative, or past values
//     mean "retry now"), capped by WithMaxRetryWait;
//   - transient transport errors — connection refused or reset, broken
//     pipe, a response truncated mid-body (unexpected EOF): the wait
//     follows capped exponential backoff with jitter, so a fleet of
//     clients hammering a restarting backend spreads out instead of
//     thundering back in lockstep.
//
// Context deadlines and cancellation are honored on every attempt and
// every wait. Anything non-transient (4xx, malformed responses)
// surfaces immediately as a *StatusError or decode error.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"slapcc"
	"slapcc/api"
	"slapcc/internal/imageio"
	"slapcc/internal/obs"
)

// Client talks to one slapd instance. Construct with New.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int           // extra attempts after a retryable failure
	maxWait    time.Duration // cap on a single retry wait
	backoff    time.Duration // first transient-error backoff step

	// Injectable clockwork (tests): sleep waits d or until ctx dies,
	// now reads the wall clock (HTTP-date Retry-After), rnd drives the
	// backoff jitter.
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time
	rnd   func() float64
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport tuning, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries sets how many times a retryable failure (429 or a
// transient transport error) is retried before giving up (default 4;
// 0 disables retrying — a coordinator that owns its own retry and
// routing policy runs its per-backend clients this way).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithMaxRetryWait caps a single retry wait, whatever its source —
// Retry-After hint or backoff schedule (default 5s).
func WithMaxRetryWait(d time.Duration) Option { return func(c *Client) { c.maxWait = d } }

// WithBackoff sets the first transient-error backoff step; attempt k
// waits ~backoff·2^k with jitter, capped by WithMaxRetryWait (default
// 50ms).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// New returns a client for the slapd at baseURL (e.g.
// "http://localhost:8117").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		maxRetries: 4,
		maxWait:    5 * time.Second,
		backoff:    50 * time.Millisecond,
		now:        time.Now,
		rnd:        lockedFloat64(),
	}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if d <= 0 {
			return ctx.Err()
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, o := range opts {
		o(c)
	}
	if c.hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64 // the whole point is connection reuse under load
		c.hc = &http.Client{Transport: tr}
	}
	return c
}

// lockedFloat64 returns a concurrency-safe jitter source with its own
// seed (the global rand would contend across clients under load).
func lockedFloat64() func() float64 {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
}

// StatusError is a non-2xx response, carrying the server's error text.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the parsed Retry-After hint of a 429 (zero when
	// absent, unparseable, or already elapsed).
	RetryAfter time.Duration
	// hinted records whether the header was present and parseable, so
	// the retry loop can tell "wait 0, retry now" from "no hint".
	hinted bool
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("slapd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// IsRetryable reports whether the error is the backpressure signal.
func (e *StatusError) IsRetryable() bool { return e.Code == http.StatusTooManyRequests }

// EncodeImage serializes img for transport. format is one of "png",
// "pbm", "art", "raw", or "" (raw, the densest). The returned content
// type is ready for the request header.
func EncodeImage(img *slapcc.Bitmap, format string) (data []byte, contentType string, err error) {
	f, err := imageio.ParseFormat(format)
	if err != nil {
		return nil, "", err
	}
	if f == imageio.FormatAuto {
		f = imageio.FormatRaw
	}
	data, err = imageio.EncodeBytes(img, f)
	if err != nil {
		return nil, "", err
	}
	return data, f.ContentType(), nil
}

// Label labels img under p, encoding it as p.Format ("" = raw).
func (c *Client) Label(ctx context.Context, img *slapcc.Bitmap, p api.Params) (*api.LabelResponse, error) {
	data, ct, err := EncodeImage(img, p.Format)
	if err != nil {
		return nil, err
	}
	return c.LabelData(ctx, data, ct, p)
}

// LabelData labels an already-encoded image body (contentType may be
// empty; the server sniffs or uses p.Format).
func (c *Client) LabelData(ctx context.Context, data []byte, contentType string, p api.Params) (*api.LabelResponse, error) {
	var out api.LabelResponse
	if err := c.post(ctx, api.PathLabel, p, data, contentType, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Aggregate folds each component of img under p.Op (see api.Params).
func (c *Client) Aggregate(ctx context.Context, img *slapcc.Bitmap, p api.Params) (*api.AggregateResponse, error) {
	data, ct, err := EncodeImage(img, p.Format)
	if err != nil {
		return nil, err
	}
	return c.AggregateData(ctx, data, ct, p)
}

// AggregateData aggregates an already-encoded image body, the
// /v1/aggregate counterpart of LabelData.
func (c *Client) AggregateData(ctx context.Context, data []byte, contentType string, p api.Params) (*api.AggregateResponse, error) {
	var out api.AggregateResponse
	if err := c.post(ctx, api.PathAggregate, p, data, contentType, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Frame is one pre-encoded batch member.
type Frame struct {
	// Data is the encoded image body.
	Data []byte
	// ContentType pins the part's codec; empty falls back to the
	// batch-level p.Format (or sniffing).
	ContentType string
}

// EncodeFrame serializes img as a batch Frame in format ("" = raw).
func EncodeFrame(img *slapcc.Bitmap, format string) (Frame, error) {
	data, ct, err := EncodeImage(img, format)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Data: data, ContentType: ct}, nil
}

// LabelBatch labels frames in one request; results come back in frame
// order (api.BatchResponse.Results[i] is frames[i]).
func (c *Client) LabelBatch(ctx context.Context, frames []Frame, p api.Params) (*api.BatchResponse, error) {
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i, f := range frames {
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Disposition", fmt.Sprintf(`form-data; name="frame%d"; filename="frame%d"`, i, i))
		if f.ContentType != "" {
			hdr.Set("Content-Type", f.ContentType)
		}
		pw, err := mw.CreatePart(hdr)
		if err != nil {
			return nil, err
		}
		if _, err := pw.Write(f.Data); err != nil {
			return nil, err
		}
	}
	if err := mw.Close(); err != nil {
		return nil, err
	}
	var out api.BatchResponse
	if err := c.post(ctx, api.PathBatch, p, body.Bytes(), mw.FormDataContentType(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports nil while the server is healthy.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.Health(ctx)
	return err
}

// Health probes /healthz and returns the server's load report. A
// healthy backend returns (report, nil); a draining one returns its
// report alongside the 503 *StatusError, so a router can still read
// the load figures; a dead one returns (nil, transport error).
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathHealthz, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var h api.HealthResponse
	decoded := json.Unmarshal(body, &h) == nil && h.Status != ""
	if resp.StatusCode != http.StatusOK {
		se := &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
		var er api.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			se.Msg = er.Error
		}
		if decoded {
			return &h, se
		}
		return nil, se
	}
	if !decoded {
		return nil, fmt.Errorf("client: malformed health body %q", body)
	}
	return &h, nil
}

// Metrics fetches the Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathMetrics, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return "", c.statusError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// post sends one POST with the retry policy of the package comment —
// one attempt budget over 429 backpressure and transient transport
// errors — and decodes the JSON response. The body is a byte slice
// precisely so each retry can replay it.
func (c *Client) post(ctx context.Context, path string, p api.Params, body []byte, contentType string, out any) error {
	url := c.base + path
	if q := p.Query().Encode(); q != "" {
		url += "?" + q
	}
	// One request ID per logical request: retries of the same body reuse
	// it, so the whole attempt chain is one trace. Callers (slapfront)
	// pin their own via api.ContextWithRequestID.
	if api.RequestIDFromContext(ctx) == "" {
		ctx = api.ContextWithRequestID(ctx, api.NewRequestID())
	}
	for attempt := 0; ; attempt++ {
		err := c.postOnce(ctx, url, body, contentType, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || attempt >= c.maxRetries {
			return err
		}
		var wait time.Duration
		var se *StatusError
		switch {
		case errors.As(err, &se):
			if !se.IsRetryable() {
				return err
			}
			wait = se.RetryAfter
			if !se.hinted {
				// No usable hint: a short fixed pause, so a missing
				// header cannot spin-loop.
				wait = 100 * time.Millisecond
			}
		case isTransient(err):
			wait = c.backoffWait(attempt)
		default:
			return err
		}
		if wait > c.maxWait {
			wait = c.maxWait
		}
		if err := c.sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// postOnce performs a single attempt. A truncated response body
// surfaces as io.ErrUnexpectedEOF from the decoder, which isTransient
// recognizes — the request is replayable, so the attempt loop retries.
func (c *Client) postOnce(ctx context.Context, url string, body []byte, contentType string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if id := api.RequestIDFromContext(ctx); id != "" {
		req.Header.Set(api.HeaderRequestID, id)
	}
	// Stamp the remaining budget at send time, so each attempt (and each
	// tier) sees what is actually left rather than the original budget.
	if deadline, ok := ctx.Deadline(); ok {
		req.Header.Set(api.HeaderDeadlineMS, api.FormatDeadline(deadline.Sub(c.now())))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		defer drain(resp)
		return c.statusError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(out)
	drain(resp)
	if err == nil {
		// Graft the server's stage breakdown into the caller's trace (a
		// no-op when the context carries none): a traced caller sees one
		// tree spanning both tiers. Only the successful attempt grafts,
		// so retries never double-report.
		if st := resp.Header.Get("Server-Timing"); st != "" {
			obs.FromContext(ctx).Graft(obs.ParseServerTiming(st))
		}
	}
	return err
}

// backoffWait is attempt k's capped exponential backoff with jitter:
// uniformly within [half, full] of backoff·2^k, capped by maxWait —
// enough spread that restarting fleets don't retry in lockstep, never
// less than half the nominal step.
func (c *Client) backoffWait(attempt int) time.Duration {
	if attempt > 20 {
		attempt = 20 // past any realistic budget; avoids shift overflow
	}
	d := c.backoff << uint(attempt)
	if d <= 0 || d > c.maxWait {
		d = c.maxWait
	}
	half := d / 2
	return half + time.Duration(c.rnd()*float64(half))
}

// isTransient reports whether err is a failure worth replaying the
// request over: the connection never opened (refused), died under us
// (reset, broken pipe, EOF mid-exchange), or the body arrived
// truncated. Context cancellation is never transient.
func isTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.EOF)
}

// parseRetryAfter interprets a Retry-After header: whole seconds or an
// HTTP-date. Zero, negative, and past values parse to 0 ("retry now");
// ok is false when the header is absent or unparseable.
func parseRetryAfter(h string, now time.Time) (wait time.Duration, ok bool) {
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// statusError builds a *StatusError from a non-2xx response, preferring
// the JSON error body and carrying any Retry-After hint.
func (c *Client) statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	se := &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	var er api.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		se.Msg = er.Error
	}
	se.RetryAfter, se.hinted = parseRetryAfter(resp.Header.Get("Retry-After"), c.now())
	return se
}

// drain discards the rest of the body so the connection is reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
