// Package client is the Go client for the slapd labeling service: a
// thin, connection-reusing wrapper over the api wire contract with
// typed results and automatic retry on 429 backpressure.
//
//	c := client.New("http://localhost:8117")
//	resp, err := c.Label(ctx, img, api.Params{})
//	// resp.Components, resp.Metrics.TimeSteps, …
//
// One Client is safe for concurrent use and keeps connections alive
// across requests (the load generator drives thousands of frames per
// connection through it). When slapd sheds load with 429, the client
// honors the Retry-After hint up to a configurable attempt budget
// before surfacing the error as a *StatusError.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"time"

	"slapcc"
	"slapcc/api"
	"slapcc/internal/imageio"
)

// Client talks to one slapd instance. Construct with New.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int           // extra attempts after a 429
	maxWait    time.Duration // cap on a single Retry-After wait
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport tuning, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries sets how many times a 429 is retried before giving up
// (default 4; 0 disables retrying).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithMaxRetryWait caps a single Retry-After wait (default 5s).
func WithMaxRetryWait(d time.Duration) Option { return func(c *Client) { c.maxWait = d } }

// New returns a client for the slapd at baseURL (e.g.
// "http://localhost:8117").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		maxRetries: 4,
		maxWait:    5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	if c.hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64 // the whole point is connection reuse under load
		c.hc = &http.Client{Transport: tr}
	}
	return c
}

// StatusError is a non-2xx response, carrying the server's error text.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("slapd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// IsRetryable reports whether the error is the backpressure signal.
func (e *StatusError) IsRetryable() bool { return e.Code == http.StatusTooManyRequests }

// EncodeImage serializes img for transport. format is one of "png",
// "pbm", "art", "raw", or "" (raw, the densest). The returned content
// type is ready for the request header.
func EncodeImage(img *slapcc.Bitmap, format string) (data []byte, contentType string, err error) {
	f, err := imageio.ParseFormat(format)
	if err != nil {
		return nil, "", err
	}
	if f == imageio.FormatAuto {
		f = imageio.FormatRaw
	}
	data, err = imageio.EncodeBytes(img, f)
	if err != nil {
		return nil, "", err
	}
	return data, f.ContentType(), nil
}

// Label labels img under p, encoding it as p.Format ("" = raw).
func (c *Client) Label(ctx context.Context, img *slapcc.Bitmap, p api.Params) (*api.LabelResponse, error) {
	data, ct, err := EncodeImage(img, p.Format)
	if err != nil {
		return nil, err
	}
	return c.LabelData(ctx, data, ct, p)
}

// LabelData labels an already-encoded image body (contentType may be
// empty; the server sniffs or uses p.Format).
func (c *Client) LabelData(ctx context.Context, data []byte, contentType string, p api.Params) (*api.LabelResponse, error) {
	var out api.LabelResponse
	if err := c.post(ctx, api.PathLabel, p, data, contentType, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Aggregate folds each component of img under p.Op (see api.Params).
func (c *Client) Aggregate(ctx context.Context, img *slapcc.Bitmap, p api.Params) (*api.AggregateResponse, error) {
	data, ct, err := EncodeImage(img, p.Format)
	if err != nil {
		return nil, err
	}
	var out api.AggregateResponse
	if err := c.post(ctx, api.PathAggregate, p, data, ct, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Frame is one pre-encoded batch member.
type Frame struct {
	// Data is the encoded image body.
	Data []byte
	// ContentType pins the part's codec; empty falls back to the
	// batch-level p.Format (or sniffing).
	ContentType string
}

// EncodeFrame serializes img as a batch Frame in format ("" = raw).
func EncodeFrame(img *slapcc.Bitmap, format string) (Frame, error) {
	data, ct, err := EncodeImage(img, format)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Data: data, ContentType: ct}, nil
}

// LabelBatch labels frames in one request; results come back in frame
// order (api.BatchResponse.Results[i] is frames[i]).
func (c *Client) LabelBatch(ctx context.Context, frames []Frame, p api.Params) (*api.BatchResponse, error) {
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i, f := range frames {
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Disposition", fmt.Sprintf(`form-data; name="frame%d"; filename="frame%d"`, i, i))
		if f.ContentType != "" {
			hdr.Set("Content-Type", f.ContentType)
		}
		pw, err := mw.CreatePart(hdr)
		if err != nil {
			return nil, err
		}
		if _, err := pw.Write(f.Data); err != nil {
			return nil, err
		}
	}
	if err := mw.Close(); err != nil {
		return nil, err
	}
	var out api.BatchResponse
	if err := c.post(ctx, api.PathBatch, p, body.Bytes(), mw.FormDataContentType(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports nil while the server is healthy.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathHealthz, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// Metrics fetches the Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathMetrics, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return "", statusError(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// post sends one POST with 429-retry and decodes the JSON response.
// The body is a byte slice precisely so each retry can replay it.
func (c *Client) post(ctx context.Context, path string, p api.Params, body []byte, contentType string, out any) error {
	url := c.base + path
	if q := p.Query().Encode(); q != "" {
		url += "?" + q
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.maxRetries {
			wait := retryAfter(resp)
			drain(resp)
			if wait > c.maxWait {
				wait = c.maxWait
			}
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if resp.StatusCode != http.StatusOK {
			defer drain(resp)
			return statusError(resp)
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		drain(resp)
		return err
	}
}

// retryAfter parses the server's whole-seconds hint, defaulting to a
// short pause so a missing header cannot spin-loop.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 100 * time.Millisecond
}

// statusError builds a *StatusError from a non-2xx response, preferring
// the JSON error body.
func statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er api.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return &StatusError{Code: resp.StatusCode, Msg: er.Error}
	}
	return &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
}

// drain discards the rest of the body so the connection is reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
