package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"slapcc"
	"slapcc/api"
	"slapcc/internal/server"
)

func testServer(t *testing.T, cfg server.Config) (*httptest.Server, *server.Server) {
	t.Helper()
	srv := server.New(cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs, srv
}

// TestClientLabelRoundTrip: a labeled frame through the real handler
// matches the in-process labeling, for the typed image path and the
// pre-encoded data path.
func TestClientLabelRoundTrip(t *testing.T) {
	hs, _ := testServer(t, server.Config{Workers: 2})
	c := New(hs.URL)
	img := slapcc.RandomImage(20, 0.5, 7)
	want, err := slapcc.Label(img)
	if err != nil {
		t.Fatal(err)
	}

	for _, format := range []string{"", "png", "pbm", "art", "raw"} {
		resp, err := c.Label(context.Background(), img, api.Params{Format: format, WantLabels: true})
		if err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if resp.Components != want.Labels.ComponentCount() {
			t.Fatalf("format %q: %d components, want %d", format, resp.Components, want.Labels.ComponentCount())
		}
		if resp.Metrics.TimeSteps != want.Metrics.Time {
			t.Fatalf("format %q: time %d, want %d", format, resp.Metrics.TimeSteps, want.Metrics.Time)
		}
		for x := 0; x < img.W(); x++ {
			for y := 0; y < img.H(); y++ {
				if resp.Labels[x*img.H()+y] != want.Labels.Get(x, y) {
					t.Fatalf("format %q: label (%d,%d) diverged", format, x, y)
				}
			}
		}
	}

	data, ct, err := EncodeImage(img, "pbm")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.LabelData(context.Background(), data, ct, api.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Components != want.Labels.ComponentCount() {
		t.Fatal("LabelData diverged")
	}
}

// TestClientAggregateAndBatch: the other two endpoints, typed.
func TestClientAggregateAndBatch(t *testing.T) {
	hs, _ := testServer(t, server.Config{Workers: 2})
	c := New(hs.URL)
	img := slapcc.MustParseImage("##.\n.#.\n..#")

	agg, err := c.Aggregate(context.Background(), img, api.Params{Op: "sum", WantLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Op != "sum" || agg.Components != 2 {
		t.Fatalf("aggregate: %+v", agg)
	}
	// The 3-pixel component folds to area 3 at every one of its pixels.
	if agg.PerPixel[0] != 3 {
		t.Fatalf("per_pixel[0] = %d, want 3", agg.PerPixel[0])
	}

	// Strip-mined aggregation (array=, formerly refused): per-pixel
	// folds pin against in-process AggregateLarge — and therefore
	// against the whole-image run, which AggregateLarge matches bit for
	// bit. The pipelined schedule and host seam model ride query params.
	large := slapcc.RandomImage(24, 0.5, 9)
	wantLarge, err := slapcc.AggregateLarge(large, slapcc.OnesOf(large), slapcc.SumOf(), slapcc.Options{ArrayWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	stripAgg, err := c.Aggregate(context.Background(), large, api.Params{Op: "sum", ArrayWidth: 8, WantLabels: true})
	if err != nil {
		t.Fatalf("strip-mined aggregate: %v", err)
	}
	if stripAgg.Metrics.ArrayWidth != 8 || stripAgg.Metrics.TimeSteps != wantLarge.Metrics.Time {
		t.Fatalf("strip-mined aggregate metrics: %+v, want array 8 time %d", stripAgg.Metrics, wantLarge.Metrics.Time)
	}
	for i := range wantLarge.PerPixel {
		if stripAgg.PerPixel[i] != wantLarge.PerPixel[i] {
			t.Fatalf("strip-mined per_pixel[%d] = %d, want %d", i, stripAgg.PerPixel[i], wantLarge.PerPixel[i])
		}
	}
	wantPipe, err := slapcc.AggregateLarge(large, slapcc.OnesOf(large), slapcc.SumOf(),
		slapcc.Options{ArrayWidth: 8, Seam: slapcc.SeamHost, Schedule: slapcc.SchedulePipelined})
	if err != nil {
		t.Fatal(err)
	}
	pipeAgg, err := c.Aggregate(context.Background(), large, api.Params{Op: "sum", ArrayWidth: 8, Seam: "host", Schedule: "pipelined"})
	if err != nil {
		t.Fatalf("pipelined aggregate: %v", err)
	}
	if pipeAgg.Metrics.TimeSteps != wantPipe.Metrics.Time {
		t.Fatalf("pipelined aggregate time %d, want %d", pipeAgg.Metrics.TimeSteps, wantPipe.Metrics.Time)
	}

	var frames []Frame
	imgs := []*slapcc.Bitmap{slapcc.RandomImage(12, 0.5, 1), slapcc.RandomImage(16, 0.5, 2), slapcc.RandomImage(9, 0.5, 3)}
	for i, im := range imgs {
		f, err := EncodeFrame(im, []string{"png", "pbm", "raw"}[i])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	batch, err := c.LabelBatch(context.Background(), frames, api.Params{WantLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Frames != 3 || batch.Errors != 0 {
		t.Fatalf("batch: %+v", batch)
	}
	for i, item := range batch.Results {
		want, err := slapcc.Label(imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if item.Index != i || item.Result == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
		for x := 0; x < imgs[i].W(); x++ {
			for y := 0; y < imgs[i].H(); y++ {
				if item.Result.Labels[x*imgs[i].H()+y] != want.Labels.Get(x, y) {
					t.Fatalf("batch frame %d label (%d,%d) diverged", i, x, y)
				}
			}
		}
	}
}

// TestClientRetryOn429: the client sleeps out the Retry-After hint and
// succeeds on a later attempt; with retries exhausted the 429 surfaces
// as a retryable *StatusError.
func TestClientRetryOn429(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"full"}`))
			return
		}
		w.Write([]byte(`{"components":1}`))
	})
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := New(hs.URL, WithMaxRetries(4), WithMaxRetryWait(50*time.Millisecond))
	resp, err := c.LabelData(context.Background(), []byte("#"), "", api.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Components != 1 || calls.Load() != 3 {
		t.Fatalf("resp %+v after %d calls", resp, calls.Load())
	}

	calls.Store(-1000) // force many 429s
	c2 := New(hs.URL, WithMaxRetries(1), WithMaxRetryWait(time.Millisecond))
	_, err = c2.LabelData(context.Background(), []byte("#"), "", api.Params{})
	se, ok := err.(*StatusError)
	if !ok || !se.IsRetryable() {
		t.Fatalf("want retryable StatusError, got %v", err)
	}
}

// TestClientAgainstRealAdmission: with the real server saturated (slots
// held), the client's retry path is driven by a genuine slapd 429 and
// recovers once the slots free up.
func TestClientAgainstRealAdmission(t *testing.T) {
	hs, srv := testServer(t, server.Config{Workers: 1, QueueDepth: 1, RetryAfter: time.Second})
	c := New(hs.URL, WithMaxRetries(6), WithMaxRetryWait(20*time.Millisecond))
	img := slapcc.RandomImage(8, 0.5, 1)

	stop := make(chan struct{})
	go func() {
		// Hold the admission slots briefly, then release.
		srv.HoldAdmissionForTest(stop)
	}()
	time.Sleep(10 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := c.Label(context.Background(), img, api.Params{})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("label through backpressure: %v", err)
	}
}

// TestClientErrorsAndHealth: server errors surface typed; Healthz and
// Metrics work end to end.
func TestClientErrorsAndHealth(t *testing.T) {
	hs, srv := testServer(t, server.Config{Workers: 1})
	c := New(hs.URL)

	if err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Label(context.Background(), slapcc.RandomImage(4, 0.5, 1), api.Params{Connectivity: 3}); err == nil {
		t.Fatal("conn=3 accepted")
	} else if se, ok := err.(*StatusError); !ok || se.Code != http.StatusBadRequest || se.IsRetryable() {
		t.Fatalf("want 400 StatusError, got %v", err)
	}
	if _, _, err := EncodeImage(slapcc.RandomImage(4, 0.5, 1), "jpeg"); err == nil {
		t.Fatal("jpeg encode accepted")
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "slapd_requests_total") {
		t.Fatalf("metrics exposition missing counters:\n%s", m)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("healthz healthy while draining")
	}
}
