package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"slapcc/api"
)

// scriptRT is an http.RoundTripper that replays a fixed script: each
// step either errors (transport failure) or answers. It counts the
// attempts the client actually made.
type scriptRT struct {
	steps []scriptStep
	calls int
}

type scriptStep struct {
	err    error
	status int
	header http.Header
	body   string
}

func (rt *scriptRT) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.calls >= len(rt.steps) {
		return nil, errors.New("script exhausted")
	}
	st := rt.steps[rt.calls]
	rt.calls++
	if st.err != nil {
		return nil, st.err
	}
	h := st.header
	if h == nil {
		h = http.Header{}
	}
	return &http.Response{
		StatusCode: st.status,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(st.body)),
	}, nil
}

func ok(body string) scriptStep { return scriptStep{status: http.StatusOK, body: body} }

func tooMany(retryAfter string) scriptStep {
	h := http.Header{}
	if retryAfter != "" {
		h.Set("Retry-After", retryAfter)
	}
	return scriptStep{status: http.StatusTooManyRequests, header: h, body: `{"error":"queue full"}`}
}

// stubClient wires a Client to the script with a recording stub clock:
// sleeps are captured, never slept; now is frozen; jitter is zero, so
// backoff waits are exactly half the nominal step.
func stubClient(rt *scriptRT, opts ...Option) (*Client, *[]time.Duration) {
	waits := &[]time.Duration{}
	c := New("http://stub", append([]Option{WithHTTPClient(&http.Client{Transport: rt})}, opts...)...)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		*waits = append(*waits, d)
		return nil
	}
	c.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC) }
	c.rnd = func() float64 { return 0 }
	return c, waits
}

func postStub(t *testing.T, c *Client, ctx context.Context) error {
	t.Helper()
	var out api.LabelResponse
	return c.post(ctx, api.PathLabel, api.Params{}, []byte("body"), "application/octet-stream", &out)
}

// TestRetrySchedule table-tests the whole retry/backoff schedule under
// a stub clock: which failures are retried, how long each wait is, and
// when the budget or the error class stops the loop.
func TestRetrySchedule(t *testing.T) {
	httpDate := func(at time.Time) string { return at.UTC().Format(http.TimeFormat) }
	frozen := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	cases := []struct {
		name      string
		steps     []scriptStep
		opts      []Option
		wantErr   bool
		wantCalls int
		wantWaits []time.Duration
	}{
		{
			name:      "429 honors Retry-After seconds",
			steps:     []scriptStep{tooMany("3"), ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{3 * time.Second},
		},
		{
			name:      "429 missing header defaults to a short pause",
			steps:     []scriptStep{tooMany(""), ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{100 * time.Millisecond},
		},
		{
			name:      "429 zero seconds means retry now",
			steps:     []scriptStep{tooMany("0"), ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{0},
		},
		{
			name:      "429 negative seconds means retry now",
			steps:     []scriptStep{tooMany("-7"), ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{0},
		},
		{
			name:      "429 HTTP-date waits until the date",
			steps:     []scriptStep{tooMany(httpDate(frozen.Add(2 * time.Second))), ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{2 * time.Second},
		},
		{
			name:      "429 HTTP-date in the past means retry now",
			steps:     []scriptStep{tooMany(httpDate(frozen.Add(-time.Minute))), ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{0},
		},
		{
			name:      "429 unparseable header falls back to the default pause",
			steps:     []scriptStep{tooMany("soon"), ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{100 * time.Millisecond},
		},
		{
			name:      "Retry-After capped by WithMaxRetryWait",
			steps:     []scriptStep{tooMany("3600"), ok("{}")},
			opts:      []Option{WithMaxRetryWait(2 * time.Second)},
			wantCalls: 2,
			wantWaits: []time.Duration{2 * time.Second},
		},
		{
			name: "connection refused backs off exponentially",
			steps: []scriptStep{
				{err: syscall.ECONNREFUSED},
				{err: syscall.ECONNREFUSED},
				ok("{}"),
			},
			opts:      []Option{WithBackoff(40 * time.Millisecond)},
			wantCalls: 3,
			// zero jitter → exactly half of 40ms, then half of 80ms
			wantWaits: []time.Duration{20 * time.Millisecond, 40 * time.Millisecond},
		},
		{
			name:      "connection reset retried",
			steps:     []scriptStep{{err: syscall.ECONNRESET}, ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{25 * time.Millisecond},
		},
		{
			name:      "truncated response body retried",
			steps:     []scriptStep{ok(`{"width":`), ok("{}")},
			wantCalls: 2,
			wantWaits: []time.Duration{25 * time.Millisecond},
		},
		{
			name:      "backoff capped by WithMaxRetryWait",
			steps:     []scriptStep{{err: syscall.ECONNREFUSED}, ok("{}")},
			opts:      []Option{WithBackoff(time.Minute), WithMaxRetryWait(time.Second)},
			wantCalls: 2,
			wantWaits: []time.Duration{500 * time.Millisecond},
		},
		{
			name: "budget exhausted surfaces the last error",
			steps: []scriptStep{
				{err: syscall.ECONNREFUSED}, {err: syscall.ECONNREFUSED}, {err: syscall.ECONNREFUSED},
			},
			opts:      []Option{WithMaxRetries(2)},
			wantErr:   true,
			wantCalls: 3,
			wantWaits: []time.Duration{25 * time.Millisecond, 50 * time.Millisecond},
		},
		{
			name:      "4xx never retried",
			steps:     []scriptStep{{status: http.StatusBadRequest, body: `{"error":"bad conn"}`}},
			wantErr:   true,
			wantCalls: 1,
			wantWaits: []time.Duration{},
		},
		{
			name:      "retries disabled surfaces the first 429",
			steps:     []scriptStep{tooMany("1")},
			opts:      []Option{WithMaxRetries(0)},
			wantErr:   true,
			wantCalls: 1,
			wantWaits: []time.Duration{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := &scriptRT{steps: tc.steps}
			c, waits := stubClient(rt, tc.opts...)
			err := postStub(t, c, context.Background())
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if rt.calls != tc.wantCalls {
				t.Fatalf("attempts = %d, want %d", rt.calls, tc.wantCalls)
			}
			if len(*waits) != len(tc.wantWaits) {
				t.Fatalf("waits = %v, want %v", *waits, tc.wantWaits)
			}
			for i, w := range tc.wantWaits {
				if (*waits)[i] != w {
					t.Fatalf("wait[%d] = %v, want %v (all %v)", i, (*waits)[i], w, *waits)
				}
			}
		})
	}
}

// TestRetryHonorsContext: a context that dies during the retry wait —
// or before the attempt — stops the loop with the context's error
// instead of burning the rest of the budget.
func TestRetryHonorsContext(t *testing.T) {
	rt := &scriptRT{steps: []scriptStep{tooMany("5"), ok("{}")}}
	c, _ := stubClient(rt)
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the deadline passes while we wait
		return ctx.Err()
	}
	err := postStub(t, c, ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rt.calls != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry after cancellation)", rt.calls)
	}

	// Already-dead context: the transport error from the cancelled
	// request surfaces without any retry.
	rt = &scriptRT{steps: []scriptStep{{err: syscall.ECONNREFUSED}, ok("{}")}}
	c, waits := stubClient(rt)
	dead, kill := context.WithCancel(context.Background())
	kill()
	if err := postStub(t, c, dead); err == nil {
		t.Fatal("post with dead context succeeded")
	}
	if len(*waits) != 0 {
		t.Fatalf("slept %v under a dead context", *waits)
	}
}

// TestStatusErrorCarriesRetryAfter: the parsed hint rides the typed
// error, so callers owning their own retry policy (the coordinator)
// see what the server asked for.
func TestStatusErrorCarriesRetryAfter(t *testing.T) {
	rt := &scriptRT{steps: []scriptStep{tooMany("7")}}
	c, _ := stubClient(rt, WithMaxRetries(0))
	err := postStub(t, c, context.Background())
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *StatusError", err, err)
	}
	if !se.IsRetryable() || se.RetryAfter != 7*time.Second {
		t.Fatalf("StatusError = %+v, want retryable with 7s hint", se)
	}
}

// TestParseRetryAfter pins the header grammar edge cases directly.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in     string
		want   time.Duration
		wantOK bool
	}{
		{"", 0, false},
		{"5", 5 * time.Second, true},
		{"0", 0, true},
		{"-3", 0, true},
		{now.Add(90 * time.Second).UTC().Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Hour).UTC().Format(http.TimeFormat), 0, true},
		{"garbage", 0, false},
		{"1.5", 0, false}, // fractional seconds are not in the grammar
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.wantOK {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.wantOK)
		}
	}
}
