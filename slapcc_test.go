package slapcc

import (
	"fmt"
	"testing"
)

func TestPublicLabel(t *testing.T) {
	img := MustParseImage(`
#.#
#.#
###
`)
	res, err := Label(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels.ComponentCount() != 1 {
		t.Fatalf("U shape should be one component, got %d", res.Labels.ComponentCount())
	}
	if res.Labels.Get(2, 0) != 0 {
		t.Fatalf("canonical label should be 0, got %d", res.Labels.Get(2, 0))
	}
	if res.Metrics.Time <= 0 {
		t.Fatal("metrics must be populated")
	}
}

func TestPublicLabelWithOptions(t *testing.T) {
	img := RandomImage(24, 0.5, 42)
	base, err := Label(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []UFKind{UFBlum, UFRank, UFHalving, UFSplitting, UFNoCompress, UFQuickFind, UFNaiveLink} {
		res, err := LabelWithOptions(img, Options{UF: kind, IdleCompression: true})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !res.Labels.Equal(base.Labels) {
			t.Fatalf("%s: labels differ from default run", kind)
		}
	}
}

func TestPublicLabeler(t *testing.T) {
	lab := NewLabeler(Options{})
	var first *Result
	for i := 0; i < 3; i++ {
		img := RandomImage(32+8*i, 0.5, uint64(i))
		res, err := lab.Label(img)
		if err != nil {
			t.Fatal(err)
		}
		oneshot, err := Label(img)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Labels.Equal(oneshot.Labels) {
			t.Fatalf("frame %d: reused labeler disagrees with one-shot Label", i)
		}
		if res.Metrics.Time != oneshot.Metrics.Time || res.Metrics.Sends != oneshot.Metrics.Sends {
			t.Fatalf("frame %d: reused labeler's metrics differ", i)
		}
		if i == 0 {
			first = res
		}
	}
	// Results stay valid after the labeler moved on to other frames.
	if first.Labels.W() != 32 || first.Metrics.Time <= 0 {
		t.Fatal("earlier result corrupted by labeler reuse")
	}
	// Aggregate runs on the same reusable arenas.
	img := MustParseImage("###\n..#\n###")
	agg, err := lab.Aggregate(img, OnesOf(img), SumOf())
	if err != nil {
		t.Fatal(err)
	}
	if agg.PerPixel[0] != 7 {
		t.Fatalf("labeler aggregate area: want 7, got %d", agg.PerPixel[0])
	}
}

func TestPublicBitSerial(t *testing.T) {
	img := RandomImage(16, 0.5, 7)
	res, err := LabelWithOptions(img, Options{Cost: BitSerialCost(WordBits(16))})
	if err != nil {
		t.Fatal(err)
	}
	word, err := Label(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Time <= word.Metrics.Time {
		t.Fatal("bit-serial links must cost more")
	}
}

func TestPublicAggregate(t *testing.T) {
	img := MustParseImage(`
###
..#
###
`)
	res, err := Aggregate(img, OnesOf(img), SumOf(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Single S-shaped component of 7 pixels.
	if res.PerPixel[0] != 7 {
		t.Fatalf("component area should be 7, got %d", res.PerPixel[0])
	}
	for _, op := range []Monoid{MinOf(), MaxOf(), OrOf()} {
		if op.Combine == nil || op.Name == "" {
			t.Fatalf("monoid %+v incomplete", op)
		}
	}
}

func TestPublicConnectivity(t *testing.T) {
	img := MustParseImage("#.\n.#")
	four, err := Label(img)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := LabelWithOptions(img, Options{Connectivity: Conn8})
	if err != nil {
		t.Fatal(err)
	}
	if four.Labels.ComponentCount() != 2 || eight.Labels.ComponentCount() != 1 {
		t.Fatalf("connectivity semantics wrong: conn4=%d conn8=%d",
			four.Labels.ComponentCount(), eight.Labels.ComponentCount())
	}
}

func TestPublicFamilies(t *testing.T) {
	names := FamilyNames()
	if len(names) < 10 {
		t.Fatalf("expected a rich family list, got %d", len(names))
	}
	img, ok := GenerateFamily("checker", 8)
	if !ok || img.CountOnes() != 32 {
		t.Fatal("GenerateFamily(checker, 8) wrong")
	}
	if _, ok := GenerateFamily("nope", 8); ok {
		t.Fatal("unknown family should report false")
	}
}

func TestPublicImageHelpers(t *testing.T) {
	img := NewImage(3, 2)
	img.Set(1, 1, true)
	if !img.Get(1, 1) || img.CountOnes() != 1 {
		t.Fatal("NewImage/Set/Get broken")
	}
	if _, err := ParseImage("#?"); err == nil {
		t.Fatal("ParseImage should reject garbage")
	}
	if UnitCost().Validate() != nil {
		t.Fatal("UnitCost must be valid")
	}
}

func ExampleLabel() {
	img := MustParseImage(`
##..
...#
##.#
`)
	res, _ := Label(img)
	fmt.Println("components:", res.Labels.ComponentCount())
	fmt.Print(res.Labels)
	// Output:
	// components: 3
	// aa..
	// ...b
	// cc.b
}

func TestPublicLabelLarge(t *testing.T) {
	img := RandomImage(96, 0.5, 11)
	whole, err := Label(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LabelLarge(img, Options{ArrayWidth: 24, StripWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Labels.Equal(whole.Labels) {
		t.Fatal("strip-mined labeling differs from the whole-image run")
	}
	if res.Metrics.N != 24 {
		t.Fatalf("composed metrics N = %d, want the array width 24", res.Metrics.N)
	}
	if p, ok := res.Metrics.Phase("seam-merge"); !ok || p.Makespan <= 0 {
		t.Fatalf("seam-merge phase missing or empty: %+v ok=%v", p, ok)
	}
	// ArrayWidth 0 stays the whole-image path, bit for bit.
	zero, err := LabelLarge(img, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !zero.Labels.Equal(whole.Labels) || zero.Metrics.Time != whole.Metrics.Time {
		t.Fatal("ArrayWidth 0 diverged from Label")
	}
}

func TestPublicWordBitsDims(t *testing.T) {
	if got := WordBitsDims(1024, 16); got != 15 {
		t.Fatalf("WordBitsDims(1024, 16) = %d, want 15", got)
	}
	if WordBitsDims(64, 64) != WordBits(64) {
		t.Fatal("WordBitsDims must agree with WordBits on squares")
	}
}
