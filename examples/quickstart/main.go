// Quickstart: label a small image on the simulated scan line array
// processor and inspect the result.
package main

import (
	"fmt"
	"log"

	"slapcc"
)

func main() {
	// One U-shaped component and one isolated dot. Pixel (x, y) is
	// column x, row y; the SLAP assigns one processing element per
	// column and streams the image in one row per time step.
	img := slapcc.MustParseImage(`
#.#..
#.#.#
###..
`)

	res, err := slapcc.Label(img)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("image:")
	fmt.Print(img)
	fmt.Println("labels (letters per component):")
	fmt.Print(res.Labels)

	// Components are labeled canonically with the least column-major
	// position of their pixels, exactly as the paper's Algorithm CC.
	fmt.Printf("\ncomponents: %d\n", res.Labels.ComponentCount())
	fmt.Printf("label of pixel (2,0): %d (the U's least position is 0)\n", res.Labels.Get(2, 0))

	// The simulator also reports what the run cost on the machine.
	fmt.Printf("simulated SLAP time: %d steps on %d PEs\n", res.Metrics.Time, res.Metrics.N)
	fmt.Printf("union-find: %s, worst single op %d steps\n", res.UF.Kind, res.UF.MaxOpCost)
}
