// Bitserial: the paper's Theorem 5 — on a restricted SLAP whose links
// carry one bit per step instead of a full word, component labeling needs
// Ω(n lg n) time. This example runs Algorithm CC on the adversarial
// even-row-runs family under both link models and prints how the
// measured times scale, next to the information-theoretic floor
// ((n/2)·lg n output bits at one new bit per step for the last PE).
package main

import (
	"fmt"
	"log"
	"math"

	"slapcc"
)

func main() {
	fmt.Println("Theorem 5: word-wide links keep Algorithm CC near O(n);")
	fmt.Println("1-bit links force Ω(n lg n) no matter the algorithm.")
	fmt.Println()
	fmt.Printf("%6s  %12s  %8s  %12s  %14s  %12s\n",
		"n", "T word", "T/n", "T 1-bit", "T_bit/(n lgn)", "floor (bits)")

	for _, n := range []int{32, 64, 128, 256} {
		img, ok := slapcc.GenerateFamily("evenrowruns", n)
		if !ok {
			log.Fatal("evenrowruns family missing")
		}

		word, err := slapcc.Label(img)
		if err != nil {
			log.Fatal(err)
		}
		bits, err := slapcc.LabelWithOptions(img, slapcc.Options{
			// Word width from the pixel count (equal to WordBits(n) on
			// square images; WordBits(max dim) would over-charge
			// non-square ones).
			Cost: slapcc.BitSerialCost(slapcc.WordBitsDims(img.W(), img.H())),
		})
		if err != nil {
			log.Fatal(err)
		}
		if !word.Labels.Equal(bits.Labels) {
			log.Fatal("the link model must not change the labeling")
		}

		lg := math.Log2(float64(n))
		// The family has ⌈n/2⌉ independent run starts with n choices
		// each; the rightmost PE must acquire that many bits beyond the
		// n it starts with.
		floor := float64((n+1)/2)*lg - float64(n)
		fmt.Printf("%6d  %12d  %8.1f  %12d  %14.2f  %12.0f\n",
			n, word.Metrics.Time, float64(word.Metrics.Time)/float64(n),
			bits.Metrics.Time, float64(bits.Metrics.Time)/(float64(n)*lg), floor)
	}

	fmt.Println("\nT/n is flat under word links (left column) while T/(n lg n) is flat")
	fmt.Println("under 1-bit links (right column): the word width is exactly the")
	fmt.Println("Θ(lg n) factor separating the two machines, as Theorem 5 predicts.")
}
