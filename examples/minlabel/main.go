// Minlabel: the paper's Corollary 4 — label every component with the
// minimum *initial* label of its pixels, here used for marker-based
// segmentation: a few seed pixels carry small marker ids, and the
// aggregation spreads each region's smallest marker over the whole
// region in one SLAP-time labeling pass.
package main

import (
	"fmt"
	"log"

	"slapcc"
)

func main() {
	img := slapcc.MustParseImage(`
######....########
#....#....#......#
#.##.#....#.####.#
#.##.#....#.#..#.#
#....#....#.#..#.#
######....#.####.#
..........#......#
.####.....########
.#..#.............
.####.............
`)

	// Unmarked pixels carry the Min identity; three seeds carry ids.
	initial := make([]int32, img.W()*img.H())
	ident := slapcc.MinOf().Identity
	for i := range initial {
		initial[i] = ident
	}
	seeds := map[[2]int]int32{
		{0, 0}:  101, // outer ring of the left box
		{12, 2}: 202, // inner box of the right structure
		{1, 8}:  303, // small bottom box
	}
	for at, id := range seeds {
		if !img.Get(at[0], at[1]) {
			log.Fatalf("seed %v placed on background", at)
		}
		initial[at[0]*img.H()+at[1]] = id
	}

	res, err := slapcc.Aggregate(img, initial, slapcc.MinOf(), slapcc.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("image with marker propagation (seed ids shown per region):")
	for y := 0; y < img.H(); y++ {
		for x := 0; x < img.W(); x++ {
			switch v := res.PerPixel[x*img.H()+y]; {
			case !img.Get(x, y):
				fmt.Print(" . ")
			case v == ident:
				fmt.Print(" ? ") // region without any seed
			default:
				fmt.Printf("%3d", v)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\ncomponents: %d, simulated SLAP time: %d steps\n",
		res.Labels.ComponentCount(), res.Metrics.Time)
	fmt.Println("every pixel of a seeded region now carries the region's smallest marker id;")
	fmt.Println("Corollary 4 guarantees this costs the same asymptotic time as plain labeling.")
}
