// Videopipeline: the scenario that motivated the SLAP (the Princeton
// Engine was a real-time video system simulator): a stream of frames
// flows through the array, and each frame is component-labeled and
// measured in machine steps — near-linear per frame, i.e. real-time for
// the architecture.
//
// The synthetic scene contains moving rectangles ("objects") that drift
// across the frame, occasionally touching and merging into one component.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"slapcc"
)

const (
	frameSize = 64
	frames    = 8
)

// object is an axis-aligned rectangle with a velocity.
type object struct {
	x, y, w, h int
	dx, dy     int
}

func drawFrame(objs []object, t int) *slapcc.Bitmap {
	img := slapcc.NewImage(frameSize, frameSize)
	for _, o := range objs {
		x0, y0 := o.x+t*o.dx, o.y+t*o.dy
		for x := x0; x < x0+o.w; x++ {
			for y := y0; y < y0+o.h; y++ {
				if x >= 0 && x < frameSize && y >= 0 && y < frameSize {
					img.Set(x, y, true)
				}
			}
		}
	}
	return img
}

func main() {
	objs := []object{
		{x: 2, y: 6, w: 10, h: 8, dx: 5, dy: 0},    // sweeps left to right
		{x: 50, y: 10, w: 8, h: 8, dx: -4, dy: 1},  // drifts right to left
		{x: 20, y: 40, w: 14, h: 6, dx: 1, dy: -2}, // rises
		{x: 44, y: 44, w: 6, h: 12, dx: 0, dy: 0},  // static
	}

	// One reusable labeler serves the whole stream: every frame re-uses
	// the simulated machine, per-column union–find structures, and link
	// buffers in place, so the per-frame host cost is the simulation
	// itself, not allocation — the shape a real-time pipeline needs.
	lab := slapcc.NewLabeler(slapcc.Options{})

	fmt.Printf("%5s  %10s  %7s  %12s  %10s\n",
		"frame", "components", "pixels", "largest area", "SLAP steps")
	for t := 0; t < frames; t++ {
		img := drawFrame(objs, t)

		// Label the frame and, in the same run, compute per-component
		// areas with the Corollary 4 aggregation (sum of ones).
		res, err := lab.Aggregate(img, slapcc.OnesOf(img), slapcc.SumOf())
		if err != nil {
			log.Fatal(err)
		}
		largest := int32(0)
		for _, v := range res.PerPixel {
			if v > largest {
				largest = v
			}
		}
		fmt.Printf("%5d  %10d  %7d  %12d  %10d\n",
			t, res.Labels.ComponentCount(), img.CountOnes(), largest, res.Metrics.Time)
	}

	fmt.Println("\nper-frame machine time stays a small multiple of the frame height:")
	fmt.Println("the array keeps up with the video rate, which is the architecture's point.")

	// Host-side scaling: the frames are independent, so a LabelStream
	// shards them across one worker labeler per core — results still
	// arrive in frame order — and aggregate throughput scales with the
	// cores (on a 1-core host the stream simply delegates to a single
	// reused labeler).
	const burst = 64
	var labeled int
	start := time.Now()
	s := slapcc.NewLabelStream(slapcc.Options{}, 0, func(r slapcc.StreamResult) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		labeled++
	})
	for t := 0; t < burst; t++ {
		s.Submit(drawFrame(objs, t%frames))
	}
	s.Close()
	fmt.Printf("\nstreamed %d frames over %d worker labelers in %v (in order)\n",
		labeled, runtime.GOMAXPROCS(0), time.Since(start).Round(time.Millisecond))
}
