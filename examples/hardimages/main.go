// Hardimages: the paper's Figure 3 — the two image textures that make
// left-component labeling difficult — labeled by Algorithm CC with exact
// machine-step accounting, across growing sizes, under both the default
// Tarjan union–find and the Theorem 3 Blum-style structure.
package main

import (
	"fmt"
	"log"

	"slapcc"
)

func main() {
	// Show the textures at a readable size first.
	for _, name := range []string{"fig3a", "fig3b"} {
		img, ok := slapcc.GenerateFamily(name, 12)
		if !ok {
			log.Fatalf("family %s missing", name)
		}
		fmt.Printf("%s (12x12):\n%s\n", name, img)
	}

	fmt.Printf("%7s %5s  %12s %10s  %12s %10s\n",
		"figure", "n", "T(tarjan)", "T/n", "T(blum)", "maxOp")
	for _, name := range []string{"fig3a", "fig3b"} {
		for _, n := range []int{16, 32, 64, 128} {
			img, _ := slapcc.GenerateFamily(name, n)

			tarjan, err := slapcc.Label(img)
			if err != nil {
				log.Fatal(err)
			}
			blum, err := slapcc.LabelWithOptions(img, slapcc.Options{UF: slapcc.UFBlum})
			if err != nil {
				log.Fatal(err)
			}
			if !tarjan.Labels.Equal(blum.Labels) {
				log.Fatal("union-find choice changed the labeling — impossible")
			}
			fmt.Printf("%7s %5d  %12d %10.2f  %12d %10d\n",
				name, n, tarjan.Metrics.Time,
				float64(tarjan.Metrics.Time)/float64(n),
				blum.Metrics.Time, blum.UF.MaxOpCost)
		}
	}
	fmt.Println("\nT/n stays nearly flat: the hard textures do not push Algorithm CC")
	fmt.Println("toward its O(n lg n) worst case, matching the paper's §3 expectation.")
}
