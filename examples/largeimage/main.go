// Largeimage: strip-mined labeling of an image far wider than the
// physical array. A real SLAP has a fixed PE count; slapcc.LabelLarge
// partitions the image into vertical strips of at most
// Options.ArrayWidth columns, labels each strip with Algorithm CC on the
// fixed-width machine, and stitches the strip boundaries with a
// host-side union–find pass ("seam-merge" in the composed metrics).
//
// The labeling is bit-identical to a whole-image run at every array
// width; what changes is the composed schedule — this example sweeps the
// array width down and prints how the composed time and the seam-merge
// share move (the seam work is O(h·strips + rewritten pixels), a
// lower-order term until strips get very narrow).
package main

import (
	"fmt"
	"log"

	"slapcc"
)

func main() {
	const n = 1024
	img, ok := slapcc.GenerateFamily("random50", n)
	if !ok {
		log.Fatal("random50 family missing")
	}

	whole, err := slapcc.Label(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image %dx%d, %d components; whole-image array: %d PEs, T = %d steps\n\n",
		n, n, whole.Labels.ComponentCount(), n, whole.Metrics.Time)

	fmt.Printf("%6s  %7s  %12s  %9s  %7s\n", "array", "strips", "T composed", "vs whole", "seam %")
	for _, aw := range []int{512, 256, 128, 64, 32} {
		res, err := slapcc.LabelLarge(img, slapcc.Options{ArrayWidth: aw})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Labels.Equal(whole.Labels) {
			log.Fatalf("array %d: strip-mined labeling diverged", aw)
		}
		seam, _ := res.Metrics.Phase("seam-merge")
		strips := (n + aw - 1) / aw
		fmt.Printf("%6d  %7d  %12d  %9.3f  %7.2f\n",
			aw, strips, res.Metrics.Time,
			float64(res.Metrics.Time)/float64(whole.Metrics.Time),
			100*float64(seam.Makespan)/float64(res.Metrics.Time))
	}

	fmt.Println("\nLabels are bit-identical at every width (checked above); StripWorkers")
	fmt.Println("fans strips across worker labelers for host wall time without changing")
	fmt.Println("the composed metrics — the schedule model is sequential either way.")
}
