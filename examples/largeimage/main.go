// Largeimage: strip-mined labeling of an image far wider than the
// physical array. A real SLAP has a fixed PE count; slapcc.LabelLarge
// partitions the image into vertical strips of at most
// Options.ArrayWidth columns, labels each strip with Algorithm CC on the
// fixed-width machine, and stitches the strip boundaries with a metered
// seam pass: a "seam-merge" stitch plus — under the default distributed
// relabel — a "seam-broadcast"/"seam-rewrite" pair that remaps labels on
// the array itself.
//
// The labeling is bit-identical to a whole-image run at every array
// width; what changes is the composed schedule — this example sweeps the
// array width down and prints how the composed time moves under the
// sequential and pipelined schedule models (Options.Schedule), and what
// share the seam phases claim (the seam work is O(h·strips + rewritten
// pixels), a lower-order term until strips get very narrow).
package main

import (
	"fmt"
	"log"

	"slapcc"
)

func main() {
	const n = 1024
	img, ok := slapcc.GenerateFamily("random50", n)
	if !ok {
		log.Fatal("random50 family missing")
	}

	whole, err := slapcc.Label(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image %dx%d, %d components; whole-image array: %d PEs, T = %d steps\n\n",
		n, n, whole.Labels.ComponentCount(), n, whole.Metrics.Time)

	fmt.Printf("%6s  %7s  %12s  %9s  %12s  %7s  %7s\n",
		"array", "strips", "T composed", "vs whole", "T pipelined", "pipe %", "seam %")
	for _, aw := range []int{512, 256, 128, 64, 32} {
		res, err := slapcc.LabelLarge(img, slapcc.Options{ArrayWidth: aw})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Labels.Equal(whole.Labels) {
			log.Fatalf("array %d: strip-mined labeling diverged", aw)
		}
		pipe, err := slapcc.LabelLarge(img, slapcc.Options{ArrayWidth: aw, Schedule: slapcc.SchedulePipelined})
		if err != nil {
			log.Fatal(err)
		}
		strips := (n + aw - 1) / aw
		fmt.Printf("%6d  %7d  %12d  %9.3f  %12d  %7.2f  %7.2f\n",
			aw, strips, res.Metrics.Time,
			float64(res.Metrics.Time)/float64(whole.Metrics.Time),
			pipe.Metrics.Time,
			100*(1-float64(pipe.Metrics.Time)/float64(res.Metrics.Time)),
			100*float64(slapcc.SeamTime(res.Metrics))/float64(res.Metrics.Time))
	}

	// The strip-mined Corollary 4 aggregation: component areas on the
	// fixed-width array, identical to the whole-image fold.
	agg, err := slapcc.AggregateLarge(img, slapcc.OnesOf(img), slapcc.SumOf(), slapcc.Options{ArrayWidth: 256})
	if err != nil {
		log.Fatal(err)
	}
	var largest int32
	for _, v := range agg.PerPixel {
		if v > largest {
			largest = v
		}
	}
	fmt.Printf("\naggregate (sum over ones, 256-PE array): largest component %d pixels, T = %d steps\n",
		largest, agg.Metrics.Time)

	fmt.Println("\nLabels and per-pixel folds are bit-identical at every width (checked above).")
	fmt.Println("StripWorkers fans strips across worker labelers for host wall time without")
	fmt.Println("changing the composed metrics; Options.Seam selects the distributed (default)")
	fmt.Println("or host-sequential relabel model — see docs/METRICS.md for the equations.")
}
