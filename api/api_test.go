package api

import (
	"net/url"
	"testing"
)

// TestParamsRoundTrip: Query and ParamsFromQuery are inverses for
// every field, including the cluster-era WordBits and InitialOffset.
func TestParamsRoundTrip(t *testing.T) {
	p := Params{
		Format:        "raw",
		Connectivity:  8,
		UF:            "tarjan",
		Cost:          "bitserial",
		WordBits:      13,
		ArrayWidth:    64,
		Seam:          "distributed",
		Schedule:      "pipelined",
		WantLabels:    true,
		Op:            "sum",
		Initial:       "positions",
		InitialOffset: 4096,
	}
	got, err := ParamsFromQuery(p.Query())
	if err != nil {
		t.Fatalf("ParamsFromQuery: %v", err)
	}
	if got != p {
		t.Fatalf("round trip changed params:\n got %+v\nwant %+v", got, p)
	}

	// Zero values stay off the wire and parse back to zero.
	if enc := (Params{}).Query().Encode(); enc != "" {
		t.Fatalf("zero params encoded to %q", enc)
	}
	if got, err := ParamsFromQuery(url.Values{}); err != nil || got != (Params{}) {
		t.Fatalf("empty query: %+v, %v", got, err)
	}
}

// TestParamsFromQueryRejectsBadInts: malformed numeric fields are
// errors, not silent zeros.
func TestParamsFromQueryRejectsBadInts(t *testing.T) {
	for _, key := range []string{"conn", "array", "wordbits", "initialoffset"} {
		q := url.Values{key: []string{"not-a-number"}}
		if _, err := ParamsFromQuery(q); err == nil {
			t.Errorf("bad %s accepted", key)
		}
	}
	if _, err := ParamsFromQuery(url.Values{"labels": []string{"maybe"}}); err == nil {
		t.Error("bad labels accepted")
	}
}
